(* Workload layer: generators, corrupt placement, input attacks, protocol
   wrappers and report coherence. *)

open Net

let bigint_t = Alcotest.testable Bigint.pp Bigint.equal

let test_sensor_readings () =
  let rng = Prng.create 1 in
  let xs = Workload.sensor_readings rng ~n:50 ~base:(-1004) ~jitter:2 in
  Alcotest.check Alcotest.int "count" 50 (Array.length xs);
  Array.iter
    (fun v ->
      let v = Option.get (Bigint.to_int_opt v) in
      Alcotest.check Alcotest.bool "within band" true (v >= -1006 && v <= -1002))
    xs;
  (* Determinism. *)
  let ys = Workload.sensor_readings (Prng.create 1) ~n:50 ~base:(-1004) ~jitter:2 in
  Alcotest.check (Alcotest.array bigint_t) "deterministic" xs ys

let test_price_feed () =
  let rng = Prng.create 2 in
  let xs = Workload.price_feed rng ~n:20 ~base:"2931" ~decimals:18 ~spread_ppm:200 in
  let base = Bigint.mul (Bigint.of_string "2931") (Bigint.of_string ("1" ^ String.make 18 '0')) in
  let max_delta = Bigint.div (Bigint.mul base (Bigint.of_int 200)) (Bigint.of_int 1_000_000) in
  Array.iter
    (fun v ->
      let delta = Bigint.abs (Bigint.sub v base) in
      Alcotest.check Alcotest.bool "within spread" true (Bigint.compare delta max_delta <= 0))
    xs

let test_timestamps () =
  let rng = Prng.create 3 in
  let now = "1783425600000000000" in
  let xs = Workload.timestamps rng ~n:20 ~now_ns:now ~skew_ns:40_000_000 in
  Array.iter
    (fun v ->
      let delta = Bigint.abs (Bigint.sub v (Bigint.of_string now)) in
      Alcotest.check Alcotest.bool "within skew" true
        (Bigint.compare delta (Bigint.of_int 40_000_000) <= 0))
    xs

let test_bit_generators () =
  let rng = Prng.create 4 in
  let xs = Workload.uniform_bits rng ~n:10 ~bits:200 in
  Array.iter
    (fun v ->
      Alcotest.check Alcotest.int "exact bit length (top bit set)" 200 (Bigint.bit_length v))
    xs;
  let shared = 64 in
  let ys = Workload.clustered_bits rng ~n:10 ~bits:200 ~shared_prefix_bits:shared in
  let prefixes =
    Array.map (fun v -> Bitstring.prefix (Bigint.to_bitstring_fixed ~bits:200 v) shared) ys
  in
  Array.iter
    (fun p -> Alcotest.check Alcotest.bool "common prefix" true (Bitstring.equal p prefixes.(0)))
    prefixes;
  Alcotest.check_raises "prefix too long" (Invalid_argument "Workload.clustered_bits")
    (fun () -> ignore (Workload.clustered_bits rng ~n:2 ~bits:8 ~shared_prefix_bits:9))

let test_spread_corrupt () =
  List.iter
    (fun (n, t) ->
      let corrupt = Workload.spread_corrupt ~n ~t in
      Alcotest.check Alcotest.int
        (Printf.sprintf "exactly t corrupted (n=%d,t=%d)" n t)
        t
        (Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 corrupt);
      Alcotest.check Alcotest.int "array size" n (Array.length corrupt))
    [ (4, 1); (7, 2); (10, 3); (13, 4); (31, 10); (4, 0) ]

let test_input_attacks () =
  let corrupt = [| true; false; true; false |] in
  let inputs = Array.init 4 (fun i -> Bigint.of_int (100 + i)) in
  let high = Workload.apply_input_attack Workload.Outlier_high ~corrupt inputs in
  Alcotest.check Alcotest.bool "corrupt raised" true
    (Bigint.compare high.(0) (Bigint.pow2 399) > 0);
  Alcotest.check bigint_t "honest untouched" (Bigint.of_int 101) high.(1);
  Alcotest.check bigint_t "original array unmodified" (Bigint.of_int 100) inputs.(0);
  let low = Workload.apply_input_attack Workload.Outlier_low ~corrupt inputs in
  Alcotest.check Alcotest.bool "corrupt lowered" true (Bigint.sign low.(2) < 0);
  let split = Workload.apply_input_attack Workload.Split_extremes ~corrupt inputs in
  Alcotest.check Alcotest.bool "split has both signs" true
    (Bigint.sign split.(0) <> Bigint.sign split.(2));
  let none = Workload.apply_input_attack Workload.Honest_inputs ~corrupt inputs in
  Alcotest.check (Alcotest.array bigint_t) "honest-inputs is identity" inputs none

let test_to_fixed_clamps () =
  let b = Workload.to_fixed ~bits:8 (Bigint.of_int 100000) in
  Alcotest.check Alcotest.string "clamped to all ones" "11111111" (Bitstring.to_string b);
  let small = Workload.to_fixed ~bits:8 (Bigint.of_int 5) in
  Alcotest.check Alcotest.string "padded" "00000101" (Bitstring.to_string small);
  let negative = Workload.to_fixed ~bits:8 (Bigint.of_int (-5)) in
  Alcotest.check Alcotest.string "magnitude of negative" "00000101"
    (Bitstring.to_string negative)

let test_report_coherence () =
  let n = 4 and t = 1 in
  let corrupt = Workload.spread_corrupt ~n ~t in
  let inputs = Array.init n (fun i -> Bigint.of_int (50 + i)) in
  let report =
    Workload.run_int ~n ~t ~corrupt ~adversary:Adversary.passive ~inputs
      Workload.pi_z.Workload.run
  in
  Alcotest.check Alcotest.int "n-t honest outputs" (n - t)
    (List.length report.Workload.outputs);
  Alcotest.check Alcotest.bool "agreement" true report.Workload.agreement;
  Alcotest.check Alcotest.bool "validity" true report.Workload.convex_validity;
  Alcotest.check Alcotest.bool "bits positive" true (report.Workload.honest_bits > 0);
  Alcotest.check Alcotest.bool "rounds positive" true (report.Workload.rounds > 0);
  (* Label accounting covers all honest bits. *)
  let label_sum = List.fold_left (fun acc (_, b) -> acc + b) 0 report.Workload.labels in
  Alcotest.check Alcotest.int "labels partition honest bits" report.Workload.honest_bits
    label_sum

let test_king_injector_wins_plain_ba () =
  (* The attack that motivates CA: with disagreeing honest inputs and a
     corrupted phase-1 king, phase-king BA outputs the injected value. *)
  let n = 4 and t = 1 and bits = 16 in
  let corrupt = [| true; false; false; false |] in
  let evil = Bigint.of_int 54321 in
  let payload = Bitstring.to_bytes (Workload.to_fixed ~bits evil) in
  let inputs = [| Bigint.of_int 9; Bigint.of_int 10; Bigint.of_int 11; Bigint.of_int 12 |] in
  let report =
    Workload.run_int ~n ~t ~corrupt ~adversary:(Workload.king_injector ~payload) ~inputs
      (Workload.phase_king_ba ~bits).Workload.run
  in
  Alcotest.check Alcotest.bool "BA agreement survives" true report.Workload.agreement;
  List.iter
    (fun o -> Alcotest.check bigint_t "the injected value wins" evil o)
    report.Workload.outputs;
  (* And Π_Z is immune to the identical adversary. *)
  let report =
    Workload.run_int ~n ~t ~corrupt ~adversary:(Workload.king_injector ~payload) ~inputs
      Workload.pi_z.Workload.run
  in
  Alcotest.check Alcotest.bool "Pi_Z validity" true report.Workload.convex_validity

let test_comparator_wrappers_roundtrip () =
  (* Each fixed-width comparator must at least solve its own agreement task
     on unanimous inputs. *)
  let n = 4 and t = 1 and bits = 16 in
  let corrupt = Workload.spread_corrupt ~n ~t in
  let inputs = Array.make n (Bigint.of_int 4242) in
  List.iter
    (fun (p : Workload.protocol) ->
      let report =
        Workload.run_int ~n ~t ~corrupt ~adversary:Adversary.passive ~inputs
          p.Workload.run
      in
      Alcotest.check Alcotest.bool (p.Workload.proto_name ^ " agreement") true
        report.Workload.agreement;
      List.iter
        (fun o -> Alcotest.check bigint_t (p.Workload.proto_name ^ " keeps value")
            (Bigint.of_int 4242) o)
        report.Workload.outputs)
    [
      Workload.pi_z;
      Workload.high_cost_ca ~bits;
      Workload.broadcast_ca ~bits;
      Workload.turpin_coan_ba ~bits;
      Workload.phase_king_ba ~bits;
      Workload.approx_agreement ~bits ~rounds:4;
    ]

let suite =
  [
    Alcotest.test_case "sensor readings" `Quick test_sensor_readings;
    Alcotest.test_case "price feed" `Quick test_price_feed;
    Alcotest.test_case "timestamps" `Quick test_timestamps;
    Alcotest.test_case "bit generators" `Quick test_bit_generators;
    Alcotest.test_case "spread_corrupt" `Quick test_spread_corrupt;
    Alcotest.test_case "input attacks" `Quick test_input_attacks;
    Alcotest.test_case "to_fixed clamps" `Quick test_to_fixed_clamps;
    Alcotest.test_case "report coherence" `Quick test_report_coherence;
    Alcotest.test_case "king injector" `Quick test_king_injector_wins_plain_ba;
    Alcotest.test_case "comparator wrappers" `Quick test_comparator_wrappers_roundtrip;
  ]
