(* The paper's core: lemma-level invariants for each subprotocol and the
   Definition 1 properties (Termination, Agreement, Convex Validity) for
   every composed protocol, under adversarial inputs and message strategies. *)

open Net

let bits_t = Alcotest.testable Bitstring.pp Bitstring.equal
let bigint_t = Alcotest.testable Bigint.pp Bigint.equal
let adversaries = Adversary.all_generic ~seed:2024

(* Honest inputs of a run (corrupt parties' inputs are adversary-controlled
   and do not constrain validity). *)
let honest_of ~corrupt arr =
  List.filteri (fun i _ -> not corrupt.(i)) (Array.to_list arr)

let range_of_bits inputs =
  let sorted = List.sort Bitstring.compare inputs in
  (List.hd sorted, List.nth sorted (List.length sorted - 1))

let check_ca_bits name ~corrupt ~inputs outputs =
  (match outputs with
  | [] -> Alcotest.fail "no honest outputs"
  | o :: rest ->
      Alcotest.check Alcotest.bool (name ^ ": agreement") true
        (List.for_all (Bitstring.equal o) rest));
  let lo, hi = range_of_bits (honest_of ~corrupt inputs) in
  List.iter
    (fun o ->
      Alcotest.check Alcotest.bool (name ^ ": convex validity") true
        (Bitstring.compare lo o <= 0 && Bitstring.compare o hi <= 0))
    outputs

(* ------------------------------------------------------------------ *)
(* HIGHCOSTCA (Appendix A.4)                                           *)
(* ------------------------------------------------------------------ *)

let test_high_cost_ca_basic () =
  let n = 7 and t = 2 and bits = 16 in
  let corrupt = Array.init n (fun i -> i >= n - t) in
  List.iter
    (fun adversary ->
      (* Corrupt parties hold wild outlier inputs; honest inputs cluster. *)
      let inputs =
        Array.init n (fun i ->
            if corrupt.(i) then Bitstring.of_int_fixed ~bits 65535
            else Bitstring.of_int_fixed ~bits (1000 + (i * 3)))
      in
      let outcome =
        Sim.run ~n ~t ~corrupt ~adversary (fun ctx ->
            Convex.agree_high_cost ctx ~bits inputs.(ctx.Ctx.me))
      in
      check_ca_bits
        (Printf.sprintf "HighCostCA vs %s" adversary.Adversary.name)
        ~corrupt ~inputs
        (Sim.honest_outputs ~corrupt outcome))
    (Adversary.passive :: adversaries)

let test_high_cost_ca_identical_inputs () =
  let n = 4 and t = 1 and bits = 8 in
  let corrupt = Sim.corrupt_first ~n t in
  let v = Bitstring.of_int_fixed ~bits 42 in
  let inputs = Array.make n v in
  let outcome =
    Sim.run ~n ~t ~corrupt ~adversary:(Adversary.garbage ~seed:5) (fun ctx ->
        Convex.agree_high_cost ctx ~bits inputs.(ctx.Ctx.me))
  in
  List.iter
    (fun o -> Alcotest.check bits_t "identical in, identical out" v o)
    (Sim.honest_outputs ~corrupt outcome)

let test_high_cost_ca_rounds () =
  (* Setup (2) + 4 rounds per king phase x (t+1) phases. *)
  let n = 7 and t = 2 and bits = 8 in
  let corrupt = Array.make n false in
  let inputs = Array.init n (fun i -> Bitstring.of_int_fixed ~bits i) in
  let outcome =
    Sim.run ~n ~t ~corrupt ~adversary:Adversary.passive (fun ctx ->
        Convex.agree_high_cost ctx ~bits inputs.(ctx.Ctx.me))
  in
  Alcotest.check Alcotest.int "rounds = 2 + 4(t+1)" (2 + (4 * (t + 1)))
    outcome.Sim.metrics.Metrics.rounds

let test_high_cost_ca_median_bound () =
  (* Lemma 10: the trusted interval contains v_{t+1}; with passive corrupt
     parties pushing extremes, the output stays within the honest range even
     when corrupt inputs dominate both tails. *)
  let n = 10 and t = 3 and bits = 12 in
  let corrupt = Array.init n (fun i -> i < 2 || i >= n - 1) in
  let inputs =
    Array.init n (fun i ->
        if i < 2 then Bitstring.of_int_fixed ~bits 0
        else if i >= n - 1 then Bitstring.of_int_fixed ~bits 4095
        else Bitstring.of_int_fixed ~bits (2000 + i))
  in
  let outcome =
    Sim.run ~n ~t ~corrupt ~adversary:Adversary.passive (fun ctx ->
        Convex.agree_high_cost ctx ~bits inputs.(ctx.Ctx.me))
  in
  check_ca_bits "HighCostCA extremes" ~corrupt ~inputs
    (Sim.honest_outputs ~corrupt outcome)

(* ------------------------------------------------------------------ *)
(* FINDPREFIX (Lemma 1)                                                *)
(* ------------------------------------------------------------------ *)

let run_find_prefix ~n ~t ~corrupt ~adversary ~bits inputs =
  Sim.run ~n ~t ~corrupt ~adversary (fun ctx ->
      Convex.Find_prefix.run ctx ~bits inputs.(ctx.Ctx.me))

let check_lemma1 name ~t ~corrupt ~bits ~inputs results =
  let honest_inputs = honest_of ~corrupt inputs in
  let lo, hi = range_of_bits honest_inputs in
  let valid v = Bitstring.compare lo v <= 0 && Bitstring.compare v hi <= 0 in
  (* (common) all honest parties share prefix_star. *)
  let p_star = (List.hd results).Convex.Find_prefix.prefix_star in
  List.iter
    (fun r ->
      Alcotest.check bits_t (name ^ ": common prefix") p_star
        r.Convex.Find_prefix.prefix_star)
    results;
  (* prefix_star extends the honest inputs' longest common prefix... at least
     reaches it: |p*| >= |lcp(honest inputs)|. *)
  let lcp =
    List.fold_left Bitstring.longest_common_prefix (List.hd honest_inputs)
      (List.tl honest_inputs)
  in
  Alcotest.check Alcotest.bool (name ^ ": at least as long as honest lcp") true
    (Bitstring.length p_star >= Bitstring.length lcp);
  List.iter
    (fun r ->
      (* (i) v valid with prefix p*. *)
      Alcotest.check Alcotest.bool (name ^ ": v has prefix") true
        (Bitstring.is_prefix ~prefix:p_star r.Convex.Find_prefix.v);
      Alcotest.check Alcotest.bool (name ^ ": v valid") true
        (valid r.Convex.Find_prefix.v);
      Alcotest.check Alcotest.bool (name ^ ": v_bot valid") true
        (valid r.Convex.Find_prefix.v_bot))
    results;
  (* (ii) for any (|p*|+1)-bit candidate, t+1 honest v_bot values do not
     extend it — checked for both single-bit extensions of p*, the cases
     GETOUTPUT depends on. *)
  if Bitstring.length p_star < bits then
    List.iter
      (fun bit ->
        let candidate = Bitstring.append_bit p_star bit in
        let differing =
          List.length
            (List.filter
               (fun r ->
                 not
                   (Bitstring.is_prefix ~prefix:candidate r.Convex.Find_prefix.v_bot))
               results)
        in
        Alcotest.check Alcotest.bool
          (Printf.sprintf "%s: t+1 honest differ from %s" name
             (Bitstring.to_string candidate))
          true (differing >= t + 1))
      [ false; true ]

let test_find_prefix_lemma1 () =
  let n = 7 and t = 2 and bits = 16 in
  let corrupt = Array.init n (fun i -> i = 1 || i = 4) in
  let configs =
    [
      ("clustered", Array.init n (fun i -> Bitstring.of_int_fixed ~bits (40000 + i)));
      ("identical", Array.make n (Bitstring.of_int_fixed ~bits 12345));
      ("spread", Array.init n (fun i -> Bitstring.of_int_fixed ~bits (i * 9000)));
      ( "two camps",
        Array.init n (fun i ->
            Bitstring.of_int_fixed ~bits (if i < n / 2 then 100 else 65000)) );
    ]
  in
  List.iter
    (fun (cname, inputs) ->
      List.iter
        (fun adversary ->
          let outcome = run_find_prefix ~n ~t ~corrupt ~adversary ~bits inputs in
          let results = Sim.honest_outputs ~corrupt outcome in
          check_lemma1
            (Printf.sprintf "FindPrefix[%s] vs %s" cname adversary.Adversary.name)
            ~t ~corrupt ~bits ~inputs results)
        [ Adversary.passive; Adversary.silent; Adversary.garbage ~seed:77 ])
    configs

let test_find_prefix_identical_full_prefix () =
  (* With unanimous honest inputs Π_ℓBA+ never returns ⊥, so the prefix
     reaches the full width and v equals the common input. *)
  let n = 4 and t = 1 and bits = 12 in
  let corrupt = Sim.corrupt_first ~n t in
  let v = Bitstring.of_int_fixed ~bits 2742 in
  let inputs = Array.make n v in
  let outcome =
    run_find_prefix ~n ~t ~corrupt ~adversary:Adversary.silent ~bits inputs
  in
  List.iter
    (fun r ->
      Alcotest.check bits_t "full prefix" v r.Convex.Find_prefix.prefix_star;
      Alcotest.check bits_t "v unchanged" v r.Convex.Find_prefix.v)
    (Sim.honest_outputs ~corrupt outcome)

let test_find_prefix_iteration_bound () =
  let n = 4 and t = 1 and bits = 64 in
  let corrupt = Sim.corrupt_first ~n t in
  let inputs = Array.init n (fun i -> Bitstring.of_int_fixed ~bits (i * 999)) in
  let outcome =
    run_find_prefix ~n ~t ~corrupt ~adversary:Adversary.passive ~bits inputs
  in
  List.iter
    (fun r ->
      Alcotest.check Alcotest.bool "O(log l) iterations" true
        (r.Convex.Find_prefix.iterations <= 8))
    (* ceil(log2 64) + 2 = 8 *)
    (Sim.honest_outputs ~corrupt outcome)

(* ------------------------------------------------------------------ *)
(* FIXEDLENGTHCA (Theorem 2) end to end                                *)
(* ------------------------------------------------------------------ *)

let run_fixed ~n ~t ~corrupt ~adversary ~bits inputs =
  Sim.run ~n ~t ~corrupt ~adversary (fun ctx ->
      Convex.agree_fixed_length ctx ~bits inputs.(ctx.Ctx.me))

let test_fixed_length_ca () =
  let n = 7 and t = 2 and bits = 24 in
  let corrupt = Array.init n (fun i -> i = 0 || i = 3) in
  let configs =
    [
      ("identical", Array.make n (Bitstring.of_int_fixed ~bits 99999));
      ("adjacent", Array.init n (fun i -> Bitstring.of_int_fixed ~bits (500000 + i)));
      ("spread", Array.init n (fun i -> Bitstring.of_int_fixed ~bits (i * 2000000)));
      ("zeros and max", Array.init n (fun i ->
           if i land 1 = 0 then Bitstring.zero bits else Bitstring.ones bits));
    ]
  in
  List.iter
    (fun (cname, inputs) ->
      List.iter
        (fun adversary ->
          let outcome = run_fixed ~n ~t ~corrupt ~adversary ~bits inputs in
          check_ca_bits
            (Printf.sprintf "FixedLengthCA[%s] vs %s" cname adversary.Adversary.name)
            ~corrupt ~inputs
            (Sim.honest_outputs ~corrupt outcome))
        adversaries)
    configs

let test_fixed_length_ca_outlier_injection () =
  (* The motivating sensor scenario: byzantine parties report +100°C-style
     outliers (here: all-ones) while honest sensors cluster tightly. Convex
     validity forces the output into the honest cluster. *)
  let n = 10 and t = 3 and bits = 20 in
  let corrupt = Array.init n (fun i -> i >= n - t) in
  let inputs =
    Array.init n (fun i ->
        if corrupt.(i) then Bitstring.ones bits
        else Bitstring.of_int_fixed ~bits (700000 + i))
  in
  let outcome = run_fixed ~n ~t ~corrupt ~adversary:Adversary.passive ~bits inputs in
  List.iter
    (fun o ->
      let v = Bitstring.to_int o in
      Alcotest.check Alcotest.bool "output inside honest cluster" true
        (v >= 700000 && v <= 700000 + n - t - 1))
    (Sim.honest_outputs ~corrupt outcome)

let test_fixed_length_one_bit () =
  let n = 4 and t = 1 and bits = 1 in
  let corrupt = Sim.corrupt_first ~n t in
  let inputs =
    [| Bitstring.of_string "1"; Bitstring.of_string "0"; Bitstring.of_string "1";
       Bitstring.of_string "0" |]
  in
  let outcome = run_fixed ~n ~t ~corrupt ~adversary:(Adversary.bitflip ~seed:3) ~bits inputs in
  check_ca_bits "1-bit CA" ~corrupt ~inputs (Sim.honest_outputs ~corrupt outcome)

(* ------------------------------------------------------------------ *)
(* Blocks variant (Theorem 4)                                          *)
(* ------------------------------------------------------------------ *)

let test_fixed_length_ca_blocks () =
  let n = 4 and t = 1 in
  let n2 = n * n in
  let bits = n2 * 8 (* 16 blocks of 8 bits = 128-bit values *) in
  let corrupt = Sim.corrupt_first ~n t in
  let mk base i =
    Bigint.to_bitstring_fixed ~bits
      (Bigint.add (Bigint.shift_left (Bigint.of_int base) 90) (Bigint.of_int i))
  in
  let configs =
    [
      ("identical", Array.init n (fun _ -> mk 77 5));
      ("near", Array.init n (fun i -> mk 77 i));
      ("far", Array.init n (fun i -> mk (i * 1000) i));
    ]
  in
  List.iter
    (fun (cname, inputs) ->
      List.iter
        (fun adversary ->
          let outcome =
            Sim.run ~n ~t ~corrupt ~adversary (fun ctx ->
                Convex.agree_fixed_length_blocks ctx ~bits inputs.(ctx.Ctx.me))
          in
          check_ca_bits
            (Printf.sprintf "Blocks[%s] vs %s" cname adversary.Adversary.name)
            ~corrupt ~inputs
            (Sim.honest_outputs ~corrupt outcome))
        [ Adversary.passive; Adversary.garbage ~seed:11; Adversary.crash ~after:10 ])
    configs

let test_blocks_fewer_iterations_than_bits () =
  let n = 4 and t = 1 in
  let bits = n * n * 64 (* 1024-bit values *) in
  let corrupt = Sim.corrupt_first ~n t in
  let inputs =
    Array.init n (fun i ->
        Bigint.to_bitstring_fixed ~bits (Bigint.add (Bigint.pow2 700) (Bigint.of_int i)))
  in
  let outcome =
    Sim.run ~n ~t ~corrupt ~adversary:Adversary.passive (fun ctx ->
        Convex.Find_prefix_blocks.run ctx ~bits inputs.(ctx.Ctx.me))
  in
  List.iter
    (fun r ->
      Alcotest.check Alcotest.bool "O(log n2) iterations" true
        (r.Convex.Find_prefix_blocks.iterations <= 6))
    (* ceil(log2 16) + 2 = 6, versus ceil(log2 1024) + 2 = 12 for bit search *)
    (Sim.honest_outputs ~corrupt outcome)

(* ------------------------------------------------------------------ *)
(* Π_ℕ and Π_ℤ (Theorems 5, Corollary 1)                               *)
(* ------------------------------------------------------------------ *)

let check_ca_int name ~corrupt ~inputs outputs =
  (match outputs with
  | [] -> Alcotest.fail "no honest outputs"
  | o :: rest ->
      Alcotest.check Alcotest.bool (name ^ ": agreement") true
        (List.for_all (Bigint.equal o) rest));
  let honest = honest_of ~corrupt inputs in
  List.iter
    (fun o ->
      Alcotest.check Alcotest.bool (name ^ ": convex validity") true
        (Convex.in_convex_hull ~inputs:honest o))
    outputs

let run_nat ~n ~t ~corrupt ~adversary inputs =
  Sim.run ~n ~t ~corrupt ~adversary (fun ctx -> Convex.agree_nat ctx inputs.(ctx.Ctx.me))

let run_int ~n ~t ~corrupt ~adversary inputs =
  Sim.run ~n ~t ~corrupt ~adversary (fun ctx -> Convex.agree_int ctx inputs.(ctx.Ctx.me))

let test_ca_nat_short_regime () =
  let n = 4 and t = 1 in
  let corrupt = [| false; true; false; false |] in
  let configs =
    [
      ("identical", Array.make n (Bigint.of_int 424242));
      ("mixed lengths", [| Bigint.of_int 3; Bigint.of_int 70000; Bigint.of_int 12; Bigint.of_int 9 |]);
      ("zeros", [| Bigint.zero; Bigint.zero; Bigint.of_int 1; Bigint.zero |]);
      ("all zero", Array.make n Bigint.zero);
    ]
  in
  List.iter
    (fun (cname, inputs) ->
      List.iter
        (fun adversary ->
          let outcome = run_nat ~n ~t ~corrupt ~adversary inputs in
          check_ca_int
            (Printf.sprintf "Pi_N short[%s] vs %s" cname adversary.Adversary.name)
            ~corrupt ~inputs
            (Sim.honest_outputs ~corrupt outcome))
        [ Adversary.passive; Adversary.garbage ~seed:4; Adversary.equivocate ~seed:8 ])
    configs

let test_ca_nat_long_regime () =
  (* n = 4 so anything beyond 16 bits takes the blocks path. *)
  let n = 4 and t = 1 in
  let corrupt = [| false; false; true; false |] in
  let big i = Bigint.add (Bigint.pow2 300) (Bigint.of_int (i * 1000)) in
  let inputs = Array.init n big in
  List.iter
    (fun adversary ->
      let outcome = run_nat ~n ~t ~corrupt ~adversary inputs in
      check_ca_int
        (Printf.sprintf "Pi_N long vs %s" adversary.Adversary.name)
        ~corrupt ~inputs
        (Sim.honest_outputs ~corrupt outcome))
    [ Adversary.passive; Adversary.silent; Adversary.garbage ~seed:6 ]

let test_ca_nat_mixed_regimes () =
  (* Some honest parties short, some long: the length-regime agreement must
     still produce a valid common output. *)
  let n = 4 and t = 1 in
  let corrupt = [| true; false; false; false |] in
  let inputs = [| Bigint.zero; Bigint.of_int 7; Bigint.pow2 200; Bigint.of_int 90 |] in
  List.iter
    (fun adversary ->
      let outcome = run_nat ~n ~t ~corrupt ~adversary inputs in
      check_ca_int
        (Printf.sprintf "Pi_N mixed vs %s" adversary.Adversary.name)
        ~corrupt ~inputs
        (Sim.honest_outputs ~corrupt outcome))
    [ Adversary.passive; Adversary.garbage ~seed:21 ]

let test_ca_int_signs () =
  let n = 4 and t = 1 in
  let corrupt = [| false; false; false; true |] in
  let configs =
    [
      ("all negative", [| Bigint.of_int (-10); Bigint.of_int (-40); Bigint.of_int (-20); Bigint.of_int 999 |]);
      ("mixed signs", [| Bigint.of_int (-5); Bigint.of_int 17; Bigint.of_int (-1); Bigint.zero |]);
      ("all positive", [| Bigint.of_int 5; Bigint.of_int 7; Bigint.of_int 6; Bigint.of_int (-9) |]);
      ("zero crossing", [| Bigint.zero; Bigint.of_int (-1); Bigint.of_int 1; Bigint.of_int 100 |]);
    ]
  in
  List.iter
    (fun (cname, inputs) ->
      List.iter
        (fun adversary ->
          let outcome = run_int ~n ~t ~corrupt ~adversary inputs in
          check_ca_int
            (Printf.sprintf "Pi_Z[%s] vs %s" cname adversary.Adversary.name)
            ~corrupt ~inputs
            (Sim.honest_outputs ~corrupt outcome))
        [ Adversary.passive; Adversary.garbage ~seed:31; Adversary.crash ~after:6 ])
    configs

let test_ca_int_identical () =
  let n = 7 and t = 2 in
  let corrupt = Sim.corrupt_first ~n t in
  let v = Bigint.of_string "-123456789123456789" in
  let inputs = Array.make n v in
  let outcome = run_int ~n ~t ~corrupt ~adversary:(Adversary.garbage ~seed:1) inputs in
  List.iter
    (fun o -> Alcotest.check bigint_t "unanimous integer kept" v o)
    (Sim.honest_outputs ~corrupt outcome)

(* Property test: random everything. *)
let prop_ca_int_random =
  QCheck.Test.make ~name:"Pi_Z random runs satisfy CA" ~count:20
    QCheck.(triple (int_bound 100000) (int_bound 11) (int_bound 2))
    (fun (seed, adv_idx, spread_kind) ->
      let n = 4 and t = 1 in
      let rng = Prng.create seed in
      let corrupt = Array.make n false in
      corrupt.(Prng.int rng n) <- true;
      let gen_value () =
        let magnitude =
          match spread_kind with
          | 0 -> Bigint.of_int (Prng.int rng 1000)
          | 1 -> Bigint.of_int (1000000 + Prng.int rng 1000)
          | _ -> Bigint.add (Bigint.pow2 (17 + Prng.int rng 60)) (Bigint.of_int (Prng.int rng 500))
        in
        if Prng.bool rng then Bigint.neg magnitude else magnitude
      in
      let inputs = Array.init n (fun _ -> gen_value ()) in
      let adversary =
        List.nth (Adversary.passive :: adversaries)
          (adv_idx mod (1 + List.length adversaries))
      in
      let outcome = run_int ~n ~t ~corrupt ~adversary inputs in
      let honest_outputs = Sim.honest_outputs ~corrupt outcome in
      let honest_inputs = honest_of ~corrupt inputs in
      (match honest_outputs with
      | o :: rest -> List.for_all (Bigint.equal o) rest
      | [] -> false)
      && List.for_all
           (fun o -> Convex.in_convex_hull ~inputs:honest_inputs o)
           honest_outputs)

let suite =
  [
    Alcotest.test_case "HighCostCA basic" `Quick test_high_cost_ca_basic;
    Alcotest.test_case "HighCostCA identical" `Quick test_high_cost_ca_identical_inputs;
    Alcotest.test_case "HighCostCA rounds" `Quick test_high_cost_ca_rounds;
    Alcotest.test_case "HighCostCA extremes" `Quick test_high_cost_ca_median_bound;
    Alcotest.test_case "FindPrefix Lemma 1" `Slow test_find_prefix_lemma1;
    Alcotest.test_case "FindPrefix unanimous" `Quick test_find_prefix_identical_full_prefix;
    Alcotest.test_case "FindPrefix iteration bound" `Quick test_find_prefix_iteration_bound;
    Alcotest.test_case "FixedLengthCA" `Slow test_fixed_length_ca;
    Alcotest.test_case "FixedLengthCA outliers" `Quick test_fixed_length_ca_outlier_injection;
    Alcotest.test_case "FixedLengthCA 1-bit" `Quick test_fixed_length_one_bit;
    Alcotest.test_case "FixedLengthCABlocks" `Slow test_fixed_length_ca_blocks;
    Alcotest.test_case "Blocks iteration advantage" `Quick test_blocks_fewer_iterations_than_bits;
    Alcotest.test_case "Pi_N short regime" `Quick test_ca_nat_short_regime;
    Alcotest.test_case "Pi_N long regime" `Quick test_ca_nat_long_regime;
    Alcotest.test_case "Pi_N mixed regimes" `Quick test_ca_nat_mixed_regimes;
    Alcotest.test_case "Pi_Z signs" `Quick test_ca_int_signs;
    Alcotest.test_case "Pi_Z unanimous" `Quick test_ca_int_identical;
    QCheck_alcotest.to_alcotest prop_ca_int_random;
  ]
