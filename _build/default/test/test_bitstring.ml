(* Unit and property tests for the Bitstring substrate (Section 2 notation). *)

module B = Bitstring

let bits = Alcotest.testable B.pp B.equal

let check_bits = Alcotest.check bits
let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool

let test_construction () =
  check_int "empty length" 0 (B.length B.empty);
  check_bits "zero" (B.of_string "0000") (B.zero 4);
  check_bits "ones" (B.of_string "111") (B.ones 3);
  check_bits "of_bool_list" (B.of_string "101") (B.of_bool_list [ true; false; true ]);
  check_bits "init" (B.of_string "10101") (B.init 5 (fun i -> i mod 2 = 1));
  Alcotest.check_raises "of_string rejects junk" (Invalid_argument "Bitstring.of_string")
    (fun () -> ignore (B.of_string "01x"))

let test_get () =
  let b = B.of_string "0110" in
  check_bool "bit 1" false (B.get b 1);
  check_bool "bit 2" true (B.get b 2);
  check_bool "bit 3" true (B.get b 3);
  check_bool "bit 4" false (B.get b 4);
  Alcotest.check_raises "get 0" (Invalid_argument "Bitstring.get") (fun () ->
      ignore (B.get b 0));
  Alcotest.check_raises "get past end" (Invalid_argument "Bitstring.get") (fun () ->
      ignore (B.get b 5))

let test_append () =
  check_bits "append" (B.of_string "0110111") (B.append (B.of_string "011") (B.of_string "0111"));
  check_bits "append empty l" (B.of_string "01") (B.append B.empty (B.of_string "01"));
  check_bits "append empty r" (B.of_string "01") (B.append (B.of_string "01") B.empty);
  check_bits "append_bit" (B.of_string "011") (B.append_bit (B.of_string "01") true);
  (* Byte-aligned fast path: left operand of exactly 8 and 16 bits. *)
  let a8 = B.of_string "10110010" in
  check_bits "aligned append" (B.of_string "101100101") (B.append a8 (B.of_string "1"));
  check_bits "concat" (B.of_string "101100") (B.concat [ B.of_string "10"; B.of_string "110"; B.of_string "0" ])

let test_sub_range () =
  let b = B.of_string "110100111010" in
  check_bits "sub middle" (B.of_string "0100") (B.sub b ~pos:3 ~len:4);
  check_bits "sub aligned" (B.of_string "1010") (B.sub b ~pos:9 ~len:4);
  check_bits "sub full" b (B.sub b ~pos:1 ~len:12);
  check_bits "range" (B.of_string "010") (B.range b ~left:3 ~right:5);
  check_bits "range inverted" B.empty (B.range b ~left:5 ~right:4);
  check_bits "prefix" (B.of_string "1101") (B.prefix b 4);
  Alcotest.check_raises "sub out of range" (Invalid_argument "Bitstring.sub") (fun () ->
      ignore (B.sub b ~pos:10 ~len:4))

let test_prefix_predicates () =
  let b = B.of_string "10110" in
  check_bool "is_prefix yes" true (B.is_prefix ~prefix:(B.of_string "101") b);
  check_bool "is_prefix self" true (B.is_prefix ~prefix:b b);
  check_bool "is_prefix empty" true (B.is_prefix ~prefix:B.empty b);
  check_bool "is_prefix no" false (B.is_prefix ~prefix:(B.of_string "100") b);
  check_bool "is_prefix too long" false (B.is_prefix ~prefix:(B.of_string "101101") b);
  check_bits "lcp" (B.of_string "10") (B.longest_common_prefix b (B.of_string "100"));
  check_bits "lcp disjoint" B.empty (B.longest_common_prefix b (B.of_string "01"));
  check_bits "lcp equal" b (B.longest_common_prefix b b)

let test_numeric () =
  check_bits "of_int 0 is '0'" (B.of_string "0") (B.of_int 0);
  check_bits "of_int 1" (B.of_string "1") (B.of_int 1);
  check_bits "of_int 6" (B.of_string "110") (B.of_int 6);
  check_bits "of_int_fixed" (B.of_string "00000110") (B.of_int_fixed ~bits:8 6);
  check_int "to_int roundtrip" 12345 (B.to_int (B.of_int 12345));
  check_int "to_int padded" 6 (B.to_int (B.of_string "00110"));
  check_int "significant_bits" 3 (B.significant_bits (B.of_string "00110"));
  check_int "significant_bits zero" 1 (B.significant_bits (B.of_string "0000"));
  check_int "significant_bits empty" 0 (B.significant_bits B.empty);
  check_bits "strip" (B.of_string "110") (B.strip_leading_zeros (B.of_string "00110"));
  check_bits "strip all-zero" (B.of_string "0") (B.strip_leading_zeros (B.of_string "000"));
  check_bits "pad_to" (B.of_string "000110") (B.pad_to 6 (B.of_string "110"));
  check_bits "pad_to shrinks padded" (B.of_string "0110") (B.pad_to 4 (B.of_string "0000110"));
  Alcotest.check_raises "pad_to too small" (Invalid_argument "Bitstring.pad_to") (fun () ->
      ignore (B.pad_to 2 (B.of_string "110")))

let test_min_max_fill () =
  check_bits "min_fill" (B.of_string "10100") (B.min_fill 5 (B.of_string "101"));
  check_bits "max_fill" (B.of_string "10111") (B.max_fill 5 (B.of_string "101"));
  check_bits "min_fill exact" (B.of_string "101") (B.min_fill 3 (B.of_string "101"));
  (* Remark 1 of the paper: MAX(p||0) + 1 = MIN(p||1). *)
  let p = B.of_string "0110" in
  let mx = B.to_int (B.max_fill 9 (B.append_bit p false)) in
  let mn = B.to_int (B.min_fill 9 (B.append_bit p true)) in
  check_int "Remark 1 adjacency" (mx + 1) mn

let test_compare () =
  let c = B.compare in
  Alcotest.check Alcotest.bool "lex less" true (c (B.of_string "0011") (B.of_string "0100") < 0);
  Alcotest.check Alcotest.bool "shorter prefix less" true (c (B.of_string "01") (B.of_string "011") < 0);
  check_int "equal" 0 (c (B.of_string "0110") (B.of_string "0110"));
  (* compare_val ignores leading zeros. *)
  check_int "val equal across pad" 0 (B.compare_val (B.of_string "00110") (B.of_string "110"));
  Alcotest.check Alcotest.bool "val order" true (B.compare_val (B.of_string "0111") (B.of_string "1000") < 0);
  Alcotest.check Alcotest.bool "val zero lowest" true (B.compare_val (B.of_string "0000") (B.of_string "1") < 0);
  check_int "val zero equal" 0 (B.compare_val (B.of_string "0") (B.of_string "0000"))

let test_blocks () =
  let b = B.of_string "110100111010" in
  let bs = B.blocks ~block_bits:4 b in
  Alcotest.check Alcotest.int "block count" 3 (List.length bs);
  check_bits "block 1" (B.of_string "1101") (List.nth bs 0);
  check_bits "block 3" (B.of_string "1010") (List.nth bs 2);
  check_bits "concat inverts blocks" b (B.concat bs);
  Alcotest.check_raises "non-multiple" (Invalid_argument "Bitstring.blocks: length not a multiple")
    (fun () -> ignore (B.blocks ~block_bits:5 b))

let test_bytes_roundtrip () =
  let b = B.of_string "1101001110" in
  (match B.of_bytes ~len:(B.length b) (B.to_bytes b) with
  | Some b' -> check_bits "roundtrip" b b'
  | None -> Alcotest.fail "roundtrip failed");
  (* Defensive: nonzero padding must be rejected. *)
  Alcotest.check Alcotest.bool "bad padding rejected" true
    (B.of_bytes ~len:4 "\xff" = None);
  Alcotest.check Alcotest.bool "short buffer rejected" true (B.of_bytes ~len:20 "\xff" = None);
  Alcotest.check Alcotest.bool "long buffer rejected" true (B.of_bytes ~len:4 "\xf0\x00" = None);
  Alcotest.check Alcotest.bool "empty ok" true (B.of_bytes ~len:0 "" = Some B.empty)

(* Property tests ----------------------------------------------------------- *)

let gen_bits =
  QCheck.Gen.(
    sized_size (0 -- 200) (fun n ->
        map B.of_bool_list (list_size (return n) bool)))

let arb_bits = QCheck.make ~print:B.to_string gen_bits

let prop_roundtrip_bytes =
  QCheck.Test.make ~name:"bytes roundtrip" ~count:200 arb_bits (fun b ->
      B.of_bytes ~len:(B.length b) (B.to_bytes b) = Some b)

let prop_append_length =
  QCheck.Test.make ~name:"append length and content" ~count:200
    (QCheck.pair arb_bits arb_bits) (fun (a, b) ->
      let ab = B.append a b in
      B.length ab = B.length a + B.length b
      && B.is_prefix ~prefix:a ab
      && B.equal b (B.range ab ~left:(B.length a + 1) ~right:(B.length ab)))

let prop_val_order_matches_int =
  QCheck.Test.make ~name:"compare_val matches int order" ~count:500
    QCheck.(pair (int_bound 100000) (int_bound 100000))
    (fun (x, y) ->
      let c = B.compare_val (B.of_int x) (B.of_int y) in
      (c < 0 && x < y) || (c = 0 && x = y) || (c > 0 && x > y))

let prop_fixed_compare_matches_int =
  QCheck.Test.make ~name:"fixed-width compare matches int order" ~count:500
    QCheck.(pair (int_bound 100000) (int_bound 100000))
    (fun (x, y) ->
      let bx = B.of_int_fixed ~bits:20 x and by = B.of_int_fixed ~bits:20 y in
      let c = B.compare bx by in
      (c < 0 && x < y) || (c = 0 && x = y) || (c > 0 && x > y))

let prop_min_max_fill_bounds =
  QCheck.Test.make ~name:"min/max fill bound all completions" ~count:200
    QCheck.(pair (int_bound 4000) (int_bound 10))
    (fun (v, extra) ->
      let p = B.of_int v in
      let len = B.length p + extra in
      let mn = B.min_fill len p and mx = B.max_fill len p in
      B.compare mn mx <= 0
      && B.is_prefix ~prefix:p mn
      && B.is_prefix ~prefix:p mx
      && B.to_int mx - B.to_int mn = (1 lsl extra) - 1)

let prop_strip_preserves_val =
  QCheck.Test.make ~name:"strip_leading_zeros preserves VAL" ~count:200 arb_bits
    (fun b ->
      QCheck.assume (not (B.is_empty b));
      B.compare_val b (B.strip_leading_zeros b) = 0)

let prop_blocks_roundtrip =
  QCheck.Test.make ~name:"blocks/concat roundtrip" ~count:200
    QCheck.(pair (1 -- 12) (1 -- 16))
    (fun (block_bits, count) ->
      let b = B.init (block_bits * count) (fun i -> i * 7 mod 3 = 0) in
      B.equal b (B.concat (B.blocks ~block_bits b))
      && List.length (B.blocks ~block_bits b) = count)

let suite =
  [
    Alcotest.test_case "construction" `Quick test_construction;
    Alcotest.test_case "get" `Quick test_get;
    Alcotest.test_case "append" `Quick test_append;
    Alcotest.test_case "sub/range" `Quick test_sub_range;
    Alcotest.test_case "prefix predicates" `Quick test_prefix_predicates;
    Alcotest.test_case "numeric" `Quick test_numeric;
    Alcotest.test_case "min/max fill" `Quick test_min_max_fill;
    Alcotest.test_case "compare" `Quick test_compare;
    Alcotest.test_case "blocks" `Quick test_blocks;
    Alcotest.test_case "bytes roundtrip" `Quick test_bytes_roundtrip;
    QCheck_alcotest.to_alcotest prop_roundtrip_bytes;
    QCheck_alcotest.to_alcotest prop_append_length;
    QCheck_alcotest.to_alcotest prop_val_order_matches_int;
    QCheck_alcotest.to_alcotest prop_fixed_compare_matches_int;
    QCheck_alcotest.to_alcotest prop_min_max_fill_bounds;
    QCheck_alcotest.to_alcotest prop_strip_preserves_val;
    QCheck_alcotest.to_alcotest prop_blocks_roundtrip;
  ]
