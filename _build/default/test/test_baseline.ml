(* Baselines: the BC-based CA and synchronous Approximate Agreement. Besides
   their own correctness, these tests pin down the comparison facts the
   benchmarks rely on (communication ordering, AA's residual disagreement). *)

open Net

let bits_t = Alcotest.testable Bitstring.pp Bitstring.equal

let honest_of ~corrupt arr = List.filteri (fun i _ -> not corrupt.(i)) (Array.to_list arr)

let check_ca name ~corrupt ~inputs outputs =
  (match outputs with
  | [] -> Alcotest.fail "no honest outputs"
  | o :: rest ->
      Alcotest.check Alcotest.bool (name ^ ": agreement") true
        (List.for_all (Bitstring.equal o) rest));
  let sorted = List.sort Bitstring.compare (honest_of ~corrupt inputs) in
  let lo = List.hd sorted and hi = List.nth sorted (List.length sorted - 1) in
  List.iter
    (fun o ->
      Alcotest.check Alcotest.bool (name ^ ": convex validity") true
        (Bitstring.compare lo o <= 0 && Bitstring.compare o hi <= 0))
    outputs

let test_broadcast_ca () =
  let n = 4 and t = 1 and bits = 16 in
  let corrupt = [| false; true; false; false |] in
  let configs =
    [
      ("identical", Array.make n (Bitstring.of_int_fixed ~bits 777));
      ("spread", Array.init n (fun i -> Bitstring.of_int_fixed ~bits (i * 111)));
      ( "byz outlier",
        Array.init n (fun i ->
            if corrupt.(i) then Bitstring.ones bits
            else Bitstring.of_int_fixed ~bits (100 + i)) );
    ]
  in
  List.iter
    (fun (cname, inputs) ->
      List.iter
        (fun adversary ->
          let outcome =
            Sim.run ~n ~t ~corrupt ~adversary (fun ctx ->
                Baseline.Broadcast_ca.run ctx ~bits inputs.(ctx.Ctx.me))
          in
          check_ca
            (Printf.sprintf "BroadcastCA[%s] vs %s" cname adversary.Adversary.name)
            ~corrupt ~inputs
            (Sim.honest_outputs ~corrupt outcome))
        [ Adversary.passive; Adversary.silent; Adversary.garbage ~seed:13 ])
    configs

let test_broadcast_ca_identical_value_kept () =
  let n = 4 and t = 1 and bits = 12 in
  let corrupt = Sim.corrupt_first ~n t in
  let v = Bitstring.of_int_fixed ~bits 1234 in
  let inputs = Array.make n v in
  let outcome =
    Sim.run ~n ~t ~corrupt ~adversary:Adversary.silent (fun ctx ->
        Baseline.Broadcast_ca.run ctx ~bits inputs.(ctx.Ctx.me))
  in
  List.iter
    (fun o -> Alcotest.check bits_t "median of common view" v o)
    (Sim.honest_outputs ~corrupt outcome)

let test_approx_agreement_validity_and_convergence () =
  let n = 7 and t = 2 and bits = 20 in
  let corrupt = Array.init n (fun i -> i >= n - t) in
  let inputs =
    Array.init n (fun i ->
        if corrupt.(i) then Bitstring.ones bits
        else Bitstring.of_int_fixed ~bits (300000 + (i * 5000)))
  in
  List.iter
    (fun adversary ->
      let outcome =
        Sim.run ~n ~t ~corrupt ~adversary (fun ctx ->
            Baseline.Approx_agreement.run ctx ~bits ~rounds:12 inputs.(ctx.Ctx.me))
      in
      let outs = Sim.honest_outputs ~corrupt outcome in
      let vals = List.map Bitstring.to_int outs in
      let lo_out = List.fold_left min (List.hd vals) vals in
      let hi_out = List.fold_left max (List.hd vals) vals in
      (* Validity. *)
      Alcotest.check Alcotest.bool
        (Printf.sprintf "AA validity vs %s" adversary.Adversary.name)
        true
        (lo_out >= 300000 && hi_out <= 300000 + ((n - t - 1) * 5000));
      (* ε-agreement: initial honest diameter 20000 must have contracted a
         lot — but, in general, NOT to zero: AA is weaker than CA. *)
      Alcotest.check Alcotest.bool
        (Printf.sprintf "AA convergence vs %s" adversary.Adversary.name)
        true
        (hi_out - lo_out <= 20000 / 512))
    [ Adversary.passive; Adversary.silent; Adversary.equivocate ~seed:3;
      Adversary.bitflip ~seed:9 ]

let test_approx_agreement_zero_rounds () =
  let n = 4 and t = 1 and bits = 8 in
  let corrupt = Sim.corrupt_first ~n t in
  let inputs = Array.init n (fun i -> Bitstring.of_int_fixed ~bits (i * 10)) in
  let outcome =
    Sim.run ~n ~t ~corrupt ~adversary:Adversary.passive (fun ctx ->
        Baseline.Approx_agreement.run ctx ~bits ~rounds:0 inputs.(ctx.Ctx.me))
  in
  Array.iteri
    (fun i o ->
      if not corrupt.(i) then
        Alcotest.check (Alcotest.option bits_t) "identity at 0 rounds" (Some inputs.(i)) o)
    outcome.Sim.outputs

let test_communication_ordering () =
  (* The benchmark premise: on sufficiently long inputs,
     Π_Z  <  Turpin-Coan BA  <  BroadcastCA, in honest bits. *)
  let n = 7 and t = 2 and bits = 2048 in
  let corrupt = Sim.corrupt_first ~n t in
  let inputs =
    Array.init n (fun i ->
        Bigint.to_bitstring_fixed ~bits (Bigint.add (Bigint.pow2 2000) (Bigint.of_int i)))
  in
  let bits_of protocol =
    let outcome = Sim.run ~n ~t ~corrupt ~adversary:Adversary.passive protocol in
    outcome.Sim.metrics.Metrics.honest_bits
  in
  let ours =
    bits_of (fun ctx ->
        Convex.agree_nat ctx (Bigint.of_bitstring inputs.(ctx.Ctx.me)))
  in
  let tc =
    bits_of (fun ctx ->
        Ba.Turpin_coan.run_bytes ctx (Bitstring.to_bytes inputs.(ctx.Ctx.me)))
  in
  let bc =
    bits_of (fun ctx -> Baseline.Broadcast_ca.run ctx ~bits inputs.(ctx.Ctx.me))
  in
  Alcotest.check Alcotest.bool "ours < broadcast-CA" true (ours < bc);
  Alcotest.check Alcotest.bool "turpin-coan < broadcast-CA" true (tc < bc)

let prop_broadcast_ca_random =
  QCheck.Test.make ~name:"BroadcastCA random runs satisfy CA" ~count:15
    QCheck.(pair (int_bound 10000) (int_bound 3))
    (fun (seed, adv) ->
      let n = 4 and t = 1 and bits = 10 in
      let rng = Prng.create seed in
      let corrupt = Array.make n false in
      corrupt.(Prng.int rng n) <- true;
      let inputs = Array.init n (fun _ -> Bitstring.of_int_fixed ~bits (Prng.int rng 1024)) in
      let adversary =
        List.nth
          [ Adversary.passive; Adversary.silent; Adversary.garbage ~seed;
            Adversary.equivocate ~seed ]
          adv
      in
      let outcome =
        Sim.run ~n ~t ~corrupt ~adversary (fun ctx ->
            Baseline.Broadcast_ca.run ctx ~bits inputs.(ctx.Ctx.me))
      in
      let outs = Sim.honest_outputs ~corrupt outcome in
      let sorted = List.sort Bitstring.compare (honest_of ~corrupt inputs) in
      let lo = List.hd sorted and hi = List.nth sorted (List.length sorted - 1) in
      (match outs with
      | o :: rest -> List.for_all (Bitstring.equal o) rest
      | [] -> false)
      && List.for_all
           (fun o -> Bitstring.compare lo o <= 0 && Bitstring.compare o hi <= 0)
           outs)

let suite =
  [
    Alcotest.test_case "BroadcastCA" `Quick test_broadcast_ca;
    Alcotest.test_case "BroadcastCA unanimous" `Quick test_broadcast_ca_identical_value_kept;
    Alcotest.test_case "ApproxAgreement" `Quick test_approx_agreement_validity_and_convergence;
    Alcotest.test_case "ApproxAgreement 0 rounds" `Quick test_approx_agreement_zero_rounds;
    Alcotest.test_case "communication ordering" `Slow test_communication_ordering;
    QCheck_alcotest.to_alcotest prop_broadcast_ca_random;
  ]
