(* The authenticated setting (t < n/2 with a PKI): Dolev–Strong broadcast and
   the authenticated CA — the paper's second open-problem regime. *)

open Net

let bits_t = Alcotest.testable Bitstring.pp Bitstring.equal

let fresh_setup ~n = Auth.Setup.generate ~seed:31415 ~n ~capacity:24

let run_ds ~n ~t ~corrupt ~adversary ~sender v =
  let setup = fresh_setup ~n in
  ( setup,
    Sim.run ~setup:`Authenticated ~n ~t ~corrupt ~adversary (fun ctx ->
        Auth.Dolev_strong.run setup ctx ~instance:0 ~sender
          (if ctx.Ctx.me = sender then v else "")) )

let test_ds_honest_sender () =
  let n = 4 and t = 1 in
  let corrupt = [| false; false; false; true |] in
  List.iter
    (fun adversary ->
      let _, outcome = run_ds ~n ~t ~corrupt ~adversary ~sender:0 "signed-value" in
      List.iter
        (fun v ->
          Alcotest.check (Alcotest.option Alcotest.string)
            (Printf.sprintf "validity vs %s" adversary.Adversary.name)
            (Some "signed-value") v)
        (Sim.honest_outputs ~corrupt outcome))
    [ Adversary.passive; Adversary.silent; Adversary.garbage ~seed:8;
      Adversary.bitflip ~seed:9 ]

let test_ds_silent_sender () =
  let n = 4 and t = 1 in
  let corrupt = [| true; false; false; false |] in
  let _, outcome = run_ds ~n ~t ~corrupt ~adversary:Adversary.silent ~sender:0 "x" in
  List.iter
    (fun v ->
      Alcotest.check (Alcotest.option Alcotest.string) "no delivery" None v)
    (Sim.honest_outputs ~corrupt outcome)

let test_ds_equivocating_sender () =
  (* The corrupted sender signs two different values (the adversary holds its
     secret key) and shows each to half the parties. Honest outputs must
     still be identical — either one value or bot. *)
  let n = 4 and t = 1 in
  let corrupt = [| true; false; false; false |] in
  let setup = fresh_setup ~n in
  let sign_batch value =
    let signature =
      Sigs.Xmss.sign setup.Auth.Setup.signers.(0)
        (Auth.Dolev_strong.signed_bytes ~instance:0 ~sender:0 value)
    in
    Auth.Dolev_strong.encode_batch [ (value, [ (0, signature) ]) ]
  in
  let batch_a = sign_batch "value-A" and batch_b = sign_batch "value-B" in
  let equivocator =
    Adversary.make ~name:"signed-equivocation" (fun view ~sender ~recipient ->
        if view.Adversary.round = 1 && sender = 0 then
          Some (if recipient < n / 2 then batch_a else batch_b)
        else Adversary.prescribed_msg view ~sender ~recipient)
  in
  let outcome =
    Sim.run ~setup:`Authenticated ~n ~t ~corrupt ~adversary:equivocator (fun ctx ->
        Auth.Dolev_strong.run setup ctx ~instance:0 ~sender:0
          (if ctx.Ctx.me = 0 then "value-A" else ""))
  in
  let outputs = Sim.honest_outputs ~corrupt outcome in
  (match outputs with
  | o :: rest ->
      Alcotest.check Alcotest.bool "agreement despite equivocation" true
        (List.for_all (Option.equal String.equal o) rest)
  | [] -> Alcotest.fail "no outputs");
  (* With both signed values circulating, every honest party must have seen
     both and output bot. *)
  List.iter
    (fun o ->
      Alcotest.check (Alcotest.option Alcotest.string) "bot on equivocation" None o)
    outputs

let test_ds_forged_chain_rejected () =
  (* A corrupted relay rewrites the value inside an honest chain; without the
     sender's signature over the new value the chain is invalid and honest
     parties keep the genuine value. *)
  let n = 4 and t = 1 in
  let corrupt = [| false; false; false; true |] in
  let forger =
    Adversary.make ~name:"chain-forger" (fun view ~sender ~recipient ->
        match Adversary.prescribed_msg view ~sender ~recipient with
        | Some _raw when view.Adversary.round >= 2 ->
            (* Replace the relay with garbage claiming to be a chain. *)
            Some (String.make 200 'Z')
        | other -> other)
  in
  let setup = fresh_setup ~n in
  let outcome =
    Sim.run ~setup:`Authenticated ~n ~t ~corrupt ~adversary:forger (fun ctx ->
        Auth.Dolev_strong.run setup ctx ~instance:0 ~sender:1
          (if ctx.Ctx.me = 1 then "genuine" else ""))
  in
  List.iter
    (fun v ->
      Alcotest.check (Alcotest.option Alcotest.string) "genuine value survives"
        (Some "genuine") v)
    (Sim.honest_outputs ~corrupt outcome)

let test_auth_ca_beyond_third () =
  (* n = 5, t = 2: more corruptions than any plain-model protocol tolerates
     (3t >= n), handled thanks to the PKI. *)
  let n = 5 and t = 2 and bits = 16 in
  let corrupt = [| true; false; true; false; false |] in
  let inputs =
    [|
      Bitstring.ones bits;
      Bitstring.of_int_fixed ~bits 500;
      Bitstring.zero bits;
      Bitstring.of_int_fixed ~bits 510;
      Bitstring.of_int_fixed ~bits 505;
    |]
  in
  List.iter
    (fun adversary ->
      let setup = fresh_setup ~n in
      let outcome =
        Sim.run ~setup:`Authenticated ~n ~t ~corrupt ~adversary (fun ctx ->
            Auth.Auth_ca.run setup ctx ~bits inputs.(ctx.Ctx.me))
      in
      let outputs = Sim.honest_outputs ~corrupt outcome in
      (match outputs with
      | o :: rest ->
          Alcotest.check Alcotest.bool
            (Printf.sprintf "agreement vs %s" adversary.Adversary.name)
            true
            (List.for_all (Bitstring.equal o) rest)
      | [] -> Alcotest.fail "no outputs");
      List.iter
        (fun o ->
          let v = Bitstring.to_int o in
          Alcotest.check Alcotest.bool
            (Printf.sprintf "convex validity at t<n/2 vs %s" adversary.Adversary.name)
            true
            (v >= 500 && v <= 510))
        outputs)
    [ Adversary.passive; Adversary.silent; Adversary.garbage ~seed:5 ]

let test_auth_ca_unanimous () =
  let n = 4 and t = 1 and bits = 12 in
  let corrupt = Sim.corrupt_first ~n t in
  let v = Bitstring.of_int_fixed ~bits 999 in
  let inputs = Array.make n v in
  let setup = fresh_setup ~n in
  let outcome =
    Sim.run ~setup:`Authenticated ~n ~t ~corrupt ~adversary:(Adversary.bitflip ~seed:3)
      (fun ctx -> Auth.Auth_ca.run setup ctx ~bits inputs.(ctx.Ctx.me))
  in
  List.iter
    (fun o -> Alcotest.check bits_t "unanimous kept" v o)
    (Sim.honest_outputs ~corrupt outcome)

let test_auth_ca_parallel_matches_sequential () =
  let n = 5 and t = 2 and bits = 12 in
  let corrupt = [| false; true; false; true; false |] in
  let inputs = Array.init n (fun i -> Bitstring.of_int_fixed ~bits (100 * (i + 1))) in
  let run proto =
    (* Fresh setup per run: signing is stateful. *)
    let setup = fresh_setup ~n in
    let outcome =
      Sim.run ~setup:`Authenticated ~n ~t ~corrupt ~adversary:Adversary.passive
        (fun ctx -> proto setup ctx ~bits inputs.(ctx.Ctx.me))
    in
    (Sim.honest_outputs ~corrupt outcome, outcome.Sim.metrics.Metrics.rounds)
  in
  let seq_out, seq_rounds = run Auth.Auth_ca.run in
  let par_out, par_rounds = run Auth.Auth_ca.run_parallel in
  Alcotest.check (Alcotest.list bits_t) "same outputs" seq_out par_out;
  Alcotest.check Alcotest.int "sequential rounds = n(t+1)" (n * (t + 1)) seq_rounds;
  Alcotest.check Alcotest.int "parallel rounds = t+1" (t + 1) par_rounds

let test_authenticated_ctx_bound () =
  Alcotest.check_raises "t >= n/2 rejected"
    (Invalid_argument "Ctx.make_authenticated: requires t < n/2") (fun () ->
      ignore (Ctx.make_authenticated ~n:4 ~t:2 ~me:0));
  (* t = 2, n = 5 is fine authenticated but invalid plain. *)
  ignore (Ctx.make_authenticated ~n:5 ~t:2 ~me:0);
  Alcotest.check_raises "plain bound still enforced"
    (Invalid_argument "Ctx.make: requires t < n/3") (fun () ->
      ignore (Ctx.make ~n:5 ~t:2 ~me:0))

let suite =
  [
    Alcotest.test_case "DS honest sender" `Quick test_ds_honest_sender;
    Alcotest.test_case "DS silent sender" `Quick test_ds_silent_sender;
    Alcotest.test_case "DS signed equivocation" `Quick test_ds_equivocating_sender;
    Alcotest.test_case "DS forged chain rejected" `Quick test_ds_forged_chain_rejected;
    Alcotest.test_case "AuthCA at t < n/2" `Slow test_auth_ca_beyond_third;
    Alcotest.test_case "AuthCA unanimous" `Quick test_auth_ca_unanimous;
    Alcotest.test_case "AuthCA parallel = sequential" `Quick test_auth_ca_parallel_matches_sequential;
    Alcotest.test_case "authenticated ctx bound" `Quick test_authenticated_ctx_bound;
  ]
