(* Asynchronous substrate: scheduler semantics, Bracha RBC properties, and
   async approximate agreement (t < n/5) under adversarial scheduling. *)

open Anet

let ( let* ) = Async_proto.( let* )

(* ---------------- scheduler semantics ---------------- *)

(* Every party sends its id to all; finishes after hearing from all n. *)
let gossip (ctx : Net.Ctx.t) =
  let n = ctx.Net.Ctx.n in
  let* () = Async_proto.broadcast ~n (string_of_int ctx.Net.Ctx.me) in
  let seen = Hashtbl.create 8 in
  let rec loop () =
    if Hashtbl.length seen = n then Async_proto.return (Hashtbl.length seen)
    else
      let* sender, _ = Async_proto.recv () in
      Hashtbl.replace seen sender ();
      loop ()
  in
  loop ()

let test_delivery_all_schedulers () =
  let n = 5 and t = 1 in
  let corrupt = Array.make n false in
  List.iter
    (fun scheduler ->
      let outcome =
        Async_sim.run ~n ~t ~corrupt ~scheduler ~seed:7 gossip
      in
      List.iter
        (fun heard ->
          Alcotest.check Alcotest.int
            (Printf.sprintf "hears all under %s" scheduler.Async_sim.sched_name)
            n heard)
        (Async_sim.honest_outputs ~corrupt outcome);
      Alcotest.check Alcotest.int
        (Printf.sprintf "delivered exactly n^2 under %s" scheduler.Async_sim.sched_name)
        (n * n) outcome.Async_sim.metrics.Async_sim.delivered)
    (Async_sim.all_schedulers ~corrupt ~target:0)

let test_starvation_detected () =
  (* A party waiting for a message nobody sends must raise Starvation, not
     loop forever. *)
  let waits_forever (_ctx : Net.Ctx.t) =
    let* _ = Async_proto.recv () in
    Async_proto.return ()
  in
  Alcotest.check_raises "starvation"
    (Async_sim.Starvation "honest party waiting with no messages in flight")
    (fun () ->
      ignore
        (Async_sim.run ~n:3 ~t:0 ~corrupt:(Array.make 3 false)
           ~scheduler:Async_sim.fifo waits_forever))

let test_determinism_per_seed () =
  let n = 4 and t = 1 in
  let corrupt = Array.make n false in
  let run seed =
    let outcome =
      Async_sim.run ~n ~t ~corrupt ~scheduler:Async_sim.random ~seed gossip
    in
    outcome.Async_sim.metrics.Async_sim.delivered
  in
  Alcotest.check Alcotest.int "same seed same schedule" (run 5) (run 5)

let test_byzantine_silent_drops_messages () =
  (* gossip waits for all n senders; a silent corrupt party makes that
     unreachable, and the simulator must detect it rather than spin. *)
  let n = 4 and t = 1 in
  let corrupt = [| true; false; false; false |] in
  Alcotest.check Alcotest.bool "starves" true
    (match
       Async_sim.run ~n ~t ~corrupt ~scheduler:Async_sim.fifo
         ~byzantine:Async_sim.byz_silent gossip
     with
    | _ -> false
    | exception Async_sim.Starvation _ -> true)

(* ---------------- Bracha RBC ---------------- *)

let run_bracha ?byzantine ~scheduler ~corrupt ~n ~t ~sender v =
  Async_sim.run ?byzantine ~n ~t ~corrupt ~scheduler ~seed:3 (fun ctx ->
      Bracha.run ctx ~sender (if ctx.Net.Ctx.me = sender then v else ""))

let test_bracha_validity () =
  let n = 7 and t = 2 in
  let corrupt = Array.init n (fun i -> i >= n - t) in
  List.iter
    (fun scheduler ->
      let outcome = run_bracha ~scheduler ~corrupt ~n ~t ~sender:1 "payload-v" in
      List.iter
        (fun v ->
          Alcotest.check Alcotest.string
            (Printf.sprintf "validity under %s" scheduler.Async_sim.sched_name)
            "payload-v" v)
        (Async_sim.honest_outputs ~corrupt outcome))
    (Async_sim.all_schedulers ~corrupt ~target:2)

let test_bracha_byzantine_sender_equivocation () =
  (* A corrupt sender equivocates on INIT; honest parties either all deliver
     the same value or none deliver (starvation) — never disagree. *)
  let n = 7 and t = 2 in
  let corrupt = Array.init n (fun i -> i = 0 || i = 3 (* sender corrupt *)) in
  let mutate m = String.map (fun c -> Char.chr (Char.code c lxor 1)) m in
  List.iter
    (fun scheduler ->
      match
        run_bracha
          ~byzantine:(Async_sim.byz_equivocate ~mutate)
          ~scheduler ~corrupt ~n ~t ~sender:0 "two-faced"
      with
      | outcome ->
          let outputs = Async_sim.honest_outputs ~corrupt outcome in
          (match outputs with
          | v :: rest ->
              Alcotest.check Alcotest.bool
                (Printf.sprintf "agreement under %s" scheduler.Async_sim.sched_name)
                true
                (List.for_all (String.equal v) rest)
          | [] -> ())
      | exception (Async_sim.Starvation _ | Failure _) ->
          (* No delivery at all is a legal outcome for a byzantine sender. *)
          ())
    (Async_sim.all_schedulers ~corrupt ~target:1)

let test_bracha_silent_sender_starves () =
  let n = 4 and t = 1 in
  let corrupt = [| true; false; false; false |] in
  Alcotest.check Alcotest.bool "no delivery from silent sender" true
    (match
       run_bracha ~byzantine:Async_sim.byz_silent ~scheduler:Async_sim.fifo ~corrupt
         ~n ~t ~sender:0 "never-sent"
     with
    | _ -> false
    | exception Async_sim.Starvation _ -> true)

let test_bracha_garbage_byzantine () =
  let n = 7 and t = 2 in
  let corrupt = Array.init n (fun i -> i >= n - t) in
  let outcome =
    run_bracha ~byzantine:(Async_sim.byz_garbage ~seed:5) ~scheduler:Async_sim.random
      ~corrupt ~n ~t ~sender:2 "clean-value"
  in
  List.iter
    (fun v -> Alcotest.check Alcotest.string "garbage ignored" "clean-value" v)
    (Async_sim.honest_outputs ~corrupt outcome)

(* ---------------- async approximate agreement ---------------- *)

let test_async_aa () =
  let n = 6 and t = 1 and bits = 20 in
  (* t < n/5 requires n >= 6 for t = 1. *)
  let corrupt = Array.init n (fun i -> i = 2) in
  let inputs =
    Array.init n (fun i ->
        if corrupt.(i) then Bitstring.ones bits
        else Bitstring.of_int_fixed ~bits (500_000 + (i * 4_000)))
  in
  List.iter
    (fun scheduler ->
      List.iter
        (fun byzantine ->
          let outcome =
            Async_sim.run ~n ~t ~corrupt ~scheduler ~seed:11 ~byzantine (fun ctx ->
                Async_aa.run ctx ~bits ~rounds:10 inputs.(ctx.Net.Ctx.me))
          in
          let outs =
            List.map Bitstring.to_int (Async_sim.honest_outputs ~corrupt outcome)
          in
          let lo = List.fold_left min (List.hd outs) outs in
          let hi = List.fold_left max (List.hd outs) outs in
          let name =
            Printf.sprintf "%s/%s" scheduler.Async_sim.sched_name
              byzantine.Async_sim.byz_name
          in
          Alcotest.check Alcotest.bool (name ^ ": validity") true
            (lo >= 500_000 && hi <= 500_000 + ((n - 1) * 4_000));
          Alcotest.check Alcotest.bool (name ^ ": epsilon agreement") true
            (hi - lo <= (((n - 1) * 4_000) / 256) + 1))
        [ Async_sim.byz_passive; Async_sim.byz_silent; Async_sim.byz_garbage ~seed:3 ])
    (Async_sim.all_schedulers ~corrupt ~target:4)

let test_async_aa_resilience_check () =
  Alcotest.check_raises "t >= n/5 rejected"
    (Invalid_argument "Async_aa.run: requires t < n/5") (fun () ->
      ignore (Async_aa.run (Net.Ctx.make ~n:5 ~t:1 ~me:0) ~bits:8 ~rounds:1 (Bitstring.zero 8)))

let test_async_aa_zero_rounds () =
  let n = 6 and t = 1 and bits = 8 in
  let corrupt = Array.make n false in
  let inputs = Array.init n (fun i -> Bitstring.of_int_fixed ~bits (i * 10)) in
  let outcome =
    Async_sim.run ~n ~t ~corrupt ~scheduler:Async_sim.fifo (fun ctx ->
        Async_aa.run ctx ~bits ~rounds:0 inputs.(ctx.Net.Ctx.me))
  in
  Array.iteri
    (fun i o ->
      Alcotest.check
        (Alcotest.option (Alcotest.testable Bitstring.pp Bitstring.equal))
        "identity" (Some inputs.(i)) o)
    outcome.Async_sim.outputs

let suite =
  [
    Alcotest.test_case "delivery under all schedulers" `Quick test_delivery_all_schedulers;
    Alcotest.test_case "starvation detected" `Quick test_starvation_detected;
    Alcotest.test_case "silent byzantine starves gossip" `Quick test_byzantine_silent_drops_messages;
    Alcotest.test_case "determinism per seed" `Quick test_determinism_per_seed;
    Alcotest.test_case "bracha validity" `Quick test_bracha_validity;
    Alcotest.test_case "bracha equivocating sender" `Quick test_bracha_byzantine_sender_equivocation;
    Alcotest.test_case "bracha silent sender" `Quick test_bracha_silent_sender_starves;
    Alcotest.test_case "bracha garbage" `Quick test_bracha_garbage_byzantine;
    Alcotest.test_case "async AA" `Slow test_async_aa;
    Alcotest.test_case "async AA resilience check" `Quick test_async_aa_resilience_check;
    Alcotest.test_case "async AA zero rounds" `Quick test_async_aa_zero_rounds;
  ]
