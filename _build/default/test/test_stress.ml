(* Scale checks: larger party counts and longer values than the rest of the
   suite uses — the protocols' guarantees must be size-independent. *)

open Net

let test_pi_z_n22 () =
  let n = 22 and t = 7 in
  let corrupt = Workload.spread_corrupt ~n ~t in
  let rng = Prng.create 55 in
  let inputs =
    Workload.apply_input_attack Workload.Split_extremes ~corrupt
      (Workload.clustered_bits rng ~n ~bits:1024 ~shared_prefix_bits:512)
  in
  let report =
    Workload.run_int ~n ~t ~corrupt ~adversary:(Adversary.equivocate ~seed:5) ~inputs
      Workload.pi_z.Workload.run
  in
  Alcotest.check Alcotest.bool "agreement at n=22" true report.Workload.agreement;
  Alcotest.check Alcotest.bool "validity at n=22" true report.Workload.convex_validity

let test_pi_z_very_long_value () =
  (* 100k-bit inputs through the blocks pipeline. *)
  let n = 4 and t = 1 in
  let corrupt = Sim.corrupt_first ~n t in
  let big = Bigint.pred (Bigint.pow2 100_000) in
  let inputs = Array.init n (fun i -> Bigint.sub big (Bigint.of_int (i * i))) in
  let report =
    Workload.run_int ~n ~t ~corrupt ~adversary:(Adversary.garbage ~seed:6) ~inputs
      Workload.pi_z.Workload.run
  in
  Alcotest.check Alcotest.bool "agreement at 100k bits" true report.Workload.agreement;
  Alcotest.check Alcotest.bool "validity at 100k bits" true report.Workload.convex_validity;
  (* The whole point: ~linear in l, so well under l * n^2 bits. *)
  Alcotest.check Alcotest.bool "communication stays near l*n" true
    (report.Workload.honest_bits < 100_000 * n * n)

let test_high_cost_ca_n31 () =
  let n = 31 and t = 10 and bits = 24 in
  let corrupt = Workload.spread_corrupt ~n ~t in
  let inputs =
    Array.init n (fun i ->
        if corrupt.(i) then Bitstring.ones bits
        else Bitstring.of_int_fixed ~bits (5_000_000 + (i * 13)))
  in
  let outcome =
    Sim.run ~n ~t ~corrupt ~adversary:(Adversary.bitflip ~seed:4) (fun ctx ->
        Convex.agree_high_cost ctx ~bits inputs.(ctx.Ctx.me))
  in
  let outputs = Sim.honest_outputs ~corrupt outcome in
  (match outputs with
  | o :: rest ->
      Alcotest.check Alcotest.bool "agreement at n=31" true
        (List.for_all (Bitstring.equal o) rest)
  | [] -> Alcotest.fail "no outputs");
  List.iter
    (fun o ->
      let v = Bitstring.to_int o in
      Alcotest.check Alcotest.bool "validity at n=31" true
        (v >= 5_000_000 && v < 5_000_000 + (31 * 13)))
    outputs

let suite =
  [
    Alcotest.test_case "Pi_Z n=22" `Slow test_pi_z_n22;
    Alcotest.test_case "Pi_Z 100k-bit values" `Slow test_pi_z_very_long_value;
    Alcotest.test_case "HighCostCA n=31" `Slow test_high_cost_ca_n31;
  ]
