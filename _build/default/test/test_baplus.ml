(* Π_BA+ and Π_ℓBA+: the Theorem 6 / Theorem 1 properties — BA, Intrusion
   Tolerance, Bounded Pre-Agreement — exercised under every generic adversary
   strategy and with protocol-aware injection attacks. *)

open Net

let adversaries = Adversary.all_generic ~seed:99

let all_equal_opt = function
  | [] -> true
  | x :: rest -> List.for_all (Option.equal String.equal x) rest

let run_plus ~n ~t ~corrupt ~adversary inputs =
  Sim.run ~n ~t ~corrupt ~adversary (fun ctx -> Baplus.Ba_plus.run ctx inputs.(ctx.Ctx.me))

let run_ext ~n ~t ~corrupt ~adversary inputs =
  Sim.run ~n ~t ~corrupt ~adversary (fun ctx ->
      Baplus.Ext_ba_plus.run ctx inputs.(ctx.Ctx.me))

(* An adversary that tries to smuggle a fabricated value into the agreement:
   corrupted parties all push the same alien value in every prescribed slot
   where they would send their own input (round 1) and vote for it. *)
let injector value =
  Adversary.make ~name:"injector" (fun view ~sender ~recipient ->
      match Adversary.prescribed_msg view ~sender ~recipient with
      | None -> None
      | Some _ when view.Adversary.round = 1 -> Some value
      | Some m -> Some m)

let check_properties name ~n ~t ~corrupt ~inputs ~adversary outcome =
  let honest = Sim.honest_outputs ~corrupt outcome in
  Alcotest.check Alcotest.bool (name ^ ": agreement") true (all_equal_opt honest);
  let out = List.hd honest in
  (* Intrusion tolerance: non-bot output is an honest input. *)
  (match out with
  | None -> ()
  | Some v ->
      let honest_inputs =
        List.filteri (fun i _ -> not corrupt.(i)) (Array.to_list inputs)
      in
      Alcotest.check Alcotest.bool
        (Printf.sprintf "%s vs %s: intrusion tolerance" name adversary.Adversary.name)
        true
        (List.exists (String.equal v) honest_inputs));
  (* Bounded pre-agreement: bot only when fewer than n-2t honest agree. *)
  (match out with
  | Some _ -> ()
  | None ->
      let counts = Hashtbl.create 8 in
      Array.iteri
        (fun i v ->
          if not corrupt.(i) then
            Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v)))
        inputs;
      let max_agree = Hashtbl.fold (fun _ c acc -> max c acc) counts 0 in
      Alcotest.check Alcotest.bool
        (Printf.sprintf "%s vs %s: bounded pre-agreement" name adversary.Adversary.name)
        true
        (max_agree < n - (2 * t)));
  out

let test_ba_plus_validity () =
  let n = 7 and t = 2 in
  let corrupt = Sim.corrupt_first ~n t in
  let inputs = Array.init n (fun i -> if i < t then "zz-evil" else "digest-A") in
  List.iter
    (fun adversary ->
      let outcome = run_plus ~n ~t ~corrupt ~adversary inputs in
      let out =
        check_properties "BA+" ~n ~t ~corrupt ~inputs ~adversary outcome
      in
      Alcotest.check (Alcotest.option Alcotest.string)
        (Printf.sprintf "BA+ validity vs %s" adversary.Adversary.name)
        (Some "digest-A") out)
    adversaries

let test_ba_plus_pre_agreement_threshold () =
  (* Sweep the number of honest parties sharing a value; at >= n-2t sharing,
     the output must be non-bot (Bounded Pre-Agreement). *)
  let n = 7 and t = 2 in
  let corrupt = Array.init n (fun i -> i >= n - t) in
  for sharing = 0 to n - t do
    let inputs =
      Array.init n (fun i ->
          if i < sharing then "shared" else Printf.sprintf "unique-%d" i)
    in
    List.iter
      (fun adversary ->
        let outcome = run_plus ~n ~t ~corrupt ~adversary inputs in
        let out = check_properties "BA+" ~n ~t ~corrupt ~inputs ~adversary outcome in
        if sharing >= n - (2 * t) then
          Alcotest.check (Alcotest.option Alcotest.string)
            (Printf.sprintf "non-bot at %d sharing vs %s" sharing adversary.Adversary.name)
            (Some "shared") out)
      [ Adversary.passive; Adversary.silent; Adversary.garbage ~seed:3 ]
  done

let test_ba_plus_injection () =
  let n = 7 and t = 2 in
  let corrupt = Sim.corrupt_first ~n t in
  let inputs = Array.init n (fun i -> Printf.sprintf "input-%d" i) in
  let outcome = run_plus ~n ~t ~corrupt ~adversary:(injector "alien") inputs in
  ignore (check_properties "BA+" ~n ~t ~corrupt ~inputs ~adversary:(injector "alien") outcome)

let test_ba_plus_two_camps () =
  (* Honest parties split across two values; byzantine parties try to tip the
     vote. Output must be one of the two camps' values or bot, never alien. *)
  let n = 10 and t = 3 in
  let corrupt = Array.init n (fun i -> i >= n - t) in
  List.iter
    (fun adversary ->
      let inputs =
        Array.init n (fun i -> if i < 4 then "camp-A" else "camp-B")
      in
      let outcome = run_plus ~n ~t ~corrupt ~adversary inputs in
      ignore (check_properties "BA+" ~n ~t ~corrupt ~inputs ~adversary outcome))
    (injector "camp-X" :: adversaries)

let test_ext_validity_long_values () =
  let n = 7 and t = 2 in
  let corrupt = Sim.corrupt_first ~n t in
  let long = String.init 5000 (fun i -> Char.chr (i * 7 land 0xff)) in
  let inputs = Array.init n (fun i -> if i < t then "short" else long) in
  List.iter
    (fun adversary ->
      let outcome = run_ext ~n ~t ~corrupt ~adversary inputs in
      let out = check_properties "lBA+" ~n ~t ~corrupt ~inputs ~adversary outcome in
      Alcotest.check Alcotest.bool
        (Printf.sprintf "lBA+ validity vs %s" adversary.Adversary.name)
        true
        (match out with Some v -> String.equal v long | None -> false))
    adversaries

let test_ext_no_preagreement_gives_bot_or_honest () =
  let n = 7 and t = 2 in
  let corrupt = Sim.corrupt_first ~n t in
  let inputs = Array.init n (fun i -> String.make 600 (Char.chr (65 + i))) in
  List.iter
    (fun adversary ->
      let outcome = run_ext ~n ~t ~corrupt ~adversary inputs in
      ignore (check_properties "lBA+" ~n ~t ~corrupt ~inputs ~adversary outcome))
    adversaries

let test_ext_partial_preagreement () =
  (* Exactly n-2t honest parties share: output must be that value. *)
  let n = 7 and t = 2 in
  let corrupt = Array.init n (fun i -> i >= n - t) in
  let shared = String.make 1200 'S' in
  let inputs =
    Array.init n (fun i -> if i < n - (2 * t) then shared else String.make 1200 (Char.chr (97 + i)))
  in
  List.iter
    (fun adversary ->
      let outcome = run_ext ~n ~t ~corrupt ~adversary inputs in
      let honest = Sim.honest_outputs ~corrupt outcome in
      Alcotest.check Alcotest.bool
        (Printf.sprintf "threshold pre-agreement decodes vs %s" adversary.Adversary.name)
        true
        (List.for_all (Option.equal String.equal (Some shared)) honest))
    [ Adversary.passive; Adversary.silent; Adversary.crash ~after:2 ]

let test_ext_communication_linear_in_length () =
  (* Doubling ℓ should roughly double honest bits (the ℓn term dominates),
     far below the ℓn² of echoing values all-to-all. *)
  let n = 7 and t = 2 in
  let corrupt = Sim.corrupt_first ~n t in
  let bits_for len =
    let v = String.make len 'v' in
    let inputs = Array.make n v in
    let outcome = run_ext ~n ~t ~corrupt ~adversary:Adversary.passive inputs in
    outcome.Sim.metrics.Metrics.honest_bits
  in
  let b1 = bits_for 20_000 and b2 = bits_for 40_000 in
  let growth = float_of_int (b2 - b1) /. float_of_int 20_000 in
  (* Marginal cost per extra input bit: two distribution rounds of ~n²/k
     codeword copies, i.e. ~2n²/(n−t) ≈ 3n — linear in n, far below the n²
     of echoing values all-to-all. *)
  Alcotest.check Alcotest.bool "marginal bits per input bit = Θ(n), not n²" true
    (growth /. 8. < float_of_int (4 * n));
  Alcotest.check Alcotest.bool "marginal bits per input bit >= 1" true (growth /. 8. >= 1.)

let test_ext_empty_and_tiny_values () =
  let n = 4 and t = 1 in
  let corrupt = Sim.corrupt_first ~n t in
  List.iter
    (fun v ->
      let inputs = Array.make n v in
      let outcome = run_ext ~n ~t ~corrupt ~adversary:Adversary.passive inputs in
      List.iter
        (fun o ->
          Alcotest.check (Alcotest.option Alcotest.string)
            (Printf.sprintf "len %d" (String.length v))
            (Some v) o)
        (Sim.honest_outputs ~corrupt outcome))
    [ ""; "x"; "ab"; String.make 63 'q' ]

let test_ext_distribution_bits_match_theorem1 () =
  (* Theorem 1's value-dependent term, checked against the per-label
     accounting: the distribution step must cost at most
     c * (l*n*(n/k) + k_sec*n^2*log n) bits for a small constant c (two
     rounds of n^2/k codeword copies plus the Merkle witnesses). *)
  let n = 7 and t = 2 in
  let k = n - t in
  let corrupt = Sim.corrupt_first ~n t in
  List.iter
    (fun len ->
      let v = String.make len 'd' in
      let inputs = Array.make n v in
      let outcome =
        Sim.run ~n ~t ~corrupt ~adversary:Adversary.passive (fun ctx ->
            Baplus.Ext_ba_plus.run ctx inputs.(ctx.Ctx.me))
      in
      let dist =
        Option.value ~default:0
          (List.assoc_opt "ext_distribute" (Metrics.labels outcome.Sim.metrics))
      in
      let l = 8 * len in
      let witness_term = 256 * n * n * 8 in
      let bound = 3 * ((l * n * n / k) + witness_term) in
      Alcotest.check Alcotest.bool
        (Printf.sprintf "distribution bits bounded at l=%d" l)
        true
        (dist > 0 && dist <= bound))
    [ 100; 1000; 10_000 ]

let prop_ext_agreement_random =
  QCheck.Test.make ~name:"lBA+ agreement (random)" ~count:25
    QCheck.(triple (int_bound 10000) (int_bound 8) (int_bound 300))
    (fun (seed, adv_idx, len) ->
      let n = 7 and t = 2 in
      let rng = Prng.create seed in
      let corrupt = Array.make n false in
      let placed = ref 0 in
      while !placed < t do
        let i = Prng.int rng n in
        if not corrupt.(i) then begin
          corrupt.(i) <- true;
          incr placed
        end
      done;
      let inputs =
        Array.init n (fun _ -> Prng.bytes rng (1 + (len mod 64 * Prng.int rng 5)))
      in
      let adversary = List.nth adversaries (adv_idx mod List.length adversaries) in
      let outcome = run_ext ~n ~t ~corrupt ~adversary inputs in
      all_equal_opt (Sim.honest_outputs ~corrupt outcome))

let suite =
  [
    Alcotest.test_case "BA+ validity" `Quick test_ba_plus_validity;
    Alcotest.test_case "BA+ pre-agreement sweep" `Quick test_ba_plus_pre_agreement_threshold;
    Alcotest.test_case "BA+ injection attack" `Quick test_ba_plus_injection;
    Alcotest.test_case "BA+ two camps" `Quick test_ba_plus_two_camps;
    Alcotest.test_case "lBA+ validity (long)" `Quick test_ext_validity_long_values;
    Alcotest.test_case "lBA+ scattered inputs" `Quick test_ext_no_preagreement_gives_bot_or_honest;
    Alcotest.test_case "lBA+ threshold pre-agreement" `Quick test_ext_partial_preagreement;
    Alcotest.test_case "lBA+ linear communication" `Quick test_ext_communication_linear_in_length;
    Alcotest.test_case "lBA+ Theorem 1 accounting" `Quick test_ext_distribution_bits_match_theorem1;
    Alcotest.test_case "lBA+ tiny values" `Quick test_ext_empty_and_tiny_values;
    QCheck_alcotest.to_alcotest prop_ext_agreement_random;
  ]
