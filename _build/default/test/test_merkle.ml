(* Merkle accumulator: build/witness/verify, tamper resistance, codecs. *)

let values n = Array.init n (fun i -> Printf.sprintf "codeword-%d" i)

let test_roundtrip () =
  List.iter
    (fun n ->
      let vs = values n in
      let t = Merkle.build vs in
      Alcotest.check Alcotest.int "leaf count" n (Merkle.leaf_count t);
      for i = 0 to n - 1 do
        let w = Merkle.witness t i in
        Alcotest.check Alcotest.bool
          (Printf.sprintf "n=%d i=%d verifies" n i)
          true
          (Merkle.verify ~root:(Merkle.root t) ~index:i ~value:vs.(i) w)
      done)
    [ 1; 2; 3; 4; 5; 7; 8; 9; 16; 33 ]

let test_rejections () =
  let vs = values 7 in
  let t = Merkle.build vs in
  let root = Merkle.root t in
  let w2 = Merkle.witness t 2 in
  Alcotest.check Alcotest.bool "wrong value" false
    (Merkle.verify ~root ~index:2 ~value:"evil" w2);
  Alcotest.check Alcotest.bool "wrong index" false
    (Merkle.verify ~root ~index:3 ~value:vs.(2) w2);
  Alcotest.check Alcotest.bool "negative index" false
    (Merkle.verify ~root ~index:(-1) ~value:vs.(2) w2);
  Alcotest.check Alcotest.bool "wrong root" false
    (Merkle.verify ~root:(Sha256.digest "nope") ~index:2 ~value:vs.(2) w2);
  Alcotest.check Alcotest.bool "witness for other leaf" false
    (Merkle.verify ~root ~index:2 ~value:vs.(2) (Merkle.witness t 3));
  (* Out-of-tree index with a valid-looking path must fail (padding leaves
     are not provable values). *)
  Alcotest.check Alcotest.bool "padding leaf not provable" false
    (Merkle.verify ~root ~index:7 ~value:"" w2);
  Alcotest.check_raises "witness out of range" (Invalid_argument "Merkle.witness")
    (fun () -> ignore (Merkle.witness t 7));
  Alcotest.check_raises "empty build" (Invalid_argument "Merkle.build: empty") (fun () ->
      ignore (Merkle.build [||]))

let test_distinct_roots () =
  let r1 = Merkle.root (Merkle.build (values 4)) in
  let r2 = Merkle.root (Merkle.build (values 5)) in
  let r3 =
    let vs = values 4 in
    vs.(2) <- "tampered";
    Merkle.root (Merkle.build vs)
  in
  Alcotest.check Alcotest.bool "different sizes differ" false (String.equal r1 r2);
  Alcotest.check Alcotest.bool "different content differs" false (String.equal r1 r3)

let test_leaf_vs_node_domains () =
  (* A leaf containing the encoding of two digests must not verify as the
     parent of those digests (domain separation). *)
  let a = Sha256.digest "a" and b = Sha256.digest "b" in
  let forged = a ^ b in
  let t = Merkle.build [| forged; "x" |] in
  let root = Merkle.root t in
  Alcotest.check Alcotest.bool "no leaf/node confusion" false
    (String.equal root (Sha256.digest ("\x01" ^ Sha256.digest ("\x01" ^ a ^ b) ^ Sha256.digest ("\x00x"))))

let test_witness_codec () =
  let vs = values 9 in
  let t = Merkle.build vs in
  let w = Merkle.witness t 5 in
  (match Merkle.decode_witness (Merkle.encode_witness w) with
  | None -> Alcotest.fail "decode failed"
  | Some w' ->
      Alcotest.check Alcotest.bool "roundtrip verifies" true
        (Merkle.verify ~root:(Merkle.root t) ~index:5 ~value:vs.(5) w'));
  Alcotest.check Alcotest.bool "truncated rejected" true
    (Merkle.decode_witness (String.sub (Merkle.encode_witness w) 0 10) = None);
  Alcotest.check Alcotest.bool "empty rejected" true (Merkle.decode_witness "" = None);
  Alcotest.check Alcotest.bool "size accounted" true (Merkle.witness_size_bits w > 0)

let prop_witness_sound =
  (* A witness never validates a different (index, value) pair. *)
  QCheck.Test.make ~name:"witness soundness" ~count:200
    QCheck.(triple (2 -- 20) small_nat small_nat)
    (fun (n, i, j) ->
      let i = i mod n and j = j mod n in
      let vs = values n in
      let t = Merkle.build vs in
      let w = Merkle.witness t i in
      let ok_self = Merkle.verify ~root:(Merkle.root t) ~index:i ~value:vs.(i) w in
      let cross = Merkle.verify ~root:(Merkle.root t) ~index:j ~value:vs.(j) w in
      ok_self && (i = j || not cross))

let suite =
  [
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "rejections" `Quick test_rejections;
    Alcotest.test_case "distinct roots" `Quick test_distinct_roots;
    Alcotest.test_case "domain separation" `Quick test_leaf_vs_node_domains;
    Alcotest.test_case "witness codec" `Quick test_witness_codec;
    QCheck_alcotest.to_alcotest prop_witness_sound;
  ]
