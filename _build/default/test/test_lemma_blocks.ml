(* Lemma 4 (the blocks version of Lemma 1) invariants for FINDPREFIXBLOCKS,
   plus the component-label accounting that the T5 ablation relies on. *)

open Net

let bits_t = Alcotest.testable Bitstring.pp Bitstring.equal

let honest_of ~corrupt arr = List.filteri (fun i _ -> not corrupt.(i)) (Array.to_list arr)

let check_lemma4 name ~t ~corrupt ~bits ~block_bits ~inputs results =
  let honest_inputs = honest_of ~corrupt inputs in
  let sorted = List.sort Bitstring.compare honest_inputs in
  let lo = List.hd sorted and hi = List.nth sorted (List.length sorted - 1) in
  let valid v = Bitstring.compare lo v <= 0 && Bitstring.compare v hi <= 0 in
  let p_star = (List.hd results).Convex.Find_prefix_blocks.prefix_star in
  (* Common prefix, a whole number of blocks. *)
  List.iter
    (fun r ->
      Alcotest.check bits_t (name ^ ": common prefix") p_star
        r.Convex.Find_prefix_blocks.prefix_star)
    results;
  Alcotest.check Alcotest.int (name ^ ": block-aligned") 0
    (Bitstring.length p_star mod block_bits);
  List.iter
    (fun r ->
      Alcotest.check Alcotest.bool (name ^ ": v has prefix") true
        (Bitstring.is_prefix ~prefix:p_star r.Convex.Find_prefix_blocks.v);
      Alcotest.check Alcotest.bool (name ^ ": v valid") true
        (valid r.Convex.Find_prefix_blocks.v);
      Alcotest.check Alcotest.bool (name ^ ": v_bot valid") true
        (valid r.Convex.Find_prefix_blocks.v_bot))
    results;
  (* Lemma 4 (ii) for the two block extensions GETOUTPUT can face: the agreed
     prefix extended by the all-zero and all-one block. *)
  if Bitstring.length p_star < bits then
    List.iter
      (fun block ->
        let candidate = Bitstring.append p_star block in
        let differing =
          List.length
            (List.filter
               (fun r ->
                 not
                   (Bitstring.is_prefix ~prefix:candidate
                      r.Convex.Find_prefix_blocks.v_bot))
               results)
        in
        Alcotest.check Alcotest.bool (name ^ ": t+1 honest differ") true
          (differing >= t + 1))
      [ Bitstring.zero block_bits; Bitstring.ones block_bits ]

let test_lemma4 () =
  let n = 4 and t = 1 in
  let n2 = n * n in
  let block_bits = 8 in
  let bits = n2 * block_bits in
  let corrupt = [| false; true; false; false |] in
  let configs =
    [
      ( "clustered",
        Array.init n (fun i ->
            Bigint.to_bitstring_fixed ~bits
              (Bigint.add (Bigint.pow2 100) (Bigint.of_int (i * 3)))) );
      ("identical", Array.make n (Bigint.to_bitstring_fixed ~bits (Bigint.pow2 77)));
      ( "spread",
        Array.init n (fun i ->
            Bigint.to_bitstring_fixed ~bits
              (Bigint.mul (Bigint.of_int (i + 1)) (Bigint.pow2 (20 * i)))) );
    ]
  in
  List.iter
    (fun (cname, inputs) ->
      List.iter
        (fun adversary ->
          let outcome =
            Sim.run ~n ~t ~corrupt ~adversary (fun ctx ->
                Convex.Find_prefix_blocks.run ctx ~bits inputs.(ctx.Ctx.me))
          in
          check_lemma4
            (Printf.sprintf "Lemma4[%s] vs %s" cname adversary.Adversary.name)
            ~t ~corrupt ~bits ~block_bits ~inputs
            (Sim.honest_outputs ~corrupt outcome))
        [ Adversary.passive; Adversary.garbage ~seed:3; Attacks.window_fabricator ])
    configs

let test_label_split_shape () =
  (* T5's premise: the only l-dependent label is the RS+Merkle distribution;
     doubling l must leave the k-bit agreement labels (pi_ba_plus) nearly
     unchanged while ext_distribute grows. *)
  let n = 7 and t = 2 in
  let run bits =
    let corrupt = Workload.spread_corrupt ~n ~t in
    let inputs =
      Array.map
        (fun v -> Bigint.of_bitstring v)
        (Array.init n (fun i ->
             Bigint.to_bitstring_fixed ~bits
               (Bigint.add (Bigint.pow2 (bits - 2)) (Bigint.of_int i))))
    in
    let report =
      Workload.run_int ~n ~t ~corrupt ~adversary:Adversary.passive
        ~inputs:(Array.map Fun.id inputs) Workload.pi_z.Workload.run
    in
    let get label = Option.value ~default:0 (List.assoc_opt label report.Workload.labels) in
    (get "ext_distribute", get "pi_ba_plus")
  in
  let dist1, votes1 = run 4096 in
  let dist2, votes2 = run 8192 in
  Alcotest.check Alcotest.bool "distribution grows with l" true
    (dist2 > dist1 + ((8192 - 4096) / 2));
  Alcotest.check Alcotest.bool "vote traffic l-independent (within 2x)" true
    (votes2 < 2 * max votes1 1 + 200_000)

let suite =
  [
    Alcotest.test_case "FindPrefixBlocks Lemma 4" `Quick test_lemma4;
    Alcotest.test_case "label split shape" `Quick test_label_split_shape;
  ]
