(* The numerical toolbox behind verify_claims. *)

let feq = Alcotest.float 1e-9
let feq_loose = Alcotest.float 1e-6

let test_mean_stddev () =
  Alcotest.check feq "mean" 2.5 (Stats.mean [ 1.; 2.; 3.; 4. ]);
  Alcotest.check feq "stddev singleton" 0. (Stats.stddev [ 7. ]);
  Alcotest.check feq_loose "stddev" (sqrt 1.25) (Stats.stddev [ 1.; 2.; 3.; 4. ]);
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty") (fun () ->
      ignore (Stats.mean []))

let test_pearson () =
  Alcotest.check feq_loose "perfect" 1. (Stats.pearson [ 1.; 2.; 3. ] [ 2.; 4.; 6. ]);
  Alcotest.check feq_loose "anti" (-1.) (Stats.pearson [ 1.; 2.; 3. ] [ 3.; 2.; 1. ]);
  Alcotest.check feq "constant" 0. (Stats.pearson [ 1.; 2.; 3. ] [ 5.; 5.; 5. ]);
  Alcotest.check_raises "mismatch" (Invalid_argument "Stats.pearson: lengths") (fun () ->
      ignore (Stats.pearson [ 1. ] [ 1.; 2. ]))

let test_least_squares_exact () =
  (* y = 3 + 2x fits exactly. *)
  let rows = List.map (fun x -> [| 1.; float_of_int x |]) [ 0; 1; 2; 3; 4 ] in
  let y = List.map (fun x -> 3. +. (2. *. float_of_int x)) [ 0; 1; 2; 3; 4 ] in
  let fit = Stats.least_squares ~rows ~y in
  Alcotest.check feq_loose "intercept" 3. fit.Stats.coefficients.(0);
  Alcotest.check feq_loose "slope" 2. fit.Stats.coefficients.(1);
  Alcotest.check feq_loose "r2" 1. fit.Stats.r_square

let test_least_squares_noisy () =
  (* y = 10 + 5x + noise: coefficients near truth, r2 < 1. *)
  let noise = [ 0.3; -0.2; 0.1; -0.4; 0.25; 0.0 ] in
  let xs = [ 0.; 1.; 2.; 3.; 4.; 5. ] in
  let rows = List.map (fun x -> [| 1.; x |]) xs in
  let y = List.map2 (fun x e -> 10. +. (5. *. x) +. e) xs noise in
  let fit = Stats.least_squares ~rows ~y in
  Alcotest.check Alcotest.bool "slope near 5" true
    (abs_float (fit.Stats.coefficients.(1) -. 5.) < 0.2);
  Alcotest.check Alcotest.bool "good but imperfect fit" true
    (fit.Stats.r_square > 0.99 && fit.Stats.r_square < 1.)

let test_least_squares_two_predictors () =
  (* y = 1*a + 2*b recovered from a 3-predictor model with a zero column
     coefficient... keep it two predictors, no intercept. *)
  let points = [ (1., 0.); (0., 1.); (1., 1.); (2., 1.); (1., 3.) ] in
  let rows = List.map (fun (a, b) -> [| a; b |]) points in
  let y = List.map (fun (a, b) -> a +. (2. *. b)) points in
  let fit = Stats.least_squares ~rows ~y in
  Alcotest.check feq_loose "coef a" 1. fit.Stats.coefficients.(0);
  Alcotest.check feq_loose "coef b" 2. fit.Stats.coefficients.(1)

let test_least_squares_errors () =
  Alcotest.check_raises "no rows" (Invalid_argument "Stats.least_squares: no rows")
    (fun () -> ignore (Stats.least_squares ~rows:[] ~y:[]));
  Alcotest.check_raises "shape" (Invalid_argument "Stats.least_squares: shapes")
    (fun () -> ignore (Stats.least_squares ~rows:[ [| 1. |] ] ~y:[ 1.; 2. ]));
  (* Duplicate column: singular normal equations. *)
  Alcotest.check_raises "singular" (Invalid_argument "Stats.least_squares: singular system")
    (fun () ->
      ignore
        (Stats.least_squares
           ~rows:[ [| 1.; 1. |]; [| 2.; 2. |]; [| 3.; 3. |] ]
           ~y:[ 1.; 2.; 3. ]))

let prop_fit_recovers_line =
  QCheck.Test.make ~name:"recovers random lines" ~count:200
    QCheck.(pair (int_range (-50) 50) (int_range (-50) 50))
    (fun (a, b) ->
      let a = float_of_int a and b = float_of_int b in
      let xs = [ -2.; 0.; 1.; 3.; 7. ] in
      let rows = List.map (fun x -> [| 1.; x |]) xs in
      let y = List.map (fun x -> a +. (b *. x)) xs in
      let fit = Stats.least_squares ~rows ~y in
      abs_float (fit.Stats.coefficients.(0) -. a) < 1e-6
      && abs_float (fit.Stats.coefficients.(1) -. b) < 1e-6)

let suite =
  [
    Alcotest.test_case "mean/stddev" `Quick test_mean_stddev;
    Alcotest.test_case "pearson" `Quick test_pearson;
    Alcotest.test_case "least squares exact" `Quick test_least_squares_exact;
    Alcotest.test_case "least squares noisy" `Quick test_least_squares_noisy;
    Alcotest.test_case "two predictors" `Quick test_least_squares_two_predictors;
    Alcotest.test_case "error handling" `Quick test_least_squares_errors;
    QCheck_alcotest.to_alcotest prop_fit_recovers_line;
  ]
