(* Coordinate-wise vector CA: agreement + box validity, and the documented
   honesty about what box validity is NOT (a point can be in the box yet
   outside the convex hull). *)

open Net

let bigint_t = Alcotest.testable Bigint.pp Bigint.equal

let honest_of ~corrupt arr = List.filteri (fun i _ -> not corrupt.(i)) (Array.to_list arr)

let run_vec ~n ~t ~corrupt ~adversary inputs =
  Sim.run ~n ~t ~corrupt ~adversary (fun ctx -> Convex.agree_vector ctx inputs.(ctx.Ctx.me))

let test_agreement_and_box () =
  let n = 4 and t = 1 and dims = 3 in
  let corrupt = [| false; false; true; false |] in
  let inputs =
    Array.init n (fun i ->
        if corrupt.(i) then Array.make dims (Bigint.pow2 100)
        else
          Array.init dims (fun d ->
              Bigint.of_int (((d + 1) * 100) + (i * 3) - 50)))
  in
  List.iter
    (fun adversary ->
      let outcome = run_vec ~n ~t ~corrupt ~adversary inputs in
      let outputs = Sim.honest_outputs ~corrupt outcome in
      (match outputs with
      | o :: rest ->
          Alcotest.check Alcotest.bool
            (Printf.sprintf "agreement vs %s" adversary.Adversary.name)
            true
            (List.for_all (fun o' -> Array.for_all2 Bigint.equal o o') rest)
      | [] -> Alcotest.fail "no outputs");
      List.iter
        (fun o ->
          Alcotest.check Alcotest.bool
            (Printf.sprintf "box validity vs %s" adversary.Adversary.name)
            true
            (Convex.Vector.in_box ~inputs:(honest_of ~corrupt inputs) o))
        outputs)
    [ Adversary.passive; Adversary.garbage ~seed:4; Adversary.equivocate ~seed:5 ]

let test_unanimous_vector_kept () =
  let n = 4 and t = 1 in
  let v = [| Bigint.of_int (-7); Bigint.zero; Bigint.of_int 123456789 |] in
  let corrupt = Sim.corrupt_first ~n t in
  let inputs = Array.make n v in
  let outcome = run_vec ~n ~t ~corrupt ~adversary:(Adversary.bitflip ~seed:2) inputs in
  List.iter
    (fun o ->
      Array.iteri (fun d c -> Alcotest.check bigint_t (Printf.sprintf "dim %d" d) v.(d) c) o)
    (Sim.honest_outputs ~corrupt outcome)

let test_in_box_semantics () =
  let vec l = Array.of_list (List.map Bigint.of_int l) in
  let inputs = [ vec [ 0; 0 ]; vec [ 10; 10 ] ] in
  Alcotest.check Alcotest.bool "hull point in box" true
    (Convex.Vector.in_box ~inputs (vec [ 5; 5 ]));
  (* The honest documentation of the weakness: (0, 10) is inside the box but
     OUTSIDE the convex hull of {(0,0), (10,10)} — box validity accepts it. *)
  Alcotest.check Alcotest.bool "box point outside hull accepted" true
    (Convex.Vector.in_box ~inputs (vec [ 0; 10 ]));
  Alcotest.check Alcotest.bool "outside box rejected" false
    (Convex.Vector.in_box ~inputs (vec [ 11; 5 ]));
  Alcotest.check Alcotest.bool "dimension mismatch rejected" false
    (Convex.Vector.in_box ~inputs (vec [ 5 ]));
  Alcotest.check Alcotest.bool "no inputs" false (Convex.Vector.in_box ~inputs:[] (vec [ 1 ]))

let test_empty_vector_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Vector.agree: empty vector")
    (fun () -> ignore (Convex.agree_vector (Ctx.make ~n:4 ~t:1 ~me:0) [||]))

let suite =
  [
    Alcotest.test_case "agreement + box validity" `Quick test_agreement_and_box;
    Alcotest.test_case "unanimous kept" `Quick test_unanimous_vector_kept;
    Alcotest.test_case "in_box semantics" `Quick test_in_box_semantics;
    Alcotest.test_case "empty vector" `Quick test_empty_vector_rejected;
  ]
