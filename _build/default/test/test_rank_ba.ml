(* k-rank (interval) validity [36]: agreement plus the output lying within t
   ranks of the k-th lowest honest input, across ranks and adversaries. *)

open Net

let honest_of ~corrupt arr = List.filteri (fun i _ -> not corrupt.(i)) (Array.to_list arr)

let run_rank ~n ~t ~bits ~rank ~corrupt ~adversary inputs =
  Sim.run ~n ~t ~corrupt ~adversary (fun ctx ->
      Convex.Rank_ba.run ctx ~bits ~rank inputs.(ctx.Ctx.me))

let test_ranks_sweep () =
  let n = 10 and t = 3 and bits = 16 in
  let corrupt = Workload.spread_corrupt ~n ~t in
  (* Honest inputs well separated so the rank windows are distinguishable. *)
  let inputs =
    Array.init n (fun i ->
        if corrupt.(i) then Bitstring.ones bits
        else Bitstring.of_int_fixed ~bits (1000 * (i + 1)))
  in
  let honest = honest_of ~corrupt inputs in
  List.iter
    (fun rank ->
      List.iter
        (fun adversary ->
          let outcome = run_rank ~n ~t ~bits ~rank ~corrupt ~adversary inputs in
          let outputs = Sim.honest_outputs ~corrupt outcome in
          (match outputs with
          | o :: rest ->
              Alcotest.check Alcotest.bool
                (Printf.sprintf "agreement rank=%d vs %s" rank adversary.Adversary.name)
                true
                (List.for_all (Bitstring.equal o) rest)
          | [] -> Alcotest.fail "no outputs");
          List.iter
            (fun o ->
              Alcotest.check Alcotest.bool
                (Printf.sprintf "rank validity rank=%d vs %s" rank
                   adversary.Adversary.name)
                true
                (Convex.Rank_ba.validity_bounds honest ~rank ~t o))
            outputs)
        [ Adversary.passive; Adversary.garbage ~seed:2; Adversary.equivocate ~seed:3 ])
    [ 1; 2; 4; 6; 7 ]

let test_extreme_ranks_differ () =
  (* With t = 1 the clamped windows for rank 1 and rank n−t are disjoint:
     [h_1, h_3] vs [h_7, h_9] for 9 honest inputs 10k..90k. *)
  let n = 10 and t = 1 and bits = 20 in
  let corrupt = Workload.spread_corrupt ~n ~t in
  let inputs =
    Array.init n (fun i -> Bitstring.of_int_fixed ~bits (10_000 * (i + 1)))
  in
  let output rank =
    let outcome = run_rank ~n ~t ~bits ~rank ~corrupt ~adversary:Adversary.passive inputs in
    Bitstring.to_int (List.hd (Sim.honest_outputs ~corrupt outcome))
  in
  let low = output 1 and high = output (n - t) in
  Alcotest.check Alcotest.bool "low rank lands low" true (low <= 30_000 + 10_000);
  Alcotest.check Alcotest.bool "high rank lands high" true (high >= 60_000);
  Alcotest.check Alcotest.bool "separated" true (low < high)

let test_median_is_middle_rank () =
  (* Rank (n-t+1)/2 and Median_ba use the same window: identical outputs on
     identical runs. *)
  let n = 7 and t = 2 and bits = 12 in
  let corrupt = Workload.spread_corrupt ~n ~t in
  let inputs = Array.init n (fun i -> Bitstring.of_int_fixed ~bits (100 * (i + 1))) in
  let rank = ((n - t) + 1) / 2 in
  let via_rank =
    Sim.honest_outputs ~corrupt
      (run_rank ~n ~t ~bits ~rank ~corrupt ~adversary:Adversary.passive inputs)
  in
  let via_median =
    Sim.honest_outputs ~corrupt
      (Sim.run ~n ~t ~corrupt ~adversary:Adversary.passive (fun ctx ->
           Convex.Median_ba.run ctx ~bits inputs.(ctx.Ctx.me)))
  in
  Alcotest.check
    (Alcotest.list (Alcotest.testable Bitstring.pp Bitstring.equal))
    "median = middle rank" via_median via_rank

let test_rank_validation () =
  Alcotest.check_raises "rank 0 rejected" (Invalid_argument "Rank_ba.run: rank must be >= 1")
    (fun () ->
      ignore
        (Convex.Rank_ba.run (Ctx.make ~n:4 ~t:1 ~me:0) ~bits:8 ~rank:0
           (Bitstring.zero 8)))

let prop_rank_random =
  QCheck.Test.make ~name:"rank validity (random)" ~count:20
    QCheck.(triple (int_bound 100000) (int_bound 4) (int_bound 2))
    (fun (seed, rank0, adv) ->
      let rank = 1 + rank0 in
      let n = 7 and t = 2 and bits = 12 in
      let rng = Prng.create seed in
      let corrupt = Workload.spread_corrupt ~n ~t in
      let inputs = Array.init n (fun _ -> Bitstring.of_int_fixed ~bits (Prng.int rng 4096)) in
      let adversary =
        List.nth [ Adversary.passive; Adversary.silent; Adversary.bitflip ~seed ] adv
      in
      let outcome = run_rank ~n ~t ~bits ~rank ~corrupt ~adversary inputs in
      let outputs = Sim.honest_outputs ~corrupt outcome in
      let honest = honest_of ~corrupt inputs in
      (match outputs with
      | o :: rest -> List.for_all (Bitstring.equal o) rest
      | [] -> false)
      && List.for_all (fun o -> Convex.Rank_ba.validity_bounds honest ~rank ~t o) outputs)

let suite =
  [
    Alcotest.test_case "rank sweep" `Quick test_ranks_sweep;
    Alcotest.test_case "extreme ranks differ" `Quick test_extreme_ranks_differ;
    Alcotest.test_case "median = middle rank" `Quick test_median_is_middle_rank;
    Alcotest.test_case "rank validation" `Quick test_rank_validation;
    QCheck_alcotest.to_alcotest prop_rank_random;
  ]
