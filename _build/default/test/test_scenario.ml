(* Scenario-file parser: overrides, comments, strict error reporting,
   round-tripping. *)

let ok = function Ok v -> v | Error e -> Alcotest.failf "unexpected error: %s" e
let err = function Error e -> e | Ok _ -> Alcotest.fail "expected an error"

let test_defaults_and_overrides () =
  let s = ok (Scenario.parse "") in
  Alcotest.check Alcotest.int "default n" 7 s.Scenario.n;
  Alcotest.check Alcotest.string "default protocol" "pi-z" s.Scenario.protocol;
  let s = ok (Scenario.parse "n = 10\nt=3\nprotocol =  high-cost-ca  \nseed=42") in
  Alcotest.check Alcotest.int "n" 10 s.Scenario.n;
  Alcotest.check Alcotest.int "t" 3 s.Scenario.t;
  Alcotest.check Alcotest.string "protocol trimmed" "high-cost-ca" s.Scenario.protocol;
  Alcotest.check Alcotest.int "seed" 42 s.Scenario.seed;
  Alcotest.check Alcotest.string "untouched" "sensors" s.Scenario.workload

let test_comments_and_blanks () =
  let s =
    ok
      (Scenario.parse
         "# a comment\n\n   \nn = 4\n# another = ignored\nworkload = clustered\n")
  in
  Alcotest.check Alcotest.int "n" 4 s.Scenario.n;
  Alcotest.check Alcotest.string "workload" "clustered" s.Scenario.workload

let test_errors () =
  Alcotest.check Alcotest.bool "unknown key named" true
    (String.length (err (Scenario.parse "frobnicate = 1")) > 0);
  Alcotest.check Alcotest.string "bad int" "line 1: \" x\" is not an integer"
    (err (Scenario.parse "n = x"));
  Alcotest.check Alcotest.string "no equals" "line 2: expected key = value"
    (err (Scenario.parse "# fine\nnonsense line"));
  Alcotest.check Alcotest.string "duplicate" "line 2: duplicate key \"n\""
    (err (Scenario.parse "n = 4\nn = 5"));
  Alcotest.check Alcotest.string "validated n" "n must be >= 1"
    (err (Scenario.parse "n = 0"));
  Alcotest.check Alcotest.string "validated bits" "bits must be >= 1"
    (err (Scenario.parse "bits = -3"))

let test_roundtrip () =
  let s =
    ok
      (Scenario.parse
         "n = 13\nt = 4\nprotocol = broadcast-ca\nworkload = timestamps\n\
          adversary = bitflip\nattack = split-extremes\nbits = 96\naa_rounds = 3\nseed = 77")
  in
  let s' = ok (Scenario.parse (Scenario.to_string s)) in
  Alcotest.check Alcotest.bool "roundtrip" true (s = s')

let test_load_missing_file () =
  Alcotest.check Alcotest.bool "missing file is an Error" true
    (match Scenario.load "/nonexistent/path.scn" with Error _ -> true | Ok _ -> false)

let suite =
  [
    Alcotest.test_case "defaults/overrides" `Quick test_defaults_and_overrides;
    Alcotest.test_case "comments/blanks" `Quick test_comments_and_blanks;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "missing file" `Quick test_load_missing_file;
  ]
