(* Π_BA (phase-king), Broadcast and Turpin–Coan: the Definition 2 properties
   under every generic adversary strategy. *)

open Net

let run_ba ?(t = 1) ~n ~corrupt ~adversary inputs =
  Sim.run ~n ~t ~corrupt ~adversary (fun ctx ->
      Ba.Phase_king.run_bytes ctx inputs.(ctx.Ctx.me))

let all_equal = function
  | [] -> true
  | x :: rest -> List.for_all (String.equal x) rest

let adversaries = Adversary.all_generic ~seed:1234

let test_validity_all_honest () =
  let n = 4 in
  let inputs = Array.make n "val" in
  let corrupt = Array.make n false in
  let outcome = run_ba ~n ~corrupt ~adversary:Adversary.passive inputs in
  List.iter
    (fun o -> Alcotest.check Alcotest.string "output = common input" "val" o)
    (Sim.honest_outputs ~corrupt outcome);
  Alcotest.check Alcotest.int "rounds = 3(t+1)" 6 outcome.Sim.metrics.Metrics.rounds

let test_validity_under_every_adversary () =
  let n = 7 and t = 2 in
  let inputs = Array.init n (fun i -> if i < t then "evil" else "honest-common") in
  let corrupt = Sim.corrupt_first ~n t in
  List.iter
    (fun adversary ->
      let outcome = run_ba ~t ~n ~corrupt ~adversary inputs in
      List.iter
        (fun o ->
          Alcotest.check Alcotest.string
            (Printf.sprintf "validity vs %s" adversary.Adversary.name)
            "honest-common" o)
        (Sim.honest_outputs ~corrupt outcome))
    adversaries

let test_agreement_split_inputs () =
  let n = 7 and t = 2 in
  let corrupt = Sim.corrupt_first ~n t in
  List.iter
    (fun adversary ->
      let inputs = Array.init n (fun i -> Printf.sprintf "v%d" (i mod 3)) in
      let outcome = run_ba ~t ~n ~corrupt ~adversary inputs in
      Alcotest.check Alcotest.bool
        (Printf.sprintf "agreement vs %s" adversary.Adversary.name)
        true
        (all_equal (Sim.honest_outputs ~corrupt outcome)))
    adversaries

let test_binary_output_is_honest_input () =
  (* Over {0,1}: whenever honest inputs are unanimous the output matches; when
     split, the output is one of the two — always an honest input. *)
  let n = 4 and t = 1 in
  let corrupt = [| false; false; false; true |] in
  List.iter
    (fun adversary ->
      List.iter
        (fun pattern ->
          let inputs = Array.of_list (pattern @ [ true ]) in
          let outcome =
            Sim.run ~n ~t ~corrupt ~adversary (fun ctx ->
                Ba.Phase_king.run_bit ctx inputs.(ctx.Ctx.me))
          in
          let honest = Sim.honest_outputs ~corrupt outcome in
          (match honest with
          | o :: _ ->
              Alcotest.check Alcotest.bool
                (Printf.sprintf "output held by an honest party (%s)" adversary.Adversary.name)
                true
                (List.exists (fun i -> Bool.equal i o) pattern)
          | [] -> Alcotest.fail "no honest outputs");
          Alcotest.check Alcotest.bool "binary agreement" true
            (match honest with [] -> false | x :: r -> List.for_all (Bool.equal x) r))
        [
          [ false; false; false ];
          [ true; true; true ];
          [ false; true; false ];
          [ true; false; true ];
        ])
    adversaries

let test_option_domain () =
  let n = 4 and t = 1 in
  let corrupt = [| true; false; false; false |] in
  let inputs = [| Some "x"; None; None; None |] in
  let outcome =
    Sim.run ~n ~t ~corrupt ~adversary:(Adversary.garbage ~seed:5) (fun ctx ->
        Ba.Phase_king.run_option ctx inputs.(ctx.Ctx.me))
  in
  List.iter
    (fun o ->
      Alcotest.check (Alcotest.option Alcotest.string) "bot is a first-class value" None o)
    (Sim.honest_outputs ~corrupt outcome)

let test_t_zero () =
  let n = 3 and t = 0 in
  let corrupt = Array.make n false in
  let inputs = [| "a"; "b"; "a" |] in
  let outcome = run_ba ~t ~n ~corrupt ~adversary:Adversary.passive inputs in
  Alcotest.check Alcotest.bool "agree with t=0" true
    (all_equal (Sim.honest_outputs ~corrupt outcome))

let test_broadcast () =
  let n = 7 and t = 2 in
  let corrupt = Array.init n (fun i -> i >= n - t) in
  List.iter
    (fun adversary ->
      (* Honest sender: all honest parties output the sender's value. *)
      let outcome =
        Sim.run ~n ~t ~corrupt ~adversary (fun ctx ->
            Ba.Broadcast.run_bytes ctx ~sender:1
              (if ctx.Ctx.me = 1 then "payload" else ""))
      in
      List.iter
        (fun o ->
          Alcotest.check Alcotest.string
            (Printf.sprintf "BC validity vs %s" adversary.Adversary.name)
            "payload" o)
        (Sim.honest_outputs ~corrupt outcome);
      (* Byzantine sender: agreement still holds. *)
      let outcome =
        Sim.run ~n ~t ~corrupt ~adversary (fun ctx ->
            Ba.Broadcast.run_bytes ctx ~sender:(n - 1)
              (if ctx.Ctx.me = n - 1 then "from-byz" else ""))
      in
      Alcotest.check Alcotest.bool
        (Printf.sprintf "BC agreement vs %s" adversary.Adversary.name)
        true
        (all_equal (Sim.honest_outputs ~corrupt outcome)))
    adversaries

let test_turpin_coan () =
  let n = 7 and t = 2 in
  let corrupt = Sim.corrupt_first ~n t in
  List.iter
    (fun adversary ->
      (* Pre-agreement: output the common value. *)
      let inputs = Array.init n (fun i -> if i < t then "junk" else "long-common-value") in
      let outcome =
        Sim.run ~n ~t ~corrupt ~adversary (fun ctx ->
            Ba.Turpin_coan.run_bytes ctx inputs.(ctx.Ctx.me))
      in
      List.iter
        (fun o ->
          Alcotest.check Alcotest.string
            (Printf.sprintf "TC validity vs %s" adversary.Adversary.name)
            "long-common-value" o)
        (Sim.honest_outputs ~corrupt outcome);
      (* Split inputs: agreement on some common value. *)
      let inputs = Array.init n (fun i -> Printf.sprintf "w%d" i) in
      let outcome =
        Sim.run ~n ~t ~corrupt ~adversary (fun ctx ->
            Ba.Turpin_coan.run_bytes ctx inputs.(ctx.Ctx.me))
      in
      Alcotest.check Alcotest.bool
        (Printf.sprintf "TC agreement vs %s" adversary.Adversary.name)
        true
        (all_equal (Sim.honest_outputs ~corrupt outcome)))
    adversaries

let test_tc_cheaper_than_ba_for_long_values () =
  (* The whole point of the extension protocol: for long values TC sends
     fewer honest bits than running multivalued phase-king directly. *)
  let n = 7 and t = 2 in
  let corrupt = Sim.corrupt_first ~n t in
  let value = String.make 4096 'x' in
  let inputs = Array.make n value in
  let tc =
    Sim.run ~n ~t ~corrupt ~adversary:Adversary.passive (fun ctx ->
        Ba.Turpin_coan.run_bytes ctx inputs.(ctx.Ctx.me))
  in
  let pk = run_ba ~t ~n ~corrupt ~adversary:Adversary.passive inputs in
  Alcotest.check Alcotest.bool "TC < phase-king on 4KiB values" true
    (tc.Sim.metrics.Metrics.honest_bits < pk.Sim.metrics.Metrics.honest_bits)

(* Property: random inputs, random corrupt set, random adversary — agreement
   and binary honest-input validity always hold. *)
let prop_agreement =
  QCheck.Test.make ~name:"phase-king agreement (random runs)" ~count:40
    QCheck.(triple (int_bound 1000) (int_bound 2) (int_bound 8))
    (fun (seed, t, adv_idx) ->
      let n = (3 * t) + 1 + (seed mod 3) in
      let rng = Prng.create seed in
      let corrupt = Array.make n false in
      let placed = ref 0 in
      while !placed < t do
        let i = Prng.int rng n in
        if not corrupt.(i) then begin
          corrupt.(i) <- true;
          incr placed
        end
      done;
      let inputs = Array.init n (fun _ -> Printf.sprintf "v%d" (Prng.int rng 3)) in
      let adversary = List.nth adversaries (adv_idx mod List.length adversaries) in
      let outcome =
        Sim.run ~n ~t ~corrupt ~adversary (fun ctx ->
            Ba.Phase_king.run_bytes ctx inputs.(ctx.Ctx.me))
      in
      all_equal (Sim.honest_outputs ~corrupt outcome))

let suite =
  [
    Alcotest.test_case "validity all honest" `Quick test_validity_all_honest;
    Alcotest.test_case "validity under adversaries" `Quick test_validity_under_every_adversary;
    Alcotest.test_case "agreement split inputs" `Quick test_agreement_split_inputs;
    Alcotest.test_case "binary honest-input property" `Quick test_binary_output_is_honest_input;
    Alcotest.test_case "option domain" `Quick test_option_domain;
    Alcotest.test_case "t = 0" `Quick test_t_zero;
    Alcotest.test_case "broadcast" `Quick test_broadcast;
    Alcotest.test_case "turpin-coan" `Quick test_turpin_coan;
    Alcotest.test_case "TC communication advantage" `Quick test_tc_cheaper_than_ba_for_long_values;
    QCheck_alcotest.to_alcotest prop_agreement;
  ]
