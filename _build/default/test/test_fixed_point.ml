(* Fixed-precision rationals: parsing/printing, ordering, and end-to-end CA
   (the paper's "rationals with pre-defined precision" interpretation). *)

open Net
module Fp = Convex.Fixed_point

let fp = Alcotest.testable Fp.pp Fp.equal

let test_parse_print () =
  let cases =
    [
      ("-10.04", 2, "-10.04");
      ("10.04", 2, "10.04");
      ("+3.5", 2, "3.50");
      ("7", 3, "7.000");
      ("0.1", 1, "0.1");
      ("-0.001", 3, "-0.001");
      ("123456789123456789.99", 2, "123456789123456789.99");
      ("0", 0, "0");
      (".5", 1, "0.5");
    ]
  in
  List.iter
    (fun (input, decimals, expected) ->
      Alcotest.check Alcotest.string input expected
        (Fp.to_string (Fp.of_string ~decimals input)))
    cases

let test_parse_rejects () =
  List.iter
    (fun (input, decimals) ->
      Alcotest.check_raises input
        (Invalid_argument ("Fixed_point.of_string: " ^ input))
        (fun () -> ignore (Fp.of_string ~decimals input)))
    [ ("", 2); ("-", 2); ("1.234", 2); ("1a", 2); ("1.2.3", 2); (".", 2); ("--1", 0) ]

let test_units_roundtrip () =
  let v = Fp.of_string ~decimals:2 "-10.04" in
  Alcotest.check Alcotest.string "units" "-1004" (Bigint.to_string (Fp.units v));
  Alcotest.check Alcotest.int "decimals" 2 (Fp.decimals v);
  Alcotest.check fp "of_units" v (Fp.of_units ~decimals:2 (Bigint.of_int (-1004)));
  Alcotest.check fp "of_bigint scales" (Fp.of_string ~decimals:3 "5.000")
    (Fp.of_bigint ~decimals:3 (Bigint.of_int 5))

let test_ordering_and_arithmetic () =
  let p s = Fp.of_string ~decimals:2 s in
  Alcotest.check Alcotest.bool "order" true (Fp.compare (p "-10.05") (p "-10.04") < 0);
  Alcotest.check Alcotest.bool "order pos" true (Fp.compare (p "1.99") (p "2.00") < 0);
  Alcotest.check fp "add" (p "3.00") (Fp.add (p "1.25") (p "1.75"));
  Alcotest.check fp "sub" (p "-0.50") (Fp.sub (p "1.25") (p "1.75"));
  Alcotest.check fp "neg" (p "-1.25") (Fp.neg (p "1.25"));
  Alcotest.check_raises "mixed precision"
    (Invalid_argument "Fixed_point: mixed precisions") (fun () ->
      ignore (Fp.add (p "1.00") (Fp.of_string ~decimals:3 "1.000")))

let test_agree_end_to_end () =
  let n = 7 and t = 2 and decimals = 2 in
  let corrupt = Array.init n (fun i -> i >= n - t) in
  let readings =
    [| "-10.05"; "-10.04"; "-10.03"; "-10.05"; "-10.04"; "100.00"; "99.99" |]
  in
  let inputs = Array.map (Fp.of_string ~decimals) readings in
  List.iter
    (fun adversary ->
      let outcome =
        Sim.run ~n ~t ~corrupt ~adversary (fun ctx ->
            Convex.agree_fixed_point ctx inputs.(ctx.Ctx.me))
      in
      let outputs = Sim.honest_outputs ~corrupt outcome in
      let honest_inputs =
        List.filteri (fun i _ -> not corrupt.(i)) (Array.to_list inputs)
      in
      (match outputs with
      | o :: rest ->
          Alcotest.check Alcotest.bool
            (Printf.sprintf "agreement vs %s" adversary.Adversary.name)
            true
            (List.for_all (Fp.equal o) rest)
      | [] -> Alcotest.fail "no outputs");
      List.iter
        (fun o ->
          Alcotest.check Alcotest.bool
            (Printf.sprintf "convex validity vs %s" adversary.Adversary.name)
            true
            (Fp.in_convex_hull ~inputs:honest_inputs o))
        outputs)
    [ Adversary.passive; Adversary.garbage ~seed:3; Adversary.equivocate ~seed:4 ]

let prop_parse_print_roundtrip =
  QCheck.Test.make ~name:"parse/print roundtrip" ~count:300
    QCheck.(triple (int_range (-1_000_000) 1_000_000) (int_bound 99) (int_bound 4))
    (fun (int_part, frac, decimals) ->
      let decimals = max 2 decimals in
      let s = Printf.sprintf "%d.%02d" int_part frac in
      let v = Convex.Fixed_point.of_string ~decimals s in
      let v' = Convex.Fixed_point.of_string ~decimals (Convex.Fixed_point.to_string v) in
      Convex.Fixed_point.equal v v')

let prop_order_matches_float =
  QCheck.Test.make ~name:"order matches numeric order" ~count:300
    QCheck.(pair (int_range (-100000) 100000) (int_range (-100000) 100000))
    (fun (a, b) ->
      let va = Fp.of_units ~decimals:3 (Bigint.of_int a) in
      let vb = Fp.of_units ~decimals:3 (Bigint.of_int b) in
      compare a b = Fp.compare va vb)

let suite =
  [
    Alcotest.test_case "parse/print" `Quick test_parse_print;
    Alcotest.test_case "parse rejects" `Quick test_parse_rejects;
    Alcotest.test_case "units roundtrip" `Quick test_units_roundtrip;
    Alcotest.test_case "ordering/arithmetic" `Quick test_ordering_and_arithmetic;
    Alcotest.test_case "CA end-to-end" `Quick test_agree_end_to_end;
    QCheck_alcotest.to_alcotest prop_parse_print_roundtrip;
    QCheck_alcotest.to_alcotest prop_order_matches_float;
  ]
