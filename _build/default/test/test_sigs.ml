(* Hash-based signatures: Lamport OTS and the XMSS-style many-time scheme. *)

let rng () = Net.Prng.create 4242

let test_lamport_roundtrip () =
  let secret, public = Sigs.Lamport.generate (rng ()) in
  let s = Sigs.Lamport.sign secret "attack at dawn" in
  Alcotest.check Alcotest.bool "verifies" true
    (Sigs.Lamport.verify ~public ~msg:"attack at dawn" s);
  Alcotest.check Alcotest.bool "wrong message" false
    (Sigs.Lamport.verify ~public ~msg:"attack at dusk" s);
  let _, other_public = Sigs.Lamport.generate (rng ()) in
  Alcotest.check Alcotest.bool "wrong key (same) " true (String.equal public other_public);
  let _, fresh_public = Sigs.Lamport.generate (Net.Prng.create 7) in
  Alcotest.check Alcotest.bool "wrong key" false
    (Sigs.Lamport.verify ~public:fresh_public ~msg:"attack at dawn" s)

let test_lamport_tamper () =
  let secret, public = Sigs.Lamport.generate (rng ()) in
  let s = Sigs.Lamport.sign secret "m" in
  let raw = Sigs.Lamport.encode_signature s in
  (* Flip one byte anywhere: the signature must die. *)
  let tampered i =
    let b = Bytes.of_string raw in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
    Sigs.Lamport.decode_signature (Bytes.to_string b)
  in
  List.iter
    (fun i ->
      match tampered i with
      | None -> ()
      | Some s' ->
          Alcotest.check Alcotest.bool
            (Printf.sprintf "tampered byte %d rejected" i)
            false
            (Sigs.Lamport.verify ~public ~msg:"m" s'))
    [ 0; 100; 5000; Sigs.Lamport.signature_bytes - 1 ];
  Alcotest.check Alcotest.bool "truncated rejected" true
    (Sigs.Lamport.decode_signature (String.sub raw 0 100) = None);
  Alcotest.check Alcotest.bool "roundtrip" true
    (match Sigs.Lamport.decode_signature raw with
    | Some s' -> Sigs.Lamport.verify ~public ~msg:"m" s'
    | None -> false)

let test_xmss_many_signatures () =
  let signer, public = Sigs.Xmss.generate (rng ()) ~capacity:8 in
  let sigs = List.init 8 (fun i -> (i, Sigs.Xmss.sign signer (Printf.sprintf "msg-%d" i))) in
  List.iter
    (fun (i, s) ->
      Alcotest.check Alcotest.bool
        (Printf.sprintf "sig %d verifies" i)
        true
        (Sigs.Xmss.verify ~public ~msg:(Printf.sprintf "msg-%d" i) s);
      Alcotest.check Alcotest.bool "not for another message" false
        (Sigs.Xmss.verify ~public ~msg:"other" s))
    sigs;
  Alcotest.check Alcotest.int "exhausted" 0 (Sigs.Xmss.remaining signer);
  Alcotest.check_raises "over-capacity" (Failure "Xmss.sign: key exhausted") (fun () ->
      ignore (Sigs.Xmss.sign signer "one too many"))

let test_xmss_codec () =
  let signer, public = Sigs.Xmss.generate (rng ()) ~capacity:4 in
  let s = Sigs.Xmss.sign signer "payload" in
  (match Sigs.Xmss.decode_signature (Sigs.Xmss.encode_signature s) with
  | Some s' ->
      Alcotest.check Alcotest.bool "roundtrip verifies" true
        (Sigs.Xmss.verify ~public ~msg:"payload" s')
  | None -> Alcotest.fail "decode failed");
  Alcotest.check Alcotest.bool "garbage rejected" true
    (Sigs.Xmss.decode_signature "not a signature" = None)

let test_xmss_cross_key () =
  let signer_a, _pub_a = Sigs.Xmss.generate (Net.Prng.create 1) ~capacity:2 in
  let _signer_b, pub_b = Sigs.Xmss.generate (Net.Prng.create 2) ~capacity:2 in
  let s = Sigs.Xmss.sign signer_a "m" in
  Alcotest.check Alcotest.bool "signature bound to key" false
    (Sigs.Xmss.verify ~public:pub_b ~msg:"m" s)

let prop_mutated_signatures_fail =
  (* An adversary observing a signature cannot massage it into a signature
     for a different message (it would need SHA-256 preimages). *)
  QCheck.Test.make ~name:"mutations never forge" ~count:30 QCheck.(pair small_nat small_nat)
    (fun (pos_seed, byte_seed) ->
      let signer, public = Sigs.Xmss.generate (Net.Prng.create 99) ~capacity:1 in
      let s = Sigs.Xmss.sign signer "genuine message" in
      let raw = Sigs.Xmss.encode_signature s in
      let b = Bytes.of_string raw in
      let pos = pos_seed mod Bytes.length b in
      Bytes.set b pos (Char.chr (byte_seed land 0xff));
      match Sigs.Xmss.decode_signature (Bytes.to_string b) with
      | None -> true
      | Some s' ->
          (* Either it still verifies for the original message (the mutation
             hit redundancy it does not have — impossible except when the
             byte happens to be unchanged) or it fails; it must never verify
             for a different message. *)
          not (Sigs.Xmss.verify ~public ~msg:"forged message" s'))

let suite =
  [
    Alcotest.test_case "lamport roundtrip" `Quick test_lamport_roundtrip;
    Alcotest.test_case "lamport tamper" `Quick test_lamport_tamper;
    Alcotest.test_case "xmss many signatures" `Quick test_xmss_many_signatures;
    Alcotest.test_case "xmss codec" `Quick test_xmss_codec;
    Alcotest.test_case "xmss cross-key" `Quick test_xmss_cross_key;
    QCheck_alcotest.to_alcotest prop_mutated_signatures_fail;
  ]
