test/test_ba.ml: Adversary Alcotest Array Ba Bool Ctx List Metrics Net Printf Prng QCheck QCheck_alcotest Sim String
