test/test_net.ml: Adversary Alcotest Array Ctx List Metrics Net Printf Prng Proto Sim String
