test/test_stress.ml: Adversary Alcotest Array Bigint Bitstring Convex Ctx List Net Prng Sim Workload
