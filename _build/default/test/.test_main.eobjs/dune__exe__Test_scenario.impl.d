test/test_scenario.ml: Alcotest Scenario String
