test/test_median_ba.ml: Adversary Alcotest Array Attacks Bitstring Convex Ctx List Metrics Net Printf Prng QCheck QCheck_alcotest Sim Workload
