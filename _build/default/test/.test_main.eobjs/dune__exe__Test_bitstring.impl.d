test/test_bitstring.ml: Alcotest Bitstring List QCheck QCheck_alcotest
