test/test_gf.ml: Alcotest Gf65536 QCheck QCheck_alcotest
