test/test_edges.ml: Adversary Alcotest Array Bigint Convex Ctx List Net Option Sim String Trace Workload
