test/test_fixed_point.ml: Adversary Alcotest Array Bigint Convex Ctx List Net Printf QCheck QCheck_alcotest Sim
