test/test_sha256.ml: Alcotest Char Printf QCheck QCheck_alcotest Sha256 String
