test/test_baplus.ml: Adversary Alcotest Array Baplus Char Ctx Hashtbl List Metrics Net Option Printf Prng QCheck QCheck_alcotest Sim String
