test/test_bigint.ml: Alcotest Bigint Bitstring List Printf QCheck QCheck_alcotest String
