test/test_subprotocols.ml: Adversary Alcotest Array Bigint Bitstring Convex Ctx List Metrics Net Prng Sim Workload
