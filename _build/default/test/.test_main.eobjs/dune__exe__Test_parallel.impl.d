test/test_parallel.ml: Adversary Alcotest Array Ba Baseline Bitstring Ctx Fun List Metrics Net Printf Prng Proto QCheck QCheck_alcotest Sim Workload
