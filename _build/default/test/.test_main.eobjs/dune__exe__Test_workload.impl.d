test/test_workload.ml: Adversary Alcotest Array Bigint Bitstring List Net Option Printf Prng String Workload
