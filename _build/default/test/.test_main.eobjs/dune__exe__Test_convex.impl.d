test/test_convex.ml: Adversary Alcotest Array Bigint Bitstring Convex Ctx List Metrics Net Printf Prng QCheck QCheck_alcotest Sim
