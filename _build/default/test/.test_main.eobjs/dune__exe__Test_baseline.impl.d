test/test_baseline.ml: Adversary Alcotest Array Ba Baseline Bigint Bitstring Convex Ctx List Metrics Net Printf Prng QCheck QCheck_alcotest Sim
