test/test_reed_solomon.ml: Alcotest Array Char Gen List Printf QCheck QCheck_alcotest Reed_solomon String
