test/test_merkle.ml: Alcotest Array List Merkle Printf QCheck QCheck_alcotest Sha256 String
