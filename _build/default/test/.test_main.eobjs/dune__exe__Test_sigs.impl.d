test/test_sigs.ml: Alcotest Bytes Char List Net Printf QCheck QCheck_alcotest Sigs String
