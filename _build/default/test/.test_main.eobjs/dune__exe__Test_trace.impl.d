test/test_trace.ml: Adversary Alcotest Array Bigint Convex Ctx List Metrics Net Sim String Trace
