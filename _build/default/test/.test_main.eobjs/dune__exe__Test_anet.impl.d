test/test_anet.ml: Alcotest Anet Array Async_aa Async_proto Async_sim Bitstring Bracha Char Hashtbl List Net Printf String
