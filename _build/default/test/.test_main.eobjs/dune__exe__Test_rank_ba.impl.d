test/test_rank_ba.ml: Adversary Alcotest Array Bitstring Convex Ctx List Net Printf Prng QCheck QCheck_alcotest Sim Workload
