test/test_attacks.ml: Adversary Alcotest Array Attacks Baplus Bitstring Char Convex Ctx List Net Printf Prng Sha256 Sim String Workload
