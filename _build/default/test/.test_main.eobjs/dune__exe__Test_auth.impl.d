test/test_auth.ml: Adversary Alcotest Array Auth Bitstring Ctx List Metrics Net Option Printf Sigs Sim String
