test/test_wire.ml: Alcotest Bitstring List Printf QCheck QCheck_alcotest String Wire
