test/test_gradecast.ml: Adversary Alcotest Array Ba Bitstring Ctx List Metrics Net Printf Sim String
