test/test_net_unix.ml: Adversary Alcotest Array Ba Bigint Convex Ctx Metrics Net Net_unix Option Printf Proto Sim String
