test/test_lemma_blocks.ml: Adversary Alcotest Array Attacks Bigint Bitstring Convex Ctx Fun List Net Option Printf Sim Workload
