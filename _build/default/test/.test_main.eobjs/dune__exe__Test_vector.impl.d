test/test_vector.ml: Adversary Alcotest Array Bigint Convex Ctx List Net Printf Sim
