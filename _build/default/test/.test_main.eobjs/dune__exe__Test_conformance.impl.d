test/test_conformance.ml: Adversary Alcotest Array Attacks Bigint List Net Printexc Printf Prng Sha256 String Workload
