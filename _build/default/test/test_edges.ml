(* Cross-cutting edge cases that no single module suite owns: extreme
   magnitudes through Π_ℤ, fixed-point corner literals, degenerate protocol
   parameters, and trace/label interaction with byzantine senders. *)

open Net

let bigint_t = Alcotest.testable Bigint.pp Bigint.equal

let run_int_all ~n ~t ~corrupt ~adversary inputs =
  Sim.honest_outputs ~corrupt
    (Sim.run ~n ~t ~corrupt ~adversary (fun ctx -> Convex.agree_int ctx inputs.(ctx.Ctx.me)))

let test_min_int_scale_magnitudes () =
  let n = 4 and t = 1 in
  (* All honest parties hold min_int; the byzantine one claims max_int. *)
  let corrupt = [| false; false; false; true |] in
  let v = Bigint.of_int min_int in
  let inputs = [| v; v; v; Bigint.of_int max_int |] in
  List.iter
    (fun o -> Alcotest.check bigint_t "min_int magnitude survives" v o)
    (run_int_all ~n ~t ~corrupt ~adversary:(Adversary.garbage ~seed:1) inputs)

let test_all_honest_zero () =
  let n = 4 and t = 1 in
  let corrupt = [| false; false; true; false |] in
  let inputs = [| Bigint.zero; Bigint.zero; Bigint.pow2 500; Bigint.zero |] in
  List.iter
    (fun o -> Alcotest.check bigint_t "zero" Bigint.zero o)
    (run_int_all ~n ~t ~corrupt ~adversary:(Adversary.equivocate ~seed:2) inputs)

let test_adjacent_negatives () =
  (* The sensor regime: all negative, adjacent values — the sign agreement
     plus magnitude path with minimal disagreement. *)
  let n = 7 and t = 2 in
  let corrupt = Workload.spread_corrupt ~n ~t in
  let inputs = Array.init n (fun i -> Bigint.of_int (-1000 - i)) in
  let outputs = run_int_all ~n ~t ~corrupt ~adversary:(Adversary.bitflip ~seed:3) inputs in
  List.iter
    (fun o ->
      let v = Option.get (Bigint.to_int_opt o) in
      Alcotest.check Alcotest.bool "within adjacent band" true
        (v <= -1000 && v >= -1000 - n + 1))
    outputs

let test_fixed_point_corner_literals () =
  let module Fp = Convex.Fixed_point in
  Alcotest.check Alcotest.string "negative zero normalizes" "0.00"
    (Fp.to_string (Fp.of_string ~decimals:2 "-0.00"));
  Alcotest.check Alcotest.string "trailing-dot integer" "5.000"
    (Fp.to_string (Fp.of_string ~decimals:3 "5."));
  Alcotest.check Alcotest.bool "negative zero equals zero" true
    (Fp.equal (Fp.of_string ~decimals:2 "-0.00") (Fp.of_string ~decimals:2 "0"))

let test_n_equals_one () =
  (* A single party (t = 0) trivially agrees with itself, in every protocol
     entry point that permits n = 1. *)
  let outcome =
    Sim.run ~n:1 ~t:0 ~corrupt:[| false |] ~adversary:Adversary.passive (fun ctx ->
        Convex.agree_int ctx (Bigint.of_int (-99)))
  in
  Alcotest.check (Alcotest.list bigint_t) "solo party" [ Bigint.of_int (-99) ]
    (Sim.honest_outputs ~corrupt:[| false |] outcome)

let test_trace_records_byzantine_labels () =
  let n = 4 and t = 1 in
  let corrupt = Sim.corrupt_first ~n t in
  let trace = Trace.create () in
  let inputs = Array.init n (fun i -> Bigint.of_int (10 + i)) in
  ignore
    (Sim.run ~trace ~n ~t ~corrupt ~adversary:(Adversary.spammer ~seed:4 ~max_len:16)
       (fun ctx -> Convex.agree_int ctx inputs.(ctx.Ctx.me)));
  let byz = List.filter (fun e -> e.Trace.byzantine) (Trace.events trace) in
  Alcotest.check Alcotest.bool "byzantine traffic traced" true (List.length byz > 0);
  List.iter
    (fun e -> Alcotest.check Alcotest.bool "byz sender is party 0" true (e.Trace.src = 0))
    byz;
  (* Honest traffic is fully label-attributed (the whole protocol runs inside
     labelled components). *)
  let unlabeled_honest =
    List.filter
      (fun e -> (not e.Trace.byzantine) && e.Trace.label = None)
      (Trace.events trace)
  in
  Alcotest.check Alcotest.int "no unlabeled honest traffic" 0
    (List.length unlabeled_honest)

let test_byzantine_oversize_messages_truncated () =
  (* A strategy emitting messages beyond the simulator cap must not cause
     unbounded allocation or crashes. *)
  let huge =
    Adversary.make ~name:"huge" (fun _ ~sender:_ ~recipient:_ ->
        Some (String.make (Sim.max_byzantine_bytes + 4096) 'X'))
  in
  let n = 4 and t = 1 in
  let corrupt = Sim.corrupt_first ~n t in
  let inputs = Array.init n (fun i -> Bigint.of_int i) in
  let outputs = run_int_all ~n ~t ~corrupt ~adversary:huge inputs in
  Alcotest.check Alcotest.bool "agreement despite giant frames" true
    (match outputs with o :: rest -> List.for_all (Bigint.equal o) rest | [] -> false)

let suite =
  [
    Alcotest.test_case "min_int-scale magnitudes" `Quick test_min_int_scale_magnitudes;
    Alcotest.test_case "all honest zero" `Quick test_all_honest_zero;
    Alcotest.test_case "adjacent negatives" `Quick test_adjacent_negatives;
    Alcotest.test_case "fixed-point corners" `Quick test_fixed_point_corner_literals;
    Alcotest.test_case "n = 1" `Quick test_n_equals_one;
    Alcotest.test_case "trace + byzantine labels" `Quick test_trace_records_byzantine_labels;
    Alcotest.test_case "oversize byzantine frames" `Quick test_byzantine_oversize_messages_truncated;
  ]
