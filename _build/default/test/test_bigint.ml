(* Unit and property tests for the arbitrary-precision integer substrate. *)

module Z = Bigint

let z = Alcotest.testable Z.pp Z.equal
let check_z = Alcotest.check z
let zs = Z.of_string

let test_of_to_string () =
  Alcotest.check Alcotest.string "zero" "0" (Z.to_string Z.zero);
  Alcotest.check Alcotest.string "small" "42" (Z.to_string (Z.of_int 42));
  Alcotest.check Alcotest.string "negative" "-42" (Z.to_string (Z.of_int (-42)));
  let big = "123456789012345678901234567890123456789" in
  Alcotest.check Alcotest.string "big roundtrip" big (Z.to_string (zs big));
  Alcotest.check Alcotest.string "neg big roundtrip" ("-" ^ big) (Z.to_string (zs ("-" ^ big)));
  Alcotest.check Alcotest.string "plus sign" "7" (Z.to_string (zs "+7"));
  Alcotest.check Alcotest.string "leading zeros" "7" (Z.to_string (zs "007"));
  Alcotest.check_raises "empty" (Invalid_argument "Bigint.of_string: empty") (fun () ->
      ignore (zs ""));
  Alcotest.check_raises "junk" (Invalid_argument "Bigint.of_string: bad digit") (fun () ->
      ignore (zs "12a4"))

let test_arithmetic () =
  check_z "add" (zs "1000000000000000000000") (Z.add (zs "999999999999999999999") Z.one);
  check_z "sub crossing zero" (Z.of_int (-1)) (Z.sub (Z.of_int 5) (Z.of_int 6));
  check_z "mul" (zs "121932631112635269") (Z.mul (zs "123456789") (zs "987654321"));
  check_z "mul signs" (zs "-6") (Z.mul (Z.of_int 2) (Z.of_int (-3)));
  check_z "neg zero is zero" Z.zero (Z.neg Z.zero);
  check_z "abs" (Z.of_int 9) (Z.abs (Z.of_int (-9)));
  check_z "succ/pred" (Z.of_int 0) (Z.pred (Z.succ Z.zero));
  check_z "min_int safe" (zs (string_of_int min_int)) (Z.of_int min_int)

let test_divmod () =
  let q, r = Z.divmod (zs "1000000000000000000007") (zs "1000000007") in
  check_z "quotient" (zs "999999993000") (q);
  check_z "check identity" (zs "1000000000000000000007")
    (Z.add (Z.mul q (zs "1000000007")) r);
  let q, r = Z.divmod (Z.of_int (-7)) (Z.of_int 2) in
  check_z "trunc q" (Z.of_int (-3)) q;
  check_z "trunc r" (Z.of_int (-1)) r;
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Z.divmod Z.one Z.zero))

let test_shift_pow2 () =
  check_z "pow2" (zs "1267650600228229401496703205376") (Z.pow2 100);
  check_z "shl" (Z.of_int 40) (Z.shift_left (Z.of_int 5) 3);
  check_z "shr" (Z.of_int 5) (Z.shift_right (Z.of_int 40) 3);
  check_z "shr to zero" Z.zero (Z.shift_right (Z.of_int 40) 63);
  check_z "shl big" (Z.mul (Z.pow2 61) (Z.of_int 3)) (Z.shift_left (Z.of_int 3) 61)

let test_bits () =
  Alcotest.check Alcotest.int "bit_length 0" 1 (Z.bit_length Z.zero);
  Alcotest.check Alcotest.int "bit_length 1" 1 (Z.bit_length Z.one);
  Alcotest.check Alcotest.int "bit_length 2^100" 101 (Z.bit_length (Z.pow2 100));
  Alcotest.check Alcotest.string "to_bitstring" "110"
    (Bitstring.to_string (Z.to_bitstring (Z.of_int 6)));
  Alcotest.check Alcotest.string "to_bitstring 0" "0"
    (Bitstring.to_string (Z.to_bitstring Z.zero));
  Alcotest.check Alcotest.string "fixed" "00000110"
    (Bitstring.to_string (Z.to_bitstring_fixed ~bits:8 (Z.of_int 6)));
  check_z "of_bitstring" (Z.of_int 6) (Z.of_bitstring (Bitstring.of_string "00110"));
  check_z "roundtrip big" (Z.pow2 200) (Z.of_bitstring (Z.to_bitstring (Z.pow2 200)));
  Alcotest.check (Alcotest.option Alcotest.int) "to_int_opt" (Some (-77))
    (Z.to_int_opt (Z.of_int (-77)));
  Alcotest.check (Alcotest.option Alcotest.int) "to_int_opt overflow" None
    (Z.to_int_opt (Z.pow2 100));
  check_z "sign magnitude" (Z.of_int (-6)) (Z.of_sign_magnitude ~negative:true (Z.of_int 6))

let test_gcd () =
  check_z "gcd basic" (Z.of_int 6) (Z.gcd (Z.of_int 54) (Z.of_int 24));
  check_z "gcd signs" (Z.of_int 6) (Z.gcd (Z.of_int (-54)) (Z.of_int 24));
  check_z "gcd zero" (Z.of_int 7) (Z.gcd Z.zero (Z.of_int 7));
  check_z "gcd both zero" Z.zero (Z.gcd Z.zero Z.zero);
  check_z "gcd coprime" Z.one (Z.gcd (zs "1000000007") (zs "998244353"));
  (* gcd(2^200 * 3, 2^150 * 5) = 2^150. *)
  check_z "gcd big powers" (Z.pow2 150)
    (Z.gcd (Z.mul (Z.pow2 200) (Z.of_int 3)) (Z.mul (Z.pow2 150) (Z.of_int 5)))

let test_hex () =
  Alcotest.check Alcotest.string "zero" "0" (Z.to_hex Z.zero);
  Alcotest.check Alcotest.string "beef" "beef" (Z.to_hex (Z.of_int 0xbeef));
  Alcotest.check Alcotest.string "negative" "-ff" (Z.to_hex (Z.of_int (-255)));
  check_z "of_hex" (Z.of_int 0xdead) (Z.of_hex "dead");
  check_z "of_hex upper" (Z.of_int 0xDEAD) (Z.of_hex "DEAD");
  check_z "of_hex sign" (Z.of_int (-16)) (Z.of_hex "-10");
  check_z "roundtrip big" (Z.pred (Z.pow2 521)) (Z.of_hex (Z.to_hex (Z.pred (Z.pow2 521))));
  Alcotest.check_raises "junk" (Invalid_argument "Bigint.of_hex: bad digit") (fun () ->
      ignore (Z.of_hex "12g4"));
  Alcotest.check_raises "empty" (Invalid_argument "Bigint.of_hex: empty") (fun () ->
      ignore (Z.of_hex ""))

let test_karatsuba_crossing () =
  (* Exercise products whose operand sizes straddle the Karatsuba threshold
     (32 limbs = 960 bits) and validate against an independent identity:
     (2^k - 1) * (2^k + 1) = 2^2k - 1. *)
  List.iter
    (fun k ->
      let a = Z.pred (Z.pow2 k) and b = Z.succ (Z.pow2 k) in
      check_z
        (Printf.sprintf "difference of squares k=%d" k)
        (Z.pred (Z.pow2 (2 * k)))
        (Z.mul a b))
    [ 100; 900; 959; 960; 961; 1500; 2048; 5000 ];
  (* And against decimal arithmetic: (10^d - 1)^2 = 10^2d - 2*10^d + 1. *)
  List.iter
    (fun d ->
      let nines = zs (String.make d '9') in
      let expected =
        Z.add (Z.sub (zs ("1" ^ String.make (2 * d) '0')) (zs ("2" ^ String.make d '0'))) Z.one
      in
      check_z (Printf.sprintf "nines squared d=%d" d) expected (Z.mul nines nines))
    [ 280; 300; 600 ]

(* Property tests against OCaml int as the reference model. *)

let arb_small = QCheck.int_range (-1_000_000_000) 1_000_000_000

let binop name f g =
  QCheck.Test.make ~name ~count:500 (QCheck.pair arb_small arb_small) (fun (x, y) ->
      Z.equal (f (Z.of_int x) (Z.of_int y)) (Z.of_int (g x y)))

let prop_add = binop "add matches int" Z.add ( + )
let prop_sub = binop "sub matches int" Z.sub ( - )
let prop_mul = binop "mul matches int" Z.mul ( * )

let prop_compare =
  QCheck.Test.make ~name:"compare matches int" ~count:500 (QCheck.pair arb_small arb_small)
    (fun (x, y) -> Z.compare (Z.of_int x) (Z.of_int y) = compare x y)

let prop_divmod =
  QCheck.Test.make ~name:"divmod matches int" ~count:500 (QCheck.pair arb_small arb_small)
    (fun (x, y) ->
      QCheck.assume (y <> 0);
      let q, r = Z.divmod (Z.of_int x) (Z.of_int y) in
      Z.equal q (Z.of_int (x / y)) && Z.equal r (Z.of_int (x mod y)))

let prop_string_roundtrip =
  QCheck.Test.make ~name:"decimal roundtrip" ~count:300 QCheck.int (fun x ->
      Z.equal (zs (string_of_int x)) (Z.of_int x)
      && String.equal (Z.to_string (Z.of_int x)) (string_of_int x))

let prop_bitstring_roundtrip =
  QCheck.Test.make ~name:"bitstring roundtrip" ~count:300 QCheck.(int_bound max_int)
    (fun x -> Z.equal (Z.of_bitstring (Z.to_bitstring (Z.of_int x))) (Z.of_int x))

let prop_karatsuba_matches_distributivity =
  (* Random multi-limb products checked via (a+c)(b+d) expansion at sizes
     beyond the Karatsuba threshold. *)
  QCheck.Test.make ~name:"karatsuba distributivity (large)" ~count:30
    (QCheck.pair arb_small arb_small) (fun (x, y) ->
      let a = Z.add (Z.mul (Z.of_int (abs x + 1)) (Z.pow2 1100)) (Z.of_int (abs y)) in
      let b = Z.add (Z.mul (Z.of_int (abs y + 1)) (Z.pow2 1050)) (Z.of_int (abs x)) in
      let c = Z.of_int 12345 and d = Z.of_int 67890 in
      let lhs = Z.mul (Z.add a c) (Z.add b d) in
      let rhs =
        Z.add (Z.add (Z.mul a b) (Z.mul a d)) (Z.add (Z.mul c b) (Z.mul c d))
      in
      Z.equal lhs rhs)

let prop_gcd_divides =
  QCheck.Test.make ~name:"gcd divides both" ~count:200 (QCheck.pair arb_small arb_small)
    (fun (x, y) ->
      QCheck.assume (x <> 0 || y <> 0);
      let g = Z.gcd (Z.of_int x) (Z.of_int y) in
      Z.sign g > 0
      && Z.is_zero (Z.rem (Z.of_int x) g)
      && Z.is_zero (Z.rem (Z.of_int y) g))

let prop_hex_roundtrip =
  QCheck.Test.make ~name:"hex roundtrip" ~count:300 QCheck.int (fun x ->
      Z.equal (Z.of_hex (Z.to_hex (Z.of_int x))) (Z.of_int x))

let prop_mul_big_identity =
  (* (a+b)^2 = a^2 + 2ab + b^2 over multi-limb values. *)
  QCheck.Test.make ~name:"multi-limb distributivity" ~count:100
    (QCheck.pair arb_small arb_small) (fun (x, y) ->
      let a = Z.mul (Z.of_int x) (Z.pow2 120) and b = Z.of_int y in
      let lhs = Z.mul (Z.add a b) (Z.add a b) in
      let rhs = Z.add (Z.add (Z.mul a a) (Z.shift_left (Z.mul a b) 1)) (Z.mul b b) in
      Z.equal lhs rhs)

let prop_shift_is_pow2_mul =
  QCheck.Test.make ~name:"shift_left = mul pow2" ~count:200
    QCheck.(pair arb_small (int_bound 80))
    (fun (x, k) -> Z.equal (Z.shift_left (Z.of_int x) k) (Z.mul (Z.of_int x) (Z.pow2 k)))

let suite =
  [
    Alcotest.test_case "decimal io" `Quick test_of_to_string;
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "divmod" `Quick test_divmod;
    Alcotest.test_case "shift/pow2" `Quick test_shift_pow2;
    Alcotest.test_case "bit views" `Quick test_bits;
    Alcotest.test_case "gcd" `Quick test_gcd;
    Alcotest.test_case "hex io" `Quick test_hex;
    Alcotest.test_case "karatsuba crossing" `Quick test_karatsuba_crossing;
    QCheck_alcotest.to_alcotest prop_karatsuba_matches_distributivity;
    QCheck_alcotest.to_alcotest prop_gcd_divides;
    QCheck_alcotest.to_alcotest prop_hex_roundtrip;
    QCheck_alcotest.to_alcotest prop_add;
    QCheck_alcotest.to_alcotest prop_sub;
    QCheck_alcotest.to_alcotest prop_mul;
    QCheck_alcotest.to_alcotest prop_compare;
    QCheck_alcotest.to_alcotest prop_divmod;
    QCheck_alcotest.to_alcotest prop_string_roundtrip;
    QCheck_alcotest.to_alcotest prop_bitstring_roundtrip;
    QCheck_alcotest.to_alcotest prop_mul_big_identity;
    QCheck_alcotest.to_alcotest prop_shift_is_pow2_mul;
  ]
