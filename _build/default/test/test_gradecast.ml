(* Gradecast: the Feldman–Micali graded-broadcast properties, and the
   gradecast-based approximate agreement of Ben-Or–Dolev–Hoch [6]. *)

open Net

let adversaries = Adversary.all_generic ~seed:77

let run_gc ~n ~t ~corrupt ~adversary ~sender v =
  Sim.run ~n ~t ~corrupt ~adversary (fun ctx ->
      Ba.Gradecast.run_bytes ctx ~sender (if ctx.Ctx.me = sender then v else ""))

let test_honest_sender_grade2 () =
  let n = 7 and t = 2 in
  let corrupt = Array.init n (fun i -> i >= n - t) in
  List.iter
    (fun adversary ->
      let outcome = run_gc ~n ~t ~corrupt ~adversary ~sender:0 "the-value" in
      List.iter
        (fun g ->
          Alcotest.check Alcotest.int
            (Printf.sprintf "grade 2 vs %s" adversary.Adversary.name)
            2 g.Ba.Gradecast.grade;
          Alcotest.check (Alcotest.option Alcotest.string) "value" (Some "the-value")
            g.Ba.Gradecast.value)
        (Sim.honest_outputs ~corrupt outcome))
    adversaries

let test_graded_agreement_byzantine_sender () =
  (* Byzantine sender: if any honest party grades 2, all honest parties hold
     that value with grade >= 1; any two honest grade>=1 values coincide. *)
  let n = 7 and t = 2 in
  let corrupt = Array.init n (fun i -> i = 3 || i = 5) in
  List.iter
    (fun adversary ->
      let outcome = run_gc ~n ~t ~corrupt ~adversary ~sender:3 "two-faced" in
      let graded = Sim.honest_outputs ~corrupt outcome in
      let with_value =
        List.filter_map
          (fun g -> if g.Ba.Gradecast.grade >= 1 then g.Ba.Gradecast.value else None)
          graded
      in
      (match with_value with
      | v :: rest ->
          Alcotest.check Alcotest.bool
            (Printf.sprintf "graded agreement vs %s" adversary.Adversary.name)
            true
            (List.for_all (String.equal v) rest)
      | [] -> ());
      if List.exists (fun g -> g.Ba.Gradecast.grade = 2) graded then
        Alcotest.check Alcotest.int
          (Printf.sprintf "grade2 implies all >= 1 vs %s" adversary.Adversary.name)
          (List.length graded) (List.length with_value))
    adversaries

let test_silent_sender_grade0 () =
  let n = 4 and t = 1 in
  let corrupt = [| true; false; false; false |] in
  let outcome = run_gc ~n ~t ~corrupt ~adversary:Adversary.silent ~sender:0 "never" in
  List.iter
    (fun g ->
      Alcotest.check Alcotest.int "grade 0" 0 g.Ba.Gradecast.grade;
      Alcotest.check (Alcotest.option Alcotest.string) "no value" None g.Ba.Gradecast.value)
    (Sim.honest_outputs ~corrupt outcome)

let test_rounds () =
  let n = 4 and t = 1 in
  let corrupt = Array.make n false in
  let outcome = run_gc ~n ~t ~corrupt ~adversary:Adversary.passive ~sender:2 "x" in
  Alcotest.check Alcotest.int "three rounds" 3 outcome.Sim.metrics.Metrics.rounds

let test_gradecast_aa () =
  let n = 7 and t = 2 and bits = 16 in
  let corrupt = Array.init n (fun i -> i >= n - t) in
  let inputs =
    Array.init n (fun i ->
        if corrupt.(i) then Bitstring.ones bits
        else Bitstring.of_int_fixed ~bits (30000 + (i * 100)))
  in
  List.iter
    (fun adversary ->
      let outcome =
        Sim.run ~n ~t ~corrupt ~adversary (fun ctx ->
            Ba.Gradecast.approx_agree ctx ~bits ~rounds:8 inputs.(ctx.Ctx.me))
      in
      let outs = List.map Bitstring.to_int (Sim.honest_outputs ~corrupt outcome) in
      let lo = List.fold_left min (List.hd outs) outs in
      let hi = List.fold_left max (List.hd outs) outs in
      Alcotest.check Alcotest.bool
        (Printf.sprintf "validity vs %s" adversary.Adversary.name)
        true
        (lo >= 30000 && hi <= 30000 + ((n - t - 1) * 100));
      Alcotest.check Alcotest.bool
        (Printf.sprintf "convergence vs %s" adversary.Adversary.name)
        true
        (hi - lo <= max 2 (((n - t - 1) * 100) / 128)))
    [ Adversary.passive; Adversary.silent; Adversary.equivocate ~seed:9;
      Adversary.garbage ~seed:10 ]

let suite =
  [
    Alcotest.test_case "honest sender grade 2" `Quick test_honest_sender_grade2;
    Alcotest.test_case "graded agreement" `Quick test_graded_agreement_byzantine_sender;
    Alcotest.test_case "silent sender grade 0" `Quick test_silent_sender_grade0;
    Alcotest.test_case "round count" `Quick test_rounds;
    Alcotest.test_case "gradecast-based AA" `Quick test_gradecast_aa;
  ]
