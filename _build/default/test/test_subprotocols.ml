(* Direct unit tests of the Section 3 subprotocols under their lemma
   preconditions, plus regime-boundary tests for Π_ℕ and determinism of the
   whole stack. *)

open Net

let bits_t = Alcotest.testable Bitstring.pp Bitstring.equal
let bs = Bitstring.of_string

let run_all_honest ~n ~t protocol =
  let corrupt = Array.make n false in
  let outcome = Sim.run ~n ~t ~corrupt ~adversary:Adversary.passive protocol in
  Sim.honest_outputs ~corrupt outcome

(* ---------------- ADDLASTBIT ---------------- *)

let test_add_last_bit () =
  let n = 4 and t = 1 and bits = 6 in
  let prefix_star = bs "101" in
  (* Honest values all extend 101; bit 4 split 0/1. *)
  let values = [| bs "101001"; bs "101110"; bs "101011"; bs "101111" |] in
  let results =
    run_all_honest ~n ~t (fun ctx ->
        Convex.Add_last_bit.run ctx ~bits ~prefix_star values.(ctx.Ctx.me))
  in
  let first = List.hd results in
  Alcotest.check Alcotest.int "one bit longer" 4 (Bitstring.length first);
  Alcotest.check Alcotest.bool "extends prefix" true
    (Bitstring.is_prefix ~prefix:prefix_star first);
  List.iter (fun r -> Alcotest.check bits_t "common" first r) results;
  (* Lemma 2: the new prefix prefixes some honest party's value. *)
  Alcotest.check Alcotest.bool "prefixes an honest value" true
    (Array.exists (fun v -> Bitstring.is_prefix ~prefix:first v) values)

let test_add_last_bit_unanimous_next_bit () =
  let n = 4 and t = 1 and bits = 4 in
  let prefix_star = bs "01" in
  let values = Array.make n (bs "0110") in
  let results =
    run_all_honest ~n ~t (fun ctx ->
        Convex.Add_last_bit.run ctx ~bits ~prefix_star values.(ctx.Ctx.me))
  in
  List.iter (fun r -> Alcotest.check bits_t "validity picks the 1" (bs "011") r) results

let test_add_last_bit_preconditions () =
  let ctx = Ctx.make ~n:4 ~t:1 ~me:0 in
  Alcotest.check_raises "full prefix rejected"
    (Invalid_argument "Add_last_bit.run: prefix already full") (fun () ->
      ignore (Convex.Add_last_bit.run ctx ~bits:3 ~prefix_star:(bs "101") (bs "101")));
  Alcotest.check_raises "wrong value length"
    (Invalid_argument "Add_last_bit.run: value length") (fun () ->
      ignore (Convex.Add_last_bit.run ctx ~bits:4 ~prefix_star:(bs "10") (bs "10")))

(* ---------------- GETOUTPUT ---------------- *)

let get_output_case ~v_bots ~prefix_star ~bits =
  let n = Array.length v_bots in
  run_all_honest ~n ~t:1 (fun ctx ->
      Convex.Get_output.run ctx ~bits ~prefix_star v_bots.(ctx.Ctx.me))

let test_get_output_low_side () =
  (* All differing v_bot are below MIN(prefix): choice must be MIN. *)
  let bits = 6 and prefix_star = bs "11" in
  let low = Bitstring.min_fill 6 (bs "11") in
  let v_bots = [| bs "000001"; bs "001000"; bs "110000"; bs "110101" |] in
  let results = get_output_case ~v_bots ~prefix_star ~bits in
  List.iter (fun r -> Alcotest.check bits_t "MIN chosen" low r) results

let test_get_output_high_side () =
  let bits = 6 and prefix_star = bs "01" in
  let high = Bitstring.max_fill 6 (bs "01") in
  let v_bots = [| bs "100001"; bs "111000"; bs "010000"; bs "010101" |] in
  let results = get_output_case ~v_bots ~prefix_star ~bits in
  List.iter (fun r -> Alcotest.check bits_t "MAX chosen" high r) results

let test_get_output_mixed () =
  (* Differing v_bot on both sides: either completion is acceptable, but it
     must be common. *)
  let bits = 6 and prefix_star = bs "10" in
  let v_bots = [| bs "000001"; bs "110000"; bs "001000"; bs "111000" |] in
  let results = get_output_case ~v_bots ~prefix_star ~bits in
  let first = List.hd results in
  Alcotest.check Alcotest.bool "min or max" true
    (Bitstring.equal first (Bitstring.min_fill bits prefix_star)
    || Bitstring.equal first (Bitstring.max_fill bits prefix_star));
  List.iter (fun r -> Alcotest.check bits_t "common" first r) results

let test_get_output_empty_prefix () =
  (* An empty agreed prefix is legal: the output is all-zeros or all-ones. *)
  let bits = 4 and prefix_star = Bitstring.empty in
  let v_bots = [| bs "0001"; bs "1110"; bs "0100"; bs "1011" |] in
  let results = get_output_case ~v_bots ~prefix_star ~bits in
  let first = List.hd results in
  Alcotest.check Alcotest.bool "all-0 or all-1" true
    (Bitstring.equal first (Bitstring.zero 4) || Bitstring.equal first (Bitstring.ones 4))

(* ---------------- Π_ℕ regime boundaries ---------------- *)

let run_nat_all_honest ~n ~t inputs =
  run_all_honest ~n ~t (fun ctx -> Convex.agree_nat ctx inputs.(ctx.Ctx.me))

let check_nat name inputs outputs =
  let lo = Array.fold_left Bigint.min inputs.(0) inputs in
  let hi = Array.fold_left Bigint.max inputs.(0) inputs in
  let first = List.hd outputs in
  List.iter
    (fun o ->
      Alcotest.check Alcotest.bool (name ^ " agreement") true (Bigint.equal first o);
      Alcotest.check Alcotest.bool (name ^ " validity") true
        (Bigint.compare lo o <= 0 && Bigint.compare o hi <= 0))
    outputs

let test_ca_nat_length_boundaries () =
  let n = 4 and t = 1 in
  let n2 = n * n in
  (* Exactly n² bits (short regime boundary), n²+1 bits (long regime),
     powers of two around the probe ladder, zeros. *)
  List.iter
    (fun (name, mk) ->
      let inputs = Array.init n mk in
      check_nat name inputs (run_nat_all_honest ~n ~t inputs))
    [
      ("exactly n^2 bits", fun i -> Bigint.add (Bigint.pow2 (n2 - 1)) (Bigint.of_int i));
      ("n^2+1 bits", fun i -> Bigint.add (Bigint.pow2 n2) (Bigint.of_int i));
      ("one bit", fun i -> Bigint.of_int (i mod 2));
      ("exact power of two", fun _ -> Bigint.pow2 8);
      ("around 2^i ladder", fun i -> Bigint.of_int (255 + i));
      ("mixed tiny/huge", fun i -> if i = 0 then Bigint.zero else Bigint.pow2 (100 * i));
    ]

let test_ca_nat_all_max_value () =
  let n = 4 and t = 1 in
  let v = Bigint.pred (Bigint.pow2 16) in
  let inputs = Array.make n v in
  List.iter
    (fun o -> Alcotest.check (Alcotest.testable Bigint.pp Bigint.equal) "kept" v o)
    (run_nat_all_honest ~n ~t inputs)

(* ---------------- determinism ---------------- *)

let test_stack_determinism () =
  let run () =
    let n = 7 and t = 2 in
    let corrupt = Workload.spread_corrupt ~n ~t in
    let inputs =
      Workload.apply_input_attack Workload.Split_extremes ~corrupt
        (Workload.sensor_readings (Prng.create 11) ~n ~base:(-1004) ~jitter:2)
    in
    let outcome =
      Sim.run ~n ~t ~corrupt ~adversary:(Adversary.equivocate ~seed:13) (fun ctx ->
          Convex.agree_int ctx inputs.(ctx.Ctx.me))
    in
    ( Sim.honest_outputs ~corrupt outcome,
      outcome.Sim.metrics.Metrics.honest_bits,
      outcome.Sim.metrics.Metrics.rounds )
  in
  let o1, b1, r1 = run () in
  let o2, b2, r2 = run () in
  Alcotest.check (Alcotest.list (Alcotest.testable Bigint.pp Bigint.equal))
    "same outputs" o1 o2;
  Alcotest.check Alcotest.int "same bits" b1 b2;
  Alcotest.check Alcotest.int "same rounds" r1 r2

let suite =
  [
    Alcotest.test_case "AddLastBit split" `Quick test_add_last_bit;
    Alcotest.test_case "AddLastBit unanimous" `Quick test_add_last_bit_unanimous_next_bit;
    Alcotest.test_case "AddLastBit preconditions" `Quick test_add_last_bit_preconditions;
    Alcotest.test_case "GetOutput low side" `Quick test_get_output_low_side;
    Alcotest.test_case "GetOutput high side" `Quick test_get_output_high_side;
    Alcotest.test_case "GetOutput mixed" `Quick test_get_output_mixed;
    Alcotest.test_case "GetOutput empty prefix" `Quick test_get_output_empty_prefix;
    Alcotest.test_case "Pi_N length boundaries" `Quick test_ca_nat_length_boundaries;
    Alcotest.test_case "Pi_N unanimous max" `Quick test_ca_nat_all_max_value;
    Alcotest.test_case "stack determinism" `Quick test_stack_determinism;
  ]
