(* Median-validity BA [47]: agreement plus the t-median-validity bound,
   which is strictly stronger than convex validity. *)

open Net

let honest_of ~corrupt arr = List.filteri (fun i _ -> not corrupt.(i)) (Array.to_list arr)

let run_median ~n ~t ~bits ~corrupt ~adversary inputs =
  Sim.run ~n ~t ~corrupt ~adversary (fun ctx ->
      Convex.Median_ba.run ctx ~bits inputs.(ctx.Ctx.me))

let check name ~t ~corrupt ~inputs outputs =
  (match outputs with
  | o :: rest ->
      Alcotest.check Alcotest.bool (name ^ ": agreement") true
        (List.for_all (Bitstring.equal o) rest)
  | [] -> Alcotest.fail "no outputs");
  let within = Convex.Median_ba.validity_bounds (honest_of ~corrupt inputs) in
  List.iter
    (fun o ->
      Alcotest.check Alcotest.bool (name ^ ": t-median validity") true (within ~t o))
    outputs

let adversaries =
  [
    Adversary.passive;
    Adversary.silent;
    Adversary.garbage ~seed:41;
    Adversary.equivocate ~seed:42;
    Attacks.window_fabricator;
  ]

let test_median_validity () =
  let n = 10 and t = 3 and bits = 16 in
  let corrupt = Workload.spread_corrupt ~n ~t in
  let configs =
    [
      ("spread", Array.init n (fun i -> Bitstring.of_int_fixed ~bits (i * 1000)));
      ("identical", Array.make n (Bitstring.of_int_fixed ~bits 777));
      ( "byz extremes",
        Array.init n (fun i ->
            if corrupt.(i) then Bitstring.ones bits
            else Bitstring.of_int_fixed ~bits (5000 + i)) );
    ]
  in
  List.iter
    (fun (cname, inputs) ->
      List.iter
        (fun adversary ->
          let outcome = run_median ~n ~t ~bits ~corrupt ~adversary inputs in
          check
            (Printf.sprintf "Median[%s] vs %s" cname adversary.Adversary.name)
            ~t ~corrupt ~inputs
            (Sim.honest_outputs ~corrupt outcome))
        adversaries)
    configs

let test_median_stricter_than_range () =
  (* With a widely spread honest population, median validity pins the output
     near the middle — the extremes of the honest range are NOT acceptable
     outputs, unlike plain convex validity. *)
  let n = 10 and t = 3 and bits = 20 in
  let corrupt = Workload.spread_corrupt ~n ~t in
  let inputs = Array.init n (fun i -> Bitstring.of_int_fixed ~bits (i * 100_000)) in
  let outcome = run_median ~n ~t ~bits ~corrupt ~adversary:Adversary.passive inputs in
  let honest = honest_of ~corrupt inputs in
  let sorted = Array.of_list (List.sort Bitstring.compare honest) in
  let m = (Array.length sorted - 1) / 2 in
  List.iter
    (fun o ->
      let v = Bitstring.to_int o in
      Alcotest.check Alcotest.bool "not the honest minimum" true
        (v > Bitstring.to_int sorted.(0) || m - t <= 0);
      Alcotest.check Alcotest.bool "within the +-t rank window" true
        (v >= Bitstring.to_int sorted.(max 0 (m - t))
        && v <= Bitstring.to_int sorted.(min (Array.length sorted - 1) (m + t))))
    (Sim.honest_outputs ~corrupt outcome)

let test_rounds_match_high_cost () =
  let n = 7 and t = 2 and bits = 8 in
  let corrupt = Array.make n false in
  let inputs = Array.init n (fun i -> Bitstring.of_int_fixed ~bits i) in
  let outcome = run_median ~n ~t ~bits ~corrupt ~adversary:Adversary.passive inputs in
  Alcotest.check Alcotest.int "2 + 4(t+1) rounds" (2 + (4 * (t + 1)))
    outcome.Sim.metrics.Metrics.rounds

let prop_median_random =
  QCheck.Test.make ~name:"median validity (random runs)" ~count:25
    QCheck.(pair (int_bound 100000) (int_bound 4))
    (fun (seed, adv) ->
      let n = 7 and t = 2 and bits = 12 in
      let rng = Prng.create seed in
      let corrupt = Array.make n false in
      let placed = ref 0 in
      while !placed < t do
        let i = Prng.int rng n in
        if not corrupt.(i) then begin
          corrupt.(i) <- true;
          incr placed
        end
      done;
      let inputs = Array.init n (fun _ -> Bitstring.of_int_fixed ~bits (Prng.int rng 4096)) in
      let adversary = List.nth adversaries (adv mod List.length adversaries) in
      let outcome = run_median ~n ~t ~bits ~corrupt ~adversary inputs in
      let outputs = Sim.honest_outputs ~corrupt outcome in
      let within = Convex.Median_ba.validity_bounds (honest_of ~corrupt inputs) in
      (match outputs with
      | o :: rest -> List.for_all (Bitstring.equal o) rest
      | [] -> false)
      && List.for_all (fun o -> within ~t o) outputs)

let suite =
  [
    Alcotest.test_case "median validity" `Quick test_median_validity;
    Alcotest.test_case "stricter than range validity" `Quick test_median_stricter_than_range;
    Alcotest.test_case "round count" `Quick test_rounds_match_high_cost;
    QCheck_alcotest.to_alcotest prop_median_random;
  ]
