(* Proto.parallel: multiplexing semantics, round economics, adversary
   robustness, and the parallel Broadcast-CA built on it. *)

open Net

let ( let* ) = Proto.( let* )
let bits_t = Alcotest.testable Bitstring.pp Bitstring.equal

(* A branch that broadcasts a tag for [rounds] rounds, then returns the tags
   collected in its final round. *)
let chatter ~tag ~rounds (_ctx : Ctx.t) =
  let rec go r last =
    if r = rounds then Proto.return last
    else
      let* inbox = Proto.broadcast tag in
      let seen =
        Array.to_list inbox |> List.filter_map Fun.id |> List.sort_uniq compare
      in
      go (r + 1) seen
  in
  go 0 []

let test_branches_isolated () =
  (* Two concurrent chatters: branch A must only ever see A-tags, branch B
     only B-tags — the multiplexer must not leak across slots. *)
  let n = 4 in
  let outcome =
    Sim.run ~n ~t:1 ~corrupt:(Array.make n false) ~adversary:Adversary.passive
      (fun ctx ->
        Proto.both (chatter ~tag:"A" ~rounds:3 ctx) (chatter ~tag:"B" ~rounds:3 ctx))
  in
  Array.iter
    (function
      | Some (a, b) ->
          Alcotest.check (Alcotest.list Alcotest.string) "A isolated" [ "A" ] a;
          Alcotest.check (Alcotest.list Alcotest.string) "B isolated" [ "B" ] b
      | None -> Alcotest.fail "missing output")
    outcome.Sim.outputs

let test_rounds_are_max_not_sum () =
  let n = 3 in
  let branch rounds ctx = chatter ~tag:(string_of_int rounds) ~rounds ctx in
  let outcome =
    Sim.run ~n ~t:0 ~corrupt:(Array.make n false) ~adversary:Adversary.passive
      (fun ctx -> Proto.parallel [ branch 2 ctx; branch 7 ctx; branch 4 ctx ])
  in
  Alcotest.check Alcotest.int "max rounds" 7 outcome.Sim.metrics.Metrics.rounds

let test_finished_branch_goes_quiet () =
  (* Once the short branch finishes, its slot must carry nothing: total
     traffic equals each branch's own traffic plus multiplex framing. *)
  let n = 2 in
  let outcome =
    Sim.run ~n ~t:0 ~corrupt:(Array.make n false) ~adversary:Adversary.passive
      (fun ctx -> Proto.both (chatter ~tag:"x" ~rounds:1 ctx) (chatter ~tag:"y" ~rounds:5 ctx))
  in
  (* 5 rounds, 2 parties x 1 recipient. Round 1 carries both slots, rounds
     2-5 only the y slot. Framing: list header + option tags + length. *)
  Alcotest.check Alcotest.int "rounds" 5 outcome.Sim.metrics.Metrics.rounds;
  Alcotest.check Alcotest.bool "quiet slot saves bytes" true
    (outcome.Sim.metrics.Metrics.honest_bits < 5 * 2 * 8 * 10)

let test_parallel_under_adversaries () =
  (* Mux frames are just bytes to the adversary; garbage must degrade to
     all-None slices, never crash, and phase-king inside still agrees. *)
  let n = 7 and t = 2 in
  let corrupt = Sim.corrupt_first ~n t in
  let inputs = Array.init n (fun i -> Printf.sprintf "v%d" (i mod 2)) in
  List.iter
    (fun adversary ->
      let outcome =
        Sim.run ~n ~t ~corrupt ~adversary (fun ctx ->
            Proto.parallel
              [
                Ba.Phase_king.run_bytes ctx inputs.(ctx.Ctx.me);
                Ba.Phase_king.run_bit ctx (ctx.Ctx.me mod 2 = 0)
                |> Fun.flip Proto.map (fun b -> if b then "1" else "0");
              ])
      in
      let outputs = Sim.honest_outputs ~corrupt outcome in
      match outputs with
      | first :: rest ->
          Alcotest.check Alcotest.bool
            (Printf.sprintf "both agreements hold vs %s" adversary.Adversary.name)
            true
            (List.for_all (( = ) first) rest)
      | [] -> Alcotest.fail "no outputs")
    (Adversary.all_generic ~seed:21)

let test_parallel_broadcast_ca () =
  let n = 7 and t = 2 and bits = 16 in
  let corrupt = Workload.spread_corrupt ~n ~t in
  let inputs =
    Array.init n (fun i ->
        if corrupt.(i) then Bitstring.ones bits
        else Bitstring.of_int_fixed ~bits (2000 + (i * 5)))
  in
  let run proto =
    let outcome =
      Sim.run ~n ~t ~corrupt ~adversary:(Adversary.equivocate ~seed:3) (fun ctx ->
          proto ctx ~bits inputs.(ctx.Ctx.me))
    in
    (Sim.honest_outputs ~corrupt outcome, outcome.Sim.metrics.Metrics.rounds)
  in
  let seq_outputs, seq_rounds = run Baseline.Broadcast_ca.run in
  let par_outputs, par_rounds = run Baseline.Broadcast_ca.run_parallel in
  (* Same deterministic result, far fewer rounds. *)
  Alcotest.check (Alcotest.list bits_t) "identical outputs" seq_outputs par_outputs;
  Alcotest.check Alcotest.bool
    (Printf.sprintf "rounds collapse (%d -> %d)" seq_rounds par_rounds)
    true
    (par_rounds * (n - 1) <= seq_rounds);
  (* And CA still holds. *)
  let sorted =
    List.sort Bitstring.compare
      (List.filteri (fun i _ -> not corrupt.(i)) (Array.to_list inputs))
  in
  let lo = List.hd sorted and hi = List.nth sorted (List.length sorted - 1) in
  List.iter
    (fun o ->
      Alcotest.check Alcotest.bool "validity" true
        (Bitstring.compare lo o <= 0 && Bitstring.compare o hi <= 0))
    par_outputs

let prop_parallel_semantics =
  (* Random branch structures: rounds must be the max of the branches', and
     each branch must see exactly its own tag. *)
  QCheck.Test.make ~name:"parallel semantics (random branches)" ~count:40
    QCheck.(pair (int_bound 1000) (int_bound 4))
    (fun (seed, extra) ->
      let rng = Prng.create seed in
      let n = 2 + Prng.int rng 4 in
      let branches = 1 + extra in
      let depths = List.init branches (fun _ -> 1 + Prng.int rng 6) in
      let outcome =
        Sim.run ~n ~t:0 ~corrupt:(Array.make n false) ~adversary:Adversary.passive
          (fun ctx ->
            Proto.parallel
              (List.mapi
                 (fun b depth -> chatter ~tag:(string_of_int b) ~rounds:depth ctx)
                 depths))
      in
      let max_depth = List.fold_left max 0 depths in
      outcome.Sim.metrics.Metrics.rounds = max_depth
      && Array.for_all
           (function
             | Some results ->
                 List.for_all2
                   (fun b seen -> seen = [ string_of_int b ])
                   (List.init branches Fun.id)
                   results
             | None -> false)
           outcome.Sim.outputs)

let test_empty_parallel_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Proto.parallel: no branches")
    (fun () -> ignore (Proto.parallel []))

let suite =
  [
    Alcotest.test_case "branch isolation" `Quick test_branches_isolated;
    Alcotest.test_case "rounds = max" `Quick test_rounds_are_max_not_sum;
    Alcotest.test_case "finished branch quiet" `Quick test_finished_branch_goes_quiet;
    Alcotest.test_case "adversary robustness" `Quick test_parallel_under_adversaries;
    Alcotest.test_case "parallel Broadcast-CA" `Quick test_parallel_broadcast_ca;
    Alcotest.test_case "empty rejected" `Quick test_empty_parallel_rejected;
    QCheck_alcotest.to_alcotest prop_parallel_semantics;
  ]
