(* Protocol-aware attacks: each targets a specific proof obligation; with
   t < n/3 corruptions none may break the corresponding property. *)

open Net

let payload = Sha256.digest "fabricated-by-the-adversary"
let all_attacks = Attacks.all ~seed:31337 ~payload

let test_ba_plus_vs_vote_stuffer () =
  (* Intrusion Tolerance under direct vote stuffing. *)
  let n = 7 and t = 2 in
  let corrupt = Sim.corrupt_first ~n t in
  let inputs = Array.init n (fun i -> Sha256.digest (Printf.sprintf "input-%d" i)) in
  let outcome =
    Sim.run ~n ~t ~corrupt ~adversary:(Attacks.vote_stuffer ~payload) (fun ctx ->
        Baplus.Ba_plus.run ctx inputs.(ctx.Ctx.me))
  in
  List.iter
    (fun out ->
      match out with
      | None -> ()
      | Some v ->
          Alcotest.check Alcotest.bool "never the fabricated value" false
            (String.equal v payload);
          Alcotest.check Alcotest.bool "some honest input" true
            (Array.exists (String.equal v) inputs))
    (Sim.honest_outputs ~corrupt outcome)

let test_ext_vs_forgery () =
  (* Lemma 6: forged or relabeled tuples must be discarded; the honest value
     still reconstructs. *)
  let n = 7 and t = 2 in
  let corrupt = Array.init n (fun i -> i = 2 || i = 5) in
  let value = String.init 3000 (fun i -> Char.chr (i * 13 land 0xff)) in
  let inputs = Array.make n value in
  List.iter
    (fun adversary ->
      let outcome =
        Sim.run ~n ~t ~corrupt ~adversary (fun ctx ->
            Baplus.Ext_ba_plus.run ctx inputs.(ctx.Ctx.me))
      in
      List.iter
        (fun out ->
          Alcotest.check
            (Alcotest.option Alcotest.string)
            (Printf.sprintf "reconstruction survives %s" adversary.Adversary.name)
            (Some value) out)
        (Sim.honest_outputs ~corrupt outcome))
    [ Attacks.tuple_forger ~seed:7; Attacks.index_confuser ]

let test_find_prefix_vs_fabricated_windows () =
  (* Property (C): the agreed prefix always prefixes a valid (honest-range)
     value even when byzantine parties push well-formed alien windows. *)
  let n = 7 and t = 2 and bits = 24 in
  let corrupt = Array.init n (fun i -> i = 0 || i = 6) in
  let inputs = Array.init n (fun i -> Bitstring.of_int_fixed ~bits (4_000_000 + (i * 17))) in
  List.iter
    (fun adversary ->
      let outcome =
        Sim.run ~n ~t ~corrupt ~adversary (fun ctx ->
            Convex.Find_prefix.run ctx ~bits inputs.(ctx.Ctx.me))
      in
      let results = Sim.honest_outputs ~corrupt outcome in
      let honest_inputs =
        List.filteri (fun i _ -> not corrupt.(i)) (Array.to_list inputs)
      in
      let sorted = List.sort Bitstring.compare honest_inputs in
      let lo = List.hd sorted and hi = List.nth sorted (List.length sorted - 1) in
      List.iter
        (fun r ->
          Alcotest.check Alcotest.bool
            (Printf.sprintf "v valid vs %s" adversary.Adversary.name)
            true
            (Bitstring.compare lo r.Convex.Find_prefix.v <= 0
            && Bitstring.compare r.Convex.Find_prefix.v hi <= 0);
          Alcotest.check Alcotest.bool
            (Printf.sprintf "prefix of v vs %s" adversary.Adversary.name)
            true
            (Bitstring.is_prefix ~prefix:r.Convex.Find_prefix.prefix_star
               r.Convex.Find_prefix.v))
        results)
    [ Attacks.window_fabricator; Attacks.prefix_saboteur ]

let test_pi_z_vs_all_attacks () =
  let n = 10 and t = 3 in
  let corrupt = Workload.spread_corrupt ~n ~t in
  List.iter
    (fun adversary ->
      List.iter
        (fun (wname, inputs) ->
          let report =
            Workload.run_int ~n ~t ~corrupt ~adversary ~inputs
              Workload.pi_z.Workload.run
          in
          Alcotest.check Alcotest.bool
            (Printf.sprintf "Pi_Z agreement: %s vs %s" wname adversary.Adversary.name)
            true report.Workload.agreement;
          Alcotest.check Alcotest.bool
            (Printf.sprintf "Pi_Z validity: %s vs %s" wname adversary.Adversary.name)
            true report.Workload.convex_validity)
        [
          ( "sensors",
            Workload.apply_input_attack Workload.Outlier_high ~corrupt
              (Workload.sensor_readings (Prng.create 5) ~n ~base:(-1004) ~jitter:2) );
          ( "long values",
            Workload.clustered_bits (Prng.create 6) ~n ~bits:600
              ~shared_prefix_bits:300 );
        ])
    all_attacks

let test_high_cost_vs_attacks () =
  let n = 7 and t = 2 and bits = 16 in
  let corrupt = Sim.corrupt_first ~n t in
  let inputs = Array.init n (fun i -> Bitstring.of_int_fixed ~bits (30000 + (i * 7))) in
  List.iter
    (fun adversary ->
      let outcome =
        Sim.run ~n ~t ~corrupt ~adversary (fun ctx ->
            Convex.agree_high_cost ctx ~bits inputs.(ctx.Ctx.me))
      in
      let outputs = Sim.honest_outputs ~corrupt outcome in
      let honest_inputs =
        List.filteri (fun i _ -> not corrupt.(i)) (Array.to_list inputs)
      in
      let sorted = List.sort Bitstring.compare honest_inputs in
      let lo = List.hd sorted and hi = List.nth sorted (List.length sorted - 1) in
      (match outputs with
      | o :: rest ->
          Alcotest.check Alcotest.bool
            (Printf.sprintf "agreement vs %s" adversary.Adversary.name)
            true
            (List.for_all (Bitstring.equal o) rest)
      | [] -> Alcotest.fail "no outputs");
      List.iter
        (fun o ->
          Alcotest.check Alcotest.bool
            (Printf.sprintf "validity vs %s" adversary.Adversary.name)
            true
            (Bitstring.compare lo o <= 0 && Bitstring.compare o hi <= 0))
        outputs)
    all_attacks

let test_saboteur_cost_bounded () =
  (* The paper's Section 1 point: in prior protocols the communication is
     adversarially chosen. Here the ⊥ path skips the distribution step, so a
     saboteur can only shrink the value-dependent traffic, and the κ-term is
     adversary-independent. Assert the saboteur cannot inflate honest bits by
     more than 2x over passive. *)
  let n = 7 and t = 2 in
  let corrupt = Sim.corrupt_first ~n t in
  let inputs = Workload.clustered_bits (Prng.create 9) ~n ~bits:2048 ~shared_prefix_bits:1024 in
  let bits_with adversary =
    (Workload.run_int ~n ~t ~corrupt ~adversary ~inputs Workload.pi_z.Workload.run)
      .Workload.honest_bits
  in
  let passive = bits_with Adversary.passive in
  let sabotaged = bits_with Attacks.prefix_saboteur in
  Alcotest.check Alcotest.bool "saboteur cannot inflate honest traffic" true
    (float_of_int sabotaged <= 2.0 *. float_of_int passive)

let suite =
  [
    Alcotest.test_case "BA+ vs vote stuffing" `Quick test_ba_plus_vs_vote_stuffer;
    Alcotest.test_case "lBA+ vs tuple forgery" `Quick test_ext_vs_forgery;
    Alcotest.test_case "FindPrefix vs fabricated windows" `Quick
      test_find_prefix_vs_fabricated_windows;
    Alcotest.test_case "Pi_Z vs all attacks" `Slow test_pi_z_vs_all_attacks;
    Alcotest.test_case "HighCostCA vs all attacks" `Quick test_high_cost_vs_attacks;
    Alcotest.test_case "saboteur cost bounded" `Quick test_saboteur_cost_bounded;
  ]
