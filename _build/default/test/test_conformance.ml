(* Conformance grid: every CA protocol × every workload family × every
   adversary (generic and protocol-aware) × every input attack must satisfy
   Definition 1 — Termination, Agreement, Convex Validity. One systematic
   sweep instead of per-protocol copies; failures name the exact cell. *)

open Net

let n = 7
let t = 2
let bits = 32

let protocols : Workload.protocol list =
  [
    Workload.pi_z;
    Workload.high_cost_ca ~bits;
    Workload.broadcast_ca ~bits;
  ]

let workloads =
  [
    ( "sensors",
      fun seed ->
        Workload.sensor_readings (Prng.create seed) ~n ~base:(-1004) ~jitter:2 );
    ( "prices",
      fun seed ->
        Workload.price_feed (Prng.create seed) ~n ~base:"2931" ~decimals:4
          ~spread_ppm:300 );
    ( "clustered",
      fun seed ->
        Workload.clustered_bits (Prng.create seed) ~n ~bits:28 ~shared_prefix_bits:14 );
    ("identical", fun _ -> Array.make n (Bigint.of_int 123456));
  ]

let adversaries =
  Adversary.all_generic ~seed:5
  @ Attacks.all ~seed:6 ~payload:(Sha256.digest "grid")

let input_attacks = [ Workload.Honest_inputs; Workload.Outlier_high ]

(* The fixed-width comparators clamp magnitudes, so negative workloads only
   make sense for Pi_Z; restrict the others to non-negative families. *)
let compatible (p : Workload.protocol) wname =
  String.equal p.Workload.proto_name Workload.pi_z.Workload.proto_name
  || not (String.equal wname "sensors")

let test_grid () =
  let cells = ref 0 in
  List.iter
    (fun (p : Workload.protocol) ->
      List.iter
        (fun (wname, gen) ->
          if compatible p wname then
            List.iteri
              (fun i adversary ->
                List.iter
                  (fun attack ->
                    incr cells;
                    let corrupt = Workload.spread_corrupt ~n ~t in
                    let inputs =
                      Workload.apply_input_attack attack ~corrupt (gen (100 + i))
                    in
                    let cell =
                      Printf.sprintf "%s / %s / %s / %s" p.Workload.proto_name wname
                        adversary.Adversary.name
                        (Workload.input_attack_name attack)
                    in
                    match
                      Workload.run_int ~n ~t ~corrupt ~adversary ~inputs
                        p.Workload.run
                    with
                    | report ->
                        Alcotest.check Alcotest.bool (cell ^ ": agreement") true
                          report.Workload.agreement;
                        Alcotest.check Alcotest.bool (cell ^ ": convex validity") true
                          report.Workload.convex_validity
                    | exception e ->
                        Alcotest.failf "%s: raised %s" cell (Printexc.to_string e))
                  input_attacks)
              adversaries)
        workloads)
    protocols;
  (* The grid should be substantial — guard against silent shrinkage. *)
  Alcotest.check Alcotest.bool "grid size" true (!cells >= 300)

let suite = [ Alcotest.test_case "Definition 1 grid" `Slow test_grid ]
