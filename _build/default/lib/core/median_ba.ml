(** Byzantine Agreement with Median Validity (Stolz–Wattenhofer [47]) — the
    protocol HIGHCOSTCA was adjusted from (Appendix A.4: "In the protocol of
    [47], this is an interval containing values close to the honest median").

    Identical king-based search, but the trusted interval is a ±t rank window
    around the median of the values received, so the common output is not
    merely {e somewhere} in the honest range but close to the honest median:

    {b t-Median Validity} — the output lies within [h_(m−t), h_(m+t)], where
    h_1 ≤ ... ≤ h_(n−t) are the honest inputs sorted and m = ⌈(n−t)/2⌉. (A
    byzantine value may be output, but only if its rank sits within t
    positions of the honest median — unavoidable per [47].)

    Included both as the faithful rendering of the cited construction and
    because median validity is what several of the intro's applications
    (clock networks [14], interval validity [36]) actually want.

    Same complexity as HIGHCOSTCA: O(ℓ·n³) bits, 2 + 4(t+1) rounds. *)

open Net

(* Rank window around the honest median. Among [count] received values at
   most [k] are byzantine, so (1-indexed) a_i >= h_(i-k) and a_i <= h_i for
   the sorted honest values h. With m = ceil((count-k)/2) the honest median
   rank, the window [a_(m-t+k), a_(m+t)] therefore lies inside
   [h_(m-t), h_(m+t)] — the t-median-validity bounds — and still contains
   h_m itself (k <= t on both sides), so every honest party's interval shares
   a common point and a SUGGESTION exists. *)
let median_window ~sorted ~k ~t =
  let count = Array.length sorted in
  let m = (count - k + 1) / 2 in
  let clamp i = max 0 (min (count - 1) i) in
  let lo = clamp (m - t + k - 1) and hi = clamp (m + t - 1) in
  (sorted.(min lo hi), sorted.(max lo hi))

let run (ctx : Ctx.t) ~bits v_in =
  Proto.with_label "median_ba"
    (High_cost_ca.run_custom ctx ~bits ~select_interval:median_window v_in)

(** The t-median-validity bounds for a given list of honest inputs — what a
    test or monitor should check the common output against. *)
let validity_bounds honest_inputs =
  match List.sort Bitstring.compare honest_inputs with
  | [] -> invalid_arg "Median_ba.validity_bounds: no inputs"
  | sorted_list ->
      let sorted = Array.of_list sorted_list in
      let count = Array.length sorted in
      let med = (count - 1) / 2 in
      fun ~t output ->
        Bitstring.compare sorted.(max 0 (med - t)) output <= 0
        && Bitstring.compare output sorted.(min (count - 1) (med + t)) <= 0
