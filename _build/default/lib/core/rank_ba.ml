(** Byzantine Agreement with k-Rank (interval) Validity — the generalization
    of median validity to an arbitrary order statistic, per Melnyk and
    Wattenhofer [36] ("Byzantine agreement with interval validity", cited in
    Section 1.1): the common output lies within t ranks of the k-th lowest
    honest input.

    {b Achievability caveat} (found by the randomized test-suite during
    development and consistent with [36]'s lower bounds): without identical
    views, a king-based protocol cannot pin {e extreme} ranks — with k
    byzantine values below the minimum, no received-rank window both excludes
    them and is guaranteed to intersect every other honest party's window.
    The protocol therefore clamps the target to the sound regime
    [t+1, (n−t)−t]; for ranks inside it the output lies in
    [h_(rank−t), h_(rank+t)], and for more extreme requests the guarantee
    degrades gracefully toward the median's (the exact bounds are
    {!validity_bounds}, computed with the same clamping).
    k = ⌈(n−t)/2⌉ recovers {!Median_ba} exactly.

    Rank-window soundness for a clamped rank r: with [count] received values
    of which ≤ k_byz are byzantine, (1-indexed) a_i ≥ h_(i−k_byz) and
    a_i ≤ h_i, so the window [a_(r−t+k_byz), a_(r+t)] sits inside
    [h_(r−t), h_(r+t)]; and since k_byz ≤ t ≤ r−1 it still contains h_r
    itself, so all honest trusted intervals share a common point — the
    precondition the king search needs for agreement.

    Built on {!High_cost_ca.run_custom}: O(ℓ·n³) bits, 2 + 4(t+1) rounds. *)

open Net

(* The sound target rank among [honest_count] honest inputs. *)
let effective_rank ~rank ~t ~honest_count =
  let lo = min (t + 1) honest_count in
  let hi = max lo (honest_count - t) in
  min (max rank lo) hi

let rank_window ~rank ~sorted ~k ~t =
  let count = Array.length sorted in
  let honest_count = count - k in
  let r = effective_rank ~rank ~t ~honest_count in
  let clamp i = max 0 (min (count - 1) i) in
  let lo = clamp (r - t + k - 1) and hi = clamp (r + t - 1) in
  (sorted.(min lo hi), sorted.(max lo hi))

(** [run ctx ~bits ~rank v] — [rank] is 1-indexed among the honest inputs
    and must be the same public value at every honest party. *)
let run (ctx : Ctx.t) ~bits ~rank v_in =
  if rank < 1 then invalid_arg "Rank_ba.run: rank must be >= 1";
  Proto.with_label "rank_ba"
    (High_cost_ca.run_custom ctx ~bits
       ~select_interval:(fun ~sorted ~k ~t -> rank_window ~rank ~sorted ~k ~t)
       v_in)

(** The validity bounds the common output satisfies — [h_(r−t), h_(r+t)] for
    the {e clamped} rank r (see the module caveat). For tests and monitors. *)
let validity_bounds honest_inputs ~rank ~t output =
  match List.sort Bitstring.compare honest_inputs with
  | [] -> invalid_arg "Rank_ba.validity_bounds: no inputs"
  | sorted_list ->
      let sorted = Array.of_list sorted_list in
      let honest_count = Array.length sorted in
      let r = effective_rank ~rank ~t ~honest_count in
      let clamp i = max 0 (min (honest_count - 1) i) in
      Bitstring.compare sorted.(clamp (r - t - 1)) output <= 0
      && Bitstring.compare output sorted.(clamp (r + t - 1)) <= 0
