lib/core/add_last_block.mli: Bitstring Net
