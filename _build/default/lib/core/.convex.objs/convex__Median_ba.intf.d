lib/core/median_ba.mli: Bitstring Net
