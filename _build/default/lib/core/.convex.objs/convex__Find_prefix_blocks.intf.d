lib/core/find_prefix_blocks.mli: Bitstring Net
