lib/core/fixed_length_ca_blocks.mli: Bitstring Net
