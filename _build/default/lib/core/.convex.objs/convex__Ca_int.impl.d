lib/core/ca_int.ml: Ba Bigint Bool Ca_nat Ctx Net Proto
