lib/core/find_prefix.mli: Bitstring Net
