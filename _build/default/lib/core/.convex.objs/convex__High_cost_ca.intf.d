lib/core/high_cost_ca.mli: Bitstring Net
