lib/core/high_cost_ca.ml: Array Bitstring Ctx Hashtbl List Net Option Proto Wire
