lib/core/find_prefix.ml: Baplus Bitstring Ctx Net Option Proto Wire
