lib/core/vector.ml: Array Bigint Ca_int Ctx Fun List Net Proto
