lib/core/ca_int.mli: Bigint Net
