lib/core/fixed_length_ca_blocks.ml: Add_last_block Bitstring Ctx Find_prefix_blocks Get_output Net Proto
