lib/core/ca_nat.mli: Bigint Net
