lib/core/rank_ba.ml: Array Bitstring Ctx High_cost_ca List Net Proto
