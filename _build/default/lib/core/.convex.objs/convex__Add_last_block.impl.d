lib/core/add_last_block.ml: Bitstring Ctx High_cost_ca Net Proto
