lib/core/get_output.mli: Bitstring Net
