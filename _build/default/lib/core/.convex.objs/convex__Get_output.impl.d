lib/core/get_output.ml: Array Ba Bitstring Ctx Net Option Proto
