lib/core/add_last_bit.ml: Ba Bitstring Ctx Net Proto
