lib/core/ca_nat.ml: Ba Bigint Bitstring Ctx Fixed_length_ca Fixed_length_ca_blocks High_cost_ca Net Proto
