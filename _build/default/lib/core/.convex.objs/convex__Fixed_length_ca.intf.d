lib/core/fixed_length_ca.mli: Bitstring Net
