lib/core/fixed_point.mli: Bigint Format Net
