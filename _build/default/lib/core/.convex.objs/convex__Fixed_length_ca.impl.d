lib/core/fixed_length_ca.ml: Add_last_bit Bitstring Ctx Find_prefix Get_output Net Proto
