lib/core/find_prefix_blocks.ml: Baplus Bitstring Ctx Find_prefix Net Option Proto
