lib/core/fixed_point.ml: Bigint Ca_int Ctx Format List Net Printf Proto String
