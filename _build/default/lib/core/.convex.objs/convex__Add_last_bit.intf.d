lib/core/add_last_bit.mli: Bitstring Net
