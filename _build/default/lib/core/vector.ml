(** Coordinate-wise Convex Agreement on integer vectors.

    Runs Π_ℤ once per dimension (sequentially in one protocol value). The
    guarantee is {b box validity}: every coordinate of the common output lies
    within the range of the honest inputs' values {e in that coordinate} —
    i.e. the output is inside the honest inputs' bounding box.

    Box validity is strictly weaker than the multidimensional convex-hull
    validity of Vaidya–Garg [50] / Mendes–Herlihy [37] (the hull is contained
    in the box, and a box point need not be a convex combination of honest
    inputs). The paper is explicitly uni-dimensional; full hull validity
    needs the Tverberg-point machinery of [50] and is out of scope — this
    module exists because box validity is exactly what the coordinate-wise
    trimmed aggregation rules of the distributed-learning applications
    [4, 18, 48] provide, at d × the 1-D cost.

    Communication: d × BITS(Π_ℤ); rounds: d × ROUNDS(Π_ℤ). *)

open Net

(** [agree ctx v]: all honest parties must join with vectors of the same
    publicly-known dimension. Raises [Invalid_argument] on an empty vector
    (dimension is a protocol parameter; a mismatch across honest parties is
    a caller bug, not byzantine behaviour).

    The d per-coordinate Π_ℤ instances run under {!Net.Proto.parallel}, so
    the round count is one Π_ℤ's worth, not d of them. *)
let agree (ctx : Ctx.t) vector =
  let dims = Array.length vector in
  if dims = 0 then invalid_arg "Vector.agree: empty vector";
  Proto.with_label "vector_ca"
    (Proto.map
       (Proto.parallel (List.init dims (fun d -> Ca_int.run ctx vector.(d))))
       Array.of_list)

(** Box-hull membership: every coordinate within the honest per-coordinate
    range. For tests and harnesses. *)
let in_box ~inputs output =
  match inputs with
  | [] -> false
  | first :: _ ->
      let dims = Array.length first in
      Array.length output = dims
      && List.for_all (fun v -> Array.length v = dims) inputs
      && List.for_all Fun.id
           (List.init dims (fun d ->
                let coord = List.map (fun v -> v.(d)) inputs in
                let lo = List.fold_left Bigint.min (List.hd coord) coord in
                let hi = List.fold_left Bigint.max (List.hd coord) coord in
                Bigint.compare lo output.(d) <= 0
                && Bigint.compare output.(d) hi <= 0))
