(** Convex Agreement over fixed-precision rationals.

    The paper (Section 1) notes that taking inputs in ℤ is without loss of
    generality: "one could alternatively interpret the inputs being rational
    numbers with some arbitrary pre-defined precision". This module is that
    interpretation, packaged: a value is an integer count of 10^-decimals
    units, the precision is a public protocol parameter, and agreement runs
    Π_ℤ on the unit counts. Convexity is preserved exactly — the map between
    rationals with fixed precision and their unit counts is a monotone
    bijection.

    Intended for the measurement-flavoured applications in the paper's
    introduction: temperatures ("-10.04"), prices, coordinates. *)

open Net

type t = {
  units : Bigint.t;  (** value × 10^decimals, any sign *)
  decimals : int;  (** number of fractional digits, ≥ 0 *)
}

let units v = v.units
let decimals v = v.decimals

let check_decimals decimals =
  if decimals < 0 then invalid_arg "Fixed_point: negative decimals"

let of_units ~decimals units =
  check_decimals decimals;
  { units; decimals }

let scale decimals = Bigint.of_string ("1" ^ String.make decimals '0')

let of_bigint ~decimals v =
  check_decimals decimals;
  { units = Bigint.mul v (scale decimals); decimals }

(** [of_string ~decimals "-10.04"] parses an optionally-signed decimal
    literal. The fractional part is right-padded with zeros to [decimals]
    digits; literals with {e more} than [decimals] fractional digits are
    rejected rather than silently rounded. Raises [Invalid_argument] on
    malformed input. *)
let of_string ~decimals s =
  check_decimals decimals;
  let fail () = invalid_arg ("Fixed_point.of_string: " ^ s) in
  if String.length s = 0 then fail ();
  let negative, body =
    match s.[0] with
    | '-' -> (true, String.sub s 1 (String.length s - 1))
    | '+' -> (false, String.sub s 1 (String.length s - 1))
    | _ -> (false, s)
  in
  let int_part, frac_part =
    match String.index_opt body '.' with
    | None -> (body, "")
    | Some i ->
        (String.sub body 0 i, String.sub body (i + 1) (String.length body - i - 1))
  in
  if int_part = "" && frac_part = "" then fail ();
  if String.length frac_part > decimals then fail ();
  let digits_ok part = String.for_all (fun c -> c >= '0' && c <= '9') part in
  if not (digits_ok int_part && digits_ok frac_part) then fail ();
  let padded = frac_part ^ String.make (decimals - String.length frac_part) '0' in
  let magnitude_digits =
    (if int_part = "" then "0" else int_part) ^ padded
  in
  let magnitude = Bigint.of_string (if magnitude_digits = "" then "0" else magnitude_digits) in
  { units = (if negative then Bigint.neg magnitude else magnitude); decimals }

let to_string v =
  if v.decimals = 0 then Bigint.to_string v.units
  else begin
    let sign = if Bigint.sign v.units < 0 then "-" else "" in
    let q, r = Bigint.divmod (Bigint.abs v.units) (scale v.decimals) in
    let frac = Bigint.to_string r in
    let frac = String.make (v.decimals - String.length frac) '0' ^ frac in
    Printf.sprintf "%s%s.%s" sign (Bigint.to_string q) frac
  end

let pp fmt v = Format.pp_print_string fmt (to_string v)

let same_precision a b =
  if a.decimals <> b.decimals then
    invalid_arg "Fixed_point: mixed precisions";
  a.decimals

let equal a b = ignore (same_precision a b); Bigint.equal a.units b.units
let compare a b = ignore (same_precision a b); Bigint.compare a.units b.units

let add a b = ignore (same_precision a b); { a with units = Bigint.add a.units b.units }
let sub a b = ignore (same_precision a b); { a with units = Bigint.sub a.units b.units }
let neg a = { a with units = Bigint.neg a.units }

(** Π_ℤ on unit counts. All honest parties must join with the same
    [decimals]; it is a public parameter like n and t (the simulator's [Ctx]
    plays the same role), not something the protocol agrees on. *)
let agree (ctx : Ctx.t) v =
  Proto.map (Ca_int.run ctx v.units) (fun units -> { v with units })

(** Convex hull membership at the rational level (for tests/harnesses). *)
let in_convex_hull ~inputs output =
  match inputs with
  | [] -> false
  | first :: _ ->
      let d = List.fold_left (fun d v -> max d (same_precision first v)) 0 inputs in
      ignore d;
      let lo, hi =
        List.fold_left
          (fun (lo, hi) v -> (Bigint.min lo v.units, Bigint.max hi v.units))
          (first.units, first.units) inputs
      in
      output.decimals = first.decimals
      && Bigint.compare lo output.units <= 0
      && Bigint.compare output.units hi <= 0
