(** Communication-optimal Convex Agreement — public API.

    This library implements the protocol suite of {e "Communication-Optimal
    Convex Agreement"} (Ghinea, Liu-Zhang, Wattenhofer, PODC 2024): n parties,
    up to t < n/3 byzantine, agree on a value guaranteed to lie within the
    range of the honest parties' inputs, at communication cost
    O(ℓn + poly(n, κ)) for ℓ-bit inputs — the first CA protocol matching the
    Ω(ℓn) lower bound.

    {b Quick start}: give each party a {!Bigint.t} input and run {!agree_int}
    under the simulator:
    {[
      let outcome =
        Net.Sim.run ~n:7 ~t:2 ~corrupt ~adversary:Net.Adversary.passive
          (fun ctx -> Convex.agree_int ctx inputs.(ctx.Net.Ctx.me))
    ]}
    Every honest party's output is the same integer, inside the honest
    inputs' range (Definition 1: Termination, Agreement, Convex Validity).

    The intermediate protocols (Sections 3–5 of the paper) are exposed as
    submodules for benchmarks and for users with fixed-width values. *)

(** {1 Top-level protocols} *)

(** Π_ℤ — Convex Agreement on arbitrary integers (Section 6). *)
let agree_int = Ca_int.run

(** Π_ℕ — Convex Agreement on naturals of unknown length (Section 5).
    Raises [Invalid_argument] on a negative input. *)
let agree_nat = Ca_nat.run

(** {1 Fixed-length protocols (Sections 3–4)} *)

(** FIXEDLENGTHCA — CA for values of a publicly known bit-width [bits];
    communication O(ℓn + κ·n²·log n·log ℓ). *)
let agree_fixed_length ctx ~bits v = Fixed_length_ca.run ctx ~bits v

(** FIXEDLENGTHCABLOCKS — the variant for very long values; [bits] must be a
    positive multiple of n². *)
let agree_fixed_length_blocks ctx ~bits v = Fixed_length_ca_blocks.run ctx ~bits v

(** HIGHCOSTCA — the O(ℓn³) king-based CA of [47] (Appendix A.4), used
    internally on short values and as a baseline. *)
let agree_high_cost ctx ~bits v = High_cost_ca.run ctx ~bits v

(** {1 Building blocks} *)

module Find_prefix = Find_prefix
module Add_last_bit = Add_last_bit
module Get_output = Get_output
module Fixed_length_ca = Fixed_length_ca
module Find_prefix_blocks = Find_prefix_blocks
module Add_last_block = Add_last_block
module Fixed_length_ca_blocks = Fixed_length_ca_blocks
module High_cost_ca = High_cost_ca
module Median_ba = Median_ba
module Rank_ba = Rank_ba
module Ca_nat = Ca_nat
module Ca_int = Ca_int
module Fixed_point = Fixed_point
module Vector = Vector

(** Convex Agreement on fixed-precision rationals (the paper's Section 1
    remark) — see {!Fixed_point}. *)
let agree_fixed_point = Fixed_point.agree

(** Coordinate-wise CA on integer vectors ({b box} validity — weaker than
    multidimensional hull validity; see {!Vector}). *)
let agree_vector = Vector.agree

(** {1 Properties (for tests and harnesses)}

    [in_convex_hull ~inputs output] — is [output] within the range of
    [inputs]? With honest inputs only, this is exactly Convex Validity. *)
let in_convex_hull ~inputs output =
  match inputs with
  | [] -> false
  | first :: rest ->
      let lo, hi =
        List.fold_left
          (fun (lo, hi) v -> (Bigint.min lo v, Bigint.max hi v))
          (first, first) rest
      in
      Bigint.compare lo output <= 0 && Bigint.compare output hi <= 0
