(** ADDLASTBLOCK (Section 4, Lemma 5): extend the agreed block-prefix by one
    whole block by solving CA on the parties' next blocks with HIGHCOSTCA —
    run once, on ℓ/n² bits, so its O((ℓ/n²)·n³) = O(ℓn) cost is affordable.
    Rounds: O(n). *)

val run :
  Net.Ctx.t ->
  bits:int ->
  prefix_star:Bitstring.t ->
  Bitstring.t ->
  Bitstring.t Net.Proto.t
(** Preconditions (Lemma 5): [bits] a multiple of n²; all honest parties
    share [prefix_star] (a strict block multiple) and hold valid [bits]-bit
    values extending it. *)
