(** Byzantine Agreement with Median Validity (Stolz–Wattenhofer [47]) — the
    protocol HIGHCOSTCA was adjusted from. Identical king-based search, but
    the trusted interval is a rank window around the honest median, giving:

    {b t-Median Validity}: the common output lies within
    [h_(m−t), h_(m+t)] for h_1 ≤ ... ≤ h_(n−t) the sorted honest inputs and
    m = ⌈(n−t)/2⌉. (A byzantine value may be output, but only with rank
    within t of the honest median — unavoidable per [47].)

    Same complexity as HIGHCOSTCA: O(ℓ·n³) bits, 2 + 4(t+1) rounds. *)

val run : Net.Ctx.t -> bits:int -> Bitstring.t -> Bitstring.t Net.Proto.t

val validity_bounds : Bitstring.t list -> t:int -> Bitstring.t -> bool
(** [validity_bounds honest_inputs ~t output]: does [output] satisfy
    t-median validity with respect to [honest_inputs]? For tests and
    monitors. Raises [Invalid_argument] on an empty input list. *)

val median_window :
  sorted:Bitstring.t array -> k:int -> t:int -> Bitstring.t * Bitstring.t
(** The interval rule (exposed for {!High_cost_ca.run_custom} users): with
    [count] received values of which at most [k] are byzantine, the window
    [a_(m−t+k), a_(m+t)] around the honest median rank m = ⌈(count−k)/2⌉
    lies within the validity bounds and contains the honest median. *)
