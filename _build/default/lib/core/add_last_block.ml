(** ADDLASTBLOCK (Section 4, Lemma 5): extend the agreed block-prefix by one
    whole block by solving CA on the parties' next blocks with HIGHCOSTCA —
    run once, on ℓ/n² bits, its O((ℓ/n²)·n³) = O(ℓn) cost is affordable. *)

open Net

let ( let* ) = Proto.( let* )

let run (ctx : Ctx.t) ~bits:len ~prefix_star v =
  let n2 = ctx.Ctx.n * ctx.Ctx.n in
  if len mod n2 <> 0 then invalid_arg "Add_last_block.run: bits not a multiple of n^2";
  let block_bits = len / n2 in
  let i_star_bits = Bitstring.length prefix_star in
  if i_star_bits mod block_bits <> 0 || i_star_bits >= len then
    invalid_arg "Add_last_block.run: prefix must be a strict block multiple";
  let next_block =
    Bitstring.range v ~left:(i_star_bits + 1) ~right:(i_star_bits + block_bits)
  in
  Proto.with_label "add_last_block"
    (let* block = High_cost_ca.run ctx ~bits:block_bits next_block in
     Proto.return (Bitstring.append prefix_star block))
