(** Convex Agreement over fixed-precision rationals.

    The paper (Section 1) notes that integer inputs are without loss of
    generality: "one could alternatively interpret the inputs being rational
    numbers with some arbitrary pre-defined precision". This module is that
    interpretation, packaged: a value is an integer count of 10^-decimals
    units, precision is a public parameter (like n and t), and agreement is
    Π_ℤ on the unit counts — a monotone bijection, so convexity transfers
    exactly.

    For the measurement-flavoured applications of the paper's introduction:
    temperatures ("-10.04"), prices, coordinates. *)

type t

val of_units : decimals:int -> Bigint.t -> t
(** [of_units ~decimals u] is the rational u·10^-decimals.
    Raises [Invalid_argument] if [decimals < 0]. *)

val of_bigint : decimals:int -> Bigint.t -> t
(** [of_bigint ~decimals v] is the integer [v] at the given precision. *)

val of_string : decimals:int -> string -> t
(** [of_string ~decimals "-10.04"] parses an optionally-signed decimal
    literal. The fractional part is right-padded with zeros to [decimals]
    digits; literals with more fractional digits than [decimals] are
    rejected rather than silently rounded. Raises [Invalid_argument] on
    malformed input. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val units : t -> Bigint.t
val decimals : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
(** Arithmetic on matching precisions; mixing precisions raises
    [Invalid_argument] (precision is a protocol parameter, not data). *)

val agree : Net.Ctx.t -> t -> t Net.Proto.t
(** Π_ℤ on the unit counts. All honest parties must join with the same
    [decimals]. *)

val in_convex_hull : inputs:t list -> t -> bool
(** Convex-hull membership at the rational level, for tests/harnesses. *)
