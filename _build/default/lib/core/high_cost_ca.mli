(** HIGHCOSTCA (Appendix A.4, Theorem 3): the adjusted Median-Validity
    protocol of Stolz–Wattenhofer [47] — a king-based CA protocol with
    communication O(ℓ·n³) and 2 + 4(t+1) rounds, resilient for t < n/3.

    Used by the main construction only on short inputs (one block, a block
    count), where the cubic cost is affordable, and as the "existing CA
    protocol" baseline. {!Median_ba} reuses the search stage with the
    original median-window interval rule via {!run_custom}. *)

val run : Net.Ctx.t -> bits:int -> Bitstring.t -> Bitstring.t Net.Proto.t
(** All honest parties must join with values of the same width [bits]; the
    common output is a [bits]-wide value in the honest inputs' range. *)

(** {1 Custom trusted-interval rules} *)

val run_custom :
  Net.Ctx.t ->
  bits:int ->
  select_interval:
    (sorted:Bitstring.t array -> k:int -> t:int -> Bitstring.t * Bitstring.t) ->
  Bitstring.t ->
  Bitstring.t Net.Proto.t
(** [select_interval ~sorted ~k ~t] receives the ascending non-empty array of
    valid values a party received in the setup stage and [k], an upper bound
    on how many of them byzantine parties contributed, and returns the
    party's trusted interval [(lo, hi)], [lo <= hi]. Soundness requirement:
    the interval must lie within the guarantee the caller wants on outputs
    (for plain CA, within the honest inputs' range) and all honest parties'
    intervals must share a common point. *)

val trim_extremes :
  sorted:Bitstring.t array -> k:int -> t:int -> Bitstring.t * Bitstring.t
(** The Appendix A.4 rule: discard the k lowest and k highest received
    values; by Lemma 10 the rest — which contains the (t+1)-th lowest honest
    input — lies within the honest range. *)
