(** Small numerical toolbox for the empirical claim checks: summary
    statistics and least-squares regression (via normal equations) for the
    few-predictor models used to fit measured communication against the
    paper's complexity expressions. *)

val mean : float list -> float
(** Raises [Invalid_argument] on an empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 for singletons. *)

val pearson : float list -> float list -> float
(** Correlation coefficient. Raises [Invalid_argument] on length mismatch or
    fewer than two points; returns 0 when either series is constant. *)

type fit = {
  coefficients : float array;  (** one per predictor column *)
  r_square : float;  (** goodness of fit against the observations *)
}

val least_squares : rows:float array list -> y:float list -> fit
(** [least_squares ~rows ~y] solves min ‖Xβ − y‖² where each element of
    [rows] is one observation's predictor vector. Solved by Gaussian
    elimination on the normal equations (the models here have ≤ 3 well-
    conditioned predictors). Raises [Invalid_argument] on shape mismatch or
    a singular system. *)

val log2 : float -> float
