let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty"
  | _ -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev xs =
  let m = mean xs in
  let var = mean (List.map (fun x -> (x -. m) ** 2.) xs) in
  sqrt var

let pearson xs ys =
  if List.length xs <> List.length ys then invalid_arg "Stats.pearson: lengths";
  if List.length xs < 2 then invalid_arg "Stats.pearson: need two points";
  let mx = mean xs and my = mean ys in
  let num =
    List.fold_left2 (fun acc x y -> acc +. ((x -. mx) *. (y -. my))) 0. xs ys
  in
  let dx = sqrt (List.fold_left (fun acc x -> acc +. ((x -. mx) ** 2.)) 0. xs) in
  let dy = sqrt (List.fold_left (fun acc y -> acc +. ((y -. my) ** 2.)) 0. ys) in
  if dx = 0. || dy = 0. then 0. else num /. (dx *. dy)

type fit = { coefficients : float array; r_square : float }

(* Gaussian elimination with partial pivoting on an augmented matrix. *)
let solve a b =
  let n = Array.length b in
  let m = Array.init n (fun i -> Array.append a.(i) [| b.(i) |]) in
  for col = 0 to n - 1 do
    (* pivot *)
    let pivot = ref col in
    for r = col + 1 to n - 1 do
      if abs_float m.(r).(col) > abs_float m.(!pivot).(col) then pivot := r
    done;
    if abs_float m.(!pivot).(col) < 1e-12 then
      invalid_arg "Stats.least_squares: singular system";
    let tmp = m.(col) in
    m.(col) <- m.(!pivot);
    m.(!pivot) <- tmp;
    for r = 0 to n - 1 do
      if r <> col then begin
        let f = m.(r).(col) /. m.(col).(col) in
        for c = col to n do
          m.(r).(c) <- m.(r).(c) -. (f *. m.(col).(c))
        done
      end
    done
  done;
  Array.init n (fun i -> m.(i).(n) /. m.(i).(i))

let least_squares ~rows ~y =
  let k =
    match rows with
    | [] -> invalid_arg "Stats.least_squares: no rows"
    | r :: _ -> Array.length r
  in
  if List.length rows <> List.length y then invalid_arg "Stats.least_squares: shapes";
  if List.exists (fun r -> Array.length r <> k) rows then
    invalid_arg "Stats.least_squares: ragged rows";
  (* Normal equations: (XᵀX) β = Xᵀy. *)
  let xtx = Array.make_matrix k k 0. in
  let xty = Array.make k 0. in
  List.iter2
    (fun row yi ->
      for i = 0 to k - 1 do
        xty.(i) <- xty.(i) +. (row.(i) *. yi);
        for j = 0 to k - 1 do
          xtx.(i).(j) <- xtx.(i).(j) +. (row.(i) *. row.(j))
        done
      done)
    rows y;
  let coefficients = solve xtx xty in
  let predict row =
    let acc = ref 0. in
    Array.iteri (fun i c -> acc := !acc +. (c *. row.(i))) coefficients;
    !acc
  in
  let ybar = mean y in
  let ss_tot = List.fold_left (fun acc yi -> acc +. ((yi -. ybar) ** 2.)) 0. y in
  let ss_res =
    List.fold_left2 (fun acc row yi -> acc +. ((yi -. predict row) ** 2.)) 0. rows y
  in
  let r_square = if ss_tot = 0. then 1. else 1. -. (ss_res /. ss_tot) in
  { coefficients; r_square }

let log2 x = log x /. log 2.
