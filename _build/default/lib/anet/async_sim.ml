(** Adversarial event scheduler for asynchronous protocols.

    The asynchronous model: the adversary delays and reorders messages
    arbitrarily, but every message between honest parties is eventually
    delivered. The simulator keeps a bag of in-flight messages and repeatedly
    asks a {!scheduler} which to deliver next; any scheduler that never
    starves a message forever realizes the model. Byzantine parties are
    modelled as in the synchronous simulator: their instances run, but a
    transform rewrites (or drops) each message they send and may inject
    fabrications.

    The run ends when every honest party has terminated, or fails with
    {!Starvation} when messages remain but the honest parties cannot make
    progress (a liveness bug — or an unfair scheduler). *)

type message = {
  seq : int;  (** global injection order; unique *)
  src : int;
  dst : int;
  payload : string;
}

type scheduler = {
  sched_name : string;
  pick : Net.Prng.t -> message list -> message;
      (** Choose the next message to deliver from a non-empty in-flight
          list (ascending [seq]). *)
}

(** FIFO per global injection order — the "synchronous-like" schedule. *)
let fifo = { sched_name = "fifo"; pick = (fun _ pending -> List.hd pending) }

(** Deliver the newest first — maximal reordering. *)
let lifo =
  {
    sched_name = "lifo";
    pick = (fun _ pending -> List.nth pending (List.length pending - 1));
  }

(** Uniformly random choice — the standard fair adversary. *)
let random =
  { sched_name = "random"; pick = (fun rng pending -> List.nth pending (Net.Prng.int rng (List.length pending))) }

(** Starve one target party as long as legal: deliver its messages only when
    nothing else is pending — the classic "slow party" adversary. *)
let starve ~target =
  {
    sched_name = Printf.sprintf "starve-%d" target;
    pick =
      (fun rng pending ->
        match List.filter (fun m -> m.dst <> target) pending with
        | [] -> List.nth pending (Net.Prng.int rng (List.length pending))
        | rest -> List.nth rest (Net.Prng.int rng (List.length rest)));
  }

(** Deliver byzantine-sent messages first (rushing flavour). *)
let byzantine_first ~corrupt =
  {
    sched_name = "byzantine-first";
    pick =
      (fun rng pending ->
        match List.filter (fun m -> corrupt.(m.src)) pending with
        | [] -> List.nth pending (Net.Prng.int rng (List.length pending))
        | byz -> List.nth byz (Net.Prng.int rng (List.length byz)));
  }

let all_schedulers ~corrupt ~target =
  [ fifo; lifo; random; starve ~target; byzantine_first ~corrupt ]

(** Byzantine message behaviour. *)
type byzantine = {
  byz_name : string;
  rewrite : src:int -> dst:int -> string -> string option;
      (** Applied to every message a corrupted instance sends. *)
}

let byz_passive = { byz_name = "passive"; rewrite = (fun ~src:_ ~dst:_ m -> Some m) }
let byz_silent = { byz_name = "silent"; rewrite = (fun ~src:_ ~dst:_ _ -> None) }

let byz_garbage ~seed =
  let rng = Net.Prng.create seed in
  {
    byz_name = "garbage";
    rewrite = (fun ~src:_ ~dst:_ m -> Some (Net.Prng.bytes rng (String.length m)));
  }

(** Equivocate: rewrite payloads sent to the upper half of the parties by
    applying [mutate]. *)
let byz_equivocate ~mutate =
  {
    byz_name = "equivocate";
    rewrite = (fun ~src:_ ~dst m -> Some (if dst land 1 = 0 then m else mutate m));
  }

exception Starvation of string

type metrics = {
  mutable delivered : int;
  mutable dropped : int;
  mutable honest_bits : int;
}

type 'a outcome = { outputs : 'a option array; metrics : metrics }

let default_max_deliveries = 2_000_000

let run ?(max_deliveries = default_max_deliveries) ?(seed = 1)
    ?(byzantine = byz_passive) ~n ~t ~corrupt ~scheduler protocol =
  if Array.length corrupt <> n then invalid_arg "Async_sim.run: corrupt size";
  let rng = Net.Prng.create seed in
  let metrics = { delivered = 0; dropped = 0; honest_bits = 0 } in
  let states = Array.init n (fun me -> protocol (Net.Ctx.make ~n ~t ~me)) in
  let seq = ref 0 in
  let pending = ref [] in
  (* Insert keeping ascending seq order (schedulers rely on it). *)
  let enqueue src dst payload =
    incr seq;
    pending := !pending @ [ { seq = !seq; src; dst; payload } ]
  in
  let post src msgs =
    List.iter
      (fun (dst, payload) ->
        if dst < 0 || dst >= n then ()
        else if corrupt.(src) then begin
          match byzantine.rewrite ~src ~dst payload with
          | Some payload -> enqueue src dst payload
          | None -> metrics.dropped <- metrics.dropped + 1
        end
        else begin
          metrics.honest_bits <- metrics.honest_bits + (8 * String.length payload);
          enqueue src dst payload
        end)
      msgs
  in
  (* Drain initial sends of every instance. *)
  let rec settle me state =
    match state with
    | Async_proto.Send (msgs, k) ->
        post me msgs;
        settle me k
    | (Async_proto.Done _ | Async_proto.Recv _) as s -> s
  in
  Array.iteri (fun i s -> states.(i) <- settle i s) states;
  let honest_running () =
    Array.exists
      (fun i ->
        match states.(i) with Async_proto.Recv _ -> not corrupt.(i) | _ -> false)
      (Array.init n Fun.id)
  in
  while honest_running () && !pending <> [] do
    if metrics.delivered > max_deliveries then
      raise (Starvation "delivery budget exceeded");
    let msg = scheduler.pick rng !pending in
    pending := List.filter (fun m -> m.seq <> msg.seq) !pending;
    metrics.delivered <- metrics.delivered + 1;
    match states.(msg.dst) with
    | Async_proto.Recv k ->
        states.(msg.dst) <- settle msg.dst (k ~sender:msg.src msg.payload)
    | Async_proto.Done _ -> metrics.dropped <- metrics.dropped + 1
    | Async_proto.Send _ -> assert false
  done;
  if honest_running () then
    raise (Starvation "honest party waiting with no messages in flight");
  let outputs =
    Array.map (function Async_proto.Done v -> Some v | _ -> None) states
  in
  { outputs; metrics }

let honest_outputs ~corrupt outcome =
  let out = ref [] in
  Array.iteri
    (fun i o ->
      if not corrupt.(i) then
        match o with
        | Some v -> out := v :: !out
        | None -> failwith (Printf.sprintf "party %d did not terminate" i))
    outcome.outputs;
  List.rev !out
