(** Asynchronous protocols as reactive computations.

    The paper's conclusion expects its techniques to "be easily extended to
    the asynchronous setting for a lower number of corruptions t < n/5"; this
    library provides the asynchronous substrate for exploring that direction:
    a message-driven protocol representation (this module), an adversarial
    event scheduler ({!Async_sim}), Bracha reliable broadcast ({!Bracha}) and
    asynchronous approximate agreement for t < n/5 ({!Async_aa}).

    Unlike the synchronous {!Net.Proto} (lock-step rounds), an asynchronous
    protocol alternates between {e sending batches of messages} and
    {e blocking on the next delivered message} — there are no rounds; the
    scheduler delivers in-flight messages one at a time in an order the
    adversary controls (subject to eventual delivery). *)

type 'a t =
  | Done of 'a
  | Send of (int * string) list * 'a t
      (** [Send (msgs, k)]: put [(recipient, payload)] messages in flight,
          continue as [k]. *)
  | Recv of (sender:int -> string -> 'a t)
      (** Block until the scheduler delivers the next message. *)

let return x = Done x

let rec bind m f =
  match m with
  | Done x -> f x
  | Send (msgs, k) -> Send (msgs, bind k f)
  | Recv k -> Recv (fun ~sender payload -> bind (k ~sender payload) f)

let ( let* ) = bind
let map m f = bind m (fun x -> return (f x))

let send_many msgs = Send (msgs, Done ())

let send recipient payload = send_many [ (recipient, payload) ]

(** Send the same payload to every party including self ([n] known to the
    caller). *)
let broadcast ~n payload = send_many (List.init n (fun r -> (r, payload)))

let recv () = Recv (fun ~sender payload -> Done (sender, payload))

(** [recv_until step init]: feed delivered messages to [step] until it
    produces a result. [step] returns [Ok result] to finish or
    [Error (state, msgs)] to send [msgs] and keep waiting — the shape of
    quorum-collection loops. *)
let recv_until step init =
  let rec loop state =
    Recv
      (fun ~sender payload ->
        match step state ~sender payload with
        | Ok result -> Done result
        | Error (state, msgs) -> Send (msgs, loop state))
  in
  loop init
