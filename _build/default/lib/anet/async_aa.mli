(** Asynchronous Approximate Agreement for t < n/5 — the original
    Dolev–Lynch–Pinter–Stark–Weihl [16] asynchronous regime, and the
    corruption bound the paper's conclusion names for extending its
    techniques to asynchrony.

    Each (per-party) round: send the current value to all; wait for round-r
    values from n−t distinct senders (buffering future rounds); trim the t
    lowest and t highest; move to the midpoint. Validity holds by the
    trimming argument; the honest diameter contracts geometrically —
    ε-agreement, never exact agreement (FLP). *)

val run :
  Net.Ctx.t -> bits:int -> rounds:int -> Bitstring.t -> Bitstring.t Async_proto.t
(** [run ctx ~bits ~rounds v]: [v] must be [bits] wide; requires the
    context's [t < n/5] (raises [Invalid_argument] otherwise). *)

(** {1 Wire codecs (exposed for byzantine strategies in harnesses)} *)

val encode : round:int -> Bitstring.t -> string
val decode : bits:int -> string -> (int * Bitstring.t) option
