lib/anet/bracha.ml: Array Async_proto Hashtbl List Net Wire
