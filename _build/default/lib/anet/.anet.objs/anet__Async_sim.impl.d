lib/anet/async_sim.ml: Array Async_proto Fun List Net Printf String
