lib/anet/async_aa.mli: Async_proto Bitstring Net
