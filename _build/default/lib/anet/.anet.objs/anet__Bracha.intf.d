lib/anet/bracha.mli: Async_proto Net
