lib/anet/async_aa.ml: Array Async_proto Bigint Bitstring Hashtbl List Net Wire
