lib/anet/async_proto.ml: List
