lib/anet/async_sim.mli: Async_proto Net
