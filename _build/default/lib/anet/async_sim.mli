(** Adversarial event scheduler for asynchronous protocols.

    The asynchronous model: the adversary delays and reorders messages
    arbitrarily but must eventually deliver honest-to-honest messages. The
    simulator keeps the in-flight messages and repeatedly asks a
    {!scheduler} which to deliver next; any scheduler that never starves a
    message realizes the model. Byzantine parties run their instances, but a
    {!byzantine} rewrite intercepts every message they send.

    Deterministic in [seed] — asynchronous runs are exactly reproducible. *)

type message = { seq : int; src : int; dst : int; payload : string }

type scheduler = {
  sched_name : string;
  pick : Net.Prng.t -> message list -> message;
      (** Choose the next delivery from a non-empty pending list
          (ascending [seq]). *)
}

val fifo : scheduler
(** Global injection order — the synchronous-like schedule. *)

val lifo : scheduler
(** Newest first — maximal reordering. *)

val random : scheduler
(** Uniform choice — the standard fair adversary. *)

val starve : target:int -> scheduler
(** Deliver to [target] only when nothing else is pending. *)

val byzantine_first : corrupt:bool array -> scheduler
(** Prefer byzantine-sent messages (rushing flavour). *)

val all_schedulers : corrupt:bool array -> target:int -> scheduler list

(** {1 Byzantine behaviour} *)

type byzantine = {
  byz_name : string;
  rewrite : src:int -> dst:int -> string -> string option;
      (** Applied to every message a corrupted instance sends; [None]
          drops it. *)
}

val byz_passive : byzantine
val byz_silent : byzantine
val byz_garbage : seed:int -> byzantine

val byz_equivocate : mutate:(string -> string) -> byzantine
(** Original payloads to even-index recipients, [mutate]d ones to odd. *)

(** {1 Running} *)

exception Starvation of string
(** An honest party is waiting but no progress is possible (a liveness
    failure — or the expected outcome of e.g. a silent Bracha sender). *)

type metrics = {
  mutable delivered : int;
  mutable dropped : int;
  mutable honest_bits : int;
}

type 'a outcome = { outputs : 'a option array; metrics : metrics }

val default_max_deliveries : int

val run :
  ?max_deliveries:int ->
  ?seed:int ->
  ?byzantine:byzantine ->
  n:int ->
  t:int ->
  corrupt:bool array ->
  scheduler:scheduler ->
  (Net.Ctx.t -> 'a Async_proto.t) ->
  'a outcome

val honest_outputs : corrupt:bool array -> 'a outcome -> 'a list
(** Raises [Failure] if an honest party did not terminate. *)
