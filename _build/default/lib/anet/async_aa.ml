(** Asynchronous Approximate Agreement for t < n/5 — the original
    Dolev–Lynch–Pinter–Stark–Weihl [16] asynchronous regime, and the
    corruption bound the paper's conclusion names for extending its
    techniques to asynchrony.

    Round r (no global clock — rounds are per-party counters): send
    (r, v_r) to everyone; wait until values of round r from n−t distinct
    senders have arrived (values for future rounds are buffered, a party may
    lag arbitrarily); discard the t lowest and t highest and move to the
    midpoint of the survivors.

    Guarantees under any fair scheduler, t < n/5:
    - {e Validity}: survivors of the trim are bracketed by honest round-r
      values (at most t of the n−t collected values are byzantine), so by
      induction outputs stay in the honest inputs' range.
    - {e ε-Agreement}: the honest diameter contracts geometrically; [rounds]
      = O(log(diameter/ε)) reaches ε-agreement. Exact agreement is
      impossible deterministically in asynchrony (FLP [22]) — this is the
      strongest validity-preserving primitive available without
      randomization, which is why the paper's synchronous CA is interesting.

    Values are [bits]-wide naturals; communication O(rounds·ℓ·n²). *)

open Async_proto

let encode ~round v = Wire.(encode (seq [ w_varint round; w_bits v ]))

let decode ~bits raw =
  let open Wire in
  decode_full
    (fun cur ->
      let* round = r_varint cur in
      let* v = r_bits () cur in
      if Bitstring.length v = bits then Some (round, v) else None)
    raw

let run (ctx : Net.Ctx.t) ~bits ~rounds v_in =
  if Bitstring.length v_in <> bits then invalid_arg "Async_aa.run: input length";
  if rounds < 0 then invalid_arg "Async_aa.run: negative rounds";
  let n = ctx.Net.Ctx.n and t = ctx.Net.Ctx.t in
  if 5 * t >= n then invalid_arg "Async_aa.run: requires t < n/5";
  let quorum = n - t in
  (* buffered.(r) maps sender -> value for round r (first value wins). *)
  let buffered = Array.init rounds (fun _ -> Hashtbl.create 8) in
  let trimmed_midpoint values =
    let sorted = List.sort Bitstring.compare values in
    let arr = Array.of_list sorted in
    let count = Array.length arr in
    let lo = Bigint.of_bitstring arr.(min t (count - 1)) in
    let hi = Bigint.of_bitstring arr.(max 0 (count - 1 - t)) in
    Bigint.to_bitstring_fixed ~bits (Bigint.shift_right (Bigint.add lo hi) 1)
  in
  let rec round r v =
    if r = rounds then Done v
    else
      let* () = broadcast ~n (encode ~round:r v) in
      collect r
  and collect r =
    if Hashtbl.length buffered.(r) >= quorum then begin
      let values = Hashtbl.fold (fun _ v acc -> v :: acc) buffered.(r) [] in
      round (r + 1) (trimmed_midpoint values)
    end
    else
      Recv
        (fun ~sender raw ->
          (match decode ~bits raw with
          | Some (round, v)
            when round >= r && round < rounds
                 && not (Hashtbl.mem buffered.(round) sender) ->
              Hashtbl.add buffered.(round) sender v
          | Some _ | None -> ());
          collect r)
  in
  round 0 v_in
