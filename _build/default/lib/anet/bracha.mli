(** Bracha's asynchronous Reliable Broadcast (RBC), t < n/3 — the standard
    asynchronous dissemination primitive (the asynchronous extension
    protocols of [10, 41] build on it).

    Guarantees for a designated sender s: {e Validity} (honest s ⇒ all
    honest deliver s's value), {e Agreement} (no two honest parties deliver
    differently), {e Totality} (one honest delivery ⇒ all honest eventually
    deliver). A byzantine sender may cause no delivery at all; under the
    simulator that surfaces as {!Async_sim.Starvation}.

    Communication: O(ℓn²) — INIT, then all-to-all ECHO and READY. *)

val run : Net.Ctx.t -> sender:int -> string -> string Async_proto.t
(** [run ctx ~sender v]: every party joins; only [sender]'s [v] matters.
    Returns the delivered value. Raises [Invalid_argument] on a bad
    sender index. *)
