(** Bracha's asynchronous Reliable Broadcast (RBC), t < n/3 — the standard
    asynchronous substrate primitive (used by the extension protocols of
    [10, 41] in the asynchronous setting the paper's conclusion points to).

    Guarantees (single designated sender s):
    - {e Validity}: if s is honest, every honest party delivers s's value.
    - {e Agreement}: no two honest parties deliver different values.
    - {e Totality}: if one honest party delivers, all honest parties
      eventually deliver.

    A byzantine sender may cause {e no} delivery at all (the primitive is
    only "reliable", not terminating) — in the simulator such runs surface
    as {!Async_sim.Starvation}, which the tests assert explicitly.

    Message pattern: INIT v from the sender; each party ECHOes the first
    INIT; READY once n−t ECHOs or t+1 READYs for a value are seen; deliver
    at 2t+1 READYs. Communication: O(ℓn²) for an ℓ-bit value. *)

open Async_proto

type kind = Init | Echo | Ready

let encode kind payload =
  let tag = match kind with Init -> 1 | Echo -> 2 | Ready -> 3 in
  Wire.(encode (seq [ w_u8 tag; w_bytes payload ]))

let decode raw =
  let open Wire in
  decode_full
    (fun cur ->
      let* tag = r_u8 cur in
      let* payload = r_bytes () cur in
      match tag with
      | 1 -> Some (Init, payload)
      | 2 -> Some (Echo, payload)
      | 3 -> Some (Ready, payload)
      | _ -> None)
    raw

type state = {
  echoed : bool;
  readied : bool;
  echo_senders : (string, unit) Hashtbl.t array; (* per value: senders seen *)
  ready_senders : (string, unit) Hashtbl.t array;
}

(** [run ctx ~sender v]: every party joins; only [sender]'s [v] matters.
    Returns the delivered value. *)
let run (ctx : Net.Ctx.t) ~sender v =
  let n = ctx.Net.Ctx.n and t = ctx.Net.Ctx.t in
  if sender < 0 || sender >= n then invalid_arg "Bracha.run: bad sender";
  let quorum = n - t in
  let state =
    {
      echoed = false;
      readied = false;
      echo_senders = Array.init n (fun _ -> Hashtbl.create 4);
      ready_senders = Array.init n (fun _ -> Hashtbl.create 4);
    }
  in
  (* Count distinct supporters of [value] in a per-party table array. *)
  let support tables value from =
    Hashtbl.replace tables.(from) (value : string) ();
    Array.fold_left
      (fun acc tbl -> if Hashtbl.mem tbl value then acc + 1 else acc)
      0 tables
  in
  let all_parties payload = List.init n (fun r -> (r, payload)) in
  let rec wait state =
    Recv
      (fun ~sender:from raw ->
        match decode raw with
        | None -> wait state (* malformed byzantine bytes *)
        | Some (Init, value) ->
            if from = sender && not state.echoed then
              Send (all_parties (encode Echo value), wait { state with echoed = true })
            else wait state
        | Some (Echo, value) ->
            let echoes = support state.echo_senders value from in
            if echoes >= quorum && not state.readied then
              Send (all_parties (encode Ready value), wait { state with readied = true })
            else wait state
        | Some (Ready, value) ->
            let readies = support state.ready_senders value from in
            if readies >= (2 * t) + 1 then Done value
            else if readies >= t + 1 && not state.readied then
              Send (all_parties (encode Ready value), wait { state with readied = true })
            else wait state)
  in
  if ctx.Net.Ctx.me = sender then
    Send (all_parties (encode Init v), wait state)
  else wait state
