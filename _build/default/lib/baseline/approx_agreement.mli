(** Synchronous Approximate Agreement [16]: iterated trimmed averaging — the
    historical root of honest-range validity and the natural comparison
    point for CA (Section 1.1).

    Guarantees for t < n/3: outputs stay within the honest inputs' range
    (each iteration trims the t lowest/highest received values, so every
    survivor is bracketed by honest values); the honest diameter contracts
    geometrically, reaching ε-agreement in O(log(diameter/ε)) iterations —
    but never {e exact} Agreement, which is what separates AA from CA (see
    the clock-ordering example).

    Communication: O(rounds · ℓ · n²). *)

val run :
  Net.Ctx.t -> bits:int -> rounds:int -> Bitstring.t -> Bitstring.t Net.Proto.t
(** [run ctx ~bits ~rounds v] performs [rounds] averaging iterations on
    [bits]-wide values. [rounds = 0] returns the input unchanged. *)
