(** The introduction's "straightforward approach": every party broadcasts its
    input via synchronous Byzantine Broadcast, giving all parties an
    identical view of the n claimed inputs; a deterministic choice function
    (the median of the trimmed common view) then yields a valid common
    output.

    This is the classical CA baseline the paper improves on. Optimal in
    resilience and conceptually simple, but communication-heavy: n broadcasts
    of ℓ-bit values. With BC realized as send + Turpin–Coan BA the total cost
    is O(ℓn³) bits (O(ℓn²) would require an extension-protocol BC — which is
    the very machinery the paper builds); either way it is ω(ℓn).

    Correctness of the choice function: the common view contains all n−t
    honest inputs, so at most t entries lie below the smallest honest input
    and at most t above the largest; after discarding the t lowest and t
    highest entries, every survivor — in particular the median — lies in the
    honest inputs' range. *)

open Net

let ( let* ) = Proto.( let* )

let encode_value v = Wire.encode (Wire.w_bits v)

let decode_value ~bits raw =
  match Wire.decode_full (Wire.r_bits ()) raw with
  | Some v when Bitstring.length v = bits -> Some v
  | Some _ | None -> None

(* The deterministic choice on the identical view: drop non-values, trim t
   from each side, take the median of the rest. At least n−t honest
   broadcasts decode, so the trimmed slice is non-empty; guard anyway. *)
let choose ~bits ~t ~fallback view =
  let values = List.sort Bitstring.compare (List.filter_map (decode_value ~bits) view) in
  let arr = Array.of_list values in
  let count = Array.length arr in
  if count <= 2 * t then fallback else arr.(t + ((count - (2 * t)) / 2))

let run (ctx : Ctx.t) ~bits v_in =
  if Bitstring.length v_in <> bits then invalid_arg "Broadcast_ca.run: input length";
  let n = ctx.Ctx.n and t = ctx.Ctx.t in
  Proto.with_label "broadcast_ca"
    (let rec gather sender acc =
       if sender = n then Proto.return (List.rev acc)
       else
         let* claimed =
           Ba.Broadcast.run Ba.Phase_king.bytes_spec ctx ~sender (encode_value v_in)
         in
         gather (sender + 1) (claimed :: acc)
     in
     let* view = gather 0 [] in
     Proto.return (choose ~bits ~t ~fallback:v_in view))

(** The same protocol with the n broadcasts composed by {!Net.Proto.parallel}
    instead of sequentially: identical outputs (the broadcasts are
    independent and deterministic), O(n) rounds instead of O(n²). *)
let run_parallel (ctx : Ctx.t) ~bits v_in =
  if Bitstring.length v_in <> bits then
    invalid_arg "Broadcast_ca.run_parallel: input length";
  let n = ctx.Ctx.n and t = ctx.Ctx.t in
  Proto.with_label "broadcast_ca"
    (let* view =
       Proto.parallel
         (List.init n (fun sender ->
              Ba.Broadcast.run Ba.Phase_king.bytes_spec ctx ~sender
                (encode_value v_in)))
     in
     Proto.return (choose ~bits ~t ~fallback:v_in view))
