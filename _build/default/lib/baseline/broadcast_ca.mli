(** The introduction's "straightforward approach" to CA: every party
    broadcasts its input via synchronous Byzantine Broadcast — giving all
    parties an identical view of the n claimed inputs — then a deterministic
    choice function (the median of the t-trimmed common view) yields a valid
    common output.

    Optimal resilience and conceptually simple, but communication-heavy:
    with BC realized as send + BA the total cost is O(ℓn³) (O(ℓn²) would
    itself require extension-protocol machinery). The main baseline of
    experiments T1/T2/F1. *)

val run : Net.Ctx.t -> bits:int -> Bitstring.t -> Bitstring.t Net.Proto.t
(** All honest parties must join with values of width [bits]; the common
    output lies within the honest inputs' range. The n broadcasts run
    sequentially: O(n²) rounds. *)

val run_parallel : Net.Ctx.t -> bits:int -> Bitstring.t -> Bitstring.t Net.Proto.t
(** [run] with the n broadcasts composed by {!Net.Proto.parallel}: identical
    outputs, O(n) rounds, same total communication up to multiplexing
    framing. *)
