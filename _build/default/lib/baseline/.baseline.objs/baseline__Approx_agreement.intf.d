lib/baseline/approx_agreement.mli: Bitstring Net
