lib/baseline/broadcast_ca.mli: Bitstring Net
