lib/baseline/broadcast_ca.ml: Array Ba Bitstring Ctx List Net Proto Wire
