lib/baseline/approx_agreement.ml: Array Bigint Bitstring Ctx List Net Option Proto Wire
