(** Synchronous Approximate Agreement (Dolev–Lynch–Pinter–Stark–Weihl [16]
    style): iterated trimmed averaging. The historical root of the
    honest-range validity requirement and the natural point of comparison
    for CA (Section 1.1).

    Each of [rounds] iterations, every party broadcasts its current value,
    discards the t lowest and t highest of the values received, and moves to
    the midpoint of the surviving range. With n > 3t:

    - {e Validity}: all n−t honest values are received, so at most t received
      entries lie below the smallest honest value (resp. above the largest);
      after trimming, every survivor — hence the midpoint — stays within the
      honest values' range. By induction the output is in the honest inputs'
      hull.
    - {e ε-Agreement}: the honest values' diameter contracts geometrically
      (2× per iteration under crash faults; the byzantine contraction rate is
      validated empirically in the test suite), so O(log (diameter / ε))
      iterations reach ε-agreement — but never exact Agreement, which is what
      separates AA from CA.

    Communication: O(rounds · ℓ · n²); for ε-agreement on ℓ-bit inputs,
    O(ℓ²n²). *)

open Net

let ( let* ) = Proto.( let* )

let run (ctx : Ctx.t) ~bits ~rounds v_in =
  if Bitstring.length v_in <> bits then invalid_arg "Approx_agreement.run: input length";
  if rounds < 0 then invalid_arg "Approx_agreement.run: negative rounds";
  let t = ctx.Ctx.t in
  let decode raw =
    match Wire.decode_full (Wire.r_bits ()) raw with
    | Some v when Bitstring.length v = bits -> Some v
    | Some _ | None -> None
  in
  Proto.with_label "approx_agreement"
    (let rec iterate k v =
       if k = 0 then Proto.return v
       else
         let* inbox = Proto.broadcast (Wire.encode (Wire.w_bits v)) in
         let received =
           Array.to_list inbox
           |> List.filter_map (fun raw -> Option.bind raw decode)
           |> List.sort Bitstring.compare
         in
         let arr = Array.of_list received in
         let count = Array.length arr in
         let v =
           if count <= 2 * t then v (* fewer than n−t values: keep (unreachable) *)
           else begin
             let lo = Bigint.of_bitstring arr.(t) in
             let hi = Bigint.of_bitstring arr.(count - 1 - t) in
             Bigint.to_bitstring_fixed ~bits
               (Bigint.shift_right (Bigint.add lo hi) 1)
           end
         in
         iterate (k - 1) v
     in
     iterate rounds v_in)
