(** The "cryptographic setup" of the authenticated setting: every party holds
    a stateful hash-based signing key and all verification keys are public —
    a PKI. Exactly the assumption under which the paper's conclusion asks
    whether t < n/2 CA with optimal communication is possible. *)

type t = {
  pki : Sigs.Xmss.public array;  (** party index → verification key *)
  signers : Sigs.Xmss.signer array;
      (** party index → signing key; a real deployment hands party i only
          [signers.(i)] — the simulator closure does the same. *)
}

val generate : seed:int -> n:int -> capacity:int -> t
(** [capacity] = signatures available per party for the whole run.
    Deterministic in [seed]. *)

val verify : t -> party:int -> msg:string -> Sigs.Xmss.signature -> bool
(** Total, including on out-of-range party indices. *)
