(** The "cryptographic setup" of the authenticated setting: every party holds
    a (stateful, hash-based) signing key, and all public keys are known to
    everyone — a PKI. This is exactly the assumption under which the paper's
    conclusion asks whether t < n/2 CA with optimal communication is
    possible; the [Auth] protocols explore the classical (communication-
    heavy) end of that question.

    Key generation is deterministic in the seed, so simulator runs remain
    reproducible. The adversary knows corrupted parties' secrets (it runs
    them) but, lacking SHA-256 preimages, cannot forge honest signatures. *)

type t = {
  pki : Sigs.Xmss.public array;  (** party index -> verification key *)
  signers : Sigs.Xmss.signer array;
      (** party index -> signing key; the simulator hands party i's protocol
          instance [signers.(i)] only. *)
}

(** [generate ~seed ~n ~capacity] — [capacity] = signatures available per
    party for the whole run. *)
let generate ~seed ~n ~capacity =
  let master = Net.Prng.create seed in
  let pairs =
    Array.init n (fun i ->
        Sigs.Xmss.generate (Net.Prng.split master ~salt:i) ~capacity)
  in
  { pki = Array.map snd pairs; signers = Array.map fst pairs }

let verify setup ~party ~msg signature =
  party >= 0
  && party < Array.length setup.pki
  && Sigs.Xmss.verify ~public:setup.pki.(party) ~msg signature
