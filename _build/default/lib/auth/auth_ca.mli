(** Convex Agreement in the authenticated setting, t < n/2 — the classical
    (communication-heavy) baseline for the regime the paper's conclusion
    leaves open.

    Every party broadcasts its input via {!Dolev_strong}; the common view's
    (t+1)-th smallest entry is the output — with n > 2t at most t entries
    sit below the smallest honest input and at least t+1 sit at or below the
    largest, so the choice is inside the honest range, and identical views
    give identical outputs (Definition 1 at t < n/2).

    Cost: n Dolev–Strong instances — O(ℓn³ + n³·t·σ) bits, O(n·t) rounds.
    Closing this gap to O(ℓn) at t < n/2 is the open problem. *)

val run :
  Setup.t -> Net.Ctx.t -> bits:int -> Bitstring.t -> Bitstring.t Net.Proto.t
(** Requires a [ctx] satisfying the authenticated bound
    ({!Net.Ctx.make_authenticated}) and [bits]-wide honest inputs. The n
    broadcasts run sequentially: O(n·t) rounds. *)

val run_parallel :
  Setup.t -> Net.Ctx.t -> bits:int -> Bitstring.t -> Bitstring.t Net.Proto.t
(** [run] with the n Dolev–Strong instances composed by
    {!Net.Proto.parallel}: identical outputs, t+1 rounds. *)
