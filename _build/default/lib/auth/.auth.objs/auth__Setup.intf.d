lib/auth/setup.mli: Sigs
