lib/auth/dolev_strong.ml: Array Ctx Hashtbl List Net Proto Setup Sigs Wire
