lib/auth/auth_ca.ml: Bitstring Ctx Dolev_strong List Net Option Proto Setup Wire
