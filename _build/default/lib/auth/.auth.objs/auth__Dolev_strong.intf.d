lib/auth/dolev_strong.mli: Net Setup Sigs
