lib/auth/setup.ml: Array Net Sigs
