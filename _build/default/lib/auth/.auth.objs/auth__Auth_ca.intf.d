lib/auth/auth_ca.mli: Bitstring Net Setup
