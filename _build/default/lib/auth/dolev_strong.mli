(** Dolev–Strong authenticated broadcast: Byzantine Broadcast for {e any}
    t < n given a PKI — the classical signature-chain protocol, used here at
    t < n/2 as the substrate of {!Auth_ca}.

    Guarantees: Termination (t+1 rounds); Agreement (all honest parties
    output the same [Some v] or all output [None]); Validity (an honest
    sender's value is delivered by everyone). [None] (⊥) occurs only for a
    misbehaving sender.

    Communication: O(n²·(ℓ + t·σ)) bits per instance with σ-bit signatures —
    σ ≈ 17 KB with the hash-based {!Sigs.Xmss} scheme; the authenticated
    setting is communication-expensive, which T8 quantifies. *)

val run :
  Setup.t ->
  Net.Ctx.t ->
  instance:int ->
  sender:int ->
  string ->
  string option Net.Proto.t
(** [run setup ctx ~instance ~sender v]: [instance] domain-separates
    signatures when several broadcasts run in one execution (as in
    {!Auth_ca}). Only [sender]'s [v] matters. The [ctx] may be built with
    {!Net.Ctx.make_authenticated}. *)

(** {1 Exposed for adversarial harnesses (signed-equivocation attacks)} *)

val signed_bytes : instance:int -> sender:int -> string -> string
(** The exact bytes a chain link signs. *)

val encode_batch : (string * (int * Sigs.Xmss.signature) list) list -> string
(** Encode a round message: a batch of (value, signature chain) entries. *)
