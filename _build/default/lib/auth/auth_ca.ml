(** Convex Agreement in the authenticated setting, t < n/2 — the classical
    (communication-heavy) answer to the regime the paper's conclusion leaves
    open ("the same question applies to the synchronous model with t < n/2
    corruptions assuming cryptographic setup").

    Construction: every party broadcasts its input with {!Dolev_strong}
    (sound for any t < n), giving all parties an identical multiset of
    claimed inputs; the (t+1)-th smallest entry of the common view is the
    output. With n > 2t the honest values are a majority of the view, so at
    most t entries lie below the smallest honest input and at least t+1
    entries are ≤ the largest — the (t+1)-th smallest is therefore inside
    the honest inputs' range, and identical views give identical outputs.

    This achieves Definition 1 at t < n/2 — at cost O(ℓn³ + n³·t·σ) bits —
    whereas the paper's O(ℓn) protocol needs t < n/3 and no setup. Closing
    that communication gap at t < n/2 is precisely the open problem; this
    module is the baseline any such result would be measured against. *)

open Net

let ( let* ) = Proto.( let* )

let encode_value v = Wire.encode (Wire.w_bits v)

let decode_value ~bits raw =
  match Wire.decode_full (Wire.r_bits ()) raw with
  | Some v when Bitstring.length v = bits -> Some v
  | Some _ | None -> None

(** [run setup ctx ~bits v]: requires a [ctx] built for the authenticated
    bound ({!Net.Ctx.make_authenticated}, t < n/2; contexts with t < n/3
    work a fortiori) and the {!Setup} whose PKI all parties share. All
    honest parties must join with [bits]-wide values. *)
let choose ~bits ~t ~fallback view =
  let values =
    List.sort Bitstring.compare
      (List.filter_map (fun d -> Option.bind d (decode_value ~bits)) view)
  in
  match List.nth_opt values t with
  | Some v -> v
  | None ->
      (* Fewer than t+1 deliveries is impossible with ≤ t corruptions
         (all n−t ≥ t+1 honest broadcasts deliver); stay total. *)
      fallback

let run (setup : Setup.t) (ctx : Ctx.t) ~bits v_in =
  if Bitstring.length v_in <> bits then invalid_arg "Auth_ca.run: input length";
  let n = ctx.Ctx.n and t = ctx.Ctx.t in
  Proto.with_label "auth_ca"
    (let rec gather sender acc =
       if sender = n then Proto.return (List.rev acc)
       else
         let* delivered =
           Dolev_strong.run setup ctx ~instance:sender ~sender (encode_value v_in)
         in
         gather (sender + 1) (delivered :: acc)
     in
     let* view = gather 0 [] in
     Proto.return (choose ~bits ~t ~fallback:v_in view))

(** The n Dolev–Strong instances composed by {!Net.Proto.parallel}: t+1
    rounds total instead of n·(t+1). Instance tags keep the signature
    domains separate; the shared stateful signer interleaves safely (each
    signature still uses a fresh one-time key). *)
let run_parallel (setup : Setup.t) (ctx : Ctx.t) ~bits v_in =
  if Bitstring.length v_in <> bits then invalid_arg "Auth_ca.run_parallel: input length";
  let n = ctx.Ctx.n and t = ctx.Ctx.t in
  Proto.with_label "auth_ca"
    (let* view =
       Proto.parallel
         (List.init n (fun sender ->
              Dolev_strong.run setup ctx ~instance:sender ~sender (encode_value v_in)))
     in
     Proto.return (choose ~bits ~t ~fallback:v_in view))
