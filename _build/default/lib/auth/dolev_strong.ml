(** Dolev–Strong authenticated broadcast: Byzantine Broadcast for {e any}
    t < n given a PKI — the classical signature-chain protocol, here used at
    t < n/2 as the substrate for {!Auth_ca} (the paper's open problem about
    the authenticated setting).

    Round 1: the sender signs its value and sends it to all. A party that,
    in round r, receives a value carrying valid signatures from r distinct
    parties — the sender first — {e accepts} it and relays it with its own
    signature appended in round r+1. After round t+1, a party that accepted
    exactly one value outputs it; otherwise (an equivocating sender) it
    outputs ⊥. A value accepted by an honest party at round t+1 carries t+1
    signatures, hence one from an honest party who already relayed it — so
    honest accepted-sets coincide.

    Each party tracks and relays at most two values (two accepted values
    already force the ⊥ outcome, a standard optimization that bounds
    communication at O(n³) signatures per instance).

    Complexity: t+1 rounds; O(n²·(ℓ + t·σ)) bits for σ-bit signatures
    (σ ≈ 17 KB with the hash-based {!Xmss} scheme — authenticated protocols
    are communication-expensive, which is the point of the comparison). *)

open Net

let ( let* ) = Proto.( let* )

(* Signed bytes: domain tag, instance, sender, value. Signatures never
   migrate across instances or senders. *)
let signed_bytes ~instance ~sender value =
  Wire.(encode (seq [ w_fixed "DS1"; w_varint instance; w_varint sender; w_bytes value ]))

let encode_link (party, signature) =
  Wire.(encode (w_pair w_varint w_bytes (party, Sigs.Xmss.encode_signature signature)))

let decode_link raw =
  let open Wire in
  decode_full
    (fun cur ->
      let* party = r_varint cur in
      let* sig_raw = r_bytes () cur in
      let* signature = Sigs.Xmss.decode_signature sig_raw in
      Some (party, signature))
    raw

let encode_batch batch =
  Wire.(
    encode
      (w_list (w_pair w_bytes (w_list w_bytes))
         (List.map
            (fun (value, chain) -> (value, List.map encode_link chain))
            batch)))

let decode_batch ~max_chain raw =
  let open Wire in
  match decode_full (r_list ~max:4 (r_pair (r_bytes ()) (r_list ~max:max_chain (r_bytes ())))) raw with
  | None -> None
  | Some entries ->
      let decode_entry (value, links) =
        let links = List.filter_map decode_link links in
        Some (value, links)
      in
      Some (List.filter_map decode_entry entries)

(** A chain is valid for acceptance in round [r] iff it has >= r links from
    distinct parties, the first being [sender], each a valid signature on
    the instance-tagged value. Returns the chain trimmed to exactly [round]
    links: relays stay minimal, so a byzantine-padded chain can never push
    an honest relay past the decoder's length bound. *)
let chain_trim setup ~instance ~sender ~round value chain =
  let msg = signed_bytes ~instance ~sender value in
  let rec go seen count kept = function
    | _ when count = round -> Some (List.rev kept)
    | [] -> None
    | ((party, signature) as link) :: rest ->
        if List.mem party seen then None
        else if not (Setup.verify setup ~party ~msg signature) then None
        else go (party :: seen) (count + 1) (link :: kept) rest
  in
  match chain with
  | (first, _) :: _ when first = sender -> go [] 0 [] chain
  | _ -> None

(** [run setup ctx ~instance ~sender v]: broadcast with t+1 rounds. Returns
    [Some value] when the (unique) accepted value is decided, [None] for ⊥.
    The [ctx] may be built with {!Net.Ctx.make_authenticated} (t < n/2) —
    the protocol itself is sound for any t < n. *)
let run (setup : Setup.t) (ctx : Ctx.t) ~instance ~sender v =
  if sender < 0 || sender >= ctx.Ctx.n then invalid_arg "Dolev_strong.run: bad sender";
  let t = ctx.Ctx.t in
  let signer = setup.Setup.signers.(ctx.Ctx.me) in
  let accepted : (string, unit) Hashtbl.t = Hashtbl.create 2 in
  let sign value =
    (ctx.Ctx.me, Sigs.Xmss.sign signer (signed_bytes ~instance ~sender value))
  in
  Proto.with_label "dolev_strong"
    (let rec rounds r ~outbox =
       if r > t + 1 then
         Proto.return
           (match Hashtbl.fold (fun v () acc -> v :: acc) accepted [] with
           | [ value ] -> Some value
           | _ -> None)
       else
         let* inbox =
           match outbox with
           | [] -> Proto.receive_only ()
           | batch -> Proto.broadcast (encode_batch batch)
         in
         (* Collect newly accepted values from this round's messages. *)
         let fresh = ref [] in
         Array.iter
           (function
             | None -> ()
             | Some raw -> (
                 match decode_batch ~max_chain:(t + 2) raw with
                 | None -> ()
                 | Some entries ->
                     List.iter
                       (fun (value, chain) ->
                         if
                           Hashtbl.length accepted < 2
                           && not (Hashtbl.mem accepted value)
                         then
                           match
                             chain_trim setup ~instance ~sender ~round:r value chain
                           with
                           | None -> ()
                           | Some trimmed ->
                               Hashtbl.add accepted value ();
                               (* Relay with own signature appended. *)
                               fresh := (value, trimmed @ [ sign value ]) :: !fresh)
                       entries))
           inbox;
         rounds (r + 1) ~outbox:!fresh
     in
     let initial =
       if ctx.Ctx.me = sender then begin
         Hashtbl.add accepted v ();
         [ (v, [ sign v ]) ]
       end
       else []
     in
     rounds 1 ~outbox:initial)
