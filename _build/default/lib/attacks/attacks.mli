(** Protocol-aware Byzantine strategies.

    The generic strategies in {!Net.Adversary} corrupt bytes blindly; the
    attacks here {e parse} the corrupted parties' prescribed traffic to
    recognize protocol phases (votes, Reed–Solomon tuples, bitstring
    windows, king rounds) and substitute semantically well-formed lies. Each
    targets one proof obligation of the paper; the test-suite and the
    resilience experiment run every CA protocol against all of them. *)

val vote_stuffer : payload:string -> Net.Adversary.t
(** Vote — alone and unanimously — for a fabricated value whenever a Π_BA+
    vote is expected. Targets Intrusion Tolerance (Definition 3): t voters
    can never reach the n−t threshold. *)

val tuple_forger : seed:int -> Net.Adversary.t
(** Replace the codeword inside every RS distribution tuple with random
    bytes, keeping the (now mismatched) Merkle witness. Targets Lemma 6:
    honest receivers must discard every forged tuple. *)

val index_confuser : Net.Adversary.t
(** Relabel distribution tuples with a shifted index — a valid codeword
    under the wrong party index; the witness binds the index, so
    verification must fail. *)

val window_fabricator : Net.Adversary.t
(** Send the complement of every prescribed bitstring window — well-formed
    values no honest party holds. Targets FINDPREFIX Property (C) via
    Π_ℓBA+'s Intrusion Tolerance. *)

val prefix_saboteur : Net.Adversary.t
(** Equivocate on windows (true to one half, complement to the other) to
    starve Π_BA+ of quorums and force the ⊥ path of every FINDPREFIX
    iteration. CA must still hold; the ⊥ path skips the distribution step,
    so the saboteur cannot inflate honest traffic. *)

val king_usurper : payload:string -> Net.Adversary.t
(** Broadcast [payload] in every round shaped like a phase-king king round.
    Targets the king-adoption fallback. *)

val rotating : seed:int -> payload:string -> Net.Adversary.t
(** Round-robin through all targeted attacks — a protocol-shaped chaos
    monkey for soak tests. *)

val all : seed:int -> payload:string -> Net.Adversary.t list
