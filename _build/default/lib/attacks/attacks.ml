(** Protocol-aware Byzantine strategies.

    The generic strategies in {!Net.Adversary} corrupt bytes blindly; the
    attacks here {e parse} the corrupted parties' prescribed traffic to
    recognize protocol phases (votes, Reed–Solomon tuples, bitstring windows,
    king rounds) and substitute semantically well-formed lies. Each attack
    targets a specific proof obligation of the paper:

    - {!vote_stuffer} attacks Π_BA+'s Intrusion Tolerance (Definition 3),
    - {!tuple_forger} / {!index_confuser} attack Π_ℓBA+'s authenticated
      distribution (Lemma 6),
    - {!window_fabricator} attacks FINDPREFIX's Property (C) (Lemma 8),
    - {!prefix_saboteur} attacks liveness/cost: forces the ⊥ path of every
      Π_ℓBA+ iteration,
    - {!king_usurper} attacks the phase-king fallback adoption.

    The test-suite and the resilience experiment run every CA protocol
    against all of them; with ≤ t < n/3 corruptions none may violate
    Definition 1. *)

open Net

(* Recognizers for the wire shapes used by the protocol stack. They only
   need to be sound enough for an attacker: misclassification merely makes
   the attack weaker, never incorrect. *)

let is_vote raw =
  (* Π_BA+ vote: list of 0..2 byte-values (each 32 bytes in real runs). *)
  match Wire.decode_full (Wire.r_list ~max:3 (Wire.r_bytes ())) raw with
  | Some values -> List.length values <= 2
  | None -> false

let parse_tuple raw =
  let open Wire in
  decode_full
    (fun cur ->
      let* index = r_varint cur in
      let* codeword = r_bytes () cur in
      let* witness = r_bytes () cur in
      let* w = Merkle.decode_witness witness in
      Some (index, codeword, w))
    raw

(** Always vote — alone and unanimously — for a fabricated value, whenever
    the protocol expects a vote from us. Intrusion Tolerance must hold: with
    only t byzantine voters the fabricated value can never reach the n−t vote
    threshold. *)
let vote_stuffer ~payload =
  let stuffed = Wire.encode (Wire.w_list Wire.w_bytes [ payload ]) in
  Adversary.make ~name:"vote-stuffer" (fun view ~sender ~recipient ->
      match Adversary.prescribed_msg view ~sender ~recipient with
      | Some raw when is_vote raw -> Some stuffed
      | other -> other)

(** Replace the codeword inside every Reed–Solomon distribution tuple with
    random bytes of the same length, keeping the (now mismatched) Merkle
    witness. Honest receivers must detect and discard every forged tuple —
    this is exactly the adversary Lemma 6 argues about. *)
let tuple_forger ~seed =
  let rng = Prng.create seed in
  Adversary.make ~name:"tuple-forger" (fun view ~sender ~recipient ->
      match Adversary.prescribed_msg view ~sender ~recipient with
      | Some raw as msg -> (
          match parse_tuple raw with
          | None -> msg
          | Some (index, codeword, witness) ->
              Some
                (Wire.encode
                   (Wire.seq
                      [
                        Wire.w_varint index;
                        Wire.w_bytes (Prng.bytes rng (String.length codeword));
                        Wire.w_bytes (Merkle.encode_witness witness);
                      ])))
      | None -> None)

(** Relabel every distribution tuple with a shifted index (a valid codeword
    presented under the wrong party index) — the witness binds the index, so
    verification must fail. *)
let index_confuser =
  Adversary.make ~name:"index-confuser" (fun view ~sender ~recipient ->
      match Adversary.prescribed_msg view ~sender ~recipient with
      | Some raw as msg -> (
          match parse_tuple raw with
          | None -> msg
          | Some (index, codeword, witness) ->
              Some
                (Wire.encode
                   (Wire.seq
                      [
                        Wire.w_varint ((index + 1) mod view.Adversary.n);
                        Wire.w_bytes codeword;
                        Wire.w_bytes (Merkle.encode_witness witness);
                      ])))
      | None -> None)

(** Whenever the protocol would send a bitstring window (FINDPREFIX inputs,
    HIGHCOSTCA values), send the complement instead — a well-formed value
    that no honest party holds. Π_ℓBA+ must never adopt it (Intrusion
    Tolerance) and HIGHCOSTCA's interval trimming must exclude it. *)
let window_fabricator =
  Adversary.make ~name:"window-fabricator" (fun view ~sender ~recipient ->
      match Adversary.prescribed_msg view ~sender ~recipient with
      | Some raw as msg -> (
          match Wire.decode_full (Wire.r_bits ()) raw with
          | None -> msg
          | Some bits ->
              let flipped =
                Bitstring.init (Bitstring.length bits) (fun i ->
                    not (Bitstring.get bits i))
              in
              Some (Wire.encode (Wire.w_bits flipped)))
      | None -> None)

(** Equivocate on windows: send the true window to low-index recipients and
    the complement to high-index ones — the strongest way to starve Π_BA+ of
    a quorum and force the ⊥ path of every FINDPREFIX iteration. CA must
    still hold (the search simply terminates with a shorter prefix); the
    interesting measurement is the communication impact, which is bounded
    because ⊥ iterations skip the distribution step. *)
let prefix_saboteur =
  Adversary.make ~name:"prefix-saboteur" (fun view ~sender ~recipient ->
      match Adversary.prescribed_msg view ~sender ~recipient with
      | Some raw as msg when recipient >= view.Adversary.n / 2 -> (
          match Wire.decode_full (Wire.r_bits ()) raw with
          | None -> msg
          | Some bits ->
              let flipped =
                Bitstring.init (Bitstring.length bits) (fun i ->
                    not (Bitstring.get bits i))
              in
              Some (Wire.encode (Wire.w_bits flipped)))
      | other -> other)

(** In every round that looks like a phase-king king round (the corrupted
    party is the only prescribed sender among the corrupted set and the round
    index is a multiple of 3), broadcast [payload] — the strongest attack on
    the king-adoption fallback. Against Π_BA this may only steer the output
    when honest parties disagree; against the CA protocols, which feed the
    king rounds only agreed-upon or validity-checked data, Definition 1 must
    survive. *)
let king_usurper ~payload =
  Adversary.make ~name:"king-usurper" (fun view ~sender ~recipient ->
      if view.Adversary.round mod 3 = 0 then Some payload
      else Adversary.prescribed_msg view ~sender ~recipient)

(** Composite: rotate through the targeted attacks round-robin per round —
    a chaotic but protocol-shaped adversary for soak tests. *)
let rotating ~seed ~payload =
  let menu =
    [|
      vote_stuffer ~payload;
      tuple_forger ~seed;
      index_confuser;
      window_fabricator;
      prefix_saboteur;
      king_usurper ~payload;
    |]
  in
  Adversary.make ~name:"rotating-attacks" (fun view ~sender ~recipient ->
      let a = menu.(view.Adversary.round mod Array.length menu) in
      a.Adversary.act view ~sender ~recipient)

let all ~seed ~payload =
  [
    vote_stuffer ~payload;
    tuple_forger ~seed;
    index_confuser;
    window_fabricator;
    prefix_saboteur;
    king_usurper ~payload;
    rotating ~seed ~payload;
  ]
