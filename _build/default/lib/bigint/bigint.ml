(* Sign-magnitude arbitrary precision integers over 30-bit limbs.

   Invariants: [mag] has no trailing (most-significant) zero limbs; the empty
   array is zero; [neg] is false for zero. Limb base 2^30 keeps every
   intermediate product within 62 bits, so plain [int] arithmetic is exact on
   64-bit platforms. *)

let limb_bits = 30
let base = 1 lsl limb_bits
let limb_mask = base - 1

type t = { neg : bool; mag : int array }

let normalize_mag mag =
  let n = ref (Array.length mag) in
  while !n > 0 && mag.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length mag then mag else Array.sub mag 0 !n

let make neg mag =
  let mag = normalize_mag mag in
  if Array.length mag = 0 then { neg = false; mag } else { neg; mag }

let zero = { neg = false; mag = [||] }
let is_zero a = Array.length a.mag = 0
let sign a = if is_zero a then 0 else if a.neg then -1 else 1

let of_int v =
  let neg = v < 0 in
  (* min_int's negation overflows; handle via successive limbs on the
     absolute value computed limb by limb. *)
  let rec limbs acc v =
    if v = 0 then List.rev acc
    else limbs ((abs (v mod base)) :: acc) (v / base)
  in
  make neg (Array.of_list (limbs [] v))

let one = of_int 1

(* Magnitude primitives ----------------------------------------------------- *)

let mag_compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

let mag_add a b =
  let la = Array.length a and lb = Array.length b in
  let n = Stdlib.max la lb in
  let out = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    out.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  out.(n) <- !carry;
  out

(* Precondition: a >= b. *)
let mag_sub a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      out.(i) <- d + base;
      borrow := 1
    end
    else begin
      out.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  out

let mag_mul_school a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let out = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        (* ai*bj <= (2^30-1)^2 < 2^60; plus out and carry stays < 2^62. *)
        let s = out.(i + j) + (ai * b.(j)) + !carry in
        out.(i + j) <- s land limb_mask;
        carry := s lsr limb_bits
      done;
      out.(i + lb) <- out.(i + lb) + !carry
    done;
    out
  end

(* Karatsuba above this limb count (~2^10 bits); schoolbook below. *)
let karatsuba_threshold = 32

(* [mag_shift_limbs m k] = m * B^k, for normalized m. *)
let mag_shift_limbs m k =
  if Array.length m = 0 then m
  else Array.append (Array.make k 0) m

let rec mag_mul a b =
  let la = Array.length a and lb = Array.length b in
  if min la lb < karatsuba_threshold then mag_mul_school a b
  else begin
    (* x = x1*B^m + x0, y = y1*B^m + y0;
       xy = z2*B^2m + (z1 - z2 - z0)*B^m + z0 with
       z0 = x0*y0, z2 = x1*y1, z1 = (x0+x1)(y0+y1). *)
    let m = max la lb / 2 in
    let split x =
      let lx = Array.length x in
      if lx <= m then (x, [||])
      else (normalize_mag (Array.sub x 0 m), Array.sub x m (lx - m))
    in
    let x0, x1 = split a and y0, y1 = split b in
    let z0 = mag_mul x0 y0 in
    let z2 = mag_mul x1 y1 in
    let z1 = mag_mul (normalize_mag (mag_add x0 x1)) (normalize_mag (mag_add y0 y1)) in
    let middle =
      normalize_mag (mag_sub (normalize_mag z1) (normalize_mag (mag_add z0 z2)))
    in
    normalize_mag
      (mag_add
         (mag_shift_limbs (normalize_mag z2) (2 * m))
         (mag_add (mag_shift_limbs middle m) z0))
  end

(* Signed operations -------------------------------------------------------- *)

let neg a = if is_zero a then a else { a with neg = not a.neg }
let abs a = { a with neg = false }

let add a b =
  if a.neg = b.neg then make a.neg (mag_add a.mag b.mag)
  else
    let c = mag_compare a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then make a.neg (mag_sub a.mag b.mag)
    else make b.neg (mag_sub b.mag a.mag)

let sub a b = add a (neg b)
let mul a b = make (a.neg <> b.neg) (mag_mul a.mag b.mag)

let compare a b =
  match (sign a, sign b) with
  | sa, sb when sa <> sb -> Stdlib.compare sa sb
  | 0, _ -> 0
  | s, _ ->
      let c = mag_compare a.mag b.mag in
      if s > 0 then c else -c

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

(* Bit-level ----------------------------------------------------------------- *)

let mag_bit_length mag =
  let n = Array.length mag in
  if n = 0 then 0
  else
    let top = mag.(n - 1) in
    let rec width acc v = if v = 0 then acc else width (acc + 1) (v lsr 1) in
    ((n - 1) * limb_bits) + width 0 top

let bit_length a = Stdlib.max 1 (mag_bit_length a.mag)

let get_bit mag i =
  (* i is 0-indexed from the least significant bit. *)
  let limb = i / limb_bits in
  if limb >= Array.length mag then false
  else mag.(limb) land (1 lsl (i mod limb_bits)) <> 0

let shift_left a k =
  if k < 0 then invalid_arg "Bigint.shift_left";
  if is_zero a || k = 0 then a
  else begin
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let la = Array.length a.mag in
    let out = Array.make (la + limbs + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.mag.(i) lsl bits in
      out.(i + limbs) <- out.(i + limbs) lor (v land limb_mask);
      out.(i + limbs + 1) <- v lsr limb_bits
    done;
    make a.neg out
  end

let shift_right a k =
  if k < 0 then invalid_arg "Bigint.shift_right";
  if is_zero a || k = 0 then a
  else begin
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let la = Array.length a.mag in
    if limbs >= la then zero
    else begin
      let n = la - limbs in
      let out = Array.make n 0 in
      for i = 0 to n - 1 do
        let lo = a.mag.(i + limbs) lsr bits in
        let hi =
          if bits = 0 || i + limbs + 1 >= la then 0
          else (a.mag.(i + limbs + 1) lsl (limb_bits - bits)) land limb_mask
        in
        out.(i) <- lo lor hi
      done;
      make a.neg out
    end
  end

let pow2 k =
  if k < 0 then invalid_arg "Bigint.pow2";
  shift_left one k

(* Division: schoolbook shift-and-subtract on magnitudes. Sufficient for the
   library's uses (decimal I/O and workload generation). *)
let mag_divmod a b =
  if Array.length b = 0 then raise Division_by_zero;
  if mag_compare a b < 0 then ([||], a)
  else begin
    let bits_a = mag_bit_length a in
    let q = ref zero and r = ref zero in
    for i = bits_a - 1 downto 0 do
      r := shift_left !r 1;
      if get_bit a i then r := add !r one;
      if mag_compare !r.mag b >= 0 then begin
        r := { neg = false; mag = normalize_mag (mag_sub !r.mag b) };
        q := add (shift_left !q 1) one
      end
      else q := shift_left !q 1
    done;
    (!q.mag, !r.mag)
  end

let divmod a b =
  let q_mag, r_mag = mag_divmod a.mag b.mag in
  (make (a.neg <> b.neg) q_mag, make a.neg r_mag)

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)
let succ a = add a one
let pred a = sub a one

(* Decimal I/O ---------------------------------------------------------------
   Chunked by 10^9 to keep the number of bignum operations low. *)

let chunk = 1_000_000_000
let chunk_big_mag = (of_int chunk).mag

let of_string s =
  let n = String.length s in
  if n = 0 then invalid_arg "Bigint.of_string: empty";
  let negv, start = match s.[0] with '-' -> (true, 1) | '+' -> (false, 1) | _ -> (false, 0) in
  if start >= n then invalid_arg "Bigint.of_string: no digits";
  let acc = ref zero in
  let i = ref start in
  while !i < n do
    let stop = Stdlib.min n (!i + 9) in
    let width = stop - !i in
    let part = ref 0 in
    for j = !i to stop - 1 do
      match s.[j] with
      | '0' .. '9' -> part := (!part * 10) + (Char.code s.[j] - Char.code '0')
      | _ -> invalid_arg "Bigint.of_string: bad digit"
    done;
    let scale = int_of_float (10. ** float_of_int width) in
    acc := add (mul !acc (of_int scale)) (of_int !part);
    i := stop
  done;
  if negv then neg !acc else !acc

let to_string a =
  if is_zero a then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec go mag acc =
      if Array.length mag = 0 then acc
      else
        let q, r = mag_divmod mag chunk_big_mag in
        let r_int =
          Array.to_list r
          |> List.rev
          |> List.fold_left (fun acc limb -> (acc lsl limb_bits) lor limb) 0
        in
        go q (r_int :: acc)
    in
    (match go a.mag [] with
    | [] -> Buffer.add_char buf '0'
    | first :: rest ->
        if a.neg then Buffer.add_char buf '-';
        Buffer.add_string buf (string_of_int first);
        List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
    Buffer.contents buf
  end

let pp fmt a = Format.pp_print_string fmt (to_string a)

let to_int_opt a =
  if mag_bit_length a.mag > 62 then None
  else begin
    let v =
      Array.to_list a.mag
      |> List.rev
      |> List.fold_left (fun acc limb -> (acc lsl limb_bits) lor limb) 0
    in
    Some (if a.neg then -v else v)
  end

let to_bitstring a =
  let bits = bit_length a in
  Bitstring.init bits (fun i -> get_bit a.mag (bits - i))

let to_bitstring_fixed ~bits a =
  if mag_bit_length a.mag > bits then invalid_arg "Bigint.to_bitstring_fixed";
  Bitstring.init bits (fun i -> get_bit a.mag (bits - i))

let of_bitstring b =
  let len = Bitstring.length b in
  let acc = ref zero in
  let i = ref 1 in
  while !i <= len do
    (* Consume up to 30 bits at a time. *)
    let stop = Stdlib.min len (!i + limb_bits - 1) in
    let width = stop - !i + 1 in
    let part = ref 0 in
    for j = !i to stop do
      part := (!part lsl 1) lor (if Bitstring.get b j then 1 else 0)
    done;
    acc := add (shift_left !acc width) (of_int !part);
    i := stop + 1
  done;
  !acc

let rec gcd a b =
  let a = abs a and b = abs b in
  if is_zero b then a
  else gcd b (rem a b)

(* Hexadecimal I/O ----------------------------------------------------------- *)

let to_hex a =
  if is_zero a then "0"
  else begin
    let bits = mag_bit_length a.mag in
    let nibbles = (bits + 3) / 4 in
    let buf = Buffer.create (nibbles + 1) in
    if a.neg then Buffer.add_char buf '-';
    for i = nibbles - 1 downto 0 do
      let nib =
        ((if get_bit a.mag ((4 * i) + 3) then 8 else 0)
        lor (if get_bit a.mag ((4 * i) + 2) then 4 else 0)
        lor (if get_bit a.mag ((4 * i) + 1) then 2 else 0)
        lor if get_bit a.mag (4 * i) then 1 else 0)
      in
      Buffer.add_char buf "0123456789abcdef".[nib]
    done;
    Buffer.contents buf
  end

let of_hex s =
  let n = String.length s in
  if n = 0 then invalid_arg "Bigint.of_hex: empty";
  let negv, start = match s.[0] with '-' -> (true, 1) | '+' -> (false, 1) | _ -> (false, 0) in
  if start >= n then invalid_arg "Bigint.of_hex: no digits";
  let acc = ref zero in
  for i = start to n - 1 do
    let nib =
      match s.[i] with
      | '0' .. '9' as c -> Char.code c - Char.code '0'
      | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
      | _ -> invalid_arg "Bigint.of_hex: bad digit"
    in
    acc := add (shift_left !acc 4) (of_int nib)
  done;
  if negv then neg !acc else !acc

let of_sign_magnitude ~negative m =
  if sign m < 0 then invalid_arg "Bigint.of_sign_magnitude";
  if negative then neg m else m
