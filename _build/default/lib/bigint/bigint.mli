(** Arbitrary-precision integers, built from scratch (the sealed toolchain has
    no zarith). Used as the value model for the CA protocols' inputs in ℤ and
    by the workload generators (ℓ-bit values with ℓ in the thousands).

    Representation: sign + magnitude; magnitudes are little-endian arrays of
    30-bit limbs. All values are normalized (no leading zero limbs; zero is
    positive). *)

type t

(** {1 Constants and construction} *)

val zero : t
val one : t
val of_int : int -> t

val of_string : string -> t
(** Parses an optionally-signed decimal string, e.g. ["-1234"].
    Raises [Invalid_argument] on malformed input. *)

val to_string : t -> string
(** Decimal rendering. *)

val pp : Format.formatter -> t -> unit

(** {1 Predicates and comparison} *)

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val min : t -> t -> t
val max : t -> t -> t

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r] and [0 <= |r| < |b|], [r]
    carrying the sign of [a] (truncated division). Raises [Division_by_zero]. *)

val div : t -> t -> t
val rem : t -> t -> t

val shift_left : t -> int -> t
val shift_right : t -> int -> t
(** Arithmetic shift on the magnitude (towards zero for negatives). *)

val pow2 : int -> t
(** [pow2 k] is 2^k, [k >= 0]. *)

val pred : t -> t
val succ : t -> t

val gcd : t -> t -> t
(** Greatest common divisor of the absolute values; [gcd 0 0 = 0]. *)

(** {1 Hexadecimal I/O} *)

val to_hex : t -> string
(** Lowercase, no leading zeros, ["-"]-prefixed when negative. *)

val of_hex : string -> t
(** Parses an optionally-signed hexadecimal string (["-dead"; "0Ff"]).
    Raises [Invalid_argument] on malformed input. *)


(** {1 Bit-level views (bridge to the protocol's bitstrings)} *)

val bit_length : t -> int
(** Number of bits of the magnitude's minimal representation (paper's
    [|BITS(v)|]); [bit_length zero = 1] matching [Bitstring.of_int 0]. *)

val to_int_opt : t -> int option

val to_bitstring : t -> Bitstring.t
(** Minimal binary representation of the magnitude (BITS(|v|)). *)

val to_bitstring_fixed : bits:int -> t -> Bitstring.t
(** BITS_bits(|v|). Raises [Invalid_argument] if the magnitude does not fit. *)

val of_bitstring : Bitstring.t -> t
(** VAL — always non-negative. *)

val of_sign_magnitude : negative:bool -> t -> t
(** Applies a sign to a non-negative magnitude (the paper's
    [(-1)^SIGN · v^ℕ]). Raises [Invalid_argument] on a negative magnitude. *)
