(** SHA-256 (FIPS 180-4), implemented from scratch — the paper's
    collision-resistant hash function [H_κ] with security parameter κ = 256.

    The toolchain ships no cryptography package; this pure-OCaml
    implementation is validated against the NIST test vectors in the test
    suite. It is used for Merkle-tree accumulators (Section 7) and nowhere
    needs to be fast — protocol messages are small. *)

val digest_size : int
(** 32 bytes (κ / 8). *)

val digest : string -> string
(** [digest msg] is the 32-byte (binary) SHA-256 digest of [msg]. *)

val hex : string -> string
(** [hex msg] is the lowercase hex rendering of [digest msg]. *)

val to_hex : string -> string
(** Hex-encodes an already-computed binary digest (or any string). *)

type ctx
(** Streaming interface. *)

val init : unit -> ctx
val feed : ctx -> string -> unit
val finalize : ctx -> string
(** May be called once; the context must not be reused afterwards. *)
