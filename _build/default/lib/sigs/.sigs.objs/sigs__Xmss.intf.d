lib/sigs/xmss.mli: Net
