lib/sigs/lamport.ml: Array Buffer Char Net Sha256 String
