lib/sigs/xmss.ml: Array Lamport Merkle Wire
