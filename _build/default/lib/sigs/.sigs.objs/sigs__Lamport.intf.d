lib/sigs/lamport.mli: Net
