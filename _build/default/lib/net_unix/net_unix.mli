(** Real-transport execution of protocol values.

    The protocols in this repository are transport-agnostic values of type
    ['a Net.Proto.t]. {!Net.Sim} executes them in a deterministic lock-step
    simulator (with adversaries and exact bit accounting); this module
    executes the {e same values} over an actual full mesh of Unix socket
    pairs, one POSIX thread per party, with framed length-prefixed messages —
    the shape of a production deployment.

    Scope: honest executions. The synchronous-round alignment comes from the
    framing (every party writes exactly one frame per peer per round, a
    receiver thread per connection drains frames into a mailbox, so rounds
    align and writers never deadlock); Byzantine behaviour and rushing
    adversaries are a simulator concern. All protocols in this repository
    terminate in the same round at every honest party, which is the
    precondition for a clean shutdown.

    Determinism: protocols are deterministic, so a [Net_unix.run] and a
    [Net.Sim.run] of the same protocol on the same inputs produce identical
    outputs — asserted by the cross-backend tests. *)

type stats = {
  bytes_sent : int;  (** Total payload bytes written by all parties. *)
  frames_sent : int;  (** Total frames, including explicit empty frames. *)
  rounds : int;  (** Maximum round count over parties. *)
}

val run :
  ?t:int -> n:int -> (Net.Ctx.t -> 'a Net.Proto.t) -> 'a array * stats
(** [run ~n protocol] connects [n] parties over a socket mesh, runs
    [protocol ctx] on a thread per party, and returns their outputs in party
    order. [t] (default [(n-1)/3]) is the resilience parameter handed to the
    contexts; no party actually misbehaves. Raises whatever a party's
    protocol raises, and [Failure] on transport-level protocol violations
    (frame from a wrong round, truncated stream). *)
