(* One thread per party; one socketpair per unordered party pair; one
   receiver thread per connection end, draining frames into a mailbox.

   Because receivers always drain, a party's sends can only block on a peer
   whose receiver is alive, never on application backpressure — the classic
   all-write-then-all-read deadlock cannot occur.

   Wire format per frame:  round:u32  tag:u8(0|1)  [len:u32 payload]  — all
   big-endian. An explicit tag-0 frame is sent even when the protocol
   prescribes silence, which is what keeps rounds aligned without a barrier. *)

type stats = { bytes_sent : int; frames_sent : int; rounds : int }

(* ---- thread-safe mailbox of incoming frames, in round order ------------- *)

module Mailbox = struct
  type t = {
    mutex : Mutex.t;
    nonempty : Condition.t;
    queue : (int * string option) Queue.t;
    mutable closed : bool;
  }

  let create () =
    {
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      closed = false;
    }

  let push box frame =
    Mutex.lock box.mutex;
    Queue.push frame box.queue;
    Condition.signal box.nonempty;
    Mutex.unlock box.mutex

  let close box =
    Mutex.lock box.mutex;
    box.closed <- true;
    Condition.signal box.nonempty;
    Mutex.unlock box.mutex

  (* Blocking pop; checks the frame belongs to [round]. *)
  let take box ~round =
    Mutex.lock box.mutex;
    let rec wait () =
      if not (Queue.is_empty box.queue) then begin
        let r, payload = Queue.pop box.queue in
        Mutex.unlock box.mutex;
        if r <> round then
          failwith (Printf.sprintf "Net_unix: expected round %d, got %d" round r);
        payload
      end
      else if box.closed then begin
        Mutex.unlock box.mutex;
        failwith "Net_unix: connection closed mid-round"
      end
      else begin
        Condition.wait box.nonempty box.mutex;
        wait ()
      end
    in
    wait ()
end

(* ---- framing ------------------------------------------------------------- *)

let write_u32 oc v =
  output_char oc (Char.chr ((v lsr 24) land 0xff));
  output_char oc (Char.chr ((v lsr 16) land 0xff));
  output_char oc (Char.chr ((v lsr 8) land 0xff));
  output_char oc (Char.chr (v land 0xff))

let read_u32 ic =
  let a = input_byte ic in
  let b = input_byte ic in
  let c = input_byte ic in
  let d = input_byte ic in
  (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let write_frame oc ~round payload =
  write_u32 oc round;
  (match payload with
  | None -> output_char oc '\000'
  | Some body ->
      output_char oc '\001';
      write_u32 oc (String.length body);
      output_string oc body);
  flush oc

let read_frame ic =
  let round = read_u32 ic in
  match input_byte ic with
  | 0 -> (round, None)
  | 1 ->
      let len = read_u32 ic in
      let body = really_input_string ic len in
      (round, Some body)
  | tag -> failwith (Printf.sprintf "Net_unix: bad frame tag %d" tag)

(* ---- the runner ----------------------------------------------------------- *)

let run ?t ~n protocol =
  if n < 1 then invalid_arg "Net_unix.run: n < 1";
  (* A peer that failed has shut its sockets down; writing to it must raise
     (EPIPE -> Sys_error) in the writing party, not kill the process. *)
  (if Sys.os_type = "Unix" then
     try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let t = match t with Some t -> t | None -> (n - 1) / 3 in
  (* Socket mesh: fds.(i).(j) is party i's endpoint towards party j. *)
  let fds = Array.make_matrix n n Unix.stdin in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      fds.(i).(j) <- a;
      fds.(j).(i) <- b
    done
  done;
  let mailboxes = Array.init n (fun _ -> Array.init n (fun _ -> Mailbox.create ())) in
  let bytes_sent = Atomic.make 0 in
  let frames_sent = Atomic.make 0 in
  (* Receiver threads: one per directed connection. *)
  let receivers = ref [] in
  for me = 0 to n - 1 do
    for peer = 0 to n - 1 do
      if peer <> me then begin
        let ic = Unix.in_channel_of_descr fds.(me).(peer) in
        let box = mailboxes.(me).(peer) in
        let thread =
          Thread.create
            (fun () ->
              try
                while true do
                  Mailbox.push box (read_frame ic)
                done
              with End_of_file | Sys_error _ | Failure _ -> Mailbox.close box)
            ()
        in
        receivers := thread :: !receivers
      end
    done
  done;
  (* Party threads. *)
  let outputs = Array.make n None in
  let errors = Array.make n None in
  let rounds_of = Array.make n 0 in
  let party me () =
    let ocs =
      Array.init n (fun j ->
          if j = me then None else Some (Unix.out_channel_of_descr fds.(me).(j)))
    in
    let rec go state round =
      match state with
      | Net.Proto.Done v ->
          rounds_of.(me) <- round;
          v
      | Net.Proto.Push (_, rest) | Net.Proto.Pop rest -> go rest round
      | Net.Proto.Step (out, k) ->
          let self = out me in
          Array.iteri
            (fun j oc ->
              match oc with
              | None -> ()
              | Some oc ->
                  let payload = out j in
                  write_frame oc ~round payload;
                  Atomic.incr frames_sent;
                  (match payload with
                  | Some body ->
                      ignore
                        (Atomic.fetch_and_add bytes_sent (String.length body))
                  | None -> ()))
            ocs;
          let inbox =
            Array.init n (fun j ->
                if j = me then self else Mailbox.take mailboxes.(me).(j) ~round)
          in
          go (k inbox) (round + 1)
    in
    match go (protocol (Net.Ctx.make ~n ~t ~me)) 0 with
    | v -> outputs.(me) <- Some v
    | exception e ->
        errors.(me) <- Some e;
        (* Fail fast: shut down this party's connections so peers waiting on
           its frames fail with "connection closed" instead of deadlocking. *)
        for j = 0 to n - 1 do
          if j <> me then
            try Unix.shutdown fds.(me).(j) Unix.SHUTDOWN_ALL
            with Unix.Unix_error _ -> ()
        done
  in
  let threads = Array.init n (fun me -> Thread.create (party me) ()) in
  Array.iter Thread.join threads;
  (* Shut the mesh down. A plain close would not wake receiver threads
     blocked inside read(2); shutdown(2) delivers them EOF first. *)
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      List.iter
        (fun fd ->
          (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()))
        [ fds.(i).(j); fds.(j).(i) ]
    done
  done;
  List.iter Thread.join !receivers;
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ fds.(i).(j); fds.(j).(i) ]
    done
  done;
  Array.iter (function Some e -> raise e | None -> ()) errors;
  let outs =
    Array.map (function Some v -> v | None -> failwith "Net_unix: missing output") outputs
  in
  ( outs,
    {
      bytes_sent = Atomic.get bytes_sent;
      frames_sent = Atomic.get frames_sent;
      rounds = Array.fold_left max 0 rounds_of;
    } )
