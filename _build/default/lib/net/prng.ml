(** Deterministic pseudo-randomness (splitmix64) for adversary strategies and
    workload generation. Every experiment in the repository is reproducible
    from its seed; OCaml's global [Random] state is never used. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next_int64 g =
  let open Int64 in
  g.state <- add g.state 0x9E3779B97F4A7C15L;
  let z = g.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(** Uniform int in [0, bound). Raises [Invalid_argument] if [bound <= 0]. *)
let int g bound =
  if bound <= 0 then invalid_arg "Prng.int";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next_int64 g) 1) (Int64.of_int bound))

let bool g = Int64.logand (next_int64 g) 1L = 1L

let bytes g len = String.init len (fun _ -> Char.chr (int g 256))

(** A fresh generator whose seed mixes [g]'s stream with [salt] — lets one
    master seed drive independent sub-streams. *)
let split g ~salt = create (Int64.to_int (next_int64 g) lxor (salt * 0x9E3779B9))
