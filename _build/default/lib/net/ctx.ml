(** Per-party protocol context: the publicly known parameters of the run.

    [n] parties [0 .. n-1]; at most [t] of them corrupted, with the paper's
    resilience requirement [t < n/3]; [me] is the index of the party running
    this protocol instance. *)

type t = { n : int; t : int; me : int }

let make ~n ~t ~me =
  if n < 1 then invalid_arg "Ctx.make: n < 1";
  if t < 0 || 3 * t >= n then invalid_arg "Ctx.make: requires t < n/3";
  if me < 0 || me >= n then invalid_arg "Ctx.make: bad party index";
  { n; t; me }

(** For protocols in the authenticated setting (cryptographic setup), where
    the resilience bound is t < n/2 — the paper's second open problem,
    explored by the [Auth] library. *)
let make_authenticated ~n ~t ~me =
  if n < 1 then invalid_arg "Ctx.make_authenticated: n < 1";
  if t < 0 || 2 * t >= n then invalid_arg "Ctx.make_authenticated: requires t < n/2";
  if me < 0 || me >= n then invalid_arg "Ctx.make_authenticated: bad party index";
  { n; t; me }

(** [n - t]: the minimum number of honest parties (quorum size used
    throughout the paper). *)
let quorum c = c.n - c.t

let pp fmt c = Format.fprintf fmt "party %d of %d (t=%d)" c.me c.n c.t
