lib/net/ctx.ml: Format
