lib/net/trace.ml: Array Buffer Format Hashtbl List Option Printf
