lib/net/sim.mli: Adversary Ctx Metrics Proto Trace
