lib/net/sim.ml: Adversary Array Ctx List Metrics Printf Proto String Trace
