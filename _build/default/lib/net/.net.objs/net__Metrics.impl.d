lib/net/metrics.ml: Format Hashtbl List Option
