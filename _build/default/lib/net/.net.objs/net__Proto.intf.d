lib/net/proto.mli:
