lib/net/prng.ml: Char Int64 String
