lib/net/adversary.ml: Array Bytes Char Hashtbl Option Printf Prng String
