lib/net/adversary.mli:
