lib/net/metrics.mli: Format Hashtbl
