lib/net/ctx.mli: Format
