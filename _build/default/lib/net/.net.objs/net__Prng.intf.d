lib/net/prng.mli:
