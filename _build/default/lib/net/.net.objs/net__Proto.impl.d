lib/net/proto.ml: Array List Option Wire
