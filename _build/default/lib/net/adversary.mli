(** Byzantine adversary interface and a library of generic strategies.

    The simulator runs a protocol instance for {e every} party, corrupted
    ones included; each round the adversary sees all prescribed messages
    (honest parties' actual messages and what corrupted parties would send if
    they were honest) and replaces the corrupted parties' messages
    arbitrarily. Seeing the honest round-[r] messages before choosing the
    Byzantine round-[r] messages makes the adversary {e rushing}.

    The strategies here are protocol-agnostic (byte-level); protocol-aware
    attacks live in [Attacks], and attacks on {e inputs} (outliers etc.) in
    [Workload.apply_input_attack]. *)

type view = {
  round : int;  (** 1-based round number. *)
  n : int;
  t : int;
  corrupt : bool array;
  prescribed : string option array array;
      (** [prescribed.(s).(r)]: what party [s]'s protocol instance would send
          to [r] this round. Rows of terminated parties are all-[None]. *)
}

type t = {
  name : string;
  act : view -> sender:int -> recipient:int -> string option;
      (** Called once per (corrupted sender, recipient) pair per round; the
          result replaces the prescribed message. *)
}

val make : name:string -> (view -> sender:int -> recipient:int -> string option) -> t

val prescribed_msg : view -> sender:int -> recipient:int -> string option
(** What the sender's instance wanted to send — the "behave honestly"
    building block. *)

(** {1 Strategies} *)

val passive : t
(** Corrupted parties follow the protocol on their own inputs. Combined with
    adversarial inputs this is already the strongest attack on convex
    validity for many protocols. *)

val silent : t
(** Never send anything (fail-stop from round one). *)

val crash : after:int -> t
(** Follow the protocol for [after] rounds, then go silent. *)

val garbage : seed:int -> t
(** Replace every prescribed message with random bytes of the same length. *)

val spammer : seed:int -> max_len:int -> t
(** Send unsolicited random blobs every round, even when the protocol
    prescribes silence. *)

val equivocate : seed:int -> t
(** Honest messages to low-index recipients, corrupted ones to high-index
    recipients — conflicting claims from the same sender. *)

val bitflip : seed:int -> t
(** Flip one bit of every prescribed message, the same flip for all
    recipients (consistent corruption rather than equivocation). *)

val delayer : unit -> t
(** Replay the previous round's prescribed message (desynchronisation). *)

val alternate : t -> t -> t
(** First strategy in odd rounds, second in even rounds. *)

val all_generic : seed:int -> t list
(** The standard battery the test-suite runs every protocol against. *)
