(** Deterministic pseudo-randomness (splitmix64) for adversary strategies and
    workload generation. Every experiment in the repository is reproducible
    from its seed; OCaml's global [Random] state is never used. *)

type t

val create : int -> t

val next_int64 : t -> int64
(** The raw splitmix64 stream. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)]. Raises [Invalid_argument] if
    [bound <= 0]. *)

val bool : t -> bool
val bytes : t -> int -> string

val split : t -> salt:int -> t
(** A fresh generator derived from [g]'s stream and [salt] — lets one master
    seed drive independent sub-streams. *)
