(** Byzantine adversary interface and a library of generic strategies.

    The simulator runs a protocol instance for *every* party, corrupted ones
    included; each round the adversary sees all prescribed messages (honest
    parties' actual messages and what corrupted parties would send if they
    were honest) and replaces the corrupted parties' messages arbitrarily.
    Seeing the honest round-[r] messages before choosing the Byzantine
    round-[r] messages makes the adversary {e rushing}.

    Protocol-specific attacks (e.g. value-injection against convex validity)
    are built in the workload library on top of this interface — often simply
    by giving corrupted parties adversarial {e inputs} and a generic message
    strategy. *)

type view = {
  round : int;  (** 1-based round number. *)
  n : int;
  t : int;
  corrupt : bool array;
  prescribed : string option array array;
      (** [prescribed.(s).(r)]: what party [s]'s protocol instance wants to
          send to [r] this round. Rows of terminated parties are all-[None]. *)
}

type t = {
  name : string;
  act : view -> sender:int -> recipient:int -> string option;
      (** Called once per (corrupted sender, recipient) pair per round; the
          result replaces the prescribed message. *)
}

let make ~name act = { name; act }

let prescribed_msg view ~sender ~recipient = view.prescribed.(sender).(recipient)

(** {1 Generic strategies} *)

(** Corrupted parties follow the protocol honestly (on their own inputs).
    The baseline "weakest" adversary; combined with adversarial inputs it is
    already the strongest attack on convex validity for many protocols. *)
let passive = make ~name:"passive" (fun view ~sender ~recipient ->
    prescribed_msg view ~sender ~recipient)

(** Corrupted parties never send anything (fail-stop from round one). *)
let silent = make ~name:"silent" (fun _ ~sender:_ ~recipient:_ -> None)

(** Follow the protocol until round [after], then stop sending. *)
let crash ~after =
  make ~name:(Printf.sprintf "crash@%d" after) (fun view ~sender ~recipient ->
      if view.round <= after then prescribed_msg view ~sender ~recipient else None)

(** Replace every prescribed message with pseudo-random bytes of the same
    length (stress-tests defensive decoding without changing traffic shape). *)
let garbage ~seed =
  let rng = Prng.create seed in
  make ~name:"garbage" (fun view ~sender ~recipient ->
      match prescribed_msg view ~sender ~recipient with
      | None -> None
      | Some m -> Some (Prng.bytes rng (String.length m)))

(** Send unsolicited random blobs every round to every recipient, even when
    the protocol prescribes silence. *)
let spammer ~seed ~max_len =
  let rng = Prng.create seed in
  make ~name:"spammer" (fun _ ~sender:_ ~recipient:_ ->
      Some (Prng.bytes rng (1 + Prng.int rng max_len)))

(** Equivocation: follow the protocol toward low-index recipients but mutate
    the payload toward high-index recipients — recipients see conflicting
    claims from the same sender. *)
let equivocate ~seed =
  let rng = Prng.create seed in
  make ~name:"equivocate" (fun view ~sender ~recipient ->
      match prescribed_msg view ~sender ~recipient with
      | None -> None
      | Some m ->
          if recipient < view.n / 2 || String.length m = 0 then Some m
          else begin
            let b = Bytes.of_string m in
            let i = Prng.int rng (Bytes.length b) in
            Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 + Prng.int rng 255)));
            Some (Bytes.unsafe_to_string b)
          end)

(** Mutate a random bit of every prescribed message (sent to everyone —
    consistent corruption rather than equivocation). *)
let bitflip ~seed =
  let rng = Prng.create seed in
  make ~name:"bitflip" (fun view ~sender ~recipient ->
      match prescribed_msg view ~sender ~recipient with
      | None -> None
      | Some m when String.length m = 0 -> Some m
      | Some m ->
          (* Derive the flip from (round, sender) so all recipients of this
             sender see the same corrupted message. *)
          let g = Prng.split rng ~salt:((view.round * 1009) + sender) in
          let b = Bytes.of_string m in
          let i = Prng.int g (Bytes.length b) in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Prng.int g 8)));
          Some (Bytes.unsafe_to_string b))

(** Replay the previous round's prescribed message (desynchronization). *)
let delayer () =
  let held : (int * int, string option) Hashtbl.t = Hashtbl.create 64 in
  make ~name:"delayer" (fun view ~sender ~recipient ->
      let key = (sender, recipient) in
      let old = Option.join (Hashtbl.find_opt held key) in
      Hashtbl.replace held key (prescribed_msg view ~sender ~recipient);
      old)

(** Strategy switcher: behave as [a] in odd rounds and [b] in even rounds. *)
let alternate a b =
  make ~name:(Printf.sprintf "alt(%s,%s)" a.name b.name)
    (fun view ~sender ~recipient ->
      if view.round land 1 = 1 then a.act view ~sender ~recipient
      else b.act view ~sender ~recipient)

let all_generic ~seed =
  [
    passive;
    silent;
    crash ~after:3;
    garbage ~seed;
    spammer ~seed ~max_len:64;
    equivocate ~seed;
    bitflip ~seed;
    delayer ();
    alternate silent (garbage ~seed:(seed + 1));
  ]
