(** Per-party protocol context: the publicly known parameters of a run —
    [n] parties [0 .. n-1], at most [t] corrupted, [me] the index of the
    party running this instance. *)

type t = { n : int; t : int; me : int }

val make : n:int -> t:int -> me:int -> t
(** The plain-model resilience bound: raises [Invalid_argument] unless
    [t < n/3] (and indices are in range). *)

val make_authenticated : n:int -> t:int -> me:int -> t
(** For protocols in the authenticated setting (cryptographic setup), where
    the bound is [t < n/2] — the paper's second open problem, explored by the
    [Auth] library. *)

val quorum : t -> int
(** [n - t]: the minimum number of honest parties — the quorum size used
    throughout the paper. *)

val pp : Format.formatter -> t -> unit
