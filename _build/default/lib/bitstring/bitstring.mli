(** Packed bitstrings with the notation of Section 2 of the paper.

    A value [b : t] is a finite sequence of bits [B1 B2 ... Bk], indexed from 1
    (leftmost / most significant) as in the paper. Bits are packed MSB-first
    into bytes. All operations are pure; the underlying buffer is never
    mutated after construction. *)

type t

(** {1 Construction} *)

val empty : t
(** The empty bitstring. *)

val zero : int -> t
(** [zero len] is [len] zero bits. Raises [Invalid_argument] if [len < 0]. *)

val ones : int -> t
(** [ones len] is [len] one bits. *)

val of_bool_list : bool list -> t

val of_string : string -> t
(** [of_string "0101"] parses a textual bitstring. Raises [Invalid_argument]
    on characters other than ['0'] and ['1']. *)

val init : int -> (int -> bool) -> t
(** [init len f] builds the bitstring whose [i]-th bit (1-indexed) is
    [f i]. *)

(** {1 Accessors} *)

val length : t -> int

val get : t -> int -> bool
(** [get b i] is the [i]-th leftmost bit, 1-indexed (paper's [B^i]).
    Raises [Invalid_argument] if [i] is out of range. *)

val is_empty : t -> bool

val to_bool_list : t -> bool list

val to_string : t -> string
(** Textual rendering, e.g. ["0101"]. *)

val pp : Format.formatter -> t -> unit

(** {1 Structure} *)

val append : t -> t -> t
(** Concatenation (paper's [||]). *)

val append_bit : t -> bool -> t

val sub : t -> pos:int -> len:int -> t
(** [sub b ~pos ~len] is bits [pos .. pos+len-1], 1-indexed.
    Raises [Invalid_argument] if the range is not within [b]. *)

val range : t -> left:int -> right:int -> t
(** [range b ~left ~right] is bits [B_left || ... || B_right] (inclusive,
    1-indexed), the slice notation used by FINDPREFIX. [left > right] gives
    [empty]. *)

val prefix : t -> int -> t
(** [prefix b k] is the first [k] bits. *)

val is_prefix : prefix:t -> t -> bool
(** [is_prefix ~prefix:p b] holds iff [p] is a prefix of [b]. *)

val longest_common_prefix : t -> t -> t

(** {1 Numeric interpretation (paper's BITS / VAL)} *)

val of_int : int -> t
(** [of_int v] is BITS(v): the minimal binary representation of [v >= 0],
    with BITS(0) = "0" (one bit) so that every natural has a representation.
    Raises [Invalid_argument] on negative input. *)

val of_int_fixed : bits:int -> int -> t
(** [of_int_fixed ~bits v] is BITS_bits(v): [v]'s representation left-padded
    with zeros to exactly [bits] bits. Raises [Invalid_argument] if [v] does
    not fit. *)

val to_int : t -> int
(** VAL for values that fit in an OCaml [int]. Raises [Invalid_argument] on
    overflow (more than 62 significant bits). *)

val significant_bits : t -> int
(** Number of bits of the minimal representation of VAL(b): [length b] minus
    leading zeros, and at least 1 when [length b > 0]. [0] for [empty]. *)

val strip_leading_zeros : t -> t
(** Minimal representation of the same value; [empty] stays [empty], an
    all-zero string becomes ["0"]. *)

val pad_to : int -> t -> t
(** [pad_to len b] left-pads with zeros to [len] bits (BITS_len(VAL b)).
    Raises [Invalid_argument] if [significant_bits b > len]. *)

val min_fill : int -> t -> t
(** [min_fill len p] is MIN_len(p): [p] right-padded with zeros to [len]
    bits — the smallest [len]-bit value with prefix [p].
    Raises [Invalid_argument] if [length p > len]. *)

val max_fill : int -> t -> t
(** [max_fill len p] is MAX_len(p): [p] right-padded with ones. *)

(** {1 Comparison} *)

val equal : t -> t -> bool
(** Structural equality (length and bits). *)

val compare : t -> t -> int
(** Total order: first by bits lexicographically, then by length. For
    equal-length strings this is exactly the numeric order of VAL. *)

val compare_val : t -> t -> int
(** Numeric order of VAL regardless of length (leading zeros ignored). *)

(** {1 Blocks (Section 4)} *)

val blocks : block_bits:int -> t -> t list
(** [blocks ~block_bits b] splits [b] into consecutive blocks of exactly
    [block_bits] bits. Raises [Invalid_argument] if [length b] is not a
    multiple of [block_bits] or [block_bits <= 0]. *)

val concat : t list -> t

(** {1 Byte conversion (wire format)} *)

val to_bytes : t -> string
(** Packed representation: the bits MSB-first, zero-padded at the end to a
    whole number of bytes. Use together with [length] to round-trip. *)

val of_bytes : len:int -> string -> t option
(** [of_bytes ~len s] reads [len] bits back from [to_bytes] output. [None] if
    [s] is too short, too long, or has nonzero padding bits (defensive
    parsing of untrusted bytes). *)
