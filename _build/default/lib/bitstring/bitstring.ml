(* Bits are packed MSB-first: bit i (1-indexed) lives in byte (i-1)/8 at
   in-byte position 7-((i-1) mod 8). The buffer may have up to 7 unused
   trailing bits, which are kept at zero so that structural equality of the
   packed form coincides with bitstring equality. *)

type t = { len : int; data : string }

let empty = { len = 0; data = "" }

let bytes_needed len = (len + 7) / 8

let zero len =
  if len < 0 then invalid_arg "Bitstring.zero";
  { len; data = String.make (bytes_needed len) '\000' }

let unsafe_get data i =
  let byte = Char.code (String.unsafe_get data ((i - 1) lsr 3)) in
  byte land (0x80 lsr ((i - 1) land 7)) <> 0

let get b i =
  if i < 1 || i > b.len then invalid_arg "Bitstring.get";
  unsafe_get b.data i

let init len f =
  if len < 0 then invalid_arg "Bitstring.init";
  let buf = Bytes.make (bytes_needed len) '\000' in
  for i = 1 to len do
    if f i then begin
      let j = (i - 1) lsr 3 in
      let cur = Char.code (Bytes.unsafe_get buf j) in
      Bytes.unsafe_set buf j (Char.chr (cur lor (0x80 lsr ((i - 1) land 7))))
    end
  done;
  { len; data = Bytes.unsafe_to_string buf }

let ones len = init len (fun _ -> true)

let of_bool_list bits =
  let arr = Array.of_list bits in
  init (Array.length arr) (fun i -> arr.(i - 1))

let of_string s =
  init (String.length s) (fun i ->
      match s.[i - 1] with
      | '0' -> false
      | '1' -> true
      | _ -> invalid_arg "Bitstring.of_string")

let length b = b.len
let is_empty b = b.len = 0

let to_bool_list b = List.init b.len (fun i -> unsafe_get b.data (i + 1))

let to_string b =
  String.init b.len (fun i -> if unsafe_get b.data (i + 1) then '1' else '0')

let pp fmt b = Format.pp_print_string fmt (to_string b)

let sub b ~pos ~len =
  if len < 0 || pos < 1 || pos + len - 1 > b.len then
    invalid_arg "Bitstring.sub";
  if len = b.len then b
  else if (pos - 1) land 7 = 0 then begin
    (* Byte-aligned fast path. *)
    let nbytes = bytes_needed len in
    let buf = Bytes.sub (Bytes.unsafe_of_string b.data) ((pos - 1) lsr 3) nbytes in
    (* Clear padding bits of the last byte. *)
    let rem = len land 7 in
    if rem <> 0 then begin
      let mask = 0xff lsl (8 - rem) land 0xff in
      Bytes.set buf (nbytes - 1)
        (Char.chr (Char.code (Bytes.get buf (nbytes - 1)) land mask))
    end;
    { len; data = Bytes.unsafe_to_string buf }
  end
  else init len (fun i -> unsafe_get b.data (pos + i - 1))

let range b ~left ~right =
  if left > right then empty else sub b ~pos:left ~len:(right - left + 1)

let prefix b k = sub b ~pos:1 ~len:k

let append a b =
  if a.len = 0 then b
  else if b.len = 0 then a
  else if a.len land 7 = 0 then
    (* a ends on a byte boundary: plain concatenation of buffers. *)
    { len = a.len + b.len; data = a.data ^ b.data }
  else
    init (a.len + b.len) (fun i ->
        if i <= a.len then unsafe_get a.data i else unsafe_get b.data (i - a.len))

let append_bit b bit =
  append b (if bit then { len = 1; data = "\x80" } else { len = 1; data = "\000" })

let concat bs = List.fold_left append empty bs

let is_prefix ~prefix:p b =
  p.len <= b.len
  &&
  let rec go i = i > p.len || (unsafe_get p.data i = unsafe_get b.data i && go (i + 1)) in
  go 1

let longest_common_prefix a b =
  let n = min a.len b.len in
  let rec go i =
    if i > n || unsafe_get a.data i <> unsafe_get b.data i then i - 1 else go (i + 1)
  in
  prefix a (go 1)

let of_int v =
  if v < 0 then invalid_arg "Bitstring.of_int";
  let rec width acc v = if v = 0 then acc else width (acc + 1) (v lsr 1) in
  let k = max 1 (width 0 v) in
  init k (fun i -> v land (1 lsl (k - i)) <> 0)

let significant_bits b =
  let rec first_one i = if i > b.len then b.len + 1 else if unsafe_get b.data i then i else first_one (i + 1) in
  if b.len = 0 then 0
  else
    let f = first_one 1 in
    if f > b.len then 1 (* all zeros: value 0 needs one bit *) else b.len - f + 1

let strip_leading_zeros b =
  if b.len = 0 then empty else sub b ~pos:(b.len - significant_bits b + 1) ~len:(significant_bits b)

let pad_to len b =
  if significant_bits b > len then invalid_arg "Bitstring.pad_to";
  if b.len = len then b
  else if b.len < len then append (zero (len - b.len)) b
  else sub b ~pos:(b.len - len + 1) ~len

let of_int_fixed ~bits v =
  let m = of_int v in
  if significant_bits m > bits then invalid_arg "Bitstring.of_int_fixed";
  pad_to bits m

let to_int b =
  let m = strip_leading_zeros b in
  if m.len > 62 then invalid_arg "Bitstring.to_int";
  let rec go acc i = if i > m.len then acc else go ((acc lsl 1) lor (if unsafe_get m.data i then 1 else 0)) (i + 1) in
  go 0 1

let min_fill len p =
  if p.len > len then invalid_arg "Bitstring.min_fill";
  append p (zero (len - p.len))

let max_fill len p =
  if p.len > len then invalid_arg "Bitstring.max_fill";
  append p (ones (len - p.len))

let equal a b = a.len = b.len && String.equal a.data b.data

let compare a b =
  (* Lexicographic on bits, then shorter < longer. Because trailing padding is
     zeroed we cannot compare buffers directly when lengths differ mod 8. *)
  let n = min a.len b.len in
  let rec go i =
    if i > n then Stdlib.compare a.len b.len
    else
      match (unsafe_get a.data i, unsafe_get b.data i) with
      | false, true -> -1
      | true, false -> 1
      | _ -> go (i + 1)
  in
  go 1

let compare_val a b =
  let a = strip_leading_zeros a and b = strip_leading_zeros b in
  (* Both minimal: 0 is "0"; any other value starts with 1, so longer means
     strictly greater, except that "0" must compare below "1...". *)
  let norm x = if x.len = 1 && not (unsafe_get x.data 1) then empty else x in
  let a = norm a and b = norm b in
  if a.len <> b.len then Stdlib.compare a.len b.len else compare a b

let blocks ~block_bits b =
  if block_bits <= 0 then invalid_arg "Bitstring.blocks";
  if b.len mod block_bits <> 0 then invalid_arg "Bitstring.blocks: length not a multiple";
  List.init (b.len / block_bits) (fun k -> sub b ~pos:((k * block_bits) + 1) ~len:block_bits)

let to_bytes b = b.data

let of_bytes ~len s =
  if len < 0 || String.length s <> bytes_needed len then None
  else
    let rem = len land 7 in
    let padding_ok =
      rem = 0 || len = 0
      || Char.code s.[String.length s - 1] land (0xff lsr rem) = 0
    in
    if padding_ok then Some { len; data = s } else None
