(** Reed–Solomon erasure codes over GF(2^16) — the paper's RS.ENCODE /
    RS.DECODE with parameters (n, n−t) (Section 7).

    [encode ~n ~k v] splits a value [v] into [n] codewords of
    O(|v|/k) = O(|v|/n) bits each such that any [k] of them reconstruct [v]
    exactly. Encoding is systematic: the first [k] codewords carry the (length
    framed, zero padded) message symbols.

    Erasure decoding suffices for the protocol: corrupted codewords are
    detected and discarded via Merkle witnesses before decoding, exactly as in
    the paper, so [decode] receives only index-authenticated codewords. *)

val encode : n:int -> k:int -> string -> string array
(** Raises [Invalid_argument] unless [1 <= k <= n < 65536]. All returned
    codewords have equal length [codeword_bytes ~k ~msg_bytes:(length v)]. *)

val decode : n:int -> k:int -> (int * string) list -> (string, string) result
(** [decode ~n ~k shares] reconstructs the original value from at least [k]
    shares [(index, codeword)] with distinct indices in [0, n-1]. Extra shares
    beyond [k] are ignored (they are already authenticated). Returns
    [Error reason] on malformed input: too few shares, duplicate or
    out-of-range indices, inconsistent codeword lengths, or framing that does
    not parse (possible only if the encoder was byzantine). *)

val codeword_bytes : k:int -> msg_bytes:int -> int
(** Size of each codeword produced by [encode] for a [msg_bytes]-byte value. *)
