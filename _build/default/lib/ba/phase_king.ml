(* Phase-king agreement, t+1 phases of three rounds each.

   Phase invariants (n > 3t):
   - Persistence: if all honest parties enter a phase with the same value,
     they all lock it and ignore the king.
   - At most one value can be proposed by any honest party in a phase (two
     distinct proposals would each need n-2t honest holders; 2(n-2t) > n-t).
   - If any honest party locks w, every honest party ends the phase with w.
   - A phase with an honest king therefore ends with all honest parties
     agreeing, and persistence preserves that agreement; among t+1 kings one
     is honest. *)

open Net

type 'v spec = {
  equal : 'v -> 'v -> bool;
  default : 'v;
  encode : 'v -> string;
  decode : string -> 'v option;
}

let ( let* ) = Proto.( let* )

(* Tally distinct decoded values in an inbox (at most one per sender).
   Returns an assoc list keyed by the canonical encoding. *)
let tally spec inbox =
  let counts = Hashtbl.create 16 in
  Array.iter
    (function
      | None -> ()
      | Some raw -> (
          match spec.decode raw with
          | None -> () (* undecodable byzantine bytes: ignore the sender *)
          | Some v ->
              let key = spec.encode v in
              let _, c = Option.value ~default:(v, 0) (Hashtbl.find_opt counts key) in
              Hashtbl.replace counts key (v, c + 1)))
    inbox;
  Hashtbl.fold (fun key (v, c) acc -> (key, v, c) :: acc) counts []

(* Value with the highest count; ties broken by canonical encoding so all
   honest parties make the same deterministic choice. *)
let argmax = function
  | [] -> None
  | entries ->
      Some
        (List.fold_left
           (fun (bk, bv, bc) (k, v, c) ->
             if c > bc || (c = bc && String.compare k bk < 0) then (k, v, c)
             else (bk, bv, bc))
           (List.hd entries) (List.tl entries))

let run spec (ctx : Ctx.t) input =
  let quorum = Ctx.quorum ctx in
  let rec phase k v =
    if k > ctx.Ctx.t + 1 then Proto.return v
    else
      (* Round 1: universal exchange of current values. *)
      let* inbox1 = Proto.broadcast (spec.encode v) in
      let proposal =
        match
          List.find_opt (fun (_, _, c) -> c >= quorum) (tally spec inbox1)
        with
        | Some (_, w, _) -> Some w
        | None -> None
      in
      (* Round 2: universal exchange of proposals. *)
      let encode_proposal p = Wire.encode (Wire.w_option Wire.w_bytes (Option.map spec.encode p)) in
      let decode_proposal raw =
        match Wire.decode_full (Wire.r_option (Wire.r_bytes ())) raw with
        | None -> None (* malformed: drop sender *)
        | Some None -> None (* an explicit "no proposal" carries no vote *)
        | Some (Some payload) -> spec.decode payload
      in
      let* inbox2 = Proto.broadcast (encode_proposal proposal) in
      let votes = tally { spec with decode = decode_proposal } inbox2 in
      let v, locked =
        match argmax votes with
        | Some (_, w, c) when c >= ctx.Ctx.t + 1 -> (w, c >= quorum)
        | _ -> (v, false)
      in
      (* Round 3: the phase king circulates its value. *)
      let king = k - 1 in
      let* inbox3 =
        if ctx.Ctx.me = king then Proto.broadcast (spec.encode v)
        else Proto.receive_only ()
      in
      let v =
        if locked then v
        else
          let king_value =
            if ctx.Ctx.me = king then Some v
            else Option.bind inbox3.(king) spec.decode
          in
          Option.value ~default:spec.default king_value
      in
      phase (k + 1) v
  in
  Proto.with_label "pi_ba" (phase 1 input)

let rounds (ctx : Ctx.t) = 3 * (ctx.Ctx.t + 1)

let bit_spec =
  {
    equal = Bool.equal;
    default = false;
    encode = (fun b -> if b then "\001" else "\000");
    decode =
      (fun s ->
        match s with "\000" -> Some false | "\001" -> Some true | _ -> None);
  }

let bytes_spec =
  {
    equal = String.equal;
    default = "";
    encode = Fun.id;
    decode = (fun s -> Some s);
  }

let option_spec =
  {
    equal = Option.equal String.equal;
    default = None;
    encode = (fun v -> Wire.encode (Wire.w_option Wire.w_bytes v));
    decode = Wire.decode_full (Wire.r_option (Wire.r_bytes ()));
  }

let run_bit ctx b = run bit_spec ctx b
let run_bytes ctx s = run bytes_spec ctx s
let run_option ctx o = run option_spec ctx o
