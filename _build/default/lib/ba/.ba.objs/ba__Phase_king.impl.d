lib/ba/phase_king.ml: Array Bool Ctx Fun Hashtbl List Net Option Proto String Wire
