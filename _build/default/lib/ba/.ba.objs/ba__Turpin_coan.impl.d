lib/ba/turpin_coan.ml: Array Ctx Hashtbl List Net Option Phase_king Proto String Wire
