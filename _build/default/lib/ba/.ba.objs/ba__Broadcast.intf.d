lib/ba/broadcast.mli: Net Phase_king
