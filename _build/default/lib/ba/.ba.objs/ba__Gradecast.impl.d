lib/ba/gradecast.ml: Array Bigint Bitstring Ctx Hashtbl List Net Option Phase_king Proto Wire
