lib/ba/broadcast.ml: Array Ctx Net Option Phase_king Proto
