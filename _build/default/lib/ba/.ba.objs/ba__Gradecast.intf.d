lib/ba/gradecast.mli: Bitstring Net Phase_king
