lib/ba/turpin_coan.mli: Net Phase_king
