lib/ba/phase_king.mli: Net
