(** Synchronous Byzantine Broadcast (BC) for [t < n/3], by the classical
    reduction to BA: the designated sender sends its value to everyone, then
    all parties run Π_BA on what they received.

    Guarantees: Termination and Agreement always; if the sender is honest,
    every honest party outputs the sender's value (Validity). The output for
    a byzantine sender is an arbitrary — but common — value.

    This is the primitive behind the introduction's "trivial" CA construction
    (every party broadcasts its input, then apply a deterministic choice
    function), implemented as a baseline in [Baseline.Broadcast_ca]. Cost for
    an ℓ-bit value: O(ℓn) for the send plus BITS_ℓ(Π_BA) — O(ℓn³) with the
    phase-king Π_BA. *)

open Net

let ( let* ) = Proto.( let* )

(** [run spec ctx ~sender v]: every party joins; only [sender]'s input is
    meaningful ([v] is ignored for other parties — pass the party's own input
    or [spec.default]). *)
let run (spec : 'v Phase_king.spec) (ctx : Ctx.t) ~sender v =
  if sender < 0 || sender >= ctx.Ctx.n then invalid_arg "Broadcast.run: bad sender";
  let* inbox =
    if ctx.Ctx.me = sender then Proto.broadcast (spec.Phase_king.encode v)
    else Proto.receive_only ()
  in
  let received =
    Option.value ~default:spec.Phase_king.default
      (Option.bind inbox.(sender) spec.Phase_king.decode)
  in
  Phase_king.run spec ctx received

let run_bytes ctx ~sender v = run Phase_king.bytes_spec ctx ~sender v
