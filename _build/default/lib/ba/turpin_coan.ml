(** The Turpin–Coan extension protocol [49]: multivalued BA from binary BA
    with O(ℓn²) extra communication, resilient for t < n/3.

    This is the classical "cheap" multivalued BA that the paper's related
    work contrasts with: quadratic in n, and — like any plain BA — offering
    no convex validity. It serves as the O(ℓn²) baseline in the benchmark
    tables (experiments T1/T2/F1).

    Steps (each party):
    1. Send the input value to all.
    2. If some value [w] was received from ≥ n−t parties, set y := w,
       else y := ⊥. Send y to all.
    3. Let z := the most frequent non-⊥ value received, c := its count.
       Join binary Π_BA with input 1 iff c ≥ n−t.
    4. If Π_BA returned 1, output z (any honest party then has c ≥ t+1 for a
       common z); otherwise output the default value.

    The two-honest-proposal argument (two distinct y ≠ ⊥ values would each
    need n−2t honest supporters) makes z common to all honest parties
    whenever the binary agreement returns 1. *)

open Net

let ( let* ) = Proto.( let* )

let run (spec : 'v Phase_king.spec) (ctx : Ctx.t) input =
  let open Phase_king in
  let quorum = Ctx.quorum ctx in
  Proto.with_label "turpin_coan"
    (* Step 1: universal exchange of inputs. *)
    (let* inbox1 = Proto.broadcast (spec.encode input) in
     let tally inbox decode =
       let counts = Hashtbl.create 16 in
       Array.iter
         (function
           | None -> ()
           | Some raw -> (
               match decode raw with
               | None -> ()
               | Some v ->
                   let key = spec.encode v in
                   let _, c =
                     Option.value ~default:(v, 0) (Hashtbl.find_opt counts key)
                   in
                   Hashtbl.replace counts key (v, c + 1)))
         inbox;
       Hashtbl.fold (fun key (v, c) acc -> (key, v, c) :: acc) counts []
     in
     let y =
       match List.find_opt (fun (_, _, c) -> c >= quorum) (tally inbox1 spec.decode) with
       | Some (_, w, _) -> Some w
       | None -> None
     in
     (* Step 2: universal exchange of candidates. *)
     let encode_y y = Wire.encode (Wire.w_option Wire.w_bytes (Option.map spec.encode y)) in
     let decode_y raw =
       match Wire.decode_full (Wire.r_option (Wire.r_bytes ())) raw with
       | None | Some None -> None
       | Some (Some payload) -> spec.decode payload
     in
     let* inbox2 = Proto.broadcast (encode_y y) in
     let z, c =
       match tally inbox2 decode_y with
       | [] -> (spec.default, 0)
       | entries ->
           let _, v, c =
             List.fold_left
               (fun (bk, bv, bc) (k, v, c) ->
                 if c > bc || (c = bc && String.compare k bk < 0) then (k, v, c)
                 else (bk, bv, bc))
               (List.hd entries) (List.tl entries)
           in
           (v, c)
     in
     (* Step 3: binary agreement on whether a quorum candidate exists. *)
     let* confirmed = Phase_king.run_bit ctx (c >= quorum) in
     (* Step 4. *)
     if confirmed && c >= ctx.Ctx.t + 1 then Proto.return z
     else Proto.return spec.default)

let run_bytes ctx v = run Phase_king.bytes_spec ctx v

(** 2 exchange rounds + the binary phase-king agreement. *)
let rounds ctx = 2 + Phase_king.rounds ctx
