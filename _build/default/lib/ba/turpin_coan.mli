(** The Turpin–Coan extension protocol [49]: multivalued BA from binary BA
    with O(ℓn²) extra communication, resilient for t < n/3.

    The classical "cheap" multivalued BA the paper's related work contrasts
    with: quadratic in n, and — like any plain BA — offering no convex
    validity. Serves as the O(ℓn²) baseline in experiments T1/T2/F1.

    Guarantees: Termination, Agreement; Validity (unanimous honest inputs are
    kept). When honest parties disagree the output may be [spec.default]. *)

val run : 'v Phase_king.spec -> Net.Ctx.t -> 'v -> 'v Net.Proto.t

val run_bytes : Net.Ctx.t -> string -> string Net.Proto.t

val rounds : Net.Ctx.t -> int
(** Exact round count: 2 exchange rounds + the binary phase-king BA. *)
