(** Synchronous Byzantine Broadcast (BC) for [t < n/3], by the classical
    reduction to BA: the designated sender sends its value to everyone, then
    all parties run Π_BA on what they received.

    Guarantees: Termination and Agreement always; if the sender is honest,
    every honest party outputs the sender's value (Validity). The output for
    a byzantine sender is an arbitrary — but common — value.

    This is the primitive behind the introduction's "trivial" CA construction
    (broadcast every input, then apply a deterministic choice function),
    implemented as [Baseline.Broadcast_ca]. Cost for an ℓ-bit value: O(ℓn)
    for the send plus BITS_ℓ(Π_BA) — O(ℓn³) with the phase-king Π_BA. *)

val run :
  'v Phase_king.spec -> Net.Ctx.t -> sender:int -> 'v -> 'v Net.Proto.t
(** [run spec ctx ~sender v]: every party joins; only [sender]'s input is
    meaningful (other parties may pass anything, e.g. [spec.default]).
    Raises [Invalid_argument] on an out-of-range sender. *)

val run_bytes : Net.Ctx.t -> sender:int -> string -> string Net.Proto.t
