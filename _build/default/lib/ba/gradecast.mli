(** Gradecast (graded broadcast) — Feldman–Micali's relaxation of broadcast,
    the building block of the gradecast-based algorithms of
    Ben-Or–Dolev–Hoch [6] cited in the paper's related work.

    For t < n/3, three rounds, O(ℓn²) bits; each party outputs a value and a
    grade in {0, 1, 2} with: honest sender ⇒ everyone outputs (v, 2); an
    honest grade-2 output forces every honest party to hold the same value
    with grade ≥ 1; any two honest grade-≥1 values coincide. *)

type 'v graded = { value : 'v option; grade : int }

val run :
  'v Phase_king.spec -> Net.Ctx.t -> sender:int -> 'v -> 'v graded Net.Proto.t

val run_bytes : Net.Ctx.t -> sender:int -> string -> string graded Net.Proto.t

(** {1 Gradecast-based Approximate Agreement [6]}

    Iterated: every party gradecasts its value; grade-≥1 values form the
    round multiset; trim t per side and take the midpoint. Same interface as
    [Baseline.Approx_agreement], built on a broadcast primitive with
    per-sender accountability. *)

val approx_agree :
  Net.Ctx.t -> bits:int -> rounds:int -> Bitstring.t -> Bitstring.t Net.Proto.t
