lib/baplus/ext_ba_plus.ml: Array Ba_plus Ctx Hashtbl Merkle Net Option Proto Reed_solomon String Wire
