lib/baplus/ext_ba_plus.mli: Net
