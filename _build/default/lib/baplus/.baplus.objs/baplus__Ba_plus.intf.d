lib/baplus/ba_plus.mli: Net
