lib/baplus/ba_plus.ml: Array Ba Ctx Hashtbl List Net Option Proto String Wire
