(* Π_BA+ follows the Section 7 pseudocode line by line.

   Counting arguments enforced here (n > 3t):
   - a party sees at most two values with n−2t occurrences in step 1
     (3(n−2t) <= n would give n <= 3t), so votes carry at most two values;
   - at most two values can gather n−t votes in step 2 (each party votes for
     at most two values, so 3(n−t) <= 2n would give n <= 3t);
   - if n−2t honest parties share input v, every honest party votes for v and
     the honest (a, b) pairs satisfy v ∈ {a, b} ⊆ {v, v'} for a single v'. *)

open Net

let ( let* ) = Proto.( let* )

let encode_vote values = Wire.encode (Wire.w_list Wire.w_bytes values)

(* A vote is valid only in canonical form: at most two values, strictly
   ascending. Anything else is a malformed byzantine message, dropped. *)
let decode_vote raw =
  match Wire.decode_full (Wire.r_list ~max:3 (Wire.r_bytes ())) raw with
  | Some ([] as vs) | Some ([ _ ] as vs) -> Some vs
  | Some ([ v1; v2 ] as vs) when String.compare v1 v2 < 0 -> Some vs
  | Some _ | None -> None

(* Values occurring at least [threshold] times in [inbox], ascending. *)
let values_with_support ~decode ~threshold inbox =
  let counts = Hashtbl.create 16 in
  Array.iter
    (function
      | None -> ()
      | Some raw ->
          List.iter
            (fun v ->
              Hashtbl.replace counts v
                (1 + Option.value ~default:0 (Hashtbl.find_opt counts v)))
            (decode raw))
    inbox;
  Hashtbl.fold (fun v c acc -> if c >= threshold then v :: acc else acc) counts []
  |> List.sort String.compare

let run (ctx : Ctx.t) input =
  let t = ctx.Ctx.t in
  let quorum = Ctx.quorum ctx in
  Proto.with_label "pi_ba_plus"
    ((* Step 1: distribute inputs; find values received from n−2t parties. *)
     let* inbox1 = Proto.broadcast input in
     let seen =
       values_with_support
         ~decode:(fun raw -> [ raw ])
         ~threshold:(ctx.Ctx.n - (2 * t))
         inbox1
     in
     (* The counting argument caps [seen] at two values; if byzantine
        equivocation could ever break this we must not crash. *)
     let seen = match seen with v1 :: v2 :: _ -> [ v1; v2 ] | vs -> vs in
     (* Step 2: vote for the values seen. *)
     let* inbox2 = Proto.broadcast (encode_vote seen) in
     let supported =
       values_with_support
         ~decode:(fun raw -> Option.value ~default:[] (decode_vote raw))
         ~threshold:quorum inbox2
     in
     (* Step 3: derive (a, b) with a <= b. *)
     let a, b =
       match supported with
       | [] -> (None, None)
       | [ v ] -> (Some v, Some v)
       | v :: rest -> (Some v, Some (List.nth rest (List.length rest - 1)))
     in
     (* Step 4: try to agree on a. *)
     let* a' = Ba.Phase_king.run_option ctx a in
     let happy_a = match (a, a') with Some x, Some y -> String.equal x y | _ -> false in
     let* agreed_a = Ba.Phase_king.run_bit ctx happy_a in
     if agreed_a then Proto.return a'
     else
       (* Step 5: try to agree on b. *)
       let* b' = Ba.Phase_king.run_option ctx b in
       let happy_b = match (b, b') with Some x, Some y -> String.equal x y | _ -> false in
       let* agreed_b = Ba.Phase_king.run_bit ctx happy_b in
       if agreed_b then Proto.return b' else Proto.return None)
