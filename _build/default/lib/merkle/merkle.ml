(* The leaf count is padded to the next power of two with a distinguished
   empty-leaf digest, so every authentication path has the same length
   ceil(log2 n) and verification needs only the index and the path. *)

type root = string
type witness = { path : string list (* sibling hashes, leaf level first *) }

type tree = {
  leaves : int; (* real leaf count *)
  padded : int; (* power of two *)
  levels : string array array; (* levels.(0) = leaf digests, last = [| root |] *)
}

let hash_leaf v = Sha256.digest ("\x00" ^ v)
let hash_node l r = Sha256.digest ("\x01" ^ l ^ r)
let empty_leaf = Sha256.digest "\x02"

let next_pow2 n =
  let rec go p = if p >= n then p else go (2 * p) in
  go 1

let build values =
  let leaves = Array.length values in
  if leaves = 0 then invalid_arg "Merkle.build: empty";
  let padded = next_pow2 leaves in
  let level0 =
    Array.init padded (fun i -> if i < leaves then hash_leaf values.(i) else empty_leaf)
  in
  let rec up acc level =
    if Array.length level = 1 then List.rev (level :: acc)
    else
      let next =
        Array.init (Array.length level / 2) (fun i ->
            hash_node level.(2 * i) level.((2 * i) + 1))
      in
      up (level :: acc) next
  in
  { leaves; padded; levels = Array.of_list (up [] level0) }

let root t = t.levels.(Array.length t.levels - 1).(0)
let leaf_count t = t.leaves

let witness t i =
  if i < 0 || i >= t.leaves then invalid_arg "Merkle.witness";
  let rec go level idx acc =
    if level >= Array.length t.levels - 1 then List.rev acc
    else
      let sibling = t.levels.(level).(idx lxor 1) in
      go (level + 1) (idx / 2) (sibling :: acc)
  in
  { path = go 0 i [] }

let verify ~root ~index ~value w =
  if index < 0 then false
  else
    let rec go idx h = function
      | [] -> idx = 0 && String.equal h root
      | sib :: rest ->
          if String.length sib <> Sha256.digest_size then false
          else
            let h' = if idx land 1 = 0 then hash_node h sib else hash_node sib h in
            go (idx / 2) h' rest
    in
    go index (hash_leaf value) w.path

let witness_size_bits w = 8 * (1 + (Sha256.digest_size * List.length w.path))

let encode_witness w =
  (* depth byte followed by the concatenated 32-byte siblings. *)
  let depth = List.length w.path in
  if depth > 255 then invalid_arg "Merkle.encode_witness: too deep";
  String.concat "" (String.make 1 (Char.chr depth) :: w.path)

let decode_witness s =
  if String.length s < 1 then None
  else
    let depth = Char.code s.[0] in
    if String.length s <> 1 + (depth * Sha256.digest_size) then None
    else
      let path =
        List.init depth (fun i ->
            String.sub s (1 + (i * Sha256.digest_size)) Sha256.digest_size)
      in
      Some { path }
