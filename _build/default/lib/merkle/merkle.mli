(** Merkle-tree accumulator (Section 7, [39]): compresses a sequence of [n]
    values into a κ-bit root; a witness of O(κ·log n) bits proves membership
    of the i-th value.

    Leaves are domain-separated from inner nodes ("\x00" / "\x01" prefixes) so
    that an inner node can never be confused with a leaf — the standard
    defence against second-preimage shortcuts.

    MT.BUILD is [build]; MT.VERIFY is [verify]. *)

type root = string
(** 32-byte binary digest. *)

type witness
(** Authentication path from a leaf to the root. *)

type tree

val build : string array -> tree
(** [build values] constructs the tree over [values] in order (the paper's
    multiset {s_1, ..., s_n}; order matters — index [i] corresponds to party
    [P_i]). Raises [Invalid_argument] on an empty array. *)

val root : tree -> root

val witness : tree -> int -> witness
(** [witness t i] proves membership of leaf [i] (0-indexed).
    Raises [Invalid_argument] if [i] is out of range. *)

val verify : root:root -> index:int -> value:string -> witness -> bool
(** [verify ~root ~index ~value w]: does [w] prove that [value] is the
    [index]-th leaf of the tree with root hash [root]? Total on arbitrary
    (adversarial) witnesses. *)

val leaf_count : tree -> int

val witness_size_bits : witness -> int
(** Wire size of the witness (for communication accounting): O(κ·log n). *)

val encode_witness : witness -> string

val decode_witness : string -> witness option
(** Defensive decoding of untrusted bytes; [None] on malformed input. *)
