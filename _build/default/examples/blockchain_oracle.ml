(* Blockchain price oracle: n oracle nodes observe an asset price off-chain
   and must post one agreed value on-chain. Prices are high-precision
   fixed-point numbers (18 decimals, ~90 bits) — and because oracle
   committees are re-staked across many feeds, the values to agree on are
   often concatenated batches, i.e. genuinely long inputs: exactly the regime
   where this paper's O(ℓn) protocol pays off.

   The example runs a single feed and a 64-feed batch, reports the
   communication of Π_Z against the broadcast-everything baseline, and prints
   the per-component cost split of the extension machinery.

   Run with: dune exec examples/blockchain_oracle.exe *)

open Net

let n = 7
let t = 2

let run_feed ~name ~inputs ~bits_for_baseline =
  let corrupt = Workload.spread_corrupt ~n ~t in
  (* Byzantine oracles try to push the posted price up. *)
  let inputs = Workload.apply_input_attack Workload.Outlier_high ~corrupt inputs in
  let adversary = Adversary.equivocate ~seed:5 in
  let ours =
    Workload.run_int ~n ~t ~corrupt ~adversary ~inputs Workload.pi_z.Workload.run
  in
  let baseline_proto = Workload.broadcast_ca ~bits:bits_for_baseline in
  let baseline =
    Workload.run_int ~n ~t ~corrupt ~adversary ~inputs baseline_proto.Workload.run
  in
  Printf.printf "%s\n" name;
  Printf.printf "  agreed price:          %s (agreement=%b, convex validity=%b)\n"
    (match ours.Workload.outputs with o :: _ -> Bigint.to_string o | [] -> "-")
    ours.Workload.agreement ours.Workload.convex_validity;
  Printf.printf "  Pi_Z communication:    %9d honest bits, %4d rounds\n"
    ours.Workload.honest_bits ours.Workload.rounds;
  let ratio =
    float_of_int baseline.Workload.honest_bits /. float_of_int ours.Workload.honest_bits
  in
  Printf.printf "  Broadcast-CA baseline: %9d honest bits, %4d rounds\n"
    baseline.Workload.honest_bits baseline.Workload.rounds;
  Printf.printf "  baseline / Pi_Z:       %9.1fx %s\n" ratio
    (if ratio >= 1. then "(Pi_Z wins: above the l = Omega(k n log^2 n) crossover)"
     else "(baseline wins: value too short to amortize the extension machinery)");
  ours

let () =
  let rng = Prng.create 7 in

  (* Single ETH/USD-style observation: ~2931.5 USD with 18 decimals. *)
  let single =
    Workload.price_feed rng ~n ~base:"2931" ~decimals:18 ~spread_ppm:200
  in
  let _ = run_feed ~name:"single feed (ETH/USD, 18 decimals)" ~inputs:single
      ~bits_for_baseline:128
  in
  print_newline ();

  (* Batched feed: 64 prices concatenated into one ~6000-bit value. The batch
     is ordered, so nearby observations agree on a long common prefix. *)
  let batch =
    let base = Workload.price_feed rng ~n:1 ~base:"2931" ~decimals:18 ~spread_ppm:0 in
    Array.init n (fun i ->
        let noise = Bigint.of_int (Prng.int rng 1000 + i) in
        let rec build acc k =
          if k = 0 then acc
          else build (Bigint.add (Bigint.shift_left acc 93) (Bigint.add base.(0) noise)) (k - 1)
        in
        build Bigint.one 64)
  in
  let report =
    run_feed ~name:"batched feed (64 prices, ~6000-bit value)" ~inputs:batch
      ~bits_for_baseline:6200
  in
  Printf.printf "\n  Pi_Z per-component honest bits (batched feed):\n";
  List.iter
    (fun (label, bits) -> Printf.printf "    %-20s %9d\n" label bits)
    report.Workload.labels
