(* Asynchrony: what survives when the network loses its clock.

   The paper's protocol is synchronous — and its conclusion expects the
   techniques to extend to asynchrony only at t < n/5, with exact agreement
   provably impossible for deterministic protocols (FLP). This example shows
   the asynchronous side of that landscape on a price-oracle scenario:

   1. Bracha reliable broadcast still disseminates a value consistently under
      arbitrary message reordering;
   2. asynchronous approximate agreement (t < n/5) still drives the oracles'
      estimates together geometrically — but only ever approximately.

   Run with: dune exec examples/async_fallback.exe *)

open Anet

let n = 6
let t = 1 (* t < n/5 *)
let bits = 32

let () =
  let corrupt = Array.init n (fun i -> i = 4) in

  (* 1. Reliable broadcast of a reference price under hostile scheduling. *)
  Printf.printf "1. Bracha reliable broadcast (sender 0, LIFO reordering):\n";
  let outcome =
    Async_sim.run ~n ~t ~corrupt ~scheduler:Async_sim.lifo ~seed:9 (fun ctx ->
        Bracha.run ctx ~sender:0 (if ctx.Net.Ctx.me = 0 then "px:2931.07" else ""))
  in
  let delivered = Async_sim.honest_outputs ~corrupt outcome in
  Printf.printf "   all honest delivered %S: %b (%d message deliveries)\n"
    (List.hd delivered)
    (List.for_all (String.equal (List.hd delivered)) delivered)
    outcome.Async_sim.metrics.Async_sim.delivered;

  (* 2. Async approximate agreement on locally observed prices. *)
  let base = 293_107 in
  let inputs =
    Array.init n (fun i ->
        if corrupt.(i) then Bitstring.ones bits
        else Bitstring.of_int_fixed ~bits (base - 40 + (i * 16)))
  in
  Printf.printf "\n2. Async approximate agreement (t < n/5, byzantine-first scheduling):\n";
  List.iter
    (fun rounds ->
      let outcome =
        Async_sim.run ~n ~t ~corrupt
          ~scheduler:(Async_sim.byzantine_first ~corrupt)
          ~seed:10
          ~byzantine:(Async_sim.byz_garbage ~seed:11)
          (fun ctx -> Async_aa.run ctx ~bits ~rounds inputs.(ctx.Net.Ctx.me))
      in
      let outs =
        List.map Bitstring.to_int (Async_sim.honest_outputs ~corrupt outcome)
      in
      let lo = List.fold_left min (List.hd outs) outs in
      let hi = List.fold_left max (List.hd outs) outs in
      Printf.printf "   after %2d rounds: estimates in [%d, %d] (diameter %d)\n" rounds
        lo hi (hi - lo))
    [ 0; 2; 4; 8 ];
  Printf.printf
    "\n   estimates converge and stay within the honest observations' range,\n\
    \   but exact agreement needs synchrony (or randomization): that is where\n\
    \   the paper's synchronous Pi_Z lives — see the other examples.\n"
