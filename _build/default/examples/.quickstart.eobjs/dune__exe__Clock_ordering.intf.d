examples/clock_ordering.mli:
