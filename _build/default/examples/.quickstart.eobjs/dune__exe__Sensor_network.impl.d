examples/sensor_network.ml: Adversary Array Bigint Bitstring Convex Fun List Net Option Printf Prng String Workload
