examples/async_fallback.ml: Anet Array Async_aa Async_sim Bitstring Bracha List Net Printf String
