examples/gradient_aggregation.ml: Adversary Array Bigint Convex Ctx Fun List Metrics Net Printf Prng Proto Sim String Workload
