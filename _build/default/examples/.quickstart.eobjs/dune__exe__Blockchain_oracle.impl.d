examples/blockchain_oracle.ml: Adversary Array Bigint List Net Printf Prng Workload
