examples/quickstart.ml: Adversary Array Bigint Convex Ctx List Metrics Net Printf Prng Sim String Workload
