examples/blockchain_oracle.mli:
