examples/gradient_aggregation.mli:
