examples/quickstart.mli:
