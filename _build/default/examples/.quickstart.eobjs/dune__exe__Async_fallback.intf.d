examples/async_fallback.mli:
