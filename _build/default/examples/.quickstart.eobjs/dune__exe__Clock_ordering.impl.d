examples/clock_ordering.ml: Adversary Array Baseline Bigint Convex Ctx List Metrics Net Printf Prng Sim Wire Workload
