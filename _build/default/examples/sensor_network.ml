(* Sensor network: why Convex Agreement instead of plain Byzantine Agreement.

   A network of n sensors reports a cooling-room temperature. We run the same
   readings through (a) plain multivalued BA (Turpin-Coan) and (b) this
   paper's Π_Z, across a grid of adversary strategies and byzantine input
   attacks, and check which executions keep the output inside the honest
   readings' range.

   Plain BA only promises a common output — when honest readings differ even
   slightly (as real sensors always do), a byzantine value can win. Convex
   Agreement structurally excludes that.

   Run with: dune exec examples/sensor_network.exe *)

open Net

let n = 10
let t = 3

(* Sensors measure centi-degrees; encode as an offset binary value so the
   plain-BA comparator (which runs on fixed-width naturals) handles the
   negative readings too. *)
let offset = 1_000_000
let bits = 24

let encode_reading v = Bigint.of_int (Bigint.to_int_opt v |> Option.get |> ( + ) offset)
let decode_reading v = Bigint.sub v (Bigint.of_int offset)

let run_case ~attack ~adversary ~(protocol : Workload.protocol) rng_seed =
  let rng = Prng.create rng_seed in
  let corrupt = Workload.spread_corrupt ~n ~t in
  let honest_readings = Workload.sensor_readings rng ~n ~base:(-1004) ~jitter:2 in
  (* Byzantine sensors report +100.00 C (or worse, per attack). *)
  (* The +100C comparison runs both protocols, so readings are offset-encoded
     into fixed-width naturals; the generic input attacks (huge magnitudes,
     both signs) exercise Π_Z directly on ℤ. *)
  let readings, inputs =
    match attack with
    | `Plus100 ->
        let readings =
          Array.mapi
            (fun i v -> if corrupt.(i) then Bigint.of_int 10_000 else v)
            honest_readings
        in
        (readings, Array.map encode_reading readings)
    | `Workload wl ->
        let readings = Workload.apply_input_attack wl ~corrupt honest_readings in
        (readings, readings)
  in
  let report =
    Workload.run_int ~n ~t ~corrupt ~adversary ~inputs protocol.Workload.run
  in
  let decode = match attack with `Plus100 -> decode_reading | `Workload _ -> Fun.id in
  let outputs = List.map decode report.Workload.outputs in
  let honest_inputs =
    List.filteri (fun i _ -> not corrupt.(i)) (Array.to_list readings)
  in
  let valid =
    List.for_all (fun o -> Convex.in_convex_hull ~inputs:honest_inputs o) outputs
  in
  (report.Workload.agreement, valid, outputs)

let () =
  (* The byzantine payload: +100.00 C, encoded exactly as the phase-king BA
     wire format expects, injected by a corrupted first-phase king. *)
  let evil_payload =
    Bitstring.to_bytes (Bigint.to_bitstring_fixed ~bits (encode_reading (Bigint.of_int 10_000)))
  in
  let protocols =
    [
      Workload.phase_king_ba ~bits;
      Workload.turpin_coan_ba ~bits;
      Workload.pi_z;
    ]
  in
  let adversaries =
    [
      Adversary.passive;
      Workload.king_injector ~payload:evil_payload;
      Adversary.equivocate ~seed:3;
      Adversary.garbage ~seed:4;
      Adversary.crash ~after:5;
    ]
  in
  Printf.printf
    "%-40s %-12s %-6s %-6s %s\n" "protocol" "adversary" "agree" "valid" "sample output (centi-deg)";
  print_endline (String.make 100 '-');
  let ba_violations = ref 0 in
  List.iter
    (fun (protocol : Workload.protocol) ->
      List.iter
        (fun adversary ->
          let agree, valid, outputs =
            run_case ~attack:`Plus100 ~adversary ~protocol 2024
          in
          if
            (not protocol.Workload.solves_ca)
            && List.exists (Bigint.equal (Bigint.of_int 10_000)) outputs
          then incr ba_violations;
          Printf.printf "%-40s %-12s %-6b %-6b %s\n" protocol.Workload.proto_name
            adversary.Adversary.name agree valid
            (match outputs with o :: _ -> Bigint.to_string o | [] -> "-"))
        adversaries)
    protocols;
  print_endline (String.make 100 '-');
  Printf.printf
    "\nPlain BA keeps agreement, but the +100C byzantine reading won outright in %d\n\
     case(s) (and every BA run left the honest range); Pi_Z (Convex Agreement)\n\
     stays inside the honest readings' range in every execution.\n"
    !ba_violations;

  (* Also sweep the generic input attacks against Pi_Z only. *)
  print_newline ();
  Printf.printf "Pi_Z under byzantine input attacks (all must be valid):\n";
  List.iter
    (fun wl ->
      List.iter
        (fun adversary ->
          let agree, valid, _ =
            run_case ~attack:(`Workload wl) ~adversary ~protocol:Workload.pi_z 99
          in
          Printf.printf "  %-16s vs %-12s agree=%b valid=%b\n"
            (Workload.input_attack_name wl) adversary.Adversary.name agree valid)
        adversaries)
    [ Workload.Honest_inputs; Workload.Outlier_high; Workload.Outlier_low;
      Workload.Split_extremes ]
