(* Quickstart: seven temperature sensors in a cooling room, two of them
   byzantine, agree on a reading.

   This is the paper's motivating example: honest sensors measure between
   -10.05 and -10.03 °C; the corrupted sensors report +100 °C. Plain BA may
   adopt the byzantine value — Convex Agreement cannot: the output provably
   lies within the honest readings' range.

   Run with: dune exec examples/quickstart.exe *)

open Net

let () =
  let n = 7 and t = 2 in
  let rng = Prng.create 42 in

  (* Honest readings in centi-degrees around -10.04 C. *)
  let inputs = Workload.sensor_readings rng ~n ~base:(-1004) ~jitter:1 in

  (* Corrupt the last two sensors; they report +100.00 C ... *)
  let corrupt = Array.init n (fun i -> i >= n - t) in
  let inputs =
    Array.mapi (fun i v -> if corrupt.(i) then Bigint.of_int 10000 else v) inputs
  in

  (* ... and additionally equivocate on the wire. *)
  let adversary = Adversary.equivocate ~seed:7 in

  Printf.printf "sensor inputs (centi-degrees):\n";
  Array.iteri
    (fun i v ->
      Printf.printf "  sensor %d: %8s%s\n" i (Bigint.to_string v)
        (if corrupt.(i) then "   <- byzantine" else ""))
    inputs;

  (* Run Π_Z: each party joins the protocol with its own reading. *)
  let outcome =
    Sim.run ~n ~t ~corrupt ~adversary (fun ctx -> Convex.agree_int ctx inputs.(ctx.Ctx.me))
  in

  let outputs = Sim.honest_outputs ~corrupt outcome in
  Printf.printf "\nhonest outputs: %s\n"
    (String.concat ", " (List.map Bigint.to_string outputs));

  let honest_inputs = List.filteri (fun i _ -> not corrupt.(i)) (Array.to_list inputs) in
  Printf.printf "agreement:        %b\n"
    (match outputs with o :: r -> List.for_all (Bigint.equal o) r | [] -> false);
  Printf.printf "convex validity:  %b (output within [-10.05, -10.03] C)\n"
    (List.for_all (fun o -> Convex.in_convex_hull ~inputs:honest_inputs o) outputs);
  Printf.printf "communication:    %d honest bits over %d rounds\n"
    outcome.Sim.metrics.Metrics.honest_bits outcome.Sim.metrics.Metrics.rounds
