(* Decentralized clock for transaction ordering (the application of [14] in
   the paper's related work): validators hold skewed local timestamps and
   must stamp a block with one common time that no byzantine coalition can
   drag outside the honest clocks' range.

   Approximate Agreement gets the validators close (and is cheaper per
   iteration) but leaves residual disagreement — useless for a total order,
   where all validators must stamp the SAME value. Convex Agreement gives
   exactness. This example runs both and prints the residual spread.

   Run with: dune exec examples/clock_ordering.exe *)

open Net

let n = 10
let t = 3
let bits = 64

let () =
  let rng = Prng.create 123 in
  let corrupt = Workload.spread_corrupt ~n ~t in
  (* Honest clocks: 2026-07-06 12:00:00 UTC in ns, +- 40ms skew. *)
  let inputs =
    Workload.timestamps rng ~n ~now_ns:"1783425600000000000" ~skew_ns:40_000_000
  in
  (* Byzantine validators claim a timestamp one hour ahead, trying to censor
     honest transactions by post-dating the block. *)
  let inputs =
    Array.mapi
      (fun i v ->
        if corrupt.(i) then Bigint.add v (Bigint.of_string "3600000000000") else v)
      inputs
  in
  let adversary = Adversary.bitflip ~seed:9 in

  let honest_inputs = List.filteri (fun i _ -> not corrupt.(i)) (Array.to_list inputs) in
  let lo = List.fold_left Bigint.min (List.hd honest_inputs) honest_inputs in
  let hi = List.fold_left Bigint.max (List.hd honest_inputs) honest_inputs in
  Printf.printf "honest clock range: [%s, %s] (spread %s ns)\n" (Bigint.to_string lo)
    (Bigint.to_string hi)
    (Bigint.to_string (Bigint.sub hi lo));

  (* Approximate agreement: 3 iterations of trimmed averaging — enough to
     shrink a 50ms spread to the millisecond scale, never to exactness. The
     adversary is two-faced: it feeds the low end of the honest range to half
     the validators and the high end to the other half, every round — the
     strongest way to keep AA estimates apart. *)
  let encode v = Wire.encode (Wire.w_bits (Bigint.to_bitstring_fixed ~bits v)) in
  let two_faced =
    let low = encode lo and high = encode hi in
    Adversary.make ~name:"two-faced" (fun view ~sender:_ ~recipient ->
        Some (if recipient < view.Adversary.n / 2 then low else high))
  in
  let aa =
    Sim.run ~n ~t ~corrupt ~adversary:two_faced (fun ctx ->
        Baseline.Approx_agreement.run ctx ~bits ~rounds:3
          (Bigint.to_bitstring_fixed ~bits inputs.(ctx.Ctx.me)))
  in
  let aa_outputs = List.map Bigint.of_bitstring (Sim.honest_outputs ~corrupt aa) in
  let aa_lo = List.fold_left Bigint.min (List.hd aa_outputs) aa_outputs in
  let aa_hi = List.fold_left Bigint.max (List.hd aa_outputs) aa_outputs in
  let residual = Bigint.sub aa_hi aa_lo in
  Printf.printf "\nApproximate Agreement (3 iterations):\n";
  Printf.printf "  residual disagreement: %s ns%s\n" (Bigint.to_string residual)
    (if Bigint.is_zero residual then " (this run; unguaranteed)"
     else "  -> validators hold different stamps: no total order");
  Printf.printf "  in honest range:       %b\n"
    (List.for_all (fun o -> Convex.in_convex_hull ~inputs:honest_inputs o) aa_outputs);
  Printf.printf "  communication:         %d honest bits\n"
    aa.Sim.metrics.Metrics.honest_bits;

  (* Convex agreement: exact. *)
  let ca =
    Sim.run ~n ~t ~corrupt ~adversary (fun ctx -> Convex.agree_int ctx inputs.(ctx.Ctx.me))
  in
  let ca_outputs = Sim.honest_outputs ~corrupt ca in
  let stamp = List.hd ca_outputs in
  Printf.printf "\nConvex Agreement (Pi_Z):\n";
  Printf.printf "  agreed block time:     %s ns\n" (Bigint.to_string stamp);
  Printf.printf "  exact agreement:       %b\n"
    (List.for_all (Bigint.equal stamp) ca_outputs);
  Printf.printf "  in honest range:       %b  -> byzantine +1h clocks ignored\n"
    (List.for_all (fun o -> Convex.in_convex_hull ~inputs:honest_inputs o) ca_outputs);
  Printf.printf "  communication:         %d honest bits over %d rounds\n"
    ca.Sim.metrics.Metrics.honest_bits ca.Sim.metrics.Metrics.rounds
