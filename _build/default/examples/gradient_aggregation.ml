(* Byzantine-robust gradient aggregation for distributed learning — the
   machine-learning application line of the paper's introduction [4, 18, 48].

   n workers compute a local gradient; up to t are byzantine and poison
   their submission with huge values to steer the model. Averaging is
   defenseless: one poisoned coordinate drags the mean arbitrarily far.
   Running Convex Agreement per coordinate yields a common aggregate whose
   every coordinate lies within the honest gradients' range — i.e. inside
   their bounding box. (Full multidimensional convex-hull validity is the
   stronger primitive of Vaidya–Garg [50] / Mendes–Herlihy [37], outside
   this paper's 1-D scope; per-coordinate range validity is what
   coordinate-wise trimmed aggregation rules aim for.)

   Gradients use 6 decimal digits of fixed-point precision — the paper's
   "rationals with pre-defined precision" interpretation.

   Run with: dune exec examples/gradient_aggregation.exe *)

open Net
module Fp = Convex.Fixed_point

let n = 7
let t = 2
let dims = 6
let decimals = 6

(* Per-coordinate CA via the library's vector API (box validity — see
   Convex.Vector's documentation), at fixed-point precision. *)
let agree_vector ctx (gradient : Fp.t array) =
  Proto.map
    (Convex.agree_vector ctx (Array.map Fp.units gradient))
    (Array.map (Fp.of_units ~decimals))

let () =
  let rng = Prng.create 2718 in
  let corrupt = Workload.spread_corrupt ~n ~t in
  (* Honest workers: gradients near a common descent direction, with noise.
     Byzantine workers: gradient poisoning, +-10^6 per coordinate. *)
  let direction = [| -0.82; 0.13; 0.44; -0.07; 0.99; -0.31 |] in
  let gradients =
    Array.init n (fun w ->
        Array.init dims (fun d ->
            if corrupt.(w) then
              Fp.of_string ~decimals (if (w + d) mod 2 = 0 then "1000000" else "-1000000")
            else begin
              let noise = float_of_int (Prng.int rng 2001 - 1000) /. 1_000_000. in
              Fp.of_string ~decimals (Printf.sprintf "%.6f" (direction.(d) +. noise))
            end))
  in
  Printf.printf "worker gradients (dim 0 .. %d):\n" (dims - 1);
  Array.iteri
    (fun w g ->
      Printf.printf "  w%d%s: %s\n" w
        (if corrupt.(w) then " (byz)" else "      ")
        (String.concat "  " (Array.to_list (Array.map Fp.to_string g))))
    gradients;

  (* Naive mean — what undefended federated averaging would compute. *)
  let mean d =
    let sum =
      Array.fold_left
        (fun acc g -> Bigint.add acc (Fp.units g.(d)))
        Bigint.zero gradients
    in
    Fp.of_units ~decimals (Bigint.div sum (Bigint.of_int n))
  in
  Printf.printf "\nnaive mean (poisoned):      %s\n"
    (String.concat "  " (List.init dims (fun d -> Fp.to_string (mean d))));

  (* Convex Agreement per coordinate. *)
  let outcome =
    Sim.run ~n ~t ~corrupt ~adversary:(Adversary.equivocate ~seed:3) (fun ctx ->
        agree_vector ctx gradients.(ctx.Ctx.me))
  in
  let outputs = Sim.honest_outputs ~corrupt outcome in
  let agreed = List.hd outputs in
  Printf.printf "agreed gradient (CA):       %s\n"
    (String.concat "  " (Array.to_list (Array.map Fp.to_string agreed)));

  (* Checks. *)
  let all_same =
    List.for_all (fun o -> Array.for_all2 Fp.equal o agreed) outputs
  in
  let honest_coord d =
    List.filteri (fun w _ -> not corrupt.(w)) (Array.to_list gradients)
    |> List.map (fun g -> g.(d))
  in
  let in_box =
    List.init dims (fun d -> Fp.in_convex_hull ~inputs:(honest_coord d) agreed.(d))
    |> List.for_all Fun.id
  in
  Printf.printf "\nall workers agree:            %b\n" all_same;
  Printf.printf "inside honest bounding box:   %b\n" in_box;
  Printf.printf "poisoning deflected:          %b (every coordinate within honest noise band)\n"
    (Array.for_all
       (fun c ->
         Bigint.compare (Bigint.abs (Fp.units c)) (Bigint.of_int 2_000_000) < 0)
       agreed);
  Printf.printf "communication:                %d honest bits over %d rounds (%d dims)\n"
    outcome.Sim.metrics.Metrics.honest_bits outcome.Sim.metrics.Metrics.rounds dims
