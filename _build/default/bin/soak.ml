(* soak — randomized long-running robustness campaign.

   Each trial draws a random configuration (n, t, corrupt set, workload
   family, input attack, message adversary — generic or protocol-aware) and
   a random protocol from the CA family, runs it in the simulator, and
   checks Definition 1. Any violation prints a full reproduction line
   (everything is derived from the trial seed) and fails the process.

     dune exec bin/soak.exe              (200 trials)
     dune exec bin/soak.exe -- 5000 42   (trials, master seed)  *)

open Net

let trial ~seed =
  let rng = Prng.create seed in
  let n = 4 + Prng.int rng 7 in
  let t = Prng.int rng (((n - 1) / 3) + 1) in
  let corrupt = Array.make n false in
  let placed = ref 0 in
  while !placed < t do
    let i = Prng.int rng n in
    if not corrupt.(i) then begin
      corrupt.(i) <- true;
      incr placed
    end
  done;
  let workload_name, inputs =
    match Prng.int rng 4 with
    | 0 -> ("sensors", Workload.sensor_readings rng ~n ~base:(-1004) ~jitter:3)
    | 1 ->
        ( "clustered",
          Workload.clustered_bits rng ~n ~bits:(32 + Prng.int rng 400)
            ~shared_prefix_bits:(Prng.int rng 32) )
    | 2 -> ("uniform", Workload.uniform_bits rng ~n ~bits:(8 + Prng.int rng 64))
    | _ ->
        ( "timestamps",
          Workload.timestamps rng ~n ~now_ns:"1783425600000000000"
            ~skew_ns:(1 + Prng.int rng 100000) )
  in
  let attack =
    List.nth
      [ Workload.Honest_inputs; Workload.Outlier_high; Workload.Outlier_low;
        Workload.Split_extremes ]
      (Prng.int rng 4)
  in
  let inputs = Workload.apply_input_attack attack ~corrupt inputs in
  let adversaries =
    Adversary.all_generic ~seed
    @ Attacks.all ~seed ~payload:(Sha256.digest (string_of_int seed))
  in
  let adversary = List.nth adversaries (Prng.int rng (List.length adversaries)) in
  (* Wide enough that the fixed-width comparators never clamp an input —
     clamping would make the validity check compare across domains. *)
  let bits =
    Array.fold_left (fun acc v -> max acc (Bigint.bit_length v)) 64 inputs + 1
  in
  let proto_name, protocol =
    match Prng.int rng 3 with
    | 0 -> ("pi_z", Workload.pi_z)
    | 1 -> ("high_cost_ca", Workload.high_cost_ca ~bits)
    | _ -> ("broadcast_ca", Workload.broadcast_ca ~bits)
  in
  (* Fixed-width comparators clamp magnitudes; avoid negative workloads. *)
  let proto_name, protocol =
    if proto_name <> "pi_z" && Array.exists (fun v -> Bigint.sign v < 0) inputs then
      ("pi_z", Workload.pi_z)
    else (proto_name, protocol)
  in
  let describe () =
    Printf.sprintf "seed=%d n=%d t=%d proto=%s workload=%s attack=%s adversary=%s"
      seed n t proto_name workload_name
      (Workload.input_attack_name attack)
      adversary.Adversary.name
  in
  match Workload.run_int ~n ~t ~corrupt ~adversary ~inputs protocol.Workload.run with
  | report ->
      if report.Workload.agreement && report.Workload.convex_validity then Ok ()
      else
        Error
          (Printf.sprintf "%s: agreement=%b validity=%b" (describe ())
             report.Workload.agreement report.Workload.convex_validity)
  | exception e -> Error (Printf.sprintf "%s: raised %s" (describe ()) (Printexc.to_string e))

let () =
  let trials, master =
    match Sys.argv with
    | [| _; n |] -> (int_of_string n, 1)
    | [| _; n; s |] -> (int_of_string n, int_of_string s)
    | _ -> (200, 1)
  in
  let failures = ref 0 in
  let t0 = Unix.gettimeofday () in
  for i = 1 to trials do
    (match trial ~seed:((master * 1_000_003) + i) with
    | Ok () -> ()
    | Error msg ->
        incr failures;
        Printf.printf "FAIL %s\n%!" msg);
    if i mod 50 = 0 then
      Printf.printf "  ... %d/%d trials, %d failures, %.1fs\n%!" i trials !failures
        (Unix.gettimeofday () -. t0)
  done;
  Printf.printf "soak: %d trials, %d failures in %.1fs\n" trials !failures
    (Unix.gettimeofday () -. t0);
  if !failures > 0 then exit 1
