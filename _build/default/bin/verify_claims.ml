(* verify_claims — self-checking reproduction verifier.

   Runs the protocols over a grid of (n, ℓ) points, fits the measured honest
   bits against the complexity models the paper claims, and prints a
   claim-by-claim PASS/FAIL verdict. This is the quantitative counterpart of
   the shape tables in bench/main.ml (exit code 1 on any FAIL, so it can run
   in CI):

     C1  BITS(Pi_Z)'s l-dependence is linear in l (not l^2), per n.
     C2  the marginal cost per input bit grows ~linearly in n (not n^2).
     C3  Broadcast-CA's l-coefficient grows ~n^2 faster than Pi_Z's.
     C4  ROUNDS(Pi_Z) fits n log n far better than n^2.
     C5  the l-independent additive term fits k*n^3-ish growth (the
         documented phase-king substitution; the paper's own term is k*n^2).

   Run with: dune exec bin/verify_claims.exe *)

open Net

let verdicts : (string * bool * string) list ref = ref []

let check claim ok detail = verdicts := (claim, ok, detail) :: !verdicts

(* Inputs differ only in their last 64 bits: the run's structure (which
   search windows pre-agree) is then the same at every l, so the l-ladder
   isolates the protocol's structural l-dependence instead of workload
   noise. *)
let measure_bits ~n ~t ~bits protocol =
  let corrupt = Workload.spread_corrupt ~n ~t in
  let rng = Prng.create n in
  let inputs =
    Workload.clustered_bits rng ~n ~bits ~shared_prefix_bits:(max 0 (bits - 64))
  in
  let report =
    Workload.run_int ~n ~t ~corrupt ~adversary:Adversary.passive ~inputs
      protocol.Workload.run
  in
  (float_of_int report.Workload.honest_bits, float_of_int report.Workload.rounds)

(* Marginal l-cost for one n: slope of bits vs l over a geometric l ladder.
   [protocol] receives the width so fixed-width comparators match it. *)
let l_slope ~n ~t protocol =
  let points =
    List.map
      (fun lg ->
        let bits = 1 lsl lg in
        let b, _ = measure_bits ~n ~t ~bits (protocol ~bits) in
        (float_of_int bits, b))
      [ 11; 12; 13; 14; 15 ]
  in
  let fit =
    Stats.least_squares
      ~rows:(List.map (fun (l, _) -> [| 1.; l |]) points)
      ~y:(List.map snd points)
  in
  (fit.Stats.coefficients.(1), fit, points)

let pi_z ~bits:_ = Workload.pi_z

let () =
  (* ---- C1: linear, not quadratic, in l ---------------------------- *)
  let n = 7 and t = 2 in
  let slope, linear_fit, points = l_slope ~n ~t pi_z in
  let quad_fit =
    Stats.least_squares
      ~rows:(List.map (fun (l, _) -> [| 1.; l *. l |]) points)
      ~y:(List.map snd points)
  in
  check "C1: Pi_Z bits linear in l"
    (linear_fit.Stats.r_square > 0.95 && linear_fit.Stats.r_square > quad_fit.Stats.r_square)
    (Printf.sprintf "linear fit r2=%.4f (slope %.1f bits/bit), pure-quadratic fit r2=%.4f"
       linear_fit.Stats.r_square slope quad_fit.Stats.r_square);

  (* ---- C2: marginal cost per input bit ~ n ------------------------ *)
  let slopes =
    List.map
      (fun n ->
        let t = (n - 1) / 3 in
        let s, _, _ = l_slope ~n ~t pi_z in
        (float_of_int n, s))
      [ 4; 7; 10; 13 ]
  in
  (* Theory: slope(n)/n ≈ 2(n−1)/(n−t) + (4t+6)(n−1)/n ≈ a small constant
     (the two RS distribution rounds plus ADDLASTBLOCK's HIGHCOSTCA-on-one-
     block). Were the leading term Θ(l·n²), slope/n would grow ~3.3× across
     n = 4..13; we require the band to stay within 2.5×. *)
  let normalized = List.map (fun (n, s) -> s /. n) slopes in
  let band_lo = List.fold_left min (List.hd normalized) normalized in
  let band_hi = List.fold_left max (List.hd normalized) normalized in
  check "C2: Pi_Z marginal bits/bit ~ n (leading term l*n)"
    (band_hi /. band_lo < 2.5)
    (Printf.sprintf "slopes %s; slope/n band [%.2f, %.2f] (ratio %.2f; a l*n^2 law would give ~3.3)"
       (String.concat ", "
          (List.map (fun (n, s) -> Printf.sprintf "n=%.0f:%.1f" n s) slopes))
       band_lo band_hi (band_hi /. band_lo));

  (* ---- C3: Broadcast-CA's l-coefficient / ours grows like n^2 ----- *)
  let ratios =
    List.map
      (fun n ->
        let t = (n - 1) / 3 in
        let ours, _, _ = l_slope ~n ~t pi_z in
        let theirs, _, _ = l_slope ~n ~t (fun ~bits -> Workload.broadcast_ca ~bits) in
        (float_of_int n, theirs /. ours))
      [ 4; 7; 10 ]
  in
  let increasing =
    let rec go = function
      | (_, a) :: ((_, b) :: _ as rest) -> a < b && go rest
      | _ -> true
    in
    go ratios
  in
  let _, r4 = List.hd ratios and _, r10 = List.nth ratios 2 in
  check "C3: baseline l-coefficient diverges (ratio grows with n)"
    (increasing && r10 > 2. *. r4)
    (Printf.sprintf "baseline/ours l-slope ratios: %s"
       (String.concat ", "
          (List.map (fun (n, r) -> Printf.sprintf "n=%.0f:%.1fx" n r) ratios)));

  (* ---- C4: rounds ~ n log n ---------------------------------------- *)
  let round_points =
    List.map
      (fun n ->
        let t = (n - 1) / 3 in
        let _, rounds = measure_bits ~n ~t ~bits:4096 Workload.pi_z in
        (float_of_int n, rounds))
      [ 4; 7; 10; 13; 16; 19 ]
  in
  let fit_nlogn =
    Stats.least_squares
      ~rows:(List.map (fun (n, _) -> [| 1.; n *. Stats.log2 n |]) round_points)
      ~y:(List.map snd round_points)
  in
  let fit_nsq =
    Stats.least_squares
      ~rows:(List.map (fun (n, _) -> [| 1.; n *. n |]) round_points)
      ~y:(List.map snd round_points)
  in
  check "C4: Pi_Z rounds fit n*log n"
    (fit_nlogn.Stats.r_square > 0.9)
    (Printf.sprintf "fit n*log2(n) r2=%.4f (coef %.1f); fit n^2 r2=%.4f"
       fit_nlogn.Stats.r_square
       fit_nlogn.Stats.coefficients.(1)
       fit_nsq.Stats.r_square);

  (* ---- C5: additive term (intercept of the l-fit) growth ----------- *)
  let intercepts =
    List.map
      (fun n ->
        let t = (n - 1) / 3 in
        let _, fit, _ = l_slope ~n ~t pi_z in
        (float_of_int n, fit.Stats.coefficients.(0)))
      [ 4; 7; 10; 13 ]
  in
  let positive_and_growing =
    let rec go = function
      | (_, a) :: ((_, b) :: _ as rest) -> a > 0. && a < b && go rest
      | [ (_, a) ] -> a > 0.
      | [] -> false
    in
    go intercepts
  in
  check "C5: additive (l-independent) term present and superlinear in n"
    positive_and_growing
    (Printf.sprintf "intercepts: %s (documented phase-king substitution: ~k*n^3)"
       (String.concat ", "
          (List.map
             (fun (n, c) -> Printf.sprintf "n=%.0f:%.0fk" n (c /. 1000.))
             intercepts)));

  (* ---- report ------------------------------------------------------ *)
  let all = List.rev !verdicts in
  print_endline "claim-by-claim verification of the reproduction (see EXPERIMENTS.md):";
  print_endline (String.make 100 '-');
  List.iter
    (fun (claim, ok, detail) ->
      Printf.printf "[%s] %s\n        %s\n" (if ok then "PASS" else "FAIL") claim detail)
    all;
  print_endline (String.make 100 '-');
  let failures = List.length (List.filter (fun (_, ok, _) -> not ok) all) in
  Printf.printf "%d/%d claims hold\n" (List.length all - failures) (List.length all);
  if failures > 0 then exit 1
