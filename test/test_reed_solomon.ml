(* Reed–Solomon: roundtrips over every erasure pattern family the protocol
   produces, plus defensive decoding. *)

module Rs = Reed_solomon

let msg n = String.init n (fun i -> Char.chr (i * 31 land 0xff))

let decode_exn ~n ~k shares =
  match Rs.decode ~n ~k shares with
  | Ok v -> v
  | Error e -> Alcotest.failf "decode failed: %s" e

let test_systematic_roundtrip () =
  let m = msg 100 in
  let n = 10 and k = 7 in
  let cws = Rs.encode ~n ~k m in
  Alcotest.check Alcotest.int "n codewords" n (Array.length cws);
  Array.iter
    (fun cw ->
      Alcotest.check Alcotest.int "codeword size" (Rs.codeword_bytes ~k ~msg_bytes:100)
        (String.length cw))
    cws;
  (* First k shares (the systematic ones). *)
  let shares = List.init k (fun i -> (i, cws.(i))) in
  Alcotest.check Alcotest.string "systematic decode" m (decode_exn ~n ~k shares)

let test_parity_only_roundtrip () =
  let m = msg 57 in
  let n = 10 and k = 3 in
  let cws = Rs.encode ~n ~k m in
  let shares = [ (9, cws.(9)); (7, cws.(7)); (4, cws.(4)) ] in
  Alcotest.check Alcotest.string "parity decode" m (decode_exn ~n ~k shares)

let test_all_k_subsets_small () =
  let m = msg 23 in
  let n = 6 and k = 4 in
  let cws = Rs.encode ~n ~k m in
  (* Every 4-subset of 6 codewords must reconstruct. *)
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      for c = b + 1 to n - 1 do
        for d = c + 1 to n - 1 do
          let shares = [ (a, cws.(a)); (b, cws.(b)); (c, cws.(c)); (d, cws.(d)) ] in
          Alcotest.check Alcotest.string
            (Printf.sprintf "subset %d%d%d%d" a b c d)
            m (decode_exn ~n ~k shares)
        done
      done
    done
  done

let test_edge_sizes () =
  List.iter
    (fun len ->
      let m = msg len in
      let n = 7 and k = 5 in
      let cws = Rs.encode ~n ~k m in
      let shares = List.init k (fun i -> (n - 1 - i, cws.(n - 1 - i))) in
      Alcotest.check Alcotest.string (Printf.sprintf "len %d" len) m
        (decode_exn ~n ~k shares))
    [ 0; 1; 2; 9; 10; 11; 63; 64; 65 ]

let test_k_equals_n () =
  let m = msg 33 in
  let cws = Rs.encode ~n:4 ~k:4 m in
  let shares = List.init 4 (fun i -> (i, cws.(i))) in
  Alcotest.check Alcotest.string "k = n" m (decode_exn ~n:4 ~k:4 shares)

let test_k_equals_one () =
  let m = msg 12 in
  let cws = Rs.encode ~n:5 ~k:1 m in
  Alcotest.check Alcotest.string "k = 1 replication" m
    (decode_exn ~n:5 ~k:1 [ (3, cws.(3)) ])

let test_defensive_decode () =
  let m = msg 40 in
  let n = 8 and k = 5 in
  let cws = Rs.encode ~n ~k m in
  let err = function Error _ -> true | Ok _ -> false in
  Alcotest.check Alcotest.bool "too few" true
    (err (Rs.decode ~n ~k [ (0, cws.(0)); (1, cws.(1)) ]));
  Alcotest.check Alcotest.bool "duplicates don't count" true
    (err (Rs.decode ~n ~k (List.init k (fun _ -> (0, cws.(0))))));
  Alcotest.check Alcotest.bool "out-of-range index" true
    (err
       (Rs.decode ~n ~k
          ((n + 3, cws.(0)) :: List.init (k - 1) (fun i -> (i, cws.(i))))));
  Alcotest.check Alcotest.bool "inconsistent lengths" true
    (err
       (Rs.decode ~n ~k
          ((0, cws.(0) ^ "\000\000") :: List.init (k - 1) (fun i -> (i + 1, cws.(i + 1))))));
  Alcotest.check Alcotest.bool "odd codeword length" true
    (err (Rs.decode ~n ~k (List.init k (fun i -> (i, "\000")))));
  (* Extra shares beyond k are ignored. *)
  Alcotest.check Alcotest.string "extra shares ok" m
    (decode_exn ~n ~k (Array.to_list (Array.mapi (fun i c -> (i, c)) cws)))

let test_params_validation () =
  Alcotest.check_raises "k = 0" (Invalid_argument "Reed_solomon: bad (n, k)") (fun () ->
      ignore (Rs.encode ~n:4 ~k:0 "x"));
  Alcotest.check_raises "k > n" (Invalid_argument "Reed_solomon: bad (n, k)") (fun () ->
      ignore (Rs.encode ~n:4 ~k:5 "x"))

let prop_roundtrip =
  QCheck.Test.make ~name:"random (n,k,msg,subset) roundtrip" ~count:150
    QCheck.(quad (2 -- 20) small_nat (string_of_size Gen.(0 -- 200)) int)
    (fun (n, k0, m, seed) ->
      let k = 1 + (k0 mod n) in
      let cws = Rs.encode ~n ~k m in
      (* Pseudo-random k-subset from the seed. *)
      let idx = Array.init n (fun i -> i) in
      let st = ref (abs seed + 1) in
      for i = n - 1 downto 1 do
        st := (!st * 1103515245) + 12345;
        let j = abs !st mod (i + 1) in
        let tmp = idx.(i) in
        idx.(i) <- idx.(j);
        idx.(j) <- tmp
      done;
      let shares = List.init k (fun i -> (idx.(i), cws.(idx.(i)))) in
      match Rs.decode ~n ~k shares with Ok m' -> String.equal m m' | Error _ -> false)

(* ---- differential: matrix-form codec vs the seed reference path -------- *)

let test_all_k_subsets_differential () =
  (* Every codeword and every k-subset decode must be bit-identical between
     the matrix codec and Reed_solomon_ref. *)
  let m = msg 37 in
  let n = 7 and k = 4 in
  let codec = Rs.ctx ~n ~k in
  let cws = Rs.encode_with codec m in
  let ref_cws = Reed_solomon_ref.encode ~n ~k m in
  Array.iteri
    (fun i cw ->
      Alcotest.check Alcotest.string (Printf.sprintf "codeword %d" i) ref_cws.(i) cw)
    cws;
  for mask = 0 to (1 lsl n) - 1 do
    let idxs = List.filter (fun i -> mask land (1 lsl i) <> 0) (List.init n Fun.id) in
    if List.length idxs = k then begin
      let shares = List.map (fun i -> (i, cws.(i))) idxs in
      let fast = Rs.decode_with codec shares in
      let slow = Reed_solomon_ref.decode ~n ~k shares in
      Alcotest.check Alcotest.bool
        (Printf.sprintf "subset %x decodes equally" mask)
        true
        (fast = slow && fast = Ok m)
    end
  done

let test_ctx_paths_agree () =
  let m = msg 64 in
  let n = 9 and k = 6 in
  let codec = Rs.ctx ~n ~k in
  Alcotest.check Alcotest.bool "ctx is memoized" true (codec == Rs.ctx ~n ~k);
  Alcotest.check
    (Alcotest.array Alcotest.string)
    "encode_with = encode" (Rs.encode ~n ~k m) (Rs.encode_with codec m);
  let shares = List.init k (fun i -> (n - 1 - i, (Rs.encode ~n ~k m).(n - 1 - i))) in
  Alcotest.check Alcotest.bool "decode_with = decode" true
    (Rs.decode_with codec shares = Rs.decode ~n ~k shares);
  Alcotest.check_raises "ctx validates params"
    (Invalid_argument "Reed_solomon: bad (n, k)") (fun () ->
      ignore (Rs.ctx ~n:4 ~k:5))

let prop_encode_matches_ref =
  QCheck.Test.make ~name:"matrix encode = reference encode (bit-identical)"
    ~count:200
    QCheck.(triple (2 -- 24) small_nat (string_of_size Gen.(0 -- 300)))
    (fun (n, k0, m) ->
      let k = 1 + (k0 mod n) in
      let fast = Rs.encode ~n ~k m in
      let slow = Reed_solomon_ref.encode ~n ~k m in
      Array.for_all2 String.equal fast slow)

let prop_decode_matches_ref =
  QCheck.Test.make ~name:"matrix decode = reference decode on random k-subset"
    ~count:200
    QCheck.(quad (2 -- 16) small_nat (string_of_size Gen.(0 -- 200)) int)
    (fun (n, k0, m, seed) ->
      let k = 1 + (k0 mod n) in
      let cws = Rs.encode ~n ~k m in
      let idx = Array.init n (fun i -> i) in
      let st = ref (abs seed + 1) in
      for i = n - 1 downto 1 do
        st := (!st * 1103515245) + 12345;
        let j = abs !st mod (i + 1) in
        let tmp = idx.(i) in
        idx.(i) <- idx.(j);
        idx.(j) <- tmp
      done;
      let shares = List.init k (fun i -> (idx.(i), cws.(idx.(i)))) in
      let fast = Rs.decode ~n ~k shares in
      fast = Reed_solomon_ref.decode ~n ~k shares && fast = Ok m)

let prop_codeword_size_linear =
  QCheck.Test.make ~name:"codeword size is O(len/k)" ~count:100
    QCheck.(pair (1 -- 30) (int_bound 5000))
    (fun (k, len) ->
      let b = Rs.codeword_bytes ~k ~msg_bytes:len in
      b >= 2 && b * k <= len + 4 + (2 * k))

let suite =
  [
    Alcotest.test_case "systematic roundtrip" `Quick test_systematic_roundtrip;
    Alcotest.test_case "parity-only roundtrip" `Quick test_parity_only_roundtrip;
    Alcotest.test_case "all k-subsets (n=6,k=4)" `Quick test_all_k_subsets_small;
    Alcotest.test_case "edge sizes" `Quick test_edge_sizes;
    Alcotest.test_case "k = n" `Quick test_k_equals_n;
    Alcotest.test_case "k = 1" `Quick test_k_equals_one;
    Alcotest.test_case "defensive decode" `Quick test_defensive_decode;
    Alcotest.test_case "parameter validation" `Quick test_params_validation;
    Alcotest.test_case "all k-subsets differential (n=7,k=4)" `Quick
      test_all_k_subsets_differential;
    Alcotest.test_case "ctx paths agree" `Quick test_ctx_paths_agree;
    QCheck_alcotest.to_alcotest prop_encode_matches_ref;
    QCheck_alcotest.to_alcotest prop_decode_matches_ref;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_codeword_size_linear;
  ]
