(* Field axioms and table sanity for GF(2^16). *)

module F = Gf65536

let arb_elt = QCheck.int_bound 0xffff
let arb_nonzero = QCheck.map (fun x -> 1 + (x mod 0xffff)) (QCheck.int_bound 100000)

let test_basics () =
  Alcotest.check Alcotest.int "order" 65536 F.order;
  Alcotest.check Alcotest.int "add self" 0 (F.add 0x1234 0x1234);
  Alcotest.check Alcotest.int "mul one" 0xbeef (F.mul 0xbeef F.one);
  Alcotest.check Alcotest.int "mul zero" 0 (F.mul 0xbeef F.zero);
  Alcotest.check Alcotest.int "exp 0" 1 (F.exp 0);
  Alcotest.check Alcotest.int "exp 1 is generator" 2 (F.exp 1);
  Alcotest.check Alcotest.int "log generator" 1 (F.log 2);
  Alcotest.check Alcotest.int "full cycle" 1 (F.exp 65535);
  Alcotest.check_raises "inv 0" Division_by_zero (fun () -> ignore (F.inv 0));
  Alcotest.check_raises "div by 0" Division_by_zero (fun () -> ignore (F.div 1 0));
  Alcotest.check_raises "out of range" (Invalid_argument "Gf65536: out of range")
    (fun () -> ignore (F.add 0x10000 1))

let test_pow () =
  Alcotest.check Alcotest.int "pow 0 0" 1 (F.pow 0 0);
  Alcotest.check Alcotest.int "pow 0 5" 0 (F.pow 0 5);
  Alcotest.check Alcotest.int "pow x 1" 0x1234 (F.pow 0x1234 1);
  Alcotest.check Alcotest.int "pow via mul" (F.mul 7 (F.mul 7 7)) (F.pow 7 3)

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count:500 gen f)

let suite =
  [
    Alcotest.test_case "basics" `Quick test_basics;
    Alcotest.test_case "pow" `Quick test_pow;
    prop "mul commutative" (QCheck.pair arb_elt arb_elt) (fun (a, b) ->
        F.mul a b = F.mul b a);
    prop "mul associative" (QCheck.triple arb_elt arb_elt arb_elt) (fun (a, b, c) ->
        F.mul a (F.mul b c) = F.mul (F.mul a b) c);
    prop "distributive" (QCheck.triple arb_elt arb_elt arb_elt) (fun (a, b, c) ->
        F.mul a (F.add b c) = F.add (F.mul a b) (F.mul a c));
    prop "inverse" arb_nonzero (fun a -> F.mul a (F.inv a) = F.one);
    prop "div inverts mul" (QCheck.pair arb_elt arb_nonzero) (fun (a, b) ->
        F.div (F.mul a b) b = a);
    prop "exp/log roundtrip" arb_nonzero (fun a -> F.exp (F.log a) = a);
    prop "add is involution" (QCheck.pair arb_elt arb_elt) (fun (a, b) ->
        F.add (F.add a b) b = a);
    (* Unchecked hot-loop kernels agree with the checked API. *)
    prop "mul_unsafe = mul" (QCheck.pair arb_elt arb_elt) (fun (a, b) ->
        F.mul_unsafe a b = F.mul a b);
    prop "dot = sum of muls"
      (QCheck.pair (QCheck.list_of_size QCheck.Gen.(1 -- 8) arb_elt) arb_elt)
      (fun (coeffs, y0) ->
        let k = List.length coeffs in
        let coeffs = Array.of_list coeffs in
        let ys = Array.init k (fun j -> (y0 + (j * 257)) land 0xffff) in
        let coeff_logs =
          Array.map (fun c -> if c = 0 then -1 else F.log c) coeffs
        in
        let expected =
          let acc = ref 0 in
          Array.iteri (fun j c -> acc := F.add !acc (F.mul c ys.(j))) coeffs;
          !acc
        in
        F.dot ~coeff_logs ~pos:0 ~ys ~k = expected);
  ]
