(* Telemetry: the ledger-equality invariant on every backend (sim, unix,
   engine sim/unix), canonical JSONL determinism, cross-backend export
   equality, and the convex-hull convergence probes. *)

open Net

let n = 7
let t = 2
let bits = 64

let scenario ?(attack = Workload.Outlier_high) ?(bits = bits) ~seed () =
  let rng = Prng.create seed in
  let corrupt = Workload.spread_corrupt ~n ~t in
  let inputs =
    Workload.clustered_bits rng ~n ~bits ~shared_prefix_bits:(bits / 2)
  in
  (corrupt, Workload.apply_input_attack attack ~corrupt inputs)

(* ---- ledger equality ------------------------------------------------------ *)

let test_ledger_sim () =
  let corrupt, inputs = scenario ~seed:3 () in
  let tm = Telemetry.create () in
  let report =
    Workload.run_int ~telemetry:tm ~n ~t ~corrupt
      ~adversary:(Adversary.equivocate ~seed:5)
      ~inputs Workload.pi_z.Workload.run
  in
  Alcotest.check Alcotest.int "span bits = Metrics.honest_bits"
    report.Workload.honest_bits
    (Telemetry.honest_bits_total tm);
  Alcotest.check Alcotest.int "per-session query agrees"
    report.Workload.honest_bits
    (Telemetry.honest_bits tm ~session:0);
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "label_bits = Metrics.labels" report.Workload.labels
    (Telemetry.label_bits tm)

let test_ledger_unix_and_cross_backend () =
  let n = 4 and t = 1 in
  let inputs = Array.init n (fun i -> Bigint.of_int (70 + i)) in
  let protocol ctx = Convex.agree_int ctx inputs.(ctx.Ctx.me) in
  let tm_unix = Telemetry.create () in
  let outs, stats = Net_unix.run ~t ~telemetry:tm_unix ~n protocol in
  Alcotest.check Alcotest.int "span bits = 8 x payload bytes"
    (8 * stats.Net_unix.bytes_sent)
    (Telemetry.honest_bits_total tm_unix);
  (* The same protocol in an honest simulator run: the two recorders use the
     same round conventions, so the exports agree byte for byte. *)
  let tm_sim = Telemetry.create () in
  let outcome =
    Sim.run ~telemetry:tm_sim ~n ~t
      ~corrupt:(Array.make n false)
      ~adversary:Adversary.passive protocol
  in
  Alcotest.check Alcotest.int "sim ledger"
    outcome.Sim.metrics.Metrics.honest_bits
    (Telemetry.honest_bits_total tm_sim);
  Alcotest.check Alcotest.string "sim and unix export identical JSONL"
    (Telemetry.to_jsonl tm_sim)
    (Telemetry.to_jsonl tm_unix);
  Array.iteri
    (fun i o ->
      Alcotest.check Alcotest.bool
        (Printf.sprintf "party %d outputs agree" i)
        true
        (Bigint.equal o (Option.get outcome.Sim.outputs.(i))))
    outs

let test_ledger_engine_sim () =
  let corrupt = Workload.spread_corrupt ~n ~t in
  let sessions = 4 in
  let inputs =
    Array.init sessions (fun k ->
        let rng = Prng.create (11 + k) in
        Workload.apply_input_attack Workload.Outlier_high ~corrupt
          (Workload.clustered_bits rng ~n ~bits ~shared_prefix_bits:(bits / 2)))
  in
  (* Non-contiguous sids and staggered arrivals: the ledger must hold per
     session id, not per input slot. *)
  let specs =
    List.init sessions (fun k ->
        Engine.session ~start_round:(k * 2)
          ~adversary:(Adversary.equivocate ~seed:(50 + k))
          ~sid:(k * 3)
          (fun ctx -> Convex.agree_int ctx inputs.(k).(ctx.Ctx.me)))
  in
  let tm = Telemetry.create () in
  let outcome = Engine.run_sim ~telemetry:tm ~n ~t ~corrupt specs in
  List.iter
    (fun r ->
      Alcotest.check Alcotest.int
        (Printf.sprintf "session %d ledger" r.Engine.r_sid)
        r.Engine.r_metrics.Metrics.honest_bits
        (Telemetry.honest_bits tm ~session:r.Engine.r_sid))
    outcome.Engine.sessions;
  Alcotest.check Alcotest.int "aggregate ledger"
    outcome.Engine.aggregate.Engine.honest_bits_total
    (Telemetry.honest_bits_total tm);
  Alcotest.check (Alcotest.list Alcotest.int) "session ids recorded"
    [ 0; 3; 6; 9 ] (Telemetry.sessions tm)

let test_ledger_engine_unix () =
  let n = 4 and t = 1 in
  let sessions = 4 in
  let specs =
    List.init sessions (fun k ->
        Engine.session ~start_round:k ~sid:k (fun ctx ->
            Convex.agree_int ctx (Bigint.of_int (100 + (10 * k) + ctx.Ctx.me))))
  in
  let tm = Telemetry.create () in
  let outcome = Engine.run_unix ~t ~telemetry:tm ~n specs in
  List.iter
    (fun r ->
      Alcotest.check Alcotest.int
        (Printf.sprintf "session %d ledger" r.Engine.r_sid)
        r.Engine.r_metrics.Metrics.honest_bits
        (Telemetry.honest_bits tm ~session:r.Engine.r_sid))
    outcome.Engine.sessions;
  Alcotest.check Alcotest.int "aggregate ledger"
    outcome.Engine.aggregate.Engine.honest_bits_total
    (Telemetry.honest_bits_total tm)

(* ---- canonical export ----------------------------------------------------- *)

let test_jsonl_deterministic () =
  let go () =
    let corrupt, inputs = scenario ~seed:9 () in
    let tm = Telemetry.create () in
    Telemetry.set_meta tm "seed" "9";
    ignore
      (Workload.run_int ~telemetry:tm ~n ~t ~corrupt
         ~adversary:(Adversary.equivocate ~seed:9)
         ~inputs Workload.pi_z.Workload.run);
    Telemetry.to_jsonl tm
  in
  let a = go () and b = go () in
  Alcotest.check Alcotest.bool "two runs, byte-identical JSONL" true
    (String.equal a b);
  (* Minimal schema sanity on the canonical export: one total line, every
     line a JSON object with a "kind" key. *)
  let lines = String.split_on_char '\n' (String.trim a) in
  List.iter
    (fun l ->
      Alcotest.check Alcotest.bool "line is an object with kind" true
        (String.length l > 10
        && l.[0] = '{'
        && l.[String.length l - 1] = '}'
        && String.sub l 0 9 = {|{"kind":"|}))
    lines;
  let totals =
    List.filter
      (fun l -> String.sub l 0 16 = {|{"kind":"total",|})
      lines
  in
  Alcotest.check Alcotest.int "exactly one total line" 1 (List.length totals)

(* ---- convergence probes --------------------------------------------------- *)

let widths curve = List.map (fun (lo, hi) -> Bigint.sub hi lo) curve

let check_monotone name curve =
  Alcotest.check Alcotest.bool (name ^ ": probe fired") true (curve <> []);
  List.iter
    (fun w ->
      Alcotest.check Alcotest.bool (name ^ ": width >= 0") true
        (Bigint.compare w Bigint.zero >= 0))
    (widths curve);
  let rec mono = function
    | a :: (b :: _ as rest) -> Bigint.compare b a <= 0 && mono rest
    | _ -> true
  in
  Alcotest.check Alcotest.bool (name ^ ": monotone non-increasing") true
    (mono (widths curve))

let convergence_of ?bits ~protocol ~adversary ~attack ~key ~seed () =
  let corrupt, inputs = scenario ~attack ?bits ~seed () in
  let tm = Telemetry.create () in
  ignore
    (Workload.run_int ~telemetry:tm ~n ~t ~corrupt ~adversary ~inputs protocol);
  (tm, Telemetry.convergence tm ~session:0 ~key)

let test_convergence_find_prefix () =
  (* bits = 32 < n^2 = 49: Pi_Z takes the short regime, which binary-searches
     bit windows via FINDPREFIX. *)
  let tm, honest_curve =
    convergence_of ~bits:32 ~protocol:Workload.pi_z.Workload.run
      ~adversary:Adversary.passive ~attack:Workload.Honest_inputs
      ~key:"find_prefix.v" ~seed:21 ()
  in
  check_monotone "find_prefix/honest" honest_curve;
  Alcotest.check Alcotest.bool "key listed" true
    (List.mem "find_prefix.v" (Telemetry.probe_keys tm ~session:0));
  let _, adv_curve =
    convergence_of ~bits:32 ~protocol:Workload.pi_z.Workload.run
      ~adversary:(Adversary.equivocate ~seed:5)
      ~attack:Workload.Outlier_high ~key:"find_prefix.v" ~seed:22 ()
  in
  check_monotone "find_prefix/equivocate" adv_curve

let test_convergence_find_prefix_blocks () =
  (* bits = 64 > n^2 = 49: Pi_Z takes the long regime, which searches over
     blocks via FINDPREFIXBLOCKS. *)
  let _, honest_curve =
    convergence_of ~protocol:Workload.pi_z.Workload.run
      ~adversary:Adversary.passive ~attack:Workload.Honest_inputs
      ~key:"find_prefix_blocks.v" ~seed:23 ()
  in
  check_monotone "find_prefix_blocks/honest" honest_curve;
  let _, adv_curve =
    convergence_of ~protocol:Workload.pi_z.Workload.run
      ~adversary:(Adversary.equivocate ~seed:6)
      ~attack:Workload.Outlier_high ~key:"find_prefix_blocks.v" ~seed:24 ()
  in
  check_monotone "find_prefix_blocks/equivocate" adv_curve

(* ---- probes-off recorder -------------------------------------------------- *)

let test_probes_off () =
  (* A ~probes:false recorder must keep the exact same span ledger while
     recording zero probes (the runtimes skip the value render entirely). *)
  let run ~telemetry =
    let corrupt, inputs = scenario ~seed:3 () in
    Workload.run_int ~telemetry ~n ~t ~corrupt
      ~adversary:(Adversary.equivocate ~seed:5)
      ~inputs Workload.pi_z.Workload.run
  in
  let tm_full = Telemetry.create () in
  let report = run ~telemetry:tm_full in
  let tm_spans = Telemetry.create ~probes:false () in
  let _ = run ~telemetry:tm_spans in
  Alcotest.check Alcotest.bool "flag readable" false
    (Telemetry.capture_probes tm_spans);
  Alcotest.check Alcotest.int "same span ledger"
    report.Workload.honest_bits
    (Telemetry.honest_bits_total tm_spans);
  Alcotest.check
    (Alcotest.list Alcotest.string)
    "no probe keys" []
    (Telemetry.probe_keys tm_spans ~session:0);
  Alcotest.check Alcotest.bool "full recorder did capture probes" true
    (Telemetry.probe_keys tm_full ~session:0 <> [])

let test_convergence_high_cost_ca () =
  let protocol = (Workload.high_cost_ca ~bits).Workload.run in
  let _, honest_curve =
    convergence_of ~protocol ~adversary:Adversary.passive
      ~attack:Workload.Honest_inputs ~key:"high_cost_ca.current" ~seed:31 ()
  in
  check_monotone "high_cost_ca/honest" honest_curve;
  (* The terminal probe fires on exit: honest estimates have converged. *)
  (match List.rev honest_curve with
  | (lo, hi) :: _ ->
      Alcotest.check Alcotest.bool "agreement at exit" true (Bigint.equal lo hi)
  | [] -> ());
  let _, adv_curve =
    convergence_of ~protocol
      ~adversary:(Adversary.equivocate ~seed:5)
      ~attack:Workload.Outlier_high ~key:"high_cost_ca.current" ~seed:32 ()
  in
  check_monotone "high_cost_ca/equivocate" adv_curve

let suite =
  [
    Alcotest.test_case "ledger: sim" `Quick test_ledger_sim;
    Alcotest.test_case "ledger: unix + cross-backend JSONL" `Quick
      test_ledger_unix_and_cross_backend;
    Alcotest.test_case "ledger: engine sim (K=4)" `Quick test_ledger_engine_sim;
    Alcotest.test_case "ledger: engine unix (K=4)" `Quick
      test_ledger_engine_unix;
    Alcotest.test_case "jsonl deterministic" `Quick test_jsonl_deterministic;
    Alcotest.test_case "probes-off recorder" `Quick test_probes_off;
    Alcotest.test_case "convergence: find_prefix" `Quick
      test_convergence_find_prefix;
    Alcotest.test_case "convergence: find_prefix_blocks" `Quick
      test_convergence_find_prefix_blocks;
    Alcotest.test_case "convergence: high_cost_ca" `Quick
      test_convergence_high_cost_ca;
  ]
