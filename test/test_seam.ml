(* The Pi_BA seam's invisibility contract: functorizing the Pi_Z stack over
   Ba.Substrate.S must not move a single bit of the default path. The pinned
   constants below were measured on the pre-refactor hard-wired stack (CLI
   scenarios of this repository, commit 3e9ad4c) — output value, honest and
   byzantine bit counts and round count under the equivocating adversary.
   Both the [include Make (Unauthenticated)] default and an explicit
   [Ca_int.Make (Ba.Substrate.Unauthenticated)] instantiation must reproduce
   them exactly.

   Also here: the CLI contract for the seam's surface — unknown --ba
   backends exit 2 with a usage message. *)

open Net

type pinned = {
  p_output : string;
  p_honest_bits : int;
  p_byz_bits : int;
  p_rounds : int;
}

(* ca_cli's exact wiring: same PRNG construction, workload parameters,
   corrupt-set placement, input attack and adversary seeding. *)
let run_cli_scenario ~n ~t ~workload ~attack ~seed run =
  let rng = Prng.create seed in
  let gen =
    match workload with
    | `Sensors -> fun () -> Workload.sensor_readings rng ~n ~base:(-1004) ~jitter:2
    | `Prices ->
        fun () -> Workload.price_feed rng ~n ~base:"2931" ~decimals:18 ~spread_ppm:200
  in
  let adversary = Adversary.equivocate ~seed in
  let corrupt = Workload.spread_corrupt ~n ~t in
  let inputs = Workload.apply_input_attack attack ~corrupt (gen ()) in
  Workload.run_int ~n ~t ~corrupt ~adversary ~inputs run

let check_pinned name pinned (report : Workload.report) =
  Alcotest.check Alcotest.bool (name ^ ": agreement") true report.Workload.agreement;
  Alcotest.check Alcotest.bool (name ^ ": convex validity") true
    report.Workload.convex_validity;
  (match report.Workload.outputs with
  | o :: _ ->
      Alcotest.check Alcotest.string (name ^ ": output")
        pinned.p_output (Bigint.to_string o)
  | [] -> Alcotest.fail (name ^ ": no honest outputs"));
  Alcotest.check Alcotest.int (name ^ ": honest bits") pinned.p_honest_bits
    report.Workload.honest_bits;
  Alcotest.check Alcotest.int (name ^ ": byzantine bits") pinned.p_byz_bits
    report.Workload.byz_bits;
  Alcotest.check Alcotest.int (name ^ ": rounds") pinned.p_rounds
    report.Workload.rounds

(* The explicit functor instantiation over the unauthenticated substrate —
   the seam path the [include] default must be literally identical to. *)
module CA_explicit = Convex.Ca_int.Make (Ba.Substrate.Unauthenticated)

let scenario_a =
  ( (fun run -> run_cli_scenario ~n:7 ~t:2 ~workload:`Sensors
        ~attack:Workload.Outlier_high ~seed:11 run),
    {
      p_output = "-1004";
      p_honest_bits = 404160;
      p_byz_bits = 137712;
      p_rounds = 186;
    } )

let scenario_b =
  ( (fun run -> run_cli_scenario ~n:5 ~t:1 ~workload:`Prices
        ~attack:Workload.Split_extremes ~seed:3 run),
    {
      p_output = "2931199342671478915071";
      p_honest_bits = 101408;
      p_byz_bits = 24736;
      p_rounds = 159;
    } )

let test_default_path_pinned () =
  List.iter
    (fun (name, (run_scn, pinned)) ->
      check_pinned (name ^ "/default") pinned (run_scn Workload.pi_z.Workload.run))
    [ ("A", scenario_a); ("B", scenario_b) ]

let test_explicit_functor_pinned () =
  List.iter
    (fun (name, (run_scn, pinned)) ->
      check_pinned (name ^ "/Make(Unauthenticated)") pinned (run_scn CA_explicit.run))
    [ ("A", scenario_a); ("B", scenario_b) ]

let test_default_equals_explicit_everywhere () =
  (* Beyond the two pinned scenarios: same outputs and metrics on a sweep of
     seeds — the two entry points are the same code, so any divergence is a
     seam regression. *)
  List.iter
    (fun seed ->
      let run_scn run =
        run_cli_scenario ~n:4 ~t:1 ~workload:`Sensors ~attack:Workload.Split_extremes
          ~seed run
      in
      let a = run_scn Workload.pi_z.Workload.run in
      let b = run_scn CA_explicit.run in
      Alcotest.check
        (Alcotest.list Alcotest.string)
        (Printf.sprintf "outputs at seed %d" seed)
        (List.map Bigint.to_string a.Workload.outputs)
        (List.map Bigint.to_string b.Workload.outputs);
      Alcotest.check Alcotest.int
        (Printf.sprintf "honest bits at seed %d" seed)
        a.Workload.honest_bits b.Workload.honest_bits;
      Alcotest.check Alcotest.int
        (Printf.sprintf "rounds at seed %d" seed)
        a.Workload.rounds b.Workload.rounds)
    [ 1; 2; 3 ]

(* ------------------------------------------------------------------ *)
(* CLI surface: unknown --ba backend exits 2                           *)
(* ------------------------------------------------------------------ *)

(* Resolve relative to the test binary: dune runs tests from the test build
   dir but `dune exec` runs them from the invocation dir. *)
let cli =
  Filename.concat (Filename.dirname Sys.executable_name) "../bin/ca_cli.exe"

let test_cli_unknown_ba_exits_2 () =
  if not (Sys.file_exists cli) then
    Alcotest.fail "ca_cli.exe missing — check the (deps ...) in test/dune";
  let code = Sys.command (cli ^ " run --ba bogus >/dev/null 2>/dev/null") in
  Alcotest.check Alcotest.int "unknown --ba backend" 2 code;
  let code = Sys.command (cli ^ " engine --ba bogus >/dev/null 2>/dev/null") in
  Alcotest.check Alcotest.int "unknown --ba backend (engine)" 2 code;
  (* And the flag's happy path parses: list shows the catalogue. *)
  let code = Sys.command (cli ^ " list >/dev/null 2>/dev/null") in
  Alcotest.check Alcotest.int "list" 0 code

let suite =
  [
    Alcotest.test_case "pinned scenarios: include default" `Quick
      test_default_path_pinned;
    Alcotest.test_case "pinned scenarios: explicit Make(Unauthenticated)" `Quick
      test_explicit_functor_pinned;
    Alcotest.test_case "default = explicit functor on seed sweep" `Quick
      test_default_equals_explicit_everywhere;
    Alcotest.test_case "ca_cli: unknown --ba exits 2" `Quick
      test_cli_unknown_ba_exits_2;
  ]
