(* Merkle accumulator: build/witness/verify, tamper resistance, codecs. *)

let values n = Array.init n (fun i -> Printf.sprintf "codeword-%d" i)

let test_roundtrip () =
  List.iter
    (fun n ->
      let vs = values n in
      let t = Merkle.build vs in
      Alcotest.check Alcotest.int "leaf count" n (Merkle.leaf_count t);
      for i = 0 to n - 1 do
        let w = Merkle.witness t i in
        Alcotest.check Alcotest.bool
          (Printf.sprintf "n=%d i=%d verifies" n i)
          true
          (Merkle.verify ~root:(Merkle.root t) ~index:i ~value:vs.(i) w)
      done)
    [ 1; 2; 3; 4; 5; 7; 8; 9; 16; 33 ]

let test_rejections () =
  let vs = values 7 in
  let t = Merkle.build vs in
  let root = Merkle.root t in
  let w2 = Merkle.witness t 2 in
  Alcotest.check Alcotest.bool "wrong value" false
    (Merkle.verify ~root ~index:2 ~value:"evil" w2);
  Alcotest.check Alcotest.bool "wrong index" false
    (Merkle.verify ~root ~index:3 ~value:vs.(2) w2);
  Alcotest.check Alcotest.bool "negative index" false
    (Merkle.verify ~root ~index:(-1) ~value:vs.(2) w2);
  Alcotest.check Alcotest.bool "wrong root" false
    (Merkle.verify ~root:(Sha256.digest "nope") ~index:2 ~value:vs.(2) w2);
  Alcotest.check Alcotest.bool "witness for other leaf" false
    (Merkle.verify ~root ~index:2 ~value:vs.(2) (Merkle.witness t 3));
  (* Out-of-tree index with a valid-looking path must fail (padding leaves
     are not provable values). *)
  Alcotest.check Alcotest.bool "padding leaf not provable" false
    (Merkle.verify ~root ~index:7 ~value:"" w2);
  Alcotest.check_raises "witness out of range" (Invalid_argument "Merkle.witness")
    (fun () -> ignore (Merkle.witness t 7));
  Alcotest.check_raises "empty build" (Invalid_argument "Merkle.build: empty") (fun () ->
      ignore (Merkle.build [||]))

let test_distinct_roots () =
  let r1 = Merkle.root (Merkle.build (values 4)) in
  let r2 = Merkle.root (Merkle.build (values 5)) in
  let r3 =
    let vs = values 4 in
    vs.(2) <- "tampered";
    Merkle.root (Merkle.build vs)
  in
  Alcotest.check Alcotest.bool "different sizes differ" false (String.equal r1 r2);
  Alcotest.check Alcotest.bool "different content differs" false (String.equal r1 r3)

let test_leaf_vs_node_domains () =
  (* A leaf containing the encoding of two digests must not verify as the
     parent of those digests (domain separation). *)
  let a = Sha256.digest "a" and b = Sha256.digest "b" in
  let forged = a ^ b in
  let t = Merkle.build [| forged; "x" |] in
  let root = Merkle.root t in
  Alcotest.check Alcotest.bool "no leaf/node confusion" false
    (String.equal root (Sha256.digest ("\x01" ^ Sha256.digest ("\x01" ^ a ^ b) ^ Sha256.digest ("\x00x"))))

let test_witness_codec () =
  let vs = values 9 in
  let t = Merkle.build vs in
  let w = Merkle.witness t 5 in
  (match Merkle.decode_witness (Merkle.encode_witness w) with
  | None -> Alcotest.fail "decode failed"
  | Some w' ->
      Alcotest.check Alcotest.bool "roundtrip verifies" true
        (Merkle.verify ~root:(Merkle.root t) ~index:5 ~value:vs.(5) w'));
  Alcotest.check Alcotest.bool "truncated rejected" true
    (Merkle.decode_witness (String.sub (Merkle.encode_witness w) 0 10) = None);
  Alcotest.check Alcotest.bool "empty rejected" true (Merkle.decode_witness "" = None);
  Alcotest.check Alcotest.bool "size accounted" true (Merkle.witness_size_bits w > 0)

(* ---- differential: Bytes-backed fast path vs the seed string-concat ---- *)

(* The seed Merkle build: per-node string concatenation. The fast path must
   produce bit-identical roots and witnesses. *)
let ref_levels values =
  let hash_leaf v = Sha256.digest ("\x00" ^ v) in
  let hash_node l r = Sha256.digest ("\x01" ^ l ^ r) in
  let empty_leaf = Sha256.digest "\x02" in
  let leaves = Array.length values in
  let padded =
    let rec go p = if p >= leaves then p else go (2 * p) in
    go 1
  in
  let level0 =
    Array.init padded (fun i -> if i < leaves then hash_leaf values.(i) else empty_leaf)
  in
  let rec up acc level =
    if Array.length level = 1 then List.rev (level :: acc)
    else
      let next =
        Array.init (Array.length level / 2) (fun i ->
            hash_node level.(2 * i) level.((2 * i) + 1))
      in
      up (level :: acc) next
  in
  Array.of_list (up [] level0)

let ref_witness levels i =
  let rec go level idx acc =
    if level >= Array.length levels - 1 then List.rev acc
    else go (level + 1) (idx / 2) (levels.(level).(idx lxor 1) :: acc)
  in
  go 0 i []

(* Reference witness on the wire: depth byte + concatenated 32-byte siblings
   (the format decode_witness accepts). *)
let ref_witness_encoding levels i =
  let path = ref_witness levels i in
  String.concat "" (String.make 1 (Char.chr (List.length path)) :: path)

let prop_fast_path_matches_ref =
  QCheck.Test.make ~name:"fast build = string-concat build (root + witnesses)"
    ~count:100
    QCheck.(pair (1 -- 40) (small_list (string_of_size Gen.(0 -- 60))))
    (fun (n, extra) ->
      (* Random leaf count with a mix of arbitrary and fixed contents. *)
      let vs =
        Array.init n (fun i ->
            match List.nth_opt extra (i mod (List.length extra + 1)) with
            | Some s -> s
            | None -> Printf.sprintf "leaf-%d" i)
      in
      let t = Merkle.build vs in
      let levels = ref_levels vs in
      String.equal (Merkle.root t) levels.(Array.length levels - 1).(0)
      && List.for_all
           (fun i ->
             String.equal
               (Merkle.encode_witness (Merkle.witness t i))
               (ref_witness_encoding levels i))
           (List.init n Fun.id))

let test_fast_path_matches_ref_exhaustive () =
  for n = 1 to 20 do
    let vs = Array.init n (fun i -> Printf.sprintf "codeword-%d-%d" n i) in
    let t = Merkle.build vs in
    let levels = ref_levels vs in
    Alcotest.check Alcotest.string
      (Printf.sprintf "n=%d root" n)
      (Sha256.to_hex levels.(Array.length levels - 1).(0))
      (Sha256.to_hex (Merkle.root t));
    for i = 0 to n - 1 do
      Alcotest.check Alcotest.string
        (Printf.sprintf "n=%d i=%d witness bytes" n i)
        (Sha256.to_hex (ref_witness_encoding levels i))
        (Sha256.to_hex (Merkle.encode_witness (Merkle.witness t i)));
      (* And the reference-built witness verifies against the fast root. *)
      match Merkle.decode_witness (ref_witness_encoding levels i) with
      | Some w ->
          Alcotest.check Alcotest.bool
            (Printf.sprintf "n=%d i=%d cross-verifies" n i)
            true
            (Merkle.verify ~root:(Merkle.root t) ~index:i ~value:vs.(i) w)
      | None -> Alcotest.fail "reference witness did not decode"
    done
  done

let prop_witness_sound =
  (* A witness never validates a different (index, value) pair. *)
  QCheck.Test.make ~name:"witness soundness" ~count:200
    QCheck.(triple (2 -- 20) small_nat small_nat)
    (fun (n, i, j) ->
      let i = i mod n and j = j mod n in
      let vs = values n in
      let t = Merkle.build vs in
      let w = Merkle.witness t i in
      let ok_self = Merkle.verify ~root:(Merkle.root t) ~index:i ~value:vs.(i) w in
      let cross = Merkle.verify ~root:(Merkle.root t) ~index:j ~value:vs.(j) w in
      ok_self && (i = j || not cross))

let suite =
  [
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "rejections" `Quick test_rejections;
    Alcotest.test_case "distinct roots" `Quick test_distinct_roots;
    Alcotest.test_case "domain separation" `Quick test_leaf_vs_node_domains;
    Alcotest.test_case "witness codec" `Quick test_witness_codec;
    Alcotest.test_case "fast path = reference (n <= 20, exhaustive)" `Quick
      test_fast_path_matches_ref_exhaustive;
    QCheck_alcotest.to_alcotest prop_fast_path_matches_ref;
    QCheck_alcotest.to_alcotest prop_witness_sound;
  ]
