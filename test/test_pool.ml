(* Domain pool: index coverage, result placement by index, chunked claiming,
   exception propagation, inline degradation (domains=1 and nested jobs),
   and pool reuse across jobs — the mechanics the multicore determinism
   contract (test_multicore.ml) rests on. *)

let test_parallel_for_covers () =
  let pool = Pool.shared () in
  List.iter
    (fun (domains, n) ->
      let hits = Array.init n (fun _ -> Atomic.make 0) in
      Pool.parallel_for ~domains pool ~n (fun i -> Atomic.incr hits.(i));
      Array.iteri
        (fun i h ->
          Alcotest.(check int)
            (Printf.sprintf "index %d ran once (domains=%d n=%d)" i domains n)
            1 (Atomic.get h))
        hits)
    [ (1, 17); (2, 17); (4, 4); (4, 64); (3, 500); (2, 0); (4, 1) ]

let test_map_results_by_index () =
  let pool = Pool.shared () in
  let expect = Array.init 100 (fun i -> (i * i) + 1) in
  List.iter
    (fun domains ->
      Alcotest.(check (array int))
        (Printf.sprintf "map lands by index (domains=%d)" domains)
        expect
        (Pool.map ~domains pool ~n:100 (fun i -> (i * i) + 1)))
    [ 1; 2; 4 ];
  Alcotest.(check (array int)) "map of n=0 is empty" [||]
    (Pool.map ~domains:4 pool ~n:0 (fun i -> i))

let test_map_chunks () =
  let pool = Pool.shared () in
  let expect = Array.init 37 string_of_int in
  List.iter
    (fun chunk ->
      Alcotest.(check (array string))
        (Printf.sprintf "map_chunks chunk=%d" chunk)
        expect
        (Pool.map_chunks ~domains:4 pool ~chunk ~n:37 string_of_int))
    [ 1; 2; 5; 37; 100 ]

let test_exception_propagates_then_reusable () =
  let pool = Pool.shared () in
  Alcotest.check_raises "first body exception re-raised" (Failure "boom")
    (fun () ->
      Pool.parallel_for ~domains:4 pool ~n:32 (fun i ->
          if i = 7 then failwith "boom"));
  (* The failed job must leave the pool serviceable. *)
  Alcotest.(check (array int)) "pool usable after a failed job"
    (Array.init 8 succ)
    (Pool.map ~domains:4 pool ~n:8 succ)

let test_nested_jobs_run_inline () =
  let pool = Pool.shared () in
  let total = Atomic.make 0 in
  Pool.parallel_for ~domains:4 pool ~n:8 (fun _ ->
      Pool.parallel_for ~domains:4 pool ~n:8 (fun _ -> Atomic.incr total));
  Alcotest.(check int) "all 64 nested bodies ran" 64 (Atomic.get total)

let test_private_pool_lifecycle () =
  let pool = Pool.create ~domains:3 in
  Alcotest.(check int) "size" 3 (Pool.size pool);
  Alcotest.(check (array int)) "private pool computes"
    (Array.init 10 (fun i -> i)) (Pool.map pool ~n:10 (fun i -> i));
  Pool.shutdown pool;
  Alcotest.check_raises "used after shutdown"
    (Invalid_argument "Pool: used after shutdown") (fun () ->
      ignore (Pool.map ~domains:2 pool ~n:10 (fun i -> i)))

let test_bounds () =
  Alcotest.(check bool) "recommended >= 1" true (Pool.recommended () >= 1);
  let pool = Pool.create ~domains:(Pool.max_domains + 50) in
  Alcotest.(check bool) "create clamps to max_domains" true
    (Pool.size pool <= Pool.max_domains);
  Pool.shutdown pool

let suite =
  [
    Alcotest.test_case "parallel_for covers every index once" `Quick
      test_parallel_for_covers;
    Alcotest.test_case "map places results by index" `Quick
      test_map_results_by_index;
    Alcotest.test_case "map_chunks matches map" `Quick test_map_chunks;
    Alcotest.test_case "exception propagates, pool stays usable" `Quick
      test_exception_propagates_then_reusable;
    Alcotest.test_case "nested jobs degrade to inline" `Quick
      test_nested_jobs_run_inline;
    Alcotest.test_case "private pool create/shutdown" `Quick
      test_private_pool_lifecycle;
    Alcotest.test_case "domain-count bounds" `Quick test_bounds;
  ]
