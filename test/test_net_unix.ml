(* Real-transport backend: the same protocol values produce the same outputs
   over Unix sockets + threads as in the deterministic simulator. *)

open Net

let bigint_t = Alcotest.testable Bigint.pp Bigint.equal

let test_roll_call () =
  let ( let* ) = Proto.( let* ) in
  let protocol (_ctx : Ctx.t) =
    let* inbox = Proto.broadcast "here" in
    let heard = ref 0 in
    Array.iter (fun m -> if m <> None then incr heard) inbox;
    Proto.return !heard
  in
  let outputs, stats = Net_unix.run ~n:5 protocol in
  Array.iter (fun h -> Alcotest.check Alcotest.int "hears all" 5 h) outputs;
  Alcotest.check Alcotest.int "rounds" 1 stats.Net_unix.rounds;
  Alcotest.check Alcotest.int "frames" (5 * 4) stats.Net_unix.frames_sent;
  Alcotest.check Alcotest.int "bytes" (5 * 4 * 4) stats.Net_unix.bytes_sent

let test_per_recipient_and_silence () =
  let ( let* ) = Proto.( let* ) in
  let protocol (ctx : Ctx.t) =
    (* Round 1: party 0 sends a distinct value to each peer, others silent.
       Round 2: everybody echoes what they received from 0. *)
    let* first =
      Proto.exchange (fun r ->
          if ctx.Ctx.me = 0 then Some (Printf.sprintf "to-%d" r) else None)
    in
    let got = Option.value ~default:"nothing" first.(0) in
    let* second = Proto.broadcast got in
    Proto.return (Array.map (Option.value ~default:"-") second)
  in
  let outputs, _ = Net_unix.run ~n:3 protocol in
  Array.iter
    (fun echoes ->
      Alcotest.check (Alcotest.array Alcotest.string) "echoes"
        [| "to-0"; "to-1"; "to-2" |] echoes)
    outputs

let test_phase_king_over_sockets () =
  let inputs = [| "alpha"; "beta"; "alpha"; "alpha" |] in
  let outputs, _ =
    Net_unix.run ~n:4 (fun ctx -> Ba.Phase_king.run_bytes ctx inputs.(ctx.Ctx.me))
  in
  let first = outputs.(0) in
  Array.iter (fun o -> Alcotest.check Alcotest.string "agreement" first o) outputs;
  Alcotest.check Alcotest.bool "output is an input" true
    (Array.exists (String.equal first) inputs)

let test_pi_z_cross_backend_determinism () =
  (* The same Π_Z instance must yield identical results on both backends. *)
  let n = 4 and t = 1 in
  let inputs = [| -1005; -1003; -1004; -1004 |] in
  let protocol ctx = Convex.agree_int ctx (Bigint.of_int inputs.(ctx.Ctx.me)) in
  let unix_outputs, stats = Net_unix.run ~n ~t protocol in
  let sim_outcome =
    Sim.run ~n ~t ~corrupt:(Array.make n false) ~adversary:Adversary.passive protocol
  in
  let sim_outputs =
    Array.of_list (Sim.honest_outputs ~corrupt:(Array.make n false) sim_outcome)
  in
  Alcotest.check (Alcotest.array bigint_t) "same outputs on both backends"
    sim_outputs unix_outputs;
  Alcotest.check Alcotest.int "same round count" sim_outcome.Sim.metrics.Metrics.rounds
    stats.Net_unix.rounds

let test_long_values_over_sockets () =
  (* Frames above the socket buffer granularity: 20 KB values, exercising
     the framed reader/writer paths and receiver-thread draining. *)
  let n = 4 in
  let big = Bigint.pred (Bigint.pow2 160_000) in
  let inputs =
    Array.init n (fun i -> Bigint.sub big (Bigint.of_int i))
  in
  let outputs, stats =
    Net_unix.run ~n (fun ctx -> Convex.agree_nat ctx inputs.(ctx.Ctx.me))
  in
  let first = outputs.(0) in
  Array.iter (fun o -> Alcotest.check bigint_t "agreement" first o) outputs;
  Alcotest.check Alcotest.bool "in range" true
    (Bigint.compare (Bigint.sub big (Bigint.of_int (n - 1))) first <= 0
    && Bigint.compare first big <= 0);
  Alcotest.check Alcotest.bool "moved real bytes" true (stats.Net_unix.bytes_sent > 100_000)

let test_parallel_over_sockets () =
  (* The multiplexing combinator must behave identically on the real
     transport: two phase-king instances side by side. *)
  let n = 4 in
  let inputs_a = [| "x"; "y"; "x"; "x" |] in
  let outputs, _ =
    Net_unix.run ~n (fun ctx ->
        Proto.both
          (Ba.Phase_king.run_bytes ctx inputs_a.(ctx.Ctx.me))
          (Ba.Phase_king.run_bit ctx (ctx.Ctx.me < 2)))
  in
  let first_a, first_b = outputs.(0) in
  Array.iter
    (fun (a, b) ->
      Alcotest.check Alcotest.string "branch A agrees" first_a a;
      Alcotest.check Alcotest.bool "branch B agrees" first_b b)
    outputs;
  Alcotest.check Alcotest.bool "A output is an input" true
    (Array.exists (String.equal first_a) inputs_a)

let test_exception_propagates () =
  Alcotest.check_raises "party failure surfaces" (Failure "boom") (fun () ->
      ignore
        (Net_unix.run ~n:3 (fun ctx ->
             if ctx.Ctx.me = 1 then failwith "boom" else Proto.return ())))

let open_fds () =
  match Sys.readdir "/proc/self/fd" with
  | entries -> Some (Array.length entries)
  | exception Sys_error _ -> None

let test_connect_absent_peer () =
  (* A deliberately absent peer: every attempt must fail fast (no kernel SYN
     timeout), the retries must actually happen, and no socket may leak. *)
  let missing = Unix.ADDR_UNIX "/tmp/ca-test-no-such-peer.sock" in
  (try Sys.remove "/tmp/ca-test-no-such-peer.sock" with Sys_error _ -> ());
  let before = open_fds () in
  let t0 = Unix.gettimeofday () in
  (match
     Net_unix.connect_with_retry ~attempts:3 ~timeout:0.2 ~backoff:0.01 missing
   with
  | _ -> Alcotest.fail "connect to absent peer succeeded"
  | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) -> ());
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "backoff between attempts" true (elapsed >= 0.03);
  Alcotest.(check bool) "fails promptly" true (elapsed < 5.0);
  (match (before, open_fds ()) with
  | Some b, Some a -> Alcotest.(check int) "no fd leaked" b a
  | _ -> ());
  Alcotest.check_raises "attempts < 1 rejected"
    (Invalid_argument "Net_unix.connect_with_retry: attempts < 1") (fun () ->
      ignore (Net_unix.connect_with_retry ~attempts:0 missing))

let test_connect_present_peer () =
  (* Happy path: a listening peer is reached on the first attempt and the
     returned socket is connected (a write succeeds). *)
  let path = Filename.temp_file "ca-test-peer" ".sock" in
  Sys.remove path;
  let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close srv with Unix.Unix_error _ -> ());
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Unix.bind srv (Unix.ADDR_UNIX path);
      Unix.listen srv 1;
      let fd = Net_unix.connect_with_retry (Unix.ADDR_UNIX path) in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let peer, _ = Unix.accept srv in
          let sent = Unix.write_substring fd "ping" 0 4 in
          Alcotest.(check int) "write on connected socket" 4 sent;
          let buf = Bytes.create 4 in
          let got = Unix.read peer buf 0 4 in
          Unix.close peer;
          Alcotest.(check string) "peer received" "ping"
            (Bytes.sub_string buf 0 got)))

let suite =
  [
    Alcotest.test_case "roll call" `Quick test_roll_call;
    Alcotest.test_case "per-recipient + silence" `Quick test_per_recipient_and_silence;
    Alcotest.test_case "phase-king over sockets" `Quick test_phase_king_over_sockets;
    Alcotest.test_case "Pi_Z cross-backend determinism" `Quick
      test_pi_z_cross_backend_determinism;
    Alcotest.test_case "long values over sockets" `Slow test_long_values_over_sockets;
    Alcotest.test_case "parallel over sockets" `Quick test_parallel_over_sockets;
    Alcotest.test_case "exception propagation" `Quick test_exception_propagates;
    Alcotest.test_case "connect: absent peer fails fast, no fd leak" `Quick
      test_connect_absent_peer;
    Alcotest.test_case "connect: present peer" `Quick test_connect_present_peer;
  ]
