(* Wire codecs: roundtrips and rejection of adversarial bytes. *)

open Wire

let roundtrip name w r v equal =
  Alcotest.check Alcotest.bool name true
    (match decode_full r (encode (w v)) with Some v' -> equal v v' | None -> false)

let test_scalars () =
  roundtrip "u8" w_u8 r_u8 200 ( = );
  roundtrip "u16" w_u16 r_u16 0xabcd ( = );
  roundtrip "bool t" w_bool r_bool true ( = );
  roundtrip "bool f" w_bool r_bool false ( = );
  List.iter
    (fun v -> roundtrip (Printf.sprintf "varint %d" v) w_varint r_varint v ( = ))
    [ 0; 1; 127; 128; 300; 16384; 1 lsl 30; max_int ];
  Alcotest.check_raises "u8 range" (Invalid_argument "Wire.w_u8") (fun () ->
      ignore (encode (w_u8 256)));
  Alcotest.check_raises "varint negative" (Invalid_argument "Wire.w_varint") (fun () ->
      ignore (encode (w_varint (-1))))

let test_composites () =
  roundtrip "bytes" w_bytes (r_bytes ()) "hello \x00 world" String.equal;
  roundtrip "empty bytes" w_bytes (r_bytes ()) "" String.equal;
  roundtrip "option some" (w_option w_bytes) (r_option (r_bytes ())) (Some "x") ( = );
  roundtrip "option none" (w_option w_bytes) (r_option (r_bytes ())) None ( = );
  roundtrip "list" (w_list w_varint) (r_list r_varint) [ 1; 2; 3; 500 ] ( = );
  roundtrip "pair" (w_pair w_bool w_bytes) (r_pair r_bool (r_bytes ())) (true, "yo") ( = );
  roundtrip "bits" w_bits (r_bits ()) (Bitstring.of_string "1101001") Bitstring.equal;
  roundtrip "empty bits" w_bits (r_bits ()) Bitstring.empty Bitstring.equal;
  Alcotest.check Alcotest.string "fixed is raw" "abc" (encode (w_fixed "abc"));
  Alcotest.check Alcotest.string "seq concatenates" "\001abc"
    (encode (seq [ w_bool true; w_fixed "abc" ]))

let none_is name r s =
  Alcotest.check Alcotest.bool name true (decode_full r s = None)

let test_adversarial () =
  none_is "truncated u16" r_u16 "\x01";
  none_is "trailing garbage" r_u8 "\x01\x02";
  none_is "bad bool" r_bool "\x07";
  none_is "bad option tag" (r_option r_u8) "\x05\x01";
  none_is "truncated bytes" (r_bytes ()) "\x05ab";
  none_is "oversized bytes claim" (r_bytes ~max:4 ()) "\x10aaaaaaaaaaaaaaaa";
  none_is "huge varint claim" (r_bytes ()) "\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff";
  none_is "list too long" (r_list ~max:2 r_u8) "\x03\x01\x02\x03";
  none_is "bits bad padding" (r_bits ()) "\x04\xff";
  none_is "bits truncated" (r_bits ()) "\x20\xaa";
  none_is "empty input for u8" r_u8 "";
  (* varint longer than 9 continuation bytes rejected *)
  none_is "varint overlong" r_varint "\x80\x80\x80\x80\x80\x80\x80\x80\x80\x80\x01"

let prop_varint_roundtrip =
  QCheck.Test.make ~name:"varint roundtrip" ~count:500 QCheck.(int_bound max_int)
    (fun v -> decode_full r_varint (encode (w_varint v)) = Some v)

let prop_bytes_roundtrip =
  QCheck.Test.make ~name:"bytes roundtrip" ~count:300 QCheck.string (fun s ->
      decode_full (r_bytes ()) (encode (w_bytes s)) = Some s)

let prop_random_bytes_never_crash =
  (* Decoders must be total on garbage. *)
  QCheck.Test.make ~name:"garbage never raises" ~count:500 QCheck.string (fun s ->
      let readers =
        [
          (fun s -> ignore (decode_full r_u8 s));
          (fun s -> ignore (decode_full r_varint s));
          (fun s -> ignore (decode_full (r_bytes ()) s));
          (fun s -> ignore (decode_full (r_list r_varint) s));
          (fun s -> ignore (decode_full (r_bits ()) s));
          (fun s -> ignore (decode_full (r_option (r_pair r_bool (r_bytes ()))) s));
        ]
      in
      List.for_all
        (fun r ->
          match r s with () -> true | exception _ -> false)
        readers)

let prop_list_roundtrip =
  QCheck.Test.make ~name:"list of pairs roundtrip" ~count:200
    QCheck.(small_list (pair small_nat string))
    (fun l ->
      decode_full (r_list (r_pair r_varint (r_bytes ()))) (encode (w_list (w_pair w_varint w_bytes) l))
      = Some l)

let test_session_frame () =
  let frame =
    { Wire.Frame.round = 42; entries = [ (0, "alpha"); (7, ""); (3, "beta") ] }
  in
  (match Wire.Frame.decode (Wire.Frame.encode frame) with
  | Some f ->
      Alcotest.check Alcotest.int "round" 42 f.Wire.Frame.round;
      Alcotest.check
        (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.string))
        "entries preserve order" frame.Wire.Frame.entries f.Wire.Frame.entries
  | None -> Alcotest.fail "frame roundtrip");
  (* Empty keep-alive frames are tiny and roundtrip too. *)
  let empty = { Wire.Frame.round = 0; entries = [] } in
  Alcotest.check Alcotest.int "empty frame is 2 bytes" 2
    (String.length (Wire.Frame.encode empty));
  Alcotest.check Alcotest.bool "empty roundtrip" true
    (Wire.Frame.decode (Wire.Frame.encode empty) = Some empty);
  (* Defensive: garbage and truncations decode to None, never raise. *)
  List.iter
    (fun s ->
      match Wire.Frame.decode s with
      | Some _ | None -> ())
    [ ""; "\xff"; "\x01\x05"; String.make 64 '\xee' ];
  Alcotest.check Alcotest.bool "truncated entry rejected" true
    (Wire.Frame.decode "\x00\x01\x03\x05ab" = None)

let prop_session_frame_roundtrip =
  QCheck.Test.make ~name:"session frame roundtrip" ~count:200
    QCheck.(pair small_nat (small_list (pair small_nat string)))
    (fun (round, entries) ->
      Wire.Frame.(decode (encode { round; entries })) = Some { Wire.Frame.round; entries })

(* ---- incremental frame-stream decoder ------------------------------------- *)

let u32_prefix body =
  let len = String.length body in
  Printf.sprintf "%c%c%c%c%s"
    (Char.chr ((len lsr 24) land 0xff))
    (Char.chr ((len lsr 16) land 0xff))
    (Char.chr ((len lsr 8) land 0xff))
    (Char.chr (len land 0xff))
    body

let stream_of frames =
  String.concat "" (List.map (fun f -> u32_prefix (Wire.Frame.encode f)) frames)

let drain dec =
  let rec go acc =
    match Wire.Frame.Decoder.next dec with
    | Ok (Some f) -> go (f :: acc)
    | Ok None -> Ok (List.rev acc)
    | Error msg -> Error msg
  in
  go []

(* Feed [s] in chunks of [size] bytes, draining after every chunk. *)
let feed_chunked dec s size =
  let frames = ref [] in
  let err = ref None in
  let i = ref 0 in
  while !i < String.length s && !err = None do
    let k = min size (String.length s - !i) in
    Wire.Frame.Decoder.feed dec (String.sub s !i k);
    i := !i + k;
    match drain dec with
    | Ok fs -> frames := !frames @ fs
    | Error msg -> err := Some msg
  done;
  match !err with Some msg -> Error msg | None -> Ok !frames

let sample_frames =
  [
    { Wire.Frame.round = 0; entries = [] };
    { Wire.Frame.round = 3; entries = [ (0, "alpha"); (5, "") ] };
    { Wire.Frame.round = 4; entries = [ (1, String.make 300 'x') ] };
    { Wire.Frame.round = 5; entries = List.init 20 (fun i -> (i, "p")) };
  ]

let test_decoder_split_boundaries () =
  let s = stream_of sample_frames in
  List.iter
    (fun size ->
      let dec = Wire.Frame.Decoder.create () in
      match feed_chunked dec s size with
      | Ok frames ->
          Alcotest.check Alcotest.bool
            (Printf.sprintf "chunk size %d recovers all frames" size)
            true (frames = sample_frames);
          Alcotest.check Alcotest.int
            (Printf.sprintf "chunk size %d leaves nothing buffered" size)
            0
            (Wire.Frame.Decoder.buffered dec)
      | Error msg -> Alcotest.fail msg)
    [ 1; 2; 3; 7; 64; String.length s ]

let test_decoder_truncation () =
  (* A prefix cut anywhere inside a frame is a clean "feed me more", at every
     possible cut point — decoding is total on truncation. *)
  let s = stream_of [ List.nth sample_frames 1 ] in
  for cut = 0 to String.length s - 1 do
    let dec = Wire.Frame.Decoder.create () in
    Wire.Frame.Decoder.feed dec (String.sub s 0 cut);
    match Wire.Frame.Decoder.next dec with
    | Ok None -> ()
    | Ok (Some _) -> Alcotest.fail (Printf.sprintf "cut %d: frame from prefix" cut)
    | Error msg -> Alcotest.fail (Printf.sprintf "cut %d: %s" cut msg)
  done

let test_decoder_oversize_and_garbage () =
  (* Declared length beyond the bound fails before any body arrives, and the
     error is sticky. *)
  let dec = Wire.Frame.Decoder.create ~max_frame:64 () in
  Wire.Frame.Decoder.feed dec (u32_prefix (String.make 65 'z'));
  (match Wire.Frame.Decoder.next dec with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized declared length accepted");
  Wire.Frame.Decoder.feed dec (stream_of [ List.hd sample_frames ]);
  (match Wire.Frame.Decoder.next dec with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "error not sticky");
  (* A well-formed prefix around an undecodable body also fails cleanly. *)
  let dec = Wire.Frame.Decoder.create () in
  Wire.Frame.Decoder.feed dec (u32_prefix "\xff\xff\xff\xff");
  match Wire.Frame.Decoder.next dec with
  | Error msg ->
      Alcotest.check Alcotest.string "body diagnostic" "undecodable frame body"
        msg
  | Ok _ -> Alcotest.fail "garbage body accepted"

let prop_decoder_chunked_roundtrip =
  QCheck.Test.make ~name:"frame stream roundtrip under random chunking"
    ~count:100
    QCheck.(
      pair
        (small_list (pair small_nat (small_list (pair small_nat string))))
        (int_range 1 17))
    (fun (raw, size) ->
      let frames =
        List.map (fun (round, entries) -> { Wire.Frame.round; entries }) raw
      in
      let dec = Wire.Frame.Decoder.create () in
      feed_chunked dec (stream_of frames) size = Ok frames)

(* ---- allocation-free encode/feed paths ≡ the legacy ones ------------------ *)

(* [encode_into] must produce byte-for-byte what [encode] does (and
   [encoded_size] must price it exactly) — the engine ledger accounts frames
   with [encoded_size] while the poll transport writes them with
   [encode_into], so these identities are what keeps the ledger equal to the
   bytes on the wire. *)
let frame_gen =
  QCheck.(pair small_nat (small_list (pair small_nat string)))

let prop_encode_into_differential =
  QCheck.Test.make ~name:"encode_into = encode (bytes and size)" ~count:300
    QCheck.(pair frame_gen (int_range 0 9))
    (fun ((round, entries), off) ->
      let f = { Wire.Frame.round; entries } in
      let legacy = Wire.Frame.encode f in
      let size = Wire.Frame.encoded_size f in
      size = String.length legacy
      &&
      let buf = Bytes.make (off + size + 3) '\xa5' in
      let fin = Wire.Frame.encode_into f buf off in
      fin = off + size
      && Bytes.sub_string buf off size = legacy
      (* neighbouring bytes untouched *)
      && Bytes.sub_string buf 0 off = String.make off '\xa5'
      && Bytes.sub_string buf fin 3 = "\xa5\xa5\xa5")

(* Like [feed_chunked], but through [feed_sub]: each chunk is planted at a
   non-zero offset of an oversized scratch (stale bytes around it) to prove
   the range — not the buffer — is what gets fed. *)
let feed_chunked_sub dec s size =
  let scratch = Bytes.make (size + 7) '\xee' in
  let frames = ref [] in
  let err = ref None in
  let i = ref 0 in
  while !i < String.length s && !err = None do
    let k = min size (String.length s - !i) in
    Bytes.blit_string s !i scratch 3 k;
    Wire.Frame.Decoder.feed_sub dec scratch 3 k;
    i := !i + k;
    match drain dec with
    | Ok fs -> frames := !frames @ fs
    | Error msg -> err := Some msg
  done;
  match !err with Some msg -> Error msg | None -> Ok !frames

let prop_feed_sub_differential =
  (* On arbitrary bytes — valid streams and garbage alike — [feed_sub]
     behaves exactly like [feed] under the same chunking. *)
  QCheck.Test.make ~name:"feed_sub = feed under random chunking" ~count:300
    QCheck.(pair string (int_range 1 17))
    (fun (s, size) ->
      let a = Wire.Frame.Decoder.create ~max_frame:4096 () in
      let b = Wire.Frame.Decoder.create ~max_frame:4096 () in
      feed_chunked a s size = feed_chunked_sub b s size
      && Wire.Frame.Decoder.buffered a = Wire.Frame.Decoder.buffered b)

let prop_feed_sub_stream_roundtrip =
  QCheck.Test.make ~name:"frame stream roundtrip via feed_sub" ~count:100
    QCheck.(pair (small_list frame_gen) (int_range 1 17))
    (fun (raw, size) ->
      let frames =
        List.map (fun (round, entries) -> { Wire.Frame.round; entries }) raw
      in
      let dec = Wire.Frame.Decoder.create () in
      feed_chunked_sub dec (stream_of frames) size = Ok frames)

let test_encode_into_edges () =
  (* Empty keep-alive frame: the 2-byte body every idle edge sends each
     round. *)
  let empty = { Wire.Frame.round = 0; entries = [] } in
  Alcotest.check Alcotest.int "empty encoded_size" 2
    (Wire.Frame.encoded_size empty);
  let buf = Bytes.make 4 'z' in
  Alcotest.check Alcotest.int "empty encode_into end" 3
    (Wire.Frame.encode_into empty buf 1);
  Alcotest.check Alcotest.string "empty bytes placed" "z\x00\x00z"
    (Bytes.to_string buf);
  Alcotest.check_raises "encode_into negative round"
    (Invalid_argument "Wire.w_varint") (fun () ->
      ignore (Wire.Frame.encode_into { Wire.Frame.round = -1; entries = [] } buf 0));
  Alcotest.check_raises "feed_sub bad range"
    (Invalid_argument "Wire.Frame.Decoder.feed_sub") (fun () ->
      Wire.Frame.Decoder.feed_sub (Wire.Frame.Decoder.create ()) buf 2 3)

let test_frame_at_exact_limit () =
  (* A frame of exactly [max_frame_bytes] is the largest the stream accepts:
     body = varint 0 (round) + varint 1 (count) + varint 0 (sid)
          + varint len (4 bytes here) + len payload bytes. *)
  let len = Wire.Frame.max_frame_bytes - 7 in
  let f = { Wire.Frame.round = 0; entries = [ (0, String.make len 'q') ] } in
  Alcotest.check Alcotest.int "sized at the limit" Wire.Frame.max_frame_bytes
    (Wire.Frame.encoded_size f);
  let buf = Bytes.create (Wire.Frame.encoded_size f) in
  let fin = Wire.Frame.encode_into f buf 0 in
  Alcotest.check Alcotest.int "filled exactly" (Bytes.length buf) fin;
  let dec = Wire.Frame.Decoder.create () in
  Wire.Frame.Decoder.feed dec (u32_prefix (Bytes.to_string buf));
  (match drain dec with
  | Ok [ f' ] ->
      Alcotest.check Alcotest.bool "limit frame roundtrips" true (f' = f)
  | Ok _ -> Alcotest.fail "limit frame: wrong frame count"
  | Error msg -> Alcotest.fail msg);
  Alcotest.check Alcotest.int "nothing buffered" 0
    (Wire.Frame.Decoder.buffered dec);
  (* One byte more and the declared length is rejected before the body. *)
  let over = { f with Wire.Frame.entries = [ (0, String.make (len + 1) 'q') ] } in
  let dec = Wire.Frame.Decoder.create () in
  Wire.Frame.Decoder.feed dec (u32_prefix (Wire.Frame.encode over));
  match Wire.Frame.Decoder.next dec with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized frame accepted"

let prop_decoder_garbage_total =
  (* Arbitrary bytes through the incremental decoder: [next] returns, it
     never raises — malformation is a value, not an exception. *)
  QCheck.Test.make ~name:"decoder total on garbage" ~count:300 QCheck.string
    (fun s ->
      let dec = Wire.Frame.Decoder.create ~max_frame:4096 () in
      match feed_chunked dec s 5 with Ok _ | Error _ -> true)

let suite =
  [
    Alcotest.test_case "scalars" `Quick test_scalars;
    Alcotest.test_case "incremental decoder: split boundaries" `Quick
      test_decoder_split_boundaries;
    Alcotest.test_case "incremental decoder: truncation at every cut" `Quick
      test_decoder_truncation;
    Alcotest.test_case "incremental decoder: oversize and garbage" `Quick
      test_decoder_oversize_and_garbage;
    QCheck_alcotest.to_alcotest prop_decoder_chunked_roundtrip;
    QCheck_alcotest.to_alcotest prop_decoder_garbage_total;
    Alcotest.test_case "encode_into: keep-alive and bad inputs" `Quick
      test_encode_into_edges;
    Alcotest.test_case "frame at exactly max_frame_bytes" `Quick
      test_frame_at_exact_limit;
    QCheck_alcotest.to_alcotest prop_encode_into_differential;
    QCheck_alcotest.to_alcotest prop_feed_sub_differential;
    QCheck_alcotest.to_alcotest prop_feed_sub_stream_roundtrip;
    Alcotest.test_case "composites" `Quick test_composites;
    Alcotest.test_case "adversarial bytes" `Quick test_adversarial;
    Alcotest.test_case "session frames" `Quick test_session_frame;
    QCheck_alcotest.to_alcotest prop_session_frame_roundtrip;
    QCheck_alcotest.to_alcotest prop_varint_roundtrip;
    QCheck_alcotest.to_alcotest prop_bytes_roundtrip;
    QCheck_alcotest.to_alcotest prop_random_bytes_never_crash;
    QCheck_alcotest.to_alcotest prop_list_roundtrip;
  ]
