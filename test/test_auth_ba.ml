(* The authenticated t < n/2 BA substrate (Auth_ba): agreement and validity
   of the quorum-certificate protocol under adversaries up to the n/2 bound,
   the native t < n/2 CA built on it, and the substrate view of the seam. *)

open Net

let bits_t = Alcotest.testable Bitstring.pp Bitstring.equal

(* Fresh per run: XMSS signers are stateful. *)
let fresh_setup ?(seed = 27182) ~n ~capacity () =
  Auth.Setup.generate ~seed ~n ~capacity

let bytes_spec = Ba.Phase_king.bytes_spec

let run_ba ~n ~t ~corrupt ~adversary inputs =
  let setup = fresh_setup ~n ~capacity:(t + 2) () in
  let xs = Auth.Auth_ba.of_setup setup in
  Sim.run ~setup:`Authenticated ~n ~t ~corrupt ~adversary (fun ctx ->
      Auth.Auth_ba.Xmss.run xs bytes_spec ctx ~instance:0 inputs.(ctx.Ctx.me))

let check_agreement ~corrupt outcome =
  match Sim.honest_outputs ~corrupt outcome with
  | [] -> Alcotest.fail "no honest parties"
  | v :: rest ->
      List.iter (Alcotest.check Alcotest.string "agreement" v) rest;
      v

let adversaries =
  [ Adversary.passive; Adversary.silent; Adversary.garbage ~seed:5;
    Adversary.bitflip ~seed:6; Adversary.equivocate ~seed:7 ]

let test_validity_unanimous () =
  (* t < n/2, beyond the n/3 bound: n = 5, t = 2. Honest unanimity must
     survive every adversary — only the common value can gather an input
     certificate, and bare proposals are rejected by certificate holders. *)
  let n = 5 and t = 2 in
  let corrupt = [| false; false; false; true; true |] in
  let inputs = Array.make n "honest-value" in
  List.iter
    (fun adversary ->
      let outcome = run_ba ~n ~t ~corrupt ~adversary inputs in
      let v = check_agreement ~corrupt outcome in
      Alcotest.check Alcotest.string
        (Printf.sprintf "unanimity vs %s" adversary.Adversary.name)
        "honest-value" v)
    adversaries

let test_agreement_mixed_inputs () =
  (* Honest inputs disagree: the output must still be common, and must be
     one of the honest inputs or the spec default (no fabricated value can
     gather a certificate — it would need an honest vote). *)
  let n = 5 and t = 2 in
  let corrupt = [| false; true; false; true; false |] in
  let inputs = [| "alpha"; "zzz"; "beta"; "zzz"; "gamma" |] in
  List.iter
    (fun adversary ->
      let outcome = run_ba ~n ~t ~corrupt ~adversary inputs in
      let v = check_agreement ~corrupt outcome in
      Alcotest.check Alcotest.bool
        (Printf.sprintf "output in honest inputs or default vs %s"
           adversary.Adversary.name)
        true
        (List.mem v [ "alpha"; "beta"; "gamma"; bytes_spec.Ba.Phase_king.default ]))
    adversaries

let test_forged_signatures_rejected () =
  (* An adversary that replaces every message with a validly-shaped but
     unsigned certificate claim: honest parties must treat it as garbage
     and still reach unanimity on their common input. *)
  let n = 5 and t = 2 in
  let corrupt = [| false; false; false; true; true |] in
  let inputs = Array.make n "target" in
  let forged =
    (* A plausible-looking certificate with junk signature bytes. *)
    Wire.(
      encode
        (seq
           [ w_varint 1; w_bytes "forged-value";
             w_list (w_pair w_varint w_bytes) [ (0, "AAAA"); (1, "BBBB"); (2, "CC") ] ]))
  in
  let adversary =
    Adversary.make ~name:"forged-certs" (fun _view ~sender:_ ~recipient:_ ->
        Some forged)
  in
  let outcome = run_ba ~n ~t ~corrupt ~adversary inputs in
  let v = check_agreement ~corrupt outcome in
  Alcotest.check Alcotest.string "forgeries ignored" "target" v

let test_binary_domain_honest_input () =
  (* Over the {"0","1"} domain the output is always an honest input: the
     default "" does not decode as either party's value but agreement still
     forces a certified value when honest parties hold both bits... the
     Lemma-2-shaped claim actually needed is weaker: output ∈ {honest
     inputs} ∪ {default}. With unanimous honest "1" it must be "1". *)
  let n = 5 and t = 2 in
  let corrupt = [| true; false; false; true; false |] in
  let inputs = [| "0"; "1"; "1"; "0"; "1" |] in
  let outcome = run_ba ~n ~t ~corrupt ~adversary:(Adversary.equivocate ~seed:11) inputs in
  let v = check_agreement ~corrupt outcome in
  Alcotest.check Alcotest.string "unanimous honest bit survives" "1" v

let test_rounds_model () =
  let n = 5 and t = 2 in
  let corrupt = Array.make n false in
  let inputs = Array.make n "r" in
  let outcome = run_ba ~n ~t ~corrupt ~adversary:Adversary.passive inputs in
  Alcotest.check Alcotest.int "4t+7 rounds" (Auth.Auth_ba.Xmss.rounds ~t)
    outcome.Sim.metrics.Metrics.rounds

let test_agree_convex_validity () =
  (* Native t < n/2 CA: output within the honest input range, common to all
     honest parties, for every adversary — at n = 5, t = 2, a corruption
     budget no plain-model CA can meet. *)
  let n = 5 and t = 2 and bits = 8 in
  let corrupt = [| false; true; false; true; false |] in
  let of_int k = Bitstring.pad_to bits (Bitstring.of_int k) in
  let inputs = [| of_int 10; of_int 255; of_int 20; of_int 0; of_int 30 |] in
  List.iter
    (fun adversary ->
      let setup = fresh_setup ~n ~capacity:(Auth.Auth_ba.required_capacity ~t ~instances:n) () in
      let xs = Auth.Auth_ba.of_setup setup in
      let outcome =
        Sim.run ~setup:`Authenticated ~n ~t ~corrupt ~adversary (fun ctx ->
            Auth.Auth_ba.Xmss.agree xs ctx ~bits inputs.(ctx.Ctx.me))
      in
      match Sim.honest_outputs ~corrupt outcome with
      | [] -> Alcotest.fail "no honest parties"
      | v :: rest ->
          List.iter (Alcotest.check bits_t "agreement" v) rest;
          let lo = of_int 10 and hi = of_int 30 in
          Alcotest.check Alcotest.bool
            (Printf.sprintf "convex validity vs %s" adversary.Adversary.name)
            true
            (Bitstring.compare lo v <= 0 && Bitstring.compare v hi <= 0))
    adversaries

let test_substrate_pi_z () =
  (* The seam end-to-end: Π_ℤ functorized over the authenticated substrate
     (still t < n/3 for the CA core) agrees and stays within the honest
     hull. Each party builds its substrate inside the protocol closure so
     the embedded instance counters advance in lockstep. *)
  let n = 4 and t = 1 in
  let corrupt = [| false; false; false; true |] in
  let inputs = [| Bigint.of_int (-7); Bigint.of_int 3; Bigint.of_int 5; Bigint.of_int 999 |] in
  let setup =
    fresh_setup ~n ~capacity:(Auth.Auth_ba.required_capacity ~t ~instances:64) ()
  in
  let outcome =
    Sim.run ~setup:`Authenticated ~n ~t ~corrupt ~adversary:(Adversary.equivocate ~seed:13)
      (fun ctx ->
        let module B = (val Auth.Auth_ba.substrate setup) in
        let module CA = Convex.Ca_int.Make (B) in
        CA.run ctx inputs.(ctx.Ctx.me))
  in
  match Sim.honest_outputs ~corrupt outcome with
  | [] -> Alcotest.fail "no honest parties"
  | v :: rest ->
      List.iter
        (fun w -> Alcotest.check Alcotest.bool "agreement" true (Bigint.equal v w))
        rest;
      Alcotest.check Alcotest.bool "convex validity" true
        (Bigint.compare (Bigint.of_int (-7)) v <= 0
        && Bigint.compare v (Bigint.of_int 5) <= 0)

let test_capacity_model () =
  (* The documented signing budget is sufficient: a full run at t = 2 spends
     at most t + 2 keys per party per instance. *)
  let n = 5 and t = 2 in
  let corrupt = Array.make n false in
  let inputs = [| "a"; "b"; "c"; "d"; "e" |] in
  let setup = fresh_setup ~n ~capacity:(t + 2) () in
  let xs = Auth.Auth_ba.of_setup setup in
  let outcome =
    Sim.run ~setup:`Authenticated ~n ~t ~corrupt ~adversary:Adversary.passive (fun ctx ->
        Auth.Auth_ba.Xmss.run xs bytes_spec ctx ~instance:0 inputs.(ctx.Ctx.me))
  in
  ignore (check_agreement ~corrupt outcome);
  Array.iter
    (fun signer ->
      Alcotest.check Alcotest.bool "within budget" true (Sigs.Xmss.remaining signer >= 0))
    setup.Auth.Setup.signers

(* ------------------------------------------------------------------ *)
(* Authenticated protocols under the engine runtimes                   *)
(* ------------------------------------------------------------------ *)

(* K sessions of the authenticated CA (Dolev-Strong based, t < n/2), each
   with its own fresh setup — XMSS signers are stateful, and the spec list
   is rebuilt per backend so sim and poll both start from virgin keys
   (Setup.generate is deterministic in the seed, so the runs are
   comparable). *)
let auth_ca_specs ~n ~sessions ~adversary_of =
  List.init sessions (fun k ->
      let setup = Auth.Setup.generate ~seed:(500 + k) ~n ~capacity:(4 * n) in
      let rng = Prng.create (900 + k) in
      let bits = 16 in
      let inputs =
        Array.map (Bitstring.pad_to bits)
          (Array.init n (fun _ -> Bitstring.of_int (100 + Prng.int rng 40)))
      in
      Engine.session ~adversary:(adversary_of k) ~setup:`Authenticated ~sid:k
        (fun ctx -> Auth.Auth_ca.run setup ctx ~bits inputs.(ctx.Ctx.me)))

let engine_digest outcome =
  List.map
    (fun r ->
      ( r.Engine.r_sid,
        Array.map (Option.map Bitstring.to_string) r.Engine.r_outputs,
        r.Engine.r_metrics.Metrics.rounds,
        r.Engine.r_metrics.Metrics.honest_bits,
        r.Engine.r_admitted_at,
        r.Engine.r_retired_at ))
    outcome.Engine.sessions

let test_engine_auth_ca_sim_eq_poll () =
  let n = 4 and t = 1 and sessions = 8 in
  let corrupt = [| false; false; true; false |] in
  let adversary_of k = Adversary.equivocate ~seed:(50 + k) in
  let run backend =
    let specs = auth_ca_specs ~n ~sessions ~adversary_of in
    engine_digest
      (match backend with
      | `Sim -> Engine.run_sim ~n ~t ~corrupt specs
      | `Poll -> Engine.run_poll ~n ~t ~corrupt specs)
  in
  let sim = run `Sim and poll = run `Poll in
  List.iter2
    (fun (sid_a, out_a, rounds_a, bits_a, adm_a, ret_a)
         (sid_b, out_b, rounds_b, bits_b, adm_b, ret_b) ->
      Alcotest.check Alcotest.int "sid" sid_a sid_b;
      Alcotest.check
        (Alcotest.array (Alcotest.option Alcotest.string))
        (Printf.sprintf "outputs of sid %d byte-identical" sid_a)
        out_a out_b;
      Alcotest.check Alcotest.int "rounds" rounds_a rounds_b;
      Alcotest.check Alcotest.int "honest bits" bits_a bits_b;
      Alcotest.check Alcotest.int "admitted" adm_a adm_b;
      Alcotest.check Alcotest.int "retired" ret_a ret_b)
    sim poll

let test_engine_dolev_strong_sessions () =
  (* Dolev-Strong broadcast sessions multiplexed by the engine: every honest
     party of every session outputs the honest sender's value, identically
     under sim and poll. *)
  let n = 4 and t = 1 and sessions = 8 in
  let corrupt = [| false; false; false; true |] in
  let specs () =
    List.init sessions (fun k ->
        let setup = Auth.Setup.generate ~seed:(700 + k) ~n ~capacity:8 in
        let value = Printf.sprintf "payload-%d" k in
        Engine.session
          ~adversary:(Adversary.garbage ~seed:(60 + k))
          ~setup:`Authenticated ~sid:k
          (fun ctx ->
            Auth.Dolev_strong.run setup ctx ~instance:0 ~sender:0
              (if ctx.Ctx.me = 0 then value else "")))
  in
  let digest outcome =
    List.map
      (fun r -> (r.Engine.r_sid, r.Engine.r_outputs))
      outcome.Engine.sessions
  in
  let sim = digest (Engine.run_sim ~n ~t ~corrupt (specs ())) in
  let poll = digest (Engine.run_poll ~n ~t ~corrupt (specs ())) in
  List.iter2
    (fun (sid, out_sim) (_, out_poll) ->
      Array.iteri
        (fun i o ->
          if not corrupt.(i) then
            Alcotest.check
              (Alcotest.option (Alcotest.option Alcotest.string))
              (Printf.sprintf "sid %d party %d validity" sid i)
              (Some (Some (Printf.sprintf "payload-%d" sid)))
              o)
        out_sim;
      Alcotest.check Alcotest.bool
        (Printf.sprintf "sid %d sim = poll" sid)
        true (out_sim = out_poll))
    sim poll

let test_engine_auth_ca_forged_sigs () =
  (* A forging adversary under the engine: replaces every corrupted party's
     message with a signature-shaped blob. Honest outputs must still agree
     and sit in the honest input range, on both runtimes. *)
  let n = 4 and t = 1 and sessions = 4 in
  let corrupt = [| false; true; false; false |] in
  let forged = String.make 600 '\x42' in
  let adversary_of _ =
    Adversary.make ~name:"forge" (fun _view ~sender:_ ~recipient:_ -> Some forged)
  in
  let check backend =
    let specs = auth_ca_specs ~n ~sessions ~adversary_of in
    let outcome =
      match backend with
      | `Sim -> Engine.run_sim ~n ~t ~corrupt specs
      | `Poll -> Engine.run_poll ~n ~t ~corrupt specs
    in
    List.iter
      (fun r ->
        match Engine.honest_outputs ~corrupt r with
        | [] -> Alcotest.fail "no honest outputs"
        | o :: rest ->
            List.iter
              (fun o' ->
                Alcotest.check Alcotest.bool
                  (Printf.sprintf "sid %d agreement under forgery" r.Engine.r_sid)
                  true (Bitstring.equal o o'))
              rest;
            (* Inputs were 100..139 over 16 bits; the output must decode into
               that band (the forger cannot inject a value). *)
            let lo = Bitstring.pad_to 16 (Bitstring.of_int 100)
            and hi = Bitstring.pad_to 16 (Bitstring.of_int 139) in
            Alcotest.check Alcotest.bool
              (Printf.sprintf "sid %d output in honest band" r.Engine.r_sid)
              true
              (Bitstring.compare lo o <= 0 && Bitstring.compare o hi <= 0))
      outcome.Engine.sessions
  in
  check `Sim;
  check `Poll

let suite =
  [
    Alcotest.test_case "unanimity at t<n/2 vs adversaries" `Quick test_validity_unanimous;
    Alcotest.test_case "agreement on mixed inputs" `Quick test_agreement_mixed_inputs;
    Alcotest.test_case "forged signatures rejected" `Quick test_forged_signatures_rejected;
    Alcotest.test_case "binary domain keeps honest bit" `Quick test_binary_domain_honest_input;
    Alcotest.test_case "round count matches model" `Quick test_rounds_model;
    Alcotest.test_case "agree: convex validity at t<n/2" `Quick test_agree_convex_validity;
    Alcotest.test_case "substrate: Pi_Z over auth backend" `Quick test_substrate_pi_z;
    Alcotest.test_case "signing budget t+2 per instance" `Quick test_capacity_model;
    Alcotest.test_case "engine: Auth-CA sessions sim = poll (K=8)" `Quick
      test_engine_auth_ca_sim_eq_poll;
    Alcotest.test_case "engine: Dolev-Strong sessions sim = poll" `Quick
      test_engine_dolev_strong_sessions;
    Alcotest.test_case "engine: forged signatures leave honest outputs intact" `Quick
      test_engine_auth_ca_forged_sigs;
  ]
