let () =
  Alcotest.run "convex_agreement"
    [
      ("bitstring", Test_bitstring.suite);
      ("bigint", Test_bigint.suite);
      ("sha256", Test_sha256.suite);
      ("merkle", Test_merkle.suite);
      ("gf65536", Test_gf.suite);
      ("reed_solomon", Test_reed_solomon.suite);
      ("wire", Test_wire.suite);
      ("net", Test_net.suite);
      ("ba", Test_ba.suite);
      ("baplus", Test_baplus.suite);
      ("convex", Test_convex.suite);
      ("baseline", Test_baseline.suite);
      ("fixed_point", Test_fixed_point.suite);
      ("attacks", Test_attacks.suite);
      ("median_ba", Test_median_ba.suite);
      ("net_unix", Test_net_unix.suite);
      ("workload", Test_workload.suite);
      ("subprotocols", Test_subprotocols.suite);
      ("anet", Test_anet.suite);
      ("gradecast", Test_gradecast.suite);
      ("trace", Test_trace.suite);
      ("sigs", Test_sigs.suite);
      ("auth", Test_auth.suite);
      ("stats", Test_stats.suite);
      ("conformance", Test_conformance.suite);
      ("rank_ba", Test_rank_ba.suite);
      ("stress", Test_stress.suite);
      ("scenario", Test_scenario.suite);
      ("lemma_blocks", Test_lemma_blocks.suite);
      ("vector", Test_vector.suite);
      ("parallel", Test_parallel.suite);
      ("engine", Test_engine.suite);
      ("telemetry", Test_telemetry.suite);
      ("edges", Test_edges.suite);
    ]
