(* SHA-256 against the FIPS 180-4 / NIST CAVP test vectors. *)

let check_hex msg expected input =
  Alcotest.check Alcotest.string msg expected (Sha256.hex input)

let test_nist_vectors () =
  check_hex "empty" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855" "";
  check_hex "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad" "abc";
  check_hex "two blocks"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
  check_hex "448-bit boundary"
    "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
    "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"

let test_million_a () =
  check_hex "one million 'a'"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (String.make 1_000_000 'a')

let test_streaming () =
  let whole = Sha256.hex "hello cruel world" in
  let ctx = Sha256.init () in
  Sha256.feed ctx "hello ";
  Sha256.feed ctx "";
  Sha256.feed ctx "cruel";
  Sha256.feed ctx " world";
  Alcotest.check Alcotest.string "chunked = whole" whole (Sha256.to_hex (Sha256.finalize ctx));
  Alcotest.check_raises "no reuse" (Invalid_argument "Sha256.feed: finalized context")
    (fun () -> Sha256.feed ctx "x")

let test_lengths_near_padding_boundary () =
  (* Reference digests for 54..65 byte inputs cross the 55/56 and 64-byte
     boundaries; check streaming equals one-shot for each. *)
  for len = 50 to 70 do
    let s = String.init len (fun i -> Char.chr (i land 0xff)) in
    let ctx = Sha256.init () in
    String.iter (fun c -> Sha256.feed ctx (String.make 1 c)) s;
    Alcotest.check Alcotest.string
      (Printf.sprintf "len %d" len)
      (Sha256.hex s)
      (Sha256.to_hex (Sha256.finalize ctx))
  done

(* ---- allocation-free hot path: reset / feed_byte / feed_bytes /
   finalize_into must agree with the one-shot digest ---- *)

let test_feed_paths_equivalent () =
  let ctx = Sha256.init () in
  let out = Bytes.make 40 '\xff' in
  List.iter
    (fun len ->
      let s = String.init len (fun i -> Char.chr ((i * 7) land 0xff)) in
      (* feed_byte, one byte at a time. *)
      Sha256.reset ctx;
      String.iter (fun c -> Sha256.feed_byte ctx (Char.code c)) s;
      Sha256.finalize_into ctx out ~pos:4;
      Alcotest.check Alcotest.string
        (Printf.sprintf "feed_byte len %d" len)
        (Sha256.hex s)
        (Sha256.to_hex (Bytes.sub_string out 4 32));
      (* feed_bytes on a sub-range of a larger buffer. *)
      Sha256.reset ctx;
      let buf = Bytes.of_string ("##" ^ s ^ "##") in
      Sha256.feed_bytes ctx buf ~pos:2 ~len;
      Sha256.finalize_into ctx out ~pos:0;
      Alcotest.check Alcotest.string
        (Printf.sprintf "feed_bytes len %d" len)
        (Sha256.hex s)
        (Sha256.to_hex (Bytes.sub_string out 0 32)))
    [ 0; 1; 31; 55; 56; 63; 64; 65; 127; 128; 300 ];
  (* Guard bytes outside the 32-byte window must be untouched. *)
  Alcotest.check Alcotest.string "finalize_into writes exactly 32 bytes"
    "ffffffff"
    (Sha256.to_hex (Bytes.sub_string out 36 4))

let test_reset_reuse () =
  (* One context reused across digests, the Merkle-build pattern. *)
  let ctx = Sha256.init () in
  let out = Bytes.create 32 in
  List.iter
    (fun s ->
      Sha256.reset ctx;
      Sha256.feed ctx s;
      Sha256.finalize_into ctx out ~pos:0;
      Alcotest.check Alcotest.string
        (Printf.sprintf "reused ctx on %S" s)
        (Sha256.hex s)
        (Sha256.to_hex (Bytes.to_string out)))
    [ "abc"; ""; "abc"; String.make 200 'q'; "x" ];
  (* reset also revives a context finalized the one-shot way. *)
  Sha256.reset ctx;
  Sha256.feed ctx "spent";
  ignore (Sha256.finalize ctx);
  Sha256.reset ctx;
  Sha256.feed ctx "abc";
  Alcotest.check Alcotest.string "reset after finalize"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.to_hex (Sha256.finalize ctx))

let test_feed_bytes_range_checks () =
  let ctx = Sha256.init () in
  let b = Bytes.create 8 in
  List.iter
    (fun (pos, len) ->
      Alcotest.check_raises
        (Printf.sprintf "pos=%d len=%d" pos len)
        (Invalid_argument "Sha256.feed_bytes: out of range")
        (fun () -> Sha256.feed_bytes ctx b ~pos ~len))
    [ (-1, 4); (0, -1); (5, 4); (9, 0) ];
  let out = Bytes.create 32 in
  List.iter
    (fun pos ->
      Alcotest.check_raises
        (Printf.sprintf "finalize_into pos=%d" pos)
        (Invalid_argument "Sha256.finalize_into: out of range")
        (fun () ->
          let c = Sha256.init () in
          Sha256.finalize_into c out ~pos))
    [ -1; 1; 32 ]

let prop_incremental_equals_oneshot =
  QCheck.Test.make ~name:"reset/feed_byte/feed_bytes = one-shot" ~count:200
    QCheck.(pair string small_nat)
    (fun (s, cut) ->
      let cut = if String.length s = 0 then 0 else cut mod (String.length s + 1) in
      let ctx = Sha256.init () in
      Sha256.reset ctx;
      String.iter (fun c -> Sha256.feed_byte ctx (Char.code c)) (String.sub s 0 cut);
      let rest = Bytes.of_string s in
      Sha256.feed_bytes ctx rest ~pos:cut ~len:(String.length s - cut);
      let out = Bytes.create 32 in
      Sha256.finalize_into ctx out ~pos:0;
      String.equal (Bytes.to_string out) (Sha256.digest s))

let prop_digest_size =
  QCheck.Test.make ~name:"digest is 32 bytes" ~count:100 QCheck.string (fun s ->
      String.length (Sha256.digest s) = 32)

let prop_deterministic =
  QCheck.Test.make ~name:"deterministic" ~count:100 QCheck.string (fun s ->
      String.equal (Sha256.digest s) (Sha256.digest s))

let prop_streaming_split =
  QCheck.Test.make ~name:"arbitrary split = whole" ~count:200
    QCheck.(pair string small_nat)
    (fun (s, cut) ->
      let cut = if String.length s = 0 then 0 else cut mod (String.length s + 1) in
      let ctx = Sha256.init () in
      Sha256.feed ctx (String.sub s 0 cut);
      Sha256.feed ctx (String.sub s cut (String.length s - cut));
      String.equal (Sha256.finalize ctx) (Sha256.digest s))

let suite =
  [
    Alcotest.test_case "NIST vectors" `Quick test_nist_vectors;
    Alcotest.test_case "million a" `Slow test_million_a;
    Alcotest.test_case "streaming" `Quick test_streaming;
    Alcotest.test_case "padding boundaries" `Quick test_lengths_near_padding_boundary;
    Alcotest.test_case "feed paths equivalent" `Quick test_feed_paths_equivalent;
    Alcotest.test_case "reset + reuse" `Quick test_reset_reuse;
    Alcotest.test_case "feed_bytes range checks" `Quick test_feed_bytes_range_checks;
    QCheck_alcotest.to_alcotest prop_incremental_equals_oneshot;
    QCheck_alcotest.to_alcotest prop_digest_size;
    QCheck_alcotest.to_alcotest prop_deterministic;
    QCheck_alcotest.to_alcotest prop_streaming_split;
  ]
