(* Session-multiplexing engine: a multiplexed session must be bit-identical
   to the same session run alone in Net.Sim — outputs, per-session metrics,
   adversary interaction — and the unix backend must agree with the simulator
   session for session. *)

open Net

let bigint_t = Alcotest.testable Bigint.pp Bigint.equal

let check_session_equals_sequential ~n ~t ~corrupt ~mk_adversary ~mk_protocol
    (result : Bigint.t Engine.session_result) =
  let k = result.Engine.r_sid in
  let reference =
    Sim.run ~n ~t ~corrupt ~adversary:(mk_adversary k) (mk_protocol k)
  in
  Alcotest.check
    (Alcotest.array (Alcotest.option bigint_t))
    (Printf.sprintf "session %d outputs" k)
    reference.Sim.outputs result.Engine.r_outputs;
  Alcotest.check Alcotest.int
    (Printf.sprintf "session %d honest bits" k)
    reference.Sim.metrics.Metrics.honest_bits
    result.Engine.r_metrics.Metrics.honest_bits;
  Alcotest.check Alcotest.int
    (Printf.sprintf "session %d byz bits" k)
    reference.Sim.metrics.Metrics.byz_bits result.Engine.r_metrics.Metrics.byz_bits;
  Alcotest.check Alcotest.int
    (Printf.sprintf "session %d rounds" k)
    reference.Sim.metrics.Metrics.rounds result.Engine.r_metrics.Metrics.rounds;
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    (Printf.sprintf "session %d per-label bits" k)
    (Metrics.labels reference.Sim.metrics)
    (Metrics.labels result.Engine.r_metrics)

(* Session k: n clustered inputs drawn from a per-session PRNG. *)
let session_inputs ~n k =
  let rng = Prng.create (9000 + k) in
  Workload.clustered_bits rng ~n ~bits:64 ~shared_prefix_bits:32

let mk_protocol ~n k =
  let inputs = session_inputs ~n k in
  fun ctx -> Convex.agree_int ctx inputs.(ctx.Ctx.me)

let mk_adversary k = Adversary.equivocate ~seed:(500 + k)

let test_multiplexed_equals_sequential () =
  let n = 7 and t = 2 and sessions = 8 in
  let corrupt = Workload.spread_corrupt ~n ~t in
  let specs =
    List.init sessions (fun k ->
        Engine.session ~sid:k ~adversary:(mk_adversary k) (mk_protocol ~n k))
  in
  let outcome = Engine.run_sim ~n ~t ~corrupt specs in
  Alcotest.check Alcotest.int "all sessions completed" sessions
    outcome.Engine.aggregate.Engine.sessions_completed;
  Alcotest.check Alcotest.int "peak live" sessions
    outcome.Engine.aggregate.Engine.peak_live;
  List.iter
    (check_session_equals_sequential ~n ~t ~corrupt ~mk_adversary
       ~mk_protocol:(mk_protocol ~n))
    outcome.Engine.sessions;
  (* 8 sessions share each pair's frame: the naive transport would have sent
     ~8x the frames. *)
  Alcotest.check Alcotest.bool "coalescing saves frames" true
    (outcome.Engine.aggregate.Engine.frames_saved > 0)

let test_definition1_per_session () =
  let n = 7 and t = 2 and sessions = 6 in
  let corrupt = Workload.spread_corrupt ~n ~t in
  let specs =
    List.init sessions (fun k ->
        Engine.session ~sid:k ~adversary:(mk_adversary k) (mk_protocol ~n k))
  in
  let outcome = Engine.run_sim ~n ~t ~corrupt specs in
  List.iter
    (fun result ->
      let k = result.Engine.r_sid in
      let outputs = Engine.honest_outputs ~corrupt result in
      (match outputs with
      | o :: rest ->
          List.iter
            (fun o' ->
              Alcotest.check bigint_t
                (Printf.sprintf "session %d agreement" k) o o')
            rest
      | [] -> Alcotest.fail "no honest outputs");
      let honest_inputs =
        List.filteri
          (fun i _ -> not corrupt.(i))
          (Array.to_list (session_inputs ~n k))
      in
      List.iter
        (fun o ->
          Alcotest.check Alcotest.bool
            (Printf.sprintf "session %d convex validity" k)
            true
            (Convex.in_convex_hull ~inputs:honest_inputs o))
        outputs)
    outcome.Engine.sessions

let test_staggered_admission () =
  (* Sessions arrive mid-run, every 3 engine rounds, and retire at different
     times; none of that may perturb any session's outputs or metrics. *)
  let n = 7 and t = 2 and sessions = 5 in
  let corrupt = Workload.spread_corrupt ~n ~t in
  let specs =
    List.init sessions (fun k ->
        Engine.session ~sid:k ~start_round:(3 * k) ~adversary:(mk_adversary k)
          (mk_protocol ~n k))
  in
  let outcome = Engine.run_sim ~n ~t ~corrupt specs in
  List.iter
    (check_session_equals_sequential ~n ~t ~corrupt ~mk_adversary
       ~mk_protocol:(mk_protocol ~n))
    outcome.Engine.sessions;
  List.iter
    (fun r ->
      Alcotest.check Alcotest.int
        (Printf.sprintf "session %d admitted at its start round" r.Engine.r_sid)
        (3 * r.Engine.r_sid) r.Engine.r_admitted_at;
      Alcotest.check Alcotest.int
        (Printf.sprintf "session %d round-offset arithmetic" r.Engine.r_sid)
        (r.Engine.r_admitted_at + r.Engine.r_metrics.Metrics.rounds - 1)
        r.Engine.r_retired_at)
    outcome.Engine.sessions;
  Alcotest.check Alcotest.bool "sessions overlapped" true
    (outcome.Engine.aggregate.Engine.peak_live > 1)

let test_mixed_lengths_and_retirement () =
  (* Sessions of very different round counts: short ones retire while long
     ones keep running; outputs must still match sequential runs. *)
  let n = 4 and t = 1 in
  let corrupt = Workload.spread_corrupt ~n ~t in
  let mk_protocol k =
    if k mod 2 = 0 then mk_protocol ~n k
    else fun ctx ->
      (* A one-round echo protocol, much shorter than Pi_Z. *)
      let ( let* ) = Proto.( let* ) in
      let* inbox = Proto.broadcast (Printf.sprintf "s%d-%d" k ctx.Ctx.me) in
      let heard = Array.fold_left (fun a m -> if m = None then a else a + 1) 0 inbox in
      Proto.return (Bigint.of_int heard)
  in
  let specs =
    List.init 4 (fun k ->
        Engine.session ~sid:k ~adversary:(mk_adversary k) (mk_protocol k))
  in
  let outcome = Engine.run_sim ~n ~t ~corrupt specs in
  List.iter
    (check_session_equals_sequential ~n ~t ~corrupt ~mk_adversary ~mk_protocol)
    outcome.Engine.sessions

let test_64_sessions_cross_backend () =
  (* The acceptance bar: >= 64 concurrent Pi_Z sessions at n = 7 on both
     backends, multiplexed outputs bit-identical to sequential runs, with
     positive coalescing savings. *)
  let n = 7 and t = 2 and sessions = 64 in
  let no_corrupt = Array.make n false in
  let specs =
    List.init sessions (fun k -> Engine.session ~sid:k (mk_protocol ~n k))
  in
  let sim = Engine.run_sim ~n ~t ~corrupt:no_corrupt specs in
  let unix = Engine.run_unix ~t ~n specs in
  Alcotest.check Alcotest.int "sim completed all" sessions
    sim.Engine.aggregate.Engine.sessions_completed;
  Alcotest.check Alcotest.int "peak live is K" sessions
    sim.Engine.aggregate.Engine.peak_live;
  List.iter2
    (fun (s : Bigint.t Engine.session_result) (u : Bigint.t Engine.session_result) ->
      Alcotest.check
        (Alcotest.array (Alcotest.option bigint_t))
        (Printf.sprintf "session %d outputs sim = unix" s.Engine.r_sid)
        s.Engine.r_outputs u.Engine.r_outputs;
      Alcotest.check Alcotest.int
        (Printf.sprintf "session %d rounds sim = unix" s.Engine.r_sid)
        s.Engine.r_metrics.Metrics.rounds u.Engine.r_metrics.Metrics.rounds;
      Alcotest.check Alcotest.int
        (Printf.sprintf "session %d honest bits sim = unix" s.Engine.r_sid)
        s.Engine.r_metrics.Metrics.honest_bits
        u.Engine.r_metrics.Metrics.honest_bits;
      (* And bit-identical to the session run alone. *)
      let reference =
        Sim.run ~n ~t ~corrupt:no_corrupt ~adversary:Adversary.passive
          (mk_protocol ~n s.Engine.r_sid)
      in
      Alcotest.check
        (Alcotest.array (Alcotest.option bigint_t))
        (Printf.sprintf "session %d outputs = sequential" s.Engine.r_sid)
        reference.Sim.outputs s.Engine.r_outputs)
    sim.Engine.sessions unix.Engine.sessions;
  (* The two backends drive the same engine schedule and the same frames. *)
  Alcotest.check Alcotest.int "engine rounds sim = unix"
    sim.Engine.aggregate.Engine.engine_rounds
    unix.Engine.aggregate.Engine.engine_rounds;
  Alcotest.check Alcotest.int "frames sim = unix"
    sim.Engine.aggregate.Engine.frames_sent unix.Engine.aggregate.Engine.frames_sent;
  Alcotest.check Alcotest.int "frame bytes sim = unix"
    sim.Engine.aggregate.Engine.frame_bytes unix.Engine.aggregate.Engine.frame_bytes;
  (* The full ledger must agree, naive-transport accounting included: same
     workload => same per-round live/stepping sets => same counterfactual
     frame count (this is the invariant behind BENCH_engine's sim-honest
     row; the adversarial sim rows run a *different* workload and may
     legitimately differ). *)
  Alcotest.check Alcotest.int "naive frames sim = unix"
    sim.Engine.aggregate.Engine.naive_frames
    unix.Engine.aggregate.Engine.naive_frames;
  Alcotest.check Alcotest.int "payload bytes sim = unix"
    sim.Engine.aggregate.Engine.payload_bytes
    unix.Engine.aggregate.Engine.payload_bytes;
  Alcotest.check Alcotest.bool "sim saves frames" true
    (sim.Engine.aggregate.Engine.frames_saved > 0);
  Alcotest.check Alcotest.bool "unix saves frames" true
    (unix.Engine.aggregate.Engine.frames_saved > 0)

let test_spec_validation () =
  let n = 4 and t = 1 in
  let corrupt = Array.make n false in
  let p _ctx = Proto.return (Bigint.of_int 0) in
  Alcotest.check_raises "duplicate sid"
    (Invalid_argument "Engine: duplicate sid") (fun () ->
      ignore
        (Engine.run_sim ~n ~t ~corrupt
           [ Engine.session ~sid:1 p; Engine.session ~sid:1 p ]));
  Alcotest.check_raises "empty" (Invalid_argument "Engine: no sessions")
    (fun () -> ignore (Engine.run_sim ~n ~t ~corrupt ([] : Bigint.t Engine.spec list)))

let suite =
  [
    Alcotest.test_case "multiplexed = sequential (K=8, equivocate)" `Quick
      test_multiplexed_equals_sequential;
    Alcotest.test_case "Definition 1 per session" `Quick test_definition1_per_session;
    Alcotest.test_case "staggered admission" `Quick test_staggered_admission;
    Alcotest.test_case "mixed lengths + retirement" `Quick
      test_mixed_lengths_and_retirement;
    Alcotest.test_case "64 sessions on both backends" `Slow
      test_64_sessions_cross_backend;
    Alcotest.test_case "spec validation" `Quick test_spec_validation;
  ]
