(* Trace recording: event capture fidelity, summaries and CSV export. *)

open Net

let traced_run () =
  let n = 4 and t = 1 in
  let corrupt = Sim.corrupt_first ~n 1 in
  let inputs = Array.init n (fun i -> Bigint.of_int (70 + i)) in
  let trace = Trace.create () in
  let outcome =
    Sim.run ~trace ~n ~t ~corrupt ~adversary:Adversary.passive (fun ctx ->
        Convex.agree_int ctx inputs.(ctx.Ctx.me))
  in
  (n, trace, outcome)

let test_events_match_metrics () =
  let _n, trace, outcome = traced_run () in
  let honest_bits =
    List.fold_left
      (fun acc e -> if e.Trace.byzantine then acc else acc + (8 * e.Trace.bytes))
      0 (Trace.events trace)
  in
  Alcotest.check Alcotest.int "honest bits match metrics"
    outcome.Sim.metrics.Metrics.honest_bits honest_bits;
  let msgs =
    List.length (List.filter (fun e -> not e.Trace.byzantine) (Trace.events trace))
  in
  Alcotest.check Alcotest.int "message count matches" outcome.Sim.metrics.Metrics.honest_msgs
    msgs;
  Alcotest.check Alcotest.int "length consistent" (List.length (Trace.events trace))
    (Trace.length trace)

let test_event_shape () =
  let n, trace, outcome = traced_run () in
  List.iter
    (fun e ->
      Alcotest.check Alcotest.bool "round in range" true
        (e.Trace.round >= 1 && e.Trace.round <= outcome.Sim.metrics.Metrics.rounds);
      Alcotest.check Alcotest.bool "endpoints in range" true
        (e.Trace.src >= 0 && e.Trace.src < n && e.Trace.dst >= 0 && e.Trace.dst < n);
      Alcotest.check Alcotest.bool "no self messages" true (e.Trace.src <> e.Trace.dst);
      Alcotest.check Alcotest.bool "byz flag correct" true
        (e.Trace.byzantine = (e.Trace.src = 0));
      Alcotest.check Alcotest.int "single-session run: session 0" 0
        e.Trace.session)
    (Trace.events trace)

let test_summaries () =
  let n, trace, outcome = traced_run () in
  let per_round = Trace.bits_per_round trace in
  let total = List.fold_left (fun acc (_, b) -> acc + b) 0 per_round in
  Alcotest.check Alcotest.int "per-round sums to total"
    outcome.Sim.metrics.Metrics.honest_bits total;
  Alcotest.check Alcotest.bool "rounds ascending" true
    (let rec asc = function
       | (a, _) :: ((b, _) :: _ as rest) -> a < b && asc rest
       | _ -> true
     in
     asc per_round);
  let matrix = Trace.sent_matrix trace ~n in
  let matrix_total = Array.fold_left (fun acc row -> acc + Array.fold_left ( + ) 0 row) 0 matrix in
  let event_total =
    List.fold_left (fun acc e -> acc + e.Trace.bytes) 0 (Trace.events trace)
  in
  Alcotest.check Alcotest.int "matrix accounts all bytes" event_total matrix_total;
  Alcotest.check Alcotest.bool "hottest rounds bounded" true
    (List.length (Trace.hottest_rounds ~top:3 trace) <= 3)

let test_csv () =
  let _n, trace, _outcome = traced_run () in
  let csv = Trace.to_csv trace in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.check Alcotest.int "one line per event + header"
    (Trace.length trace + 1) (List.length lines);
  Alcotest.check Alcotest.string "header" Trace.csv_header (List.hd lines);
  Alcotest.check Alcotest.string "header names session last"
    "round,src,dst,bytes,byzantine,label,session" Trace.csv_header;
  List.iter
    (fun line ->
      Alcotest.check Alcotest.int "seven fields" 7
        (List.length (String.split_on_char ',' line)))
    lines;
  (* Single-session runs record everything under session 0. *)
  List.iter
    (fun line ->
      match List.rev (String.split_on_char ',' line) with
      | last :: _ -> Alcotest.check Alcotest.string "session column" "0" last
      | [] -> Alcotest.fail "empty csv line")
    (List.tl lines)

let test_empty_trace () =
  let trace = Trace.create () in
  Alcotest.check Alcotest.int "empty" 0 (Trace.length trace);
  Alcotest.check Alcotest.string "header only" (Trace.csv_header ^ "\n") (Trace.to_csv trace);
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "no rounds" [] (Trace.bits_per_round trace)

let suite =
  [
    Alcotest.test_case "events match metrics" `Quick test_events_match_metrics;
    Alcotest.test_case "event shape" `Quick test_event_shape;
    Alcotest.test_case "summaries" `Quick test_summaries;
    Alcotest.test_case "csv export" `Quick test_csv;
    Alcotest.test_case "empty trace" `Quick test_empty_trace;
  ]
