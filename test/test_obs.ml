(* Observability plane (lib/obs). Three layers of assertions:

   1. Histogram algebra — qcheck properties: bucket bounds are monotone and
      contiguous, every int lands in exactly one bucket whose bounds contain
      it, and recorded quantiles bracket the true (sorted-rank) quantile.
   2. Registry semantics — tier filtering, canonical export order, name
      conflicts, and the export's own schema validators.
   3. The deterministic tier on a real K=8 engine workload: the Det JSONL
      and the virtual-clock chrome trace must be byte-identical across
      run_sim, run_poll and run_sim ~domains:2, and the Det instruments must
      reproduce the engine's aggregate ledger exactly (the frame-bytes
      histogram sums to the ledger's frame_bytes by construction).
   Plus the sampler ring bounds and the live endpoint served through the
   poll loop's control hook, single-threaded. *)

open Net

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ---- histogram algebra ---------------------------------------------------- *)

(* Bounds are exact powers of two below the platform's word size and clamp
   to max_int at the saturated top (bucket Sys.int_size - 1 and above). *)
let top_exact = Sys.int_size - 2

let test_bucket_bounds_monotone () =
  Alcotest.(check int) "bucket 0 lower bound" min_int (Obs.Hist.bucket_lo 0);
  Alcotest.(check int) "bucket 0 upper bound" 0 (Obs.Hist.bucket_hi 0);
  for i = 1 to top_exact do
    Alcotest.(check int)
      (Printf.sprintf "bucket %d lower bound" i)
      (1 lsl (i - 1))
      (Obs.Hist.bucket_lo i);
    Alcotest.(check bool)
      (Printf.sprintf "bucket %d bounds ordered" i)
      true
      (Obs.Hist.bucket_lo i <= Obs.Hist.bucket_hi i)
  done;
  (* Contiguity: each bucket ends exactly where the next begins, up to the
     last bucket with an exact upper bound. *)
  for i = 0 to top_exact do
    Alcotest.(check int)
      (Printf.sprintf "bucket %d..%d contiguous" i (i + 1))
      (Obs.Hist.bucket_hi i + 1)
      (Obs.Hist.bucket_lo (i + 1))
  done;
  (* Above the word size the table saturates at max_int rather than
     overflowing 1 lsl 62. *)
  Alcotest.(check int) "top inhabited bucket saturates" max_int
    (Obs.Hist.bucket_hi (Sys.int_size - 1));
  Alcotest.(check int) "last slot saturates" max_int
    (Obs.Hist.bucket_hi (Obs.Hist.slots - 1))

(* Every boundary value maps to its own bucket — deterministic coverage of
   all edges, the place an off-by-one would hide. *)
let test_bucket_boundaries_roundtrip () =
  Alcotest.(check int) "min_int" 0 (Obs.Hist.bucket_of_value min_int);
  Alcotest.(check int) "0" 0 (Obs.Hist.bucket_of_value 0);
  Alcotest.(check int) "-1" 0 (Obs.Hist.bucket_of_value (-1));
  Alcotest.(check int) "max_int lands in the top inhabited bucket"
    (Sys.int_size - 1)
    (Obs.Hist.bucket_of_value max_int);
  for i = 1 to top_exact do
    Alcotest.(check int)
      (Printf.sprintf "lo(%d) maps to %d" i i)
      i
      (Obs.Hist.bucket_of_value (Obs.Hist.bucket_lo i));
    Alcotest.(check int)
      (Printf.sprintf "hi(%d) maps to %d" i i)
      i
      (Obs.Hist.bucket_of_value (Obs.Hist.bucket_hi i))
  done

(* Full-range ints: exactly one bucket, and its bounds contain the value.
   Uniqueness via contiguity — neither neighbour contains the value (the
   saturated top bucket has no exact-bounded successor to test against). *)
let prop_bucket_total =
  QCheck.Test.make ~count:2000 ~name:"every int maps into exactly one bucket"
    (QCheck.make ~print:string_of_int
       QCheck.Gen.(
         oneof
           [
             int;
             small_signed_int;
             (* The adversarial band: powers of two and their neighbours. *)
             map
               (fun (sh, off) -> (1 lsl sh) + off)
               (pair (int_bound (Sys.int_size - 2)) (int_range (-1) 1));
           ]))
    (fun v ->
      let b = Obs.Hist.bucket_of_value v in
      b >= 0 && b < Obs.Hist.slots
      && Obs.Hist.bucket_lo b <= v
      && v <= Obs.Hist.bucket_hi b
      && (b = 0 || Obs.Hist.bucket_hi (b - 1) < v)
      && (b >= Sys.int_size - 1 || Obs.Hist.bucket_lo (b + 1) > v))

(* Recorded quantiles bracket the true sorted-rank quantile: the true value
   lies within the returned bucket bounds (clamped to observed min/max), so
   the estimate is off by at most one bucket width. *)
let prop_quantile_brackets =
  QCheck.Test.make ~count:500 ~name:"quantile_bounds bracket the true quantile"
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 200) (int_bound 2_000_000))
        (int_bound 100))
    (fun (values, pct) ->
      let q = float_of_int pct /. 100.0 in
      let h = Obs.Hist.create () in
      List.iter (Obs.Hist.record h) values;
      let sorted = List.sort compare values in
      let n = List.length sorted in
      let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
      let truth = List.nth sorted (rank - 1) in
      let lo, hi = Obs.Hist.quantile_bounds h q in
      lo <= truth && truth <= hi && Obs.Hist.quantile h q = hi)

let test_hist_counts_and_merge () =
  let h = Obs.Hist.create () in
  List.iter (Obs.Hist.record h) [ 0; 1; 1; 3; 900; -7 ];
  Alcotest.(check int) "count" 6 (Obs.Hist.count h);
  Alcotest.(check int) "sum" (0 + 1 + 1 + 3 + 900 - 7) (Obs.Hist.sum h);
  Alcotest.(check int) "min" (-7) (Obs.Hist.min_value h);
  Alcotest.(check int) "max" 900 (Obs.Hist.max_value h);
  let counts = Obs.Hist.counts h in
  Alcotest.(check int) "bucket 0 holds the values <= 0" 2 counts.(0);
  Alcotest.(check int) "bucket 1 holds the two 1s" 2 counts.(1);
  Alcotest.(check int) "900 has 10 significant bits" 1 counts.(10);
  let h2 = Obs.Hist.create () in
  List.iter (Obs.Hist.record h2) [ 4; 2000 ];
  Obs.Hist.merge ~into:h h2;
  Alcotest.(check int) "merged count" 8 (Obs.Hist.count h);
  Alcotest.(check int) "merged max" 2000 (Obs.Hist.max_value h);
  Alcotest.(check int) "merged min" (-7) (Obs.Hist.min_value h);
  Alcotest.(check int) "merged sum" (898 + 4 + 2000) (Obs.Hist.sum h);
  let empty = Obs.Hist.create () in
  Alcotest.(check (pair int int))
    "empty quantile" (0, 0)
    (Obs.Hist.quantile_bounds empty 0.5);
  Alcotest.(check int) "empty min" 0 (Obs.Hist.min_value empty);
  Alcotest.(check (float 0.0)) "empty mean" 0.0 (Obs.Hist.mean empty)

(* ---- registry semantics --------------------------------------------------- *)

let test_registry_tiers_and_order () =
  let o = Obs.create () in
  let h = Obs.hist o ~tier:Obs.Det "zz/frames" in
  Obs.Hist.record h 17;
  let c = Obs.counter o ~tier:Obs.Det "aa/rounds" in
  Obs.incr c 3;
  let g = Obs.gauge o ~tier:Obs.Sampled "mm/live" in
  Obs.set_gauge g 5;
  Obs.max_gauge g 2;
  Alcotest.(check int) "max_gauge keeps the peak" 5 (Obs.gauge_value g);
  Obs.max_gauge g 9;
  Alcotest.(check int) "max_gauge raises the peak" 9 (Obs.gauge_value g);
  Alcotest.(check int) "counter accumulates" 3 (Obs.counter_value c);
  (* Canonical order: counters, then gauges, then hists, names sorted. *)
  let lines s = String.split_on_char '\n' (String.trim s) in
  let kinds s =
    List.map
      (fun l -> if String.length l > 13 then String.sub l 9 4 else Alcotest.fail l)
      (lines s)
  in
  Alcotest.(check (list string))
    "kind-major order"
    [ "coun"; "gaug"; "hist" ]
    (kinds (Obs.to_jsonl o));
  (* Tier filtering: the Det export excludes the sampled gauge entirely. *)
  let det = Obs.to_jsonl ~tier:Obs.Det o in
  Alcotest.(check int) "det export has 2 lines" 2 (List.length (lines det));
  Alcotest.(check bool) "sampled gauge excluded from Det" false
    (contains det "mm/live");
  Alcotest.(check bool) "det hist retained" true (contains det "zz/frames");
  (* Get-or-create returns the same instrument; conflicts raise. *)
  Alcotest.(check int) "get-or-create shares state" 3
    (Obs.counter_value (Obs.counter o ~tier:Obs.Det "aa/rounds"));
  Alcotest.check_raises "tier conflict"
    (Invalid_argument
       "Obs: instrument \"aa/rounds\" re-requested with tier sampled (is det)")
    (fun () -> ignore (Obs.counter o ~tier:Obs.Sampled "aa/rounds"));
  Alcotest.check_raises "kind conflict"
    (Invalid_argument "Obs: instrument \"aa/rounds\" is a counter, not a hist")
    (fun () -> ignore (Obs.hist o ~tier:Obs.Det "aa/rounds"));
  (* The export passes its own schema validator; the text render mentions
     every instrument. *)
  (match Obs.Check.registry_jsonl (Obs.to_jsonl o) with
  | Ok n -> Alcotest.(check int) "validator sees 3 lines" 3 n
  | Error msg -> Alcotest.fail msg);
  let text = Obs.render_text o in
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (Printf.sprintf "render_text mentions %s" name)
        true (contains text name))
    [ "aa/rounds"; "mm/live"; "zz/frames" ]

(* ---- the deterministic tier on a real engine workload --------------------- *)

let mk_specs ~n ~sessions ~spacing ~seed =
  List.init sessions (fun k ->
      let inputs =
        let rng = Prng.create (seed + (101 * k)) in
        Workload.clustered_bits rng ~n ~bits:48 ~shared_prefix_bits:16
      in
      Engine.session ~sid:k ~start_round:(spacing * k)
        ~adversary:(Adversary.equivocate ~seed:(seed + (31 * k)))
        (fun ctx -> Convex.agree_int ctx inputs.(ctx.Ctx.me)))

let run_with_obs backend =
  let n = 7 and t = 2 in
  let corrupt = Workload.spread_corrupt ~n ~t in
  let specs = mk_specs ~n ~sessions:8 ~spacing:2 ~seed:4242 in
  let obs = Obs.create () in
  let telemetry = Telemetry.create () in
  let outcome =
    match backend with
    | `Sim -> Engine.run_sim ~obs ~telemetry ~n ~t ~corrupt specs
    | `Sim_domains d ->
        Engine.run_sim ~domains:d ~obs ~telemetry ~n ~t ~corrupt specs
    | `Poll -> Engine.run_poll ~obs ~telemetry ~n ~t ~corrupt specs
  in
  (obs, telemetry, outcome)

let test_det_tier_identical_across_backends () =
  let obs_sim, tm_sim, o_sim = run_with_obs `Sim in
  let obs_poll, tm_poll, _ = run_with_obs `Poll in
  let obs_par, tm_par, _ = run_with_obs (`Sim_domains 2) in
  let det o = Obs.to_jsonl ~tier:Obs.Det o in
  Alcotest.(check string) "Det JSONL: poll = sim" (det obs_sim) (det obs_poll);
  Alcotest.(check string)
    "Det JSONL: domains=2 = sim" (det obs_sim) (det obs_par);
  let tr_sim = Obs.Trace.chrome_trace tm_sim in
  Alcotest.(check string) "chrome trace: poll = sim" tr_sim
    (Obs.Trace.chrome_trace tm_poll);
  Alcotest.(check string) "chrome trace: domains=2 = sim" tr_sim
    (Obs.Trace.chrome_trace tm_par);
  (* The full export legitimately differs (wall-clock histograms, the poll
     sink's select-wait instruments); only the Det slice is identical. *)
  Alcotest.(check bool) "poll adds sampled instruments" true
    (Obs.to_jsonl obs_poll <> Obs.to_jsonl obs_sim);
  Alcotest.(check bool) "poll run recorded select waits" true
    (contains (Obs.to_jsonl obs_poll) "poll/select_wait_ns");
  (* Det instruments reproduce the aggregate ledger exactly. *)
  let agg = o_sim.Engine.aggregate in
  let frame_h = Obs.hist obs_sim ~tier:Obs.Det "engine/frame_bytes" in
  Alcotest.(check int) "frame hist sum = ledger frame_bytes"
    agg.Engine.frame_bytes (Obs.Hist.sum frame_h);
  Alcotest.(check int) "frame hist count = ledger frames_sent"
    agg.Engine.frames_sent (Obs.Hist.count frame_h);
  Alcotest.(check int) "rounds counter = ledger engine_rounds"
    agg.Engine.engine_rounds
    (Obs.counter_value (Obs.counter obs_sim ~tier:Obs.Det "engine/rounds"));
  Alcotest.(check int) "frames counter = ledger frames_sent"
    agg.Engine.frames_sent
    (Obs.counter_value (Obs.counter obs_sim ~tier:Obs.Det "engine/frames"));
  Alcotest.(check int) "sessions counter = completed sessions"
    agg.Engine.sessions_completed
    (Obs.counter_value (Obs.counter obs_sim ~tier:Obs.Det "engine/sessions"));
  Alcotest.(check int) "peak_live gauge = ledger peak_live" agg.Engine.peak_live
    (Obs.gauge_value (Obs.gauge obs_sim ~tier:Obs.Det "engine/peak_live"));
  Alcotest.(check int) "live gauge drains to 0 at the end" 0
    (Obs.gauge_value (Obs.gauge obs_sim ~tier:Obs.Det "engine/live"));
  let life_h = Obs.hist obs_sim ~tier:Obs.Det "engine/session_rounds" in
  Alcotest.(check int) "one lifetime recorded per session"
    agg.Engine.sessions_completed (Obs.Hist.count life_h);
  (* Both artifacts pass their own schema validators. *)
  (match Obs.Check.registry_jsonl (det obs_sim) with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail ("Det JSONL schema: " ^ msg));
  match Obs.Check.chrome_trace tr_sim with
  | Ok events -> Alcotest.(check bool) "trace has events" true (events > 0)
  | Error msg -> Alcotest.fail ("chrome trace schema: " ^ msg)

(* ---- sampler ring --------------------------------------------------------- *)

let test_sampler_ring_bounds () =
  let s = Obs.Sampler.create ~capacity:4 () in
  for r = 1 to 10 do
    Obs.Sampler.record s ~round:r ~live:(r mod 3) ()
  done;
  Alcotest.(check int) "capacity" 4 (Obs.Sampler.capacity s);
  Alcotest.(check int) "recorded counts every record" 10 (Obs.Sampler.recorded s);
  Alcotest.(check int) "length bounded by capacity" 4 (Obs.Sampler.length s);
  Alcotest.(check int) "dropped = recorded - retained" 6 (Obs.Sampler.dropped s);
  let samples = Obs.Sampler.samples s in
  Alcotest.(check (list int))
    "retained samples chronological, newest kept"
    [ 7; 8; 9; 10 ]
    (List.map (fun smp -> smp.Obs.Sampler.s_round) samples);
  Alcotest.(check (list int))
    "global indices keep counting across drops"
    [ 6; 7; 8; 9 ]
    (List.map (fun smp -> smp.Obs.Sampler.s_idx) samples);
  List.iter
    (fun smp ->
      Alcotest.(check bool) "gc words sampled" true
        (smp.Obs.Sampler.s_minor_words >= 0.0);
      Alcotest.(check bool) "rss sampled or marked absent" true
        (smp.Obs.Sampler.s_rss_bytes >= -1))
    samples;
  match Obs.Check.sampler_jsonl (Obs.Sampler.to_jsonl s) with
  | Ok lines -> Alcotest.(check int) "header + 4 samples" 5 lines
  | Error msg -> Alcotest.fail msg

(* ---- live endpoint -------------------------------------------------------- *)

let endpoint_path name = Filename.concat (Filename.get_temp_dir_name ()) name

(* Single-threaded service: a client that connected before service runs is
   answered in full (connect to a listening Unix socket completes without an
   accept; the dump is written and the server side closed, so the client
   reads to EOF afterwards). *)
let test_endpoint_service_direct () =
  let path = endpoint_path "ca-obs-test-direct.sock" in
  let ep = Obs.Endpoint.create ~path ~render:(fun () -> "hello stats\n") in
  Fun.protect
    ~finally:(fun () -> Obs.Endpoint.close ep)
    (fun () ->
      Alcotest.(check string) "path recorded" path (Obs.Endpoint.path ep);
      let client = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect client (Unix.ADDR_UNIX path);
      Obs.Endpoint.service ep;
      let buf = Bytes.create 256 in
      let rec read_all acc =
        match Unix.read client buf 0 256 with
        | 0 -> acc
        | k -> read_all (acc ^ Bytes.sub_string buf 0 k)
      in
      let body = read_all "" in
      Unix.close client;
      Alcotest.(check string) "served the render output" "hello stats\n" body;
      (* Service with no pending client is a no-op. *)
      Obs.Endpoint.service ep);
  (* Close unlinked the socket file and is idempotent. *)
  Alcotest.(check bool) "socket file unlinked" false (Sys.file_exists path);
  Obs.Endpoint.close ep

(* The endpoint served from *inside* run_poll's select loop: connect before
   the run, let the control hook answer mid-run, read after. *)
let test_endpoint_through_poll_loop () =
  let path = endpoint_path "ca-obs-test-poll.sock" in
  let obs = Obs.create () in
  let ep = Obs.Endpoint.create ~path ~render:(fun () -> Obs.render_text obs) in
  Fun.protect
    ~finally:(fun () -> Obs.Endpoint.close ep)
    (fun () ->
      let client = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect client (Unix.ADDR_UNIX path);
      let n = 7 and t = 2 in
      let outcome =
        Engine.run_poll ~obs
          ~control:(Obs.Endpoint.fd ep, fun () -> Obs.Endpoint.service ep)
          ~n ~t
          ~corrupt:(Workload.spread_corrupt ~n ~t)
          (mk_specs ~n ~sessions:4 ~spacing:1 ~seed:99)
      in
      Alcotest.(check int) "all sessions completed" 4
        outcome.Engine.aggregate.Engine.sessions_completed;
      let buf = Bytes.create 4096 in
      let rec read_all acc =
        match Unix.read client buf 0 4096 with
        | 0 -> acc
        | k -> read_all (acc ^ Bytes.sub_string buf 0 k)
      in
      let body = read_all "" in
      Unix.close client;
      Alcotest.(check bool) "dump served mid-run, non-empty" true
        (String.length body > 0);
      Alcotest.(check bool) "dump names the frame histogram" true
        (contains body "engine/frame_bytes"))

let test_endpoint_fetch_error () =
  match Obs.Endpoint.fetch ~path:(endpoint_path "ca-obs-no-such.sock") with
  | Ok _ -> Alcotest.fail "fetch of a missing socket must fail"
  | Error msg ->
      Alcotest.(check bool) "error message" true (String.length msg > 0)

(* ---- schema validators reject malformed input ----------------------------- *)

let test_check_rejects_garbage () =
  let fails = function Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "registry: not json" true
    (fails (Obs.Check.registry_jsonl "not json\n"));
  Alcotest.(check bool) "registry: wrong kind" true
    (fails (Obs.Check.registry_jsonl "{\"kind\":\"sample\",\"idx\":0}\n"));
  Alcotest.(check bool) "sampler: missing header" true
    (fails
       (Obs.Check.sampler_jsonl
          "{\"kind\":\"sample\",\"idx\":0,\"round\":1,\"live\":0}\n"));
  Alcotest.(check bool) "trace: no traceEvents" true
    (fails (Obs.Check.chrome_trace "{\"foo\":[]}"));
  Alcotest.(check bool) "trace: bad phase" true
    (fails (Obs.Check.chrome_trace "{\"traceEvents\":[{\"ph\":\"Q\"}]}"))

let suite =
  [
    Alcotest.test_case "bucket bounds monotone and contiguous" `Quick
      test_bucket_bounds_monotone;
    Alcotest.test_case "bucket boundaries map to themselves" `Quick
      test_bucket_boundaries_roundtrip;
    QCheck_alcotest.to_alcotest prop_bucket_total;
    QCheck_alcotest.to_alcotest prop_quantile_brackets;
    Alcotest.test_case "hist counts, quantile edges, merge" `Quick
      test_hist_counts_and_merge;
    Alcotest.test_case "registry tiers, order, conflicts" `Quick
      test_registry_tiers_and_order;
    Alcotest.test_case "Det tier byte-identical across sim/poll/domains=2"
      `Quick test_det_tier_identical_across_backends;
    Alcotest.test_case "sampler ring bounds and drops" `Quick
      test_sampler_ring_bounds;
    Alcotest.test_case "endpoint serves a waiting client" `Quick
      test_endpoint_service_direct;
    Alcotest.test_case "endpoint served from inside the poll loop" `Quick
      test_endpoint_through_poll_loop;
    Alcotest.test_case "endpoint fetch reports missing socket" `Quick
      test_endpoint_fetch_error;
    Alcotest.test_case "schema validators reject malformed input" `Quick
      test_check_rejects_garbage;
  ]
