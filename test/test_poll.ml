(* Poll backend: the event-driven transport must be invisible. Outputs,
   per-session metrics, the aggregate ledger, trace CSV and telemetry JSONL
   must be byte-identical to the simulator on the same seeds — while every
   frame actually moves through nonblocking sockets, including under
   backpressure (outbound rings far smaller than the frames, so bytes park
   and trickle). Plus direct Net_poll unit tests: parking stats, transport
   violations, lifecycle, the /proc memory probes. *)

open Net

let fingerprint (o : Bigint.t Engine.outcome) =
  ( List.map
      (fun r ->
        ( r.Engine.r_sid,
          Array.to_list (Array.map (Option.map Bigint.to_hex) r.Engine.r_outputs),
          ( r.Engine.r_metrics.Metrics.rounds,
            r.Engine.r_metrics.Metrics.honest_bits,
            r.Engine.r_metrics.Metrics.honest_msgs,
            r.Engine.r_metrics.Metrics.byz_bits,
            r.Engine.r_metrics.Metrics.byz_msgs ),
          Metrics.labels r.Engine.r_metrics,
          (r.Engine.r_admitted_at, r.Engine.r_retired_at) ))
      o.Engine.sessions,
    o.Engine.aggregate )

let mk_specs ~n ~sessions ~spacing ~seed =
  List.init sessions (fun k ->
      let inputs =
        let rng = Prng.create (seed + (101 * k)) in
        Workload.clustered_bits rng ~n ~bits:48 ~shared_prefix_bits:16
      in
      Engine.session ~sid:k ~start_round:(spacing * k)
        ~adversary:(Adversary.equivocate ~seed:(seed + (31 * k)))
        (fun ctx -> Convex.agree_int ctx inputs.(ctx.Ctx.me)))

let run_backend backend ~sessions ~spacing ~n ~t ~seed =
  let corrupt = Workload.spread_corrupt ~n ~t in
  let specs = mk_specs ~n ~sessions ~spacing ~seed in
  let trace = Trace.create () in
  let telemetry = Telemetry.create () in
  let outcome =
    match backend with
    | `Sim -> Engine.run_sim ~trace ~telemetry ~n ~t ~corrupt specs
    | `Poll outbuf ->
        Engine.run_poll ?outbuf ~trace ~telemetry ~n ~t ~corrupt specs
    | `Poll_domains d ->
        Engine.run_poll ~domains:d ~trace ~telemetry ~n ~t ~corrupt specs
  in
  (fingerprint outcome, Trace.to_csv trace, Telemetry.to_jsonl telemetry)

let check_poll_equals_sim ~sessions ~spacing ~n ~t ~seed backends =
  let base_fp, base_csv, base_jsonl =
    run_backend `Sim ~sessions ~spacing ~n ~t ~seed
  in
  List.iter
    (fun (label, backend) ->
      let fp, csv, jsonl = run_backend backend ~sessions ~spacing ~n ~t ~seed in
      Alcotest.(check bool)
        (Printf.sprintf "outputs+metrics+ledger (%s)" label)
        true (fp = base_fp);
      Alcotest.(check string)
        (Printf.sprintf "trace CSV byte-identical (%s)" label)
        base_csv csv;
      Alcotest.(check string)
        (Printf.sprintf "telemetry JSONL byte-identical (%s)" label)
        base_jsonl jsonl)
    backends

(* K=8 under equivocate with staggered admission: default rings, starved
   16-byte rings (every frame parks), and a parallel deliver phase must all
   reproduce the simulator byte for byte. *)
let test_poll_equals_sim_k8 () =
  check_poll_equals_sim ~sessions:8 ~spacing:2 ~n:7 ~t:2 ~seed:4242
    [
      ("poll", `Poll None);
      ("poll outbuf=16", `Poll (Some 16));
      ("poll domains=2", `Poll_domains 2);
    ]

let test_poll_equals_sim_k64 () =
  check_poll_equals_sim ~sessions:64 ~spacing:1 ~n:7 ~t:2 ~seed:777
    [ ("poll", `Poll None) ]

(* ---- backpressure --------------------------------------------------------- *)

(* One edge's frame dwarfs its 16-byte ring: the bytes must park and trickle
   while every other connection completes, and the exchange still delivers
   everything intact. *)
let test_exchange_slow_edge () =
  let n = 3 in
  let net = Net_poll.create ~outbuf:16 ~n () in
  Fun.protect
    ~finally:(fun () -> Net_poll.close net)
    (fun () ->
      let big = String.init 100_000 (fun i -> Char.chr (i land 0xff)) in
      let frame entries = Wire.Frame.encode { Wire.Frame.round = 0; entries } in
      let frames =
        Array.init n (fun s ->
            Array.init n (fun d ->
                if s = d then ""
                else if s = 0 && d = 1 then frame [ (7, big) ]
                else frame [ (7, Printf.sprintf "m%d%d" s d) ]))
      in
      let delivered = Net_poll.exchange net ~round:0 frames in
      Alcotest.(check string) "slow edge payload intact" big
        (List.assoc 7 delivered.(0).(1));
      for s = 0 to n - 1 do
        for d = 0 to n - 1 do
          if s <> d && not (s = 0 && d = 1) then
            Alcotest.(check string)
              (Printf.sprintf "edge %d->%d delivered" s d)
              (Printf.sprintf "m%d%d" s d)
              (List.assoc 7 delivered.(s).(d))
        done
      done;
      let st = Net_poll.stats net in
      Alcotest.(check bool) "frames parked under backpressure" true
        (st.Net_poll.p_parked > 0);
      Alcotest.(check bool) "backlog peaked near the big frame" true
        (st.Net_poll.p_max_backlog > 50_000);
      Alcotest.(check int) "one exchange" 1 st.Net_poll.p_rounds;
      Alcotest.(check int) "all frames counted" (n * (n - 1))
        st.Net_poll.p_frames)

(* Engine-level: starved rings force parking on every coalesced frame while
   the engine still completes all sessions with the simulator's exact
   ledger. *)
let test_engine_progresses_under_backpressure () =
  let n = 7 and t = 2 and sessions = 16 in
  let corrupt = Workload.spread_corrupt ~n ~t in
  let specs = mk_specs ~n ~sessions ~spacing:1 ~seed:1312 in
  let reference = Engine.run_sim ~n ~t ~corrupt specs in
  let net = Net_poll.create ~outbuf:64 ~n () in
  let outcome =
    Fun.protect
      ~finally:(fun () -> Net_poll.close net)
      (fun () ->
        Engine.run_core ~transport:(Net_poll.transport net) ~n ~t ~corrupt
          specs)
  in
  Alcotest.(check bool) "outcome identical to sim" true
    (fingerprint outcome = fingerprint reference);
  let st = Net_poll.stats net in
  Alcotest.(check int) "transport saw every engine round"
    outcome.Engine.aggregate.Engine.engine_rounds st.Net_poll.p_rounds;
  Alcotest.(check int) "transport moved every ledger frame"
    outcome.Engine.aggregate.Engine.frames_sent st.Net_poll.p_frames;
  Alcotest.(check int) "transport frame bytes match the ledger"
    outcome.Engine.aggregate.Engine.frame_bytes st.Net_poll.p_frame_bytes;
  Alcotest.(check bool) "starved rings parked frames" true
    (st.Net_poll.p_parked > 0);
  Alcotest.(check bool) "wire bytes = frame bytes + prefixes" true
    (st.Net_poll.p_wire_bytes
    = st.Net_poll.p_frame_bytes + (4 * st.Net_poll.p_frames));
  (* The engine-facing path never materializes a frame string: every frame
     the transport moved was encoded in place. *)
  Alcotest.(check int) "every frame encoded in place" st.Net_poll.p_frames
    st.Net_poll.p_frames_encoded_in_place;
  Alcotest.(check bool) "allocation meter ran" true
    (st.Net_poll.p_minor_words_per_round > 0.0);
  (* Per-connection peak backlogs: n*n matrix, zero diagonal, and under
     starved rings every off-diagonal edge queued bytes at some point. The
     scalar p_max_backlog is exactly the matrix maximum. *)
  let m = st.Net_poll.p_conn_peak_backlog in
  Alcotest.(check int) "backlog matrix rows" n (Array.length m);
  Array.iteri
    (fun s row ->
      Alcotest.(check int) "backlog matrix cols" n (Array.length row);
      Array.iteri
        (fun d peak ->
          if s = d then
            Alcotest.(check int)
              (Printf.sprintf "diagonal %d zero" s)
              0 peak
          else
            Alcotest.(check bool)
              (Printf.sprintf "edge %d->%d queued under starved rings" s d)
              true (peak > 0))
        row)
    m;
  let matrix_max =
    Array.fold_left
      (fun acc row -> Array.fold_left max acc row)
      0 m
  in
  Alcotest.(check int) "p_max_backlog = matrix maximum" matrix_max
    st.Net_poll.p_max_backlog;
  (* Select-wait accounting: both wall-clock figures are nonnegative and the
     mean cannot exceed the longest single wait. *)
  Alcotest.(check bool) "select waits nonnegative" true
    (st.Net_poll.p_select_wait_max_s >= 0.0
    && st.Net_poll.p_select_wait_mean_s >= 0.0);
  Alcotest.(check bool) "mean select wait <= max select wait" true
    (st.Net_poll.p_select_wait_mean_s <= st.Net_poll.p_select_wait_max_s)

(* ---- transport violations and lifecycle ----------------------------------- *)

let test_wrong_round_rejected () =
  let net = Net_poll.create ~n:2 () in
  Fun.protect
    ~finally:(fun () -> Net_poll.close net)
    (fun () ->
      let frames =
        Array.init 2 (fun s ->
            Array.init 2 (fun d ->
                if s = d then ""
                else Wire.Frame.encode { Wire.Frame.round = 9; entries = [] }))
      in
      Alcotest.check_raises "round mismatch"
        (Failure "Net_poll: expected round 3, got 9") (fun () ->
          ignore (Net_poll.exchange net ~round:3 frames)))

let test_lifecycle () =
  Alcotest.check_raises "n < 1" (Invalid_argument "Net_poll.create: n < 1")
    (fun () -> ignore (Net_poll.create ~n:0 ()));
  let net = Net_poll.create ~n:2 () in
  Net_poll.close net;
  Net_poll.close net;
  Alcotest.check_raises "exchange after close"
    (Invalid_argument "Net_poll.exchange: closed") (fun () ->
      ignore (Net_poll.exchange net ~round:0 (Array.make_matrix 2 2 "")));
  let net = Net_poll.create ~n:3 () in
  Fun.protect
    ~finally:(fun () -> Net_poll.close net)
    (fun () ->
      Alcotest.check_raises "mis-shaped matrix"
        (Invalid_argument "Net_poll.exchange: frame matrix shape") (fun () ->
          ignore (Net_poll.exchange net ~round:0 (Array.make_matrix 2 2 ""))))

let test_rss_probes () =
  (match Net_poll.rss_bytes () with
  | Some b -> Alcotest.(check bool) "rss positive" true (b > 0)
  | None -> Alcotest.fail "rss_bytes unavailable on Linux");
  match Net_poll.rss_peak_bytes () with
  | Some b -> Alcotest.(check bool) "peak rss positive" true (b > 0)
  | None -> Alcotest.fail "rss_peak_bytes unavailable on Linux"

let test_parse_vm_line () =
  let check name expect line =
    Alcotest.(check (option int))
      name expect
      (Net_poll.parse_vm_line ~key:"VmHWM:" line)
  in
  check "tab-separated" (Some (5124 * 1024)) "VmHWM:\t    5124 kB";
  check "space-separated" (Some (42 * 1024)) "VmHWM:   42 kB";
  check "zero" (Some 0) "VmHWM:\t       0 kB";
  check "other key" None "VmRSS:\t    5124 kB";
  check "prefix only, no digits" None "VmHWM:\t kB";
  check "bare key" None "VmHWM:";
  check "empty line" None "";
  Alcotest.(check (option int))
    "different key matches" (Some (9 * 1024))
    (Net_poll.parse_vm_line ~key:"VmRSS:" "VmRSS:\t9 kB");
  (* Absent VmHWM must not zero the soak's peak tracking: once a peak has
     been observed, the probe keeps reporting the last-known value. *)
  match Net_poll.rss_peak_bytes () with
  | None -> Alcotest.fail "rss_peak_bytes unavailable on Linux"
  | Some _ -> (
      (* A second read still succeeds (and refreshes the cache). *)
      match Net_poll.rss_peak_bytes () with
      | Some b -> Alcotest.(check bool) "cached peak positive" true (b > 0)
      | None -> Alcotest.fail "peak cache lost")

let suite =
  [
    Alcotest.test_case "poll = sim: K=8 equivocate, staggered, tiny rings"
      `Quick test_poll_equals_sim_k8;
    Alcotest.test_case "poll = sim: K=64 equivocate" `Quick
      test_poll_equals_sim_k64;
    Alcotest.test_case "slow edge parks, everything still delivered" `Quick
      test_exchange_slow_edge;
    Alcotest.test_case "engine progresses under starved rings" `Quick
      test_engine_progresses_under_backpressure;
    Alcotest.test_case "wrong-round frame rejected" `Quick
      test_wrong_round_rejected;
    Alcotest.test_case "create/close/exchange lifecycle" `Quick test_lifecycle;
    Alcotest.test_case "/proc memory probes" `Quick test_rss_probes;
    Alcotest.test_case "parse_vm_line" `Quick test_parse_vm_line;
  ]
