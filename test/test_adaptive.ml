(* The fault-adaptive fast path (lib/adaptive): zero-fault engagement and
   its cost, Definition 1 under mixed adversaries at every f in 0..t,
   targeted attacks on the certificate (threshold equivocation, forged and
   withheld echoes, a forged median value), the substrate's equivalence with
   its fallback, and the CLI surface of the adaptive backends. *)

open Net

let unauth = (module Ba.Substrate.Unauthenticated : Ba.Substrate.S)

let honest_inputs ~corrupt inputs =
  Array.to_list inputs
  |> List.filteri (fun i _ -> not corrupt.(i))

let check_definition_1 name ~corrupt inputs outcome =
  match Sim.honest_outputs ~corrupt outcome with
  | [] -> Alcotest.fail (name ^ ": no honest outputs")
  | o :: rest ->
      List.iter
        (fun o' ->
          Alcotest.check Alcotest.string (name ^ ": agreement")
            (Bigint.to_string o) (Bigint.to_string o'))
        rest;
      let hull = honest_inputs ~corrupt inputs in
      let lo = List.fold_left Bigint.min (List.hd hull) hull in
      let hi = List.fold_left Bigint.max (List.hd hull) hull in
      Alcotest.check Alcotest.bool (name ^ ": convex validity") true
        (Bigint.compare lo o <= 0 && Bigint.compare o hi <= 0);
      o

(* One wrapper run over the unauthenticated fallback with per-party stats;
   returns (outcome, stats array). *)
let run_wrapper ?(n = 7) ?(t = 2) ~corrupt ~adversary inputs =
  let stats = Array.init n (fun _ -> Adaptive.stats ()) in
  let outcome =
    Sim.run ~n ~t ~corrupt ~adversary (fun ctx ->
        Adaptive.agree_int ~stats:stats.(ctx.Ctx.me) ~fallback:unauth ctx
          inputs.(ctx.Ctx.me))
  in
  (outcome, stats)

let assert_branch name ~corrupt stats ~fast =
  Array.iteri
    (fun i (s : Adaptive.stats) ->
      if not corrupt.(i) then begin
        Alcotest.check Alcotest.int
          (Printf.sprintf "%s: party %d fast_taken" name i)
          (if fast then 1 else 0)
          s.Adaptive.fast_taken;
        Alcotest.check Alcotest.int
          (Printf.sprintf "%s: party %d fallbacks" name i)
          (if fast then 0 else 1)
          s.Adaptive.fallbacks
      end)
    stats

(* ------------------------------------------------------------------ *)
(* Zero-fault engagement and cost                                      *)
(* ------------------------------------------------------------------ *)

let test_fast_path_engages_at_f0 () =
  let n = 7 and t = 2 in
  let corrupt = Array.make n false in
  let rng = Prng.create 42 in
  let inputs = Workload.sensor_readings rng ~n ~base:(-1004) ~jitter:2 in
  let outcome, stats = run_wrapper ~n ~t ~corrupt ~adversary:Adversary.passive inputs in
  let o = check_definition_1 "f=0" ~corrupt inputs outcome in
  assert_branch "f=0" ~corrupt stats ~fast:true;
  Array.iteri
    (fun i (s : Adaptive.stats) ->
      Alcotest.check Alcotest.int
        (Printf.sprintf "f=0: party %d observed no deviants" i)
        0 s.Adaptive.f_observed)
    stats;
  (* The fast path's output is the median party's input — in the honest
     hull by construction, and here also an actual input. *)
  Alcotest.check Alcotest.bool "f=0: output is some input" true
    (Array.exists (Bigint.equal o) inputs);
  (* The whole point: an order of magnitude fewer bits than Pi_Z. *)
  let plain =
    Sim.run ~n ~t ~corrupt ~adversary:Adversary.passive (fun ctx ->
        Convex.agree_int ctx inputs.(ctx.Ctx.me))
  in
  let fast_bits = outcome.Sim.metrics.Metrics.honest_bits in
  let plain_bits = plain.Sim.metrics.Metrics.honest_bits in
  Alcotest.check Alcotest.bool
    (Printf.sprintf "f=0 cost: %d adaptive vs %d plain (>=5x)" fast_bits plain_bits)
    true
    (5 * fast_bits <= plain_bits);
  Alcotest.check Alcotest.int "f=0 rounds: preamble + arbitration"
    (Adaptive.fast_path_rounds (Ctx.make ~me:0 ~n ~t))
    outcome.Sim.metrics.Metrics.rounds

(* Passive corruptions follow the protocol, so the fast path must still
   engage — the layer is adaptive to *behavior*, not to the corrupt set. *)
let test_fast_path_engages_under_passive_faults () =
  let n = 7 and t = 2 in
  let corrupt = Workload.spread_corrupt ~n ~t in
  let rng = Prng.create 9 in
  let inputs = Workload.timestamps rng ~n ~now_ns:"1783425600000000000" ~skew_ns:40_000_000 in
  let outcome, stats = run_wrapper ~n ~t ~corrupt ~adversary:Adversary.passive inputs in
  ignore (check_definition_1 "passive faults" ~corrupt inputs outcome);
  assert_branch "passive faults" ~corrupt stats ~fast:true

(* ------------------------------------------------------------------ *)
(* Definition 1 under active adversaries at every f in 0..t            *)
(* ------------------------------------------------------------------ *)

let test_definition1_every_f () =
  let n = 7 and t = 2 in
  List.iter
    (fun f ->
      List.iter
        (fun (adv_name, adversary, attack) ->
          let corrupt = Workload.spread_corrupt ~n ~t:f in
          let rng = Prng.create (100 + f) in
          let inputs =
            Workload.apply_input_attack attack ~corrupt
              (Workload.sensor_readings rng ~n ~base:(-1004) ~jitter:2)
          in
          let outcome, stats = run_wrapper ~n ~t ~corrupt ~adversary inputs in
          let name = Printf.sprintf "f=%d vs %s" f adv_name in
          ignore (check_definition_1 name ~corrupt inputs outcome);
          (* Garbling adversaries deterministically veto the certificate. *)
          if f > 0 then begin
            assert_branch name ~corrupt stats ~fast:false;
            let viewer =
              (* an honest party's deviation estimate counts at least one
                 misbehaving sender *)
              Array.to_list stats
              |> List.filteri (fun i _ -> not corrupt.(i))
              |> List.map (fun (s : Adaptive.stats) -> s.Adaptive.f_observed)
            in
            Alcotest.check Alcotest.bool (name ^ ": f_observed >= 1") true
              (List.for_all (fun x -> x >= 1) viewer)
          end)
        [
          ("equivocate+outlier", Adversary.equivocate ~seed:(7 + f), Workload.Outlier_high);
          ("garbage+split", Adversary.garbage ~seed:(13 + f), Workload.Split_extremes);
          ("silent", Adversary.silent, Workload.Honest_inputs);
        ])
    [ 0; 1; 2 ]

(* ------------------------------------------------------------------ *)
(* Targeted certificate attacks                                        *)
(* ------------------------------------------------------------------ *)

(* Behave honestly except in round [r], where recipients with id >= [split]
   get [forge] applied to the prescribed message. The wrapper's preamble is
   rounds 1-4 of the run, so r = 2 forges echoes, r = 3 the median value,
   r = 4 the comparison byte. *)
let selective ~round:r ~split ~forge =
  Adversary.make ~name:(Printf.sprintf "selective-r%d" r)
    (fun view ~sender ~recipient ->
      let m = Adversary.prescribed_msg view ~sender ~recipient in
      if view.Adversary.round = r && recipient >= split then forge m else m)

let run_attack name adversary =
  let n = 7 and t = 2 in
  let corrupt = Workload.spread_corrupt ~n ~t:1 in
  let rng = Prng.create 77 in
  let inputs = Workload.sensor_readings rng ~n ~base:(-1004) ~jitter:2 in
  let outcome, stats = run_wrapper ~n ~t ~corrupt ~adversary inputs in
  ignore (check_definition_1 name ~corrupt inputs outcome);
  (outcome, stats, corrupt)

let test_certificate_threshold_equivocation () =
  (* Show the R4 witness byte to half the parties and withhold it from the
     rest: certificates form at some honest parties and not others — the
     exact split the bit-BA arbitration exists for. Either agreed branch
     must preserve Definition 1; the run must not desynchronize. *)
  List.iter
    (fun split ->
      ignore
        (run_attack
           (Printf.sprintf "R4 withheld from id>=%d" split)
           (selective ~round:4 ~split ~forge:(fun _ -> None))))
    [ 2; 4; 6 ];
  (* Lying comparison bytes instead of withheld ones: claim v < u to some,
     v > u to others. The thresholds still hold an honest witness on each
     side, so a fast decision stays inside the honest hull. *)
  ignore
    (run_attack "R4 forged low/high split"
       (selective ~round:4 ~split:3 ~forge:(fun _ -> Some "\001")))

let test_forged_and_withheld_echoes () =
  (* R2 echoes: forged to a fake digest for some recipients, withheld from
     others. Honest parties seeing the bad echo lose their certificate;
     arbitration decides one common branch. *)
  ignore
    (run_attack "R2 forged echo"
       (selective ~round:2 ~split:3 ~forge:(fun _ -> Some (String.make 32 'x'))));
  ignore (run_attack "R2 withheld echo" (selective ~round:2 ~split:0 ~forge:(fun _ -> None)));
  (* R1 equivocation: different keys/digests to different parties poisons
     the view hash comparison at every honest pair. *)
  ignore
    (run_attack "R1 equivocated entry"
       (selective ~round:1 ~split:3 ~forge:(Option.map (fun m -> m ^ "\000"))))

let test_forged_median_value () =
  (* A corrupt median party broadcasting bytes that do not hash to its R1
     commitment must be rejected by every honest party (check3), vetoing the
     fast path; a *withheld* median value does the same. The corrupt set is
     {3} under spread_corrupt ~t:1 with n = 7; give party 3 the median rank
     by construction (all other inputs surround it symmetrically). *)
  List.iter
    (fun forge ->
      let n = 7 and t = 2 in
      let corrupt = Workload.spread_corrupt ~n ~t:1 in
      (* The corrupt party gets 30, honest parties {0,10,20,40,50,60} in id
         order: rank 3 of 7 — the median sender — is the corrupt one. *)
      let inputs = Array.make n (Bigint.of_int 30) in
      let rank = ref 0 in
      Array.iteri
        (fun i is_corrupt ->
          if not is_corrupt then begin
            inputs.(i) <-
              Bigint.of_int (if !rank < 3 then 10 * !rank else 10 * (!rank + 1));
            incr rank
          end)
        corrupt;
      let adversary = selective ~round:3 ~split:0 ~forge in
      let stats = Array.init n (fun _ -> Adaptive.stats ()) in
      let outcome =
        Sim.run ~n ~t ~corrupt ~adversary (fun ctx ->
            Adaptive.agree_int ~stats:stats.(ctx.Ctx.me) ~fallback:unauth ctx
              inputs.(ctx.Ctx.me))
      in
      ignore (check_definition_1 "forged median value" ~corrupt inputs outcome);
      assert_branch "forged median value" ~corrupt stats ~fast:false)
    [ (fun _ -> Some "not-the-committed-value"); (fun _ -> None) ]

(* ------------------------------------------------------------------ *)
(* Unanimity equivalence                                               *)
(* ------------------------------------------------------------------ *)

let test_unanimity_output_is_the_input () =
  (* All honest parties share one input: whatever branch the arbitration
     takes, validity forces that input as the output — so the adaptive
     wrapper is observably equivalent to Pi_Z on unanimous instances under
     every generic adversary and any f. *)
  let n = 7 and t = 2 in
  let v = Bigint.of_string "-271828" in
  List.iter
    (fun f ->
      List.iter
        (fun adversary ->
          let corrupt = Workload.spread_corrupt ~n ~t:f in
          let inputs = Array.make n v in
          let outcome, _ = run_wrapper ~n ~t ~corrupt ~adversary inputs in
          let o = check_definition_1 "unanimity" ~corrupt inputs outcome in
          Alcotest.check Alcotest.string
            (Printf.sprintf "unanimity at f=%d vs %s" f adversary.Adversary.name)
            (Bigint.to_string v) (Bigint.to_string o))
        (Adversary.all_generic ~seed:(31 * (f + 1))))
    [ 0; 1; 2 ]

(* ------------------------------------------------------------------ *)
(* Substrate backend                                                   *)
(* ------------------------------------------------------------------ *)

let bytes_spec = Ba.Phase_king.bytes_spec

let prop_substrate_equals_fallback =
  (* Under a passive adversary the adaptive substrate's output equals its
     fallback's on identical inputs and seeds, for every f: the unanimity
     branch returns the common input (which validity forces from the
     fallback too), and the disagreement branch runs the fallback verbatim —
     its messages depend on inputs, not absolute round numbers. *)
  QCheck.Test.make ~name:"substrate adaptive = fallback (passive, random f)"
    ~count:40
    QCheck.(triple (int_bound 100000) (int_bound 8) (int_bound 2))
    (fun (seed, n_off, f) ->
      let n = 4 + n_off in
      let t = min f (Ba.Substrate.Unauthenticated.max_t ~n) in
      let rng = Prng.create seed in
      let corrupt = Array.make n false in
      for _ = 1 to t do
        corrupt.(Prng.int rng n) <- true
      done;
      let alphabet = [| "a"; "a"; "b"; "longer-value-string" |] in
      let inputs =
        Array.init n (fun _ -> alphabet.(Prng.int rng (Array.length alphabet)))
      in
      (* Sometimes force unanimity so both branches are exercised. *)
      let inputs =
        if Prng.int rng 2 = 0 then Array.make n inputs.(0) else inputs
      in
      let adaptive = Adaptive.substrate ~fallback:unauth () in
      let module A = (val adaptive) in
      let run proto =
        Sim.run ~n ~t ~corrupt ~adversary:Adversary.passive (fun ctx ->
            proto ctx inputs.(ctx.Ctx.me))
      in
      let a = run (fun ctx v -> A.run bytes_spec ctx v) in
      let b = run (fun ctx v -> Ba.Substrate.Unauthenticated.run bytes_spec ctx v) in
      Sim.honest_outputs ~corrupt a = Sim.honest_outputs ~corrupt b)

let test_substrate_fast_path_and_stats () =
  let n = 7 and t = 2 in
  let corrupt = Array.make n false in
  let stats = Adaptive.stats () in
  let adaptive = Adaptive.substrate ~stats ~fallback:unauth () in
  let module A = (val adaptive) in
  Alcotest.check Alcotest.string "substrate name" "adaptive(phase-king)" A.name;
  let outcome =
    Sim.run ~n ~t ~corrupt ~adversary:Adversary.passive (fun ctx ->
        A.run bytes_spec ctx "shared")
  in
  (match Sim.honest_outputs ~corrupt outcome with
  | o :: _ -> Alcotest.check Alcotest.string "unanimous output" "shared" o
  | [] -> Alcotest.fail "no outputs");
  (* All n parties ran one arbitration each; every one took the fast path. *)
  Alcotest.check Alcotest.int "substrate fast_taken" n stats.Adaptive.fast_taken;
  Alcotest.check Alcotest.int "substrate fallbacks" 0 stats.Adaptive.fallbacks;
  (* 1 exchange + 3(t+1) phase-king rounds, nothing else. *)
  Alcotest.check Alcotest.int "substrate fast rounds"
    (1 + Ba.Phase_king.rounds (Ctx.make ~me:0 ~n ~t))
    outcome.Sim.metrics.Metrics.rounds

let test_cost_model_shape () =
  let ctx = Ctx.make ~me:0 ~n:13 ~t:4 in
  let module A = (val Adaptive.substrate ~fallback:unauth ()) in
  let c0 = A.cost ctx ~value_bits:8192 ~f:0 in
  let c4 = A.cost ctx ~value_bits:8192 ~f:4 in
  let base = Ba.Substrate.Unauthenticated.cost ctx ~value_bits:8192 ~f:4 in
  Alcotest.check Alcotest.bool "substrate f=0 << f=t" true
    (5 * c0.Ba.Substrate.c_bits <= c4.Ba.Substrate.c_bits);
  Alcotest.check Alcotest.bool "substrate f=t within 1.5x of fallback" true
    (2 * c4.Ba.Substrate.c_bits <= 3 * base.Ba.Substrate.c_bits);
  let w0 = Adaptive.wrapper_cost ctx ~value_bits:8192 ~fallback:unauth ~f:0 in
  let w4 = Adaptive.wrapper_cost ctx ~value_bits:8192 ~fallback:unauth ~f:4 in
  let plain = Convex.Ca_int.cost_estimate ctx ~value_bits:8192 ~f:4 in
  Alcotest.check Alcotest.bool "wrapper model f=0 >=5x below plain" true
    (5 * w0.Ba.Substrate.c_bits <= plain.Ba.Substrate.c_bits);
  Alcotest.check Alcotest.bool "wrapper model f=t within 1.5x of plain" true
    (2 * w4.Ba.Substrate.c_bits <= 3 * plain.Ba.Substrate.c_bits);
  Alcotest.check Alcotest.int "wrapper f echoed" 4 w4.Ba.Substrate.c_f

(* ------------------------------------------------------------------ *)
(* Wrapper property: Definition 1 on random instances                  *)
(* ------------------------------------------------------------------ *)

let prop_wrapper_definition1 =
  QCheck.Test.make ~name:"adaptive wrapper satisfies CA (random runs)" ~count:20
    QCheck.(triple (int_bound 100000) (int_bound 11) (int_bound 1))
    (fun (seed, adv_idx, f) ->
      let n = 4 and t = 1 in
      let rng = Prng.create seed in
      let corrupt = Array.make n false in
      if f > 0 then corrupt.(Prng.int rng n) <- true;
      let inputs =
        Array.init n (fun _ ->
            let m = Bigint.of_int (Prng.int rng 2_000_000) in
            if Prng.int rng 2 = 0 then Bigint.neg m else m)
      in
      let advs = Adversary.all_generic ~seed:(seed + 1) in
      let adversary = List.nth advs (adv_idx mod List.length advs) in
      let outcome =
        Sim.run ~n ~t ~corrupt ~adversary (fun ctx ->
            Adaptive.agree_int ~fallback:unauth ctx inputs.(ctx.Ctx.me))
      in
      match Sim.honest_outputs ~corrupt outcome with
      | [] -> false
      | v :: rest ->
          let hull = honest_inputs ~corrupt inputs in
          let lo = List.fold_left Bigint.min (List.hd hull) hull in
          let hi = List.fold_left Bigint.max (List.hd hull) hull in
          List.for_all (Bigint.equal v) rest
          && Bigint.compare lo v <= 0
          && Bigint.compare v hi <= 0)

(* ------------------------------------------------------------------ *)
(* CLI surface                                                         *)
(* ------------------------------------------------------------------ *)

let cli =
  Filename.concat (Filename.dirname Sys.executable_name) "../bin/ca_cli.exe"

let test_cli_adaptive_backends () =
  if not (Sys.file_exists cli) then
    Alcotest.fail "ca_cli.exe missing — check the (deps ...) in test/dune";
  let run cmd = Sys.command (cmd ^ " >/dev/null 2>/dev/null") in
  (* The plain backend exercises the (cheap) unauthenticated fallback under
     the default equivocating adversary; the auth backend runs passively so
     the subprocess stays on the fast path — the authenticated fallback is
     orders of magnitude more traffic than a unit test budget. *)
  List.iter
    (fun (ba, extra) ->
      Alcotest.check Alcotest.int
        (Printf.sprintf "run --ba %s" ba)
        0
        (run (cli ^ " run --ba " ^ ba ^ " -n 7 -t 2 --seed 3" ^ extra));
      Alcotest.check Alcotest.int
        (Printf.sprintf "--ba %s rejects non-pi-z protocols" ba)
        2
        (run (cli ^ " run --ba " ^ ba ^ " --protocol median-ba")))
    [
      ("adaptive", "");
      ("adaptive-auth", " --adversary passive --attack honest-inputs");
    ];
  Alcotest.check Alcotest.int "engine --ba adaptive" 0
    (run (cli ^ " engine --ba adaptive -n 7 -t 2 --sessions 2 --seed 3"))

let test_cli_scenario_file_ba_adaptive () =
  let path = Filename.temp_file "adaptive" ".scenario" in
  let oc = open_out path in
  output_string oc
    "n = 7\nt = 2\nprotocol = pi-z\nworkload = sensors\nadversary = passive\n\
     attack = honest-inputs\nba = adaptive\nseed = 11\n";
  close_out oc;
  let code = Sys.command (cli ^ " run --file " ^ path ^ " >/dev/null 2>/dev/null") in
  Sys.remove path;
  Alcotest.check Alcotest.int "scenario file with ba = adaptive" 0 code

(* ------------------------------------------------------------------ *)
(* Backend identity: sim = poll = --domains 2, including the Det tier  *)
(* ------------------------------------------------------------------ *)

let test_engine_backend_identity () =
  (* K = 8 sessions over both adaptive backends: the engine table and the
     Det-tier observability export must be byte-identical across the sim
     and poll backends and across --domains 1/2. *)
  if not (Sys.file_exists cli) then
    Alcotest.fail "ca_cli.exe missing — check the (deps ...) in test/dune";
  let dir = Filename.temp_file "adaptive_obs" "" in
  Sys.remove dir;
  let read path =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  (* adaptive runs under the default equivocating adversary (every session
     takes the unauthenticated fallback), adaptive-auth passively (fast
     path) — together the identity assertion covers both branches without
     paying for the authenticated fallback in a unit test. *)
  List.iter
    (fun (ba, extra) ->
      let variant backend domains =
        let d = Printf.sprintf "%s_%s_%s_d%d" dir ba backend domains in
        let cmd =
          Printf.sprintf
            "%s engine --ba %s%s -n 7 -t 2 --sessions 8 --backend %s \
             --domains %d --seed 5 --obs-dir %s >/dev/null 2>/dev/null"
            cli ba extra backend domains d
        in
        Alcotest.check Alcotest.int (Printf.sprintf "%s/%s/d%d" ba backend domains)
          0 (Sys.command cmd);
        read (Filename.concat d "obs_det.jsonl")
      in
      let reference = variant "sim" 1 in
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      Alcotest.check Alcotest.bool (ba ^ ": det tier mentions adaptive") true
        (contains reference "adaptive/fast_path_taken");
      List.iter
        (fun (backend, domains) ->
          Alcotest.check Alcotest.string
            (Printf.sprintf "%s: obs_det %s/d%d = sim/d1" ba backend domains)
            reference (variant backend domains))
        [ ("sim", 2); ("poll", 1); ("poll", 2) ])
    [
      ("adaptive", "");
      ("adaptive-auth", " --adversary passive --attack honest-inputs");
    ]

let suite =
  [
    Alcotest.test_case "fast path engages at f=0" `Quick test_fast_path_engages_at_f0;
    Alcotest.test_case "fast path under passive corruptions" `Quick
      test_fast_path_engages_under_passive_faults;
    Alcotest.test_case "Definition 1 at every f in 0..t" `Slow test_definition1_every_f;
    Alcotest.test_case "certificate-threshold equivocation" `Quick
      test_certificate_threshold_equivocation;
    Alcotest.test_case "forged/withheld echoes" `Quick test_forged_and_withheld_echoes;
    Alcotest.test_case "forged median value falls back" `Quick test_forged_median_value;
    Alcotest.test_case "unanimity output is the common input" `Slow
      test_unanimity_output_is_the_input;
    QCheck_alcotest.to_alcotest prop_substrate_equals_fallback;
    Alcotest.test_case "substrate fast path + stats" `Quick
      test_substrate_fast_path_and_stats;
    Alcotest.test_case "cost model shape (both layers)" `Quick test_cost_model_shape;
    QCheck_alcotest.to_alcotest prop_wrapper_definition1;
    Alcotest.test_case "ca_cli: adaptive backends accepted" `Quick
      test_cli_adaptive_backends;
    Alcotest.test_case "ca_cli: scenario file ba = adaptive" `Quick
      test_cli_scenario_file_ba_adaptive;
    Alcotest.test_case "engine: sim = poll = domains 2 (Det tier)" `Slow
      test_engine_backend_identity;
  ]
