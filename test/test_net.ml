(* Simulator semantics: lock-step delivery, authentication, metrics,
   adversary overrides, label attribution, round limits. *)

open Net

let ( let* ) = Proto.( let* )

(* Each party broadcasts its id, then returns the set of senders heard. *)
let roll_call (_ctx : Ctx.t) =
  let* inbox = Proto.broadcast "here" in
  let heard = ref [] in
  Array.iteri (fun s m -> if m <> None then heard := s :: !heard) inbox;
  Proto.return (List.rev !heard)

let test_all_honest_delivery () =
  let n = 5 in
  let outcome =
    Sim.run ~n ~t:1
      ~corrupt:(Array.make n false)
      ~adversary:Adversary.passive roll_call
  in
  Alcotest.check Alcotest.int "one round" 1 outcome.Sim.metrics.Metrics.rounds;
  Array.iter
    (function
      | Some heard -> Alcotest.check (Alcotest.list Alcotest.int) "hears all" [ 0; 1; 2; 3; 4 ] heard
      | None -> Alcotest.fail "party did not finish")
    outcome.Sim.outputs;
  (* 5 parties x 4 non-self recipients x 4-byte message. *)
  Alcotest.check Alcotest.int "bits" (5 * 4 * 8 * 4) outcome.Sim.metrics.Metrics.honest_bits;
  Alcotest.check Alcotest.int "msgs" 20 outcome.Sim.metrics.Metrics.honest_msgs

let test_silent_adversary () =
  let n = 4 in
  let corrupt = Sim.corrupt_first ~n 1 in
  let outcome = Sim.run ~n ~t:1 ~corrupt ~adversary:Adversary.silent roll_call in
  List.iter
    (fun heard ->
      Alcotest.check (Alcotest.list Alcotest.int) "corrupt silent" [ 1; 2; 3 ] heard)
    (Sim.honest_outputs ~corrupt outcome);
  Alcotest.check Alcotest.int "no byz traffic" 0 outcome.Sim.metrics.Metrics.byz_bits

let test_byzantine_bits_not_counted () =
  let n = 4 in
  let corrupt = Sim.corrupt_first ~n 1 in
  let outcome =
    Sim.run ~n ~t:1 ~corrupt ~adversary:(Adversary.spammer ~seed:7 ~max_len:32) roll_call
  in
  (* Honest bits: 3 honest x 3 non-self x 4 bytes. *)
  Alcotest.check Alcotest.int "honest bits" (3 * 3 * 8 * 4)
    outcome.Sim.metrics.Metrics.honest_bits;
  Alcotest.check Alcotest.bool "byz bits counted separately" true
    (outcome.Sim.metrics.Metrics.byz_bits > 0)

(* Two sequenced rounds; party 0 sends a different value per recipient. *)
let two_rounds (ctx : Ctx.t) =
  let* first =
    Proto.exchange (fun r ->
        if ctx.Ctx.me = 0 then Some (Printf.sprintf "to-%d" r) else None)
  in
  let mine = first.(0) in
  let* _ = Proto.receive_only () in
  Proto.return mine

let test_per_recipient_messages () =
  let n = 3 in
  let outcome =
    Sim.run ~n ~t:0 ~corrupt:(Array.make n false) ~adversary:Adversary.passive
      two_rounds
  in
  Alcotest.check Alcotest.int "two rounds" 2 outcome.Sim.metrics.Metrics.rounds;
  Array.iteri
    (fun i o ->
      Alcotest.check
        (Alcotest.option (Alcotest.option Alcotest.string))
        (Printf.sprintf "party %d" i)
        (Some (Some (Printf.sprintf "to-%d" i)))
        o)
    outcome.Sim.outputs

let test_labels () =
  let labelled (_ctx : Ctx.t) =
    let* _ = Proto.with_label "phase-a" (Proto.broadcast "aaaa") in
    let* _ = Proto.with_label "phase-b" (Proto.broadcast "bb") in
    let* _ = Proto.broadcast "c" in
    Proto.return ()
  in
  let n = 3 in
  let outcome =
    Sim.run ~n ~t:0 ~corrupt:(Array.make n false) ~adversary:Adversary.passive
      labelled
  in
  let find l = List.assoc_opt l (Metrics.labels outcome.Sim.metrics) in
  Alcotest.check (Alcotest.option Alcotest.int) "phase-a" (Some (3 * 2 * 8 * 4)) (find "phase-a");
  Alcotest.check (Alcotest.option Alcotest.int) "phase-b" (Some (3 * 2 * 8 * 2)) (find "phase-b");
  Alcotest.check (Alcotest.option Alcotest.int) "unlabeled" (Some (3 * 2 * 8 * 1))
    (find Metrics.no_label)

let test_nested_labels () =
  let nested (_ctx : Ctx.t) =
    Proto.with_label "outer"
      (let* _ = Proto.broadcast "x" in
       let* _ = Proto.with_label "inner" (Proto.broadcast "y") in
       let* _ = Proto.broadcast "z" in
       Proto.return ())
  in
  let outcome =
    Sim.run ~n:2 ~t:0 ~corrupt:[| false; false |] ~adversary:Adversary.passive
      nested
  in
  let find l = List.assoc_opt l (Metrics.labels outcome.Sim.metrics) in
  (* outer gets rounds 1 and 3 (2 parties x 1 recipient x 1 byte each). *)
  Alcotest.check (Alcotest.option Alcotest.int) "outer" (Some 32) (find "outer");
  Alcotest.check (Alcotest.option Alcotest.int) "inner" (Some 16) (find "inner")

let test_round_limit () =
  let rec forever (ctx : Ctx.t) =
    let* _ = Proto.broadcast "spin" in
    forever ctx
  in
  Alcotest.check_raises "limit" (Sim.Round_limit_exceeded 10) (fun () ->
      ignore
        (Sim.run ~max_rounds:10 ~n:2 ~t:0 ~corrupt:[| false; false |]
           ~adversary:Adversary.passive forever))

let test_early_termination_mix () =
  (* Party 0 finishes after one round; party 1 after two. The simulator must
     keep running until all honest parties are done, with party 0 silent. *)
  let staggered (ctx : Ctx.t) =
    let* first = Proto.broadcast "hello" in
    if ctx.Ctx.me = 0 then Proto.return (Array.length first)
    else
      let* second = Proto.receive_only () in
      (* Party 0 already terminated: its slot must be empty. *)
      Proto.return (match second.(0) with None -> 0 | Some _ -> 99)
  in
  let outcome =
    Sim.run ~n:2 ~t:0 ~corrupt:[| false; false |] ~adversary:Adversary.passive
      staggered
  in
  Alcotest.check Alcotest.int "rounds" 2 outcome.Sim.metrics.Metrics.rounds;
  Alcotest.check (Alcotest.option Alcotest.int) "late party saw silence" (Some 0)
    outcome.Sim.outputs.(1)

let test_corruption_bound_enforced () =
  Alcotest.check_raises "too many corrupt" (Invalid_argument "Sim.run: more corruptions than t")
    (fun () ->
      ignore
        (Sim.run ~n:4 ~t:1 ~corrupt:[| true; true; false; false |]
           ~adversary:Adversary.silent roll_call));
  Alcotest.check_raises "ctx validates resilience"
    (Invalid_argument "Ctx.make: requires t < n/3") (fun () ->
      ignore (Ctx.make ~n:3 ~t:1 ~me:0))

let test_metrics_labels_deterministic () =
  (* Ties in the per-label bit counts break by label, ascending — the order
     never depends on hash-table iteration. *)
  let m = Metrics.create () in
  Metrics.record_honest m ~label:(Some "zeta") ~bytes:4;
  Metrics.record_honest m ~label:(Some "alpha") ~bytes:4;
  Metrics.record_honest m ~label:(Some "mid") ~bytes:4;
  Metrics.record_honest m ~label:(Some "big") ~bytes:9;
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "bits desc, then label asc"
    [ ("big", 72); ("alpha", 32); ("mid", 32); ("zeta", 32) ]
    (Metrics.labels m)

let test_metrics_merge () =
  let mk rounds kvs =
    let m = Metrics.create () in
    m.Metrics.rounds <- rounds;
    List.iter (fun (l, bytes) -> Metrics.record_honest m ~label:(Some l) ~bytes) kvs;
    m
  in
  let agg = Metrics.create () in
  Metrics.merge ~into:agg (mk 7 [ ("a", 2); ("b", 3) ]);
  Metrics.merge ~into:agg (mk 12 [ ("a", 5) ]);
  Metrics.merge ~into:agg (mk 4 [ ("c", 1) ]);
  (* Label bits accumulate across merges; rounds take the max, and stay the
     max no matter how many smaller sessions merge in afterwards. *)
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "labels accumulated"
    [ ("a", 56); ("b", 24); ("c", 8) ]
    (Metrics.labels agg);
  Alcotest.check Alcotest.int "rounds = max" 12 agg.Metrics.rounds;
  Metrics.merge ~into:agg (mk 2 []);
  Metrics.merge ~into:agg (mk 12 []);
  Alcotest.check Alcotest.int "rounds still max after repeats" 12 agg.Metrics.rounds;
  Alcotest.check Alcotest.int "honest bits summed" (8 * (2 + 3 + 5 + 1))
    agg.Metrics.honest_bits

let test_metrics_snapshot_diff () =
  let m = Metrics.create () in
  m.Metrics.rounds <- 3;
  Metrics.record_honest m ~label:(Some "setup") ~bytes:10;
  Metrics.record_byzantine m ~bytes:2;
  let before = Metrics.snapshot m in
  (* The snapshot is independent: the original keeps accumulating. *)
  m.Metrics.rounds <- 8;
  Metrics.record_honest m ~label:(Some "setup") ~bytes:1;
  Metrics.record_honest m ~label:(Some "search") ~bytes:5;
  Metrics.record_byzantine m ~bytes:4;
  Alcotest.check Alcotest.int "snapshot unchanged" (8 * 10)
    before.Metrics.honest_bits;
  Alcotest.check Alcotest.int "snapshot rounds unchanged" 3 before.Metrics.rounds;
  let d = Metrics.diff ~after:m ~before in
  Alcotest.check Alcotest.int "bits delta" (8 * 6) d.Metrics.honest_bits;
  Alcotest.check Alcotest.int "msgs delta" 2 d.Metrics.honest_msgs;
  Alcotest.check Alcotest.int "byz delta" (8 * 4) d.Metrics.byz_bits;
  Alcotest.check Alcotest.int "rounds delta" 5 d.Metrics.rounds;
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "per-label deltas, zero-delta labels dropped"
    [ ("search", 40); ("setup", 8) ]
    (Metrics.labels d)

let test_prng_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  let xs g = List.init 20 (fun _ -> Prng.int g 1000) in
  Alcotest.check (Alcotest.list Alcotest.int) "same seed same stream" (xs a) (xs b);
  let c = Prng.create 43 in
  Alcotest.check Alcotest.bool "different seed differs" true (xs (Prng.create 42) <> xs c);
  Alcotest.check Alcotest.int "bytes length" 17 (String.length (Prng.bytes a 17))

let suite =
  [
    Alcotest.test_case "all-honest delivery" `Quick test_all_honest_delivery;
    Alcotest.test_case "silent adversary" `Quick test_silent_adversary;
    Alcotest.test_case "byzantine bits separate" `Quick test_byzantine_bits_not_counted;
    Alcotest.test_case "per-recipient messages" `Quick test_per_recipient_messages;
    Alcotest.test_case "labels" `Quick test_labels;
    Alcotest.test_case "nested labels" `Quick test_nested_labels;
    Alcotest.test_case "round limit" `Quick test_round_limit;
    Alcotest.test_case "staggered termination" `Quick test_early_termination_mix;
    Alcotest.test_case "corruption bound" `Quick test_corruption_bound_enforced;
    Alcotest.test_case "metrics labels deterministic" `Quick
      test_metrics_labels_deterministic;
    Alcotest.test_case "metrics merge" `Quick test_metrics_merge;
    Alcotest.test_case "metrics snapshot/diff" `Quick test_metrics_snapshot_diff;
    Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
  ]
