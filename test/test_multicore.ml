(* Sequential-equals-parallel bit-identity — the hard invariant of the
   multicore execution layer. Every entry point that takes [?domains] must
   produce byte-identical results for every domain count: engine outputs,
   per-session metrics (labels included), the aggregate ledger, trace CSV
   and telemetry JSONL; Sim.run reports; Workload.run_cells sweeps. Plus the
   shard-merge unit tests for Metrics and Telemetry that the engine's merge
   pass relies on. *)

open Net

(* ---- shared fixtures (the test_engine.ml session family) ---------------- *)

let session_inputs ~n k =
  let rng = Prng.create (9000 + k) in
  Workload.clustered_bits rng ~n ~bits:64 ~shared_prefix_bits:32

let mk_protocol ~n k =
  let inputs = session_inputs ~n k in
  fun ctx -> Convex.agree_int ctx inputs.(ctx.Ctx.me)

(* A comparable, fully-structural image of an engine outcome: Bigints as hex,
   metrics as their counter tuple plus the deterministic label table. *)
let fingerprint (o : Bigint.t Engine.outcome) =
  ( List.map
      (fun r ->
        ( r.Engine.r_sid,
          Array.to_list (Array.map (Option.map Bigint.to_hex) r.Engine.r_outputs),
          ( r.Engine.r_metrics.Metrics.rounds,
            r.Engine.r_metrics.Metrics.honest_bits,
            r.Engine.r_metrics.Metrics.honest_msgs,
            r.Engine.r_metrics.Metrics.byz_bits,
            r.Engine.r_metrics.Metrics.byz_msgs ),
          Metrics.labels r.Engine.r_metrics,
          (r.Engine.r_admitted_at, r.Engine.r_retired_at) ))
      o.Engine.sessions,
    o.Engine.aggregate )

let engine_run ~domains ~sessions ~spacing ~n ~t ~seed =
  let corrupt = Workload.spread_corrupt ~n ~t in
  let specs =
    List.init sessions (fun k ->
        let inputs =
          let rng = Prng.create (seed + (101 * k)) in
          Workload.clustered_bits rng ~n ~bits:48 ~shared_prefix_bits:16
        in
        Engine.session ~sid:k ~start_round:(spacing * k)
          ~adversary:(Adversary.equivocate ~seed:(seed + (31 * k)))
          (fun ctx -> Convex.agree_int ctx inputs.(ctx.Ctx.me)))
  in
  let trace = Trace.create () in
  let telemetry = Telemetry.create () in
  let outcome = Engine.run_sim ~domains ~trace ~telemetry ~n ~t ~corrupt specs in
  (fingerprint outcome, Trace.to_csv trace, Telemetry.to_jsonl telemetry)

(* ---- engine: K=8 under equivocate, domains 1/2/4 ------------------------ *)

let test_engine_bit_identical () =
  let run domains =
    engine_run ~domains ~sessions:8 ~spacing:2 ~n:7 ~t:2 ~seed:4242
  in
  let base_fp, base_csv, base_jsonl = run 1 in
  List.iter
    (fun domains ->
      let fp, csv, jsonl = run domains in
      Alcotest.(check bool)
        (Printf.sprintf "outputs+metrics+ledger (domains=%d)" domains)
        true (fp = base_fp);
      Alcotest.(check string)
        (Printf.sprintf "trace CSV byte-identical (domains=%d)" domains)
        base_csv csv;
      Alcotest.(check string)
        (Printf.sprintf "telemetry JSONL byte-identical (domains=%d)" domains)
        base_jsonl jsonl)
    [ 2; 4 ]

(* qcheck: the identity holds for random session counts, admission spacings
   and seeds, not just the hand-picked fixture. *)
let prop_engine_parallel_equals_sequential =
  QCheck.Test.make ~count:10
    ~name:"engine parallel = sequential (random K, spacing, seed)"
    QCheck.(triple (int_range 1 6) (int_range 0 4) (int_range 0 9999))
    (fun (sessions, spacing, seed) ->
      let run domains =
        engine_run ~domains ~sessions ~spacing ~n:7 ~t:2 ~seed
      in
      run 1 = run 3)

(* ---- Sim.run and run_cells ---------------------------------------------- *)

let sim_report ~domains =
  let n = 10 and t = 3 in
  let rng = Prng.create 77 in
  let inputs = Workload.clustered_bits rng ~n ~bits:96 ~shared_prefix_bits:40 in
  let telemetry = Telemetry.create () in
  let report =
    Workload.run_int ~telemetry ~domains ~n ~t
      ~corrupt:(Workload.spread_corrupt ~n ~t)
      ~adversary:(Adversary.equivocate ~seed:42) ~inputs Convex.agree_int
  in
  (report, Telemetry.to_jsonl telemetry)

let test_sim_bit_identical () =
  let base, base_jsonl = sim_report ~domains:1 in
  List.iter
    (fun domains ->
      let r, jsonl = sim_report ~domains in
      Alcotest.(check bool)
        (Printf.sprintf "Sim.run report identical (domains=%d)" domains)
        true (r = base);
      Alcotest.(check string)
        (Printf.sprintf "Sim.run telemetry JSONL (domains=%d)" domains)
        base_jsonl jsonl)
    [ 2; 4 ]

let sweep_cells () =
  List.concat_map
    (fun seed ->
      List.map
        (fun n ->
          Workload.cell ~label:(Printf.sprintf "seed%d-n%d" seed n) (fun () ->
              let rng = Prng.create seed in
              let inputs =
                Workload.clustered_bits rng ~n ~bits:32 ~shared_prefix_bits:8
              in
              let t = (n - 1) / 3 in
              Workload.run_int ~n ~t
                ~corrupt:(Workload.spread_corrupt ~n ~t)
                ~adversary:(Adversary.equivocate ~seed:(seed + 1))
                ~inputs Convex.agree_int))
        [ 4; 7 ])
    [ 1; 2; 3 ]

let test_run_cells_bit_identical () =
  let seq = Workload.run_cells ~domains:1 (sweep_cells ()) in
  let par = Workload.run_cells ~domains:3 (sweep_cells ()) in
  Alcotest.(check bool) "run_cells parallel = sequential" true (seq = par);
  Alcotest.(check (list string)) "labels in input order"
    (List.map fst seq) (List.map fst par)

(* ---- unix backend -------------------------------------------------------- *)

let test_run_unix_bit_identical () =
  let n = 4 in
  let run domains =
    let specs =
      List.init 6 (fun k ->
          Engine.session ~sid:k ~start_round:k (mk_protocol ~n k))
    in
    let telemetry = Telemetry.create () in
    let outcome = Engine.run_unix ~domains ~telemetry ~n specs in
    (fingerprint outcome, Telemetry.to_jsonl telemetry)
  in
  let base = run 1 in
  Alcotest.(check bool) "run_unix domains=2 = domains=1" true (run 2 = base)

(* ---- Metrics shard merge ------------------------------------------------- *)

let test_metrics_is_empty () =
  let m = Metrics.create () in
  Alcotest.(check bool) "fresh collector is empty" true (Metrics.is_empty m);
  Alcotest.(check bool) "snapshot of empty is empty" true
    (Metrics.is_empty (Metrics.snapshot m));
  Metrics.record_honest m ~label:None ~bytes:1;
  Alcotest.(check bool) "after one message: not empty" false (Metrics.is_empty m);
  let r = Metrics.create () in
  r.Metrics.rounds <- 1;
  Alcotest.(check bool) "rounds alone: not empty" false (Metrics.is_empty r)

(* Merging per-session shards in session order must reproduce the
   single-collector table, including the bits-then-label tie-break: labels
   "alpha"/"beta" are given equal totals split across shards. *)
let test_metrics_shard_merge () =
  let events k =
    [
      (Some "alpha", 10 + k);
      (Some "beta", 13 - k);
      (None, 2);
      (Some (Printf.sprintf "only%d" k), 1 + k);
    ]
  in
  let record m (label, bytes) = Metrics.record_honest m ~label ~bytes in
  let single = Metrics.create () in
  let shards =
    List.init 4 (fun k ->
        let sh = Metrics.create () in
        List.iter (record sh) (events k);
        List.iter (record single) (events k);
        sh.Metrics.rounds <- [| 3; 7; 5; 2 |].(k);
        Metrics.record_byzantine sh ~bytes:k;
        Metrics.record_byzantine single ~bytes:k;
        sh)
  in
  single.Metrics.rounds <- 7;
  let agg = Metrics.create () in
  List.iter (fun sh -> Metrics.merge ~into:agg sh) shards;
  Alcotest.(check (list (pair string int))) "label table (tie-break included)"
    (Metrics.labels single) (Metrics.labels agg);
  Alcotest.(check bool) "alpha/beta tie present" true
    (List.assoc "alpha" (Metrics.labels agg)
    = List.assoc "beta" (Metrics.labels agg));
  Alcotest.(check int) "honest_bits" single.Metrics.honest_bits
    agg.Metrics.honest_bits;
  Alcotest.(check int) "honest_msgs" single.Metrics.honest_msgs
    agg.Metrics.honest_msgs;
  Alcotest.(check int) "byz_bits" single.Metrics.byz_bits agg.Metrics.byz_bits;
  Alcotest.(check int) "byz_msgs" single.Metrics.byz_msgs agg.Metrics.byz_msgs;
  Alcotest.(check int) "rounds is the max over shards" 7 agg.Metrics.rounds

(* ---- Telemetry shard merge ----------------------------------------------- *)

let record_session tel ~session =
  for party = 0 to 1 do
    Telemetry.push tel ~session ~party ~round:0 ~label:"phase";
    Telemetry.message tel ~session ~party ~round:1
      ~timeline_round:(session + 1) ~bytes:(4 + session) ~byzantine:false ();
    Telemetry.pop tel ~session ~party ~round:1;
    Telemetry.finish tel ~session ~party ~round:2
  done

let test_telemetry_merge () =
  (* Direct recording in session order... *)
  let direct = Telemetry.create () in
  Telemetry.set_meta direct "kind" "merge-test";
  List.iter (fun s -> record_session direct ~session:s) [ 0; 1; 2 ];
  (* ...equals per-session shards merged in session-index order. *)
  let merged = Telemetry.create () in
  Telemetry.set_meta merged "kind" "merge-test";
  List.iter
    (fun s ->
      let shard = Telemetry.create () in
      record_session shard ~session:s;
      Telemetry.merge ~into:merged shard)
    [ 0; 1; 2 ];
  Alcotest.(check string) "merged JSONL byte-identical"
    (Telemetry.to_jsonl direct) (Telemetry.to_jsonl merged);
  let a = Telemetry.create () and b = Telemetry.create () in
  record_session a ~session:0;
  record_session b ~session:0;
  match Telemetry.merge ~into:a b with
  | () -> Alcotest.fail "bucket collision not rejected"
  | exception Invalid_argument msg ->
      (* Which colliding party is reported depends on hash order; the bucket
         diagnostic prefix is the contract. *)
      Alcotest.(check string) "collision diagnostic" "Telemetry.merge: bucket"
        (String.sub msg 0 23)

let suite =
  [
    Alcotest.test_case "engine K=8 equivocate: domains 1/2/4 byte-identical"
      `Quick test_engine_bit_identical;
    QCheck_alcotest.to_alcotest prop_engine_parallel_equals_sequential;
    Alcotest.test_case "Sim.run: domains 1/2/4 byte-identical" `Quick
      test_sim_bit_identical;
    Alcotest.test_case "run_cells: parallel sweep = sequential sweep" `Quick
      test_run_cells_bit_identical;
    Alcotest.test_case "run_unix: domains 2 = domains 1" `Quick
      test_run_unix_bit_identical;
    Alcotest.test_case "Metrics.is_empty" `Quick test_metrics_is_empty;
    Alcotest.test_case "Metrics shard merge reproduces single collector"
      `Quick test_metrics_shard_merge;
    Alcotest.test_case "Telemetry shard merge reproduces sequential JSONL"
      `Quick test_telemetry_merge;
  ]
