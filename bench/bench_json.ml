(* Minimal JSON emitter for machine-readable benchmark results, so the perf
   trajectory is trackable across PRs (BENCH_*.json files at the repo root).
   No external dependency; strings are escaped conservatively. *)

type value =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Null

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let emit_value buf = function
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6g" f)
      else Buffer.add_string buf "null"
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Null -> Buffer.add_string buf "null"

(* Shared provenance meta, stamped into every ledger: BENCH_*.json numbers
   are only comparable across PRs when each file records what produced them
   (commit, compiler, and — since the multicore layer — the domain count the
   harness ran with). *)

let domains = ref 1
let set_domains d = domains := d

let command_line cmd =
  try
    let ic = Unix.open_process_in cmd in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 -> Some line
    | _ -> None
  with _ -> None

let git_rev =
  lazy
    (match command_line "git rev-parse --short HEAD 2>/dev/null" with
    | None | Some "" -> "unknown"
    | Some rev -> (
        (* A ledger regenerated from an uncommitted tree must say so: the
           named commit alone cannot reproduce it. *)
        match command_line "git status --porcelain 2>/dev/null" with
        | Some "" -> rev
        | Some _ -> rev ^ "+dirty"
        | None -> rev))

let shared_meta () =
  [
    ("git_rev", Str (Lazy.force git_rev));
    ("ocaml_version", Str Sys.ocaml_version);
    ("domains", Int !domains);
  ]

let emit_obj buf fields =
  Buffer.add_char buf '{';
  List.iteri
    (fun i (key, v) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape key);
      Buffer.add_string buf "\": ";
      emit_value buf v)
    fields;
  Buffer.add_char buf '}'

(* {"meta": {...}, "rows": [{...}, ...]} — one row object per table line. *)
let write ~path ~meta ~rows =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"meta\": ";
  emit_obj buf (meta @ shared_meta ());
  Buffer.add_string buf ",\n  \"rows\": [";
  List.iteri
    (fun i row ->
      Buffer.add_string buf (if i > 0 then ",\n    " else "\n    ");
      emit_obj buf row)
    rows;
  Buffer.add_string buf "\n  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "\n[wrote %s: %d rows]\n" path (List.length rows)
