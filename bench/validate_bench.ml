(* Validate committed BENCH_*.json ledgers: each must parse as JSON and have
   the harness's shape — a top-level object with "meta" (an object carrying
   an "experiment" string) and "rows" (a non-empty array of objects).

     dune exec bench/validate_bench.exe -- BENCH_*.json

   Wired into `make check` so a hand-edited or truncated ledger fails fast.
   Zero dependencies: a minimal recursive-descent JSON parser is enough for
   the subset Bench_json emits (and rejects anything outside JSON proper). *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some (('"' | '\\' | '/') as c) ->
              Buffer.add_char buf c;
              advance ();
              go ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance (); go ()
          | Some 'u' ->
              (* Bench_json never emits \u, but accept and keep it verbatim. *)
              if !pos + 4 >= n then fail "truncated \\u escape";
              Buffer.add_string buf (String.sub s (!pos - 1) 6);
              pos := !pos + 5;
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some f -> Num f
    | None -> fail (Printf.sprintf "bad number %S" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((key, v) :: acc))
            | _ -> fail "expected , or } in object"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected , or ] in array"
          in
          elements []
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  content

(* Provenance keys Bench_json stamps into every ledger's meta. A "+dirty"
   rev means the ledger was generated from an uncommitted tree — legal while
   iterating, but a committed ledger should come from a clean checkout, so
   flag it loudly without failing the build. *)
let check_provenance ~path meta =
  (match List.assoc_opt "git_rev" meta with
  | Some (Str rev) when rev <> "" ->
      let dirty_suffix = "+dirty" in
      let dl = String.length dirty_suffix in
      if
        String.length rev >= dl
        && String.sub rev (String.length rev - dl) dl = dirty_suffix
      then
        Printf.eprintf
          "%s: warning: git_rev %S carries +dirty — regenerate this ledger \
           from a clean tree before committing\n"
          path rev
  | Some _ -> failwith "meta.git_rev is not a non-empty string"
  | None -> failwith "meta has no \"git_rev\" key");
  (match List.assoc_opt "ocaml_version" meta with
  | Some (Str v) when v <> "" -> ()
  | Some _ -> failwith "meta.ocaml_version is not a non-empty string"
  | None -> failwith "meta has no \"ocaml_version\" key");
  match List.assoc_opt "domains" meta with
  | Some (Num d) when d >= 1. && Float.is_integer d -> ()
  | Some _ -> failwith "meta.domains is not an integer >= 1"
  | None -> failwith "meta has no \"domains\" key"

(* The parallel experiment's rows carry the multicore acceptance data; a
   ledger missing the identity flag or the speedup column is useless. *)
let check_parallel_row i row =
  let field key =
    match List.assoc_opt key row with
    | Some v -> v
    | None -> failwith (Printf.sprintf "rows[%d] has no %S key" i key)
  in
  (match field "domains" with
  | Num d when d >= 1. && Float.is_integer d -> ()
  | _ -> failwith (Printf.sprintf "rows[%d].domains is not an integer >= 1" i));
  (match field "cells_per_s" with
  | Num r when r > 0. -> ()
  | _ -> failwith (Printf.sprintf "rows[%d].cells_per_s is not positive" i));
  (match field "speedup_vs_seq" with
  | Num _ -> ()
  | _ -> failwith (Printf.sprintf "rows[%d].speedup_vs_seq is not a number" i));
  match field "identical" with
  | Bool true -> ()
  | Bool false ->
      failwith (Printf.sprintf "rows[%d].identical is false: bit-identity broken" i)
  | _ -> failwith (Printf.sprintf "rows[%d].identical is not a boolean" i)

(* The engine experiment's rows carry the scale-out acceptance data: every
   row a backend, a session count, a throughput and a peak-RSS reading, and
   the ledger as a whole must include the event-driven backend driven into
   the thousands of sessions. *)
let check_engine_row i row =
  let field key =
    match List.assoc_opt key row with
    | Some v -> v
    | None -> failwith (Printf.sprintf "rows[%d] has no %S key" i key)
  in
  (match field "backend" with
  | Str ("sim" | "sim-honest" | "unix" | "poll") -> ()
  | Str b -> failwith (Printf.sprintf "rows[%d].backend %S is unknown" i b)
  | _ -> failwith (Printf.sprintf "rows[%d].backend is not a string" i));
  (match field "sessions" with
  | Num s when s >= 1. && Float.is_integer s -> ()
  | _ -> failwith (Printf.sprintf "rows[%d].sessions is not an integer >= 1" i));
  (match field "sessions_per_s" with
  | Num r when r > 0. -> ()
  | _ -> failwith (Printf.sprintf "rows[%d].sessions_per_s is not positive" i));
  (match field "rss_bytes" with
  | Num b when b >= 0. && Float.is_integer b -> ()
  | _ ->
      failwith (Printf.sprintf "rows[%d].rss_bytes is not a non-negative integer" i));
  (* The allocation column: minor words per session. A ledger without it
     predates the hot-path overhaul and cannot back the gc gates. *)
  match field "gc" with
  | Num g when g >= 0. -> ()
  | _ -> failwith (Printf.sprintf "rows[%d].gc is not a non-negative number" i)

(* The auth experiment's rows compare the Pi_BA substrate backends at equal
   n; every row must gate on Definition 1 (ca_holds), and the ledger must
   pair both backends so the comparison is actually present. *)
let check_auth_row i row =
  let field key =
    match List.assoc_opt key row with
    | Some v -> v
    | None -> failwith (Printf.sprintf "rows[%d] has no %S key" i key)
  in
  (match field "backend" with
  | Str ("unauth" | "auth") -> ()
  | Str b -> failwith (Printf.sprintf "rows[%d].backend %S is unknown" i b)
  | _ -> failwith (Printf.sprintf "rows[%d].backend is not a string" i));
  List.iter
    (fun key ->
      match field key with
      | Num v when v >= 1. && Float.is_integer v -> ()
      | _ -> failwith (Printf.sprintf "rows[%d].%s is not an integer >= 1" i key))
    [ "n"; "t"; "bits"; "honest_bits"; "rounds" ];
  match field "ca_holds" with
  | Bool true -> ()
  | Bool false ->
      failwith
        (Printf.sprintf "rows[%d].ca_holds is false: Definition 1 violated" i)
  | _ -> failwith (Printf.sprintf "rows[%d].ca_holds is not a boolean" i)

let check_auth_ledger rows =
  let ns_of backend =
    List.filter_map
      (function
        | Obj fields when List.assoc_opt "backend" fields = Some (Str backend)
          -> (
            match List.assoc_opt "n" fields with
            | Some (Num n) -> Some n
            | _ -> None)
        | _ -> None)
      rows
  in
  let unauth = ns_of "unauth" and auth = ns_of "auth" in
  if unauth = [] then failwith "auth ledger has no backend=\"unauth\" rows";
  if auth = [] then failwith "auth ledger has no backend=\"auth\" rows";
  List.iter
    (fun n ->
      if not (List.mem n auth) then
        failwith
          (Printf.sprintf
             "auth ledger has no backend=\"auth\" row at n=%g to pair the \
              unauth one"
             n))
    unauth

(* The obs experiment's single row carries the observability-plane
   acceptance data: the overhead measurement backing the <= 10% gate and the
   two identity flags (Det-tier export byte-identical across backends,
   frame histogram sum equal to the aggregate ledger). *)
let check_obs_row i row =
  let field key =
    match List.assoc_opt key row with
    | Some v -> v
    | None -> failwith (Printf.sprintf "rows[%d] has no %S key" i key)
  in
  List.iter
    (fun key ->
      match field key with
      | Num v when v > 0. -> ()
      | _ -> failwith (Printf.sprintf "rows[%d].%s is not positive" i key))
    [ "bare_s"; "obs_s" ];
  (match field "overhead_pct" with
  | Num _ -> ()
  | _ -> failwith (Printf.sprintf "rows[%d].overhead_pct is not a number" i));
  List.iter
    (fun key ->
      match field key with
      | Num v when v >= 1. && Float.is_integer v -> ()
      | _ -> failwith (Printf.sprintf "rows[%d].%s is not an integer >= 1" i key))
    [ "engine_rounds"; "det_jsonl_bytes"; "trace_bytes"; "trace_events" ];
  List.iter
    (fun key ->
      match field key with
      | Bool true -> ()
      | Bool false ->
          failwith
            (Printf.sprintf "rows[%d].%s is false: obs determinism broken" i key)
      | _ -> failwith (Printf.sprintf "rows[%d].%s is not a boolean" i key))
    [ "det_identical"; "hist_ledger_equal" ]

(* The adaptive experiment's rows carry the fault-adaptive acceptance data:
   an f-sweep per backend whose zero-fault row took the fast path and cost
   strictly less than every faulty row — the "cost scales with f, not t"
   claim in ledger form. pi_z rows are the paired worst-case reference. *)
let check_adaptive_row i row =
  let field key =
    match List.assoc_opt key row with
    | Some v -> v
    | None -> failwith (Printf.sprintf "rows[%d] has no %S key" i key)
  in
  (match field "backend" with
  | Str ("pi_z" | "adaptive" | "adaptive-auth") -> ()
  | Str b -> failwith (Printf.sprintf "rows[%d].backend %S is unknown" i b)
  | _ -> failwith (Printf.sprintf "rows[%d].backend is not a string" i));
  (match field "f" with
  | Num f when f >= 0. && Float.is_integer f -> ()
  | _ -> failwith (Printf.sprintf "rows[%d].f is not an integer >= 0" i));
  List.iter
    (fun key ->
      match field key with
      | Num v when v >= 1. && Float.is_integer v -> ()
      | _ -> failwith (Printf.sprintf "rows[%d].%s is not an integer >= 1" i key))
    [ "n"; "t"; "bits"; "honest_bits"; "rounds" ];
  (match field "fast_path" with
  | Bool _ | Null -> ()
  | _ -> failwith (Printf.sprintf "rows[%d].fast_path is not a boolean or null" i));
  match field "ca_holds" with
  | Bool true -> ()
  | Bool false ->
      failwith
        (Printf.sprintf "rows[%d].ca_holds is false: Definition 1 violated" i)
  | _ -> failwith (Printf.sprintf "rows[%d].ca_holds is not a boolean" i)

let check_adaptive_ledger rows =
  let rows_of backend =
    List.filter_map
      (function
        | Obj fields when List.assoc_opt "backend" fields = Some (Str backend)
          ->
            let num key =
              match List.assoc_opt key fields with
              | Some (Num v) -> v
              | _ ->
                  failwith
                    (Printf.sprintf "adaptive ledger: %s row lacks numeric %s"
                       backend key)
            in
            Some (num "f", num "t", num "honest_bits", List.assoc_opt "fast_path" fields)
        | _ -> None)
      rows
  in
  let pi_z_fs = List.map (fun (f, _, _, _) -> f) (rows_of "pi_z") in
  List.iter
    (fun backend ->
      match rows_of backend with
      | [] ->
          failwith
            (Printf.sprintf "adaptive ledger has no backend=%S rows" backend)
      | sweep ->
          let _, t, _, _ = List.hd sweep in
          (* Full f coverage: one row per f in 0..t. *)
          for f = 0 to int_of_float t do
            if not (List.exists (fun (f', _, _, _) -> f' = float_of_int f) sweep)
            then
              failwith
                (Printf.sprintf "adaptive ledger: %s sweep misses f=%d (t=%g)"
                   backend f t)
          done;
          let bits_at_0 =
            match List.find_opt (fun (f, _, _, _) -> f = 0.) sweep with
            | Some (_, _, b, Some (Bool true)) -> b
            | Some (_, _, _, _) ->
                failwith
                  (Printf.sprintf
                     "adaptive ledger: %s f=0 row did not take the fast path"
                     backend)
            | None -> assert false
          in
          List.iter
            (fun (f, _, b, _) ->
              if f > 0. && b <= bits_at_0 then
                failwith
                  (Printf.sprintf
                     "adaptive ledger: %s f=%g row (%g bits) not above the \
                      f=0 fast path (%g bits)"
                     backend f b bits_at_0))
            sweep)
    [ "adaptive"; "adaptive-auth" ];
  (* Every plain-adaptive grid point needs its worst-case reference row. *)
  List.iter
    (fun (f, _, _, _) ->
      if not (List.mem f pi_z_fs) then
        failwith
          (Printf.sprintf
             "adaptive ledger has no backend=\"pi_z\" row at f=%g to pair \
              the adaptive one"
             f))
    (rows_of "adaptive")

let check_engine_ledger rows =
  let poll_sessions =
    List.filter_map
      (function
        | Obj fields when List.assoc_opt "backend" fields = Some (Str "poll")
          -> (
            match List.assoc_opt "sessions" fields with
            | Some (Num s) -> Some s
            | _ -> None)
        | _ -> None)
      rows
  in
  if poll_sessions = [] then
    failwith "engine ledger has no backend=\"poll\" rows";
  if not (List.exists (fun s -> s >= 1024.) poll_sessions) then
    failwith "engine ledger has no poll row with sessions >= 1024"

let validate path =
  let json =
    try parse (read_file path) with
    | Bad msg -> failwith (Printf.sprintf "parse error: %s" msg)
    | Sys_error msg -> failwith msg
  in
  match json with
  | Obj fields -> (
      let experiment =
        match List.assoc_opt "meta" fields with
        | Some (Obj meta) -> (
            check_provenance ~path meta;
            match List.assoc_opt "experiment" meta with
            | Some (Str name) when name <> "" -> name
            | Some _ -> failwith "meta.experiment is not a non-empty string"
            | None -> failwith "meta has no \"experiment\" key")
        | Some _ -> failwith "\"meta\" is not an object"
        | None -> failwith "no top-level \"meta\" key"
      in
      match List.assoc_opt "rows" fields with
      | Some (Arr []) -> failwith "\"rows\" is empty"
      | Some (Arr rows) ->
          List.iteri
            (fun i row ->
              match row with
              | Obj ((_ :: _) as fields) ->
                  if experiment = "parallel" then check_parallel_row i fields;
                  if experiment = "engine" then check_engine_row i fields;
                  if experiment = "auth" then check_auth_row i fields;
                  if experiment = "adaptive" then check_adaptive_row i fields;
                  if experiment = "obs" then check_obs_row i fields
              | Obj [] -> failwith (Printf.sprintf "rows[%d] is empty" i)
              | _ -> failwith (Printf.sprintf "rows[%d] is not an object" i))
            rows;
          if experiment = "engine" then check_engine_ledger rows;
          if experiment = "auth" then check_auth_ledger rows;
          if experiment = "adaptive" then check_adaptive_ledger rows;
          (List.length rows, experiment)
      | Some _ -> failwith "\"rows\" is not an array"
      | None -> failwith "no top-level \"rows\" key")
  | _ -> failwith "top level is not an object"

let () =
  let paths = List.tl (Array.to_list Sys.argv) in
  if paths = [] then begin
    prerr_endline "usage: validate_bench BENCH_*.json";
    exit 2
  end;
  let failures = ref 0 in
  let experiments = ref [] in
  List.iter
    (fun path ->
      match validate path with
      | rows, experiment ->
          experiments := experiment :: !experiments;
          Printf.printf "%-28s ok (%d rows)\n" path rows
      | exception Failure msg ->
          incr failures;
          Printf.printf "%-28s FAIL: %s\n" path msg)
    paths;
  (* A full-ledger sweep (more than one path) must include the substrate
     comparison, the fault-adaptive sweep and the observability-plane
     ledger: losing BENCH_auth.json, BENCH_adaptive.json or BENCH_obs.json
     from the glob should fail the build, exactly like losing a required
     column from a row. *)
  List.iter
    (fun (experiment, ledger) ->
      if List.length paths > 1 && not (List.mem experiment !experiments)
      then begin
        Printf.printf
          "ledger sweep FAIL: no experiment=%S ledger (%s) among the \
           validated paths\n"
          experiment ledger;
        incr failures
      end)
    [
      ("auth", "BENCH_auth.json");
      ("adaptive", "BENCH_adaptive.json");
      ("obs", "BENCH_obs.json");
    ];
  if !failures > 0 then exit 1
