(* Benchmark harness: regenerates every experiment table and figure defined
   in DESIGN.md / EXPERIMENTS.md.

     dune exec bench/main.exe                 -- run everything
     dune exec bench/main.exe -- t1 f1        -- run a subset
     dune exec bench/main.exe -- --domains 4  -- fan cells over 4 domains

   The paper (a brief announcement) has no empirical section; the experiments
   measure exactly what its theorems claim: communication complexity (honest
   bits), round complexity, resilience, and the properties of the new
   primitives. Absolute numbers are simulator-specific; the shapes — who
   wins, by what factor, where the crossover sits — are the reproduction
   target (see EXPERIMENTS.md). *)

open Net

let line = String.make 104 '-'

(* --smoke: every experiment at tiny parameters, a few seconds end to end.
   Wired into `make check` so the bench harness cannot rot; smoke runs skip
   the JSON ledgers so committed BENCH_*.json files are never clobbered. *)
let smoke = ref false

(* --domains N: fan independent experiment cells (t1, t4, parallel) out over
   the shared domain pool. Defaults to the hardware parallelism bound; the
   per-cell results are bit-identical for any value (Workload.run_cells). *)
let domains = ref 1

let write_json ~path ~meta ~rows =
  if !smoke then Printf.printf "\n[smoke: not writing %s]\n" path
  else Bench_json.write ~path ~meta ~rows

let header title claim =
  Printf.printf "\n%s\n%s\n%s\n" line title line;
  Printf.printf "%s\n\n" claim

let kbits b = Printf.sprintf "%.1f" (float_of_int b /. 1000.)

(* Standard workload: clustered ℓ-bit naturals (half the bits shared), t
   byzantine parties holding outlier inputs and equivocating on the wire. *)
let standard_inputs ~seed ~n ~bits =
  let rng = Prng.create seed in
  Workload.clustered_bits rng ~n ~bits ~shared_prefix_bits:(bits / 2)

let run_protocol ?(adversary_seed = 5) ~seed ~n ~t ~bits (p : Workload.protocol) =
  let corrupt = Workload.spread_corrupt ~n ~t in
  let inputs = standard_inputs ~seed ~n ~bits in
  let inputs = Workload.apply_input_attack Workload.Outlier_high ~corrupt inputs in
  let adversary = Adversary.equivocate ~seed:adversary_seed in
  Workload.run_int ~n ~t ~corrupt ~adversary ~inputs p.Workload.run

let comparators ~bits =
  [
    Workload.pi_z;
    Workload.turpin_coan_ba ~bits;
    Workload.high_cost_ca ~bits;
    Workload.broadcast_ca ~bits;
  ]

(* ------------------------------------------------------------------ *)
(* T1: honest bits vs input length ℓ (n fixed)                         *)
(* ------------------------------------------------------------------ *)

let t1 () =
  let n = 13 and t = 4 in
  header "T1  --  communication vs input length  (n = 13, t = 4)"
    "Claim (Thm 5 / Cor 2): BITS(Pi_Z) = O(l*n + k*n^2*log^2 n); prior approaches are\n\
     Omega(l*n^2) (Turpin-Coan BA — which is not even CA) or O(l*n^3) (HighCostCA,\n\
     Broadcast-CA). Expect Pi_Z's kbits column to grow ~linearly in l and win for large l.";
  Printf.printf "%-8s | %18s | %18s | %18s | %18s\n" "l (bits)"
    "Pi_Z kbits" "TC-BA kbits" "HighCostCA kbits" "Broadcast-CA kbits";
  print_endline line;
  let lgs = if !smoke then [ 9; 11 ] else [ 9; 10; 11; 12; 13; 14; 15; 16; 17 ] in
  (* Each (l, protocol) grid point is an independent cell — the whole grid
     fans out over the domain pool. run_protocol constructs its adversary and
     PRNGs inside the thunk, so cells are self-contained. *)
  let grid =
    List.concat_map
      (fun lg ->
        let bits = 1 lsl lg in
        let point name p =
          Workload.cell ~label:(Printf.sprintf "2^%d/%s" lg name) (fun () ->
              let r = run_protocol ~seed:(100 + lg) ~n ~t ~bits p in
              assert (r.Workload.agreement);
              r.Workload.honest_bits)
        in
        (* The cubic baselines get prohibitively slow past 2^15; their trend
           is already unambiguous (skipped cells marked "-"). *)
        [ point "pi_z" Workload.pi_z; point "tc" (Workload.turpin_coan_ba ~bits) ]
        @ (if lg <= 15 then
             [
               point "hc" (Workload.high_cost_ca ~bits);
               point "bc" (Workload.broadcast_ca ~bits);
             ]
           else []))
      lgs
  in
  let results = Workload.run_cells ~domains:!domains grid in
  let json_rows = ref [] in
  List.iter
    (fun lg ->
      let get name = List.assoc (Printf.sprintf "2^%d/%s" lg name) results in
      let get_opt name =
        List.assoc_opt (Printf.sprintf "2^%d/%s" lg name) results
      in
      let ours = get "pi_z" and tc = get "tc" in
      let hc = get_opt "hc" and bc = get_opt "bc" in
      let cell = function Some b -> kbits b | None -> "-" in
      Printf.printf "2^%-6d | %18s | %18s | %18s | %18s\n" lg (kbits ours)
        (kbits tc) (cell hc) (cell bc);
      let opt = function Some b -> Bench_json.Int b | None -> Bench_json.Null in
      json_rows :=
        [
          ("log2_bits", Bench_json.Int lg);
          ("pi_z_bits", Bench_json.Int ours);
          ("tc_ba_bits", Bench_json.Int tc);
          ("high_cost_ca_bits", opt hc);
          ("broadcast_ca_bits", opt bc);
        ]
        :: !json_rows)
    lgs;
  write_json ~path:"BENCH_t1.json"
    ~meta:
      [
        ("experiment", Bench_json.Str "t1");
        ("n", Bench_json.Int n);
        ("t", Bench_json.Int t);
      ]
    ~rows:(List.rev !json_rows);
  Printf.printf
    "\n(per-l normalized: divide a column by l*n to see the leading coefficient flatten\n\
     for Pi_Z and grow for the baselines.)\n"

(* ------------------------------------------------------------------ *)
(* T2: honest bits vs n (ℓ fixed)                                      *)
(* ------------------------------------------------------------------ *)

let t2 () =
  let bits = 1 lsl 13 in
  header "T2  --  communication vs number of parties  (l = 2^13)"
    "Claim: for fixed large l, the l-dependent term of Pi_Z grows linearly in n while\n\
     the baselines grow at least quadratically (TC-BA) / cubically (the others).";
  Printf.printf "%-10s | %18s | %18s | %18s | %18s\n" "n (t)"
    "Pi_Z kbits" "TC-BA kbits" "HighCostCA kbits" "Broadcast-CA kbits";
  print_endline line;
  List.iter
    (fun n ->
      let t = (n - 1) / 3 in
      let row =
        List.map
          (fun p ->
            let r = run_protocol ~seed:(200 + n) ~n ~t ~bits p in
            assert (r.Workload.agreement);
            r.Workload.honest_bits)
          (comparators ~bits)
      in
      match row with
      | [ ours; tc; hc; bc ] ->
          Printf.printf "%-4d (%d)   | %18s | %18s | %18s | %18s\n" n t (kbits ours)
            (kbits tc) (kbits hc) (kbits bc)
      | _ -> assert false)
    (if !smoke then [ 4; 7 ] else [ 4; 7; 10; 13; 16; 19 ])

(* ------------------------------------------------------------------ *)
(* F1: crossover figure                                                *)
(* ------------------------------------------------------------------ *)

let f1 () =
  header "F1  --  crossover: baseline bits / Pi_Z bits as l grows"
    "Claim: Pi_Z's advantage appears once l = Omega(k * n * log^2 n) amortizes the\n\
     additive extension cost. Ratios > 1.0 mean Pi_Z wins. The crossover point\n\
     (first l with ratio >= 1) should move right as n grows.";
  List.iter
    (fun n ->
      let t = (n - 1) / 3 in
      Printf.printf "\n  n = %d (t = %d):\n" n t;
      Printf.printf "  %-8s | %14s | %20s | %14s\n" "l (bits)" "TC-BA / Pi_Z"
        "Broadcast-CA / Pi_Z" "Pi_Z kbits";
      Printf.printf "  %s\n" (String.make 66 '-');
      List.iter
        (fun lg ->
          let bits = 1 lsl lg in
          let measure p =
            (run_protocol ~seed:(300 + lg) ~n ~t ~bits p).Workload.honest_bits
          in
          let ours = measure Workload.pi_z in
          let tc = measure (Workload.turpin_coan_ba ~bits) in
          let r1 = float_of_int tc /. float_of_int ours in
          let bc_cell =
            if lg <= 15 then begin
              let bc = measure (Workload.broadcast_ca ~bits) in
              let r2 = float_of_int bc /. float_of_int ours in
              Printf.sprintf "%18.2fx%s" r2 (if r2 >= 1. then "*" else " ")
            end
            else Printf.sprintf "%19s" "-"
          in
          Printf.printf "  2^%-6d | %12.2fx%s | %s | %14s\n" lg r1
            (if r1 >= 1. then "*" else " ")
            bc_cell (kbits ours))
        (if !smoke then [ 7; 9 ] else [ 7; 9; 11; 13; 15; 17 ]))
    (if !smoke then [ 7 ] else [ 7; 13 ]);
  Printf.printf "\n  (* marks the regime where Pi_Z is cheaper.)\n"

(* ------------------------------------------------------------------ *)
(* T3: round complexity vs n                                           *)
(* ------------------------------------------------------------------ *)

let t3 () =
  let bits = 1 lsl 12 in
  header "T3  --  round complexity vs n  (l = 2^12)"
    "Claim: ROUNDS(Pi_Z) = O(n) + O(log n) * ROUNDS(Pi_BA) = O(n log n) with the\n\
     phase-king Pi_BA (3(t+1) rounds); HighCostCA is O(n); TC-BA is O(n).\n\
     Expect the Pi_Z / (n log2 n) column to stay roughly constant.";
  Printf.printf "%-10s | %12s | %12s | %12s | %14s\n" "n (t)" "Pi_Z" "HighCostCA"
    "TC-BA" "Pi_Z/(n lg n)";
  print_endline line;
  List.iter
    (fun n ->
      let t = (n - 1) / 3 in
      let rounds p =
        let corrupt = Workload.spread_corrupt ~n ~t in
        let inputs = standard_inputs ~seed:(400 + n) ~n ~bits in
        let r =
          Workload.run_int ~n ~t ~corrupt ~adversary:Adversary.passive ~inputs
            p.Workload.run
        in
        r.Workload.rounds
      in
      let ours = rounds Workload.pi_z in
      let hc = rounds (Workload.high_cost_ca ~bits) in
      let tc = rounds (Workload.turpin_coan_ba ~bits) in
      Printf.printf "%-4d (%d)   | %12d | %12d | %12d | %14.2f\n" n t ours hc tc
        (float_of_int ours /. (float_of_int n *. (log (float_of_int n) /. log 2.))))
    (if !smoke then [ 4; 7 ] else [ 4; 7; 10; 13; 16; 19 ])

(* ------------------------------------------------------------------ *)
(* T4: resilience matrix                                               *)
(* ------------------------------------------------------------------ *)

let t4 () =
  let n = 10 and t = 3 in
  header "T4  --  resilience  (n = 10, protocol t = 3; corruptions swept 0..4)"
    "Claim: Termination, Agreement and Convex Validity hold for any corruption count\n\
     <= t = floor((n-1)/3), for every adversary strategy and input attack. The 4-\n\
     corruption rows exceed the t < n/3 bound: failures there are expected (and the\n\
     Dolev-Reischuk-style impossibility says some strategy must break them).";
  (* Adversary *factories*: strategies carry PRNG state, so every grid cell
     instantiates a fresh adversary inside its thunk — cells are
     self-contained (a pure function of the grid point) and fan out over the
     domain pool. Earlier revisions shared instances across the sweep, which
     made rows depend on run order. *)
  let factories =
    [
      (fun () -> Adversary.passive);
      (fun () -> Adversary.silent);
      (fun () -> Adversary.crash ~after:40);
      (fun () -> Adversary.garbage ~seed:7);
      (fun () -> Adversary.equivocate ~seed:7);
      (fun () -> Adversary.bitflip ~seed:7);
      (fun () -> Adversary.delayer ());
      (* Protocol-aware attacks (lib/attacks), each aimed at one proof
         obligation — see test/test_attacks.ml. *)
      (fun () -> Attacks.vote_stuffer ~payload:(Sha256.digest "evil"));
      (fun () -> Attacks.tuple_forger ~seed:7);
      (fun () -> Attacks.window_fabricator);
      (fun () -> Attacks.prefix_saboteur);
      (fun () -> Attacks.rotating ~seed:7 ~payload:(Sha256.digest "evil"));
    ]
  in
  let factories =
    if !smoke then
      [ (fun () -> Adversary.passive); (fun () -> Adversary.equivocate ~seed:7) ]
    else factories
  in
  Printf.printf "%-6s %-14s %-16s %-8s %-8s %-8s\n" "corr." "adversary"
    "input attack" "term." "agree" "valid";
  print_endline line;
  let grid =
    List.concat_map
      (fun n_corrupt ->
        List.concat_map
          (fun mk_adversary ->
            List.map
              (fun attack ->
                Workload.cell
                  ~label:
                    (Printf.sprintf "%d/%s/%s" n_corrupt
                       (mk_adversary ()).Adversary.name
                       (Workload.input_attack_name attack))
                  (fun () ->
                    let adversary = mk_adversary () in
                    let rng = Prng.create (n_corrupt + 17) in
                    let corrupt = Array.make n false in
                    let placed = ref 0 in
                    while !placed < n_corrupt do
                      let i = Prng.int rng n in
                      if not corrupt.(i) then begin
                        corrupt.(i) <- true;
                        incr placed
                      end
                    done;
                    let inputs =
                      Workload.sensor_readings rng ~n ~base:(-1004) ~jitter:2
                    in
                    let inputs =
                      Workload.apply_input_attack attack ~corrupt inputs
                    in
                    let honest_inputs =
                      List.filteri
                        (fun i _ -> not corrupt.(i))
                        (Array.to_list inputs)
                    in
                    let term, agree, valid =
                      match
                        Sim.run ~max_rounds:4000 ~allow_excess_corruptions:true
                          ~n ~t ~corrupt ~adversary (fun ctx ->
                            Convex.agree_int ctx inputs.(ctx.Ctx.me))
                      with
                      | outcome -> (
                          match Sim.honest_outputs ~corrupt outcome with
                          | outputs ->
                              let agree =
                                match outputs with
                                | o :: r -> List.for_all (Bigint.equal o) r
                                | [] -> false
                              in
                              let valid =
                                List.for_all
                                  (fun o ->
                                    Convex.in_convex_hull ~inputs:honest_inputs o)
                                  outputs
                              in
                              (true, agree, valid)
                          | exception Failure _ -> (false, false, false))
                      | exception Sim.Round_limit_exceeded _ ->
                          (false, false, false)
                    in
                    ( n_corrupt,
                      adversary.Adversary.name,
                      Workload.input_attack_name attack,
                      term,
                      agree,
                      valid )))
              [
                Workload.Honest_inputs; Workload.Outlier_high;
                Workload.Split_extremes;
              ])
          factories)
      (if !smoke then [ 0; 3 ] else [ 0; 1; 3; 4 ])
  in
  List.iter
    (fun (_, (n_corrupt, name, attack, term, agree, valid)) ->
      let mark b = if b then "yes" else "NO" in
      Printf.printf "%-6d %-14s %-16s %-8s %-8s %-8s%s\n" n_corrupt name attack
        (mark term) (mark agree) (mark valid)
        (if n_corrupt > t && not (term && agree && valid) then
           "   (beyond t: allowed to fail)"
         else ""))
    (Workload.run_cells ~domains:!domains grid)

(* ------------------------------------------------------------------ *)
(* T5: component ablation                                              *)
(* ------------------------------------------------------------------ *)

let t5 () =
  let n = 13 and t = 4 in
  let bits = if !smoke then 1 lsl 10 else 1 lsl 14 in
  header "T5  --  per-component honest bits of one Pi_Z run  (n = 13, l = 2^14)"
    "Claim (Thm 1): Pi_lBA+ costs O(l*n + k*n^2*log n) + BITS(Pi_BA). The RS+Merkle\n\
     distribution (ext_distribute) carries the l*n term; the k-bit agreements\n\
     (pi_ba_plus / pi_ba) are l-independent — our phase-king Pi_BA makes them\n\
     O(k*n^3) instead of the paper's O(k*n^2) (substitution recorded in DESIGN.md).";
  let r = run_protocol ~seed:777 ~n ~t ~bits Workload.pi_z in
  let total = r.Workload.honest_bits in
  Printf.printf "%-22s | %14s | %8s\n" "component" "honest kbits" "share";
  print_endline line;
  List.iter
    (fun (label, b) ->
      Printf.printf "%-22s | %14s | %7.1f%%\n" label (kbits b)
        (100. *. float_of_int b /. float_of_int total))
    r.Workload.labels;
  Printf.printf "%-22s | %14s | %7.1f%%\n" "TOTAL" (kbits total) 100.;
  (* ext_distribute = the l*n codeword term plus the k*n^2*log n Merkle
     witness term, summed over the O(log n) FINDPREFIX iterations. *)
  Printf.printf "\nreference magnitudes: l*n = %s kbits; k*n^2*log2(n)*iters ~= %s kbits.\n"
    (kbits (bits * n))
    (kbits (256 * n * n * 4 * 8))

(* ------------------------------------------------------------------ *)
(* T6: bit-search vs block-search ablation                             *)
(* ------------------------------------------------------------------ *)

let t6 () =
  let n = 4 and t = 1 in
  header "T6  --  FIXEDLENGTHCA vs FIXEDLENGTHCABLOCKS  (n = 4, t = 1)"
    "Claim (Sec. 4): searching over n^2 blocks instead of bits cuts the number of\n\
     Pi_lBA+ invocations from O(log l) to O(log n) and hence the round count, at\n\
     equal O(l*n) leading communication.";
  Printf.printf "%-8s | %21s | %21s | %21s\n" "l (bits)" "iterations (bit/blk)"
    "rounds (bit/blk)" "kbits (bit/blk)";
  print_endline line;
  List.iter
    (fun bits ->
      let corrupt = Workload.spread_corrupt ~n ~t in
      let rng = Prng.create (bits + 1) in
      let inputs =
        Workload.clustered_bits rng ~n ~bits ~shared_prefix_bits:(bits / 2)
      in
      let fixed = Array.map (fun v -> Bigint.to_bitstring_fixed ~bits v) inputs in
      let iters run extract =
        let outcome =
          Sim.run ~n ~t ~corrupt ~adversary:Adversary.passive (fun ctx ->
              run ctx fixed.(ctx.Ctx.me))
        in
        List.fold_left max 0 (List.map extract (Sim.honest_outputs ~corrupt outcome))
      in
      let it_bit =
        iters
          (fun ctx v -> Convex.Find_prefix.run ctx ~bits v)
          (fun r -> r.Convex.Find_prefix.iterations)
      in
      let it_blk =
        iters
          (fun ctx v -> Convex.Find_prefix_blocks.run ctx ~bits v)
          (fun r -> r.Convex.Find_prefix_blocks.iterations)
      in
      let full run =
        let outcome =
          Sim.run ~n ~t ~corrupt ~adversary:Adversary.passive (fun ctx ->
              run ctx fixed.(ctx.Ctx.me))
        in
        (outcome.Sim.metrics.Metrics.rounds, outcome.Sim.metrics.Metrics.honest_bits)
      in
      let rounds_bit, bits_bit = full (fun ctx v -> Convex.agree_fixed_length ctx ~bits v) in
      let rounds_blk, bits_blk =
        full (fun ctx v -> Convex.agree_fixed_length_blocks ctx ~bits v)
      in
      Printf.printf "%-8d | %10d / %-8d | %10d / %-8d | %10s / %-8s\n" bits it_bit
        it_blk rounds_bit rounds_blk (kbits bits_bit) (kbits bits_blk))
    (if !smoke then [ 256 ] else [ 256; 1024; 4096; 16384 ])

(* ------------------------------------------------------------------ *)
(* T7: Π_BA+ property sweep                                            *)
(* ------------------------------------------------------------------ *)

let t7 () =
  let n = 10 and t = 3 in
  header "T7  --  Pi_BA+ Bounded Pre-Agreement sweep  (n = 10, t = 3)"
    "Claim (Thm 6): Pi_BA+ outputs bot only if fewer than n-2t = 4 honest parties\n\
     share an input; any non-bot output is an honest input (Intrusion Tolerance).\n\
     Sweep the number of honest parties sharing a value under three adversaries.";
  Printf.printf "%-10s | %-12s | %-26s | %s\n" "sharing" "adversary" "output"
    "intrusion-tolerant";
  print_endline line;
  List.iter
    (fun sharing ->
      List.iter
        (fun adversary ->
          let corrupt = Array.init n (fun i -> i >= n - t) in
          let inputs =
            Array.init n (fun i ->
                if i < sharing then "shared-digest" else Printf.sprintf "unique-%d" i)
          in
          let outcome =
            Sim.run ~n ~t ~corrupt ~adversary (fun ctx ->
                Baplus.Ba_plus.run ctx inputs.(ctx.Ctx.me))
          in
          let out = List.hd (Sim.honest_outputs ~corrupt outcome) in
          let honest_inputs =
            List.filteri (fun i _ -> not corrupt.(i)) (Array.to_list inputs)
          in
          let it =
            match out with
            | None -> true
            | Some v -> List.exists (String.equal v) honest_inputs
          in
          Printf.printf "%-10d | %-12s | %-26s | %b%s\n" sharing
            adversary.Adversary.name
            (match out with None -> "bot" | Some v -> v)
            it
            (if sharing >= n - (2 * t) && out = None then "   VIOLATION" else ""))
        [ Adversary.passive; Adversary.garbage ~seed:3; Adversary.equivocate ~seed:3 ])
    (if !smoke then [ 0; 4; 7 ] else [ 0; 2; 3; 4; 5; 7 ]);
  Printf.printf "\n(no row may say VIOLATION; rows with sharing >= 4 must be non-bot.)\n"

(* ------------------------------------------------------------------ *)
(* T8: the authenticated regime (t < n/2 with a PKI)                   *)
(* ------------------------------------------------------------------ *)

let t8 () =
  header "T8  --  authenticated setting: CA at t < n/2  (open problem regime)"
    "The paper's conclusion asks whether communication-optimal CA exists for t < n/2\n\
     with cryptographic setup. The classical answer (Dolev-Strong BC per input + trim,\n\
     lib/auth) tolerates up to n/2 corruptions but pays for it in signatures; Pi_Z\n\
     needs no setup but requires t < n/3. This table quantifies that trade.";
  Printf.printf "%-10s | %-22s | %14s | %8s | %8s\n" "n (t)" "protocol" "honest kbits"
    "rounds" "CA holds";
  print_endline line;
  List.iter
    (fun (n, t_auth) ->
      let bits = 64 in
      let rng = Prng.create (900 + n) in
      let mk_inputs corrupt =
        Array.map
          (fun v -> Workload.to_fixed ~bits v)
          (Workload.apply_input_attack Workload.Outlier_high ~corrupt
             (Workload.sensor_readings rng ~n ~base:500000 ~jitter:50))
      in
      (* Authenticated CA at t < n/2 — beyond any plain-model bound. *)
      let corrupt = Workload.spread_corrupt ~n ~t:t_auth in
      let inputs = mk_inputs corrupt in
      let setup = Auth.Setup.generate ~seed:(77 + n) ~n ~capacity:(4 * n) in
      let outcome =
        Sim.run ~setup:`Authenticated ~n ~t:t_auth ~corrupt
          ~adversary:(Adversary.equivocate ~seed:3) (fun ctx ->
            Auth.Auth_ca.run setup ctx ~bits inputs.(ctx.Ctx.me))
      in
      let outputs = Sim.honest_outputs ~corrupt outcome in
      let sorted =
        List.sort Bitstring.compare
          (List.filteri (fun i _ -> not corrupt.(i)) (Array.to_list inputs))
      in
      let lo = List.hd sorted and hi = List.nth sorted (List.length sorted - 1) in
      let holds =
        (match outputs with o :: r -> List.for_all (Bitstring.equal o) r | [] -> false)
        && List.for_all
             (fun o -> Bitstring.compare lo o <= 0 && Bitstring.compare o hi <= 0)
             outputs
      in
      Printf.printf "%-4d (%d)   | %-22s | %14s | %8d | %8b\n" n t_auth
        "Auth-CA (Dolev-Strong)"
        (kbits outcome.Sim.metrics.Metrics.honest_bits)
        outcome.Sim.metrics.Metrics.rounds holds;
      (* Pi_Z at its own bound t < n/3, same workload size. *)
      let t_plain = (n - 1) / 3 in
      let corrupt = Workload.spread_corrupt ~n ~t:t_plain in
      let inputs = mk_inputs corrupt in
      let outcome =
        Sim.run ~n ~t:t_plain ~corrupt ~adversary:(Adversary.equivocate ~seed:3)
          (fun ctx -> Convex.agree_nat ctx (Bigint.of_bitstring inputs.(ctx.Ctx.me)))
      in
      let ok =
        match Sim.honest_outputs ~corrupt outcome with
        | o :: r -> List.for_all (Bigint.equal o) r
        | [] -> false
      in
      Printf.printf "%-4d (%d)   | %-22s | %14s | %8d | %8b\n" n t_plain
        "Pi_Z (plain model)"
        (kbits outcome.Sim.metrics.Metrics.honest_bits)
        outcome.Sim.metrics.Metrics.rounds ok)
    (if !smoke then [ (4, 1) ] else [ (4, 1); (5, 2); (7, 3) ]);
  Printf.printf
    "\n(hash-based signatures are ~17 KB each; the signature term dominates Auth-CA —\n\
     the open problem is precisely whether the t < n/2 row can be made O(l*n)-cheap.)\n"

(* ------------------------------------------------------------------ *)
(* AUTH: the Pi_BA substrate seam — unauth t < n/3 vs auth t < n/2     *)
(* ------------------------------------------------------------------ *)

let auth_exp () =
  header
    "AUTH --  BA substrate backends: unauth (t < n/3) vs auth quorum BA (t < n/2)"
    "The Pi_BA seam admits two backends: the phase-king stack (plain model, t < n/3,\n\
     Pi_Z's default) and the authenticated quorum-certificate BA (XMSS PKI, t < n/2,\n\
     4t+7 rounds). At equal n, the auth backend buys maximal resilience with\n\
     signature bits; both rows must satisfy Definition 1 (agreement + convex\n\
     validity) to land in the ledger.";
  let bits = 32 in
  Printf.printf "%-10s | %-28s | %14s | %8s | %8s\n" "n (t)" "backend" "honest kbits"
    "rounds" "CA holds";
  print_endline line;
  let json_rows = ref [] in
  let row ~backend ~n ~t ~honest_bits ~rounds ~holds =
    Printf.printf "%-4d (%d)   | %-28s | %14s | %8d | %8b\n" n t backend
      (kbits honest_bits) rounds holds;
    json_rows :=
      [
        ("backend", Bench_json.Str backend);
        ("n", Bench_json.Int n);
        ("t", Bench_json.Int t);
        ("bits", Bench_json.Int bits);
        ("honest_bits", Bench_json.Int honest_bits);
        ("rounds", Bench_json.Int rounds);
        ("ca_holds", Bench_json.Bool holds);
      ]
      :: !json_rows
  in
  List.iter
    (fun n ->
      let rng = Prng.create (1100 + n) in
      let mk_inputs corrupt =
        Array.map
          (fun v -> Workload.to_fixed ~bits v)
          (Workload.apply_input_attack Workload.Outlier_high ~corrupt
             (Workload.sensor_readings rng ~n ~base:260000 ~jitter:40))
      in
      (* Unauth backend: the functorized default — Pi_Z at its t < n/3 bound. *)
      let t_plain = (n - 1) / 3 in
      let corrupt = Workload.spread_corrupt ~n ~t:t_plain in
      let inputs = mk_inputs corrupt in
      let report =
        Workload.run_int ~n ~t:t_plain ~corrupt
          ~adversary:(Adversary.equivocate ~seed:6)
          ~inputs:(Array.map Bigint.of_bitstring inputs)
          Workload.pi_z.Workload.run
      in
      row ~backend:"unauth" ~n ~t:t_plain ~honest_bits:report.Workload.honest_bits
        ~rounds:report.Workload.rounds
        ~holds:(report.Workload.agreement && report.Workload.convex_validity);
      (* Auth backend: native t < n/2 CA on the quorum-certificate BA. *)
      let t_auth = (n - 1) / 2 in
      let corrupt = Workload.spread_corrupt ~n ~t:t_auth in
      let inputs = mk_inputs corrupt in
      let setup =
        Auth.Setup.generate ~seed:(1200 + n) ~n
          ~capacity:(Auth.Auth_ba.required_capacity ~t:t_auth ~instances:n)
      in
      let xs = Auth.Auth_ba.of_setup setup in
      let outcome =
        Sim.run ~setup:`Authenticated ~n ~t:t_auth ~corrupt
          ~adversary:(Adversary.equivocate ~seed:6) (fun ctx ->
            Auth.Auth_ba.Xmss.agree xs ctx ~bits inputs.(ctx.Ctx.me))
      in
      let outputs = Sim.honest_outputs ~corrupt outcome in
      let honest_inputs =
        List.filteri (fun i _ -> not corrupt.(i)) (Array.to_list inputs)
      in
      let sorted = List.sort Bitstring.compare honest_inputs in
      let lo = List.hd sorted and hi = List.nth sorted (List.length sorted - 1) in
      let holds =
        (match outputs with
        | o :: r -> List.for_all (Bitstring.equal o) r
        | [] -> false)
        && List.for_all
             (fun o -> Bitstring.compare lo o <= 0 && Bitstring.compare o hi <= 0)
             outputs
      in
      row ~backend:"auth" ~n ~t:t_auth
        ~honest_bits:outcome.Sim.metrics.Metrics.honest_bits
        ~rounds:outcome.Sim.metrics.Metrics.rounds ~holds)
    (if !smoke then [ 4 ] else [ 4; 5; 7 ]);
  write_json ~path:"BENCH_auth.json"
    ~meta:
      [ ("experiment", Bench_json.Str "auth"); ("bits", Bench_json.Int bits) ]
    ~rows:(List.rev !json_rows);
  Printf.printf
    "\n(each XMSS signature is ~17 KB and a quorum certificate carries n-t of them;\n\
     the auth rows trade exactly that bit volume for resilience past n/3.)\n"

(* ------------------------------------------------------------------ *)
(* ADAPTIVE: the fault-adaptive fast path — cost vs actual faults f    *)
(* ------------------------------------------------------------------ *)

let adaptive_exp () =
  header
    "ADAPTIVE --  fault-adaptive fast path: communication vs actual corruptions f"
    "Every protocol above pays its worst-case Theta(t)-driven cost even when nobody\n\
     misbehaves. The adaptive layer (lib/adaptive) puts a 4-round optimistic preamble\n\
     + one bit-BA arbitration in front of Pi_Z: at f = 0 it terminates in\n\
     O(n*l + n^2*k) bits; any active corruption can veto the certificate, after which\n\
     the full stack runs and the preamble is pure overhead. Gates: the f = 0 row must\n\
     be >= 5x below the matching Pi_Z cost (the BENCH_t1 lg13 row), and the f = t row\n\
     within 1.5x of it.";
  let json_rows = ref [] in
  let row ~backend ~f ~n ~t ~bits ~(report : Workload.report) ~fast ~model =
    let holds = report.Workload.agreement && report.Workload.convex_validity in
    if not holds then
      failwith
        (Printf.sprintf "ADAPTIVE: %s violates Definition 1 at f=%d" backend f);
    Printf.printf "%-16s | %2d (of %d) | %14s | %8d | %9s\n" backend f t
      (kbits report.Workload.honest_bits)
      report.Workload.rounds
      (match fast with Some true -> "fast" | Some false -> "fallback" | None -> "-");
    json_rows :=
      [
        ("backend", Bench_json.Str backend);
        ("f", Bench_json.Int f);
        ("n", Bench_json.Int n);
        ("t", Bench_json.Int t);
        ("bits", Bench_json.Int bits);
        ("honest_bits", Bench_json.Int report.Workload.honest_bits);
        ("byz_bits", Bench_json.Int report.Workload.byz_bits);
        ("rounds", Bench_json.Int report.Workload.rounds);
        ( "fast_path",
          match fast with Some b -> Bench_json.Bool b | None -> Bench_json.Null );
        ( "model_bits",
          match model with
          | Some c -> Bench_json.Int c.Ba.Substrate.c_bits
          | None -> Bench_json.Null );
        ( "model_rounds",
          match model with
          | Some c -> Bench_json.Int c.Ba.Substrate.c_rounds
          | None -> Bench_json.Null );
        ("ca_holds", Bench_json.Bool holds);
      ]
      :: !json_rows;
    report.Workload.honest_bits
  in
  Printf.printf "%-16s | %-9s | %14s | %8s | %9s\n" "backend" "f" "honest kbits"
    "rounds" "path";
  print_endline line;
  (* Plain backend at the T1 grid point (n = 13, t = 4, l = 2^13) but on the
     uniform workload: the preamble orders candidates by a 128-bit truncated
     key, so the fast path engages when honest inputs differ within their
     top 128 bits (sensors, prices, timestamps, uniform values) and safely
     falls back on the synthetic clustered workload, whose values share the
     whole top half. The pi_z rows are measured on the identical inputs, so
     the gates compare like with like at the BENCH_t1 lg13 scale. *)
  let n = if !smoke then 7 else 13 in
  let t = if !smoke then 2 else 4 in
  let bits = if !smoke then 1 lsl 9 else 1 lsl 13 in
  let unauth = (module Ba.Substrate.Unauthenticated : Ba.Substrate.S) in
  let sweep_f ~f runner =
    let corrupt = Workload.spread_corrupt ~n ~t:f in
    let rng = Prng.create 113 in
    let inputs =
      Workload.apply_input_attack Workload.Outlier_high ~corrupt
        (Workload.uniform_bits rng ~n ~bits)
    in
    runner ~corrupt ~inputs
  in
  let fs = if !smoke then [ 0; t ] else List.init (t + 1) Fun.id in
  let plain =
    List.map
      (fun f ->
        sweep_f ~f (fun ~corrupt ~inputs ->
            let run p =
              Workload.run_int ~n ~t ~corrupt
                ~adversary:(Adversary.equivocate ~seed:5) ~inputs p
            in
            let pz = run Workload.pi_z.Workload.run in
            let pz_bits =
              row ~backend:"pi_z" ~f ~n ~t ~bits ~report:pz ~fast:None ~model:None
            in
            let stats = Array.init n (fun _ -> Adaptive.stats ()) in
            let ad =
              run
                (Workload.pi_z_adaptive ~stats_of:(fun me -> stats.(me)) ())
                  .Workload.run
            in
            (* All honest parties take the agreed branch; read any one. *)
            let honest =
              Array.to_list stats
              |> List.filteri (fun i _ -> not corrupt.(i))
              |> List.hd
            in
            let fast = honest.Adaptive.fast_taken = 1 in
            if fast <> (f = 0) then
              failwith
                (Printf.sprintf
                   "ADAPTIVE: expected %s at f=%d under equivocation, got %s"
                   (if f = 0 then "fast path" else "fallback")
                   f
                   (if fast then "fast path" else "fallback"));
            let model =
              Adaptive.wrapper_cost
                (Ctx.make ~me:0 ~n ~t)
                ~value_bits:bits ~fallback:unauth ~f
            in
            let ad_bits =
              row ~backend:"adaptive" ~f ~n ~t ~bits ~report:ad
                ~fast:(Some fast) ~model:(Some model)
            in
            (f, pz_bits, ad_bits)))
      fs
  in
  (* The authenticated fallback at its own (smaller) reference point: XMSS
     signatures make each fallback run ~2 Gbit, so the auth sweep stays at
     the BENCH_auth scale. The f-shape is the point, not the n. *)
  let an = if !smoke then 4 else 7 in
  let at = if !smoke then 1 else 2 in
  let abits = if !smoke then 1 lsl 7 else 1 lsl 10 in
  let afs = if !smoke then [ 0 ] else List.init (at + 1) Fun.id in
  List.iter
    (fun f ->
      let corrupt = Workload.spread_corrupt ~n:an ~t:f in
      let rng = Prng.create 113 in
      let inputs =
        Workload.apply_input_attack Workload.Outlier_high ~corrupt
          (Workload.uniform_bits rng ~n:an ~bits:abits)
      in
      let stats = Array.init an (fun _ -> Adaptive.stats ()) in
      let setup =
        Auth.Setup.generate ~seed:(1900 + f) ~n:an
          ~capacity:(Auth.Auth_ba.required_capacity ~t:at ~instances:64)
      in
      let ad =
        Workload.run_int ~setup:`Authenticated ~n:an ~t:at ~corrupt
          ~adversary:(Adversary.equivocate ~seed:5) ~inputs
          (Workload.pi_z_adaptive_auth ~stats_of:(fun me -> stats.(me)) setup)
            .Workload.run
      in
      let honest =
        Array.to_list stats
        |> List.filteri (fun i _ -> not corrupt.(i))
        |> List.hd
      in
      ignore
        (row ~backend:"adaptive-auth" ~f ~n:an ~t:at ~bits:abits ~report:ad
           ~fast:(Some (honest.Adaptive.fast_taken = 1))
           ~model:None))
    afs;
  (* The two gates, against the measured pi_z rows (the f = t one coincides
     with the committed BENCH_t1 lg13 row by construction). *)
  if not !smoke then begin
    let _, pz_t, ad_t = List.nth plain t in
    let _, _, ad_0 = List.hd plain in
    if 5 * ad_0 > pz_t then
      failwith
        (Printf.sprintf
           "ADAPTIVE gate: f=0 fast path (%d bits) not >=5x below Pi_Z (%d bits)"
           ad_0 pz_t);
    if 2 * ad_t > 3 * pz_t then
      failwith
        (Printf.sprintf
           "ADAPTIVE gate: f=t cost (%d bits) above 1.5x Pi_Z (%d bits)" ad_t
           pz_t);
    Printf.printf
      "\ngates: f=0 %.1fx below Pi_Z (>= 5x required); f=t %.2fx of Pi_Z (<= 1.5x allowed)\n"
      (float_of_int pz_t /. float_of_int ad_0)
      (float_of_int ad_t /. float_of_int pz_t)
  end;
  write_json ~path:"BENCH_adaptive.json"
    ~meta:
      [
        ("experiment", Bench_json.Str "adaptive");
        ("n", Bench_json.Int n);
        ("t", Bench_json.Int t);
        ("bits", Bench_json.Int bits);
      ]
    ~rows:(List.rev !json_rows);
  Printf.printf
    "\n(the adaptive f=0 row is the preamble + one bit-BA; every f > 0 row is the\n\
     full Pi_Z cost plus that constant preamble — cost tracks f, not t.)\n"

(* ------------------------------------------------------------------ *)
(* T9: parallel composition economics                                  *)
(* ------------------------------------------------------------------ *)

let t9 () =
  let bits = 256 in
  header "T9  --  parallel protocol composition (Net.Proto.parallel)"
    "Independent sub-protocol instances (the n broadcasts of Broadcast-CA) can be\n\
     round-multiplexed: rounds become max instead of sum of the branches', outputs\n\
     are bit-identical, and the byte overhead is only the multiplex framing.";
  Printf.printf "%-10s | %17s | %17s | %14s | %10s\n" "n (t)" "rounds seq/par"
    "kbits seq/par" "same output" "speedup";
  print_endline line;
  List.iter
    (fun n ->
      let t = (n - 1) / 3 in
      let corrupt = Workload.spread_corrupt ~n ~t in
      let inputs = standard_inputs ~seed:(700 + n) ~n ~bits in
      let measure (p : Workload.protocol) =
        let r =
          Workload.run_int ~n ~t ~corrupt ~adversary:(Adversary.equivocate ~seed:3)
            ~inputs p.Workload.run
        in
        (r.Workload.rounds, r.Workload.honest_bits, r.Workload.outputs)
      in
      let sr, sb, so = measure (Workload.broadcast_ca ~bits) in
      let pr, pb, po = measure (Workload.broadcast_ca_parallel ~bits) in
      Printf.printf "%-4d (%d)   | %7d / %-7d | %8s / %-8s | %14b | %9.1fx\n" n t sr
        pr (kbits sb) (kbits pb)
        (List.for_all2 Bigint.equal so po)
        (float_of_int sr /. float_of_int pr))
    (if !smoke then [ 4 ] else [ 4; 7; 10; 13 ])

(* ------------------------------------------------------------------ *)
(* A1: asynchronous substrate (t < n/5)                                *)
(* ------------------------------------------------------------------ *)

let a1 () =
  header "A1  --  asynchronous approximate agreement, t < n/5  (conclusion's regime)"
    "The conclusion expects the techniques to extend to asynchrony at t < n/5. Exact\n\
     CA is impossible there deterministically (FLP), so the asynchronous library\n\
     provides AA (lib/anet): this table shows geometric convergence of the honest\n\
     diameter under adversarial schedulers, with validity intact.";
  let n = 6 and t = 1 and bits = 24 in
  let corrupt = Array.init n (fun i -> i = 3) in
  let spread0 = 1 lsl 16 in
  let base = 4_000_000 in
  let inputs =
    Array.init n (fun i ->
        if corrupt.(i) then Bitstring.ones bits
        else Bitstring.of_int_fixed ~bits (base + (i * spread0 / n)))
  in
  (* The strongest AA adversary: stay in the honest range but show the low
     end to half the parties and the high end to the other half, every
     round — keeps the honest estimates apart as long as possible. *)
  let two_faced =
    {
      Anet.Async_sim.byz_name = "two-faced";
      rewrite =
        (fun ~src:_ ~dst m ->
          match Anet.Async_aa.decode ~bits m with
          | Some (round, _) ->
              let v = if dst land 1 = 0 then base else base + spread0 in
              Some (Anet.Async_aa.encode ~round (Bitstring.of_int_fixed ~bits v))
          | None -> Some m);
    }
  in
  Printf.printf "%-18s | %10s | %12s | %12s | %10s\n" "scheduler" "rounds"
    "diameter" "contraction" "deliveries";
  print_endline line;
  List.iter
    (fun scheduler ->
      List.iter
        (fun rounds ->
          let outcome =
            Anet.Async_sim.run ~n ~t ~corrupt ~scheduler ~seed:5
              ~byzantine:two_faced (fun ctx ->
                Anet.Async_aa.run ctx ~bits ~rounds inputs.(ctx.Net.Ctx.me))
          in
          let outs =
            List.map Bitstring.to_int
              (Anet.Async_sim.honest_outputs ~corrupt outcome)
          in
          let lo = List.fold_left min (List.hd outs) outs in
          let hi = List.fold_left max (List.hd outs) outs in
          Printf.printf "%-18s | %10d | %12d | %11.0fx | %10d\n"
            scheduler.Anet.Async_sim.sched_name rounds (hi - lo)
            (if hi > lo then float_of_int spread0 /. float_of_int (hi - lo)
             else infinity)
            outcome.Anet.Async_sim.metrics.Anet.Async_sim.delivered)
        (if !smoke then [ 2 ] else [ 2; 6; 10 ]))
    [ Anet.Async_sim.fifo; Anet.Async_sim.lifo; Anet.Async_sim.random ]

(* ------------------------------------------------------------------ *)
(* ENGINE: session-multiplexing throughput                             *)
(* ------------------------------------------------------------------ *)

let engine_bench () =
  let n = 7 and t = 2 in
  header "ENGINE  --  session-multiplexing throughput  (n = 7, t = 2, Pi_Z / 64-bit inputs)"
    "The engine runs K concurrent Pi_Z sessions over one transport, coalescing every\n\
     pair's per-round traffic into a single frame. Per-session cost (honest bits,\n\
     rounds) is invariant in K — sessions are bit-identical to sequential runs —\n\
     while transport frames are shared: frames-saved grows ~linearly in K and the\n\
     engine amortizes the per-frame cost the way a high-traffic oracle deployment\n\
     must. The unix row drives the same 64 sessions over the thread-per-party\n\
     socket mesh; the poll rows scale K into the thousands through the\n\
     single-process event loop (nonblocking sockets, one select, zero threads).";
  let session_inputs k =
    let rng = Prng.create (8100 + k) in
    Workload.clustered_bits rng ~n ~bits:64 ~shared_prefix_bits:32
  in
  let mk_spec ?(adversarial = true) k =
    let inputs = session_inputs k in
    let inputs =
      if adversarial then
        Workload.apply_input_attack Workload.Outlier_high
          ~corrupt:(Workload.spread_corrupt ~n ~t) inputs
      else inputs
    in
    let adversary =
      if adversarial then Adversary.equivocate ~seed:(8200 + k)
      else Adversary.passive
    in
    Engine.session ~sid:k ~adversary (fun ctx ->
        Convex.agree_int ctx inputs.(ctx.Ctx.me))
  in
  Printf.printf "%-12s | %8s | %8s | %10s | %12s | %10s | %10s | %8s | %9s | %7s\n"
    "backend (K)" "rounds" "wall s" "sess/s" "kbits/sess" "frames" "saved"
    "frame-kB" "gc-kw/s" "rss-MB";
  print_endline line;
  (* One timed run: wall clock plus the minor words it allocated — the `gc`
     column (minor words per session) is the allocation-discipline gate the
     hot-path work is held to, alongside throughput. *)
  let timed f =
    let t0 = Unix.gettimeofday () in
    let m0 = Gc.minor_words () in
    let r = f () in
    let words = Gc.minor_words () -. m0 in
    (r, Unix.gettimeofday () -. t0, words)
  in
  let json_rows = ref [] in
  let report backend k (outcome : Bigint.t Engine.outcome) wall words =
    let agg = outcome.Engine.aggregate in
    let per_session =
      float_of_int agg.Engine.honest_bits_total /. float_of_int k /. 1000.
    in
    let gc = words /. float_of_int k in
    (* Peak RSS so far (VmHWM): rows run in ascending K per backend, so the
       column reads as "the footprint K sessions needed". *)
    let rss = Option.value (Net_poll.rss_peak_bytes ()) ~default:0 in
    Printf.printf
      "%-12s | %8d | %8.3f | %10.1f | %12.1f | %10d | %10d | %8.1f | %9.1f | %7.1f\n"
      (Printf.sprintf "%s (%d)" backend k)
      agg.Engine.engine_rounds wall
      (float_of_int k /. wall)
      per_session agg.Engine.frames_sent agg.Engine.frames_saved
      (float_of_int agg.Engine.frame_bytes /. 1000.)
      (gc /. 1000.)
      (float_of_int rss /. (1024. *. 1024.));
    json_rows :=
      [
        ("backend", Bench_json.Str backend);
        ("sessions", Bench_json.Int k);
        ("engine_rounds", Bench_json.Int agg.Engine.engine_rounds);
        ("wall_s", Bench_json.Float wall);
        ("sessions_per_s", Bench_json.Float (float_of_int k /. wall));
        ("honest_bits_per_session",
         Bench_json.Float (float_of_int agg.Engine.honest_bits_total /. float_of_int k));
        ("frames_sent", Bench_json.Int agg.Engine.frames_sent);
        ("naive_frames", Bench_json.Int agg.Engine.naive_frames);
        ("frames_saved", Bench_json.Int agg.Engine.frames_saved);
        ("frame_bytes", Bench_json.Int agg.Engine.frame_bytes);
        ("payload_bytes", Bench_json.Int agg.Engine.payload_bytes);
        ("peak_live", Bench_json.Int agg.Engine.peak_live);
        ("gc", Bench_json.Float gc);
        ("rss_bytes", Bench_json.Int rss);
      ]
      :: !json_rows
  in
  List.iter
    (fun k ->
      let specs = List.init k mk_spec in
      let corrupt = Workload.spread_corrupt ~n ~t in
      let outcome, wall, words =
        timed (fun () -> Engine.run_sim ~n ~t ~corrupt specs)
      in
      assert (outcome.Engine.aggregate.Engine.sessions_completed = k);
      if k > 1 then assert (outcome.Engine.aggregate.Engine.frames_saved > 0);
      report "sim" k outcome wall words)
    (if !smoke then [ 1; 4 ] else [ 1; 4; 16; 64 ]);
  (* The same K sessions over the socket mesh (honest: byzantine behaviour
     is a simulator concern) AND through the simulator, so the two transport
     ledgers can be compared entry for entry on an identical workload. The
     adversarial sim rows above run a *different* workload (outlier inputs,
     equivocation => different per-session round counts), which is why their
     naive_frames column legitimately differs from the unix row's; on equal
     workloads the ledgers must agree exactly, asserted here. *)
  let k = if !smoke then 8 else 64 in
  let specs = List.init k (mk_spec ~adversarial:false) in
  let sim_honest, wall_sim, words_sim =
    timed (fun () -> Engine.run_sim ~n ~t ~corrupt:(Array.make n false) specs)
  in
  report "sim-honest" k sim_honest wall_sim words_sim;
  let outcome, wall, words = timed (fun () -> Engine.run_unix ~t ~n specs) in
  assert (outcome.Engine.aggregate.Engine.frames_saved > 0);
  let a = sim_honest.Engine.aggregate and b = outcome.Engine.aggregate in
  assert (a.Engine.engine_rounds = b.Engine.engine_rounds);
  assert (a.Engine.frames_sent = b.Engine.frames_sent);
  assert (a.Engine.naive_frames = b.Engine.naive_frames);
  assert (a.Engine.frame_bytes = b.Engine.frame_bytes);
  assert (a.Engine.payload_bytes = b.Engine.payload_bytes);
  report "unix" k outcome wall words;
  (* Scale-out rows: the poll backend drives K into the thousands in one
     process — nonblocking sockets, a single select loop, zero threads.
     Honest workload so rows are comparable across K; ascending K keeps the
     peak-RSS column meaningful per row. At the smallest K the identical
     workload replays in the simulator and the full ledgers must agree —
     the bench-level check that the wire moved exactly the simulator's
     bytes. *)
  let poll_ks = if !smoke then [ 8 ] else [ 256; 1024; 4096 ] in
  let poll_top_rate = ref nan and poll_top_gc = ref nan in
  List.iter
    (fun k ->
      let specs = List.init k (mk_spec ~adversarial:false) in
      let outcome, wall, words =
        timed (fun () -> Engine.run_poll ~t ~n ~corrupt:(Array.make n false) specs)
      in
      assert (outcome.Engine.aggregate.Engine.sessions_completed = k);
      assert (outcome.Engine.aggregate.Engine.frames_saved > 0);
      if k = List.hd poll_ks then begin
        let sim = Engine.run_sim ~n ~t ~corrupt:(Array.make n false) specs in
        let a = sim.Engine.aggregate and b = outcome.Engine.aggregate in
        assert (a.Engine.engine_rounds = b.Engine.engine_rounds);
        assert (a.Engine.frames_sent = b.Engine.frames_sent);
        assert (a.Engine.naive_frames = b.Engine.naive_frames);
        assert (a.Engine.frame_bytes = b.Engine.frame_bytes);
        assert (a.Engine.payload_bytes = b.Engine.payload_bytes)
      end;
      if k = 4096 then begin
        poll_top_rate := float_of_int k /. wall;
        poll_top_gc := words /. float_of_int k
      end;
      report "poll" k outcome wall words)
    poll_ks;
  (* The gc column is part of the ledger row shape (validate_bench enforces
     it on the committed file); assert it here too so even a smoke run fails
     fast if a row is built without it. *)
  List.iter
    (fun row ->
      if not (List.mem_assoc "gc" row) then
        failwith "engine: a bench row is missing the gc column")
    !json_rows;
  write_json ~path:"BENCH_engine.json"
    ~meta:
      [
        ("experiment", Bench_json.Str "engine");
        ("n", Bench_json.Int n);
        ("t", Bench_json.Int t);
        ("protocol", Bench_json.Str "pi-z");
        ("input_bits", Bench_json.Int 64);
      ]
    ~rows:(List.rev !json_rows);
  (* Acceptance gates (full runs only; smoke parameters are too small to be
     meaningful). The hot-path overhaul is held to the pre-overhaul poll
     K=4096 row: throughput must be >= 1.3x the committed baseline, and minor
     allocation per session must stay under a fixed ceiling set just above
     the post-overhaul measurement (allocation counts are deterministic, so
     the 5% headroom only covers stdlib/runtime drift, not noise).

     The overhaul targeted a 5x cut from the 1,552,000-words/session
     pre-overhaul baseline (ceiling 310,400); the shipped result is 3.74x
     (414,760 at K=4096). The remaining floor is protocol-intrinsic, not
     engine overhead: decoded payload strings the protocols must own
     (codewords, proposals), the Reed-Solomon/Merkle authentication work of
     Pi_lBA+, and the closure spine of the free-monad protocol layer.
     Removing those would mean zero-copy payload views or a codensity-style
     monad — tracked in ROADMAP, out of scope for the overhaul. The gate
     therefore pins the achieved level so regressions fail loudly. *)
  if not !smoke then begin
    let baseline_rate = 91.9284 in
    (* sessions/s, BENCH_engine.json @ bb0aed7 *)
    let gc_ceiling = 435_000.0 in
    (* minor words/session: measured 414,760 at K=4096 post-overhaul
       (pre-overhaul tree: 1,552,000, same host, same instrumentation) *)
    if Float.is_nan !poll_top_rate then
      failwith "engine: poll K=4096 row missing (gate input)";
    if !poll_top_rate < 1.3 *. baseline_rate then
      failwith
        (Printf.sprintf
           "engine: poll K=4096 throughput %.1f sessions/s < 1.3x baseline %.1f"
           !poll_top_rate baseline_rate);
    if !poll_top_gc > gc_ceiling then
      failwith
        (Printf.sprintf
           "engine: poll K=4096 allocation %.0f minor words/session > ceiling \
            %.0f" !poll_top_gc gc_ceiling)
  end;
  Printf.printf
    "\n(kbits/sess is flat in K — multiplexing never inflates a session's own cost;\n\
     'saved' counts frames a frame-per-session transport would have sent extra.\n\
     The sim-honest and unix rows run the identical honest workload: their full\n\
     ledgers — engine rounds, frames, naive frames, frame/payload bytes — are\n\
     asserted equal above and in test_engine. The adversarial sim rows differ in\n\
     naive_frames only because equivocation + outlier inputs change per-session\n\
     round counts, i.e. it is a workload difference, not a ledger bug. The poll\n\
     rows move every frame through nonblocking sockets in one process; their\n\
     smallest K is ledger-asserted against the simulator on the same workload,\n\
     and rss-MB is the process's peak resident set after the row.)\n"

(* ------------------------------------------------------------------ *)
(* B1: bechamel wall-clock micro-benchmarks                            *)
(* ------------------------------------------------------------------ *)

let b1 () =
  header "B1  --  substrate wall-clock micro-benchmarks (bechamel, OLS ns/run)"
    "Engineering table: throughput of the from-scratch substrates and of small\n\
     end-to-end protocol runs inside the simulator.";
  let open Bechamel in
  let payload = String.init 4096 (fun i -> Char.chr (i land 0xff)) in
  let leaves = Array.init 16 (fun i -> Printf.sprintf "leaf-%d-payload" i) in
  let tree = Merkle.build leaves in
  let w5 = Merkle.witness tree 5 in
  let root = Merkle.root tree in
  let big_a = Bigint.pred (Bigint.pow2 1024) in
  let big_b = Bigint.add (Bigint.pow2 1023) (Bigint.of_int 12345) in
  let codewords = Reed_solomon.encode ~n:13 ~k:9 payload in
  let shares = List.init 9 (fun i -> (12 - i, codewords.(12 - i))) in
  let run_sim ~n ~t proto =
    let corrupt = Workload.spread_corrupt ~n ~t in
    fun () ->
      ignore
        (Sim.run ~n ~t ~corrupt ~adversary:Adversary.passive (fun ctx ->
             proto ctx ctx.Ctx.me))
  in
  let tests =
    Test.make_grouped ~name:"substrates"
      [
        Test.make ~name:"sha256/4KiB" (Staged.stage (fun () -> ignore (Sha256.digest payload)));
        Test.make ~name:"merkle/build16" (Staged.stage (fun () -> ignore (Merkle.build leaves)));
        Test.make ~name:"merkle/verify"
          (Staged.stage (fun () ->
               ignore (Merkle.verify ~root ~index:5 ~value:leaves.(5) w5)));
        Test.make ~name:"rs/encode(13,9)/4KiB"
          (Staged.stage (fun () -> ignore (Reed_solomon.encode ~n:13 ~k:9 payload)));
        Test.make ~name:"rs/decode(13,9)/4KiB"
          (Staged.stage (fun () -> ignore (Reed_solomon.decode ~n:13 ~k:9 shares)));
        Test.make ~name:"bigint/mul-1024b"
          (Staged.stage (fun () -> ignore (Bigint.mul big_a big_b)));
        Test.make ~name:"bigint/divmod-1024b"
          (Staged.stage (fun () -> ignore (Bigint.divmod big_a big_b)));
        Test.make ~name:"ba/phase-king-n4"
          (Staged.stage
             (run_sim ~n:4 ~t:1 (fun ctx me ->
                  Ba.Phase_king.run_bytes ctx (Printf.sprintf "v%d" me))));
        Test.make ~name:"ca/pi_z-n4-small"
          (Staged.stage
             (run_sim ~n:4 ~t:1 (fun ctx me -> Convex.agree_int ctx (Bigint.of_int (1000 + me)))));
      ]
  in
  let cfg =
    if !smoke then Benchmark.cfg ~limit:50 ~quota:(Time.second 0.05) ~kde:None ()
    else Benchmark.cfg ~limit:500 ~quota:(Time.second 0.4) ~kde:None ()
  in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  Printf.printf "%-34s | %16s | %8s\n" "benchmark" "time/run" "r^2";
  print_endline line;
  List.iter
    (fun (name, result) ->
      let est =
        match Analyze.OLS.estimates result with Some (e :: _) -> e | _ -> nan
      in
      let pretty =
        if est > 1e9 then Printf.sprintf "%8.2f s " (est /. 1e9)
        else if est > 1e6 then Printf.sprintf "%8.2f ms" (est /. 1e6)
        else if est > 1e3 then Printf.sprintf "%8.2f us" (est /. 1e3)
        else Printf.sprintf "%8.2f ns" est
      in
      Printf.printf "%-34s | %16s | %8s\n" name pretty
        (match Analyze.OLS.r_square result with
        | Some r -> Printf.sprintf "%.3f" r
        | None -> "-"))
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* SUBSTRATE: coding/hashing kernel throughput + allocation            *)
(* ------------------------------------------------------------------ *)

(* The seed Merkle build, reimplemented locally as the "before" baseline:
   per-node string concatenation ("\x01" ^ l ^ r) and one digest allocation
   per node. Root-identical to Merkle.build (the differential tests prove
   it); only the constant factors differ. *)
let merkle_ref_root values =
  let hash_leaf v = Sha256.digest ("\x00" ^ v) in
  let hash_node l r = Sha256.digest ("\x01" ^ l ^ r) in
  let empty_leaf = Sha256.digest "\x02" in
  let leaves = Array.length values in
  let padded =
    let rec go p = if p >= leaves then p else go (2 * p) in
    go 1
  in
  let level =
    ref
      (Array.init padded (fun i ->
           if i < leaves then hash_leaf values.(i) else empty_leaf))
  in
  while Array.length !level > 1 do
    level :=
      Array.init
        (Array.length !level / 2)
        (fun i -> hash_node !level.(2 * i) !level.((2 * i) + 1))
  done;
  !level.(0)

let substrate () =
  header "SUBSTRATE  --  RS / Merkle / SHA-256 kernel throughput and allocation"
    "Engineering table (no paper claim): the dispersal substrate dominates wall-clock\n\
     once inputs reach megabits (BENCH_t1) and sessions multiply (BENCH_engine). Each\n\
     row times the matrix-form / allocation-free kernel against the seed reference\n\
     path on identical inputs (outputs are bit-identical — see the differential\n\
     tests); 'mwords/op' is Gc minor words allocated per operation.";
  let measure f =
    (* Warm up (and populate codec memos), then time in whole-run batches. *)
    ignore (Sys.opaque_identity (f ()));
    let min_time = if !smoke then 0.02 else 0.4 in
    let t0 = Unix.gettimeofday () in
    let m0 = Gc.minor_words () in
    let reps = ref 0 in
    let elapsed = ref 0.0 in
    while !elapsed < min_time do
      ignore (Sys.opaque_identity (f ()));
      incr reps;
      elapsed := Unix.gettimeofday () -. t0
    done;
    let words = (Gc.minor_words () -. m0) /. float_of_int !reps in
    (float_of_int !reps /. !elapsed, words)
  in
  let mib = 1024. *. 1024. in
  let json_rows = ref [] in
  let emit ~op ~n ~k ~bytes ~unit ~fast ~ref_ops =
    let ops, words = fast and ref_ops, ref_words = ref_ops in
    let speedup = ops /. ref_ops in
    let rate o =
      match unit with
      | `MBs -> Printf.sprintf "%8.1f MB/s" (o *. float_of_int bytes /. mib)
      | `Ops -> Printf.sprintf "%8.0f op/s" o
    in
    Printf.printf "%-26s | %14s | %14s | %8.1fx | %10.0f | %10.0f\n"
      (Printf.sprintf "%s(%d,%d)/%dKiB" op n k (bytes / 1024))
      (rate ops) (rate ref_ops) speedup words ref_words;
    json_rows :=
      [
        ("op", Bench_json.Str op);
        ("n", Bench_json.Int n);
        ("k", Bench_json.Int k);
        ("msg_bytes", Bench_json.Int bytes);
        ("ops_per_s", Bench_json.Float ops);
        ("mb_per_s", Bench_json.Float (ops *. float_of_int bytes /. mib));
        ("ref_ops_per_s", Bench_json.Float ref_ops);
        ("speedup_vs_ref", Bench_json.Float speedup);
        ("minor_words_per_op", Bench_json.Float words);
        ("ref_minor_words_per_op", Bench_json.Float ref_words);
      ]
      :: !json_rows
  in
  Printf.printf "%-26s | %14s | %14s | %9s | %10s | %10s\n" "kernel" "fast"
    "reference" "speedup" "mwords/op" "ref mw/op";
  print_endline line;
  let msg_bytes = if !smoke then 4096 else 65536 in
  let msg = String.init msg_bytes (fun i -> Char.chr ((i * 131) land 0xff)) in
  let rs_speedups =
    List.map
      (fun (n, k) ->
        let codec = Reed_solomon.ctx ~n ~k in
        let enc =
          measure (fun () -> Reed_solomon.encode_with codec msg)
        and enc_ref = measure (fun () -> Reed_solomon_ref.encode ~n ~k msg) in
        emit ~op:"rs_encode" ~n ~k ~bytes:msg_bytes ~unit:`MBs ~fast:enc
          ~ref_ops:enc_ref;
        (* Parity-heavy share set: the worst decode case (no systematic
           copy-through), the one ext_ba_plus hits when low-indexed parties
           are the faulty ones. *)
        let cws = Reed_solomon.encode ~n ~k msg in
        let shares = List.init k (fun i -> (n - 1 - i, cws.(n - 1 - i))) in
        let dec = measure (fun () -> Reed_solomon.decode_with codec shares)
        and dec_ref = measure (fun () -> Reed_solomon_ref.decode ~n ~k shares) in
        emit ~op:"rs_decode" ~n ~k ~bytes:msg_bytes ~unit:`MBs ~fast:dec
          ~ref_ops:dec_ref;
        ((n, k), fst enc /. fst enc_ref))
      [ (13, 5); (13, 9); (40, 27) ]
  in
  let leaves_count = if !smoke then 64 else 1024 in
  let leaves =
    Array.init leaves_count (fun i ->
        String.init 64 (fun j -> Char.chr ((i + (j * 17)) land 0xff)))
  in
  let mb = measure (fun () -> Merkle.build leaves)
  and mb_ref = measure (fun () -> merkle_ref_root leaves) in
  emit ~op:"merkle_build" ~n:leaves_count ~k:0 ~bytes:(64 * leaves_count)
    ~unit:`Ops ~fast:mb ~ref_ops:mb_ref;
  let tree = Merkle.build leaves in
  let root = Merkle.root tree in
  let w = Merkle.witness tree (leaves_count / 2) in
  let mv =
    measure (fun () ->
        Merkle.verify ~root ~index:(leaves_count / 2)
          ~value:leaves.(leaves_count / 2) w)
  in
  emit ~op:"merkle_verify" ~n:leaves_count ~k:0 ~bytes:64 ~unit:`Ops ~fast:mv
    ~ref_ops:mv;
  let sha_bytes = if !smoke then 65536 else 1 lsl 20 in
  let blob = String.init sha_bytes (fun i -> Char.chr ((i * 31) land 0xff)) in
  let sh = measure (fun () -> Sha256.digest blob) in
  emit ~op:"sha256" ~n:0 ~k:0 ~bytes:sha_bytes ~unit:`MBs ~fast:sh ~ref_ops:sh;
  write_json ~path:"BENCH_substrate.json"
    ~meta:
      [
        ("experiment", Bench_json.Str "substrate");
        ("msg_bytes", Bench_json.Int msg_bytes);
        ("merkle_leaves", Bench_json.Int leaves_count);
      ]
    ~rows:(List.rev !json_rows);
  (* Acceptance gate (full runs only; smoke params are too small to be
     meaningful): matrix encode at (13, 5) over 64 KiB must beat the
     reference path by >= 5x. *)
  if not !smoke then begin
    let s = List.assoc (13, 5) rs_speedups in
    if s < 5.0 then
      failwith
        (Printf.sprintf "substrate: rs_encode(13,5) speedup %.1fx < 5x" s)
  end

(* ------------------------------------------------------------------ *)
(* TELEMETRY: observability overhead and invariants                    *)
(* ------------------------------------------------------------------ *)

let telemetry_bench () =
  header "TELEMETRY  --  observability overhead on the T1 workload"
    "Engineering table (no paper claim): attaching a span/timeline recorder must\n\
     cost little (gate: <= 10% wall-clock on the T1 workload, probes off) and\n\
     change nothing — span bits must reproduce Metrics.honest_bits exactly\n\
     (ledger equality) and the JSONL export must be byte-identical across runs\n\
     of the same seed. Full-fidelity probe capture renders every party's O(l)\n\
     candidate value per iteration, so its cost scales with l and is reported\n\
     honestly as a separate (ungated) row.";
  let n = 13 and t = 4 in
  (* Big enough that protocol computation dominates: at 2^14 bits a bare run
     takes ~0.1 s, which makes the min-of-reps ratio stable; at 2^12 and
     below the measurement is mostly scheduler noise. *)
  let bits = if !smoke then 1 lsl 9 else 1 lsl 14 in
  let reps = if !smoke then 1 else 7 in
  let corrupt = Workload.spread_corrupt ~n ~t in
  let inputs = standard_inputs ~seed:42 ~n ~bits in
  let inputs = Workload.apply_input_attack Workload.Outlier_high ~corrupt inputs in
  (* Adversary strategies carry PRNG state: a fresh instance per run keeps
     every run (timed or checked, bare or instrumented) identical. *)
  let run ?telemetry () =
    Workload.run_int ?telemetry ~n ~t ~corrupt
      ~adversary:(Adversary.equivocate ~seed:5)
      ~inputs Workload.pi_z.Workload.run
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (f ()));
    Unix.gettimeofday () -. t0
  in
  (* The three tiers are interleaved within each rep (bare, spans-only, full)
     and each takes its min across reps: ambient process state — heap shape,
     page cache, scheduler mood on a 1-core host — then shifts all three
     tiers together instead of biasing whichever tier happened to run last. *)
  let bare_s = ref infinity and spans_s = ref infinity and full_s = ref infinity in
  for _ = 1 to reps do
    let keep best d = if d < !best then best := d in
    keep bare_s (time (fun () -> run ()));
    (* Spans-only: passive byte accounting, the always-on production mode
       and the configuration the 10% gate is about. *)
    keep spans_s
      (time (fun () -> run ~telemetry:(Telemetry.create ~probes:false ()) ()));
    (* Full fidelity: convergence probes render each party's O(l) candidate
       per iteration, so this tier's cost grows with l — recorded, not
       gated. *)
    keep full_s (time (fun () -> run ~telemetry:(Telemetry.create ()) ()))
  done;
  let bare_s = !bare_s and spans_s = !spans_s and full_s = !full_s in
  let spans_overhead = (spans_s -. bare_s) /. bare_s in
  let full_overhead = (full_s -. bare_s) /. bare_s in
  (* Invariant checks on two fresh full-fidelity runs. *)
  let tm1 = Telemetry.create () in
  let r1 = run ~telemetry:tm1 () in
  let tm2 = Telemetry.create () in
  let _r2 = run ~telemetry:tm2 () in
  let j1 = Telemetry.to_jsonl tm1 and j2 = Telemetry.to_jsonl tm2 in
  let ledger_ok = Telemetry.honest_bits_total tm1 = r1.Workload.honest_bits in
  (* A probes-off recorder must see the same spans (same ledger total). *)
  let tm_spans = Telemetry.create ~probes:false () in
  let _r3 = run ~telemetry:tm_spans () in
  let spans_ledger_ok =
    Telemetry.honest_bits_total tm_spans = r1.Workload.honest_bits
  in
  let deterministic = String.equal j1 j2 in
  Printf.printf "%-24s | %12s\n" "measure" "value";
  print_endline line;
  Printf.printf "%-24s | %12.4f\n" "bare s (min of reps)" bare_s;
  Printf.printf "%-24s | %12.4f\n" "spans-only s" spans_s;
  Printf.printf "%-24s | %11.1f%%\n" "spans overhead (gated)"
    (100. *. spans_overhead);
  Printf.printf "%-24s | %12.4f\n" "full (probes) s" full_s;
  Printf.printf "%-24s | %11.1f%%\n" "full overhead" (100. *. full_overhead);
  Printf.printf "%-24s | %12d\n" "honest bits" r1.Workload.honest_bits;
  Printf.printf "%-24s | %12d\n" "span bits"
    (Telemetry.honest_bits_total tm1);
  Printf.printf "%-24s | %12d\n" "jsonl bytes" (String.length j1);
  Printf.printf "%-24s | %12b\n" "ledger equality" (ledger_ok && spans_ledger_ok);
  Printf.printf "%-24s | %12b\n" "deterministic jsonl" deterministic;
  write_json ~path:"BENCH_telemetry.json"
    ~meta:
      [
        ("experiment", Bench_json.Str "telemetry");
        ("n", Bench_json.Int n);
        ("t", Bench_json.Int t);
        ("bits", Bench_json.Int bits);
        ("reps", Bench_json.Int reps);
      ]
    ~rows:
      [
        [
          ("bare_s", Bench_json.Float bare_s);
          ("spans_s", Bench_json.Float spans_s);
          ("spans_overhead_pct", Bench_json.Float (100. *. spans_overhead));
          ("full_s", Bench_json.Float full_s);
          ("full_overhead_pct", Bench_json.Float (100. *. full_overhead));
          ("honest_bits", Bench_json.Int r1.Workload.honest_bits);
          ("span_bits", Bench_json.Int (Telemetry.honest_bits_total tm1));
          ("jsonl_bytes", Bench_json.Int (String.length j1));
          ("ledger_equality", Bench_json.Bool (ledger_ok && spans_ledger_ok));
          ("deterministic_jsonl", Bench_json.Bool deterministic);
        ];
      ];
  (* Acceptance gates. The invariants must hold even at smoke parameters;
     the timing gate is meaningful only on the full workload, and only for
     the spans-only tier (probe capture is O(l) by design). *)
  if not ledger_ok then
    failwith
      (Printf.sprintf "telemetry: ledger mismatch (%d span bits, %d metric bits)"
         (Telemetry.honest_bits_total tm1) r1.Workload.honest_bits);
  if not spans_ledger_ok then
    failwith
      (Printf.sprintf
         "telemetry: probes-off ledger mismatch (%d span bits, %d metric bits)"
         (Telemetry.honest_bits_total tm_spans) r1.Workload.honest_bits);
  if not deterministic then
    failwith "telemetry: JSONL export not byte-identical across runs";
  if not !smoke then begin
    if spans_overhead > 0.10 then
      failwith
        (Printf.sprintf "telemetry: spans-only overhead %.1f%% > 10%%"
           (100. *. spans_overhead));
    (* Probe-tier re-gate: full-fidelity capture renders O(l) candidate
       values per iteration, so it is not held to the 10% bar — but it must
       stay within an explicit factor, and the committed artifact within an
       explicit size, so creep fails loudly instead of accreting (the ledger
       at the time these bounds were set read 372.7% and 534,211 bytes). *)
    if full_overhead > 5.0 then
      failwith
        (Printf.sprintf "telemetry: full-fidelity overhead %.0f%% > 500%%"
           (100. *. full_overhead));
    if String.length j1 > 800_000 then
      failwith
        (Printf.sprintf "telemetry: probe JSONL %d bytes > 800000 ceiling"
           (String.length j1))
  end

(* ------------------------------------------------------------------ *)
(* OBS: observability-plane overhead and determinism                   *)
(* ------------------------------------------------------------------ *)

let obs_bench () =
  header "OBS  --  observability plane overhead on the engine workload"
    "Engineering table (no paper claim): the obs plane (log-bucketed histograms,\n\
     counters, gauges, the periodic GC/RSS sampler) is meant to stay on during\n\
     soaks, so its gate is <= 10% wall-clock on a K-session engine run. The\n\
     deterministic tier is identity-checked here too: the Det JSONL and the\n\
     virtual-clock chrome trace must be byte-identical across sim, poll and\n\
     domains=2, and the frame-bytes histogram must sum to the aggregate ledger\n\
     exactly.";
  let n = 7 and t = 2 in
  let k = if !smoke then 4 else 32 in
  let reps = if !smoke then 1 else 5 in
  let corrupt = Workload.spread_corrupt ~n ~t in
  (* Specs are rebuilt per run: adversary strategies carry PRNG state, so a
     run is a pure function of the seeds. *)
  let mk_specs () =
    List.init k (fun s ->
        let inputs =
          let rng = Prng.create (9300 + s) in
          Workload.apply_input_attack Workload.Outlier_high ~corrupt
            (Workload.clustered_bits rng ~n ~bits:64 ~shared_prefix_bits:32)
        in
        Engine.session ~sid:s ~start_round:s
          ~adversary:(Adversary.equivocate ~seed:(9400 + s))
          (fun ctx -> Convex.agree_int ctx inputs.(ctx.Ctx.me)))
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (f ()));
    Unix.gettimeofday () -. t0
  in
  (* Interleaved min-of-reps, as in the telemetry bench: ambient process
     state shifts both tiers together instead of biasing the later one. *)
  let bare_s = ref infinity and obs_s = ref infinity in
  for _ = 1 to reps do
    let keep best d = if d < !best then best := d in
    keep bare_s (time (fun () -> Engine.run_sim ~n ~t ~corrupt (mk_specs ())));
    keep obs_s
      (time (fun () ->
           let obs = Obs.create () in
           let sampler = Obs.Sampler.create () in
           Engine.run_sim ~obs ~sampler ~n ~t ~corrupt (mk_specs ())))
  done;
  let bare_s = !bare_s and obs_s = !obs_s in
  let overhead = (obs_s -. bare_s) /. bare_s in
  (* Determinism: the Det-tier registry export and the virtual-clock chrome
     trace are pure functions of the execution, so sim, poll and a 2-domain
     sim run must produce byte-identical artifacts. *)
  let det_export run =
    let obs = Obs.create () in
    let tm = Telemetry.create () in
    let outcome = run obs tm in
    (Obs.to_jsonl ~tier:Obs.Det obs, Obs.Trace.chrome_trace tm, outcome, obs)
  in
  let sim_j, sim_tr, sim_o, sim_obs =
    det_export (fun obs tm ->
        Engine.run_sim ~obs ~telemetry:tm ~n ~t ~corrupt (mk_specs ()))
  in
  let poll_j, poll_tr, _, _ =
    det_export (fun obs tm ->
        Engine.run_poll ~obs ~telemetry:tm ~n ~t ~corrupt (mk_specs ()))
  in
  let par_j, par_tr, _, _ =
    det_export (fun obs tm ->
        Engine.run_sim ~domains:2 ~obs ~telemetry:tm ~n ~t ~corrupt (mk_specs ()))
  in
  let det_identical =
    String.equal sim_j poll_j && String.equal sim_j par_j
    && String.equal sim_tr poll_tr
    && String.equal sim_tr par_tr
  in
  let frame_h = Obs.hist sim_obs ~tier:Obs.Det "engine/frame_bytes" in
  let hist_ledger_equal =
    Obs.Hist.sum frame_h = sim_o.Engine.aggregate.Engine.frame_bytes
  in
  let trace_events =
    match Obs.Check.chrome_trace sim_tr with
    | Ok c -> c
    | Error msg -> failwith ("obs: chrome trace fails its own schema: " ^ msg)
  in
  (match Obs.Check.registry_jsonl sim_j with
  | Ok _ -> ()
  | Error msg -> failwith ("obs: Det JSONL fails its own schema: " ^ msg));
  Printf.printf "%-24s | %12s\n" "measure" "value";
  print_endline line;
  Printf.printf "%-24s | %12.4f\n" "bare s (min of reps)" bare_s;
  Printf.printf "%-24s | %12.4f\n" "obs+sampler s" obs_s;
  Printf.printf "%-24s | %11.1f%%\n" "overhead (gated)" (100. *. overhead);
  Printf.printf "%-24s | %12d\n" "engine rounds"
    sim_o.Engine.aggregate.Engine.engine_rounds;
  Printf.printf "%-24s | %12d\n" "det jsonl bytes" (String.length sim_j);
  Printf.printf "%-24s | %12d\n" "trace bytes" (String.length sim_tr);
  Printf.printf "%-24s | %12d\n" "trace events" trace_events;
  Printf.printf "%-24s | %12b\n" "det identical (3 ways)" det_identical;
  Printf.printf "%-24s | %12b\n" "hist sum = ledger" hist_ledger_equal;
  write_json ~path:"BENCH_obs.json"
    ~meta:
      [
        ("experiment", Bench_json.Str "obs");
        ("n", Bench_json.Int n);
        ("t", Bench_json.Int t);
        ("sessions", Bench_json.Int k);
        ("reps", Bench_json.Int reps);
      ]
    ~rows:
      [
        [
          ("bare_s", Bench_json.Float bare_s);
          ("obs_s", Bench_json.Float obs_s);
          ("overhead_pct", Bench_json.Float (100. *. overhead));
          ("engine_rounds",
           Bench_json.Int sim_o.Engine.aggregate.Engine.engine_rounds);
          ("det_jsonl_bytes", Bench_json.Int (String.length sim_j));
          ("trace_bytes", Bench_json.Int (String.length sim_tr));
          ("trace_events", Bench_json.Int trace_events);
          ("det_identical", Bench_json.Bool det_identical);
          ("hist_ledger_equal", Bench_json.Bool hist_ledger_equal);
        ];
      ];
  (* The identity gates hold even at smoke parameters; only the timing gate
     needs the full workload. *)
  if not det_identical then
    failwith
      "obs: Det-tier export not byte-identical across sim / poll / domains=2";
  if not hist_ledger_equal then
    failwith
      (Printf.sprintf "obs: frame hist sum %d <> aggregate frame_bytes %d"
         (Obs.Hist.sum frame_h) sim_o.Engine.aggregate.Engine.frame_bytes);
  if not !smoke then begin
    if overhead > 0.10 then
      failwith
        (Printf.sprintf "obs: overhead %.1f%% > 10%%" (100. *. overhead))
  end

(* ------------------------------------------------------------------ *)
(* PARALLEL: multicore fan-out throughput and bit-identity             *)
(* ------------------------------------------------------------------ *)

let parallel_bench () =
  let recommended = Pool.recommended () in
  header
    (Printf.sprintf
       "PARALLEL  --  experiment fan-out over the domain pool  (recommended \
        domains on this host: %d)" recommended)
    "Engineering table (no paper claim): independent experiment cells (seed x\n\
     adversary x n x l grid points) fan out over the fixed domain pool. The hard\n\
     invariant is bit-identity — every domain count must reproduce the sequential\n\
     results and the engine's sequential ledger exactly; the throughput column is\n\
     hardware-honest (the speedup gate is enforced only where the host has the\n\
     cores to meet it, and 'gate_enforced' records the decision).";
  let n = 10 and t = 3 in
  let bits = if !smoke then 1 lsl 8 else 1 lsl 11 in
  let cell_count = if !smoke then 8 else 32 in
  (* Cells are rebuilt per run: thunks construct their own PRNGs and
     adversaries, so a sweep is a pure function of the grid. *)
  let mk_cells () =
    List.init cell_count (fun i ->
        Workload.cell ~label:(Printf.sprintf "cell-%d" i) (fun () ->
            let rng = Prng.create (6000 + i) in
            let inputs =
              Workload.clustered_bits rng ~n ~bits ~shared_prefix_bits:(bits / 2)
            in
            let r =
              Workload.run_int ~n ~t
                ~corrupt:(Workload.spread_corrupt ~n ~t)
                ~adversary:(Adversary.equivocate ~seed:(6100 + i))
                ~inputs Workload.pi_z.Workload.run
            in
            assert (r.Workload.agreement);
            (r.Workload.honest_bits, r.Workload.rounds, r.Workload.labels)))
  in
  (* Gate 1: parallel engine runs must replay the sequential ledger exactly —
     outputs, per-session metrics, aggregate, telemetry JSONL (the same
     invariant test_multicore.ml asserts; re-checked here so `make bench`
     cannot publish numbers from a divergent run). *)
  let engine_fingerprint domains =
    let k = if !smoke then 4 else 8 in
    let en = 7 and et = 2 in
    let specs =
      List.init k (fun s ->
          let inputs =
            let rng = Prng.create (6900 + s) in
            Workload.clustered_bits rng ~n:en ~bits:64 ~shared_prefix_bits:32
          in
          Engine.session ~sid:s ~start_round:s
            ~adversary:(Adversary.equivocate ~seed:(6950 + s))
            (fun ctx -> Convex.agree_int ctx inputs.(ctx.Ctx.me)))
    in
    let telemetry = Telemetry.create () in
    let outcome =
      Engine.run_sim ~domains ~telemetry ~n:en ~t:et
        ~corrupt:(Workload.spread_corrupt ~n:en ~t:et)
        specs
    in
    ( List.map
        (fun r ->
          ( r.Engine.r_sid,
            Array.to_list (Array.map (Option.map Bigint.to_hex) r.Engine.r_outputs),
            r.Engine.r_metrics.Metrics.honest_bits,
            Metrics.labels r.Engine.r_metrics ))
        outcome.Engine.sessions,
      outcome.Engine.aggregate,
      Telemetry.to_jsonl telemetry )
  in
  let engine_base = engine_fingerprint 1 in
  List.iter
    (fun d ->
      if engine_fingerprint d <> engine_base then
        failwith
          (Printf.sprintf
             "parallel: engine run at domains=%d does not replay the \
              sequential ledger" d))
    [ 2; 4 ];
  Printf.printf "engine replay gate: domains 2 and 4 reproduce the sequential \
                 ledger byte-for-byte\n\n";
  (* Throughput sweep. *)
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let seq, seq_wall = time (fun () -> Workload.run_cells ~domains:1 (mk_cells ())) in
  let domain_counts = List.sort_uniq compare [ 1; 2; 4; recommended ] in
  Printf.printf "%-8s | %10s | %10s | %10s | %10s\n" "domains" "wall s"
    "cells/s" "speedup" "identical";
  print_endline line;
  let json_rows = ref [] in
  let speedup_at_4 = ref nan in
  List.iter
    (fun d ->
      let results, wall =
        if d = 1 then (seq, seq_wall)
        else time (fun () -> Workload.run_cells ~domains:d (mk_cells ()))
      in
      (* Gate 2: the fan-out is bit-identical to the sequential sweep. *)
      let identical = results = seq in
      if not identical then
        failwith
          (Printf.sprintf
             "parallel: run_cells at domains=%d diverges from the sequential \
              sweep" d);
      let cells_per_s = float_of_int cell_count /. wall in
      let speedup = seq_wall /. wall in
      if d = 4 then speedup_at_4 := speedup;
      Printf.printf "%-8d | %10.3f | %10.1f | %9.2fx | %10b\n" d wall
        cells_per_s speedup identical;
      json_rows :=
        [
          ("domains", Bench_json.Int d);
          ("wall_s", Bench_json.Float wall);
          ("cells_per_s", Bench_json.Float cells_per_s);
          ("speedup_vs_seq", Bench_json.Float speedup);
          ("identical", Bench_json.Bool identical);
        ]
        :: !json_rows)
    domain_counts;
  (* Gate 3: >= 2x at 4 domains — enforceable only where the host has >= 4
     cores (this container reports recommended = 1, where true parallelism is
     impossible and the honest speedup is ~1x; the ledger records both the
     measurement and whether the gate was live). *)
  let gate_enforced = (not !smoke) && recommended >= 4 in
  if gate_enforced && !speedup_at_4 < 2.0 then
    failwith
      (Printf.sprintf "parallel: speedup %.2fx at 4 domains < 2x (%d cores)"
         !speedup_at_4 recommended);
  Printf.printf
    "\n(speedup gate (>= 2x at 4 domains): %s. Bit-identity gates are always\n\
     enforced — a parallel sweep or engine run that diverges from the\n\
     sequential one fails the harness regardless of host.)\n"
    (if gate_enforced then "ENFORCED"
     else
       Printf.sprintf "recorded, not enforced (host recommends %d domain%s)"
         recommended
         (if recommended = 1 then "" else "s"));
  write_json ~path:"BENCH_parallel.json"
    ~meta:
      [
        ("experiment", Bench_json.Str "parallel");
        ("n", Bench_json.Int n);
        ("t", Bench_json.Int t);
        ("bits", Bench_json.Int bits);
        ("cells", Bench_json.Int cell_count);
        ("recommended_domains", Bench_json.Int recommended);
        ("gate_enforced", Bench_json.Bool gate_enforced);
      ]
    ~rows:(List.rev !json_rows)

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("t1", t1); ("t2", t2); ("f1", f1); ("t3", t3); ("t4", t4); ("t5", t5);
    ("t6", t6); ("t7", t7); ("t8", t8); ("auth", auth_exp);
    ("adaptive", adaptive_exp); ("t9", t9); ("a1", a1);
    ("engine", engine_bench); ("substrate", substrate); ("bench", b1);
    ("telemetry", telemetry_bench); ("obs", obs_bench);
    ("parallel", parallel_bench);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  domains := Pool.recommended ();
  let rec parse ids = function
    | [] -> List.rev ids
    | "--smoke" :: rest ->
        smoke := true;
        parse ids rest
    | "--domains" :: v :: rest -> (
        match int_of_string_opt v with
        | Some d when d >= 1 ->
            domains := d;
            parse ids rest
        | _ ->
            Printf.eprintf "--domains expects an integer >= 1, got %S\n" v;
            exit 2)
    | [ "--domains" ] ->
        prerr_endline "--domains expects a value";
        exit 2
    | id :: rest -> parse (id :: ids) rest
  in
  let ids = parse [] args in
  Bench_json.set_domains !domains;
  Printf.printf "domains: %d (host recommends %d)\n" !domains (Pool.recommended ());
  let requested =
    match ids with _ :: _ -> ids | [] -> List.map fst experiments
  in
  List.iter
    (fun id ->
      match List.assoc_opt id experiments with
      | Some f ->
          (* Major-heap state left behind by one experiment must not skew the
             next one's wall-clock (allocation-heavy measurements pay for GC
             work proportional to live heap): start each experiment from a
             compacted heap, as a standalone run would. *)
          Gc.compact ();
          let t0 = Unix.gettimeofday () in
          f ();
          Printf.printf "\n[%s completed in %.1fs]\n" id (Unix.gettimeofday () -. t0)
      | None ->
          Printf.eprintf "unknown experiment %S; available: %s\n" id
            (String.concat " " (List.map fst experiments));
          exit 1)
    requested
