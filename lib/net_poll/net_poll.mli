(** Event-driven transport: a single-process poll loop over nonblocking
    sockets.

    [Net_unix] spawns one thread per party plus one receiver thread per
    connection — fine for a handful of parties, hopeless as a substrate for
    the engine's scale-out story (10⁴+ concurrent sessions from one process).
    This module moves the same coalesced {!Wire.Frame} traffic with {e zero}
    threads: one [Unix.select] loop over a full mesh of nonblocking socket
    pairs, a bounded outbound ring buffer per connection, and the incremental
    {!Wire.Frame.Decoder} on the receive side, resumable across partial
    reads.

    Backpressure is explicit: a connection whose outbound ring is full parks
    its remaining frame bytes instead of blocking anything — the loop keeps
    servicing every other connection and tops the ring up as the kernel
    buffer drains (counted in {!stats}). This is the shape under which the
    paper's communication-optimality is observable at scale: cost is words
    on the wire, not threads or syscalls per session.

    The unit of work is an {e exchange} — one engine round's traffic in, the
    delivered entries out (see {!Net.Transport}). Within an exchange,
    everything is event-driven; across exchanges the engine keeps its
    lock-step round structure, which is what makes the poll backend
    bit-identical to the simulator.

    The steady-state byte path is allocation-free on this side of the
    payloads: frames encode in place into per-connection reusable buffers
    ({!Wire.Frame.encode_into}), reads feed the decoder by offset from one
    shared scratch ({!Wire.Frame.Decoder.feed_sub}), and the delivered
    matrix the engine sees is reused across exchanges. {!stats} reports the
    discipline: [p_frames_encoded_in_place] and [p_minor_words_per_round]. *)

type stats = {
  p_rounds : int;  (** Exchanges completed. *)
  p_frames : int;  (** Frames moved (keep-alive empties included). *)
  p_frame_bytes : int;
      (** Encoded frame bytes, excluding the u32 length prefix — comparable
          with the engine ledger's [frame_bytes]. *)
  p_wire_bytes : int;  (** Bytes written to sockets, prefixes included. *)
  p_reads : int;  (** [read(2)] calls that returned data. *)
  p_writes : int;  (** [write(2)] calls that moved data. *)
  p_polls : int;  (** [select(2)] iterations. *)
  p_parked : int;
      (** Backpressure events: a connection's frame did not fit into its
          outbound ring in one piece and parked for a later top-up. *)
  p_max_backlog : int;
      (** Peak bytes queued behind a single connection (ring + parked). *)
  p_frames_encoded_in_place : int;
      (** Frames encoded directly into a connection's reusable outbound
          buffer (the engine-facing entries path). The direct-call string
          interface below bypasses in-place encoding, so this counts only
          transport-driven frames. *)
  p_minor_words_per_round : float;
      (** Mean minor-heap words allocated per exchange on the entries path —
          the transport's own allocation footprint, measured around each
          exchange with [Gc.minor_words]. *)
  p_select_wait_max_s : float;
      (** Longest single [select(2)] wait, in seconds (wall clock). *)
  p_select_wait_mean_s : float;
      (** Mean [select(2)] wait per poll, in seconds (wall clock). *)
  p_conn_peak_backlog : int array array;
      (** [m.(src).(dst)]: peak bytes ever queued behind the [src -> dst]
          connection (ring + parked frame remainder), the diagonal zero.
          [p_max_backlog] is the maximum over this matrix. Freshly allocated
          by each {!stats} call. *)
}

type sink = {
  sink_select_wait : float -> unit;
      (** Called once per [select(2)] return with the wait in seconds. *)
  sink_write_stall : float -> unit;
      (** Called when a parked connection fully drains, with the stall
          duration in seconds (first park to empty backlog). *)
}
(** Per-event duration callbacks for an external observer (the [lib/obs]
    sampled-tier histograms). Callbacks run inside the poll loop: they must
    not block, raise, or re-enter this module. *)

type t

val create : ?outbuf:int -> ?max_frame:int -> n:int -> unit -> t
(** Build the nonblocking socket mesh for [n] parties. [outbuf] (default
    64 KiB, minimum 16 bytes) is the per-connection outbound ring capacity —
    shrink it to force parking in tests; [max_frame] (default
    {!Wire.Frame.max_frame_bytes}) bounds accepted frame bodies. Raises
    [Invalid_argument] if [n < 1]. *)

val exchange :
  t -> round:int -> string array array -> (int * string) list array array
(** [exchange t ~round frames] moves [frames.(src).(dst)] (an encoded
    {!Wire.Frame}, the diagonal ignored) to its recipient and returns the
    decoded entry lists, indexed the same way. Every off-diagonal frame is
    sent, empties included. Raises [Failure] on transport violations: a
    frame that decodes to the wrong round, an undecodable or oversized
    stream, or a stalled loop (nothing readable or writable for 30 s —
    cannot happen unless the mesh is externally damaged). Raises
    [Invalid_argument] after {!close} or on a mis-shaped matrix. *)

val stats : t -> stats

val set_sink : t -> sink option -> unit
(** Install (or clear) the duration-event sink. No-op on the byte path when
    unset: the only cost without a sink is the select-wait bookkeeping that
    {!stats} reports anyway. *)

val set_control : t -> (Unix.file_descr * (unit -> unit)) option -> unit
(** Install a control endpoint: [fd] joins every [select] read set inside
    {!exchange}, and [service] runs whenever it is readable — the hook the
    live stats endpoint ([Obs.Endpoint]) uses to answer clients mid-round.
    [service] must leave [fd] unreadable before returning (accept and answer
    every pending client) or the loop will spin on it; it must not block or
    raise. The fd is not closed by {!close}. *)

val transport : t -> Net.Transport.t
(** The {!Net.Transport} view driven by [Engine.run_poll] ([direct = false]):
    each pair's frame is sized with {!Wire.Frame.encoded_size} and encoded in
    place into the connection's outbound buffer; what the engine receives is
    only what decoded off the wire. The returned matrix is reused across
    exchanges (borrowed, per the {!Net.Transport} contract). [close] closes
    the mesh. *)

val close : t -> unit
(** Close every socket; idempotent. *)

(** {1 Process memory probes}

    Linux-only helpers (read from [/proc/self]); [None] where unavailable.
    The soak's RSS ceiling and the bench's [rss_bytes] column use these. *)

val rss_bytes : unit -> int option
(** Current resident set size, in bytes. *)

val rss_peak_bytes : unit -> int option
(** Peak resident set size ([VmHWM]), in bytes. Kernels that omit [VmHWM]
    report the last peak observed by this process instead of [None]
    forever. *)

val parse_vm_line : key:string -> string -> int option
(** [parse_vm_line ~key line] parses one [/proc/self/status] line of the
    form ["VmHWM:\t  1234 kB"]: when [line] starts with [key] and carries
    digits, the value in bytes ([kB * 1024]); [None] for other keys or a
    digitless line. Exposed for tests. *)
