(* Single-process event loop. One socketpair per unordered party pair; the
   directed connection src->dst writes on src's endpoint and reads on dst's,
   so each fd has exactly one writer role and one reader role (possibly
   active in the same select).

   Wire format per direction: u32 big-endian body length, then the encoded
   Wire.Frame — the same stream Net_unix.run_sessions speaks, decoded here
   incrementally by Wire.Frame.Decoder so a frame split across any number of
   partial reads reassembles without ever blocking the loop.

   Allocation discipline: the steady-state byte path reuses per-connection
   buffers end to end. Outbound, each connection owns a grow-only scratch
   [c_out] holding the round's prefixed frame — the entries path encodes
   into it in place (Wire.Frame.encode_into), no frame string or prefix
   concatenation exists. Inbound, reads land in one shared scratch and are
   fed to the decoder by offset (feed_sub), never via an intermediate
   sub-string. The delivered matrix handed to the engine is reused across
   exchanges (the Transport contract marks it borrowed). What remains per
   round is the decoded entry payloads themselves — the data. *)

type stats = {
  p_rounds : int;
  p_frames : int;
  p_frame_bytes : int;
  p_wire_bytes : int;
  p_reads : int;
  p_writes : int;
  p_polls : int;
  p_parked : int;
  p_max_backlog : int;
  p_frames_encoded_in_place : int;
  p_minor_words_per_round : float;
  p_select_wait_max_s : float;
  p_select_wait_mean_s : float;
  p_conn_peak_backlog : int array array;
}

type sink = {
  sink_select_wait : float -> unit;
  sink_write_stall : float -> unit;
}

(* ---- bounded byte ring ---------------------------------------------------- *)

module Ring = struct
  type t = {
    buf : Bytes.t;
    mutable head : int;  (* read position *)
    mutable len : int;
  }

  let create cap = { buf = Bytes.create cap; head = 0; len = 0 }
  let capacity r = Bytes.length r.buf
  let length r = r.len
  let free r = capacity r - r.len

  (* Copy as much of [src.[off .. off+avail-1]] as fits; returns the bytes
     taken. *)
  let push r src off avail =
    let cap = capacity r in
    let take = min avail (free r) in
    let tail = (r.head + r.len) mod cap in
    let first = min take (cap - tail) in
    Bytes.blit src off r.buf tail first;
    if take > first then Bytes.blit src (off + first) r.buf 0 (take - first);
    r.len <- r.len + take;
    take

  (* One nonblocking write of the contiguous prefix; returns bytes written
     (0 on EAGAIN). *)
  let write_fd r fd =
    if r.len = 0 then 0
    else begin
      let cap = capacity r in
      let chunk = min r.len (cap - r.head) in
      match Unix.write fd r.buf r.head chunk with
      | written ->
          r.head <- (r.head + written) mod cap;
          r.len <- r.len - written;
          if r.len = 0 then r.head <- 0;
          written
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> 0
    end
end

(* ---- connections ---------------------------------------------------------- *)

type conn = {
  c_src : int;
  c_dst : int;
  c_wfd : Unix.file_descr;  (* src's endpoint: this direction writes here *)
  c_rfd : Unix.file_descr;  (* dst's endpoint: this direction reads here *)
  c_ring : Ring.t;
  c_dec : Wire.Frame.Decoder.t;
  mutable c_out : Bytes.t;
      (* Reusable outbound scratch: the round's u32-prefixed frame lives in
         [c_out.[0 .. c_out_len-1]]. Grow-only. *)
  mutable c_out_len : int;
  mutable c_off : int;  (* bytes of [c_out] already admitted to the ring *)
  mutable c_rcvd : (int * string) list option;  (* decoded inbound entries *)
  mutable c_peak_backlog : int;  (* peak queued bytes over this conn's life *)
  mutable c_park_t : float;  (* wall clock when the current stall began; -1.0 *)
}

type t = {
  n : int;
  conns : conn array;  (* every ordered pair, src-major *)
  pair_fds : Unix.file_descr list;  (* each endpoint once, for close *)
  scratch : Bytes.t;
  recv : (int * string) list array array;
      (* Delivered-entries matrix handed to the engine, reused across
         exchanges (borrowed per the Transport contract). *)
  mutable closed : bool;
  mutable s_rounds : int;
  mutable s_frames : int;
  mutable s_frame_bytes : int;
  mutable s_wire_bytes : int;
  mutable s_reads : int;
  mutable s_writes : int;
  mutable s_polls : int;
  mutable s_parked : int;
  mutable s_max_backlog : int;
  mutable s_in_place : int;
  mutable s_minor_words : float;
  mutable s_select_wait_total : float;
  mutable s_select_wait_max : float;
  mutable sink : sink option;
  mutable control : (Unix.file_descr * (unit -> unit)) option;
}

let stall_timeout = 30.0

let create ?(outbuf = 64 * 1024) ?(max_frame = Wire.Frame.max_frame_bytes) ~n ()
    =
  if n < 1 then invalid_arg "Net_poll.create: n < 1";
  let outbuf = max outbuf 16 in
  (* endpoints.(i).(j): party i's end of the (i, j) socketpair. *)
  let endpoints = Array.make_matrix n n Unix.stdin in
  let pair_fds = ref [] in
  (try
     for i = 0 to n - 1 do
       for j = i + 1 to n - 1 do
         let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
         Unix.set_nonblock a;
         Unix.set_nonblock b;
         endpoints.(i).(j) <- a;
         endpoints.(j).(i) <- b;
         pair_fds := a :: b :: !pair_fds
       done
     done
   with e ->
     (* No fd leak on a failed mesh bring-up. *)
     List.iter
       (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
       !pair_fds;
     raise e);
  let conns = ref [] in
  for src = n - 1 downto 0 do
    for dst = n - 1 downto 0 do
      if src <> dst then
        conns :=
          {
            c_src = src;
            c_dst = dst;
            c_wfd = endpoints.(src).(dst);
            c_rfd = endpoints.(dst).(src);
            c_ring = Ring.create outbuf;
            c_dec = Wire.Frame.Decoder.create ~max_frame ();
            c_out = Bytes.create 256;
            c_out_len = 0;
            c_off = 0;
            c_rcvd = None;
            c_peak_backlog = 0;
            c_park_t = -1.0;
          }
          :: !conns
    done
  done;
  {
    n;
    conns = Array.of_list !conns;
    pair_fds = !pair_fds;
    scratch = Bytes.create 65536;
    recv = Array.make_matrix n n [];
    closed = false;
    s_rounds = 0;
    s_frames = 0;
    s_frame_bytes = 0;
    s_wire_bytes = 0;
    s_reads = 0;
    s_writes = 0;
    s_polls = 0;
    s_parked = 0;
    s_max_backlog = 0;
    s_in_place = 0;
    s_minor_words = 0.0;
    s_select_wait_total = 0.0;
    s_select_wait_max = 0.0;
    sink = None;
    control = None;
  }

let set_sink t sink = t.sink <- sink
let set_control t control = t.control <- control

let close t =
  if not t.closed then begin
    t.closed <- true;
    List.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      t.pair_fds
  end

let stats t =
  {
    p_rounds = t.s_rounds;
    p_frames = t.s_frames;
    p_frame_bytes = t.s_frame_bytes;
    p_wire_bytes = t.s_wire_bytes;
    p_reads = t.s_reads;
    p_writes = t.s_writes;
    p_polls = t.s_polls;
    p_parked = t.s_parked;
    p_max_backlog = t.s_max_backlog;
    p_frames_encoded_in_place = t.s_in_place;
    p_minor_words_per_round =
      (if t.s_rounds = 0 then 0.0
       else t.s_minor_words /. float_of_int t.s_rounds);
    p_select_wait_max_s = t.s_select_wait_max;
    p_select_wait_mean_s =
      (if t.s_polls = 0 then 0.0
       else t.s_select_wait_total /. float_of_int t.s_polls);
    p_conn_peak_backlog =
      (let m = Array.make_matrix t.n t.n 0 in
       Array.iter (fun c -> m.(c.c_src).(c.c_dst) <- c.c_peak_backlog) t.conns;
       m);
  }

(* Bytes not yet flushed to the kernel for one connection. *)
let backlog c = Ring.length c.c_ring + (c.c_out_len - c.c_off)

(* Stage one connection's round frame into [c_out]: u32 body-length prefix at
   offset 0, then [fill] writes the [body_len] body bytes at offset 4. The
   scratch grows to fit and is reused every round after. *)
let load_frame t c ~body_len fill =
  let total = 4 + body_len in
  if Bytes.length c.c_out < total then
    c.c_out <- Bytes.create (max total (2 * Bytes.length c.c_out));
  Bytes.set c.c_out 0 (Char.chr ((body_len lsr 24) land 0xff));
  Bytes.set c.c_out 1 (Char.chr ((body_len lsr 16) land 0xff));
  Bytes.set c.c_out 2 (Char.chr ((body_len lsr 8) land 0xff));
  Bytes.set c.c_out 3 (Char.chr (body_len land 0xff));
  fill c.c_out;
  c.c_out_len <- total;
  c.c_off <- Ring.push c.c_ring c.c_out 0 total;
  c.c_rcvd <- None;
  t.s_frames <- t.s_frames + 1;
  t.s_frame_bytes <- t.s_frame_bytes + body_len;
  t.s_wire_bytes <- t.s_wire_bytes + total;
  if c.c_off < total then begin
    t.s_parked <- t.s_parked + 1;
    (* A stall is the span from the first park until the whole backlog
       drains; the stamp is taken only on the (rare) parked path. *)
    if c.c_park_t < 0.0 then c.c_park_t <- Unix.gettimeofday ()
  end;
  let b = backlog c in
  t.s_max_backlog <- max t.s_max_backlog b;
  c.c_peak_backlog <- max c.c_peak_backlog b

(* Admit parked frame bytes into the ring, then flush the ring. Returns true
   if any byte moved to the kernel. *)
let service_write t c =
  let progressed = ref false in
  let continue = ref true in
  while !continue do
    if c.c_off < c.c_out_len then
      c.c_off <- c.c_off + Ring.push c.c_ring c.c_out c.c_off (c.c_out_len - c.c_off);
    let written = Ring.write_fd c.c_ring c.c_wfd in
    if written > 0 then begin
      t.s_writes <- t.s_writes + 1;
      progressed := true
    end
    else continue := false;
    if Ring.length c.c_ring = 0 && c.c_off = c.c_out_len then continue := false
  done;
  if c.c_park_t >= 0.0 && backlog c = 0 then begin
    let stall = Unix.gettimeofday () -. c.c_park_t in
    c.c_park_t <- -1.0;
    match t.sink with Some s -> s.sink_write_stall stall | None -> ()
  end;
  !progressed

let service_read t ~round c =
  match Unix.read c.c_rfd t.scratch 0 (Bytes.length t.scratch) with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | 0 -> failwith "Net_poll: connection closed mid-round"
  | k ->
      t.s_reads <- t.s_reads + 1;
      Wire.Frame.Decoder.feed_sub c.c_dec t.scratch 0 k;
      let rec pump () =
        match Wire.Frame.Decoder.next c.c_dec with
        | Error msg -> failwith ("Net_poll: " ^ msg)
        | Ok None -> ()
        | Ok (Some frame) ->
            if frame.Wire.Frame.round <> round then
              failwith
                (Printf.sprintf "Net_poll: expected round %d, got %d" round
                   frame.Wire.Frame.round);
            (match c.c_rcvd with
            | Some _ -> failwith "Net_poll: duplicate frame in one round"
            | None -> c.c_rcvd <- Some frame.Wire.Frame.entries);
            pump ()
      in
      pump ()

(* Drive the event loop until every connection has both flushed its round
   frame and received its peer's. Every connection must have been staged by
   [load_frame] first. *)
let drive t ~round =
  let undone = ref (Array.length t.conns) in
  (* Drain any bytes the decoders already hold (cannot happen between
     lock-step rounds, but keeps the loop's invariant local). *)
  Array.iter
    (fun c ->
      if Wire.Frame.Decoder.buffered c.c_dec > 0 then service_read t ~round c;
      if c.c_rcvd <> None then decr undone)
    t.conns;
  while !undone > 0 do
    let wconns = ref [] and rconns = ref [] in
    Array.iter
      (fun c ->
        if backlog c > 0 then wconns := c :: !wconns;
        if c.c_rcvd = None then rconns := c :: !rconns)
      t.conns;
    let rfds = List.map (fun c -> c.c_rfd) !rconns in
    let rfds =
      match t.control with Some (fd, _) -> fd :: rfds | None -> rfds
    in
    let wfds = List.map (fun c -> c.c_wfd) !wconns in
    t.s_polls <- t.s_polls + 1;
    let sel_t0 = Unix.gettimeofday () in
    let readable, writable, _ = Unix.select rfds wfds [] stall_timeout in
    let wait = Unix.gettimeofday () -. sel_t0 in
    t.s_select_wait_total <- t.s_select_wait_total +. wait;
    if wait > t.s_select_wait_max then t.s_select_wait_max <- wait;
    (match t.sink with Some s -> s.sink_select_wait wait | None -> ());
    if readable = [] && writable = [] then
      failwith "Net_poll: stalled (nothing readable or writable)";
    (* The control endpoint rides the same select: a live-stats client that
       connects mid-round is served without leaving the loop. *)
    (match t.control with
    | Some (fd, service) when List.memq fd readable -> service ()
    | _ -> ());
    List.iter
      (fun c ->
        if List.memq c.c_wfd writable then begin
          ignore (service_write t c);
          let b = backlog c in
          t.s_max_backlog <- max t.s_max_backlog b;
          c.c_peak_backlog <- max c.c_peak_backlog b
        end)
      !wconns;
    List.iter
      (fun c ->
        if List.memq c.c_rfd readable && c.c_rcvd = None then begin
          service_read t ~round c;
          if c.c_rcvd <> None then decr undone
        end)
      !rconns
  done;
  t.s_rounds <- t.s_rounds + 1

let check_open_and_shape t rows =
  if t.closed then invalid_arg "Net_poll.exchange: closed";
  if
    Array.length rows <> t.n
    || Array.exists (fun row -> Array.length row <> t.n) rows
  then invalid_arg "Net_poll.exchange: frame matrix shape"

let exchange t ~round frames =
  check_open_and_shape t frames;
  (* Load the round: every connection gets its prefixed frame; whatever fits
     goes straight into the ring, the rest parks. *)
  Array.iter
    (fun c ->
      let body = frames.(c.c_src).(c.c_dst) in
      let body_len = String.length body in
      load_frame t c ~body_len (fun buf -> Bytes.blit_string body 0 buf 4 body_len))
    t.conns;
  drive t ~round;
  (* Fresh result matrix: the direct-call (string-matrix) interface is the
     test surface and keeps value semantics. *)
  let received = Array.make_matrix t.n t.n [] in
  Array.iter
    (fun c ->
      match c.c_rcvd with
      | Some entries -> received.(c.c_src).(c.c_dst) <- entries
      | None -> assert false)
    t.conns;
  received

(* The engine-facing path: encode each pair's frame straight into the
   connection's outbound scratch — no frame string, no prefix concatenation —
   and hand back the reused delivered matrix. *)
let exchange_entries t ~round entries =
  check_open_and_shape t entries;
  let mw0 = Gc.minor_words () in
  Array.iter
    (fun c ->
      let frame =
        { Wire.Frame.round; entries = entries.(c.c_src).(c.c_dst) }
      in
      let body_len = Wire.Frame.encoded_size frame in
      load_frame t c ~body_len (fun buf ->
          ignore (Wire.Frame.encode_into frame buf 4 : int));
      t.s_in_place <- t.s_in_place + 1)
    t.conns;
  drive t ~round;
  Array.iter
    (fun c ->
      match c.c_rcvd with
      | Some es -> t.recv.(c.c_src).(c.c_dst) <- es
      | None -> assert false)
    t.conns;
  t.s_minor_words <- t.s_minor_words +. (Gc.minor_words () -. mw0);
  t.recv

let transport t =
  {
    Net.Transport.name = "poll";
    direct = false;
    exchange = (fun ~round ~entries -> exchange_entries t ~round entries);
    close = (fun () -> close t);
  }

(* ---- process memory probes ------------------------------------------------ *)

let read_proc_line path =
  match open_in path with
  | ic ->
      let line = try Some (input_line ic) with End_of_file -> None in
      close_in ic;
      line
  | exception Sys_error _ -> None

let rss_bytes () =
  (* /proc/self/statm field 2 is the resident set in pages; the page size on
     every platform this repo targets is 4096 (no getpagesize binding in the
     stdlib's Unix). *)
  match read_proc_line "/proc/self/statm" with
  | None -> None
  | Some line -> (
      match String.split_on_char ' ' line with
      | _ :: resident :: _ -> (
          match int_of_string_opt resident with
          | Some pages -> Some (pages * 4096)
          | None -> None)
      | _ -> None)

let parse_vm_line ~key line =
  let klen = String.length key in
  if String.length line <= klen || String.sub line 0 klen <> key then None
  else
    let rest = String.sub line klen (String.length line - klen) in
    let digits =
      String.to_seq rest
      |> Seq.filter (fun c -> c >= '0' && c <= '9')
      |> String.of_seq
    in
    match int_of_string_opt digits with
    | Some kb -> Some (kb * 1024)
    | None -> None

(* Some kernels (and containers hiding /proc detail) omit VmHWM; report the
   last peak we did see rather than pretending the process shrank to
   nothing. *)
let last_peak = ref None

let rss_peak_bytes () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> !last_peak
  | ic ->
      let rec scan () =
        match input_line ic with
        | exception End_of_file -> None
        | line -> (
            match parse_vm_line ~key:"VmHWM:" line with
            | Some v -> Some v
            | None -> scan ())
      in
      let r = scan () in
      close_in ic;
      (match r with
      | Some _ -> last_peak := r
      | None -> ());
      (match r with Some _ -> r | None -> !last_peak)
