(* Single-process event loop. One socketpair per unordered party pair; the
   directed connection src->dst writes on src's endpoint and reads on dst's,
   so each fd has exactly one writer role and one reader role (possibly
   active in the same select).

   Wire format per direction: u32 big-endian body length, then the encoded
   Wire.Frame — the same stream Net_unix.run_sessions speaks, decoded here
   incrementally by Wire.Frame.Decoder so a frame split across any number of
   partial reads reassembles without ever blocking the loop. *)

type stats = {
  p_rounds : int;
  p_frames : int;
  p_frame_bytes : int;
  p_wire_bytes : int;
  p_reads : int;
  p_writes : int;
  p_polls : int;
  p_parked : int;
  p_max_backlog : int;
}

(* ---- bounded byte ring ---------------------------------------------------- *)

module Ring = struct
  type t = {
    buf : Bytes.t;
    mutable head : int;  (* read position *)
    mutable len : int;
  }

  let create cap = { buf = Bytes.create cap; head = 0; len = 0 }
  let capacity r = Bytes.length r.buf
  let length r = r.len
  let free r = capacity r - r.len

  (* Copy as much of [src.[off..]] as fits; returns the bytes taken. *)
  let push r src off =
    let cap = capacity r in
    let take = min (String.length src - off) (free r) in
    let tail = (r.head + r.len) mod cap in
    let first = min take (cap - tail) in
    Bytes.blit_string src off r.buf tail first;
    if take > first then Bytes.blit_string src (off + first) r.buf 0 (take - first);
    r.len <- r.len + take;
    take

  (* One nonblocking write of the contiguous prefix; returns bytes written
     (0 on EAGAIN). *)
  let write_fd r fd =
    if r.len = 0 then 0
    else begin
      let cap = capacity r in
      let chunk = min r.len (cap - r.head) in
      match Unix.write fd r.buf r.head chunk with
      | written ->
          r.head <- (r.head + written) mod cap;
          r.len <- r.len - written;
          if r.len = 0 then r.head <- 0;
          written
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> 0
    end
end

(* ---- connections ---------------------------------------------------------- *)

type conn = {
  c_src : int;
  c_dst : int;
  c_wfd : Unix.file_descr;  (* src's endpoint: this direction writes here *)
  c_rfd : Unix.file_descr;  (* dst's endpoint: this direction reads here *)
  c_ring : Ring.t;
  c_dec : Wire.Frame.Decoder.t;
  mutable c_frame : string;  (* prefixed bytes of the round's outbound frame *)
  mutable c_off : int;  (* bytes of [c_frame] already admitted to the ring *)
  mutable c_rcvd : (int * string) list option;  (* decoded inbound entries *)
}

type t = {
  n : int;
  conns : conn array;  (* every ordered pair, src-major *)
  pair_fds : Unix.file_descr list;  (* each endpoint once, for close *)
  scratch : Bytes.t;
  mutable closed : bool;
  mutable s_rounds : int;
  mutable s_frames : int;
  mutable s_frame_bytes : int;
  mutable s_wire_bytes : int;
  mutable s_reads : int;
  mutable s_writes : int;
  mutable s_polls : int;
  mutable s_parked : int;
  mutable s_max_backlog : int;
}

let stall_timeout = 30.0

let create ?(outbuf = 64 * 1024) ?(max_frame = Wire.Frame.max_frame_bytes) ~n ()
    =
  if n < 1 then invalid_arg "Net_poll.create: n < 1";
  let outbuf = max outbuf 16 in
  (* endpoints.(i).(j): party i's end of the (i, j) socketpair. *)
  let endpoints = Array.make_matrix n n Unix.stdin in
  let pair_fds = ref [] in
  (try
     for i = 0 to n - 1 do
       for j = i + 1 to n - 1 do
         let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
         Unix.set_nonblock a;
         Unix.set_nonblock b;
         endpoints.(i).(j) <- a;
         endpoints.(j).(i) <- b;
         pair_fds := a :: b :: !pair_fds
       done
     done
   with e ->
     (* No fd leak on a failed mesh bring-up. *)
     List.iter
       (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
       !pair_fds;
     raise e);
  let conns = ref [] in
  for src = n - 1 downto 0 do
    for dst = n - 1 downto 0 do
      if src <> dst then
        conns :=
          {
            c_src = src;
            c_dst = dst;
            c_wfd = endpoints.(src).(dst);
            c_rfd = endpoints.(dst).(src);
            c_ring = Ring.create outbuf;
            c_dec = Wire.Frame.Decoder.create ~max_frame ();
            c_frame = "";
            c_off = 0;
            c_rcvd = None;
          }
          :: !conns
    done
  done;
  {
    n;
    conns = Array.of_list !conns;
    pair_fds = !pair_fds;
    scratch = Bytes.create 65536;
    closed = false;
    s_rounds = 0;
    s_frames = 0;
    s_frame_bytes = 0;
    s_wire_bytes = 0;
    s_reads = 0;
    s_writes = 0;
    s_polls = 0;
    s_parked = 0;
    s_max_backlog = 0;
  }

let close t =
  if not t.closed then begin
    t.closed <- true;
    List.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      t.pair_fds
  end

let stats t =
  {
    p_rounds = t.s_rounds;
    p_frames = t.s_frames;
    p_frame_bytes = t.s_frame_bytes;
    p_wire_bytes = t.s_wire_bytes;
    p_reads = t.s_reads;
    p_writes = t.s_writes;
    p_polls = t.s_polls;
    p_parked = t.s_parked;
    p_max_backlog = t.s_max_backlog;
  }

let prefix body =
  let len = String.length body in
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((len lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((len lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((len lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (len land 0xff));
  Bytes.to_string b ^ body

(* Bytes not yet flushed to the kernel for one connection. *)
let backlog c = Ring.length c.c_ring + (String.length c.c_frame - c.c_off)

(* Admit parked frame bytes into the ring, then flush the ring. Returns true
   if any byte moved to the kernel. *)
let service_write t c =
  let progressed = ref false in
  let continue = ref true in
  while !continue do
    if c.c_off < String.length c.c_frame then
      c.c_off <- c.c_off + Ring.push c.c_ring c.c_frame c.c_off;
    let written = Ring.write_fd c.c_ring c.c_wfd in
    if written > 0 then begin
      t.s_writes <- t.s_writes + 1;
      progressed := true
    end
    else continue := false;
    if Ring.length c.c_ring = 0 && c.c_off = String.length c.c_frame then
      continue := false
  done;
  !progressed

let service_read t ~round c =
  match Unix.read c.c_rfd t.scratch 0 (Bytes.length t.scratch) with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | 0 -> failwith "Net_poll: connection closed mid-round"
  | k ->
      t.s_reads <- t.s_reads + 1;
      Wire.Frame.Decoder.feed c.c_dec (Bytes.sub_string t.scratch 0 k);
      let rec pump () =
        match Wire.Frame.Decoder.next c.c_dec with
        | Error msg -> failwith ("Net_poll: " ^ msg)
        | Ok None -> ()
        | Ok (Some frame) ->
            if frame.Wire.Frame.round <> round then
              failwith
                (Printf.sprintf "Net_poll: expected round %d, got %d" round
                   frame.Wire.Frame.round);
            (match c.c_rcvd with
            | Some _ -> failwith "Net_poll: duplicate frame in one round"
            | None -> c.c_rcvd <- Some frame.Wire.Frame.entries);
            pump ()
      in
      pump ()

let exchange t ~round frames =
  if t.closed then invalid_arg "Net_poll.exchange: closed";
  if
    Array.length frames <> t.n
    || Array.exists (fun row -> Array.length row <> t.n) frames
  then invalid_arg "Net_poll.exchange: frame matrix shape";
  (* Load the round: every connection gets its prefixed frame; whatever fits
     goes straight into the ring, the rest parks. *)
  Array.iter
    (fun c ->
      let body = frames.(c.c_src).(c.c_dst) in
      c.c_frame <- prefix body;
      c.c_off <- Ring.push c.c_ring c.c_frame 0;
      c.c_rcvd <- None;
      t.s_frames <- t.s_frames + 1;
      t.s_frame_bytes <- t.s_frame_bytes + String.length body;
      t.s_wire_bytes <- t.s_wire_bytes + String.length c.c_frame;
      if c.c_off < String.length c.c_frame then t.s_parked <- t.s_parked + 1;
      t.s_max_backlog <- max t.s_max_backlog (backlog c))
    t.conns;
  let undone = ref (Array.length t.conns) in
  (* Drain any bytes the decoders already hold (cannot happen between
     lock-step rounds, but keeps the loop's invariant local). *)
  Array.iter
    (fun c ->
      if Wire.Frame.Decoder.buffered c.c_dec > 0 then service_read t ~round c;
      if c.c_rcvd <> None then decr undone)
    t.conns;
  while !undone > 0 do
    let wconns = ref [] and rconns = ref [] in
    Array.iter
      (fun c ->
        if backlog c > 0 then wconns := c :: !wconns;
        if c.c_rcvd = None then rconns := c :: !rconns)
      t.conns;
    let rfds = List.map (fun c -> c.c_rfd) !rconns in
    let wfds = List.map (fun c -> c.c_wfd) !wconns in
    t.s_polls <- t.s_polls + 1;
    let readable, writable, _ = Unix.select rfds wfds [] stall_timeout in
    if readable = [] && writable = [] then
      failwith "Net_poll: stalled (nothing readable or writable)";
    List.iter
      (fun c ->
        if List.memq c.c_wfd writable then begin
          ignore (service_write t c);
          t.s_max_backlog <- max t.s_max_backlog (backlog c)
        end)
      !wconns;
    List.iter
      (fun c ->
        if List.memq c.c_rfd readable && c.c_rcvd = None then begin
          service_read t ~round c;
          if c.c_rcvd <> None then decr undone
        end)
      !rconns
  done;
  t.s_rounds <- t.s_rounds + 1;
  let received = Array.make_matrix t.n t.n [] in
  Array.iter
    (fun c ->
      match c.c_rcvd with
      | Some entries -> received.(c.c_src).(c.c_dst) <- entries
      | None -> assert false)
    t.conns;
  received

let transport t =
  {
    Net.Transport.name = "poll";
    exchange = (fun ~round ~frames ~entries:_ -> exchange t ~round frames);
    close = (fun () -> close t);
  }

(* ---- process memory probes ------------------------------------------------ *)

let read_proc_line path =
  match open_in path with
  | ic ->
      let line = try Some (input_line ic) with End_of_file -> None in
      close_in ic;
      line
  | exception Sys_error _ -> None

let rss_bytes () =
  (* /proc/self/statm field 2 is the resident set in pages; the page size on
     every platform this repo targets is 4096 (no getpagesize binding in the
     stdlib's Unix). *)
  match read_proc_line "/proc/self/statm" with
  | None -> None
  | Some line -> (
      match String.split_on_char ' ' line with
      | _ :: resident :: _ -> (
          match int_of_string_opt resident with
          | Some pages -> Some (pages * 4096)
          | None -> None)
      | _ -> None)

let rss_peak_bytes () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
      let rec scan () =
        match input_line ic with
        | exception End_of_file -> None
        | line ->
            if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
              let rest = String.sub line 6 (String.length line - 6) in
              let digits =
                String.to_seq rest
                |> Seq.filter (fun c -> c >= '0' && c <= '9')
                |> String.of_seq
              in
              match int_of_string_opt digits with
              | Some kb -> Some (kb * 1024)
              | None -> None
            else scan ()
      in
      let r = scan () in
      close_in ic;
      r
