(** Real-transport execution of protocol values.

    The protocols in this repository are transport-agnostic values of type
    ['a Net.Proto.t]. {!Net.Sim} executes them in a deterministic lock-step
    simulator (with adversaries and exact bit accounting); this module
    executes the {e same values} over an actual full mesh of Unix socket
    pairs, one POSIX thread per party, with framed length-prefixed messages —
    the shape of a production deployment.

    Scope: honest executions. The synchronous-round alignment comes from the
    framing (every party writes exactly one frame per peer per round, a
    receiver thread per connection drains frames into a mailbox, so rounds
    align and writers never deadlock); Byzantine behaviour and rushing
    adversaries are a simulator concern. All protocols in this repository
    terminate in the same round at every honest party, which is the
    precondition for a clean shutdown.

    Determinism: protocols are deterministic, so a [Net_unix.run] and a
    [Net.Sim.run] of the same protocol on the same inputs produce identical
    outputs — asserted by the cross-backend tests. The same holds
    session-for-session between {!run_sessions} and the engine's simulator
    backend ([Engine.run_sim]). *)

type stats = {
  bytes_sent : int;  (** Total payload bytes written by all parties. *)
  frames_sent : int;  (** Total frames, including explicit empty frames. *)
  rounds : int;  (** Maximum round count over parties. *)
}

val connect_with_retry :
  ?attempts:int ->
  ?timeout:float ->
  ?backoff:float ->
  Unix.sockaddr ->
  Unix.file_descr
(** Connect a fresh stream socket to [addr] without ever blocking
    indefinitely: each attempt is a nonblocking [connect] bounded by
    [timeout] seconds (default 1.0), retried up to [attempts] times
    (default 3) with exponential backoff starting at [backoff] seconds
    (default 0.05). Returns the connected socket in blocking mode. On
    failure every attempt's socket has been closed — no fd leaks — and the
    last attempt's [Unix.Unix_error] is re-raised (e.g. [ETIMEDOUT] for an
    unresponsive peer, [ECONNREFUSED]/[ENOENT] for an absent one). Raises
    [Invalid_argument] if [attempts < 1]. *)

val run :
  ?setup:[ `Plain | `Authenticated ] ->
  ?t:int ->
  ?telemetry:Telemetry.t ->
  n:int ->
  (Net.Ctx.t -> 'a Net.Proto.t) ->
  'a array * stats
(** [run ~n protocol] connects [n] parties over a socket mesh, runs
    [protocol ctx] on a thread per party, and returns their outputs in party
    order. [t] (default [(n-1)/3]) is the resilience parameter handed to the
    contexts, and [setup] (default [`Plain]) selects their constructor —
    [`Authenticated] admits t < n/2 for protocols on a cryptographic setup; no party actually misbehaves. [telemetry] attaches a recorder
    (session 0), using the same round conventions as [Net.Sim.run]: spans and
    probes are stamped with rounds completed, messages with the 1-based round
    they are sent in — so an honest simulator run and a socket run of the same
    protocol export identical span trees and timelines. Raises whatever a
    party's protocol raises, and [Failure] on transport-level protocol
    violations (frame from a wrong round, truncated stream). *)

(** {1 Session multiplexing}

    {!run_sessions} runs many independent protocol instances ({e sessions})
    among the same [n] parties over {e one} socket mesh: each engine round,
    each ordered pair of parties exchanges a single coalesced {!Wire.Frame}
    carrying every live session's message, so the per-frame transport cost is
    paid once per pair per round regardless of how many sessions are live.
    Sessions are admitted when their start round arrives and retire as they
    terminate; sessions admitted at different rounds run at independent round
    offsets inside the shared frames. *)

type multi_stats = {
  mx_rounds : int;  (** Engine rounds driven (max over parties). *)
  mx_frames : int;  (** Coalesced frames actually written. *)
  mx_naive_frames : int;
      (** Frames a frame-per-session transport would have written: one per
          live session per ordered pair per round. [mx_naive_frames -
          mx_frames] is the saving bought by coalescing (negative only when
          keep-alive rounds with no live session dominate). *)
  mx_frame_bytes : int;
      (** Encoded [Wire.Frame] bytes, excluding the u32 transport prefix —
          comparable across backends. *)
  mx_payload_bytes : int;  (** Raw session payload bytes inside the frames. *)
  mx_session_rounds : int array;
      (** Per session (input order): rounds the session consumed. *)
  mx_session_payload_bytes : int array;
      (** Per session: payload bytes sent, self-delivery excluded — matches
          the simulator's honest-bits accounting ([8 ×] these bytes). *)
  mx_session_msgs : int array;  (** Per session: non-empty messages sent. *)
}

val run_sessions :
  ?setup:[ `Plain | `Authenticated ] ->
  ?t:int ->
  ?telemetry:Telemetry.t ->
  ?domains:int ->
  n:int ->
  (int * int * (Net.Ctx.t -> 'a Net.Proto.t)) array ->
  'a array array * multi_stats
(** [run_sessions ~n sessions] runs every [(sid, start_round, protocol)]
    session over one shared mesh and returns [outputs] with
    [outputs.(k).(i)] the output of party [i] in session [k] (input order).
    Session ids must be distinct and non-negative; start rounds are engine
    rounds (0-based) and may leave idle gaps, during which empty keep-alive
    frames maintain round alignment. [telemetry] attaches a recorder: each
    session records under its [sid], spans and probes are stamped with
    session-local rounds completed, messages carry the engine round as their
    timeline round, and party 0 records the live-session count each engine
    round — mirroring [Engine.run_sim]'s conventions session-for-session.
    [domains] (default 1) advances each party's live sessions in parallel on
    the shared {!Pool} at every round barrier — the party threads themselves
    are systhreads of one domain, so this is where multi-session socket runs
    gain hardware parallelism; outputs, stats and telemetry are bit-identical
    to [domains:1]. Raises [Invalid_argument] on malformed session lists, and
    propagates party failures like {!run}. *)
