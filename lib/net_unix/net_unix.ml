(* One thread per party; one socketpair per unordered party pair; one
   receiver thread per connection end, draining frames into a mailbox.

   Because receivers always drain, a party's sends can only block on a peer
   whose receiver is alive, never on application backpressure — the classic
   all-write-then-all-read deadlock cannot occur.

   Two wire formats share this machinery:

   - single-session ({!run}):  round:u32  tag:u8(0|1)  [len:u32 payload]
   - multi-session ({!run_sessions}):  len:u32  body, where body is a
     [Wire.Frame] — varint round plus one (sid, payload) entry per session
     with traffic this round.

   In both, an explicit frame is sent every round even when the protocol(s)
   prescribe silence, which is what keeps rounds aligned without a barrier. *)

type stats = { bytes_sent : int; frames_sent : int; rounds : int }

(* ---- thread-safe mailbox of incoming frames, in round order ------------- *)

module Mailbox = struct
  type 'a t = {
    mutex : Mutex.t;
    nonempty : Condition.t;
    queue : (int * 'a) Queue.t;
    mutable closed : bool;
  }

  let create () =
    {
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      closed = false;
    }

  let push box frame =
    Mutex.lock box.mutex;
    Queue.push frame box.queue;
    Condition.signal box.nonempty;
    Mutex.unlock box.mutex

  let close box =
    Mutex.lock box.mutex;
    box.closed <- true;
    Condition.signal box.nonempty;
    Mutex.unlock box.mutex

  (* Blocking pop; checks the frame belongs to [round]. *)
  let take box ~round =
    Mutex.lock box.mutex;
    let rec wait () =
      if not (Queue.is_empty box.queue) then begin
        let r, payload = Queue.pop box.queue in
        Mutex.unlock box.mutex;
        if r <> round then
          failwith (Printf.sprintf "Net_unix: expected round %d, got %d" round r);
        payload
      end
      else if box.closed then begin
        Mutex.unlock box.mutex;
        failwith "Net_unix: connection closed mid-round"
      end
      else begin
        Condition.wait box.nonempty box.mutex;
        wait ()
      end
    in
    wait ()
end

(* ---- framing ------------------------------------------------------------- *)

let write_u32 oc v =
  output_char oc (Char.chr ((v lsr 24) land 0xff));
  output_char oc (Char.chr ((v lsr 16) land 0xff));
  output_char oc (Char.chr ((v lsr 8) land 0xff));
  output_char oc (Char.chr (v land 0xff))

let read_u32 ic =
  let a = input_byte ic in
  let b = input_byte ic in
  let c = input_byte ic in
  let d = input_byte ic in
  (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let write_frame oc ~round payload =
  write_u32 oc round;
  (match payload with
  | None -> output_char oc '\000'
  | Some body ->
      output_char oc '\001';
      write_u32 oc (String.length body);
      output_string oc body);
  flush oc

let read_frame ic =
  let round = read_u32 ic in
  match input_byte ic with
  | 0 -> (round, None)
  | 1 ->
      let len = read_u32 ic in
      let body = really_input_string ic len in
      (round, Some body)
  | tag -> failwith (Printf.sprintf "Net_unix: bad frame tag %d" tag)

(* Multi-session framing: u32 length prefix, then a Wire.Frame body. *)
let write_session_frame_bytes oc buf len =
  write_u32 oc len;
  output oc buf 0 len;
  flush oc

let read_session_frame ic =
  let len = read_u32 ic in
  (* Bound the declared length before allocating — a corrupted or hostile
     stream must not be able to trigger a near-4 GiB allocation. *)
  if len > Wire.Frame.max_frame_bytes then
    failwith
      (Printf.sprintf "Net_unix: frame length %d exceeds max %d" len
         Wire.Frame.max_frame_bytes);
  let body = really_input_string ic len in
  match Wire.Frame.decode body with
  | Some f -> (f.Wire.Frame.round, f.Wire.Frame.entries)
  | None -> failwith "Net_unix: undecodable session frame"

(* ---- shared mesh machinery ------------------------------------------------ *)

let ignore_sigpipe () =
  (* A peer that failed has shut its sockets down; writing to it must raise
     (EPIPE -> Sys_error) in the writing party, not kill the process. *)
  if Sys.os_type = "Unix" then
    try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()

(* Socket mesh: fds.(i).(j) is party i's endpoint towards party j. A
   partially built mesh is torn down before the error propagates — bring-up
   failure (fd exhaustion, typically) must not leak the pairs already
   created. *)
let make_mesh n =
  let fds = Array.make_matrix n n Unix.stdin in
  let created = ref [] in
  (try
     for i = 0 to n - 1 do
       for j = i + 1 to n - 1 do
         let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
         created := a :: b :: !created;
         fds.(i).(j) <- a;
         fds.(j).(i) <- b
       done
     done
   with e ->
     List.iter
       (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
       !created;
     raise e);
  fds

(* ---- client-side connect -------------------------------------------------- *)

(* Nonblocking connect with a deadline and exponential backoff between
   attempts. The blocking [Unix.connect] this replaces could hang for the
   kernel's full SYN timeout on an unresponsive peer; here every attempt is
   bounded by [timeout] and the socket is closed on {e every} error path —
   a failed bring-up leaks no fd. *)
let connect_with_retry ?(attempts = 3) ?(timeout = 1.0) ?(backoff = 0.05) addr =
  if attempts < 1 then invalid_arg "Net_unix.connect_with_retry: attempts < 1";
  let domain = Unix.domain_of_sockaddr addr in
  let rec attempt k last_err =
    if k >= attempts then
      match last_err with
      | Some e -> raise e
      | None -> failwith "Net_unix.connect_with_retry: no attempts made"
    else begin
      if k > 0 then Unix.sleepf (backoff *. (2.0 ** float_of_int (k - 1)));
      let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
      let fail e =
        (try Unix.close fd with Unix.Unix_error _ -> ());
        attempt (k + 1) (Some e)
      in
      Unix.set_nonblock fd;
      match Unix.connect fd addr with
      | () ->
          Unix.clear_nonblock fd;
          fd
      | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _)
        -> (
          (* Connection in flight: wait for writability, then read the
             outcome from SO_ERROR. *)
          match Unix.select [] [ fd ] [] timeout with
          | [], [], [] ->
              fail
                (Unix.Unix_error (Unix.ETIMEDOUT, "connect", ""))
          | _ -> (
              match Unix.getsockopt_error fd with
              | None ->
                  Unix.clear_nonblock fd;
                  fd
              | Some err -> fail (Unix.Unix_error (err, "connect", "")))
          | exception e -> fail e)
      | exception e -> fail e
    end
  in
  attempt 0 None

(* Receiver threads: one per directed connection, parameterized over the
   frame reader so both wire formats share the draining discipline. *)
let spawn_receivers ~n ~fds ~read mailboxes =
  let receivers = ref [] in
  for me = 0 to n - 1 do
    for peer = 0 to n - 1 do
      if peer <> me then begin
        let ic = Unix.in_channel_of_descr fds.(me).(peer) in
        let box = mailboxes.(me).(peer) in
        let thread =
          Thread.create
            (fun () ->
              try
                while true do
                  Mailbox.push box (read ic)
                done
              with End_of_file | Sys_error _ | Failure _ -> Mailbox.close box)
            ()
        in
        receivers := thread :: !receivers
      end
    done
  done;
  !receivers

(* Shut the mesh down. A plain close would not wake receiver threads blocked
   inside read(2); shutdown(2) delivers them EOF first. *)
let shutdown_mesh ~n fds =
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      List.iter
        (fun fd ->
          try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
        [ fds.(i).(j); fds.(j).(i) ]
    done
  done

let close_mesh ~n fds =
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ fds.(i).(j); fds.(j).(i) ]
    done
  done

(* Fail fast: shut down a failed party's connections so peers waiting on its
   frames fail with "connection closed" instead of deadlocking. *)
let shutdown_party ~n fds me =
  for j = 0 to n - 1 do
    if j <> me then
      try Unix.shutdown fds.(me).(j) Unix.SHUTDOWN_ALL
      with Unix.Unix_error _ -> ()
  done

(* ---- the single-session runner ------------------------------------------- *)

let ctx_maker = function
  | `Plain -> Net.Ctx.make
  | `Authenticated -> Net.Ctx.make_authenticated

let run ?(setup = `Plain) ?t ?telemetry ~n protocol =
  if n < 1 then invalid_arg "Net_unix.run: n < 1";
  ignore_sigpipe ();
  let t = match t with Some t -> t | None -> (n - 1) / 3 in
  let fds = make_mesh n in
  let mailboxes = Array.init n (fun _ -> Array.init n (fun _ -> Mailbox.create ())) in
  let bytes_sent = Atomic.make 0 in
  let frames_sent = Atomic.make 0 in
  let receivers = spawn_receivers ~n ~fds ~read:read_frame mailboxes in
  (* Party threads. *)
  let outputs = Array.make n None in
  let errors = Array.make n None in
  let rounds_of = Array.make n 0 in
  let party me () =
    let ocs =
      Array.init n (fun j ->
          if j = me then None else Some (Unix.out_channel_of_descr fds.(me).(j)))
    in
    (* [round] counts the party's completed rounds — the same session-local
       number the simulator's telemetry records, so the two backends produce
       identical span/probe rounds for the same protocol. *)
    let rec go state round =
      match state with
      | Net.Proto.Done v ->
          rounds_of.(me) <- round;
          (match telemetry with
          | Some tm -> Telemetry.finish tm ~session:0 ~party:me ~round
          | None -> ());
          v
      | Net.Proto.Push (l, rest) ->
          (match telemetry with
          | Some tm -> Telemetry.push tm ~session:0 ~party:me ~round ~label:l
          | None -> ());
          go rest round
      | Net.Proto.Pop rest ->
          (match telemetry with
          | Some tm -> Telemetry.pop tm ~session:0 ~party:me ~round
          | None -> ());
          go rest round
      | Net.Proto.Probe (key, value, rest) ->
          (match telemetry with
          | Some tm when Telemetry.capture_probes tm ->
              Telemetry.probe_event tm ~session:0 ~party:me ~round
                ~byzantine:false ~key ~value:(value ())
          | Some _ | None -> ());
          go rest round
      | Net.Proto.Step (out, k) ->
          let self = out me in
          Array.iteri
            (fun j oc ->
              match oc with
              | None -> ()
              | Some oc ->
                  let payload = out j in
                  write_frame oc ~round payload;
                  Atomic.incr frames_sent;
                  (match payload with
                  | Some body ->
                      ignore
                        (Atomic.fetch_and_add bytes_sent (String.length body));
                      (match telemetry with
                      | Some tm ->
                          Telemetry.message tm ~session:0 ~party:me
                            ~round:(round + 1) ~bytes:(String.length body)
                            ~byzantine:false ()
                      | None -> ())
                  | None -> ()))
            ocs;
          let inbox =
            Array.init n (fun j ->
                if j = me then self else Mailbox.take mailboxes.(me).(j) ~round)
          in
          go (k inbox) (round + 1)
    in
    match go (protocol (ctx_maker setup ~n ~t ~me)) 0 with
    | v -> outputs.(me) <- Some v
    | exception e ->
        errors.(me) <- Some e;
        shutdown_party ~n fds me
  in
  let threads = Array.init n (fun me -> Thread.create (party me) ()) in
  Array.iter Thread.join threads;
  shutdown_mesh ~n fds;
  List.iter Thread.join receivers;
  close_mesh ~n fds;
  Array.iter (function Some e -> raise e | None -> ()) errors;
  let outs =
    Array.map (function Some v -> v | None -> failwith "Net_unix: missing output") outputs
  in
  ( outs,
    {
      bytes_sent = Atomic.get bytes_sent;
      frames_sent = Atomic.get frames_sent;
      rounds = Array.fold_left max 0 rounds_of;
    } )

(* ---- the session-multiplexed runner --------------------------------------- *)

type multi_stats = {
  mx_rounds : int;
  mx_frames : int;
  mx_naive_frames : int;
  mx_frame_bytes : int;
  mx_payload_bytes : int;
  mx_session_rounds : int array;
  mx_session_payload_bytes : int array;
  mx_session_msgs : int array;
}

let run_sessions ?(setup = `Plain) ?t ?telemetry ?(domains = 1) ~n sessions =
  if n < 1 then invalid_arg "Net_unix.run_sessions: n < 1";
  if domains < 1 then invalid_arg "Net_unix.run_sessions: domains < 1";
  (* Party threads are systhreads of the main domain; pool workers are real
     domains, so the per-round session advance below genuinely parallelizes
     the protocol computation even though the parties themselves don't. *)
  let pool = if domains > 1 then Some (Pool.shared ()) else None in
  let count = Array.length sessions in
  if count = 0 then invalid_arg "Net_unix.run_sessions: no sessions";
  let seen = Hashtbl.create count in
  Array.iter
    (fun (sid, start, _) ->
      if sid < 0 then invalid_arg "Net_unix.run_sessions: negative sid";
      if start < 0 then invalid_arg "Net_unix.run_sessions: negative start_round";
      if Hashtbl.mem seen sid then
        invalid_arg "Net_unix.run_sessions: duplicate sid";
      Hashtbl.add seen sid ())
    sessions;
  ignore_sigpipe ();
  let t = match t with Some t -> t | None -> (n - 1) / 3 in
  (* Admission order: by start_round, input order within a round. Every party
     computes the same order, which fixes the entry order inside frames. *)
  let order =
    List.stable_sort
      (fun a b ->
        let _, sa, _ = sessions.(a) and _, sb, _ = sessions.(b) in
        compare sa sb)
      (List.init count (fun i -> i))
  in
  let fds = make_mesh n in
  let mailboxes = Array.init n (fun _ -> Array.init n (fun _ -> Mailbox.create ())) in
  let receivers = spawn_receivers ~n ~fds ~read:read_session_frame mailboxes in
  let frames = Atomic.make 0 in
  let naive_frames = Atomic.make 0 in
  let frame_bytes = Atomic.make 0 in
  let payload_bytes = Atomic.make 0 in
  let sess_payload = Array.init count (fun _ -> Atomic.make 0) in
  let sess_msgs = Array.init count (fun _ -> Atomic.make 0) in
  let sess_rounds = Array.make_matrix n count 0 in
  let rounds_of = Array.make n 0 in
  let outputs = Array.make_matrix count n None in
  let errors = Array.make n None in
  let party me () =
    let ocs =
      Array.init n (fun j ->
          if j = me then None else Some (Unix.out_channel_of_descr fds.(me).(j)))
    in
    (* Normalize label/probe nodes, feeding the telemetry recorder exactly as
       the simulator backends do: span/probe rounds are session-local rounds
       completed (sess_rounds), so cross-backend exports line up. *)
    let settle idx sid state =
      let rec go = function
        | Net.Proto.Push (l, rest) ->
            (match telemetry with
            | Some tm ->
                Telemetry.push tm ~session:sid ~party:me
                  ~round:sess_rounds.(me).(idx) ~label:l
            | None -> ());
            go rest
        | Net.Proto.Pop rest ->
            (match telemetry with
            | Some tm ->
                Telemetry.pop tm ~session:sid ~party:me
                  ~round:sess_rounds.(me).(idx)
            | None -> ());
            go rest
        | Net.Proto.Probe (key, value, rest) ->
            (match telemetry with
            | Some tm when Telemetry.capture_probes tm ->
                Telemetry.probe_event tm ~session:sid ~party:me
                  ~round:sess_rounds.(me).(idx) ~byzantine:false ~key
                  ~value:(value ())
            | Some _ | None -> ());
            go rest
        | (Net.Proto.Done _ | Net.Proto.Step _) as s -> s
      in
      go state
    in
    let pending = ref order in
    let live = ref [] in
    (* (index, sid, state ref), admission order; states are always [Step]. *)
    let round = ref 0 in
    (* Grow-only per-party scratch for outbound frames: each peer's frame is
       sized with [encoded_size] and encoded in place, so the steady-state
       send path allocates no frame strings. *)
    let out_scratch = ref (Bytes.create 256) in
    while !pending <> [] || !live <> [] do
      (* Admit sessions whose start round has arrived. *)
      let rec admit () =
        match !pending with
        | idx :: rest when (let _, s, _ = sessions.(idx) in s <= !round) ->
            pending := rest;
            let sid, _, protocol = sessions.(idx) in
            (match settle idx sid (protocol (ctx_maker setup ~n ~t ~me)) with
            | Net.Proto.Done v ->
                outputs.(idx).(me) <- Some v;
                (match telemetry with
                | Some tm -> Telemetry.finish tm ~session:sid ~party:me ~round:0
                | None -> ())
            | st -> live := !live @ [ (idx, sid, ref st) ]);
            admit ()
        | _ -> ()
      in
      admit ();
      let nlive = List.length !live in
      (* Engine-round timeline: party 0 records on everyone's behalf (the
         count is identical at every party in an honest lock-step run). *)
      (match telemetry with
      | Some tm when me = 0 -> Telemetry.live_sessions tm ~round:!round ~live:nlive
      | Some _ | None -> ());
      (* One coalesced frame per peer carries every live session's message. *)
      Array.iteri
        (fun j oc ->
          match oc with
          | None -> ()
          | Some oc ->
              let entries =
                List.filter_map
                  (fun (idx, sid, st) ->
                    match !st with
                    | Net.Proto.Step (out, _) -> (
                        match out j with
                        | Some m ->
                            let len = String.length m in
                            ignore (Atomic.fetch_and_add sess_payload.(idx) len);
                            Atomic.incr sess_msgs.(idx);
                            ignore (Atomic.fetch_and_add payload_bytes len);
                            (match telemetry with
                            | Some tm ->
                                Telemetry.message tm ~session:sid ~party:me
                                  ~round:(sess_rounds.(me).(idx) + 1)
                                  ~timeline_round:!round ~bytes:len
                                  ~byzantine:false ()
                            | None -> ());
                            Some (sid, m)
                        | None -> None)
                    | _ -> None)
                  !live
              in
              let frame = { Wire.Frame.round = !round; entries } in
              let len = Wire.Frame.encoded_size frame in
              if Bytes.length !out_scratch < len then
                out_scratch :=
                  Bytes.create (max len (2 * Bytes.length !out_scratch));
              ignore (Wire.Frame.encode_into frame !out_scratch 0 : int);
              write_session_frame_bytes oc !out_scratch len;
              Atomic.incr frames;
              ignore (Atomic.fetch_and_add frame_bytes len);
              ignore (Atomic.fetch_and_add naive_frames nlive))
        ocs;
      (* Self-delivery slots, captured before anything advances. *)
      let selfs =
        List.map
          (fun (_, sid, st) ->
            match !st with
            | Net.Proto.Step (out, _) -> (sid, out me)
            | _ -> (sid, None))
          !live
      in
      (* One frame per peer; sessions absent from a bundle were silent. *)
      let bundles =
        Array.init n (fun j ->
            if j = me then [] else Mailbox.take mailboxes.(me).(j) ~round:!round)
      in
      (* Deliver each live session's inbox slice and advance it. Sessions
         are independent here — each advance touches only its own state ref,
         its own output/rounds slots and its own (sid, me) telemetry bucket,
         and reads the immutable [selfs]/[bundles] — so the loop shards
         across the pool with a bit-identical outcome (liveness is collected
         by position afterwards). *)
      let live_arr = Array.of_list !live in
      let keep = Array.make (Array.length live_arr) false in
      let advance li =
        let idx, sid, st = live_arr.(li) in
        match !st with
        | Net.Proto.Step (_, k) ->
            let inbox =
              Array.init n (fun s ->
                  if s = me then List.assoc sid selfs
                  else List.assoc_opt sid bundles.(s))
            in
            sess_rounds.(me).(idx) <- sess_rounds.(me).(idx) + 1;
            (match settle idx sid (k inbox) with
            | Net.Proto.Done v ->
                outputs.(idx).(me) <- Some v;
                (match telemetry with
                | Some tm ->
                    Telemetry.finish tm ~session:sid ~party:me
                      ~round:sess_rounds.(me).(idx)
                | None -> ())
            | st' ->
                st := st';
                keep.(li) <- true)
        | _ -> ()
      in
      (match pool with
      | Some pool ->
          Pool.parallel_for ~domains pool ~n:(Array.length live_arr) advance
      | None ->
          for li = 0 to Array.length live_arr - 1 do
            advance li
          done);
      let kept = ref [] in
      for li = Array.length live_arr - 1 downto 0 do
        if keep.(li) then kept := live_arr.(li) :: !kept
      done;
      live := !kept;
      incr round
    done;
    rounds_of.(me) <- !round
  in
  let party me () =
    match party me () with
    | () -> ()
    | exception e ->
        errors.(me) <- Some e;
        shutdown_party ~n fds me
  in
  let threads = Array.init n (fun me -> Thread.create (party me) ()) in
  Array.iter Thread.join threads;
  shutdown_mesh ~n fds;
  List.iter Thread.join receivers;
  close_mesh ~n fds;
  Array.iter (function Some e -> raise e | None -> ()) errors;
  let outs =
    Array.map
      (Array.map (function
        | Some v -> v
        | None -> failwith "Net_unix: missing session output"))
      outputs
  in
  ( outs,
    {
      mx_rounds = Array.fold_left max 0 rounds_of;
      mx_frames = Atomic.get frames;
      mx_naive_frames = Atomic.get naive_frames;
      mx_frame_bytes = Atomic.get frame_bytes;
      mx_payload_bytes = Atomic.get payload_bytes;
      mx_session_rounds =
        Array.init count (fun idx ->
            let m = ref 0 in
            for me = 0 to n - 1 do
              m := max !m sess_rounds.(me).(idx)
            done;
            !m);
      mx_session_payload_bytes = Array.map Atomic.get sess_payload;
      mx_session_msgs = Array.map Atomic.get sess_msgs;
    } )
