(* Systematic RS over GF(2^16) with evaluation points 0..n-1, matrix form.

   Same framing as [Reed_solomon_ref] (32-bit big-endian length prefix, zero
   padding to a multiple of 2k bytes, row-major 16-bit symbols) and
   bit-identical codewords — the differential suite in test_reed_solomon
   enforces this. The speed comes from hoisting all polynomial work out of
   the per-stripe loop:

   - [encode]: a per-(n, k) context holds the log-domain Lagrange *encoding
     matrix* — row i-k lists log L_j(i) for each parity point i — computed
     once and memoized process-wide, so each parity symbol is a k-term
     table-driven dot product ({!Gf65536.dot}) instead of a barycentric
     evaluation. Systematic symbols are straight copies.

   - [decode]: the interpolation matrix for the selected share set (log
     L_j(col) over the share abscissae, for each message column) is computed
     once per call, then reused across every stripe. *)

module Gf = Gf65536

let header_bytes = 4

let codeword_bytes ~k ~msg_bytes =
  let framed = header_bytes + msg_bytes in
  let stripes = (framed + (2 * k) - 1) / (2 * k) in
  2 * stripes

let check_params ~n ~k =
  if k < 1 || n < k || n >= 65536 then invalid_arg "Reed_solomon: bad (n, k)"

let inverse_weights xs k =
  Array.init k (fun j ->
      let prod = ref Gf.one in
      for m = 0 to k - 1 do
        if m <> j then prod := Gf.mul !prod (Gf.sub xs.(j) xs.(m))
      done;
      Gf.inv !prod)

(* Write log L_j(x) for j < k into [row.(pos + j)], where L_j is the Lagrange
   basis over the nodes [xs] (with precomputed inverse weights [ws]); -1
   encodes the zero coefficient. At a node, the row is a unit vector. *)
let coeff_logs_at ~xs ~ws ~k x row pos =
  let direct = ref (-1) in
  for j = 0 to k - 1 do
    if xs.(j) = x then direct := j
  done;
  if !direct >= 0 then begin
    Array.fill row pos k (-1);
    row.(pos + !direct) <- 0
  end
  else begin
    let full = ref Gf.one in
    for m = 0 to k - 1 do
      full := Gf.mul !full (Gf.sub x xs.(m))
    done;
    for j = 0 to k - 1 do
      let c = Gf.mul ws.(j) (Gf.div !full (Gf.sub x xs.(j))) in
      row.(pos + j) <- (if c = 0 then -1 else Gf.log c)
    done
  end

type ctx = {
  ctx_n : int;
  ctx_k : int;
  (* enc_logs.(((i - k) * k) + j) = log L_j(i) for parity point i in [k, n). *)
  enc_logs : int array;
}

let make_ctx ~n ~k =
  let xs = Array.init k (fun j -> j) in
  let ws = inverse_weights xs k in
  let enc_logs = Array.make ((n - k) * k) (-1) in
  for i = k to n - 1 do
    coeff_logs_at ~xs ~ws ~k i enc_logs ((i - k) * k)
  done;
  { ctx_n = n; ctx_k = k; enc_logs }

(* Process-wide (n, k) -> ctx memo. Lock-free CAS on an immutable list: a
   losing race recomputes an identical context, which is harmless — contexts
   are deterministic functions of (n, k). *)
let memo : ((int * int) * ctx) list Atomic.t = Atomic.make []

let rec ctx ~n ~k =
  check_params ~n ~k;
  let cached = Atomic.get memo in
  match List.assoc_opt (n, k) cached with
  | Some c -> c
  | None ->
      let c = make_ctx ~n ~k in
      if Atomic.compare_and_set memo cached (((n, k), c) :: cached) then c
      else ctx ~n ~k

let put_symbol buf pos v =
  Bytes.unsafe_set buf pos (Char.unsafe_chr ((v lsr 8) land 0xff));
  Bytes.unsafe_set buf (pos + 1) (Char.unsafe_chr (v land 0xff))

let get_symbol buf pos =
  (Char.code (Bytes.unsafe_get buf pos) lsl 8)
  lor Char.code (Bytes.unsafe_get buf (pos + 1))

let encode_with c msg =
  let n = c.ctx_n and k = c.ctx_k in
  let msg_bytes = String.length msg in
  let cw_bytes = codeword_bytes ~k ~msg_bytes in
  let stripes = cw_bytes / 2 in
  (* Framed + padded message, laid out exactly as the reference reads it:
     symbol (stripe r, col j) at byte 2 * (r * k + j). *)
  let framed = Bytes.make (2 * stripes * k) '\000' in
  Bytes.set framed 0 (Char.chr ((msg_bytes lsr 24) land 0xff));
  Bytes.set framed 1 (Char.chr ((msg_bytes lsr 16) land 0xff));
  Bytes.set framed 2 (Char.chr ((msg_bytes lsr 8) land 0xff));
  Bytes.set framed 3 (Char.chr (msg_bytes land 0xff));
  Bytes.blit_string msg 0 framed header_bytes msg_bytes;
  let out = Array.init n (fun _ -> Bytes.create cw_bytes) in
  let ys = Array.make k 0 in
  for r = 0 to stripes - 1 do
    let base = 2 * r * k in
    for j = 0 to k - 1 do
      ys.(j) <- get_symbol framed (base + (2 * j));
      put_symbol out.(j) (2 * r) ys.(j)
    done;
    for i = k to n - 1 do
      put_symbol out.(i) (2 * r)
        (Gf.dot ~coeff_logs:c.enc_logs ~pos:((i - k) * k) ~ys ~k)
    done
  done;
  Array.map Bytes.unsafe_to_string out

let encode ~n ~k msg = encode_with (ctx ~n ~k) msg

let decode_with c shares =
  let n = c.ctx_n and k = c.ctx_k in
  (* Keep the first share per distinct valid index, up to k of them. *)
  let seen = Hashtbl.create 16 in
  let selected =
    List.filter
      (fun (i, _) ->
        if i < 0 || i >= n || Hashtbl.mem seen i then false
        else begin
          Hashtbl.add seen i ();
          Hashtbl.length seen <= k
        end)
      shares
  in
  if List.length selected < k then Error "too few distinct shares"
  else
    let selected = Array.of_list selected in
    let cw_bytes = String.length (snd selected.(0)) in
    if cw_bytes = 0 || cw_bytes mod 2 <> 0 then Error "bad codeword length"
    else if Array.exists (fun (_, s) -> String.length s <> cw_bytes) selected
    then Error "inconsistent codeword lengths"
    else begin
      let stripes = cw_bytes / 2 in
      let xs = Array.map fst selected in
      let ws = inverse_weights xs k in
      (* Interpolation matrix for this share set: row col lists log L_j(col)
         over the share abscissae, computed once for all stripes. *)
      let dec_logs = Array.make (k * k) (-1) in
      for col = 0 to k - 1 do
        coeff_logs_at ~xs ~ws ~k col dec_logs (col * k)
      done;
      let cws = Array.map snd selected in
      let ys = Array.make k 0 in
      let framed = Bytes.create (2 * stripes * k) in
      for r = 0 to stripes - 1 do
        for j = 0 to k - 1 do
          ys.(j) <- get_symbol (Bytes.unsafe_of_string cws.(j)) (2 * r)
        done;
        for col = 0 to k - 1 do
          put_symbol framed
            (2 * ((r * k) + col))
            (Gf.dot ~coeff_logs:dec_logs ~pos:(col * k) ~ys ~k)
        done
      done;
      if Bytes.length framed < header_bytes then Error "short frame"
      else
        let len =
          (Char.code (Bytes.get framed 0) lsl 24)
          lor (Char.code (Bytes.get framed 1) lsl 16)
          lor (Char.code (Bytes.get framed 2) lsl 8)
          lor Char.code (Bytes.get framed 3)
        in
        if len > Bytes.length framed - header_bytes then Error "bad length header"
        else Ok (Bytes.sub_string framed header_bytes len)
    end

let decode ~n ~k shares = decode_with (ctx ~n ~k) shares
