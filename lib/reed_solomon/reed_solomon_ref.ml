(* Reference implementation of the systematic RS codec: full barycentric
   Lagrange evaluation per output symbol. Kept verbatim from the seed for
   differential testing against the matrix-form codec in [Reed_solomon],
   which must be bit-identical to it (same framing, same wire bytes).

   Framing: the message is prefixed with its 32-bit big-endian byte length,
   zero-padded to a multiple of 2k bytes, and viewed as [stripes] rows of k
   16-bit symbols. Row r defines the unique polynomial p_r of degree < k with
   p_r(j) = symbol j of row r for j < k; codeword i is the column of
   evaluations (p_0(i), ..., p_{stripes-1}(i)) packed big-endian. *)

module Gf = Gf65536

let header_bytes = 4

let codeword_bytes ~k ~msg_bytes =
  let framed = header_bytes + msg_bytes in
  let stripes = (framed + (2 * k) - 1) / (2 * k) in
  2 * stripes

let check_params ~n ~k =
  if k < 1 || n < k || n >= 65536 then invalid_arg "Reed_solomon: bad (n, k)"

(* Symbol [r] of the framed+padded message for a given column [j]. *)
let framed_symbol msg ~stripe ~col ~k =
  let byte idx =
    if idx < header_bytes then (String.length msg lsr (8 * (3 - idx))) land 0xff
    else
      let i = idx - header_bytes in
      if i < String.length msg then Char.code msg.[i] else 0
  in
  let pos = 2 * ((stripe * k) + col) in
  (byte pos lsl 8) lor byte (pos + 1)

(* Barycentric-style Lagrange evaluation: given k points (xs.(j), ys.(j)) with
   distinct xs, evaluate the interpolating polynomial at [x]. [ws] are the
   precomputed inverse weights 1 / prod_{m<>j} (xs.(j) - xs.(m)). *)
let lagrange_eval ~xs ~ws ~ys ~k x =
  let direct = ref (-1) in
  for j = 0 to k - 1 do
    if xs.(j) = x then direct := j
  done;
  if !direct >= 0 then ys.(!direct)
  else begin
    (* full = prod_m (x - xs.(m)); term_j = ys_j * ws_j * full / (x - xs_j) *)
    let full = ref Gf.one in
    for m = 0 to k - 1 do
      full := Gf.mul !full (Gf.sub x xs.(m))
    done;
    let acc = ref Gf.zero in
    for j = 0 to k - 1 do
      let denom = Gf.sub x xs.(j) in
      let term = Gf.mul ys.(j) (Gf.mul ws.(j) (Gf.div !full denom)) in
      acc := Gf.add !acc term
    done;
    !acc
  end

let inverse_weights xs k =
  Array.init k (fun j ->
      let prod = ref Gf.one in
      for m = 0 to k - 1 do
        if m <> j then prod := Gf.mul !prod (Gf.sub xs.(j) xs.(m))
      done;
      Gf.inv !prod)

let encode ~n ~k msg =
  check_params ~n ~k;
  let cw_bytes = codeword_bytes ~k ~msg_bytes:(String.length msg) in
  let stripes = cw_bytes / 2 in
  let xs = Array.init k (fun j -> j) in
  let ws = inverse_weights xs k in
  let out = Array.init n (fun _ -> Bytes.create cw_bytes) in
  let ys = Array.make k 0 in
  for r = 0 to stripes - 1 do
    for j = 0 to k - 1 do
      ys.(j) <- framed_symbol msg ~stripe:r ~col:j ~k
    done;
    for i = 0 to n - 1 do
      let v = if i < k then ys.(i) else lagrange_eval ~xs ~ws ~ys ~k i in
      Bytes.set out.(i) (2 * r) (Char.chr ((v lsr 8) land 0xff));
      Bytes.set out.(i) ((2 * r) + 1) (Char.chr (v land 0xff))
    done
  done;
  Array.map Bytes.unsafe_to_string out

let decode ~n ~k shares =
  check_params ~n ~k;
  (* Keep the first share per distinct valid index, up to k of them. *)
  let seen = Hashtbl.create 16 in
  let selected =
    List.filter
      (fun (i, _) ->
        if i < 0 || i >= n || Hashtbl.mem seen i then false
        else begin
          Hashtbl.add seen i ();
          Hashtbl.length seen <= k
        end)
      shares
  in
  if List.length selected < k then Error "too few distinct shares"
  else
    let selected = Array.of_list selected in
    let cw_bytes = String.length (snd selected.(0)) in
    if cw_bytes = 0 || cw_bytes mod 2 <> 0 then Error "bad codeword length"
    else if Array.exists (fun (_, s) -> String.length s <> cw_bytes) selected then
      Error "inconsistent codeword lengths"
    else begin
      let stripes = cw_bytes / 2 in
      let xs = Array.map fst selected in
      let ws = inverse_weights xs k in
      let ys = Array.make k 0 in
      (* Recover the framed message column by column. *)
      let framed = Bytes.create (2 * stripes * k) in
      for r = 0 to stripes - 1 do
        for j = 0 to k - 1 do
          let s = snd selected.(j) in
          ys.(j) <- (Char.code s.[2 * r] lsl 8) lor Char.code s.[(2 * r) + 1]
        done;
        for col = 0 to k - 1 do
          let v = lagrange_eval ~xs ~ws ~ys ~k col in
          Bytes.set framed (2 * ((r * k) + col)) (Char.chr ((v lsr 8) land 0xff));
          Bytes.set framed ((2 * ((r * k) + col)) + 1) (Char.chr (v land 0xff))
        done
      done;
      if Bytes.length framed < header_bytes then Error "short frame"
      else
        let len =
          (Char.code (Bytes.get framed 0) lsl 24)
          lor (Char.code (Bytes.get framed 1) lsl 16)
          lor (Char.code (Bytes.get framed 2) lsl 8)
          lor Char.code (Bytes.get framed 3)
        in
        if len > Bytes.length framed - header_bytes then Error "bad length header"
        else Ok (Bytes.sub_string framed header_bytes len)
    end
