(** Reed–Solomon erasure codes over GF(2^16) — the paper's RS.ENCODE /
    RS.DECODE with parameters (n, n−t) (Section 7).

    [encode ~n ~k v] splits a value [v] into [n] codewords of
    O(|v|/k) = O(|v|/n) bits each such that any [k] of them reconstruct [v]
    exactly. Encoding is systematic: the first [k] codewords carry the (length
    framed, zero padded) message symbols.

    This is the matrix-form codec: parity symbols are table-driven dot
    products against a precomputed log-domain Lagrange encoding matrix held
    in a per-(n, k) {!ctx} (memoized process-wide), and decoding reuses one
    interpolation matrix per share set across all stripes. Codewords are
    bit-identical to the reference path {!Reed_solomon_ref} — contexts are
    deterministic precomputation and never change wire bytes.

    Erasure decoding suffices for the protocol: corrupted codewords are
    detected and discarded via Merkle witnesses before decoding, exactly as in
    the paper, so [decode] receives only index-authenticated codewords. *)

type ctx
(** Precomputed codec context for one (n, k): the log-domain encoding matrix
    (one row of k coefficient logs per parity point). Immutable and safe to
    share across threads and sessions. *)

val ctx : n:int -> k:int -> ctx
(** Memoized: the first call per (n, k) builds the encoding matrix in
    O(nk + k²) field operations; later calls are a list lookup. Raises
    [Invalid_argument] unless [1 <= k <= n < 65536]. *)

val encode_with : ctx -> string -> string array
(** [encode] with an explicit context — the hot-path entry point for callers
    that encode repeatedly at one (n, k). *)

val decode_with : ctx -> (int * string) list -> (string, string) result
(** [decode] with an explicit context. *)

val encode : n:int -> k:int -> string -> string array
(** Raises [Invalid_argument] unless [1 <= k <= n < 65536]. All returned
    codewords have equal length [codeword_bytes ~k ~msg_bytes:(length v)].
    Equivalent to [encode_with (ctx ~n ~k)]. *)

val decode : n:int -> k:int -> (int * string) list -> (string, string) result
(** [decode ~n ~k shares] reconstructs the original value from at least [k]
    shares [(index, codeword)] with distinct indices in [0, n-1]. Extra shares
    beyond [k] are ignored (they are already authenticated). Returns
    [Error reason] on malformed input: too few shares, duplicate or
    out-of-range indices, inconsistent codeword lengths, or framing that does
    not parse (possible only if the encoder was byzantine). *)

val codeword_bytes : k:int -> msg_bytes:int -> int
(** Size of each codeword produced by [encode] for a [msg_bytes]-byte value. *)
