(** Reference Reed–Solomon codec (the seed implementation): per-symbol
    barycentric Lagrange evaluation, no precomputation. Slow but simple; the
    production codec in {!Reed_solomon} is differentially tested to be
    bit-identical to this module on every input. *)

val encode : n:int -> k:int -> string -> string array
val decode : n:int -> k:int -> (int * string) list -> (string, string) result
val codeword_bytes : k:int -> msg_bytes:int -> int
