(** Deterministic observability for protocol executions.

    A recorder of type {!t} is threaded (optionally) through the runtimes —
    [Net.Sim.run], [Net_unix.run]/[run_sessions] and the engine backends —
    which feed it four kinds of events:

    - {b spans}: every [Proto.Push]/[Proto.Pop] label scope becomes a node in
      a per-(session × party) span tree, carrying its enter/exit round
      (session-local, in rounds completed), the honest bits and messages sent
      while it was the {e innermost} open scope, and its child spans. A
      synthetic root span (labelled {!root_label}) catches traffic sent
      outside any scope, so summing span bits over a session reproduces
      [Metrics.honest_bits] {e exactly} — the ledger-equality invariant the
      tests assert on every backend.
    - {b round timelines}: per engine round, honest/byzantine bits and
      message counts plus (engine backends) the number of live sessions —
      streamed into per-round cells, never retaining message lists.
    - {b probes}: protocol-emitted data points ([Proto.probe]), e.g. the
      convex-hull convergence probes of FINDPREFIX and HIGHCOSTCA. Probe
      values are rendered lazily by the runtime (bare runs never pay), and
      occurrences of the same key at one party are numbered so curves can be
      aligned across parties.
    - {b meta}: free-form key/value pairs describing the run.

    Everything is exported as canonical JSONL ({!to_jsonl}: sorted buckets,
    pre-order spans — byte-identical across runs for a fixed seed) and as a
    compact text report ({!pp_report}: aggregated span tree, per-round
    heatmap, top-k labels, convergence curves).

    The recorder is thread-safe (one mutex; [Net_unix] runs one thread per
    party) and has no dependencies beyond the in-repo [Bigint]. *)

type t

val create : ?probes:bool -> unit -> t
(** [probes] (default [true]) controls whether this recorder captures probe
    data points. Spans and the round timeline are passive byte accounting
    and stay cheap regardless of protocol state size; probes render full
    protocol values ([Bigint.to_hex] of the candidate, so O(ℓ) work per
    probe) and can dominate instrumented wall-clock at large ℓ. Pass
    [~probes:false] for always-on production telemetry; the default keeps
    full fidelity for analysis runs. *)

val capture_probes : t -> bool
(** Whether this recorder captures probes. Runtimes check this {e before}
    forcing a probe's value thunk, so a [~probes:false] recorder skips the
    O(ℓ) value render entirely, not just its storage. *)

val root_label : string
(** Label of the synthetic per-(session × party) root span, ["(run)"]. *)

(** {1 Recording (called by runtimes, not by protocols)} *)

val set_meta : t -> string -> string -> unit
(** Attach a key/value describing the run; insertion order is preserved in
    the export. Re-setting a key overwrites its value in place. *)

val push : t -> session:int -> party:int -> round:int -> label:string -> unit
(** Open a child span of the innermost open span. [round] is the
    session-local number of rounds completed. *)

val pop : t -> session:int -> party:int -> round:int -> unit
(** Close the innermost open span; ignored if only the root is open. *)

val probe_event :
  t ->
  session:int ->
  party:int ->
  round:int ->
  byzantine:bool ->
  key:string ->
  value:string ->
  unit
(** Record a probe data point. Convergence analysis expects [value] to be
    an optionally-signed hexadecimal integer ([Bigint.to_hex]). *)

val message :
  t ->
  session:int ->
  party:int ->
  round:int ->
  ?timeline_round:int ->
  bytes:int ->
  byzantine:bool ->
  unit ->
  unit
(** Account one sent message ([8 × bytes] bits). Honest messages are
    attributed to the sender's innermost open span; byzantine ones only to
    the timeline. [timeline_round] (default [round]) is the engine round the
    traffic occupies — it differs from the session-local [round] when
    sessions are admitted late. *)

val live_sessions : t -> round:int -> live:int -> unit
(** Record the number of live sessions during an engine round. *)

val finish : t -> session:int -> party:int -> round:int -> unit
(** Mark a party's instance as finished after [round] session rounds: fixes
    the root span's exit round (and any span left open by a truncated run). *)

val merge : into:t -> t -> unit
(** Fold a shard recorder into [into], for parallel runs where each shard
    recorded a disjoint set of (session × party) buckets (the engine uses one
    shard per session): buckets are adopted wholesale — a bucket present in
    both recorders raises [Invalid_argument] — timeline cells are summed per
    round ([live] max-merges, and is normally recorded only by the
    coordinator), and [src] meta keys unknown to [into] are appended.
    Merging the shards of a deterministic run into the coordinator's recorder
    reproduces the sequential recorder byte for byte under {!to_jsonl}
    (buckets are re-sorted at export; cell sums commute). [src] must be
    quiescent and must not be used afterwards (its buckets are shared). *)

(** {1 Queries} *)

val sessions : t -> int list
(** Distinct session ids seen, ascending. *)

val honest_bits : t -> session:int -> int
(** Sum of span bits over the session's buckets — equals the session's
    [Metrics.honest_bits] (the ledger-equality invariant). *)

val honest_bits_total : t -> int

val label_bits : t -> (string * int) list
(** Honest bits aggregated by span label across all sessions and parties
    (the root span reported as ["(unlabeled)"], the same name
    [Metrics.no_label] uses); zero-bit labels dropped; sorted bits
    descending, then label ascending — directly comparable to
    [Metrics.labels]. *)

val probe_keys : t -> session:int -> string list
(** Distinct probe keys recorded in a session, ascending. *)

val convergence :
  t -> session:int -> key:string -> (Bigint.t * Bigint.t) list
(** Per occurrence index of [key] (ascending), the (min, max) hull of the
    values probed by {e honest} parties at that occurrence. The hull width
    is [max - min]; for the FINDPREFIX / HIGHCOSTCA probes the width curve
    is the measured Bounded Pre-Agreement convergence. Parties whose value
    does not parse as hex are skipped defensively. *)

(** {1 Structural views}

    Read-only walks over the recorded structure, in the same canonical order
    as {!to_jsonl} — the seam the [lib/obs] Chrome [trace_event] exporter is
    built on, so a trace rendered from a deterministic execution is itself
    byte-identical. Callbacks run under the recorder's mutex: they must not
    re-enter this module on the same recorder. *)

type span_view = {
  v_session : int;
  v_party : int;
  v_depth : int;  (** 0 for the synthetic root span. *)
  v_path : string;  (** Slash-joined label path from the root. *)
  v_label : string;
  v_enter : int;
  v_exit : int;  (** Open spans report the bucket's last recorded round. *)
  v_bits : int;  (** Exclusive of children. *)
  v_msgs : int;
}

val iter_span_views : t -> (span_view -> unit) -> unit
(** Every span of every (session, party) bucket: buckets sorted by
    (session, party), spans pre-order within each bucket — exactly the
    {!to_jsonl} span order. *)

type round_view = {
  r_round : int;
  r_bits : int;
  r_msgs : int;
  r_byz_bits : int;
  r_byz_msgs : int;
  r_live : int;  (** -1 when never recorded for this round. *)
}

val iter_round_views : t -> (round_view -> unit) -> unit
(** Every timeline cell, rounds ascending. *)

(** {1 Export} *)

val to_jsonl : t -> string
(** Canonical JSONL: [meta] lines (insertion order), [round] lines
    (ascending), [span] lines (buckets by (session, party), spans pre-order),
    [probe] lines (same bucket order, emission order), one [total] line.
    Byte-identical across runs of the same deterministic execution. *)

val pp_report : ?top:int -> Format.formatter -> t -> unit
(** Compact human-readable report: totals, aggregated span tree, per-round
    heatmap, top-[top] (default 10) labels, convergence curves. *)
