(* Deterministic observability: span trees, round timelines, probes.

   Recording is mutation of per-(session × party) buckets plus shared
   per-round timeline cells, all under one mutex (Net_unix runs one thread
   per party; the lock is uncontended in the simulator). Export walks the
   buckets in sorted key order and the spans in pre-order, so the JSONL is
   byte-identical across runs of the same deterministic execution no matter
   which thread recorded what. *)

let root_label = "(run)"
let unlabeled = "(unlabeled)"

type span = {
  sp_label : string;
  sp_enter : int;
  mutable sp_exit : int;  (* -1 while open *)
  mutable sp_bits : int;
  mutable sp_msgs : int;
  mutable sp_children_rev : span list;
}

let mk_span ~label ~enter =
  {
    sp_label = label;
    sp_enter = enter;
    sp_exit = -1;
    sp_bits = 0;
    sp_msgs = 0;
    sp_children_rev = [];
  }

type probe = {
  pr_key : string;
  pr_iter : int;  (* occurrence index of pr_key within this bucket *)
  pr_round : int;
  pr_byzantine : bool;
  pr_value : string;
}

type bucket = {
  b_session : int;
  b_party : int;
  b_root : span;
  mutable b_stack : span list;  (* open spans, innermost first; root last *)
  mutable b_probes_rev : probe list;
  b_probe_counts : (string, int) Hashtbl.t;
  mutable b_last_round : int;
}

type cell = {
  mutable c_bits : int;
  mutable c_msgs : int;
  mutable c_byz_bits : int;
  mutable c_byz_msgs : int;
  mutable c_live : int;  (* -1 when never recorded *)
}

type t = {
  mutex : Mutex.t;
  buckets : (int * int, bucket) Hashtbl.t;
  timeline : (int, cell) Hashtbl.t;
  mutable meta_rev : (string * string) list;
  (* One-entry caches for the per-message hot path: consecutive recordings
     overwhelmingly hit the same (session, party) bucket and the same round
     cell, and the cache check avoids both the tuple-key allocation and the
     hash lookup. Only read/written under the mutex. *)
  mutable cached_bucket : bucket option;
  mutable cached_round : int;
  mutable cached_cell : cell option;
  probes : bool;
}

let create ?(probes = true) () =
  {
    mutex = Mutex.create ();
    buckets = Hashtbl.create 64;
    timeline = Hashtbl.create 256;
    meta_rev = [];
    cached_bucket = None;
    cached_round = -1;
    cached_cell = None;
    probes;
  }

let capture_probes t = t.probes

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let set_meta t key value =
  locked t (fun () ->
      if List.mem_assoc key t.meta_rev then
        t.meta_rev <-
          List.map (fun (k, v) -> if k = key then (k, value) else (k, v)) t.meta_rev
      else t.meta_rev <- (key, value) :: t.meta_rev)

let bucket t ~session ~party =
  match t.cached_bucket with
  | Some b when b.b_session = session && b.b_party = party -> b
  | _ ->
      let b =
        match Hashtbl.find_opt t.buckets (session, party) with
        | Some b -> b
        | None ->
            let root = mk_span ~label:root_label ~enter:0 in
            let b =
              {
                b_session = session;
                b_party = party;
                b_root = root;
                b_stack = [ root ];
                b_probes_rev = [];
                b_probe_counts = Hashtbl.create 8;
                b_last_round = 0;
              }
            in
            Hashtbl.add t.buckets (session, party) b;
            b
      in
      t.cached_bucket <- Some b;
      b

let touch b round = if round > b.b_last_round then b.b_last_round <- round

let push t ~session ~party ~round ~label =
  locked t (fun () ->
      let b = bucket t ~session ~party in
      touch b round;
      let sp = mk_span ~label ~enter:round in
      (match b.b_stack with
      | parent :: _ -> parent.sp_children_rev <- sp :: parent.sp_children_rev
      | [] -> assert false);
      b.b_stack <- sp :: b.b_stack)

let pop t ~session ~party ~round =
  locked t (fun () ->
      let b = bucket t ~session ~party in
      touch b round;
      match b.b_stack with
      | sp :: (_ :: _ as rest) ->
          sp.sp_exit <- round;
          b.b_stack <- rest
      | _ -> () (* only the root is open: mirror the runtimes' lenient Pop *))

let probe_event t ~session ~party ~round ~byzantine ~key ~value =
  if not t.probes then ()
  else
    locked t (fun () ->
      let b = bucket t ~session ~party in
      touch b round;
      let iter = Option.value ~default:0 (Hashtbl.find_opt b.b_probe_counts key) in
      Hashtbl.replace b.b_probe_counts key (iter + 1);
      b.b_probes_rev <-
        { pr_key = key; pr_iter = iter; pr_round = round; pr_byzantine = byzantine;
          pr_value = value }
        :: b.b_probes_rev)

let cell t round =
  match t.cached_cell with
  | Some c when t.cached_round = round -> c
  | _ ->
      let c =
        match Hashtbl.find_opt t.timeline round with
        | Some c -> c
        | None ->
            let c =
              { c_bits = 0; c_msgs = 0; c_byz_bits = 0; c_byz_msgs = 0; c_live = -1 }
            in
            Hashtbl.add t.timeline round c;
            c
      in
      t.cached_round <- round;
      t.cached_cell <- Some c;
      c

(* The per-message recorder is the hot path (once per sent message); it locks
   directly — no Fun.protect closure — because its body cannot raise. *)
let message t ~session ~party ~round ?timeline_round ~bytes ~byzantine () =
  Mutex.lock t.mutex;
  let bits = 8 * bytes in
  let c =
    cell t (match timeline_round with Some r -> r | None -> round)
  in
  if byzantine then begin
    c.c_byz_bits <- c.c_byz_bits + bits;
    c.c_byz_msgs <- c.c_byz_msgs + 1
  end
  else begin
    c.c_bits <- c.c_bits + bits;
    c.c_msgs <- c.c_msgs + 1;
    let b = bucket t ~session ~party in
    touch b round;
    match b.b_stack with
    | sp :: _ ->
        sp.sp_bits <- sp.sp_bits + bits;
        sp.sp_msgs <- sp.sp_msgs + 1
    | [] -> ()
  end;
  Mutex.unlock t.mutex

let live_sessions t ~round ~live =
  locked t (fun () -> (cell t round).c_live <- live)

let finish t ~session ~party ~round =
  locked t (fun () ->
      let b = bucket t ~session ~party in
      touch b round;
      (* Close anything a truncated run left open; the root stays open and is
         given its exit round at export time (b_last_round). *)
      List.iter (fun sp -> if sp != b.b_root then sp.sp_exit <- round) b.b_stack;
      b.b_stack <- [ b.b_root ])

(* Shard merge for parallel runs. The engine gives each session its own shard
   recorder, so across the shards of one run every (session × party) bucket
   exists exactly once — adopting them wholesale preserves each bucket's
   event order, and the export's sorted-bucket walk does the rest. Timeline
   cells add (sums commute, so the result is independent of merge order);
   [live] counts are recorded once, by the coordinator, and max-merge so a
   shard that never saw them (-1) cannot erase them. *)
let merge ~into src =
  if into == src then invalid_arg "Telemetry.merge: merging a recorder into itself";
  let src_buckets, src_rounds, src_meta =
    locked src (fun () ->
        ( Hashtbl.fold (fun key b acc -> (key, b) :: acc) src.buckets [],
          Hashtbl.fold (fun r c acc -> (r, c) :: acc) src.timeline [],
          List.rev src.meta_rev ))
  in
  locked into (fun () ->
      List.iter
        (fun (key, b) ->
          if Hashtbl.mem into.buckets key then
            invalid_arg
              (Printf.sprintf
                 "Telemetry.merge: bucket (session %d, party %d) present in both"
                 b.b_session b.b_party);
          Hashtbl.add into.buckets key b)
        src_buckets;
      List.iter
        (fun (r, sc) ->
          let c = cell into r in
          c.c_bits <- c.c_bits + sc.c_bits;
          c.c_msgs <- c.c_msgs + sc.c_msgs;
          c.c_byz_bits <- c.c_byz_bits + sc.c_byz_bits;
          c.c_byz_msgs <- c.c_byz_msgs + sc.c_byz_msgs;
          if sc.c_live > c.c_live then c.c_live <- sc.c_live)
        src_rounds;
      List.iter
        (fun (k, v) ->
          if not (List.mem_assoc k into.meta_rev) then
            into.meta_rev <- (k, v) :: into.meta_rev)
        src_meta)

(* ---- queries -------------------------------------------------------------- *)

let sorted_buckets t =
  Hashtbl.fold (fun _ b acc -> b :: acc) t.buckets []
  |> List.sort (fun a b -> compare (a.b_session, a.b_party) (b.b_session, b.b_party))

let rec iter_spans f sp =
  f sp;
  List.iter (iter_spans f) (List.rev sp.sp_children_rev)

let sessions t =
  locked t (fun () ->
      List.sort_uniq compare
        (Hashtbl.fold (fun (s, _) _ acc -> s :: acc) t.buckets []))

let bucket_bits b =
  let total = ref 0 in
  iter_spans (fun sp -> total := !total + sp.sp_bits) b.b_root;
  !total

let honest_bits t ~session =
  locked t (fun () ->
      List.fold_left
        (fun acc b -> if b.b_session = session then acc + bucket_bits b else acc)
        0 (sorted_buckets t))

let honest_bits_total t =
  locked t (fun () ->
      List.fold_left (fun acc b -> acc + bucket_bits b) 0 (sorted_buckets t))

let label_bits t =
  locked t (fun () ->
      let table = Hashtbl.create 16 in
      List.iter
        (fun b ->
          iter_spans
            (fun sp ->
              if sp.sp_bits > 0 then begin
                let label =
                  if sp.sp_label = root_label then unlabeled else sp.sp_label
                in
                Hashtbl.replace table label
                  (sp.sp_bits
                  + Option.value ~default:0 (Hashtbl.find_opt table label))
              end)
            b.b_root)
        (sorted_buckets t);
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []
      |> List.sort (fun (la, a) (lb, b) ->
             if a <> b then compare b a else compare la lb))

let probe_keys t ~session =
  locked t (fun () ->
      let keys = Hashtbl.create 8 in
      List.iter
        (fun b ->
          if b.b_session = session then
            List.iter (fun p -> Hashtbl.replace keys p.pr_key ()) b.b_probes_rev)
        (sorted_buckets t);
      List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) keys []))

let convergence t ~session ~key =
  locked t (fun () ->
      let hulls = Hashtbl.create 32 in
      (* iter index -> (lo, hi) over honest parties' parsed values *)
      let max_iter = ref (-1) in
      List.iter
        (fun b ->
          if b.b_session = session then
            List.iter
              (fun p ->
                if p.pr_key = key && not p.pr_byzantine then
                  match Bigint.of_hex p.pr_value with
                  | v ->
                      if p.pr_iter > !max_iter then max_iter := p.pr_iter;
                      Hashtbl.replace hulls p.pr_iter
                        (match Hashtbl.find_opt hulls p.pr_iter with
                        | None -> (v, v)
                        | Some (lo, hi) -> (Bigint.min lo v, Bigint.max hi v))
                  | exception Invalid_argument _ -> ())
              b.b_probes_rev)
        (sorted_buckets t);
      List.filter_map
        (fun i -> Hashtbl.find_opt hulls i)
        (List.init (!max_iter + 1) Fun.id))

(* ---- structural views (the span -> trace_event bridge) -------------------- *)

type span_view = {
  v_session : int;
  v_party : int;
  v_depth : int;
  v_path : string;
  v_label : string;
  v_enter : int;
  v_exit : int;
  v_bits : int;
  v_msgs : int;
}

let iter_span_views t f =
  locked t (fun () ->
      List.iter
        (fun b ->
          let rec walk path depth sp =
            let path =
              if path = "" then sp.sp_label else path ^ "/" ^ sp.sp_label
            in
            let exit = if sp.sp_exit < 0 then b.b_last_round else sp.sp_exit in
            f
              {
                v_session = b.b_session;
                v_party = b.b_party;
                v_depth = depth;
                v_path = path;
                v_label = sp.sp_label;
                v_enter = sp.sp_enter;
                v_exit = exit;
                v_bits = sp.sp_bits;
                v_msgs = sp.sp_msgs;
              };
            List.iter (walk path (depth + 1)) (List.rev sp.sp_children_rev)
          in
          walk "" 0 b.b_root)
        (sorted_buckets t))

type round_view = {
  r_round : int;
  r_bits : int;
  r_msgs : int;
  r_byz_bits : int;
  r_byz_msgs : int;
  r_live : int;
}

let iter_round_views t f =
  locked t (fun () ->
      Hashtbl.fold (fun r c acc -> (r, c) :: acc) t.timeline []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
      |> List.iter (fun (r, c) ->
             f
               {
                 r_round = r;
                 r_bits = c.c_bits;
                 r_msgs = c.c_msgs;
                 r_byz_bits = c.c_byz_bits;
                 r_byz_msgs = c.c_byz_msgs;
                 r_live = c.c_live;
               }))

(* ---- JSONL export --------------------------------------------------------- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_jsonl t =
  locked t (fun () ->
      let buf = Buffer.create 4096 in
      let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
      List.iter
        (fun (k, v) ->
          line {|{"kind":"meta","key":"%s","value":"%s"}|} (escape k) (escape v))
        (List.rev t.meta_rev);
      let rounds =
        Hashtbl.fold (fun r c acc -> (r, c) :: acc) t.timeline []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      List.iter
        (fun (r, c) ->
          let live = if c.c_live >= 0 then Printf.sprintf {|,"live":%d|} c.c_live else "" in
          line {|{"kind":"round","round":%d,"bits":%d,"msgs":%d,"byz_bits":%d,"byz_msgs":%d%s}|}
            r c.c_bits c.c_msgs c.c_byz_bits c.c_byz_msgs live)
        rounds;
      let buckets = sorted_buckets t in
      let n_spans = ref 0 in
      List.iter
        (fun b ->
          let rec walk path depth sp =
            incr n_spans;
            let path = if path = "" then sp.sp_label else path ^ "/" ^ sp.sp_label in
            let exit = if sp.sp_exit < 0 then b.b_last_round else sp.sp_exit in
            line
              {|{"kind":"span","session":%d,"party":%d,"depth":%d,"path":"%s","label":"%s","enter":%d,"exit":%d,"bits":%d,"msgs":%d}|}
              b.b_session b.b_party depth (escape path) (escape sp.sp_label)
              sp.sp_enter exit sp.sp_bits sp.sp_msgs;
            List.iter (walk path (depth + 1)) (List.rev sp.sp_children_rev)
          in
          walk "" 0 b.b_root)
        buckets;
      let n_probes = ref 0 in
      List.iter
        (fun b ->
          List.iter
            (fun p ->
              incr n_probes;
              line
                {|{"kind":"probe","session":%d,"party":%d,"round":%d,"byzantine":%b,"key":"%s","iter":%d,"value":"%s"}|}
                b.b_session b.b_party p.pr_round p.pr_byzantine (escape p.pr_key)
                p.pr_iter (escape p.pr_value))
            (List.rev b.b_probes_rev))
        buckets;
      let bits = List.fold_left (fun acc b -> acc + bucket_bits b) 0 buckets in
      let msgs =
        List.fold_left
          (fun acc b ->
            let m = ref 0 in
            iter_spans (fun sp -> m := !m + sp.sp_msgs) b.b_root;
            acc + !m)
          0 buckets
      in
      let n_sessions =
        List.length (List.sort_uniq compare (List.map (fun b -> b.b_session) buckets))
      in
      line
        {|{"kind":"total","sessions":%d,"spans":%d,"probes":%d,"honest_bits":%d,"honest_msgs":%d}|}
        n_sessions !n_spans !n_probes bits msgs;
      Buffer.contents buf)

(* ---- text report ---------------------------------------------------------- *)

(* Aggregation of the per-bucket span trees by path: children keep first-seen
   order (buckets are visited in sorted order, so this is deterministic). *)
type agg = {
  mutable g_bits : int;
  mutable g_msgs : int;
  mutable g_min_enter : int;
  mutable g_max_exit : int;
  mutable g_buckets : int;
  mutable g_children_rev : (string * agg) list;
}

let mk_agg () =
  {
    g_bits = 0;
    g_msgs = 0;
    g_min_enter = max_int;
    g_max_exit = 0;
    g_buckets = 0;
    g_children_rev = [];
  }

let pp_report ?(top = 10) fmt t =
  let buckets = locked t (fun () -> sorted_buckets t) in
  let meta = locked t (fun () -> List.rev t.meta_rev) in
  let root_agg = mk_agg () in
  List.iter
    (fun b ->
      let rec merge agg sp =
        agg.g_bits <- agg.g_bits + sp.sp_bits;
        agg.g_msgs <- agg.g_msgs + sp.sp_msgs;
        agg.g_buckets <- agg.g_buckets + 1;
        if sp.sp_enter < agg.g_min_enter then agg.g_min_enter <- sp.sp_enter;
        let exit = if sp.sp_exit < 0 then b.b_last_round else sp.sp_exit in
        if exit > agg.g_max_exit then agg.g_max_exit <- exit;
        List.iter
          (fun child ->
            let child_agg =
              match List.assoc_opt child.sp_label agg.g_children_rev with
              | Some g -> g
              | None ->
                  let g = mk_agg () in
                  agg.g_children_rev <- (child.sp_label, g) :: agg.g_children_rev;
                  g
            in
            merge child_agg child)
          (List.rev sp.sp_children_rev)
      in
      merge root_agg b.b_root)
    buckets;
  let deep_bits g =
    (* inclusive of children, for the tree display *)
    let rec go g =
      g.g_bits + List.fold_left (fun acc (_, c) -> acc + go c) 0 g.g_children_rev
    in
    go g
  in
  let total_bits = deep_bits root_agg in
  let n_sessions =
    List.length (List.sort_uniq compare (List.map (fun b -> b.b_session) buckets))
  in
  let share b =
    if total_bits = 0 then 0. else 100. *. float_of_int b /. float_of_int total_bits
  in
  Format.fprintf fmt "telemetry report@.";
  List.iter (fun (k, v) -> Format.fprintf fmt "  %-12s %s@." (k ^ ":") v) meta;
  let total_msgs =
    List.fold_left
      (fun acc b ->
        let m = ref 0 in
        iter_spans (fun sp -> m := !m + sp.sp_msgs) b.b_root;
        acc + !m)
      0 buckets
  in
  Format.fprintf fmt "  sessions: %d   buckets: %d   honest bits: %d   msgs: %d@."
    n_sessions (List.length buckets) total_bits total_msgs;
  (* Span tree, inclusive bits per node. *)
  Format.fprintf fmt "@.span tree (aggregated; bits include children):@.";
  let rec pp_agg indent label g =
    let incl = deep_bits g in
    Format.fprintf fmt "  %s%-*s %12d bits %6.1f%% %8d msgs  r%d..%d@." indent
      (max 1 (30 - String.length indent))
      label incl (share incl) g.g_msgs
      (if g.g_min_enter = max_int then 0 else g.g_min_enter)
      g.g_max_exit;
    List.iter (fun (l, c) -> pp_agg (indent ^ "  ") l c) (List.rev g.g_children_rev)
  in
  pp_agg "" root_label root_agg;
  (* Round heatmap, bucketed to at most 48 bins. *)
  let rounds =
    locked t (fun () ->
        Hashtbl.fold (fun r c acc -> (r, c.c_bits, c.c_live) :: acc) t.timeline []
        |> List.sort (fun (a, _, _) (b, _, _) -> compare a b))
  in
  (match (rounds, List.rev rounds) with
  | (lo, _, _) :: _, (hi, _, _) :: _ ->
      let bins = 48 in
      let width = max 1 ((hi - lo + bins) / bins) in
      let sums = Array.make bins 0 in
      let lives = Array.make bins (-1) in
      List.iter
        (fun (r, bits, live) ->
          let i = min (bins - 1) ((r - lo) / width) in
          sums.(i) <- sums.(i) + bits;
          if live > lives.(i) then lives.(i) <- live)
        rounds;
      let peak = Array.fold_left max 1 sums in
      Format.fprintf fmt "@.round heatmap (honest bits per %d-round bin):@." width;
      Array.iteri
        (fun i s ->
          let r0 = lo + (i * width) in
          if r0 <= hi then begin
            let bar = String.make (s * 40 / peak) '#' in
            let live =
              if lives.(i) >= 0 then Printf.sprintf "  live %d" lives.(i) else ""
            in
            Format.fprintf fmt "  r%-6d %10d |%-40s|%s@." r0 s bar live
          end)
        sums
  | _ -> ());
  (* Top-k labels. *)
  let labels = label_bits t in
  if labels <> [] then begin
    Format.fprintf fmt "@.top labels (exclusive bits):@.";
    List.iteri
      (fun i (l, b) ->
        if i < top then
          Format.fprintf fmt "  %2d. %-28s %12d bits %6.1f%%@." (i + 1) l b (share b))
      labels
  end;
  (* Convergence curves. *)
  List.iter
    (fun session ->
      List.iter
        (fun key ->
          let curve = convergence t ~session ~key in
          if curve <> [] then begin
            let widths = List.map (fun (lo, hi) -> Bigint.sub hi lo) curve in
            let monotone =
              let rec ok = function
                | a :: (b :: _ as rest) -> Bigint.compare b a <= 0 && ok rest
                | _ -> true
              in
              ok widths
            in
            Format.fprintf fmt
              "@.probe %s (session %d): %d iterations, hull width %s -> %s%s@." key
              session (List.length widths)
              (Bigint.to_string (List.hd widths))
              (Bigint.to_string (List.nth widths (List.length widths - 1)))
              (if monotone then " (monotone non-increasing)" else "");
            List.iteri
              (fun i w ->
                if i < 16 then
                  Format.fprintf fmt "    iter %2d: width %s@." i (Bigint.to_string w)
                else if i = 16 then Format.fprintf fmt "    ...@.")
              widths
          end)
        (probe_keys t ~session))
    (sessions t)
