(** SHA-256 (FIPS 180-4), implemented from scratch — the paper's
    collision-resistant hash function [H_κ] with security parameter κ = 256.

    The toolchain ships no cryptography package; this pure-OCaml
    implementation is validated against the NIST test vectors in the test
    suite. It is used for Merkle-tree accumulators (Section 7) and nowhere
    needs to be fast — protocol messages are small. *)

val digest_size : int
(** 32 bytes (κ / 8). *)

val digest : string -> string
(** [digest msg] is the 32-byte (binary) SHA-256 digest of [msg]. *)

val hex : string -> string
(** [hex msg] is the lowercase hex rendering of [digest msg]. *)

val to_hex : string -> string
(** Hex-encodes an already-computed binary digest (or any string). *)

type ctx
(** Streaming interface. *)

val init : unit -> ctx
val feed : ctx -> string -> unit
val finalize : ctx -> string
(** May be called once; the context must not be reused afterwards (except via
    {!reset}). *)

(** {2 Allocation-free hot path}

    Merkle building hashes millions of tiny leaf/node records; these entry
    points let one context be reused across digests with zero per-digest
    allocation: [reset; feed_*; finalize_into]. *)

val reset : ctx -> unit
(** Return a context (finalized or not) to the pristine [init] state. *)

val feed_byte : ctx -> int -> unit
(** Feed one byte (the low 8 bits of the argument). *)

val feed_bytes : ctx -> Bytes.t -> pos:int -> len:int -> unit
(** Feed [len] bytes of [b] starting at [pos]. The range is validated; the
    bytes are copied before returning, so the caller may mutate [b] after.
    Raises [Invalid_argument] on an out-of-range slice. *)

val finalize_into : ctx -> Bytes.t -> pos:int -> unit
(** Write the 32-byte digest at [out.(pos)] without allocating. Same
    single-use contract as {!finalize}; {!reset} re-arms the context. *)
