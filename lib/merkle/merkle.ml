(* The leaf count is padded to the next power of two with a distinguished
   empty-leaf digest, so every authentication path has the same length
   ceil(log2 n) and verification needs only the index and the path.

   Hot path: levels are flat Bytes arrays of packed 32-byte digests and every
   hash goes through one reused streaming context ([reset] / [feed_*] /
   [finalize_into]), so a build allocates only the level buffers — no
   per-node "\x01" ^ l ^ r concatenations. Digests are bit-identical to the
   seed's string-concat formulation (same "\x00"/"\x01"/"\x02" domain
   separation), which the differential tests assert. *)

type root = string
type witness = { path : string list (* sibling hashes, leaf level first *) }

let dsize = Sha256.digest_size

type tree = {
  leaves : int; (* real leaf count *)
  padded : int; (* power of two *)
  levels : Bytes.t array;
      (* levels.(l) packs (padded lsr l) digests; the last holds the root *)
}

let empty_leaf = Sha256.digest "\x02"

(* Per-domain hashing context for [build]: a tree is built once per party
   per Π_ℓBA+ invocation, and the context (message schedule + block buffer)
   was the build's largest single allocation. DLS is per-domain, not
   per-thread, and the unix transport runs every party's protocol code on
   systhreads inside one domain — a preemption mid-hash would let two
   builds interleave on one context. The busy flag hands a concurrent
   caller a fresh context instead; [!busy]/[busy := true] has no safe
   point between the read and the write, so the check-out is atomic
   w.r.t. systhreads. *)
let build_ctx : (Sha256.ctx * bool ref) Domain.DLS.key =
  Domain.DLS.new_key (fun () -> (Sha256.init (), ref false))

let next_pow2 n =
  let rec go p = if p >= n then p else go (2 * p) in
  go 1

let build values =
  let leaves = Array.length values in
  if leaves = 0 then invalid_arg "Merkle.build: empty";
  let padded = next_pow2 leaves in
  let depth =
    let rec go d p = if p = 1 then d else go (d + 1) (p / 2) in
    go 0 padded
  in
  let levels = Array.init (depth + 1) (fun l -> Bytes.create ((padded lsr l) * dsize)) in
  let slot, busy = Domain.DLS.get build_ctx in
  let owned = not !busy in
  if owned then busy := true;
  let ctx = if owned then slot else Sha256.init () in
  let level0 = levels.(0) in
  for i = 0 to leaves - 1 do
    Sha256.reset ctx;
    Sha256.feed_byte ctx 0x00;
    Sha256.feed ctx values.(i);
    Sha256.finalize_into ctx level0 ~pos:(i * dsize)
  done;
  for i = leaves to padded - 1 do
    Bytes.blit_string empty_leaf 0 level0 (i * dsize) dsize
  done;
  for l = 1 to depth do
    let below = levels.(l - 1) and here = levels.(l) in
    for i = 0 to (padded lsr l) - 1 do
      Sha256.reset ctx;
      Sha256.feed_byte ctx 0x01;
      Sha256.feed_bytes ctx below ~pos:(2 * i * dsize) ~len:(2 * dsize);
      Sha256.finalize_into ctx here ~pos:(i * dsize)
    done
  done;
  if owned then busy := false;
  { leaves; padded; levels }

let root t = Bytes.to_string t.levels.(Array.length t.levels - 1)
let leaf_count t = t.leaves

let witness t i =
  if i < 0 || i >= t.leaves then invalid_arg "Merkle.witness";
  let rec go level idx acc =
    if level >= Array.length t.levels - 1 then List.rev acc
    else
      let sibling = Bytes.sub_string t.levels.(level) ((idx lxor 1) * dsize) dsize in
      go (level + 1) (idx / 2) (sibling :: acc)
  in
  { path = go 0 i [] }

(* Per-domain verification scratch: a verify runs once per harvested share
   on the Π_ℓBA+ hot path, and the fresh context + digest buffer were most
   of its allocation. Same systhread caveat and busy-flag discipline as
   [build_ctx] above — the unix transport verifies from many threads in
   one domain. *)
let verify_scratch : (Sha256.ctx * Bytes.t * bool ref) Domain.DLS.key =
  Domain.DLS.new_key (fun () -> (Sha256.init (), Bytes.create dsize, ref false))

let verify ~root ~index ~value w =
  if index < 0 then false
  else begin
    (* One context and one scratch digest, reused up the path. *)
    let slot_ctx, slot_h, busy = Domain.DLS.get verify_scratch in
    let owned = not !busy in
    if owned then busy := true;
    let ctx, h =
      if owned then (slot_ctx, slot_h) else (Sha256.init (), Bytes.create dsize)
    in
    Sha256.reset ctx;
    Sha256.feed_byte ctx 0x00;
    Sha256.feed ctx value;
    Sha256.finalize_into ctx h ~pos:0;
    let rec go idx = function
      | [] -> idx = 0 && String.equal (Bytes.unsafe_to_string h) root
      | sib :: rest ->
          if String.length sib <> dsize then false
          else begin
            Sha256.reset ctx;
            Sha256.feed_byte ctx 0x01;
            if idx land 1 = 0 then begin
              Sha256.feed_bytes ctx h ~pos:0 ~len:dsize;
              Sha256.feed ctx sib
            end
            else begin
              Sha256.feed ctx sib;
              Sha256.feed_bytes ctx h ~pos:0 ~len:dsize
            end;
            Sha256.finalize_into ctx h ~pos:0;
            go (idx / 2) rest
          end
    in
    let result = go index w.path in
    if owned then busy := false;
    result
  end

let witness_size_bits w = 8 * (1 + (Sha256.digest_size * List.length w.path))

let encode_witness w =
  (* depth byte followed by the concatenated 32-byte siblings. *)
  let depth = List.length w.path in
  if depth > 255 then invalid_arg "Merkle.encode_witness: too deep";
  String.concat "" (String.make 1 (Char.chr depth) :: w.path)

let decode_witness s =
  if String.length s < 1 then None
  else
    let depth = Char.code s.[0] in
    if String.length s <> 1 + (depth * Sha256.digest_size) then None
    else
      let path =
        List.init depth (fun i ->
            String.sub s (1 + (i * Sha256.digest_size)) Sha256.digest_size)
      in
      Some { path }
