(** Defensive binary serialization for protocol messages.

    Byzantine parties can put arbitrary bytes on the wire, so every decoder is
    total: it consumes from a cursor and returns [None] on any malformation
    (truncation, overlong fields, trailing garbage when using [decode_full]).
    Honest nodes treat undecodable messages as absent — the protocols in this
    repository are all designed to tolerate missing messages from corrupted
    senders.

    Encoders produce compact byte strings whose length is the basis of the
    communication-complexity accounting (8 bits per byte). *)

(** {1 Encoding} *)

type writer = Buffer.t -> unit

val encode : writer -> string
(** Runs the writer and returns the encoded bytes. The buffer behind it is a
    per-domain scratch (reused across calls; reentrant calls fall back to a
    fresh buffer), so only the returned string is allocated per message. *)

val varint_size : int -> int
(** Byte length of [w_varint v]'s output, without encoding. Raises
    [Invalid_argument] on negative input, like the writer. *)

val w_u8 : int -> writer
val w_u16 : int -> writer
(** Big-endian. Raises [Invalid_argument] when out of range. *)

val w_varint : int -> writer
(** Unsigned LEB128; non-negative ints only. *)

val w_bool : bool -> writer
val w_bytes : string -> writer
(** Varint length prefix followed by raw bytes. *)

val w_fixed : string -> writer
(** Raw bytes, no length prefix (caller knows the size). *)

val w_option : ('a -> writer) -> 'a option -> writer
val w_list : ('a -> writer) -> 'a list -> writer
val w_pair : ('a -> writer) -> ('b -> writer) -> 'a * 'b -> writer
val w_bits : Bitstring.t -> writer
(** Varint bit-length then packed bits. *)

val seq : writer list -> writer

(** {1 Decoding} *)

type cursor

type 'a reader = cursor -> 'a option

val decode_full : 'a reader -> string -> 'a option
(** Runs the reader and requires that it consumed the whole input. *)

val r_u8 : int reader
val r_u16 : int reader

val r_varint : int reader
(** Rejects encodings longer than 9 bytes (keeps values within [int]). *)

val r_bool : bool reader

val r_bytes : ?max:int -> unit -> string reader
(** [max] (default 16 MiB) bounds the declared length before any allocation —
    a byzantine sender must not be able to trigger huge allocations. *)

val r_fixed : int -> string reader
val r_option : 'a reader -> 'a option reader

val r_list : ?max:int -> 'a reader -> 'a list reader
(** [max] (default 65536) bounds the element count. *)

val r_pair : 'a reader -> 'b reader -> ('a * 'b) reader

val r_bits : ?max_bits:int -> unit -> Bitstring.t reader
(** Enforces canonical padding via {!Bitstring.of_bytes}. *)

val ( let* ) : 'a option -> ('a -> 'b option) -> 'b option
(** Option bind, exposed because hand-written message decoders read better
    with it. *)

(** {1 Session-multiplexed frames}

    The session engine ([Engine], [Net_unix.run_sessions]) coalesces all live
    sessions' round-[r] traffic between one ordered pair of parties into a
    single frame, so per-frame transport cost (syscall, header) is paid once
    per pair per round instead of once per session. A session that is silent
    towards the recipient this round is simply absent from the entry list —
    absence decodes as [None] in that session's inbox slot. *)

module Frame : sig
  type t = {
    round : int;  (** Engine round the frame belongs to (0-based). *)
    entries : (int * string) list;
        (** [(session id, payload)] for every session with traffic, in the
            engine's admission order. *)
  }

  val max_sessions : int
  (** Bound on entries per frame enforced by the decoder. *)

  val max_frame_bytes : int
  (** Bound on an encoded frame's size (16 MiB). [decode] rejects longer
      inputs, and the stream decoders (incremental and the socket readers)
      reject longer declared lengths {e before} allocating — a byzantine peer
      must not be able to trigger huge allocations. *)

  val encode : t -> string

  val encoded_size : t -> int
  (** Exact byte length of [encode f], computed without encoding — the
      engine's frame-byte ledger accounting is this, so the transport never
      has to materialize a frame just to measure it. *)

  val encode_into : t -> Bytes.t -> int -> int
  (** [encode_into f buf off] writes [encode f]'s bytes into [buf] starting
      at [off] and returns the offset one past the last byte written
      ([off + encoded_size f]). The caller guarantees capacity (size the
      buffer with {!encoded_size}); no intermediate buffer or string is
      allocated. Raises [Invalid_argument] on negative varint fields, like
      the writer-based encoders. *)

  val decode : string -> t option
  (** Total: [None] on any malformation, like every decoder in this module. *)

  type frame := t

  (** Incremental decoding of the length-prefixed frame stream the socket
      transports speak — [u32 big-endian body length] then the encoded frame,
      repeated. Resumable across arbitrary chunk boundaries (feed bytes as
      they arrive, in any split), and total: malformed input moves the
      decoder into a sticky error state, it never raises. *)
  module Decoder : sig
    type t

    val create : ?max_frame:int -> unit -> t
    (** [max_frame] (default {!max_frame_bytes}) bounds the declared body
        length accepted from the stream. *)

    val feed : t -> string -> unit
    (** Append a chunk of stream bytes. Ignored after an error. *)

    val feed_sub : t -> Bytes.t -> int -> int -> unit
    (** [feed_sub d src off len] appends [src[off .. off+len-1]] — {!feed}
        without the intermediate string, for callers that read into a
        reusable scratch buffer (the socket transports). The bytes are
        copied out before returning; [src] may be reused immediately.
        Raises [Invalid_argument] if the range is out of bounds. *)

    val next : t -> (frame option, string) result
    (** [Ok (Some frame)] — one complete frame decoded and consumed;
        [Ok None] — the buffered bytes are a (possibly empty) prefix of a
        valid frame, feed more; [Error msg] — the stream is malformed
        (oversized declared length or undecodable body); the error is sticky. *)

    val buffered : t -> int
    (** Bytes fed but not yet consumed by a decoded frame — nonzero at
        end-of-stream means the stream was truncated mid-frame. *)
  end
end
