type writer = Buffer.t -> unit

let encode w =
  let buf = Buffer.create 64 in
  w buf;
  Buffer.contents buf

let w_u8 v buf =
  if v < 0 || v > 0xff then invalid_arg "Wire.w_u8";
  Buffer.add_char buf (Char.chr v)

let w_u16 v buf =
  if v < 0 || v > 0xffff then invalid_arg "Wire.w_u16";
  Buffer.add_char buf (Char.chr (v lsr 8));
  Buffer.add_char buf (Char.chr (v land 0xff))

let w_varint v buf =
  if v < 0 then invalid_arg "Wire.w_varint";
  let rec go v =
    if v < 0x80 then Buffer.add_char buf (Char.chr v)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (v land 0x7f)));
      go (v lsr 7)
    end
  in
  go v

let w_bool b buf = Buffer.add_char buf (if b then '\001' else '\000')

let w_fixed s buf = Buffer.add_string buf s

let w_bytes s buf =
  w_varint (String.length s) buf;
  Buffer.add_string buf s

let w_option w = function
  | None -> fun buf -> Buffer.add_char buf '\000'
  | Some v ->
      fun buf ->
        Buffer.add_char buf '\001';
        w v buf

let w_list w items buf =
  w_varint (List.length items) buf;
  List.iter (fun item -> w item buf) items

let w_pair wa wb (a, b) buf =
  wa a buf;
  wb b buf

let w_bits bits buf =
  w_varint (Bitstring.length bits) buf;
  Buffer.add_string buf (Bitstring.to_bytes bits)

let seq ws buf = List.iter (fun w -> w buf) ws

(* Decoding ------------------------------------------------------------------ *)

type cursor = { src : string; mutable pos : int }

type 'a reader = cursor -> 'a option

let ( let* ) = Option.bind

let decode_full r s =
  let cur = { src = s; pos = 0 } in
  let* v = r cur in
  if cur.pos = String.length s then Some v else None

let take cur n =
  if n < 0 || cur.pos + n > String.length cur.src then None
  else begin
    let s = String.sub cur.src cur.pos n in
    cur.pos <- cur.pos + n;
    Some s
  end

let r_u8 cur =
  let* s = take cur 1 in
  Some (Char.code s.[0])

let r_u16 cur =
  let* s = take cur 2 in
  Some ((Char.code s.[0] lsl 8) lor Char.code s.[1])

let r_varint cur =
  let rec go acc shift count =
    if count > 9 then None
    else
      let* b = r_u8 cur in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if acc < 0 then None
      else if b land 0x80 = 0 then Some acc
      else go acc (shift + 7) (count + 1)
  in
  go 0 0 0

let r_bool cur =
  let* b = r_u8 cur in
  match b with 0 -> Some false | 1 -> Some true | _ -> None

let default_max_bytes = 16 * 1024 * 1024

let r_bytes ?(max = default_max_bytes) () cur =
  let* len = r_varint cur in
  if len > max then None else take cur len

let r_fixed n cur = take cur n

let r_option r cur =
  let* tag = r_u8 cur in
  match tag with
  | 0 -> Some None
  | 1 ->
      let* v = r cur in
      Some (Some v)
  | _ -> None

let r_list ?(max = 65536) r cur =
  let* count = r_varint cur in
  if count > max then None
  else
    let rec go acc i =
      if i = count then Some (List.rev acc)
      else
        let* v = r cur in
        go (v :: acc) (i + 1)
    in
    go [] 0

let r_pair ra rb cur =
  let* a = ra cur in
  let* b = rb cur in
  Some (a, b)

let r_bits ?(max_bits = 8 * default_max_bytes) () cur =
  let* len = r_varint cur in
  if len > max_bits then None
  else
    let* packed = take cur ((len + 7) / 8) in
    Bitstring.of_bytes ~len packed

(* Session-multiplexed frames ------------------------------------------------ *)

(* One coalesced frame carries every live session's round-[r] message between
   an ordered pair of parties:

     frame := varint round, varint count, count x (varint sid, bytes payload)

   Silent sessions are absent; the receiver fills their inbox slot with None. *)
module Frame = struct
  type t = { round : int; entries : (int * string) list }

  let max_sessions = 65536

  let encode { round; entries } =
    encode (seq [ w_varint round; w_list (w_pair w_varint w_bytes) entries ])

  let decode s =
    decode_full
      (fun cur ->
        let* round = r_varint cur in
        let* entries =
          r_list ~max:max_sessions (r_pair r_varint (r_bytes ())) cur
        in
        Some { round; entries })
      s
end
