type writer = Buffer.t -> unit

let encode w =
  let buf = Buffer.create 64 in
  w buf;
  Buffer.contents buf

let w_u8 v buf =
  if v < 0 || v > 0xff then invalid_arg "Wire.w_u8";
  Buffer.add_char buf (Char.chr v)

let w_u16 v buf =
  if v < 0 || v > 0xffff then invalid_arg "Wire.w_u16";
  Buffer.add_char buf (Char.chr (v lsr 8));
  Buffer.add_char buf (Char.chr (v land 0xff))

let w_varint v buf =
  if v < 0 then invalid_arg "Wire.w_varint";
  let rec go v =
    if v < 0x80 then Buffer.add_char buf (Char.chr v)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (v land 0x7f)));
      go (v lsr 7)
    end
  in
  go v

let w_bool b buf = Buffer.add_char buf (if b then '\001' else '\000')

let w_fixed s buf = Buffer.add_string buf s

let w_bytes s buf =
  w_varint (String.length s) buf;
  Buffer.add_string buf s

let w_option w = function
  | None -> fun buf -> Buffer.add_char buf '\000'
  | Some v ->
      fun buf ->
        Buffer.add_char buf '\001';
        w v buf

let w_list w items buf =
  w_varint (List.length items) buf;
  List.iter (fun item -> w item buf) items

let w_pair wa wb (a, b) buf =
  wa a buf;
  wb b buf

let w_bits bits buf =
  w_varint (Bitstring.length bits) buf;
  Buffer.add_string buf (Bitstring.to_bytes bits)

let seq ws buf = List.iter (fun w -> w buf) ws

(* Decoding ------------------------------------------------------------------ *)

type cursor = { src : string; mutable pos : int }

type 'a reader = cursor -> 'a option

let ( let* ) = Option.bind

let decode_full r s =
  let cur = { src = s; pos = 0 } in
  let* v = r cur in
  if cur.pos = String.length s then Some v else None

let take cur n =
  if n < 0 || cur.pos + n > String.length cur.src then None
  else begin
    let s = String.sub cur.src cur.pos n in
    cur.pos <- cur.pos + n;
    Some s
  end

let r_u8 cur =
  let* s = take cur 1 in
  Some (Char.code s.[0])

let r_u16 cur =
  let* s = take cur 2 in
  Some ((Char.code s.[0] lsl 8) lor Char.code s.[1])

let r_varint cur =
  let rec go acc shift count =
    if count > 9 then None
    else
      let* b = r_u8 cur in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if acc < 0 then None
      else if b land 0x80 = 0 then Some acc
      else go acc (shift + 7) (count + 1)
  in
  go 0 0 0

let r_bool cur =
  let* b = r_u8 cur in
  match b with 0 -> Some false | 1 -> Some true | _ -> None

let default_max_bytes = 16 * 1024 * 1024

let r_bytes ?(max = default_max_bytes) () cur =
  let* len = r_varint cur in
  if len > max then None else take cur len

let r_fixed n cur = take cur n

let r_option r cur =
  let* tag = r_u8 cur in
  match tag with
  | 0 -> Some None
  | 1 ->
      let* v = r cur in
      Some (Some v)
  | _ -> None

let r_list ?(max = 65536) r cur =
  let* count = r_varint cur in
  if count > max then None
  else
    let rec go acc i =
      if i = count then Some (List.rev acc)
      else
        let* v = r cur in
        go (v :: acc) (i + 1)
    in
    go [] 0

let r_pair ra rb cur =
  let* a = ra cur in
  let* b = rb cur in
  Some (a, b)

let r_bits ?(max_bits = 8 * default_max_bytes) () cur =
  let* len = r_varint cur in
  if len > max_bits then None
  else
    let* packed = take cur ((len + 7) / 8) in
    Bitstring.of_bytes ~len packed

(* Session-multiplexed frames ------------------------------------------------ *)

(* One coalesced frame carries every live session's round-[r] message between
   an ordered pair of parties:

     frame := varint round, varint count, count x (varint sid, bytes payload)

   Silent sessions are absent; the receiver fills their inbox slot with None. *)
module Frame = struct
  type t = { round : int; entries : (int * string) list }

  let max_sessions = 65536
  let max_frame_bytes = default_max_bytes

  let encode { round; entries } =
    encode (seq [ w_varint round; w_list (w_pair w_varint w_bytes) entries ])

  let decode s =
    if String.length s > max_frame_bytes then None
    else
      decode_full
        (fun cur ->
          let* round = r_varint cur in
          let* entries =
            r_list ~max:max_sessions (r_pair r_varint (r_bytes ())) cur
          in
          Some { round; entries })
        s

  (* Incremental decoding of the length-prefixed frame stream the socket
     transports speak: u32 big-endian body length, then the encoded frame.
     The decoder is resumable across arbitrary chunk boundaries and total —
     malformed input parks it in a sticky error state, it never raises. *)
  module Decoder = struct
    type state = Running | Failed of string

    type t = {
      max_frame : int;
      mutable buf : Bytes.t;  (* [lo, hi) holds the undecoded bytes *)
      mutable lo : int;
      mutable hi : int;
      mutable state : state;
    }

    let create ?(max_frame = max_frame_bytes) () =
      {
        max_frame;
        buf = Bytes.create 4096;
        lo = 0;
        hi = 0;
        state = Running;
      }

    let buffered d = d.hi - d.lo

    let feed d s =
      match d.state with
      | Failed _ -> ()
      | Running ->
          let len = String.length s in
          let need = buffered d + len in
          if Bytes.length d.buf - d.hi < len then begin
            (* Compact, growing only when the live region itself outgrows
               the buffer. *)
            let cap = max (Bytes.length d.buf) 64 in
            let cap = if need > cap then max need (2 * cap) else cap in
            let buf = if cap > Bytes.length d.buf then Bytes.create cap else d.buf in
            Bytes.blit d.buf d.lo buf 0 (buffered d);
            d.hi <- buffered d;
            d.lo <- 0;
            d.buf <- buf
          end;
          Bytes.blit_string s 0 d.buf d.hi len;
          d.hi <- d.hi + len

    let fail d msg =
      d.state <- Failed msg;
      Error msg

    (* [Ok (Some frame)] — one frame decoded and consumed; [Ok None] — the
       buffered bytes are a (possibly empty) prefix of a valid frame, feed
       more; [Error] — the stream is malformed (sticky). *)
    let next d =
      match d.state with
      | Failed msg -> Error msg
      | Running ->
          if buffered d < 4 then Ok None
          else begin
            let b i = Char.code (Bytes.get d.buf (d.lo + i)) in
            let len = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
            if len > d.max_frame then
              fail d
                (Printf.sprintf "frame length %d exceeds max %d" len d.max_frame)
            else if buffered d < 4 + len then Ok None
            else begin
              let body = Bytes.sub_string d.buf (d.lo + 4) len in
              d.lo <- d.lo + 4 + len;
              if d.lo = d.hi then begin
                d.lo <- 0;
                d.hi <- 0
              end;
              match decode body with
              | Some frame -> Ok (Some frame)
              | None -> fail d "undecodable frame body"
            end
          end
  end
end
