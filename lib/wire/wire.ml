type writer = Buffer.t -> unit

(* [encode] is called once per protocol message — the hottest allocation site
   in the codebase. A per-domain scratch buffer amortizes the Buffer (and its
   growth copies) across every message a domain ever encodes; the [busy] flag
   catches a writer that itself calls [encode] and falls back to a fresh
   buffer rather than clobbering the outer encoding. The output string is the
   only allocation that escapes. *)
let scratch : (Buffer.t * bool ref) Domain.DLS.key =
  Domain.DLS.new_key (fun () -> (Buffer.create 256, ref false))

(* Shrink the scratch back after an outsized message so one huge encoding
   doesn't pin megabytes in every domain for the rest of the process. *)
let scratch_keep = 1 lsl 16

let encode w =
  let buf, busy = Domain.DLS.get scratch in
  if !busy then begin
    let b = Buffer.create 64 in
    w b;
    Buffer.contents b
  end
  else begin
    busy := true;
    (* Hand-rolled [Fun.protect]: this site is hot enough that the protect
       closure pair shows up in the per-message allocation budget. *)
    match
      Buffer.clear buf;
      w buf
    with
    | () ->
        let s = Buffer.contents buf in
        if Buffer.length buf > scratch_keep then Buffer.reset buf;
        busy := false;
        s
    | exception e ->
        if Buffer.length buf > scratch_keep then Buffer.reset buf;
        busy := false;
        raise e
  end

let w_u8 v buf =
  if v < 0 || v > 0xff then invalid_arg "Wire.w_u8";
  Buffer.add_char buf (Char.chr v)

let w_u16 v buf =
  if v < 0 || v > 0xffff then invalid_arg "Wire.w_u16";
  Buffer.add_char buf (Char.chr (v lsr 8));
  Buffer.add_char buf (Char.chr (v land 0xff))

let w_varint v buf =
  if v < 0 then invalid_arg "Wire.w_varint";
  let rec go v =
    if v < 0x80 then Buffer.add_char buf (Char.chr v)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (v land 0x7f)));
      go (v lsr 7)
    end
  in
  go v

let varint_size v =
  if v < 0 then invalid_arg "Wire.varint_size";
  let rec go v n = if v < 0x80 then n else go (v lsr 7) (n + 1) in
  go v 1

let w_bool b buf = Buffer.add_char buf (if b then '\001' else '\000')

let w_fixed s buf = Buffer.add_string buf s

let w_bytes s buf =
  w_varint (String.length s) buf;
  Buffer.add_string buf s

let w_option w = function
  | None -> fun buf -> Buffer.add_char buf '\000'
  | Some v ->
      fun buf ->
        Buffer.add_char buf '\001';
        w v buf

let w_list w items buf =
  w_varint (List.length items) buf;
  List.iter (fun item -> w item buf) items

let w_pair wa wb (a, b) buf =
  wa a buf;
  wb b buf

let w_bits bits buf =
  w_varint (Bitstring.length bits) buf;
  Buffer.add_string buf (Bitstring.to_bytes bits)

let seq ws buf = List.iter (fun w -> w buf) ws

(* Decoding ------------------------------------------------------------------ *)

type cursor = { mutable src : string; mutable pos : int }

type 'a reader = cursor -> 'a option

let ( let* ) = Option.bind

(* One reusable cursor per domain: [decode_full] runs once per received
   message, and the per-call record was the last allocation left on the
   decode path. The [busy] flag covers the re-entrant case (a reader that
   itself calls [decode_full]) by falling back to a fresh cursor; [src] is
   cleared on exit so the scratch never retains a decoded message. *)
let cursor_scratch : (cursor * bool ref) Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ({ src = ""; pos = 0 }, ref false))

let decode_full r s =
  let cur, busy = Domain.DLS.get cursor_scratch in
  if !busy then begin
    let cur = { src = s; pos = 0 } in
    match r cur with
    | Some v when cur.pos = String.length s -> Some v
    | Some _ | None -> None
  end
  else begin
    busy := true;
    cur.src <- s;
    cur.pos <- 0;
    match r cur with
    | res ->
        let ok =
          match res with Some _ -> cur.pos = String.length s | None -> false
        in
        cur.src <- "";
        busy := false;
        if ok then res else None
    | exception e ->
        cur.src <- "";
        busy := false;
        raise e
  end

(* The primitive readers are written in direct style against the cursor:
   every decoded protocol message runs through them, and the natural
   [Option.bind]-per-byte formulation allocates a closure and an option per
   input byte — an order of magnitude more than the decoded values
   themselves. Only results that escape (payload strings, [Some] wrappers)
   are allocated here. *)

let take cur n =
  if n < 0 || cur.pos + n > String.length cur.src then None
  else begin
    let s = String.sub cur.src cur.pos n in
    cur.pos <- cur.pos + n;
    Some s
  end

let r_u8 cur =
  if cur.pos >= String.length cur.src then None
  else begin
    let b = Char.code (String.unsafe_get cur.src cur.pos) in
    cur.pos <- cur.pos + 1;
    Some b
  end

let r_u16 cur =
  if cur.pos + 2 > String.length cur.src then None
  else begin
    let hi = Char.code (String.unsafe_get cur.src cur.pos) in
    let lo = Char.code (String.unsafe_get cur.src (cur.pos + 1)) in
    cur.pos <- cur.pos + 2;
    Some ((hi lsl 8) lor lo)
  end

(* [-1] on malformed input — the int-returning shape keeps the per-varint
   cost at zero allocations; [r_varint] wraps the result for the reader
   interface. The loop is a top-level function: written as an inner [rec]
   it would capture the cursor and allocate a closure per varint. *)
let rec varint_loop cur limit acc shift count pos =
  if count > 9 || pos >= limit then -1
  else
    let b = Char.code (String.unsafe_get cur.src pos) in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if acc < 0 then -1
    else if b land 0x80 = 0 then begin
      cur.pos <- pos + 1;
      acc
    end
    else varint_loop cur limit acc (shift + 7) (count + 1) (pos + 1)

let varint_raw cur = varint_loop cur (String.length cur.src) 0 0 0 cur.pos

let r_varint cur =
  match varint_raw cur with -1 -> None | v -> Some v

let r_bool cur =
  if cur.pos >= String.length cur.src then None
  else
    match String.unsafe_get cur.src cur.pos with
    | '\000' ->
        cur.pos <- cur.pos + 1;
        Some false
    | '\001' ->
        cur.pos <- cur.pos + 1;
        Some true
    | _ -> None

let default_max_bytes = 16 * 1024 * 1024

let r_bytes ?(max = default_max_bytes) () cur =
  match varint_raw cur with
  | -1 -> None
  | len -> if len > max then None else take cur len

let r_fixed n cur = take cur n

let r_option r cur =
  if cur.pos >= String.length cur.src then None
  else
    match String.unsafe_get cur.src cur.pos with
    | '\000' ->
        cur.pos <- cur.pos + 1;
        Some None
    | '\001' -> (
        cur.pos <- cur.pos + 1;
        match r cur with None -> None | Some v -> Some (Some v))
    | _ -> None

let r_list ?(max = 65536) r cur =
  match varint_raw cur with
  | -1 -> None
  | count ->
      if count > max then None
      else
        let rec go acc i =
          if i = count then Some (List.rev acc)
          else
            match r cur with
            | None -> None
            | Some v -> go (v :: acc) (i + 1)
        in
        go [] 0

let r_pair ra rb cur =
  match ra cur with
  | None -> None
  | Some a -> (
      match rb cur with None -> None | Some b -> Some (a, b))

let r_bits ?(max_bits = 8 * default_max_bytes) () cur =
  match varint_raw cur with
  | -1 -> None
  | len ->
      if len > max_bits then None
      else (
        match take cur ((len + 7) / 8) with
        | None -> None
        | Some packed -> Bitstring.of_bytes ~len packed)

(* Bytes-side varint loop for the in-place frame parser, top-level for the
   same no-closure-per-varint reason as [varint_loop]. [-1] on malformed. *)
let rec varint_bytes_loop buf limit p acc shift count pos =
  if count > 9 || pos >= limit then -1
  else
    let b = Char.code (Bytes.unsafe_get buf pos) in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if acc < 0 then -1
    else if b land 0x80 = 0 then begin
      p := pos + 1;
      acc
    end
    else varint_bytes_loop buf limit p acc (shift + 7) (count + 1) (pos + 1)

(* Session-multiplexed frames ------------------------------------------------ *)

(* One coalesced frame carries every live session's round-[r] message between
   an ordered pair of parties:

     frame := varint round, varint count, count x (varint sid, bytes payload)

   Silent sessions are absent; the receiver fills their inbox slot with None. *)
module Frame = struct
  type t = { round : int; entries : (int * string) list }

  let max_sessions = 65536
  let max_frame_bytes = default_max_bytes

  let encode { round; entries } =
    encode (seq [ w_varint round; w_list (w_pair w_varint w_bytes) entries ])

  (* Exact byte length of [encode]'s output, computed without encoding — the
     engine accounts frame bytes from this, and [encode_into] callers size
     their buffers with it. Raises like the writers on negative fields. *)
  let encoded_size { round; entries } =
    List.fold_left
      (fun acc (sid, payload) ->
        let len = String.length payload in
        acc + varint_size sid + varint_size len + len)
      (varint_size round + varint_size (List.length entries))
      entries

  (* Top-level recursion: an inner [rec go] capturing [buf] would allocate a
     closure per varint written — three per frame entry. *)
  let rec put_varint buf pos v =
    if v < 0 then invalid_arg "Wire.w_varint";
    if v < 0x80 then begin
      Bytes.set buf pos (Char.chr v);
      pos + 1
    end
    else begin
      Bytes.set buf pos (Char.chr (0x80 lor (v land 0x7f)));
      put_varint buf (pos + 1) (v lsr 7)
    end

  (* Allocation-free encode: write the frame at [off] in a caller-owned
     buffer (sized with {!encoded_size}) and return the end offset. The bytes
     are identical to [encode]'s — the qcheck differential suite pins this. *)
  let encode_into { round; entries } buf off =
    let pos = put_varint buf off round in
    let pos = put_varint buf pos (List.length entries) in
    List.fold_left
      (fun pos (sid, payload) ->
        let pos = put_varint buf pos sid in
        let len = String.length payload in
        let pos = put_varint buf pos len in
        Bytes.blit_string payload 0 buf pos len;
        pos + len)
      pos entries

  let decode s =
    if String.length s > max_frame_bytes then None
    else
      decode_full
        (fun cur ->
          let* round = r_varint cur in
          let* entries =
            r_list ~max:max_sessions (r_pair r_varint (r_bytes ())) cur
          in
          Some { round; entries })
        s

  (* Decode a frame body in place from [buf[pos, limit)] — the zero-copy
     equivalent of [decode (Bytes.sub_string buf pos (limit - pos))], with
     the same bounds (entry count, per-payload length, varint width, full
     consumption). Only the payload strings, which escape into the decoded
     entries, are allocated. *)
  (* Per-domain (sid, payload offset, payload length) triples from the
     validation pass below — re-walked backwards so the entry list is built
     front-first without the build-reversed-then-[List.rev] second list.
     DLS is per-domain, not per-thread: the unix transport decodes frames
     from several systhreads in one domain, and a preemption point inside
     [Bytes.sub_string] below could interleave two decodes on one array.
     The busy flag hands a concurrent (or re-entrant) caller a fresh
     array instead — [!busy]/[busy := true] has no safe point between the
     read and the write, so the check-out is atomic w.r.t. systhreads. *)
  let entry_scratch : (int array ref * bool ref) Domain.DLS.key =
    Domain.DLS.new_key (fun () -> (ref (Array.make 96 0), ref false))

  let decode_bytes buf pos limit =
    (* Direct style throughout: this parser runs once per received frame and
       its entry loop once per session message — the option-monad closures
       the natural formulation allocates per varint would dominate the
       decoded entries themselves. Two passes over the entry headers (scan
       and validate into the scratch, then materialize back to front) keep
       the output list cons-cells the only list allocation. Only the payload
       strings, the entry tuples/cells and the frame record escape. *)
    let p = ref pos in
    let read_varint () = varint_bytes_loop buf limit p 0 0 0 !p in
    let round = read_varint () in
    let count = if round < 0 then -1 else read_varint () in
    if count < 0 || count > max_sessions then None
    else begin
      let slot, busy = Domain.DLS.get entry_scratch in
      let owned = not !busy in
      if owned then busy := true;
      let scratch = if owned then slot else ref (Array.make 96 0) in
      if Array.length !scratch < 3 * count then
        scratch := Array.make (max (3 * count) (2 * Array.length !scratch)) 0;
      let offs = !scratch in
      let rec scan i =
        if i = count then !p = limit
        else
          let sid = read_varint () in
          if sid < 0 then false
          else
            let len = read_varint () in
            if len < 0 || len > default_max_bytes || limit - !p < len then false
            else begin
              offs.((3 * i) + 0) <- sid;
              offs.((3 * i) + 1) <- !p;
              offs.((3 * i) + 2) <- len;
              p := !p + len;
              scan (i + 1)
            end
      in
      let result =
        if not (scan 0) then None
        else begin
          let entries = ref [] in
          for i = count - 1 downto 0 do
            let sid = offs.((3 * i) + 0) in
            let off = offs.((3 * i) + 1) in
            let len = offs.((3 * i) + 2) in
            entries := (sid, Bytes.sub_string buf off len) :: !entries
          done;
          Some { round; entries = !entries }
        end
      in
      if owned then busy := false;
      result
    end

  (* Incremental decoding of the length-prefixed frame stream the socket
     transports speak: u32 big-endian body length, then the encoded frame.
     The decoder is resumable across arbitrary chunk boundaries and total —
     malformed input parks it in a sticky error state, it never raises. *)
  module Decoder = struct
    type state = Running | Failed of string

    type t = {
      max_frame : int;
      mutable buf : Bytes.t;  (* [lo, hi) holds the undecoded bytes *)
      mutable lo : int;
      mutable hi : int;
      mutable state : state;
    }

    let create ?(max_frame = max_frame_bytes) () =
      {
        max_frame;
        buf = Bytes.create 4096;
        lo = 0;
        hi = 0;
        state = Running;
      }

    let buffered d = d.hi - d.lo

    (* Make room for [len] more bytes at [d.hi]: compact, growing only when
       the live region itself outgrows the buffer. *)
    let reserve d len =
      if Bytes.length d.buf - d.hi < len then begin
        let need = buffered d + len in
        let cap = max (Bytes.length d.buf) 64 in
        let cap = if need > cap then max need (2 * cap) else cap in
        let buf = if cap > Bytes.length d.buf then Bytes.create cap else d.buf in
        Bytes.blit d.buf d.lo buf 0 (buffered d);
        d.hi <- buffered d;
        d.lo <- 0;
        d.buf <- buf
      end

    let feed d s =
      match d.state with
      | Failed _ -> ()
      | Running ->
          let len = String.length s in
          reserve d len;
          Bytes.blit_string s 0 d.buf d.hi len;
          d.hi <- d.hi + len

    (* [feed] from a caller-owned slice — what the socket read loops use so a
       read lands in the decoder with one blit and no intermediate string. *)
    let feed_sub d src off len =
      if off < 0 || len < 0 || off + len > Bytes.length src then
        invalid_arg "Wire.Frame.Decoder.feed_sub";
      match d.state with
      | Failed _ -> ()
      | Running ->
          reserve d len;
          Bytes.blit src off d.buf d.hi len;
          d.hi <- d.hi + len

    let fail d msg =
      d.state <- Failed msg;
      Error msg

    (* [Ok (Some frame)] — one frame decoded and consumed; [Ok None] — the
       buffered bytes are a (possibly empty) prefix of a valid frame, feed
       more; [Error] — the stream is malformed (sticky). *)
    let next d =
      match d.state with
      | Failed msg -> Error msg
      | Running ->
          if buffered d < 4 then Ok None
          else begin
            let b i = Char.code (Bytes.get d.buf (d.lo + i)) in
            let len = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
            if len > d.max_frame then
              fail d
                (Printf.sprintf "frame length %d exceeds max %d" len d.max_frame)
            else if buffered d < 4 + len then Ok None
            else begin
              (* Decode the body in place — no [Bytes.sub_string] copy; only
                 the payload strings escape. A custom [max_frame] above the
                 protocol bound still rejects oversized bodies, as the
                 copying path did via [decode]. *)
              let body_pos = d.lo + 4 in
              let frame =
                if len > max_frame_bytes then None
                else decode_bytes d.buf body_pos (body_pos + len)
              in
              d.lo <- d.lo + 4 + len;
              if d.lo = d.hi then begin
                d.lo <- 0;
                d.hi <- 0
              end;
              match frame with
              | Some frame -> Ok (Some frame)
              | None -> fail d "undecodable frame body"
            end
          end
  end
end
