(** Fault-adaptive fast path: agreement whose communication scales with the
    {e actual} number of corruptions [f], not the worst-case bound [t].

    Every protocol in this repository pays its worst-case Θ(t)-driven cost
    even in the production-typical zero-fault run.  Following the adaptive
    agreement line (Constantinescu–Dufay–Paramonov–Wattenhofer, PAPERS.md),
    this module adds an optimistic O(1)-round preamble in front of an
    arbitrary substrate: when a certificate forms — unanimity for the BA
    backend, a quorum of order-statistic witnesses for the CA wrapper — the
    parties terminate with O(nℓ + n²κ) bits; otherwise they fall back to the
    full worst-case protocol, paying only the preamble as overhead.

    {b The arbitration pattern.}  Honest parties may disagree on whether the
    certificate formed (byzantine parties can show it to some and not
    others), and the lock-step protocol monad requires all honest parties to
    consume identical round counts, so the fast/slow decision cannot be a
    local branch.  Both layers therefore run one {e bit}-BA (plain
    phase king, t < n/3) on "my certificate formed" and branch on its agreed
    output.  Over the two-element domain the bit-BA's output is always some
    honest party's input (Lemma 2), which is exactly the soundness needed:
    a [true] outcome proves an honest witness of the certificate.

    {b Round adaptivity and its limit.}  A simultaneous decision provably
    needs t+1 rounds regardless of f (the Dwork–Moses lower bound), so no
    inner sub-protocol of a lock-step stack can stop in min(f+2, t+1) rounds
    on the nose.  What this layer delivers is the coarse version: a fixed
    O(t)-round skeleton (preamble + bit-BA arbitration) that the f = 0 run
    terminates at, versus skeleton + full fallback otherwise.  The
    {!Ba.Substrate.cost} model reports this honestly — see [cost]. *)

type stats = {
  mutable fast_taken : int;  (** arbitrations that decided for the fast path *)
  mutable fallbacks : int;  (** arbitrations that fell back to the substrate *)
  mutable f_observed : int;
      (** high-water mark of parties observed deviating from the fast-path
          protocol (missing/undecodable/inconsistent echoes) — a lower bound
          on the actual corruptions f in this party's view *)
}
(** Per-party fast-path accounting.  One record per (party, protocol run);
    under a multicore runtime each party must own a distinct record (see
    [Workload.pi_z_adaptive]'s [stats_of]).  Mirrored into the Obs Det tier
    as [adaptive/{fast_path_taken,fallbacks,f_observed}] by the engine CLI. *)

val stats : unit -> stats
(** A zeroed record. *)

val substrate :
  ?stats:stats ->
  fallback:(module Ba.Substrate.S) ->
  unit ->
  (module Ba.Substrate.S)
(** [substrate ~fallback ()] packages the early-stopping layer as a
    first-class BA backend named ["adaptive(<fallback>)"]:

    + one broadcast round of the input (hashed down to κ bits when longer),
    + a bit-BA arbitration of the unanimity certificate "every party echoed
      exactly my message",
    + on [true]: terminate with the own input — unanimity plus collision
      resistance guarantee all honest inputs are equal, so this satisfies
      Termination, Agreement, Validity {e and} the two-element-domain
      strengthening;
    + on [false]: run the fallback substrate verbatim.

    [run_bit] delegates straight to the fallback — arbitrating a 1-bit
    instance with another bit-BA can never win.  The arbitration is plain
    phase king, so the packaged backend keeps t < n/3 ([max_t]) even over a
    t < n/2 fallback.  Its [cost] model scales with [f]: at [f = 0] the
    preamble + arbitration, otherwise preamble + arbitration + fallback,
    with rounds growing from O(t) (arbitration floor) toward the fallback's
    worst case — the min(f+2, t+1)-style profile the adaptive-BA literature
    targets, coarsened by the simultaneity bound (see module doc). *)

val agree_int :
  ?stats:stats ->
  fallback:(module Ba.Substrate.S) ->
  Net.Ctx.t ->
  Bigint.t ->
  Bigint.t Net.Proto.t
(** [agree_int ~fallback ctx v] solves Convex Agreement over ℤ
    (Definition 1) with an f = 0 fast path in front of the full Π_ℤ stack
    instantiated over [fallback].  The preamble ([4] rounds, O(nℓ + n²κ)
    bits):

    + {b R1} — broadcast a 13-byte order key (sign, bit length, top 128
      magnitude bits) and the SHA-256 digest of the canonically encoded
      input;
    + {b R2} — broadcast the digest of the full R1 inbox (view-consistency
      echo); a party's view is {e consistent} when all n R1 slots decode and
      all n R2 echoes equal its own.  Consistency at any single honest party
      implies every honest party holds the identical R1 view, hence the same
      {e median party} [med] (rank ⌊n/2⌋ in (key, id) order) and the same
      committed digest;
    + {b R3} — [med] broadcasts its full input; receivers verify the raw
      bytes against the committed digest and key;
    + {b R4} — broadcast one comparison byte: ⊥, or sign of [v - u] against
      the verified median value [u].

    The certificate at party i: consistent view, verified [u], every R4
    slot a valid comparison, and ≥ t+1 parties claiming [v ≤ u] as well as
    ≥ t+1 claiming [v ≥ u].  One bit-BA arbitrates; on [true] every honest
    party holds the same [u] (an honest claim of each kind pins [u] inside
    the honest hull — exact convex validity), on [false] the full Π_ℤ over
    [fallback] runs.  Any single active corruption can veto the fast path —
    that is the design point: f = 0 costs O(nℓ + n²κ) bits in O(t) rounds,
    f > 0 costs the worst case plus the cheap preamble. *)

val fast_path_rounds : Net.Ctx.t -> int
(** Rounds of [agree_int]'s fast path: the 4-round preamble plus the bit-BA
    arbitration ([3(t+1)]). *)

val wrapper_cost :
  Net.Ctx.t -> value_bits:int -> fallback:(module Ba.Substrate.S) -> f:int ->
  Ba.Substrate.cost
(** f-sensitive cost model for [agree_int]: preamble + arbitration at
    [f = 0], plus the full Π_ℤ [cost_estimate] over the fallback otherwise. *)
