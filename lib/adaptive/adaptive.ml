(* Fault-adaptive fast path: communication scaling with the actual number of
   corruptions f instead of the bound t.  See adaptive.mli for the protocol
   and its arguments; the load-bearing facts are repeated inline where the
   code depends on them.

   Both layers share one shape: an O(1)-round optimistic preamble, a bit-BA
   arbitration of "my certificate formed", and a branch on the arbitration's
   agreed output — never on local state, so honest parties consume identical
   round counts in the lock-step monad.  The arbitration is plain phase king
   (t < n/3, ~n²·3(t+1)·17 bits): over the two-element domain its output is
   always some honest party's input (Lemma 2), so a [true] outcome proves an
   honest certificate witness. *)

open Net

let ( let* ) = Proto.( let* )

type stats = {
  mutable fast_taken : int;
  mutable fallbacks : int;
  mutable f_observed : int;
}

let stats () = { fast_taken = 0; fallbacks = 0; f_observed = 0 }

let bump_fast = Option.iter (fun s -> s.fast_taken <- s.fast_taken + 1)
let bump_fallback = Option.iter (fun s -> s.fallbacks <- s.fallbacks + 1)

let record_observed stats observed =
  Option.iter (fun s -> s.f_observed <- max s.f_observed observed) stats

let count_true a =
  Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 a

(* Bit cost of the phase-king arbitration instance (the Unauthenticated
   backend's model at value_bits = 1). *)
let arbitration_bits (ctx : Ctx.t) =
  let n = ctx.Ctx.n in
  Ba.Phase_king.rounds ctx * n * n * 17

(* ------------------------------------------------------------------ *)
(* Value codec: canonical sign + minimal-magnitude encoding.  Injective on
   ℤ (the −0 form is rejected), so equal digests mean equal values under
   collision resistance.  R3 verification hashes the *raw received bytes*
   before decoding, so all honest parties that accept a value decoded the
   byte-identical preimage — canonicality of byzantine re-encodings never
   matters. *)

let encode_value v =
  Wire.encode
    (Wire.seq
       [
         Wire.w_u8 (if Bigint.sign v < 0 then 1 else 0);
         Wire.w_bits (Bigint.to_bitstring (Bigint.abs v));
       ])

let decode_value raw =
  Wire.decode_full
    (fun cur ->
      let ( let* ) = Wire.( let* ) in
      let* sgn = Wire.r_u8 cur in
      if sgn > 1 then None
      else
        let* bits = Wire.r_bits () cur in
        let m = Bigint.of_bitstring bits in
        if sgn = 1 && Bigint.is_zero m then None
        else Some (Bigint.of_sign_magnitude ~negative:(sgn = 1) m))
    raw

(* ------------------------------------------------------------------ *)
(* The R1 order key: (sign class, bit length, top 128 magnitude bits).
   Monotone non-strict in the value — key(v) < key(w) implies v < w — so the
   rank-⌊n/2⌋ party in (key, id) order holds a value with ≥ ⌈n/2⌉ ≥ t+1
   parties on each side whenever the top-128-bit truncation is collision
   free (always, for values up to 128 bits; with probability 1 − O(n²·2⁻¹²⁸)
   for the random workloads).  Correctness never depends on this: the key
   only selects the fast path's candidate, validity comes from the R4
   witness thresholds. *)

let key_bytes = 16
let key_top_bits = 8 * key_bytes

type key = { k_sign : int; k_bits : int; k_top : string }

let key_of v =
  let s = Bigint.sign v in
  if s = 0 then { k_sign = 1; k_bits = 0; k_top = String.make key_bytes '\000' }
  else
    let m = Bigint.abs v in
    let bits = Bigint.bit_length m in
    let top = Bigint.shift_right m (max 0 (bits - key_top_bits)) in
    {
      k_sign = (if s < 0 then 0 else 2);
      k_bits = bits;
      k_top = Bitstring.to_bytes (Bigint.to_bitstring_fixed ~bits:key_top_bits top);
    }

let equal_key a b =
  a.k_sign = b.k_sign && a.k_bits = b.k_bits && String.equal a.k_top b.k_top

(* Numeric order: sign classes ascend (negative < zero < positive); within
   the positives larger (bits, top) is larger, within the negatives the
   magnitude order reverses. *)
let compare_key a b =
  if a.k_sign <> b.k_sign then compare a.k_sign b.k_sign
  else if a.k_sign = 1 then 0
  else
    let c = compare a.k_bits b.k_bits in
    let c = if c <> 0 then c else String.compare a.k_top b.k_top in
    if a.k_sign = 0 then -c else c

let w_entry key digest =
  Wire.seq
    [
      Wire.w_u8 key.k_sign;
      Wire.w_varint key.k_bits;
      Wire.w_fixed key.k_top;
      Wire.w_fixed digest;
    ]

let decode_entry raw =
  Wire.decode_full
    (fun cur ->
      let ( let* ) = Wire.( let* ) in
      let* k_sign = Wire.r_u8 cur in
      if k_sign > 2 then None
      else
        let* k_bits = Wire.r_varint cur in
        let* k_top = Wire.r_fixed key_bytes cur in
        let* digest = Wire.r_fixed Sha256.digest_size cur in
        Some ({ k_sign; k_bits; k_top }, digest))
    raw

(* Digest of a whole inbox, with presence tags and length framing so slot
   boundaries are unambiguous.  Two parties share this hash iff they share
   the R1 view byte for byte. *)
let hash_inbox inbox =
  let c = Sha256.init () in
  Array.iter
    (function
      | None -> Sha256.feed c "\x00"
      | Some raw ->
          Sha256.feed c "\x01";
          Sha256.feed c (Wire.encode (Wire.w_bytes raw)))
    inbox;
  Sha256.finalize c

(* The median party of a fully decoded R1 view: rank ⌊n/2⌋ in (key, id)
   order.  Identical at every party with the identical view. *)
let median_of r1 =
  let n = Array.length r1 in
  let idx = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      let ka, _ = Option.get r1.(a) and kb, _ = Option.get r1.(b) in
      let c = compare_key ka kb in
      if c <> 0 then c else compare a b)
    idx;
  idx.(n / 2)

let fast_path_rounds (ctx : Ctx.t) = 4 + Ba.Phase_king.rounds ctx

(* ------------------------------------------------------------------ *)
(* The CA wrapper: 4-round preamble + arbitration + full Π_ℤ fallback.    *)

let agree_int ?stats ~fallback (ctx : Ctx.t) v =
  let n = ctx.Ctx.n and t = ctx.Ctx.t in
  let module B = (val fallback : Ba.Substrate.S) in
  let module CA = Convex.Ca_int.Make (B) in
  let enc = encode_value v in
  let deviant = Array.make n false in
  let* fast_in, candidate =
    Proto.with_label "adaptive_fast"
      ((* R1: order key + input digest. *)
       let key = key_of v in
       let digest = Sha256.digest enc in
       let* inbox1 = Proto.broadcast (Wire.encode (w_entry key digest)) in
       let view_hash = hash_inbox inbox1 in
       let r1 =
         Array.init n (fun j -> Option.bind inbox1.(j) decode_entry)
       in
       Array.iteri (fun j e -> if e = None then deviant.(j) <- true) r1;
       let all1 = Array.for_all Option.is_some r1 in
       (* R2: view-consistency echo.  If every echo I receive equals my own
          view hash, every *honest* party's R1 view is byte-identical to
          mine (honest echoes are truthful and arrive unmodified), so all
          honest parties compute the same median party and committed
          digest. *)
       let* inbox2 = Proto.broadcast view_hash in
       let echoes_ok = ref true in
       Array.iteri
         (fun j slot ->
           match slot with
           | Some h when String.equal h view_hash -> ()
           | _ ->
               echoes_ok := false;
               deviant.(j) <- true)
         inbox2;
       let consistent = all1 && !echoes_ok in
       (* R3: the median party publishes its full input; everyone verifies
          the raw bytes against the R1 commitment (digest first, then the
          decoded value's key). *)
       let med = if all1 then Some (median_of r1) else None in
       let i_am_med = med = Some ctx.Ctx.me in
       let* inbox3 =
         if i_am_med then Proto.broadcast enc else Proto.receive_only ()
       in
       let candidate =
         match med with
         | None -> None
         | Some m -> (
             let _, med_digest = Option.get r1.(m) in
             let med_key, _ = Option.get r1.(m) in
             match inbox3.(m) with
             | Some raw when String.equal (Sha256.digest raw) med_digest -> (
                 match decode_value raw with
                 | Some u when equal_key (key_of u) med_key -> Some u
                 | _ -> None)
             | _ -> None)
       in
       (* R4: one comparison byte against the verified candidate — 0 for
          "no candidate", else sign of (v − u).  t+1 claims of v ≤ u and
          t+1 of v ≥ u each contain an honest witness, pinning u inside the
          honest hull exactly (over ℤ the hull is the interval). *)
       let cmp_byte =
         match candidate with
         | None -> 0
         | Some u -> (
             match Bigint.compare v u with
             | c when c < 0 -> 1
             | 0 -> 2
             | _ -> 3)
       in
       let* inbox4 = Proto.broadcast (String.make 1 (Char.chr cmp_byte)) in
       let all_got = ref true and low = ref 0 and high = ref 0 in
       Array.iteri
         (fun j slot ->
           let c =
             match slot with
             | Some s when String.length s = 1 -> Char.code s.[0]
             | _ -> -1
           in
           if c < 0 || c > 3 then begin
             all_got := false;
             deviant.(j) <- true
           end
           else if c = 0 then all_got := false
           else begin
             if c <= 2 then incr low;
             if c >= 2 then incr high
           end)
         inbox4;
       let fast_in =
         consistent
         && Option.is_some candidate
         && !all_got
         && !low >= t + 1
         && !high >= t + 1
       in
       Proto.return (fast_in, candidate))
  in
  record_observed stats (count_true deviant);
  (* Arbitration: agreed [true] proves an honest party i* held the full
     certificate.  i*'s all-slots-got condition covers every honest party's
     truthful R4 byte, so every honest party verified a candidate; i*'s
     consistency implies they all verified the *same* one. *)
  let* fast = Ba.Phase_king.run_bit ctx fast_in in
  if fast then begin
    bump_fast stats;
    (* [candidate] is Some at every honest party when the arbitration lands
       true (see above); the default keeps the match total. *)
    Proto.return (Option.value candidate ~default:v)
  end
  else begin
    bump_fallback stats;
    CA.run ctx v
  end

let wrapper_cost (ctx : Ctx.t) ~value_bits ~fallback ~f =
  let n = ctx.Ctx.n in
  let kappa = 8 * Sha256.digest_size in
  let entry_bits = 8 * (1 + 3 + key_bytes + Sha256.digest_size) in
  let preamble =
    (n * n * entry_bits) (* R1 *)
    + (n * n * kappa) (* R2 *)
    + (n * (value_bits + 16)) (* R3: one broadcast of the full value *)
    + (n * n * 8) (* R4 *)
    + arbitration_bits ctx
  in
  if f = 0 then
    { Ba.Substrate.c_f = 0; c_bits = preamble; c_rounds = fast_path_rounds ctx }
  else
    let module B = (val fallback : Ba.Substrate.S) in
    let module CA = Convex.Ca_int.Make (B) in
    let fb = CA.cost_estimate ctx ~value_bits ~f in
    {
      Ba.Substrate.c_f = f;
      c_bits = preamble + fb.Ba.Substrate.c_bits;
      c_rounds = fast_path_rounds ctx + fb.Ba.Substrate.c_rounds;
    }

(* ------------------------------------------------------------------ *)
(* The substrate backend: unanimity certificate in front of any fallback. *)

let substrate ?stats ~fallback () : (module Ba.Substrate.S) =
  let module F = (val fallback : Ba.Substrate.S) in
  (module struct
    let name = "adaptive(" ^ F.name ^ ")"
    let assumption = F.assumption

    (* The arbitration is plain phase king, so the packaged backend keeps
       t < n/3 even over a t < n/2 fallback. *)
    let max_t ~n = min ((n - 1) / 3) (F.max_t ~n)

    (* Worst case (fallback taken); the f = 0 run stops after
       1 + 3(t+1) rounds — see [cost]. *)
    let rounds ctx = 1 + Ba.Phase_king.rounds ctx + F.rounds ctx

    (* R1 echoes are the value itself when it fits a digest, else κ bits. *)
    let fast_bits (ctx : Ctx.t) ~value_bits =
      let n = ctx.Ctx.n in
      let echo = 8 + min (value_bits + 16) (8 * (Sha256.digest_size + 1)) in
      (n * n * echo) + arbitration_bits ctx

    let bits_estimate ctx ~value_bits =
      fast_bits ctx ~value_bits + F.bits_estimate ctx ~value_bits

    (* The f-sensitive model: the preamble + arbitration floor at f = 0,
       plus the fallback's own (possibly f-sensitive) cost otherwise.
       Rounds therefore step from O(t) (the simultaneity lower bound keeps
       the arbitration at t+1 phases even when f = 0) up to the fallback's
       worst case — the coarse form of the literature's min(f+2, t+1). *)
    let cost ctx ~value_bits ~f =
      let fast = fast_bits ctx ~value_bits in
      if f = 0 then
        {
          Ba.Substrate.c_f = 0;
          c_bits = fast;
          c_rounds = 1 + Ba.Phase_king.rounds ctx;
        }
      else
        let fb = F.cost ctx ~value_bits ~f in
        {
          Ba.Substrate.c_f = f;
          c_bits = fast + fb.Ba.Substrate.c_bits;
          c_rounds = 1 + Ba.Phase_king.rounds ctx + fb.Ba.Substrate.c_rounds;
        }

    let run spec ctx v =
      let enc = spec.Ba.Substrate.encode v in
      (* Short inputs ride along verbatim; long ones are hashed down to κ
         bits.  The tag byte keeps the two injective images disjoint. *)
      let m =
        if String.length enc <= Sha256.digest_size then "\x00" ^ enc
        else "\x01" ^ Sha256.digest enc
      in
      let* unanimous =
        Proto.with_label "adaptive_fast"
          (let* inbox = Proto.broadcast m in
           let missing = ref 0 and unanimous = ref true in
           Array.iter
             (function
               | Some raw -> if not (String.equal raw m) then unanimous := false
               | None ->
                   incr missing;
                   unanimous := false)
             inbox;
           record_observed stats !missing;
           Proto.return !unanimous)
      in
      (* Agreed [true] proves some honest party received exactly its own
         message from everyone; all honest parties broadcast truthfully, so
         (collision resistance + injective encode) every honest input equals
         v — returning the own input is Termination, Agreement, Validity and
         the two-element-domain strengthening at once. *)
      let* fast = Ba.Phase_king.run_bit ctx unanimous in
      if fast then begin
        bump_fast stats;
        Proto.return v
      end
      else begin
        bump_fallback stats;
        F.run spec ctx v
      end

    (* A 1-bit instance cannot be won by arbitrating with another bit-BA of
       the same cost: delegate bits straight to the fallback. *)
    let run_bit ctx b = F.run_bit ctx b
    let run_bytes ctx v = run Ba.Phase_king.bytes_spec ctx v
    let run_option ctx v = run Ba.Phase_king.option_spec ctx v
  end)
