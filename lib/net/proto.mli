(** A deterministic round-structured protocol, as a resumable computation.

    A protocol alternates local computation with synchronous communication
    rounds: each round every party chooses at most one message per recipient,
    the runtime delivers all round-[r] messages at once, and every party
    resumes with its inbox — exactly the synchronous model of Section 2 of
    the paper.

    Sub-protocols compose by monadic sequencing — running Π_BA inside
    FINDPREFIX is [let* out = Phase_king.run ctx v in ...]; rounds interleave
    in lock-step automatically because honest parties branch only on
    agreed-upon data.

    Values of this type are transport-agnostic: {!Sim} executes them in the
    deterministic adversarial simulator, [Net_unix] over a real socket mesh.
    The constructors are exposed because runtimes pattern-match on them;
    protocol code should use the combinators below. *)

type inbox = string option array
(** [inbox.(s)]: the message received from party [s] this round ([None] if
    [s] sent nothing). Senders are authenticated by construction — slot [s]
    only ever holds [s]'s message, the paper's authenticated channels.

    Ownership: the array is {e borrowed} from the runtime — engines reuse it
    across rounds, so a continuation must consume it (or copy what it needs)
    before returning its next [Step]; only the payload strings and option
    boxes, which are immutable, may be retained. Every combinator-built
    protocol satisfies this automatically because OCaml evaluates the
    continuation body strictly up to the next round. See DESIGN.md, "Hot
    path & allocation discipline". *)

type 'a t =
  | Done of 'a
  | Step of (int -> string option) * (inbox -> 'a t)
      (** [Step (out, k)]: send [out recipient] to every recipient, then
          continue with the received inbox. *)
  | Push of string * 'a t  (** Begin a metrics label scope (see {!Metrics}). *)
  | Pop of 'a t  (** End the innermost label scope. *)
  | Probe of string * (unit -> string) * 'a t
      (** Emit a telemetry data point (key, lazily rendered value); consumes
          no round and sends nothing. Runtimes force the thunk only when a
          [Telemetry.t] recorder is attached. *)

val return : 'a -> 'a t
val bind : 'a t -> ('a -> 'b t) -> 'b t
val ( let* ) : 'a t -> ('a -> 'b t) -> 'b t
val map : 'a t -> ('a -> 'b) -> 'b t
val ( let+ ) : 'a t -> ('a -> 'b) -> 'b t

val exchange : (int -> string option) -> inbox t
(** One communication round, sending [out r] to each recipient [r]. *)

val broadcast : string -> inbox t
(** One round sending the same message to every party (self included — the
    paper's "send to all"; self-messages are free in the metrics). *)

val receive_only : unit -> inbox t
(** One round sending nothing. *)

val with_label : string -> 'a t -> 'a t
(** Attribute the communication of a sub-protocol to a label in the metrics
    (the component-ablation experiment, T5). Scopes nest; the innermost
    label wins. *)

val probe : string -> (unit -> string) -> unit t
(** [probe key value] emits a telemetry data point under [key]; free (no
    round, no traffic) and invisible without a recorder. The convergence
    analysis in [Telemetry] expects values rendered as hexadecimal integers
    ([Bigint.to_hex]) — hex rendering is linear in the value size, so even
    huge probes cannot distort the instrumented run's cost. *)

val round_count : 'a t -> int
(** Rounds consumed when every inbox is empty — only meaningful for
    protocols whose round structure is input-independent (tests). *)

(** {1 Parallel composition} *)

val parallel : 'a t list -> 'a list t
(** [parallel ps] runs the branches concurrently: each round carries one
    multiplexed message per recipient holding every still-running branch's
    message, each branch receives its slice of the inbox — so the whole
    composition takes [max] rather than [sum] of the branches' rounds. All
    honest parties must compose the same branch count and order (a protocol
    parameter). Labels and probes inside branches are stripped — wrap the
    composition in {!with_label} instead. Raises [Invalid_argument] on an
    empty list. *)

val both : 'a t -> 'b t -> ('a * 'b) t
(** Two-branch {!parallel}. *)
