(** Message-level execution traces.

    When a {!Trace.t} is passed to {!Sim.run} (or [Engine.run_sim]), every
    delivered message is recorded as an {!event}: round, endpoints, size,
    whether the sender was corrupted, the sender's active metrics label, and
    the session it belongs to. Traces feed the CLI's [trace] command (CSV
    export for external analysis) and the summary printers used when
    debugging protocol communication patterns. *)

type event = {
  round : int;
  src : int;
  dst : int;
  bytes : int;
  byzantine : bool;  (** sender was corrupted *)
  label : string option;  (** sender's innermost {!Proto.with_label} scope *)
  session : int;  (** session id; 0 for single-session runs *)
}

type t = { mutable rev_events : event list; mutable count : int }

let create () = { rev_events = []; count = 0 }

let record trace event =
  trace.rev_events <- event :: trace.rev_events;
  trace.count <- trace.count + 1

let events trace = List.rev trace.rev_events
let length trace = trace.count

(* The summaries below fold over [rev_events] directly: they are
   order-insensitive, and [events] would rebuild the whole list per call. *)

(** {1 Summaries} *)

(** Honest bits per round, ascending rounds; rounds without traffic omitted. *)
let bits_per_round trace =
  let table = Hashtbl.create 64 in
  List.iter
    (fun e ->
      if not e.byzantine then
        Hashtbl.replace table e.round
          ((8 * e.bytes) + Option.value ~default:0 (Hashtbl.find_opt table e.round)))
    trace.rev_events;
  Hashtbl.fold (fun r b acc -> (r, b) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(** [sent_matrix trace ~n]: total bytes sent from each party to each party. *)
let sent_matrix trace ~n =
  let m = Array.make_matrix n n 0 in
  List.iter
    (fun e ->
      if e.src >= 0 && e.src < n && e.dst >= 0 && e.dst < n then
        m.(e.src).(e.dst) <- m.(e.src).(e.dst) + e.bytes)
    trace.rev_events;
  m

(** The communication-heaviest rounds, descending, at most [top]. *)
let hottest_rounds ?(top = 10) trace =
  bits_per_round trace
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.filteri (fun i _ -> i < top)

(** {1 Export} *)

let csv_header = "round,src,dst,bytes,byzantine,label,session"

let to_csv trace =
  let buf = Buffer.create (64 * (1 + length trace)) in
  Buffer.add_string buf csv_header;
  Buffer.add_char buf '\n';
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%d,%d,%b,%s,%d\n" e.round e.src e.dst e.bytes
           e.byzantine
           (Option.value ~default:"" e.label)
           e.session))
    (events trace);
  Buffer.contents buf

let pp_summary fmt trace ~n =
  let matrix = sent_matrix trace ~n in
  Format.fprintf fmt "%d messages@." (length trace);
  Format.fprintf fmt "hottest rounds (honest kbits):@.";
  List.iter
    (fun (round, bits) ->
      Format.fprintf fmt "  round %4d: %8.1f@." round (float_of_int bits /. 1000.))
    (hottest_rounds ~top:5 trace);
  Format.fprintf fmt "per-sender bytes:@.";
  Array.iteri
    (fun src row ->
      Format.fprintf fmt "  party %2d: %8d@." src (Array.fold_left ( + ) 0 row))
    matrix
