(** Communication accounting.

    [BITS_ℓ(Π)] in the paper is the worst-case number of bits sent by honest
    parties; the simulator reports the bits actually sent by honest parties in
    a run (self-addressed messages are free, matching the model where "send to
    all" includes remembering your own value).

    Each message costs [8 × bytes] — the wire is byte-aligned, a documented
    constant-factor deviation (DESIGN.md). Byzantine traffic is tracked
    separately for diagnostics but never counts toward [honest_bits].

    Per-label counters (see {!Proto.with_label}) drive the component-ablation
    experiment: bits are attributed to the sending party's innermost active
    label. *)

type t = {
  mutable rounds : int;
  mutable honest_bits : int;
  mutable honest_msgs : int;
  mutable byz_bits : int;
  mutable byz_msgs : int;
  by_label : (string, int) Hashtbl.t;
}

let create () =
  {
    rounds = 0;
    honest_bits = 0;
    honest_msgs = 0;
    byz_bits = 0;
    byz_msgs = 0;
    by_label = Hashtbl.create 16;
  }

let no_label = "(unlabeled)"

let is_empty m =
  m.rounds = 0 && m.honest_bits = 0 && m.honest_msgs = 0 && m.byz_bits = 0
  && m.byz_msgs = 0
  && Hashtbl.length m.by_label = 0

(* [Hashtbl.find] + [Not_found] rather than [find_opt]: this runs once per
   honest message, the lookup hits on all but a label's first message, and
   [find_opt]'s [Some] box is pure allocation on that path. *)
let record_honest m ~label ~bytes =
  let bits = 8 * bytes in
  m.honest_bits <- m.honest_bits + bits;
  m.honest_msgs <- m.honest_msgs + 1;
  let label = match label with Some l -> l | None -> no_label in
  let prior = match Hashtbl.find m.by_label label with b -> b | exception Not_found -> 0 in
  Hashtbl.replace m.by_label label (bits + prior)

let record_byzantine m ~bytes =
  m.byz_bits <- m.byz_bits + (8 * bytes);
  m.byz_msgs <- m.byz_msgs + 1

(* Counters sum; rounds take the max — concurrent sessions overlap in time,
   so an aggregate's round count is its longest member's, not the total. *)
let merge ~into src =
  into.rounds <- max into.rounds src.rounds;
  into.honest_bits <- into.honest_bits + src.honest_bits;
  into.honest_msgs <- into.honest_msgs + src.honest_msgs;
  into.byz_bits <- into.byz_bits + src.byz_bits;
  into.byz_msgs <- into.byz_msgs + src.byz_msgs;
  Hashtbl.iter
    (fun label bits ->
      Hashtbl.replace into.by_label label
        (bits + Option.value ~default:0 (Hashtbl.find_opt into.by_label label)))
    src.by_label

(* Point-in-time copy: the scalar fields are copied by the record update,
   the label table explicitly (it is shared mutable state otherwise). *)
let snapshot m = { m with by_label = Hashtbl.copy m.by_label }

(* [diff ~after ~before]: counters accumulated between two snapshots of the
   same run — the per-interval attribution primitive. [rounds] subtracts
   (rounds of one run are a monotone counter, not a max-merge). Labels whose
   delta is zero are dropped. *)
let diff ~after ~before =
  let by_label = Hashtbl.create 16 in
  Hashtbl.iter
    (fun label bits ->
      let d = bits - Option.value ~default:0 (Hashtbl.find_opt before.by_label label) in
      if d <> 0 then Hashtbl.replace by_label label d)
    after.by_label;
  {
    rounds = after.rounds - before.rounds;
    honest_bits = after.honest_bits - before.honest_bits;
    honest_msgs = after.honest_msgs - before.honest_msgs;
    byz_bits = after.byz_bits - before.byz_bits;
    byz_msgs = after.byz_msgs - before.byz_msgs;
    by_label;
  }

(* Bits descending, then label ascending: ties (equal-cost components are
   common in lock-step protocols) must not depend on hash-table order. *)
let labels m =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) m.by_label []
  |> List.sort (fun (la, a) (lb, b) ->
         if a <> b then compare b a else compare la lb)

let pp fmt m =
  Format.fprintf fmt "rounds=%d honest_bits=%d honest_msgs=%d" m.rounds
    m.honest_bits m.honest_msgs
