type bundles = (int * string) list array array

type t = {
  name : string;
  exchange : round:int -> frames:string array array -> entries:bundles -> bundles;
  close : unit -> unit;
}

let loopback () =
  {
    name = "loopback";
    exchange = (fun ~round:_ ~frames:_ ~entries -> entries);
    close = ignore;
  }
