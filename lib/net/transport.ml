type bundles = (int * string) list array array

type t = {
  name : string;
  direct : bool;
  exchange : round:int -> entries:bundles -> bundles;
  close : unit -> unit;
}

let loopback () =
  {
    name = "loopback";
    direct = true;
    exchange = (fun ~round:_ ~entries -> entries);
    close = ignore;
  }
