(** A deterministic round-structured protocol, as a resumable computation.

    A protocol alternates local computation with synchronous communication
    rounds. In each round every party chooses (at most) one message per
    recipient; the simulator then delivers all round-[r] messages at once and
    resumes every party with its inbox — exactly the synchronous model of
    Section 2 of the paper.

    Sub-protocols compose by monadic sequencing: running Π_BA inside
    FINDPREFIX is just [let* out = Phase_king.run ctx v in ...]; the rounds
    interleave in lock-step automatically because all honest parties follow
    the same control flow (every branch the protocols take is on agreed-upon
    data). *)

type inbox = string option array
(** [inbox.(s)] is the message received from party [s] this round, [None] if
    [s] sent nothing (or an empty slot for self). Senders are authenticated
    by construction — the simulator fills slot [s] only with [s]'s message,
    which models the paper's authenticated channels. *)

type 'a t =
  | Done of 'a
  | Step of (int -> string option) * (inbox -> 'a t)
      (** [Step (out, k)]: send [out recipient] to every recipient, then
          continue with the received inbox. *)
  | Push of string * 'a t  (** Begin a metrics label scope (see {!Metrics}). *)
  | Pop of 'a t  (** End the innermost label scope. *)
  | Probe of string * (unit -> string) * 'a t
      (** Emit a telemetry data point (key, lazily rendered value); consumes
          no round and sends nothing. The thunk is only forced when a
          recorder is attached, so bare runs never pay for serialization. *)

let return x = Done x

let rec bind m f =
  match m with
  | Done x -> f x
  | Step (out, k) -> Step (out, fun inbox -> bind (k inbox) f)
  | Push (l, rest) -> Push (l, bind rest f)
  | Pop rest -> Pop (bind rest f)
  | Probe (key, value, rest) -> Probe (key, value, bind rest f)

let ( let* ) = bind
let map m f = bind m (fun x -> return (f x))
let ( let+ ) = map

(** [exchange out] runs one communication round sending [out r] to each
    recipient [r]. *)
let exchange out = Step (out, fun inbox -> Done inbox)

(** One round in which the same message goes to every party. The [Some] box
    is shared across recipients — the out function runs once per recipient
    per round, so a per-call box would cost n allocations per broadcast. *)
let broadcast msg =
  let m = Some msg in
  exchange (fun _ -> m)

(** One round in which this party sends nothing but still receives. *)
let receive_only () = exchange (fun _ -> None)

(** [with_label label m] attributes the communication of [m] to [label] in
    the metrics (used by the component-ablation experiment). Scopes nest. *)
let with_label label m = Push (label, bind m (fun x -> Pop (Done x)))

(** [probe key value] emits a telemetry data point; the thunk is forced only
    when the runtime has a recorder attached. Convergence analysis expects
    hexadecimal integer values ([Bigint.to_hex] — linear, unlike the
    quadratic decimal rendering). *)
let probe key value = Probe (key, value, Done ())

(** [round_count m] — number of communication rounds a protocol value will
    consume if every inbox is empty. Useful only for tests of static-round
    protocols. *)
let rec round_count = function
  | Done _ -> 0
  | Step (_, k) -> 1 + round_count (k [||])
  | Push (_, m) | Pop m | Probe (_, _, m) -> round_count m

(* ---- parallel composition ------------------------------------------------ *)

(* Wire format for a multiplexed round message: a list of per-branch
   optional payloads (varint count, then option-tagged bytes). Defensive:
   anything malformed, or with the wrong branch count, reads as all-None. *)
let encode_mux slots =
  if Array.for_all Option.is_none slots then None
  else
    Some
      (Wire.encode
         (Wire.w_list (Wire.w_option Wire.w_bytes) (Array.to_list slots)))

let r_mux_slot = Wire.r_option (Wire.r_bytes ())

let decode_mux ~branches raw =
  match raw with
  | None -> Array.make branches None
  | Some raw -> (
      match Wire.decode_full (Wire.r_list ~max:branches r_mux_slot) raw with
      | Some slots when List.length slots = branches -> Array.of_list slots
      | Some _ | None -> Array.make branches None)

(* Labels inside parallel branches are stripped: the branches' scopes would
   interleave on one per-party stack with no consistent meaning. Label the
   composition from outside instead. Probes are stripped for the same
   reason — branch-local occurrence indices would interleave arbitrarily. *)
let rec strip_labels = function
  | Push (_, m) | Pop m | Probe (_, _, m) -> strip_labels m
  | (Done _ | Step _) as m -> m

(** [parallel ps] runs the protocols [ps] concurrently: each round carries
    one multiplexed message per recipient containing every still-running
    branch's message, and every branch receives its slice of the inbox.
    Finishes when all branches have finished, in
    [max_i round_count(ps_i)] rounds — against [sum_i] for sequential
    composition. All honest parties must compose the same branch list
    (branch count and order are protocol parameters).

    Used to run independent sub-protocol instances — e.g. n broadcasts, one
    per sender — without paying their rounds sequentially. Labels inside
    branches are stripped; wrap the whole composition in {!with_label}. *)
let parallel protocols =
  let branches = List.length protocols in
  if branches = 0 then invalid_arg "Proto.parallel: no branches";
  let rec advance states =
    let states = Array.map strip_labels states in
    if Array.for_all (function Done _ -> true | _ -> false) states then
      Done
        (Array.to_list
           (Array.map (function Done v -> v | _ -> assert false) states))
    else
      let out recipient =
        encode_mux
          (Array.map
             (function Step (out, _) -> out recipient | _ -> None)
             states)
      in
      Step
        ( out,
          fun inbox ->
            (* Pre-split the inbox once per sender, then slice per branch. *)
            let split = Array.map (fun raw -> decode_mux ~branches raw) inbox in
            advance
              (Array.mapi
                 (fun b state ->
                   match state with
                   | Step (_, k) -> k (Array.map (fun slots -> slots.(b)) split)
                   | done_ -> done_)
                 states) )
  in
  advance (Array.of_list (List.map strip_labels protocols))

(** Two-branch convenience over {!parallel}. *)
let both a b =
  map
    (parallel [ map a (fun x -> `A x); map b (fun y -> `B y) ])
    (function
      | [ `A x; `B y ] -> (x, y)
      | [ `B y; `A x ] -> (x, y)
      | _ -> assert false)
