(** Message-level execution traces.

    Passed (optionally) to {!Sim.run} or [Engine.run_sim]: every delivered
    message becomes an {!event}. Feeds the CLI's [trace] command (CSV export)
    and the debugging summaries. Recording prepends to an internal reversed
    list (O(1) per message); the summaries fold over that list once without
    re-materialising it. *)

type event = {
  round : int;  (** session-local round, 1-based *)
  src : int;
  dst : int;
  bytes : int;
  byzantine : bool;  (** sender was corrupted *)
  label : string option;  (** sender's innermost {!Proto.with_label} scope *)
  session : int;  (** session id; 0 for single-session runs *)
}

type t

val create : unit -> t

val record : t -> event -> unit
(** Append an event (runtimes call this; O(1)). *)

val events : t -> event list
(** All events in arrival order. Rebuilds a list each call — use the
    summaries below for repeated aggregation. *)

val length : t -> int

(** {1 Summaries} *)

val bits_per_round : t -> (int * int) list
(** Honest bits per round, ascending rounds; silent rounds omitted. *)

val sent_matrix : t -> n:int -> int array array
(** Total bytes sent from each party to each party (out-of-range endpoints
    ignored defensively). *)

val hottest_rounds : ?top:int -> t -> (int * int) list
(** The communication-heaviest rounds, descending honest bits; at most
    [top] (default 10). *)

(** {1 Export} *)

val csv_header : string
(** ["round,src,dst,bytes,byzantine,label,session"]. *)

val to_csv : t -> string
(** Header plus one comma-separated line per event, arrival order. *)

val pp_summary : Format.formatter -> t -> n:int -> unit
