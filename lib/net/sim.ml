(** Lock-step synchronous execution of [n] protocol instances against a
    rushing Byzantine adversary, with exact communication accounting.

    Every party — corrupted or not — runs its protocol instance; the
    adversary overrides the corrupted parties' outgoing messages each round
    after seeing everyone's prescribed messages (see {!Adversary}). The run
    ends when every honest party has terminated. *)

type 'a outcome = {
  outputs : 'a option array;
      (** Per party: [Some] once its instance terminated. Corrupted parties'
          entries reflect their (adversary-ignored) instance and are reported
          for diagnostics only. *)
  metrics : Metrics.t;
}

exception Round_limit_exceeded of int

let default_max_rounds = 20_000

(* Byzantine messages are truncated to this size: honest-side allocations stay
   bounded no matter what a strategy produces. *)
let max_byzantine_bytes = 1 lsl 22

let run ?(max_rounds = default_max_rounds) ?(allow_excess_corruptions = false) ?trace
    ?telemetry ?(domains = 1) ?(setup = `Plain) ~n ~t ~corrupt ~adversary protocol =
  if Array.length corrupt <> n then invalid_arg "Sim.run: corrupt array size";
  if domains < 1 then invalid_arg "Sim.run: domains < 1";
  let pool = if domains > 1 then Some (Pool.shared ()) else None in
  let make_ctx =
    match setup with
    | `Plain -> Ctx.make
    | `Authenticated -> Ctx.make_authenticated
  in
  let n_corrupt = Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 corrupt in
  (* [allow_excess_corruptions] deliberately breaks the t < n/3 contract — the
     resilience experiment measures what fails beyond the bound. *)
  if n_corrupt > t && not allow_excess_corruptions then
    invalid_arg "Sim.run: more corruptions than t";
  let metrics = Metrics.create () in
  let states = Array.init n (fun me -> protocol (make_ctx ~n ~t ~me)) in
  let outputs = Array.make n None in
  let label_stacks = Array.make n [] in
  (* Normalize label/probe nodes so that every state is [Done] or [Step].
     [round] is the session-local number of rounds completed, which is what
     the telemetry records as span enter/exit and probe rounds. *)
  let rec settle ~round i = function
    | Proto.Push (l, rest) ->
        label_stacks.(i) <- l :: label_stacks.(i);
        (match telemetry with
        | Some tm -> Telemetry.push tm ~session:0 ~party:i ~round ~label:l
        | None -> ());
        settle ~round i rest
    | Proto.Pop rest ->
        (label_stacks.(i) <-
           (match label_stacks.(i) with [] -> [] | _ :: tl -> tl));
        (match telemetry with
        | Some tm -> Telemetry.pop tm ~session:0 ~party:i ~round
        | None -> ());
        settle ~round i rest
    | Proto.Probe (key, value, rest) ->
        (match telemetry with
        | Some tm when Telemetry.capture_probes tm ->
            (* The thunk renders the party's full candidate value (O(ℓ));
               only force it when this recorder keeps probes. *)
            Telemetry.probe_event tm ~session:0 ~party:i ~round
              ~byzantine:corrupt.(i) ~key ~value:(value ())
        | Some _ | None -> ());
        settle ~round i rest
    | (Proto.Done _ | Proto.Step _) as s -> s
  in
  Array.iteri (fun i s -> states.(i) <- settle ~round:0 i s) states;
  let honest_running () =
    let running = ref false in
    Array.iteri
      (fun i s ->
        match s with
        | Proto.Step _ when not corrupt.(i) -> running := true
        | _ -> ())
      states;
    !running
  in
  while honest_running () do
    metrics.Metrics.rounds <- metrics.Metrics.rounds + 1;
    if metrics.Metrics.rounds > max_rounds then
      raise (Round_limit_exceeded max_rounds);
    (* 1. Prescribed outboxes for every party. *)
    let prescribed =
      Array.mapi
        (fun _i s ->
          match s with
          | Proto.Step (out, _) -> Array.init n out
          | Proto.Done _ -> Array.make n None
          | Proto.Push _ | Proto.Pop _ | Proto.Probe _ -> assert false)
        states
    in
    (* 2. Rushing adversary picks the corrupted parties' actual messages. *)
    let view =
      { Adversary.round = metrics.Metrics.rounds; n; t; corrupt; prescribed }
    in
    let actual =
      Array.init n (fun s ->
          if not corrupt.(s) then prescribed.(s)
          else
            Array.init n (fun r ->
                match adversary.Adversary.act view ~sender:s ~recipient:r with
                | Some m when String.length m > max_byzantine_bytes ->
                    Some (String.sub m 0 max_byzantine_bytes)
                | other -> other))
    in
    (* 3. Accounting (self-addressed messages are free). *)
    for s = 0 to n - 1 do
      for r = 0 to n - 1 do
        if s <> r then
          match actual.(s).(r) with
          | None -> ()
          | Some m ->
              let label =
                match label_stacks.(s) with [] -> None | l :: _ -> Some l
              in
              (match trace with
              | Some tr ->
                  Trace.record tr
                    {
                      Trace.round = metrics.Metrics.rounds;
                      src = s;
                      dst = r;
                      bytes = String.length m;
                      byzantine = corrupt.(s);
                      label;
                      session = 0;
                    }
              | None -> ());
              (match telemetry with
              | Some tm ->
                  Telemetry.message tm ~session:0 ~party:s
                    ~round:metrics.Metrics.rounds ~bytes:(String.length m)
                    ~byzantine:corrupt.(s) ()
              | None -> ());
              if corrupt.(s) then
                Metrics.record_byzantine metrics ~bytes:(String.length m)
              else Metrics.record_honest metrics ~label ~bytes:(String.length m)
      done
    done;
    (* 4. Deliver and advance. Party [i]'s continuation reads the shared
       [actual] matrix (frozen for the round) and writes only its own slots —
       [states.(i)], [label_stacks.(i)] and the (0, i) telemetry bucket — so
       the parties of one round advance in parallel without changing a byte:
       accounting (metrics, trace, adversary PRNG order) stayed sequential
       above. *)
    let advance i =
      match states.(i) with
      | Proto.Step (_, k) ->
          let inbox = Array.init n (fun s -> actual.(s).(i)) in
          states.(i) <- settle ~round:metrics.Metrics.rounds i (k inbox)
      | Proto.Done _ -> ()
      | Proto.Push _ | Proto.Pop _ | Proto.Probe _ -> assert false
    in
    (match pool with
    | Some pool -> Pool.parallel_for ~domains pool ~n advance
    | None ->
        for i = 0 to n - 1 do
          advance i
        done)
  done;
  (match telemetry with
  | Some tm ->
      for i = 0 to n - 1 do
        Telemetry.finish tm ~session:0 ~party:i ~round:metrics.Metrics.rounds
      done
  | None -> ());
  Array.iteri
    (fun i s -> match s with Proto.Done v -> outputs.(i) <- Some v | _ -> ())
    states;
  { outputs; metrics }

(** Convenience: run with the first [n_corrupt] parties corrupted. *)
let corrupt_first ~n k =
  if k < 0 || k > n then invalid_arg "Sim.corrupt_first";
  Array.init n (fun i -> i < k)

(** Honest parties' outputs, in party order. Raises [Failure] if any honest
    party failed to terminate (cannot happen unless [max_rounds] was hit —
    termination is part of every protocol's contract). *)
let honest_outputs ~corrupt outcome =
  let out = ref [] in
  Array.iteri
    (fun i o ->
      if not corrupt.(i) then
        match o with
        | Some v -> out := v :: !out
        | None -> failwith (Printf.sprintf "party %d did not terminate" i))
    outcome.outputs;
  List.rev !out
