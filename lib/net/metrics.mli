(** Communication accounting.

    [BITS_ℓ(Π)] in the paper is the number of bits sent by honest parties;
    the simulator reports the bits actually sent by honest parties in a run.
    Self-addressed messages are free (the model's "send to all" includes
    remembering your own value). Each message costs [8 × bytes]: the wire is
    byte-aligned, a documented constant-factor deviation (DESIGN.md).
    Byzantine traffic is tracked separately and never counts toward
    [honest_bits].

    Per-label counters (see {!Proto.with_label}) attribute honest bits to the
    sending party's innermost active label — the basis of the
    component-ablation experiment (T5).

    {b Threading contract}: a [t] is plain mutable state with no internal
    locking — single writer per domain. Parallel runs give every shard
    (session, in the engine's case) a private collector and aggregate via
    {!merge} afterwards; since the counters are sums (and [rounds] a max),
    merging shards in session order reproduces the single-collector table
    exactly, label tie-breaks included. *)

type t = {
  mutable rounds : int;
  mutable honest_bits : int;
  mutable honest_msgs : int;
  mutable byz_bits : int;
  mutable byz_msgs : int;
  by_label : (string, int) Hashtbl.t;
}

val create : unit -> t

val no_label : string
(** Label under which unlabelled traffic is recorded. *)

val is_empty : t -> bool
(** True iff nothing has been recorded: every counter (rounds included) is
    zero and the label table is empty — the state {!create} returns. *)

val record_honest : t -> label:string option -> bytes:int -> unit
val record_byzantine : t -> bytes:int -> unit

val merge : into:t -> t -> unit
(** Accumulate a session's counters into an aggregate: bit/message counters
    and per-label bits are summed; [rounds] takes the max, because concurrent
    sessions overlap in time (the engine's wall-clock is the max, not the
    sum, of its sessions' rounds). *)

val snapshot : t -> t
(** An independent point-in-time copy (label table included); the original
    keeps accumulating without affecting it. *)

val diff : after:t -> before:t -> t
(** Counters accumulated between two snapshots of the same run: every field
    — including [rounds] — subtracts, and zero-delta labels are dropped.
    The per-interval attribution primitive ([snapshot] before, [diff]
    after). *)

val labels : t -> (string * int) list
(** Per-label honest bits, bits descending, ties broken by label ascending —
    fully deterministic. *)

val pp : Format.formatter -> t -> unit
