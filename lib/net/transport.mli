(** The transport seam between the session engine and the byte-moving layer.

    Each engine round, the engine coalesces every live session's traffic
    between an ordered pair of parties into one {!Wire.Frame}; a transport's
    only job is to move those frames from senders to recipients and hand back
    the decoded entry lists. Factoring this signature out of the execution
    backends ([Net.Sim]-style in-memory delivery, [Net_unix]'s thread-per-party
    socket mesh, [Net_poll]'s single-process event loop) lets one engine core
    drive all of them — and makes the bit-identity invariant structural: the
    engine computes messages, metrics and telemetry identically no matter
    which transport carries the bytes.

    A transport is an {e exchange}: a per-round barrier that accepts the
    round's entry matrix and returns the delivered entries. The engine hands
    over only the {e decoded} form; a byte-moving transport encodes each
    pair's {!Wire.Frame} itself (in place, into its own buffers — see
    [Net_poll]), while an in-memory transport never touches bytes at all.
    Frame-byte accounting lives in the engine, computed from
    {!Wire.Frame.encoded_size}, so the ledger is identical either way.
    Within the exchange a real transport is free to be event-driven
    (nonblocking I/O, partial writes, backpressure) — the engine only
    observes the completed round. *)

type bundles = (int * string) list array array
(** [b.(src).(dst)] is the ordered [(sid, payload)] entry list of the frame
    from [src] to [dst], in admission order; the diagonal is unused. *)

type t = {
  name : string;  (** Backend name, e.g. ["loopback"] or ["poll"]. *)
  direct : bool;
      (** True when [exchange] is the identity on [entries] — delivery needs
          no wire and cannot reorder, drop or rewrite anything. The engine
          exploits this: with a direct transport it fuses each session's send
          and delivery into one parallel phase (one barrier per engine round)
          instead of holding every session at the exchange. The observable
          outcome is bit-identical either way; [direct] only licenses the
          cheaper schedule. *)
  exchange : round:int -> entries:bundles -> bundles;
      (** Move one engine round's traffic. [entries.(s).(d)] is the decoded
          frame content (empty lists included — encoded as the keep-alive
          frames that hold rounds together). The result is indexed like
          [entries]; a lossless transport returns exactly [entries]. The
          returned matrix (and the lists inside it) may be reused by the
          transport on the next exchange — the engine consumes it before
          calling again. Raises [Failure] on transport-level violations
          (undecodable frame, wrong round). *)
  close : unit -> unit;
      (** Release transport resources; idempotent. *)
}

val loopback : unit -> t
(** The in-memory transport: delivery is the identity on [entries], no bytes
    move, [direct = true]. [Engine.run_sim] is the engine core over this
    transport. *)
