(** The transport seam between the session engine and the byte-moving layer.

    Each engine round, the engine coalesces every live session's traffic
    between an ordered pair of parties into one {!Wire.Frame}; a transport's
    only job is to move those frames from senders to recipients and hand back
    the decoded entry lists. Factoring this signature out of the execution
    backends ([Net.Sim]-style in-memory delivery, [Net_unix]'s thread-per-party
    socket mesh, [Net_poll]'s single-process event loop) lets one engine core
    drive all of them — and makes the bit-identity invariant structural: the
    engine computes messages, metrics and telemetry identically no matter
    which transport carries the bytes.

    A transport is an {e exchange}: a per-round barrier that accepts the
    round's full frame matrix and returns the delivered entries. Within the
    exchange a real transport is free to be event-driven (nonblocking I/O,
    partial writes, backpressure) — the engine only observes the completed
    round. *)

type bundles = (int * string) list array array
(** [b.(src).(dst)] is the ordered [(sid, payload)] entry list of the frame
    from [src] to [dst], in admission order; the diagonal is unused. *)

type t = {
  name : string;  (** Backend name, e.g. ["loopback"] or ["poll"]. *)
  exchange : round:int -> frames:string array array -> entries:bundles -> bundles;
      (** Move one engine round's traffic. [frames.(s).(d)] is the encoded
          {!Wire.Frame} (empty frames included — they are the keep-alives that
          hold rounds together); [entries] is the same data pre-decoded, which
          an in-memory transport may return without touching the bytes. The
          result is indexed like [entries]; a lossless transport returns
          exactly [entries]. Raises [Failure] on transport-level violations
          (undecodable frame, wrong round). *)
  close : unit -> unit;
      (** Release transport resources; idempotent. *)
}

val loopback : unit -> t
(** The in-memory transport: delivery is the identity on [entries], no bytes
    move. [Engine.run_sim] is the engine core over this transport. *)
