(** Lock-step synchronous execution of [n] protocol instances against a
    rushing Byzantine adversary, with exact communication accounting.

    Every party — corrupted or not — runs its protocol instance; each round
    the adversary sees all prescribed messages (rushing) and substitutes the
    corrupted parties' actual messages (see {!Adversary}). The run ends when
    every honest party's instance has terminated.

    Executions are fully deterministic: protocol values are deterministic,
    adversary strategies derive randomness from explicit seeds, and delivery
    is lock-step — a run is reproducible from its inputs. *)

type 'a outcome = {
  outputs : 'a option array;
      (** Per party: [Some] once its instance terminated. Corrupted parties'
          entries reflect their (adversary-ignored) instance and are reported
          for diagnostics only. *)
  metrics : Metrics.t;
}

exception Round_limit_exceeded of int
(** Raised when a run exceeds [max_rounds] — a non-termination tripwire, not
    an expected outcome: every protocol in this repository terminates. *)

val default_max_rounds : int

val max_byzantine_bytes : int
(** Byzantine messages are truncated to this size before delivery, so honest
    allocations stay bounded regardless of the adversary. *)

val run :
  ?max_rounds:int ->
  ?allow_excess_corruptions:bool ->
  ?trace:Trace.t ->
  ?telemetry:Telemetry.t ->
  ?domains:int ->
  ?setup:[ `Plain | `Authenticated ] ->
  n:int ->
  t:int ->
  corrupt:bool array ->
  adversary:Adversary.t ->
  (Ctx.t -> 'a Proto.t) ->
  'a outcome
(** [run ~n ~t ~corrupt ~adversary protocol] executes [protocol ctx] for all
    [n] parties. [corrupt.(i)] puts party [i] under the adversary's control;
    at most [t] parties may be corrupted unless [allow_excess_corruptions]
    is set (used only by the beyond-the-bound resilience experiment).
    [telemetry] attaches a recorder (session 0): label scopes become spans,
    sent messages feed spans and the round timeline, and [Proto.probe]
    thunks are forced and recorded — summing the recorder's span bits
    reproduces [metrics.honest_bits] exactly. [domains] (default 1) advances
    the [n] parties of each round in parallel on the shared {!Pool}; outputs,
    metrics, trace and telemetry are bit-identical to the sequential run
    (each party's continuation touches only its own state, and accounting
    stays on the calling domain). Raises [Invalid_argument] on inconsistent
    parameters. *)

val corrupt_first : n:int -> int -> bool array
(** [corrupt_first ~n k]: the corruption pattern with parties [0..k-1]
    corrupted. *)

val honest_outputs : corrupt:bool array -> 'a outcome -> 'a list
(** Honest parties' outputs in party order. Raises [Failure] if an honest
    party did not terminate (possible only under [max_rounds] abuse). *)
