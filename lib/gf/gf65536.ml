type t = int

let order = 65536
let field_mask = 0xffff
let poly = 0x1100B (* x^16 + x^12 + x^3 + x + 1, primitive over GF(2) *)
let zero = 0
let one = 1

(* exp_table.(i) = 2^i for i in [0, 2*65534]; doubled so products of two logs
   index without a modulo. log_table.(x) = log_2 x for x in [1, 65535]. *)
let exp_table, log_table =
  let exp_table = Array.make (2 * 65535) 0 in
  let log_table = Array.make order (-1) in
  let x = ref 1 in
  for i = 0 to 65534 do
    exp_table.(i) <- !x;
    if log_table.(!x) = -1 then log_table.(!x) <- i
    else if i > 0 then failwith "Gf65536: generator is not primitive";
    x := !x lsl 1;
    if !x land 0x10000 <> 0 then x := !x lxor poly
  done;
  if !x <> 1 then failwith "Gf65536: table construction error";
  for i = 65535 to (2 * 65535) - 1 do
    exp_table.(i) <- exp_table.(i - 65535)
  done;
  (exp_table, log_table)

let check x = if x < 0 || x > field_mask then invalid_arg "Gf65536: out of range"

let add a b =
  check a;
  check b;
  a lxor b

let sub = add

let mul a b =
  check a;
  check b;
  if a = 0 || b = 0 then 0 else exp_table.(log_table.(a) + log_table.(b))

let inv a =
  check a;
  if a = 0 then raise Division_by_zero;
  exp_table.(65535 - log_table.(a))

let div a b =
  check a;
  if b = 0 then raise Division_by_zero;
  check b;
  if a = 0 then 0 else exp_table.(log_table.(a) + 65535 - log_table.(b))

let exp i =
  let i = ((i mod 65535) + 65535) mod 65535 in
  exp_table.(i)

(* ---- unchecked hot-loop kernels ----------------------------------------- *)

let mul_unsafe a b =
  if a = 0 || b = 0 then 0
  else
    Array.unsafe_get exp_table
      (Array.unsafe_get log_table a + Array.unsafe_get log_table b)

let dot ~coeff_logs ~pos ~ys ~k =
  let acc = ref 0 in
  for j = 0 to k - 1 do
    let cl = Array.unsafe_get coeff_logs (pos + j) in
    if cl >= 0 then begin
      let y = Array.unsafe_get ys j in
      if y <> 0 then
        acc :=
          !acc
          lxor Array.unsafe_get exp_table (cl + Array.unsafe_get log_table y)
    end
  done;
  !acc

let log a =
  check a;
  if a = 0 then invalid_arg "Gf65536.log 0";
  log_table.(a)

let pow a n =
  check a;
  if a = 0 then if n = 0 then 1 else 0
  else exp (log_table.(a) * (((n mod 65535) + 65535) mod 65535) mod 65535)
