(** The Galois field GF(2^16), the codeword alphabet of the Reed–Solomon
    substrate (Section 7 requires a field with [n <= 2^a - 1]; 16-bit symbols
    support up to 65535 parties).

    Elements are ints in [0, 65535]. Arithmetic uses log/exp tables over the
    primitive polynomial x^16 + x^12 + x^3 + x + 1 (0x1100B) with generator 2;
    primitivity is checked when the tables are built. *)

type t = int
(** Invariant: [0 <= x <= 0xffff]. Operations raise [Invalid_argument] on
    out-of-range inputs. *)

val order : int
(** 65536. *)

val zero : t
val one : t
val add : t -> t -> t
(** Also subtraction (characteristic 2). *)

val sub : t -> t -> t
val mul : t -> t -> t
val inv : t -> t
(** Raises [Division_by_zero] on [inv 0]. *)

val div : t -> t -> t
val pow : t -> int -> t
val exp : int -> t
(** [exp i] = generator^i (any int exponent, reduced mod 65535). *)

val log : t -> int
(** Discrete log base the generator. Raises [Invalid_argument] on [log 0]. *)

(** {2 Unchecked hot-loop kernels}

    Inner-loop primitives for the Reed–Solomon codec: no range checks, no
    allocation. Callers must uphold the element invariant themselves; the
    checked API above remains the default. *)

val mul_unsafe : t -> t -> t
(** [mul a b] without range checks. Behaviour is undefined outside
    [0, 0xffff]. *)

val dot : coeff_logs:int array -> pos:int -> ys:int array -> k:int -> t
(** Log-domain dot product: XOR over [j < k] of
    [exp (coeff_logs.(pos + j) + log ys.(j))], where a coefficient log of
    [-1] encodes the zero coefficient and zero [ys] entries are skipped.
    Unchecked: [coeff_logs] entries must be [-1] or in [0, 65534], [ys]
    entries valid field elements, and the ranges in bounds. *)
