(** Scenario files for the CLI: a minimal `key = value` format so experiment
    configurations can live in version control and be replayed exactly
    ([convex-agreement run --file experiment.scn]).

    Grammar: one `key = value` per line; blank lines and lines starting with
    [#] are ignored; keys may appear once. Unknown keys and malformed values
    are errors — a typo must never silently fall back to a default. *)

type t = {
  n : int;
  t : int;
  protocol : string;
  workload : string;
  adversary : string;
  attack : string;
  ba : string;
      (** BA substrate backend for the pi-z family:
          unauth | auth | adaptive | adaptive-auth *)
  bits : int;
  aa_rounds : int;
  seed : int;
}

val default : t
(** n = 7, t = 2, pi-z on sensors vs equivocate/outlier-high, ba = unauth,
    bits = 64, aa_rounds = 8, seed = 1. *)

val parse : string -> (t, string) result
(** Parse file contents (not a path). Starts from {!default}; every
    assignment overrides one field. Errors name the offending line. *)

val load : string -> (t, string) result
(** Read and parse a file by path. *)

val to_string : t -> string
(** Render a scenario back to the file format (round-trips with {!parse}). *)
