type t = {
  n : int;
  t : int;
  protocol : string;
  workload : string;
  adversary : string;
  attack : string;
  ba : string;
  bits : int;
  aa_rounds : int;
  seed : int;
}

let default =
  {
    n = 7;
    t = 2;
    protocol = "pi-z";
    workload = "sensors";
    adversary = "equivocate";
    attack = "outlier-high";
    ba = "unauth";
    bits = 64;
    aa_rounds = 8;
    seed = 1;
  }

let ( let* ) = Result.bind

let parse_int ~line raw =
  match int_of_string_opt (String.trim raw) with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "line %d: %S is not an integer" line raw)

let apply acc ~line ~key ~value =
  let int () = parse_int ~line value in
  let str () = Ok (String.trim value) in
  match String.trim key with
  | "n" ->
      let* v = int () in
      Ok { acc with n = v }
  | "t" ->
      let* v = int () in
      Ok { acc with t = v }
  | "bits" ->
      let* v = int () in
      Ok { acc with bits = v }
  | "aa_rounds" ->
      let* v = int () in
      Ok { acc with aa_rounds = v }
  | "seed" ->
      let* v = int () in
      Ok { acc with seed = v }
  | "protocol" ->
      let* v = str () in
      Ok { acc with protocol = v }
  | "workload" ->
      let* v = str () in
      Ok { acc with workload = v }
  | "adversary" ->
      let* v = str () in
      Ok { acc with adversary = v }
  | "attack" ->
      let* v = str () in
      Ok { acc with attack = v }
  | "ba" ->
      let* v = str () in
      Ok { acc with ba = v }
  | other -> Error (Printf.sprintf "line %d: unknown key %S" line other)

let parse contents =
  let lines = String.split_on_char '\n' contents in
  let rec go acc seen line_no = function
    | [] -> Ok acc
    | line :: rest ->
        let trimmed = String.trim line in
        if trimmed = "" || trimmed.[0] = '#' then go acc seen (line_no + 1) rest
        else begin
          match String.index_opt trimmed '=' with
          | None -> Error (Printf.sprintf "line %d: expected key = value" line_no)
          | Some i ->
              let key = String.trim (String.sub trimmed 0 i) in
              let value = String.sub trimmed (i + 1) (String.length trimmed - i - 1) in
              if List.mem key seen then
                Error (Printf.sprintf "line %d: duplicate key %S" line_no key)
              else
                let* acc = apply acc ~line:line_no ~key ~value in
                go acc (key :: seen) (line_no + 1) rest
        end
  in
  let* scn = go default [] 1 lines in
  if scn.n < 1 then Error "n must be >= 1"
  else if scn.t < 0 then Error "t must be >= 0"
  else if scn.bits < 1 then Error "bits must be >= 1"
  else Ok scn

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> parse contents
  | exception Sys_error msg -> Error msg

let to_string s =
  String.concat "\n"
    [
      "# convex-agreement scenario";
      Printf.sprintf "n = %d" s.n;
      Printf.sprintf "t = %d" s.t;
      Printf.sprintf "protocol = %s" s.protocol;
      Printf.sprintf "workload = %s" s.workload;
      Printf.sprintf "adversary = %s" s.adversary;
      Printf.sprintf "attack = %s" s.attack;
      Printf.sprintf "ba = %s" s.ba;
      Printf.sprintf "bits = %d" s.bits;
      Printf.sprintf "aa_rounds = %d" s.aa_rounds;
      Printf.sprintf "seed = %d" s.seed;
      "";
    ]
