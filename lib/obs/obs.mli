(** Runtime observability plane: histograms, time-series sampler, Chrome
    trace export, live stats endpoint.

    Layered over (not replacing) [lib/telemetry]: telemetry byte-audits
    {e where the bits went}; this module reports {e how the run behaves} —
    latency/size distributions, GC and RSS time series, a loadable
    flamegraph timeline, and an on-demand plain-text stats dump — cheaply
    enough to stay on during soaks and benches (recording allocates
    nothing; export is the cold path).

    Every instrument carries a {!tier}:

    - {!Det}: derived from the deterministic execution (bytes, frames,
      rounds, live-session counts). Byte-identical across the sim, poll and
      multi-domain backends of one scenario — asserted in tests via
      [to_jsonl ~tier:Det] and {!Trace.chrome_trace} (virtual clock).
    - {!Sampled}: wall-clock or process-level measurements (durations, GC,
      RSS). Structurally excluded from identity asserts.

    The registry is single-threaded by design: the engine records from its
    sequential sections only, the poll loop from its own (only) thread. *)

(** {1 Log-bucketed histograms} *)

module Hist : sig
  type t
  (** A fixed 64-slot, log-bucketed (HDR-style) histogram over [int].
      Bucket [0] holds every value [<= 0]; bucket [i >= 1] holds the values
      with exactly [i] significant bits, i.e. [[2^(i-1), 2^i)]. Recording
      is O(word size) and allocation-free. *)

  val slots : int
  (** Number of buckets: 64. *)

  val create : unit -> t

  val record : t -> int -> unit
  (** Count one observation. No allocation. *)

  val count : t -> int
  val sum : t -> int

  val min_value : t -> int
  (** Smallest recorded value; [0] when empty. *)

  val max_value : t -> int
  (** Largest recorded value; [0] when empty. *)

  val mean : t -> float
  (** [sum / count]; [0.0] when empty. *)

  val bucket_of_value : int -> int
  (** Total over [int]: every value maps to exactly one bucket. *)

  val bucket_lo : int -> int
  (** Inclusive lower bound of a bucket ([min_int] for bucket 0). *)

  val bucket_hi : int -> int
  (** Inclusive upper bound of a bucket ([0] for bucket 0; [max_int] for the
      platform's top bucket). *)

  val quantile_bounds : t -> float -> int * int
  (** [(lo, hi)] of the bucket containing the [q]-quantile (1-based
      [ceil (q * count)] rank over the sorted recordings), clamped to the
      observed [[min, max]] — the true quantile value lies within, so the
      estimate is off by at most one bucket width. [(0, 0)] when empty; [q]
      is clamped to [[0, 1]]. *)

  val quantile : t -> float -> int
  (** Upper edge of {!quantile_bounds}: a conservative estimate that never
      exceeds the recorded maximum. *)

  val counts : t -> int array
  (** Copy of the 64 bucket counts. *)

  val merge : into:t -> t -> unit
  (** Pointwise add; min/max/sum/count combine accordingly. *)
end

(** {1 The instrument registry} *)

type tier =
  | Det  (** Deterministic: identical across backends, identity-asserted. *)
  | Sampled  (** Wall-clock / process-level: excluded from identity asserts. *)

type t
(** A named registry of counters, gauges and histograms. *)

type counter
type gauge

val create : unit -> t

val counter : t -> tier:tier -> string -> counter
(** Get or create. Raises [Invalid_argument] if [name] already exists with
    another tier or kind. *)

val gauge : t -> tier:tier -> string -> gauge
val hist : t -> tier:tier -> string -> Hist.t

val incr : counter -> int -> unit
val counter_value : counter -> int
val set_gauge : gauge -> int -> unit

val max_gauge : gauge -> int -> unit
(** Raise the gauge to [v] if larger (peak tracking). *)

val gauge_value : gauge -> int

val to_jsonl : ?tier:tier -> t -> string
(** Canonical JSONL: counters, then gauges, then histograms, each sorted by
    name; histogram lines carry count/sum/min/max, p50/p90/p99 and the
    non-empty buckets. [?tier] restricts to one tier — [~tier:Det] is the
    deterministic export used in byte-identity asserts. *)

val pp_text : Format.formatter -> t -> unit
(** Human-readable dump: every instrument with histogram quantiles — what
    the live endpoint serves. *)

val render_text : t -> string

val poll_sink : t -> Net_poll.sink
(** A {!Net_poll.sink} recording select waits and write stalls into the
    sampled-tier histograms [poll/select_wait_ns] and
    [poll/write_stall_ns]. *)

(** {1 Periodic time-series sampler} *)

module Sampler : sig
  type sample = {
    s_idx : int;  (** Global sample index (dropped samples leave gaps). *)
    s_round : int;
    s_live : int;  (** Live sessions at sample time; [-1] unknown. *)
    s_minor_words : float;
    s_promoted_words : float;
    s_major_words : float;
    s_minor_collections : int;
    s_major_collections : int;
    s_heap_words : int;
    s_compactions : int;
    s_rss_bytes : int;  (** [-1] where [/proc] is unavailable. *)
    s_poll : Net_poll.stats option;
  }

  type t
  (** A bounded ring of samples: recording past capacity drops the oldest. *)

  val create : ?capacity:int -> unit -> t
  (** Default capacity 1024. *)

  val record : t -> round:int -> ?live:int -> ?poll:Net_poll.stats -> unit -> unit
  (** Snapshot [Gc.quick_stat], [Net_poll.rss_bytes] and the given gauges
      into the ring. Everything here is {!Sampled}-tier by nature. *)

  val capacity : t -> int

  val recorded : t -> int
  (** Total samples ever recorded (retained + dropped). *)

  val length : t -> int
  (** Samples currently retained. *)

  val dropped : t -> int
  val samples : t -> sample list
  (** Retained samples, chronological. *)

  val to_jsonl : t -> string
  (** One [sampler] header line (capacity / recorded / dropped), then one
      [sample] line per retained sample, chronological. *)
end

(** {1 Chrome trace_event export} *)

module Trace : sig
  val chrome_trace : ?round_us:int -> Telemetry.t -> string
  (** Render the recorder's span trees and round timeline as Chrome
      [trace_event] (catapult) JSON, loadable in [chrome://tracing] or
      Perfetto. The clock is virtual: one engine round is [round_us]
      (default 1000) microseconds, so the trace is a pure function of the
      deterministic execution and byte-identical across backends. Tracks:
      pid = session, tid = party (spans as complete events, duration
      inclusive of the exit round), plus a synthetic [engine] process
      carrying one instant per round and per-round counters (honest
      traffic, live sessions). *)
end

(** {1 Live stats endpoint} *)

module Endpoint : sig
  type t
  (** A Unix-domain listening socket that serves [render ()] to every
      client that connects, one-shot (connect, read to EOF). *)

  val create : path:string -> render:(unit -> string) -> t
  (** Bind and listen on [path] (an existing socket file is replaced),
      nonblocking. Raises [Unix.Unix_error] on bind failure. *)

  val fd : t -> Unix.file_descr
  val path : t -> string

  val service : t -> unit
  (** Accept and answer every pending client, then return. Never raises;
      writes to a stuck client time out (0.5 s) rather than blocking the
      caller — safe to invoke from inside the poll loop. *)

  val attach : t -> Net_poll.t -> unit
  (** [Net_poll.set_control]: the endpoint's fd joins the poll loop's
      select set and {!service} runs whenever a client is waiting, so the
      stats dump is reachable mid-round during long exchanges. *)

  val close : t -> unit
  (** Close and unlink; idempotent. *)

  val fetch : path:string -> (string, string) result
  (** Client side: connect to [path] and read the dump to EOF ([ca_cli obs]
      uses this). [Error] carries the [Unix] error message. *)
end

(** {1 Export schema checks}

    Self-validation for the three export formats, used by the [obs-smoke]
    make target and tests. Checks structure, not values. *)

module Check : sig
  val registry_jsonl : string -> (int, string) result
  (** Validate a {!to_jsonl} export; [Ok] carries the line count. *)

  val sampler_jsonl : string -> (int, string) result
  (** Validate a {!Sampler.to_jsonl} export (header line required). *)

  val chrome_trace : string -> (int, string) result
  (** Validate a {!Trace.chrome_trace} export; [Ok] carries the event
      count. *)
end
