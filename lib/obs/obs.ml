(* Runtime observability plane, layered over (not replacing) lib/telemetry.

   Telemetry answers "where did the bits go" with byte-audited span trees;
   this module answers "how is the run behaving" — latency and size
   distributions, GC/RSS time series, a loadable trace timeline, and a live
   stats endpoint — at a cost low enough to leave on during soaks and
   benches.

   The design splits every instrument into one of two tiers:

   - [Det]: values derived from the deterministic execution (bytes, frames,
     rounds, live-session counts). These are byte-identical across the sim,
     poll, and multi-domain backends of the same scenario and are asserted
     so in tests.
   - [Sampled]: wall-clock and process-level measurements (durations, GC,
     RSS). Excluded from identity asserts by construction: the deterministic
     export path simply filters them out.

   Recording is allocation-free (fixed arrays, mutable ints); export is the
   cold path and allocates freely. *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* ---- log-bucketed histograms ---------------------------------------------- *)

module Hist = struct
  let slots = 64

  type t = {
    counts : int array;  (* length [slots], fixed at creation *)
    mutable h_count : int;
    mutable h_sum : int;
    mutable h_min : int;
    mutable h_max : int;
  }

  let create () =
    { counts = Array.make slots 0; h_count = 0; h_sum = 0; h_min = 0; h_max = 0 }

  (* Bucket i >= 1 holds the values with exactly i significant bits,
     [2^(i-1), 2^i); bucket 0 holds everything <= 0. On 63-bit ints the
     highest inhabited bucket is 62 ([2^61, max_int]); slot 63 exists for
     wider-int platforms. *)
  let bucket_of_value v =
    if v <= 0 then 0
    else begin
      let bits = ref 0 and x = ref v in
      while !x <> 0 do
        incr bits;
        x := !x lsr 1
      done;
      if !bits > slots - 1 then slots - 1 else !bits
    end

  let bucket_lo i =
    if i <= 0 then min_int
    else if i - 1 >= Sys.int_size - 1 then max_int
    else 1 lsl (i - 1)

  let bucket_hi i =
    if i <= 0 then 0
    else if i >= Sys.int_size - 1 then max_int
    else (1 lsl i) - 1

  let record h v =
    let i = bucket_of_value v in
    h.counts.(i) <- h.counts.(i) + 1;
    h.h_sum <- h.h_sum + v;
    if h.h_count = 0 then begin
      h.h_min <- v;
      h.h_max <- v
    end
    else begin
      if v < h.h_min then h.h_min <- v;
      if v > h.h_max then h.h_max <- v
    end;
    h.h_count <- h.h_count + 1

  let count h = h.h_count
  let sum h = h.h_sum
  let min_value h = if h.h_count = 0 then 0 else h.h_min
  let max_value h = if h.h_count = 0 then 0 else h.h_max

  let mean h =
    if h.h_count = 0 then 0.0
    else float_of_int h.h_sum /. float_of_int h.h_count

  let counts h = Array.copy h.counts

  (* The bucket holding the q-quantile by the 1-based ceil(q*n) rank over the
     sorted recordings; the true quantile value lies inside the returned
     bounds, which are additionally clamped to the observed [min, max]. *)
  let quantile_bounds h q =
    if h.h_count = 0 then (0, 0)
    else begin
      let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
      let rank =
        let r = int_of_float (ceil (q *. float_of_int h.h_count)) in
        if r < 1 then 1 else r
      in
      let acc = ref 0 and i = ref 0 and found = ref (-1) in
      while !found < 0 && !i < slots do
        acc := !acc + h.counts.(!i);
        if !acc >= rank then found := !i;
        incr i
      done;
      let b = if !found < 0 then slots - 1 else !found in
      let lo = if bucket_lo b < h.h_min then h.h_min else bucket_lo b in
      let hi = if bucket_hi b > h.h_max then h.h_max else bucket_hi b in
      (lo, hi)
    end

  let quantile h q = snd (quantile_bounds h q)

  let merge ~into src =
    for i = 0 to slots - 1 do
      into.counts.(i) <- into.counts.(i) + src.counts.(i)
    done;
    if src.h_count > 0 then begin
      if into.h_count = 0 then begin
        into.h_min <- src.h_min;
        into.h_max <- src.h_max
      end
      else begin
        if src.h_min < into.h_min then into.h_min <- src.h_min;
        if src.h_max > into.h_max then into.h_max <- src.h_max
      end;
      into.h_count <- into.h_count + src.h_count;
      into.h_sum <- into.h_sum + src.h_sum
    end
end

(* ---- the instrument registry ---------------------------------------------- *)

type tier = Det | Sampled

let tier_name = function Det -> "det" | Sampled -> "sampled"

type counter = { mutable cn_value : int }
type gauge = { mutable g_value : int }
type instr = C of counter | G of gauge | H of Hist.t
type t = { instrs : (string, tier * instr) Hashtbl.t }

let create () = { instrs = Hashtbl.create 32 }

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "hist"

let get t ~tier name make describe =
  match Hashtbl.find_opt t.instrs name with
  | Some (tr, instr) ->
      if tr <> tier then
        invalid_arg
          (Printf.sprintf "Obs: instrument %S re-requested with tier %s (is %s)"
             name (tier_name tier) (tier_name tr));
      describe instr
  | None ->
      let instr = make () in
      Hashtbl.add t.instrs name (tier, instr);
      describe instr

let wrong_kind name instr want =
  invalid_arg
    (Printf.sprintf "Obs: instrument %S is a %s, not a %s" name
       (kind_name instr) want)

let counter t ~tier name =
  get t ~tier name
    (fun () -> C { cn_value = 0 })
    (function C c -> c | other -> wrong_kind name other "counter")

let gauge t ~tier name =
  get t ~tier name
    (fun () -> G { g_value = 0 })
    (function G g -> g | other -> wrong_kind name other "gauge")

let hist t ~tier name =
  get t ~tier name
    (fun () -> H (Hist.create ()))
    (function H h -> h | other -> wrong_kind name other "hist")

let incr c by = c.cn_value <- c.cn_value + by
let counter_value c = c.cn_value
let set_gauge g v = g.g_value <- v
let max_gauge g v = if v > g.g_value then g.g_value <- v
let gauge_value g = g.g_value

let sorted_instrs ?tier t =
  Hashtbl.fold
    (fun name (tr, instr) acc ->
      match tier with
      | Some want when tr <> want -> acc
      | _ -> (name, tr, instr) :: acc)
    t.instrs []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let quantile_points = [ (50, 0.50); (90, 0.90); (99, 0.99) ]

let to_jsonl ?tier t =
  let buf = Buffer.create 1024 in
  let order = function C _ -> 0 | G _ -> 1 | H _ -> 2 in
  let instrs =
    sorted_instrs ?tier t
    |> List.stable_sort (fun (_, _, a) (_, _, b) -> compare (order a) (order b))
  in
  List.iter
    (fun (name, tr, instr) ->
      (match instr with
      | C c ->
          Printf.bprintf buf {|{"kind":"counter","tier":"%s","name":"%s","value":%d}|}
            (tier_name tr) (escape name) c.cn_value
      | G g ->
          Printf.bprintf buf {|{"kind":"gauge","tier":"%s","name":"%s","value":%d}|}
            (tier_name tr) (escape name) g.g_value
      | H h ->
          Printf.bprintf buf
            {|{"kind":"hist","tier":"%s","name":"%s","count":%d,"sum":%d,"min":%d,"max":%d|}
            (tier_name tr) (escape name) (Hist.count h) (Hist.sum h)
            (Hist.min_value h) (Hist.max_value h);
          List.iter
            (fun (pct, q) -> Printf.bprintf buf {|,"p%d":%d|} pct (Hist.quantile h q))
            quantile_points;
          Buffer.add_string buf {|,"buckets":[|};
          let first = ref true in
          Array.iteri
            (fun i c ->
              if c > 0 then begin
                if not !first then Buffer.add_char buf ',';
                first := false;
                Printf.bprintf buf "[%d,%d]" i c
              end)
            h.Hist.counts;
          Buffer.add_string buf "]}");
      Buffer.add_char buf '\n')
    instrs;
  Buffer.contents buf

let pp_text fmt t =
  let instrs = sorted_instrs t in
  let pick want =
    List.filter (fun (_, _, i) -> kind_name i = want) instrs
  in
  Format.fprintf fmt "obs stats@.";
  let counters = pick "counter" and gauges = pick "gauge" and hists = pick "hist" in
  if counters <> [] then begin
    Format.fprintf fmt "counters:@.";
    List.iter
      (fun (name, tr, i) ->
        match i with
        | C c -> Format.fprintf fmt "  %-32s %12d  [%s]@." name c.cn_value (tier_name tr)
        | _ -> ())
      counters
  end;
  if gauges <> [] then begin
    Format.fprintf fmt "gauges:@.";
    List.iter
      (fun (name, tr, i) ->
        match i with
        | G g -> Format.fprintf fmt "  %-32s %12d  [%s]@." name g.g_value (tier_name tr)
        | _ -> ())
      gauges
  end;
  if hists <> [] then begin
    Format.fprintf fmt "histograms:@.";
    List.iter
      (fun (name, tr, i) ->
        match i with
        | H h ->
            Format.fprintf fmt
              "  %-32s n=%d min=%d p50=%d p90=%d p99=%d max=%d mean=%.1f  [%s]@."
              name (Hist.count h) (Hist.min_value h) (Hist.quantile h 0.50)
              (Hist.quantile h 0.90) (Hist.quantile h 0.99) (Hist.max_value h)
              (Hist.mean h) (tier_name tr)
        | _ -> ())
      hists
  end

let render_text t = Format.asprintf "%a" pp_text t

(* The poll loop's duration events land in two sampled-tier histograms, in
   nanoseconds. Built lazily here so run_poll can install it in one line. *)
let poll_sink t =
  let select_h = hist t ~tier:Sampled "poll/select_wait_ns" in
  let stall_h = hist t ~tier:Sampled "poll/write_stall_ns" in
  let ns s = int_of_float (s *. 1e9) in
  {
    Net_poll.sink_select_wait = (fun s -> Hist.record select_h (ns s));
    sink_write_stall = (fun s -> Hist.record stall_h (ns s));
  }

(* ---- periodic time-series sampler ----------------------------------------- *)

module Sampler = struct
  type sample = {
    s_idx : int;
    s_round : int;
    s_live : int;
    s_minor_words : float;
    s_promoted_words : float;
    s_major_words : float;
    s_minor_collections : int;
    s_major_collections : int;
    s_heap_words : int;
    s_compactions : int;
    s_rss_bytes : int;
    s_poll : Net_poll.stats option;
  }

  type t = { ring : sample option array; mutable recorded : int }

  let create ?(capacity = 1024) () =
    { ring = Array.make (max 1 capacity) None; recorded = 0 }

  let capacity t = Array.length t.ring
  let recorded t = t.recorded
  let length t = min t.recorded (capacity t)
  let dropped t = t.recorded - length t

  let record t ~round ?(live = -1) ?poll () =
    let q = Gc.quick_stat () in
    let rss = match Net_poll.rss_bytes () with Some b -> b | None -> -1 in
    let s =
      {
        s_idx = t.recorded;
        s_round = round;
        s_live = live;
        s_minor_words = q.Gc.minor_words;
        s_promoted_words = q.Gc.promoted_words;
        s_major_words = q.Gc.major_words;
        s_minor_collections = q.Gc.minor_collections;
        s_major_collections = q.Gc.major_collections;
        s_heap_words = q.Gc.heap_words;
        s_compactions = q.Gc.compactions;
        s_rss_bytes = rss;
        s_poll = poll;
      }
    in
    t.ring.(t.recorded mod capacity t) <- Some s;
    t.recorded <- t.recorded + 1

  let samples t =
    (* Chronological: when the ring has wrapped the oldest retained sample
       sits just past the write position. *)
    let cap = capacity t and n = length t in
    let start = if t.recorded <= cap then 0 else t.recorded mod cap in
    List.init n (fun i ->
        match t.ring.((start + i) mod cap) with
        | Some s -> s
        | None -> assert false)

  let to_jsonl t =
    let buf = Buffer.create 1024 in
    Printf.bprintf buf
      {|{"kind":"sampler","capacity":%d,"recorded":%d,"dropped":%d}|}
      (capacity t) t.recorded (dropped t);
    Buffer.add_char buf '\n';
    List.iter
      (fun s ->
        Printf.bprintf buf
          {|{"kind":"sample","idx":%d,"round":%d,"live":%d,"minor_words":%.0f,"promoted_words":%.0f,"major_words":%.0f,"minor_collections":%d,"major_collections":%d,"heap_words":%d,"compactions":%d,"rss_bytes":%d|}
          s.s_idx s.s_round s.s_live s.s_minor_words s.s_promoted_words
          s.s_major_words s.s_minor_collections s.s_major_collections
          s.s_heap_words s.s_compactions s.s_rss_bytes;
        (match s.s_poll with
        | None -> ()
        | Some p ->
            Printf.bprintf buf
              {|,"poll_rounds":%d,"poll_frames":%d,"poll_parked":%d,"poll_max_backlog":%d,"select_wait_mean_s":%.9f,"select_wait_max_s":%.9f|}
              p.Net_poll.p_rounds p.Net_poll.p_frames p.Net_poll.p_parked
              p.Net_poll.p_max_backlog p.Net_poll.p_select_wait_mean_s
              p.Net_poll.p_select_wait_max_s);
        Buffer.add_string buf "}\n")
      (samples t);
    Buffer.contents buf
end

(* ---- Chrome trace_event (catapult) export --------------------------------- *)

module Trace = struct
  (* One engine round maps to [round_us] virtual microseconds, so the
     timeline is a pure function of the deterministic execution: rendering
     the same telemetry from any backend yields byte-identical JSON. Spans
     become "X" (complete) events on a pid=session / tid=party track; the
     engine's round timeline becomes counter ("C") events plus one global
     instant per round on a synthetic engine track. *)
  let chrome_trace ?(round_us = 1000) tel =
    let spans = ref [] in
    Telemetry.iter_span_views tel (fun v -> spans := v :: !spans);
    let spans = List.rev !spans in
    let rounds = ref [] in
    Telemetry.iter_round_views tel (fun r -> rounds := r :: !rounds);
    let rounds = List.rev !rounds in
    let engine_pid =
      1 + List.fold_left (fun acc v -> max acc v.Telemetry.v_session) (-1) spans
    in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf {|{"traceEvents":[|};
    let first = ref true in
    let event fmt =
      Printf.ksprintf
        (fun s ->
          if not !first then Buffer.add_string buf ",\n";
          first := false;
          Buffer.add_string buf s)
        fmt
    in
    (* Track naming metadata: one process per session, one thread per
       party, plus the synthetic engine track. *)
    let last_session = ref (-1) and last_pair = ref (-1, -1) in
    List.iter
      (fun v ->
        let s = v.Telemetry.v_session and p = v.Telemetry.v_party in
        if s <> !last_session then begin
          last_session := s;
          event
            {|{"ph":"M","name":"process_name","pid":%d,"tid":0,"args":{"name":"session %d"}}|}
            s s
        end;
        if (s, p) <> !last_pair then begin
          last_pair := (s, p);
          event
            {|{"ph":"M","name":"thread_name","pid":%d,"tid":%d,"args":{"name":"party %d"}}|}
            s p p
        end)
      spans;
    if rounds <> [] then
      event
        {|{"ph":"M","name":"process_name","pid":%d,"tid":0,"args":{"name":"engine"}}|}
        engine_pid;
    (* Span tree as complete events. Duration is inclusive of the exit
       round ([enter, exit] in rounds), which keeps children inside their
       parent and zero-round spans visible. *)
    List.iter
      (fun v ->
        event
          {|{"ph":"X","name":"%s","cat":"span","pid":%d,"tid":%d,"ts":%d,"dur":%d,"args":{"path":"%s","bits":%d,"msgs":%d}}|}
          (escape v.Telemetry.v_label) v.Telemetry.v_session
          v.Telemetry.v_party
          (v.Telemetry.v_enter * round_us)
          ((v.Telemetry.v_exit - v.Telemetry.v_enter + 1) * round_us)
          (escape v.Telemetry.v_path) v.Telemetry.v_bits v.Telemetry.v_msgs)
      spans;
    (* Engine round barriers and per-round counters. *)
    List.iter
      (fun r ->
        let ts = r.Telemetry.r_round * round_us in
        event
          {|{"ph":"i","s":"g","name":"round %d","pid":%d,"tid":0,"ts":%d}|}
          r.Telemetry.r_round engine_pid ts;
        event
          {|{"ph":"C","name":"honest traffic","pid":%d,"ts":%d,"args":{"bits":%d,"msgs":%d}}|}
          engine_pid ts r.Telemetry.r_bits r.Telemetry.r_msgs;
        if r.Telemetry.r_live >= 0 then
          event
            {|{"ph":"C","name":"live sessions","pid":%d,"ts":%d,"args":{"live":%d}}|}
            engine_pid ts r.Telemetry.r_live)
      rounds;
    Buffer.add_string buf {|],"displayTimeUnit":"ms"}|};
    Buffer.add_char buf '\n';
    Buffer.contents buf
end

(* ---- live plain-text stats endpoint --------------------------------------- *)

module Endpoint = struct
  type t = {
    e_fd : Unix.file_descr;
    e_path : string;
    e_render : unit -> string;
    mutable e_closed : bool;
  }

  let create ~path ~render =
    (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try
       Unix.bind fd (Unix.ADDR_UNIX path);
       Unix.listen fd 8;
       Unix.set_nonblock fd
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    { e_fd = fd; e_path = path; e_render = render; e_closed = false }

  let fd t = t.e_fd
  let path t = t.e_path

  let service t =
    if not t.e_closed then begin
      let continue = ref true in
      while !continue do
        match Unix.accept t.e_fd with
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            continue := false
        | exception Unix.Unix_error _ -> continue := false
        | client, _ ->
            (* The dump is one-shot: render, write, close. A stuck client
               cannot hold the poll loop hostage — writes time out. *)
            (try
               Unix.setsockopt_float client Unix.SO_SNDTIMEO 0.5;
               let body = t.e_render () in
               let len = String.length body in
               let off = ref 0 and sending = ref true in
               while !sending && !off < len do
                 match Unix.write_substring client body !off (len - !off) with
                 | 0 -> sending := false
                 | k -> off := !off + k
                 | exception Unix.Unix_error _ -> sending := false
               done
             with _ -> ());
            (try Unix.close client with Unix.Unix_error _ -> ())
      done
    end

  let attach t net = Net_poll.set_control net (Some (t.e_fd, fun () -> service t))

  let close t =
    if not t.e_closed then begin
      t.e_closed <- true;
      (try Unix.close t.e_fd with Unix.Unix_error _ -> ());
      try Unix.unlink t.e_path with Unix.Unix_error _ | Sys_error _ -> ()
    end

  let fetch ~path =
    match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
    | fd -> (
        let finally () = try Unix.close fd with Unix.Unix_error _ -> () in
        Fun.protect ~finally (fun () ->
            match Unix.connect fd (Unix.ADDR_UNIX path) with
            | exception Unix.Unix_error (e, _, _) ->
                Error (Unix.error_message e)
            | () ->
                let buf = Buffer.create 1024 in
                let chunk = Bytes.create 4096 in
                let rec read_all () =
                  match Unix.read fd chunk 0 (Bytes.length chunk) with
                  | 0 -> Ok (Buffer.contents buf)
                  | k ->
                      Buffer.add_subbytes buf chunk 0 k;
                      read_all ()
                  | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
                      Ok (Buffer.contents buf)
                  | exception Unix.Unix_error (e, _, _) ->
                      Error (Unix.error_message e)
                in
                read_all ()))
end

(* ---- export schema checks ------------------------------------------------- *)

module Check = struct
  (* Minimal recursive-descent JSON reader, enough to schema-check our own
     exports (mirrors bench/validate_bench.ml, which cannot be a library
     dependency from here). *)
  type json =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of json list
    | Obj of (string * json) list

  exception Bad of string

  let parse (s : string) : (json, string) result =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = pos := !pos + 1 in
    let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %c" c)
    in
    let literal word v =
      String.iter expect word;
      v
    in
    let string_lit () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' -> (
            advance ();
            match peek () with
            | Some 'n' -> advance (); Buffer.add_char buf '\n'; go ()
            | Some 't' -> advance (); Buffer.add_char buf '\t'; go ()
            | Some 'u' ->
                advance ();
                for _ = 1 to 4 do advance () done;
                Buffer.add_char buf '?';
                go ()
            | Some c -> advance (); Buffer.add_char buf c; go ()
            | None -> fail "bad escape")
        | Some c ->
            advance ();
            Buffer.add_char buf c;
            go ()
      in
      go ();
      Buffer.contents buf
    in
    let number () =
      let start = !pos in
      let num_char c =
        (c >= '0' && c <= '9')
        || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
      in
      while (match peek () with Some c when num_char c -> true | _ -> false) do
        advance ()
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> Num f
      | None -> fail "bad number"
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin advance (); Obj [] end
          else begin
            let fields = ref [] in
            let rec members () =
              skip_ws ();
              let key = string_lit () in
              skip_ws ();
              expect ':';
              let v = value () in
              fields := (key, v) :: !fields;
              skip_ws ();
              match peek () with
              | Some ',' -> advance (); members ()
              | Some '}' -> advance ()
              | _ -> fail "expected , or }"
            in
            members ();
            Obj (List.rev !fields)
          end
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin advance (); Arr [] end
          else begin
            let items = ref [] in
            let rec elements () =
              let v = value () in
              items := v :: !items;
              skip_ws ();
              match peek () with
              | Some ',' -> advance (); elements ()
              | Some ']' -> advance ()
              | _ -> fail "expected , or ]"
            in
            elements ();
            Arr (List.rev !items)
          end
      | Some '"' -> Str (string_lit ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> number ()
      | None -> fail "unexpected end of input"
    in
    match
      let v = value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Bad msg -> Error msg

  let field obj key =
    match obj with
    | Obj fields -> List.assoc_opt key fields
    | _ -> None

  let require_int line obj key =
    match field obj key with
    | Some (Num f) when Float.is_integer f -> ()
    | _ -> raise (Bad (Printf.sprintf "%s: field %S missing or not an int" line key))

  let require_str line obj key =
    match field obj key with
    | Some (Str _) -> ()
    | _ -> raise (Bad (Printf.sprintf "%s: field %S missing or not a string" line key))

  let kind_of obj =
    match field obj "kind" with Some (Str k) -> k | _ -> raise (Bad "line without kind")

  let check_lines content per_line =
    let count = ref 0 in
    try
      String.split_on_char '\n' content
      |> List.iteri (fun i line ->
             if String.trim line <> "" then begin
               let where = Printf.sprintf "line %d" (i + 1) in
               match parse line with
               | Error msg -> raise (Bad (where ^ ": " ^ msg))
               | Ok obj ->
                   per_line where obj;
                   count := !count + 1
             end);
      Ok !count
    with Bad msg -> Error msg

  let registry_jsonl content =
    check_lines content (fun where obj ->
        match kind_of obj with
        | "counter" | "gauge" ->
            require_str where obj "tier";
            require_str where obj "name";
            require_int where obj "value"
        | "hist" ->
            require_str where obj "tier";
            require_str where obj "name";
            List.iter
              (require_int where obj)
              [ "count"; "sum"; "min"; "max"; "p50"; "p90"; "p99" ];
            (match field obj "buckets" with
            | Some (Arr items) ->
                List.iter
                  (function
                    | Arr [ Num i; Num c ]
                      when Float.is_integer i && Float.is_integer c
                           && i >= 0.0
                           && i < float_of_int Hist.slots
                           && c > 0.0 ->
                        ()
                    | _ -> raise (Bad (where ^ ": malformed bucket entry")))
                  items
            | _ -> raise (Bad (where ^ ": hist without buckets array")))
        | k -> raise (Bad (Printf.sprintf "%s: unexpected kind %S" where k)))

  let sampler_jsonl content =
    let header = ref false in
    let r =
      check_lines content (fun where obj ->
          match kind_of obj with
          | "sampler" ->
              header := true;
              List.iter (require_int where obj) [ "capacity"; "recorded"; "dropped" ]
          | "sample" ->
              List.iter
                (require_int where obj)
                [
                  "idx"; "round"; "live"; "minor_collections"; "major_collections";
                  "heap_words"; "compactions"; "rss_bytes";
                ]
          | k -> raise (Bad (Printf.sprintf "%s: unexpected kind %S" where k)))
    in
    match r with
    | Ok n when not !header -> Error (Printf.sprintf "no sampler header in %d lines" n)
    | r -> r

  let chrome_trace content =
    match parse content with
    | Error msg -> Error msg
    | Ok root -> (
        match field root "traceEvents" with
        | Some (Arr events) -> (
            try
              List.iter
                (fun ev ->
                  (match field ev "ph" with
                  | Some (Str ("X" | "M" | "C" | "i")) -> ()
                  | _ -> raise (Bad "event with missing or unexpected ph"));
                  require_str "event" ev "name";
                  require_int "event" ev "pid";
                  match field ev "ph" with
                  | Some (Str "X") ->
                      require_int "event" ev "tid";
                      require_int "event" ev "ts";
                      require_int "event" ev "dur";
                      (match (field ev "ts", field ev "dur") with
                      | Some (Num ts), Some (Num d) when ts >= 0.0 && d >= 1.0 -> ()
                      | _ -> raise (Bad "X event with negative ts or empty dur"))
                  | Some (Str ("C" | "i")) -> require_int "event" ev "ts"
                  | _ -> ())
                events;
              Ok (List.length events)
            with Bad msg -> Error msg)
        | _ -> Error "no traceEvents array")
end
