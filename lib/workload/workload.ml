(** Workload generation and scenario running for the examples and the
    benchmark harness: realistic input distributions (the application domains
    from the paper's introduction), adversarial input placement, and a
    uniform run-report with the Definition 1 property checks. *)

open Net

(** {1 Input distributions}

    All generators are deterministic in the supplied PRNG. *)

(** Sensor readings in centi-degrees (ℤ, may be negative): honest values
    cluster in [base − jitter, base + jitter] — e.g. the cooling-room sensors
    of the paper's introduction, base = −1004 (−10.04 °C), jitter ~ 1. *)
let sensor_readings rng ~n ~base ~jitter =
  Array.init n (fun _ ->
      Bigint.of_int (base - jitter + Prng.int rng ((2 * jitter) + 1)))

(** Price-feed observations (ℕ, large fixed-point): honest oracles observe a
    price around [base] (encoded with [decimals] fractional digits) within a
    [spread_ppm] parts-per-million band — the blockchain-oracle application. *)
let price_feed rng ~n ~base ~decimals ~spread_ppm =
  let scale = Bigint.of_string ("1" ^ String.make decimals '0') in
  let base = Bigint.mul (Bigint.of_string base) scale in
  Array.init n (fun _ ->
      let ppm = Prng.int rng ((2 * spread_ppm) + 1) - spread_ppm in
      let delta =
        Bigint.div (Bigint.mul base (Bigint.of_int ppm)) (Bigint.of_int 1_000_000)
      in
      Bigint.add base delta)

(** Timestamps (ℕ, nanoseconds): honest clocks skewed by at most [skew_ns]
    around [now_ns] — the decentralized transaction-ordering application. *)
let timestamps rng ~n ~now_ns ~skew_ns =
  Array.init n (fun _ ->
      Bigint.add (Bigint.of_string now_ns)
        (Bigint.of_int (Prng.int rng ((2 * skew_ns) + 1) - skew_ns)))

(** Uniform ℓ-bit values (top bit set) — the generic long-input workload. *)
let uniform_bits rng ~n ~bits =
  Array.init n (fun _ ->
      Bigint.of_bitstring
        (Bitstring.init bits (fun i -> i = 1 || Prng.bool rng)))

(** ℓ-bit values sharing a common [shared_prefix_bits]-bit prefix — controls
    where FINDPREFIX's binary search bottoms out. *)
let clustered_bits rng ~n ~bits ~shared_prefix_bits =
  if shared_prefix_bits > bits then invalid_arg "Workload.clustered_bits";
  let prefix = Bitstring.init shared_prefix_bits (fun i -> i = 1 || Prng.bool rng) in
  Array.init n (fun _ ->
      Bigint.of_bitstring
        (Bitstring.append prefix
           (Bitstring.init (bits - shared_prefix_bits) (fun _ -> Prng.bool rng))))

(** {1 Adversarial input placement} *)

type input_attack =
  | Honest_inputs  (** corrupted parties keep their generated inputs *)
  | Outlier_high  (** report an absurdly high value (the +100 °C sensor) *)
  | Outlier_low
  | Split_extremes  (** half low, half high — widens both tails *)

let apply_input_attack attack ~corrupt inputs =
  let inputs = Array.copy inputs in
  let magnitude =
    (* Far beyond any honest magnitude in this repository's workloads. *)
    Bigint.pow2 400
  in
  let place i v = if corrupt.(i) then inputs.(i) <- v in
  (match attack with
  | Honest_inputs -> ()
  | Outlier_high -> Array.iteri (fun i _ -> place i magnitude) inputs
  | Outlier_low -> Array.iteri (fun i _ -> place i (Bigint.neg magnitude)) inputs
  | Split_extremes ->
      let flip = ref false in
      Array.iteri
        (fun i _ ->
          if corrupt.(i) then begin
            place i (if !flip then magnitude else Bigint.neg magnitude);
            flip := not !flip
          end)
        inputs);
  inputs

let input_attack_name = function
  | Honest_inputs -> "honest-inputs"
  | Outlier_high -> "outlier-high"
  | Outlier_low -> "outlier-low"
  | Split_extremes -> "split-extremes"

(** {1 Scenario running} *)

type report = {
  outputs : Bigint.t list;  (** honest parties' outputs *)
  agreement : bool;
  convex_validity : bool;
  honest_bits : int;
  byz_bits : int;
  rounds : int;
  labels : (string * int) list;  (** per-component honest bits *)
}

(** Experiment cells: independent simulation runs (one (seed, adversary, n,
    ℓ, protocol) grid point each) fanned out over the domain pool. A cell
    must be self-contained — fresh PRNGs and adversary instances inside the
    thunk — which is exactly what makes the fan-out embarrassingly parallel
    and the result list identical to the sequential one. *)
type 'r cell = { cell_label : string; cell_run : unit -> 'r }

let cell ~label run = { cell_label = label; cell_run = run }

let run_cells ?(domains = 1) cells =
  let arr = Array.of_list cells in
  let results =
    if domains <= 1 then Array.map (fun c -> c.cell_run ()) arr
    else
      Pool.map ~domains (Pool.shared ()) ~n:(Array.length arr) (fun i ->
          arr.(i).cell_run ())
  in
  List.mapi (fun i c -> (c.cell_label, results.(i))) cells

(** Corrupt-set placement: spread corrupted parties across the index space
    (deterministic; avoids always corrupting a prefix). *)
let spread_corrupt ~n ~t =
  let corrupt = Array.make n false in
  for j = 0 to t - 1 do
    corrupt.(((j * n) / t) + (j mod 2)) <- true
  done;
  (* The formula can collide for small n; repair by filling gaps. *)
  let placed = Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 corrupt in
  let missing = ref (t - placed) in
  for i = n - 1 downto 0 do
    if !missing > 0 && not corrupt.(i) then begin
      corrupt.(i) <- true;
      decr missing
    end
  done;
  corrupt

(** [run_int] executes a protocol of type Π_ℤ (Bigint in, Bigint out) and
    checks Definition 1 against the honest inputs. *)
let run_int ?(max_rounds = Sim.default_max_rounds) ?trace ?telemetry ?domains
    ?setup ~n ~t ~corrupt ~adversary ~inputs protocol =
  let outcome =
    Sim.run ~max_rounds ?trace ?telemetry ?domains ?setup ~n ~t ~corrupt
      ~adversary (fun ctx -> protocol ctx inputs.(ctx.Ctx.me))
  in
  let outputs = Sim.honest_outputs ~corrupt outcome in
  let honest_inputs =
    List.filteri (fun i _ -> not corrupt.(i)) (Array.to_list inputs)
  in
  let agreement =
    match outputs with [] -> false | o :: rest -> List.for_all (Bigint.equal o) rest
  in
  let convex_validity =
    List.for_all (fun o -> Convex.in_convex_hull ~inputs:honest_inputs o) outputs
  in
  {
    outputs;
    agreement;
    convex_validity;
    honest_bits = outcome.Sim.metrics.Metrics.honest_bits;
    byz_bits = outcome.Sim.metrics.Metrics.byz_bits;
    rounds = outcome.Sim.metrics.Metrics.rounds;
    labels = Metrics.labels outcome.Sim.metrics;
  }

(** {1 Protocols under test (uniform Bigint interface)} *)

type protocol = {
  proto_name : string;
  run : Ctx.t -> Bigint.t -> Bigint.t Proto.t;
  solves_ca : bool;  (** false for plain-BA comparators: no convex validity *)
}

let pi_z = { proto_name = "Pi_Z (this paper)"; run = Convex.agree_int; solves_ca = true }

(* Π_ℤ with its BA sub-calls routed through the authenticated t < n/2
   substrate. The substrate (and its instance counter) is created inside the
   per-party closure so every party's BA instance tags advance in lockstep;
   the CA machinery around the seam keeps its own t < n/3 requirement. Run
   under [~setup:`Authenticated] with a [setup] fresh for this run. *)
let pi_z_auth setup =
  {
    proto_name = "Pi_Z over auth-quorum BA (t<n/3; authenticated sub-calls)";
    run =
      (fun ctx v ->
        let module B = (val Auth.Auth_ba.substrate setup) in
        let module CA = Convex.Ca_int.Make (B) in
        CA.run ctx v);
    solves_ca = true;
  }

(* The fault-adaptive CA wrapper (lib/adaptive): optimistic 4-round preamble
   + bit-BA arbitration in front of the full Π_ℤ stack over [fallback].
   [stats_of] maps a party id to the mutable accounting record that party
   should fill — one record per (party, run) so domain-parallel executions
   never share state. *)
let pi_z_adaptive ?stats_of () =
  {
    proto_name = "Pi_Z + fault-adaptive fast path";
    run =
      (fun ctx v ->
        let stats = Option.map (fun f -> f ctx.Ctx.me) stats_of in
        Adaptive.agree_int ?stats
          ~fallback:(module Ba.Substrate.Unauthenticated : Ba.Substrate.S)
          ctx v);
    solves_ca = true;
  }

(* Same fast path, falling back to Π_ℤ over the authenticated substrate.
   The arbitration stays plain phase king (see lib/adaptive), so only the
   fallback's interior BA calls are authenticated. *)
let pi_z_adaptive_auth ?stats_of setup =
  {
    proto_name = "Pi_Z + fault-adaptive fast path (auth fallback)";
    run =
      (fun ctx v ->
        let stats = Option.map (fun f -> f ctx.Ctx.me) stats_of in
        let module B = (val Auth.Auth_ba.substrate setup) in
        Adaptive.agree_int ?stats ~fallback:(module B : Ba.Substrate.S) ctx v);
    solves_ca = true;
  }

(* Fixed-width adapters: these comparators need a public bit-length; the
   caller supplies one large enough for every honest input. Out-of-range
   values — byzantine outliers under Honest_inputs-style placement — are
   clamped to the width, as a fixed-width deployment would. *)
let to_fixed ~bits v =
  let m = Bigint.abs v in
  let m = if Bigint.bit_length m > bits then Bigint.pred (Bigint.pow2 bits) else m in
  Bigint.to_bitstring_fixed ~bits m

let high_cost_ca ~bits =
  {
    proto_name = "HighCostCA [47]";
    run =
      (fun ctx v ->
        Proto.map (Convex.agree_high_cost ctx ~bits (to_fixed ~bits v)) Bigint.of_bitstring);
    solves_ca = true;
  }

let broadcast_ca ~bits =
  {
    proto_name = "Broadcast-CA (BC each input)";
    run =
      (fun ctx v ->
        Proto.map (Baseline.Broadcast_ca.run ctx ~bits (to_fixed ~bits v)) Bigint.of_bitstring);
    solves_ca = true;
  }

let turpin_coan_ba ~bits =
  {
    proto_name = "Turpin-Coan BA [49] (no convex validity)";
    run =
      (fun ctx v ->
        Proto.map
          (Ba.Turpin_coan.run_bytes ctx (Bitstring.to_bytes (to_fixed ~bits v)))
          (fun bytes ->
            match Bitstring.of_bytes ~len:bits bytes with
            | Some b -> Bigint.of_bitstring b
            | None -> Bigint.zero));
    solves_ca = false;
  }

let broadcast_ca_parallel ~bits =
  {
    proto_name = "Broadcast-CA (parallel rounds)";
    run =
      (fun ctx v ->
        Proto.map
          (Baseline.Broadcast_ca.run_parallel ctx ~bits (to_fixed ~bits v))
          Bigint.of_bitstring);
    solves_ca = true;
  }

let median_ba ~bits =
  {
    proto_name = "Median-validity BA [47]";
    run =
      (fun ctx v ->
        Proto.map (Convex.Median_ba.run ctx ~bits (to_fixed ~bits v)) Bigint.of_bitstring);
    solves_ca = true (* median validity implies range validity *);
  }

let phase_king_ba ~bits =
  {
    proto_name = "Phase-king BA [7] (no convex validity)";
    run =
      (fun ctx v ->
        Proto.map
          (Ba.Phase_king.run_bytes ctx (Bitstring.to_bytes (to_fixed ~bits v)))
          (fun bytes ->
            match Bitstring.of_bytes ~len:bits bytes with
            | Some b -> Bigint.of_bitstring b
            | None -> Bigint.zero));
    solves_ca = false;
  }

(** The textbook attack that motivates Convex Agreement: a byzantine party
    that happens to be the king of an early phase injects [payload] while the
    honest parties — whose inputs differ, as real measurements always do —
    are unlocked; they all adopt it, and persistence then carries the
    byzantine value to the output. Sound BA, no honest-range guarantee. *)
let king_injector ~payload =
  Adversary.make ~name:"king-injector" (fun view ~sender ~recipient ->
      if view.Adversary.round mod 3 = 0 && (view.Adversary.round / 3) - 1 = sender
      then Some payload
      else Adversary.prescribed_msg view ~sender ~recipient)

let approx_agreement ~bits ~rounds =
  {
    proto_name = Printf.sprintf "ApproxAgreement [16] (%d iter)" rounds;
    run =
      (fun ctx v ->
        Proto.map
          (Baseline.Approx_agreement.run ctx ~bits ~rounds (to_fixed ~bits v))
          Bigint.of_bitstring);
    solves_ca = false (* validity yes, exact agreement no *);
  }
