(** Workload generation and scenario running for the examples, the CLI and
    the benchmark harness: realistic input distributions (the application
    domains from the paper's introduction), adversarial input placement, a
    uniform protocol interface, and a run-report with the Definition 1
    property checks. All generators are deterministic in the supplied
    {!Net.Prng.t}. *)

(** {1 Input distributions} *)

val sensor_readings :
  Net.Prng.t -> n:int -> base:int -> jitter:int -> Bigint.t array
(** Centi-degree readings clustered in [base ± jitter] — the cooling-room
    sensors of the paper's introduction (may be negative). *)

val price_feed :
  Net.Prng.t -> n:int -> base:string -> decimals:int -> spread_ppm:int -> Bigint.t array
(** Fixed-point price observations around [base] within a parts-per-million
    band — the blockchain-oracle application. *)

val timestamps :
  Net.Prng.t -> n:int -> now_ns:string -> skew_ns:int -> Bigint.t array
(** Nanosecond clocks skewed at most [skew_ns] around [now_ns] — the
    transaction-ordering application. *)

val uniform_bits : Net.Prng.t -> n:int -> bits:int -> Bigint.t array
(** Uniform ℓ-bit values with the top bit set. *)

val clustered_bits :
  Net.Prng.t -> n:int -> bits:int -> shared_prefix_bits:int -> Bigint.t array
(** ℓ-bit values sharing a common prefix — controls where FINDPREFIX's
    search bottoms out. *)

(** {1 Adversarial input placement} *)

type input_attack =
  | Honest_inputs  (** corrupted parties keep their generated inputs *)
  | Outlier_high  (** report an absurdly high value (the +100 °C sensor) *)
  | Outlier_low
  | Split_extremes  (** half low, half high — widens both tails *)

val apply_input_attack :
  input_attack -> corrupt:bool array -> Bigint.t array -> Bigint.t array

val input_attack_name : input_attack -> string

(** {1 Scenario running} *)

type report = {
  outputs : Bigint.t list;  (** honest parties' outputs *)
  agreement : bool;
  convex_validity : bool;  (** w.r.t. the honest inputs *)
  honest_bits : int;
  byz_bits : int;
  rounds : int;
  labels : (string * int) list;  (** per-component honest bits *)
}

val spread_corrupt : n:int -> t:int -> bool array
(** Deterministic corrupt-set placement spread across the index space. *)

val run_int :
  ?max_rounds:int ->
  ?trace:Net.Trace.t ->
  ?telemetry:Telemetry.t ->
  ?domains:int ->
  ?setup:[ `Plain | `Authenticated ] ->
  n:int ->
  t:int ->
  corrupt:bool array ->
  adversary:Net.Adversary.t ->
  inputs:Bigint.t array ->
  (Net.Ctx.t -> Bigint.t -> Bigint.t Net.Proto.t) ->
  report
(** [trace], [telemetry], [domains] and [setup] are handed to the underlying
    {!Net.Sim.run}; [setup] (default [`Plain]) must be [`Authenticated] for
    protocols built on a cryptographic setup ({!pi_z_auth}). *)

(** {1 Experiment-cell fan-out} *)

type 'r cell = { cell_label : string; cell_run : unit -> 'r }
(** One independent grid point of an experiment sweep (seed × adversary ×
    n × ℓ × protocol). The thunk must be self-contained — construct PRNGs
    and adversary instances inside it, never share stateful ones across
    cells — so cells commute and the fan-out is deterministic. *)

val cell : label:string -> (unit -> 'r) -> 'r cell

val run_cells : ?domains:int -> 'r cell list -> (string * 'r) list
(** Run every cell and return [(label, result)] in input order. [domains]
    (default 1) fans the cells out over the shared {!Pool} — results are
    collected by index, so the list is identical to the sequential one for
    self-contained cells. Re-raises the first cell exception. *)

(** {1 Protocols under a uniform Bigint interface} *)

type protocol = {
  proto_name : string;
  run : Net.Ctx.t -> Bigint.t -> Bigint.t Net.Proto.t;
  solves_ca : bool;  (** false for plain-BA comparators: no convex validity *)
}

val pi_z : protocol
(** Π_ℤ — this paper. *)

val pi_z_auth : Auth.Setup.t -> protocol
(** Π_ℤ with its BA sub-calls routed through the authenticated t < n/2
    quorum-certificate substrate ({!Auth.Auth_ba.substrate}) instead of
    phase king. The surrounding CA machinery keeps its own t < n/3 counting
    arguments, so the composite's resilience is still t < n/3 — this is the
    seam demonstrator, not a resilience upgrade (native t < n/2 CA is
    [Auth.Auth_ba.Xmss.agree]). Supply a {!Auth.Setup.t} fresh for this run
    (signers are stateful) with capacity ≥
    [Auth.Auth_ba.required_capacity ~t ~instances:64], and pass
    [~setup:`Authenticated] to {!run_int}. *)

val pi_z_adaptive : ?stats_of:(int -> Adaptive.stats) -> unit -> protocol
(** Π_ℤ behind the fault-adaptive fast path ({!Adaptive.agree_int} over the
    unauthenticated substrate): O(nℓ + n²κ) bits in the zero-fault run,
    preamble + full Π_ℤ otherwise. [stats_of] supplies each party's
    accounting record (one per (party, run) — never share across domains). *)

val pi_z_adaptive_auth :
  ?stats_of:(int -> Adaptive.stats) -> Auth.Setup.t -> protocol
(** The fast path over the authenticated fallback ({!pi_z_auth}'s stack).
    Same setup discipline as {!pi_z_auth}: fresh {!Auth.Setup.t}, capacity ≥
    [required_capacity ~t ~instances:64], run with [~setup:`Authenticated]. *)

val high_cost_ca : bits:int -> protocol
val broadcast_ca : bits:int -> protocol
val broadcast_ca_parallel : bits:int -> protocol
val median_ba : bits:int -> protocol
val turpin_coan_ba : bits:int -> protocol
val phase_king_ba : bits:int -> protocol
val approx_agreement : bits:int -> rounds:int -> protocol
(** Fixed-width comparators; inputs are clamped to [bits] (magnitudes). *)

val to_fixed : bits:int -> Bigint.t -> Bitstring.t
(** The clamping fixed-width adapter the comparators use. *)

val king_injector : payload:string -> Net.Adversary.t
(** The textbook attack motivating CA: a corrupted early-phase king injects
    [payload] while honest parties (whose inputs differ) are unlocked; plain
    BA then outputs the byzantine value. *)
