(** GETOUTPUT (Section 3, Lemma 3): given an agreed prefix of a valid value,
    decide between its minimal and maximal completion.

    At least t+1 honest parties hold valid values [v_bot] that do not extend
    [prefix_star]; each announces whether its value sits below MIN_ℓ (bit 0)
    or above MAX_ℓ (bit 1). Among the m ≥ t+1 announcement bits a party
    receives, the majority bit was necessarily sent by an honest party (a
    minority of ≤ t byzantine bits cannot reach ⌈m/2⌉ once m ≥ 2t+1, and for
    smaller m at least one honest bit is present in every majority — the
    Lemma 3 argument). A final binary Π_BA fixes the common choice. *)

open Net

let ( let* ) = Proto.( let* )

let decode_bit raw =
  match raw with "\000" -> Some false | "\001" -> Some true | _ -> None

module Make (B : Ba.Substrate.S) = struct
  let run (ctx : Ctx.t) ~bits:len ~prefix_star v_bot =
  if Bitstring.length prefix_star > len then invalid_arg "Get_output.run: prefix length";
  if Bitstring.length v_bot <> len then invalid_arg "Get_output.run: value length";
  let low = Bitstring.min_fill len prefix_star in
  let high = Bitstring.max_fill len prefix_star in
  Proto.with_label "get_output"
    (let announce =
       if Bitstring.is_prefix ~prefix:prefix_star v_bot then None
       else Some (Bitstring.compare v_bot low >= 0)
       (* v_bot does not extend prefix_star, so it is either < MIN_ℓ or
          > MAX_ℓ; comparing against [low] distinguishes the two. *)
     in
     let* inbox =
       Proto.exchange (fun _ ->
           Option.map (fun b -> if b then "\001" else "\000") announce)
     in
     let zeros = ref 0 and ones = ref 0 in
     Array.iter
       (function
         | None -> ()
         | Some raw -> (
             match decode_bit raw with
             | Some false -> incr zeros
             | Some true -> incr ones
             | None -> ()))
       inbox;
     let choice = !ones > !zeros in
     let* take_max = B.run_bit ctx choice in
     Proto.return (if take_max then high else low))
end

include Make (Ba.Substrate.Unauthenticated)
