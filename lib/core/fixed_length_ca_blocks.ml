(** FIXEDLENGTHCABLOCKS (Section 4, Theorem 4): Convex Agreement for ℕ
    inputs of a publicly known length ℓ that is a multiple of n² — the
    round-efficient variant for very long inputs, with communication
    O(ℓn + κ·n²·log²n) + O(log n)·BITS_κ(Π_BA). *)

open Net

let ( let* ) = Proto.( let* )

module Make (B : Ba.Substrate.S) = struct
  module FPB = Find_prefix_blocks.Make (B)
  module GO = Get_output.Make (B)

  let run (ctx : Ctx.t) ~bits v =
    let* { Find_prefix_blocks.prefix_star; v; v_bot; iterations = _ } =
      FPB.run ctx ~bits v
    in
    if Bitstring.length prefix_star = bits then Proto.return v
    else
      let* prefix_star = Add_last_block.run ctx ~bits ~prefix_star v in
      GO.run ctx ~bits ~prefix_star v_bot
end

include Make (Ba.Substrate.Unauthenticated)
