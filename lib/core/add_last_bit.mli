(** ADDLASTBIT (Section 3, Lemma 2): extend the agreed prefix by one bit via
    a single binary Π_BA on the next bit of each party's valid value. Over a
    binary domain the BA output is always an honest party's bit, so the
    extended prefix still prefixes some valid value. Cost: one bit-BA. *)

module Make (B : Ba.Substrate.S) : sig
  val run :
    Net.Ctx.t ->
    bits:int ->
    prefix_star:Bitstring.t ->
    Bitstring.t ->
    Bitstring.t Net.Proto.t
  (** [run ctx ~bits ~prefix_star v] returns [prefix_star] extended by the
      agreed bit. Preconditions (Lemma 2): all honest parties share
      [prefix_star] with [|prefix_star| < bits], and hold valid [bits]-bit
      values [v] extending it. Raises [Invalid_argument] on length misuse.
      Requires a substrate [B] whose binary output is always an honest
      party's bit (Lemma 2). *)
end

include module type of Make (Ba.Substrate.Unauthenticated)
(** The default instantiation over {!Ba.Substrate.Unauthenticated} — the
    historical hard-wired phase-king stack, bit-identical to the pre-seam
    protocol. *)
