(** Π_ℤ (Section 6, Corollaries 1–2): Convex Agreement over the integers —
    the paper's headline protocol. One binary Π_BA agrees on a sign (always
    some honest party's sign, so 0 is a valid stand-in for out-voted
    parties), then Π_ℕ runs on the magnitudes.

    With the repository's deterministic Π_BA: communication
    O(ℓn + κ·n²·log²n)·(1 + o(1)) and rounds O(n log n) — Corollary 2, up to
    the Π_BA substitution recorded in DESIGN.md. *)

module Make (B : Ba.Substrate.S) : sig
  val run : Net.Ctx.t -> Bigint.t -> Bigint.t Net.Proto.t
  (** [run ctx v] joins Π_ℤ with input [v]; honest parties obtain a common
      integer within their inputs' range (Definition 1).  [B] fills the
      paper's Π_BA position throughout the stack (sign BA, length probes,
      Π_BA+ roots, ADDLASTBIT, GETOUTPUT). *)

  val cost_estimate :
    Net.Ctx.t -> value_bits:int -> f:int -> Ba.Substrate.cost
  (** f-sensitive cost model for one Π_ℤ run, composed from the sign BA,
      Π_ℕ's length probes and the FINDPREFIX search — reports (f, bits,
      rounds) and inherits whatever f-adaptivity [B]'s
      {!Ba.Substrate.S.cost} has.  Order-of-magnitude, for planning and
      ledgers. *)
end

include module type of Make (Ba.Substrate.Unauthenticated)
(** The default instantiation over {!Ba.Substrate.Unauthenticated} — the
    historical hard-wired phase-king stack, bit-identical to the pre-seam
    protocol. *)
