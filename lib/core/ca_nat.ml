(** Π_ℕ (Section 5, Theorem 5): the final CA protocol for natural numbers of
    {e a priori unknown} length. Parties first agree whether anyone holds a
    "very long" (> n² bits) value; short runs estimate ℓ by binary-BA-probing
    powers of two and use FIXEDLENGTHCA, long runs agree on a block size with
    HIGHCOSTCA and use FIXEDLENGTHCABLOCKS.

    Communication O(ℓn + κ·n²·log²n) + O(log n)·BITS_κ(Π_BA); rounds
    O(n) + O(log n)·ROUNDS_κ(Π_BA). *)

open Net

let ( let* ) = Proto.( let* )

(* Block sizes are exchanged as 64-bit values: the paper allots O(log(ℓ/n²))
   bits; 64 bits covers any input this simulator can hold. *)
let blocksize_bits = 64

let ceil_log2 x =
  let rec go acc p = if p >= x then acc else go (acc + 1) (2 * p) in
  go 0 1

module Make (B : Ba.Substrate.S) = struct
  module FL = Fixed_length_ca.Make (B)
  module FLB = Fixed_length_ca_blocks.Make (B)

  let run (ctx : Ctx.t) v_in =
  if Bigint.sign v_in < 0 then invalid_arg "Ca_nat.run: negative input";
  let n2 = ctx.Ctx.n * ctx.Ctx.n in
  let len = Bigint.bit_length v_in in
  (* Line 1: long or short regime? *)
  let* long = B.run_bit ctx (len > n2) in
  if not long then begin
    (* Short regime: cap overlong values (2^{n²}−1 is then in the honest
       range), probe ℓ_EST = 2^i, and run FIXEDLENGTHCA. *)
    let v = if len > n2 then Bigint.pred (Bigint.pow2 n2) else v_in in
    let rec probe i v =
      if i > ceil_log2 n2 then
        (* Unreachable: by iteration ⌈log₂ n²⌉ every honest party's value
           fits and Validity forces agreement on "fits". Stay total. *)
        let l_est = 1 lsl ceil_log2 n2 in
        FL.run ctx ~bits:l_est (Bigint.to_bitstring_fixed ~bits:l_est v)
      else
        let l_est = 1 lsl i in
        let* fits = B.run_bit ctx (Bigint.bit_length v <= l_est) in
        if fits then begin
          let v =
            if Bigint.bit_length v > l_est then Bigint.pred (Bigint.pow2 l_est) else v
          in
          FL.run ctx ~bits:l_est (Bigint.to_bitstring_fixed ~bits:l_est v)
        end
        else probe (i + 1) v
    in
    let* out = probe 0 v in
    Proto.return (Bigint.of_bitstring out)
  end
  else begin
    (* Long regime: agree on a block size, pad/cap to ℓ_EST = blocksize·n²
       and run the blocks protocol. *)
    let blocksize = (len + n2 - 1) / n2 in
    let* blocksize_agreed =
      Proto.with_label "length_estimation"
        (High_cost_ca.run ctx ~bits:blocksize_bits
           (Bitstring.of_int_fixed ~bits:blocksize_bits blocksize))
    in
    let blocksize' = max 1 (Bitstring.to_int blocksize_agreed) in
    let l_est = blocksize' * n2 in
    let v =
      if Bigint.bit_length v_in > l_est then Bigint.pred (Bigint.pow2 l_est) else v_in
    in
    let* out =
      FLB.run ctx ~bits:l_est (Bigint.to_bitstring_fixed ~bits:l_est v)
    in
    Proto.return (Bigint.of_bitstring out)
  end
end

include Make (Ba.Substrate.Unauthenticated)
