(** FINDPREFIXBLOCKS (Section 4, Lemma 4): FINDPREFIX with the binary search
    over n² blocks of ℓ/n² bits instead of over single bits — O(log n)
    Π_ℓBA+ invocations instead of O(log ℓ), for very long inputs.

    The paper's pseudocode initializes the bound as [n + 1] while the text
    and Lemma 9 search n² blocks; this follows the text (DESIGN.md). *)

type result = {
  prefix_star : Bitstring.t;  (** a whole number of blocks *)
  v : Bitstring.t;
  v_bot : Bitstring.t;
  iterations : int;
}

module Make (B : Ba.Substrate.S) : sig
  val run : Net.Ctx.t -> bits:int -> Bitstring.t -> result Net.Proto.t
  (** [bits] must be a positive multiple of n²; all honest parties join with
      the same [bits] and valid [bits]-bit values. Guarantees as in
      {!Find_prefix.run}, with "bit" read as "block". *)
end

include module type of Make (Ba.Substrate.Unauthenticated)
(** The default instantiation over {!Ba.Substrate.Unauthenticated} — the
    historical hard-wired phase-king stack, bit-identical to the pre-seam
    protocol. *)
