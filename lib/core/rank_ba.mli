(** Byzantine Agreement with k-Rank (interval) Validity — the generalization
    of median validity to an arbitrary order statistic, per Melnyk and
    Wattenhofer [36]: the common output lies within t ranks of the k-th
    lowest honest input.

    {b Achievability caveat}: without identical views a king-based protocol
    cannot pin {e extreme} ranks, so the target rank is clamped to the sound
    regime [t+1, (n−t)−t]; for ranks inside it the output lies in
    [h_(rank−t), h_(rank+t)], and more extreme requests degrade gracefully
    toward the median's guarantee.  k = ⌈(n−t)/2⌉ recovers {!Median_ba}
    exactly.

    Built on {!High_cost_ca.run_custom}: O(ℓ·n³) bits, 2 + 4(t+1) rounds. *)

val effective_rank : rank:int -> t:int -> honest_count:int -> int
(** The clamped (sound) target rank among [honest_count] honest inputs:
    [rank] projected into [[min (t+1) honest_count, max … (honest_count − t)]].
    Exposed for tests and for computing the promised bounds. *)

val rank_window :
  rank:int -> sorted:Bitstring.t array -> k:int -> t:int -> Bitstring.t * Bitstring.t
(** The trusted interval a party derives from its [sorted] received values
    ([k] of which may be byzantine): [(low, high)] sitting inside
    [h_(r−t), h_(r+t)] for the clamped rank r, and containing h_r itself —
    so all honest trusted intervals share a common point, the precondition
    the king search needs.  Exposed for the property tests. *)

val run : Net.Ctx.t -> bits:int -> rank:int -> Bitstring.t -> Bitstring.t Net.Proto.t
(** [run ctx ~bits ~rank v] — [rank] is 1-indexed among the honest inputs
    and must be the same public value at every honest party; all honest
    parties join with [bits]-bit values.  Raises [Invalid_argument] if
    [rank < 1].  Telemetry label: ["rank_ba"]. *)

val validity_bounds :
  Bitstring.t list -> rank:int -> t:int -> Bitstring.t -> bool
(** [validity_bounds honest_inputs ~rank ~t output]: does [output] satisfy
    the promised window [h_(r−t), h_(r+t)] for the clamped rank r?  For
    tests and monitors.  Raises [Invalid_argument] on an empty input list. *)
