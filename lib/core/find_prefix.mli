(** FINDPREFIX (Section 3): binary search, over bit positions, for the prefix
    of a valid value — at least as long as the honest inputs' longest common
    prefix — using Π_ℓBA+ on windows of the parties' values.

    Lemma 1: on return all honest parties share [prefix_star]; every honest
    party's [v] is valid (in the honest inputs' range) with prefix
    [prefix_star]; and for {e every} bitstring of [|prefix_star| + 1] bits at
    least t+1 honest parties hold a valid [v_bot] not extending it — the
    precondition GETOUTPUT needs.

    Complexity: O(log ℓ) iterations of Π_ℓBA+ on halving windows, i.e.
    BITS = O(ℓn + κ·n²·log n·log ℓ) + O(log ℓ)·BITS_κ(Π_BA). *)

type result = {
  prefix_star : Bitstring.t;
  v : Bitstring.t;  (** valid, ℓ bits, has [prefix_star] as a prefix *)
  v_bot : Bitstring.t;  (** valid, ℓ bits; Lemma 1 (ii) *)
  iterations : int;  (** diagnostic: Π_ℓBA+ invocations used *)
}

module Make (B : Ba.Substrate.S) : sig
  val run : Net.Ctx.t -> bits:int -> Bitstring.t -> result Net.Proto.t
  (** All honest parties must join with the same [bits] and a valid
      [bits]-bit value. Raises [Invalid_argument] on a length mismatch.
      The inner Π_ℓBA+ instances run on the substrate [B]. *)

  val cost_estimate :
    Net.Ctx.t -> value_bits:int -> f:int -> Ba.Substrate.cost
  (** f-sensitive cost model: ⌈log₂(ℓ+1)⌉ iterations of
      {!Baplus.Ext_ba_plus.Make.cost_estimate} — the substrate's
      f-adaptivity propagates through the whole search. *)
end

include module type of Make (Ba.Substrate.Unauthenticated)
(** The default instantiation over {!Ba.Substrate.Unauthenticated} — the
    historical hard-wired phase-king stack, bit-identical to the pre-seam
    protocol. *)

(** {1 Window codecs (shared with the blocks variant)} *)

val encode_window : Bitstring.t -> string

val decode_window : expect_bits:int -> string -> Bitstring.t option
(** Total on untrusted bytes; [None] unless exactly [expect_bits] bits. *)
