(** Π_ℕ (Section 5, Theorem 5): the final CA protocol for natural numbers of
    a priori {e unknown} length. One binary Π_BA splits the run into the
    short (≤ n² bits: probe ℓ_EST by powers of two, run FIXEDLENGTHCA) and
    long (agree on a block size with HIGHCOSTCA, run FIXEDLENGTHCABLOCKS)
    regimes.

    Communication O(ℓn + κ·n²·log²n) + O(log n)·BITS_κ(Π_BA); rounds
    O(n) + O(log n)·ROUNDS_κ(Π_BA). *)

val blocksize_bits : int
(** Wire width of the block-size values fed to HIGHCOSTCA (64; the paper
    allots O(log(ℓ/n²)) bits). *)

module Make (B : Ba.Substrate.S) : sig
  val run : Net.Ctx.t -> Bigint.t -> Bigint.t Net.Proto.t
  (** [run ctx v] joins Π_ℕ with input [v >= 0]; the honest parties obtain a
      common natural within their inputs' range. Raises [Invalid_argument]
      on a negative input. *)
end

include module type of Make (Ba.Substrate.Unauthenticated)
(** The default instantiation over {!Ba.Substrate.Unauthenticated} — the
    historical hard-wired phase-king stack, bit-identical to the pre-seam
    protocol. *)
