(** FIXEDLENGTHCA (Section 3, Theorem 2): Convex Agreement for ℕ inputs of a
    publicly known bit-length ℓ, with communication
    O(ℓn + κ·n²·log n·log ℓ) + O(log ℓ)·BITS_κ(Π_BA). *)

open Net

let ( let* ) = Proto.( let* )

module Make (B : Ba.Substrate.S) = struct
  module FP = Find_prefix.Make (B)
  module ALB = Add_last_bit.Make (B)
  module GO = Get_output.Make (B)

  (** [run ctx ~bits v] joins FIXEDLENGTHCA with the ℓ-bit value [v]
      ([ℓ = bits]). All honest parties must join with the same [bits] and
      valid [bits]-bit values; they obtain a common output in the honest
      inputs' range. *)
  let run (ctx : Ctx.t) ~bits v =
    let* { Find_prefix.prefix_star; v; v_bot; iterations = _ } =
      FP.run ctx ~bits v
    in
    if Bitstring.length prefix_star = bits then Proto.return v
    else
      let* prefix_star = ALB.run ctx ~bits ~prefix_star v in
      GO.run ctx ~bits ~prefix_star v_bot
end

include Make (Ba.Substrate.Unauthenticated)
