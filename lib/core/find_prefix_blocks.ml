(** FINDPREFIXBLOCKS (Section 4, Lemma 4): FINDPREFIX with the binary search
    running over n² blocks of ℓ/n² bits instead of over single bits, which
    cuts the iteration count from O(log ℓ) to O(log n) for very long inputs.

    The pseudocode in the paper initializes the search bound as [n + 1] while
    the surrounding text and Lemma 9 search n² blocks; we follow the text
    ([n² + 1], see DESIGN.md). *)

open Net

type result = {
  prefix_star : Bitstring.t;  (** a whole number of blocks *)
  v : Bitstring.t;
  v_bot : Bitstring.t;
  iterations : int;
}

let ( let* ) = Proto.( let* )

module Make (B : Ba.Substrate.S) = struct
  module Ext = Baplus.Ext_ba_plus.Make (B)

  let run (ctx : Ctx.t) ~bits:len v_in =
  let n2 = ctx.Ctx.n * ctx.Ctx.n in
  if len mod n2 <> 0 || len = 0 then
    invalid_arg "Find_prefix_blocks.run: bits must be a positive multiple of n^2";
  if Bitstring.length v_in <> len then invalid_arg "Find_prefix_blocks.run: input length";
  let block_bits = len / n2 in
  (* Window of blocks [left..right] (1-indexed, inclusive) as a bit range. *)
  let block_range v ~left ~right =
    Bitstring.range v ~left:(((left - 1) * block_bits) + 1) ~right:(right * block_bits)
  in
  let rec loop ~left ~right ~prefix_star ~v ~v_bot ~iterations =
    (* Convergence probe, mirroring {!Find_prefix}: honest candidates only
       snap toward the agreed prefix, so the honest hull width is monotone
       non-increasing over block-search iterations. *)
    let* () =
      Proto.probe "find_prefix_blocks.v" (fun () ->
          Bigint.to_hex (Bigint.of_bitstring v))
    in
    if left = right then Proto.return { prefix_star; v; v_bot; iterations }
    else begin
      let mid = (left + right) / 2 in
      let window = block_range v ~left ~right:mid in
      let* outcome = Ext.run ctx (Find_prefix.encode_window window) in
      let expect_bits = (mid - left + 1) * block_bits in
      match Option.map (Find_prefix.decode_window ~expect_bits) outcome with
      | None | Some None ->
          loop ~left ~right:mid ~prefix_star ~v ~v_bot:v ~iterations:(iterations + 1)
      | Some (Some agreed_window) ->
          let prefix_star = Bitstring.append prefix_star agreed_window in
          let own_prefix = Bitstring.prefix v (mid * block_bits) in
          let cmp = Bitstring.compare own_prefix prefix_star in
          let v =
            if cmp < 0 then Bitstring.min_fill len prefix_star
            else if cmp > 0 then Bitstring.max_fill len prefix_star
            else v
          in
          loop ~left:(mid + 1) ~right ~prefix_star ~v ~v_bot ~iterations:(iterations + 1)
    end
  in
  Proto.with_label "find_prefix_blocks"
    (loop ~left:1 ~right:(n2 + 1) ~prefix_star:Bitstring.empty ~v:v_in ~v_bot:v_in
       ~iterations:0)
end

include Make (Ba.Substrate.Unauthenticated)
