(** Π_ℤ (Section 6, Corollaries 1–2): Convex Agreement over the integers.
    Parties agree on a sign with one binary Π_BA — the agreed sign is some
    honest party's sign, so 0 is a valid stand-in for every party whose sign
    lost — then run Π_ℕ on the (possibly zeroed) magnitudes. *)

open Net

let ( let* ) = Proto.( let* )

module Make (B : Ba.Substrate.S) = struct
  module CN = Ca_nat.Make (B)
  module FP = Find_prefix.Make (B)

  (* f-sensitive cost model for one Π_ℤ run: the sign bit-BA, the ~log ℓ
     length-probe bit-BAs of Π_ℕ's short regime, and the FINDPREFIX search
     that dominates FIXEDLENGTHCA.  Order-of-magnitude, like every model on
     this seam: the point is that a fault-adaptive substrate's f-scaling
     survives the full stack, not bit-exact accounting. *)
  let cost_estimate (ctx : Ctx.t) ~value_bits ~f =
    let bit = B.cost ctx ~value_bits:1 ~f in
    let probes =
      let rec go acc p = if p >= value_bits then acc else go (acc + 1) (2 * p) in
      2 + go 0 1
    in
    let fp = FP.cost_estimate ctx ~value_bits ~f in
    {
      Ba.Substrate.c_f = f;
      c_bits = (probes * bit.Ba.Substrate.c_bits) + fp.Ba.Substrate.c_bits;
      c_rounds = (probes * bit.Ba.Substrate.c_rounds) + fp.Ba.Substrate.c_rounds;
    }

  let run (ctx : Ctx.t) v_in =
    let sign_in = Bigint.sign v_in < 0 in
    let* sign_out = B.run_bit ctx sign_in in
    let magnitude =
      if Bool.equal sign_out sign_in then Bigint.abs v_in else Bigint.zero
    in
    let* magnitude_out = CN.run ctx magnitude in
    Proto.return (Bigint.of_sign_magnitude ~negative:sign_out magnitude_out)
end

include Make (Ba.Substrate.Unauthenticated)
