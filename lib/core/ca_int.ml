(** Π_ℤ (Section 6, Corollaries 1–2): Convex Agreement over the integers.
    Parties agree on a sign with one binary Π_BA — the agreed sign is some
    honest party's sign, so 0 is a valid stand-in for every party whose sign
    lost — then run Π_ℕ on the (possibly zeroed) magnitudes. *)

open Net

let ( let* ) = Proto.( let* )

module Make (B : Ba.Substrate.S) = struct
  module CN = Ca_nat.Make (B)

  let run (ctx : Ctx.t) v_in =
    let sign_in = Bigint.sign v_in < 0 in
    let* sign_out = B.run_bit ctx sign_in in
    let magnitude =
      if Bool.equal sign_out sign_in then Bigint.abs v_in else Bigint.zero
    in
    let* magnitude_out = CN.run ctx magnitude in
    Proto.return (Bigint.of_sign_magnitude ~negative:sign_out magnitude_out)
end

include Make (Ba.Substrate.Unauthenticated)
