(** FIXEDLENGTHCABLOCKS (Section 4, Theorem 4): Convex Agreement for ℕ
    inputs of a publicly known length ℓ that is a multiple of n² — the
    round-efficient variant for very long inputs.

    Communication O(ℓn + κ·n²·log²n) + O(log n)·BITS_κ(Π_BA); rounds
    O(n) + O(log n)·ROUNDS_κ(Π_BA). *)

module Make (B : Ba.Substrate.S) : sig
  val run : Net.Ctx.t -> bits:int -> Bitstring.t -> Bitstring.t Net.Proto.t
  (** All honest parties must join with the same [bits] (a positive multiple
      of n²) and valid [bits]-bit values. *)
end

include module type of Make (Ba.Substrate.Unauthenticated)
(** The default instantiation over {!Ba.Substrate.Unauthenticated} — the
    historical hard-wired phase-king stack, bit-identical to the pre-seam
    protocol. *)
