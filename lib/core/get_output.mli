(** GETOUTPUT (Section 3, Lemma 3): given an agreed prefix of a valid value,
    decide between its minimal completion MIN_ℓ (pad with zeros) and maximal
    completion MAX_ℓ (pad with ones).

    At least t+1 honest parties hold valid values [v_bot] not extending
    [prefix_star]; each announces on which side its value falls. The majority
    announcement bit a party receives was necessarily sent by an honest
    party, and a final binary Π_BA makes the choice common.

    Cost: one announcement round (O(n²) bits) + one bit-BA. *)

module Make (B : Ba.Substrate.S) : sig
  val run :
    Net.Ctx.t ->
    bits:int ->
    prefix_star:Bitstring.t ->
    Bitstring.t ->
    Bitstring.t Net.Proto.t
  (** [run ctx ~bits ~prefix_star v_bot] returns the common valid output.
      Preconditions (Lemma 3): all honest parties share [prefix_star], a
      prefix of some valid value; t+1 honest parties' [v_bot] do not extend
      it. *)
end

include module type of Make (Ba.Substrate.Unauthenticated)
(** The default instantiation over {!Ba.Substrate.Unauthenticated} — the
    historical hard-wired phase-king stack, bit-identical to the pre-seam
    protocol. *)
