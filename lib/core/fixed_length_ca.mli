(** FIXEDLENGTHCA (Section 3, Theorem 2): Convex Agreement for ℕ inputs of a
    publicly known bit-length ℓ.

    FINDPREFIX agrees on a valid prefix; if it is full-width the parties
    already share a valid value, otherwise ADDLASTBIT extends it past the
    honest disagreement point and GETOUTPUT resolves the completion.

    Communication O(ℓn + κ·n²·log n·log ℓ) + O(log ℓ)·BITS_κ(Π_BA); rounds
    O(log ℓ)·ROUNDS_κ(Π_BA). *)

module Make (B : Ba.Substrate.S) : sig
  val run : Net.Ctx.t -> bits:int -> Bitstring.t -> Bitstring.t Net.Proto.t
  (** All honest parties must join with the same [bits] and valid [bits]-bit
      values; they obtain a common output within the honest inputs' range.
      Every Π_BA position runs on the substrate [B]; note the composite
      protocol's counting arguments still require [t < n/3] regardless of
      [B.max_t]. *)
end

include module type of Make (Ba.Substrate.Unauthenticated)
(** The default instantiation over {!Ba.Substrate.Unauthenticated} — the
    historical hard-wired phase-king stack, bit-identical to the pre-seam
    protocol. *)
