(** FINDPREFIX (Section 3): binary search, over bit positions, for a prefix
    of a valid value that is at least as long as the honest inputs' longest
    common prefix.

    Each iteration runs Π_ℓBA+ on the current window of the parties' values:
    - ⊥ (Bounded Pre-Agreement) ⇒ fewer than n−2t honest parties share this
      window, so for {e any} candidate window at least t+1 honest parties
      hold differing values — record the current value as [v_bot] and recurse
      left;
    - a window (Intrusion Tolerance ⇒ an honest party's window) ⇒ extend the
      agreed prefix; parties whose value lies outside the prefix's subtree
      snap to MIN_ℓ / MAX_ℓ of the prefix, which Remark 2 keeps inside the
      honest range — and recurse right.

    Lemma 1: on return, all honest parties share [prefix_star]; every honest
    [v] is valid with prefix [prefix_star]; and for every bitstring of
    [|prefix_star| + 1] bits, at least t+1 honest parties hold a valid
    [v_bot] not extending it. *)

open Net

type result = {
  prefix_star : Bitstring.t;
  v : Bitstring.t;  (** valid, ℓ bits, has [prefix_star] as a prefix *)
  v_bot : Bitstring.t;  (** valid, ℓ bits; see Lemma 1 (ii) *)
  iterations : int;  (** diagnostic: Π_ℓBA+ invocations used *)
}

let ( let* ) = Proto.( let* )

let encode_window bits = Wire.encode (Wire.w_bits bits)

let r_window = Wire.r_bits ()

let decode_window ~expect_bits raw =
  match Wire.decode_full r_window raw with
  | Some bits when Bitstring.length bits = expect_bits -> Some bits
  | Some _ | None -> None

module Make (B : Ba.Substrate.S) = struct
  module Ext = Baplus.Ext_ba_plus.Make (B)

  (* f-sensitive cost model: ⌈log₂(ℓ+1)⌉ binary-search iterations, each one
     Π_ℓBA+ instance on a window of at most ℓ bits.  Inherits the
     substrate's f-adaptivity through Ext's composed model. *)
  let cost_estimate (ctx : Ctx.t) ~value_bits ~f =
    let iterations =
      let rec go acc p = if p > value_bits then acc else go (acc + 1) (2 * p) in
      max 1 (go 0 1)
    in
    let ext = Ext.cost_estimate ctx ~value_bits ~f in
    {
      Ba.Substrate.c_f = f;
      c_bits = iterations * ext.Ba.Substrate.c_bits;
      c_rounds = iterations * ext.Ba.Substrate.c_rounds;
    }

  let run (ctx : Ctx.t) ~bits:len v_in =
  if Bitstring.length v_in <> len then invalid_arg "Find_prefix.run: input length";
  let rec loop ~left ~right ~prefix_star ~v ~v_bot ~iterations =
    (* Convergence probe: the party's current candidate value, once per
       search iteration (and once more on exit). Honest candidates only
       tighten toward the agreed prefix, so the honest hull width is monotone
       non-increasing over iterations. *)
    let* () =
      Proto.probe "find_prefix.v" (fun () ->
          Bigint.to_hex (Bigint.of_bitstring v))
    in
    if left = right then
      Proto.return { prefix_star; v; v_bot; iterations }
    else begin
      let mid = (left + right) / 2 in
      let window = Bitstring.range v ~left ~right:mid in
      let* outcome = Ext.run ctx (encode_window window) in
      match Option.map (decode_window ~expect_bits:(mid - left + 1)) outcome with
      | None | Some None ->
          (* ⊥ (or a non-window value, impossible for honest inputs but
             handled identically at every honest party): search left. *)
          loop ~left ~right:mid ~prefix_star ~v ~v_bot:v ~iterations:(iterations + 1)
      | Some (Some agreed_window) ->
          let prefix_star = Bitstring.append prefix_star agreed_window in
          let own_prefix = Bitstring.prefix v mid in
          let cmp = Bitstring.compare own_prefix prefix_star in
          let v =
            if cmp < 0 then Bitstring.min_fill len prefix_star
            else if cmp > 0 then Bitstring.max_fill len prefix_star
            else v
          in
          loop ~left:(mid + 1) ~right ~prefix_star ~v ~v_bot ~iterations:(iterations + 1)
    end
  in
  Proto.with_label "find_prefix"
    (loop ~left:1 ~right:(len + 1) ~prefix_star:Bitstring.empty ~v:v_in ~v_bot:v_in
       ~iterations:0)
end

include Make (Ba.Substrate.Unauthenticated)
