(** ADDLASTBIT (Section 3, Lemma 2): extend the agreed prefix by one bit via
    a single binary Π_BA on the next bit of each party's valid value [v].
    The binary output is always an honest party's bit, so the extended prefix
    still prefixes a valid value. *)

open Net

let ( let* ) = Proto.( let* )

module Make (B : Ba.Substrate.S) = struct
  let run (ctx : Ctx.t) ~bits:len ~prefix_star v =
    let i_star = Bitstring.length prefix_star in
    if i_star >= len then invalid_arg "Add_last_bit.run: prefix already full";
    if Bitstring.length v <> len then invalid_arg "Add_last_bit.run: value length";
    Proto.with_label "add_last_bit"
      (let* bit = B.run_bit ctx (Bitstring.get v (i_star + 1)) in
       Proto.return (Bitstring.append_bit prefix_star bit))
end

include Make (Ba.Substrate.Unauthenticated)
