(** HIGHCOSTCA (Appendix A.4, Theorem 3): the adjusted Median-Validity
    protocol of Stolz–Wattenhofer [47] — a king-based CA protocol with
    communication O(ℓ·n³) and O(n) rounds, resilient for t < n/3.

    Used by the main construction only on short inputs (one block, or a block
    count), where its cubic cost is affordable; also exercised as the
    "existing CA protocol" baseline in the benchmarks.

    Structure:
    - {e Setup}: parties exchange inputs; each trims the k lowest/highest of
      its n−t+k received values to obtain a trusted interval guaranteed to
      lie inside the honest inputs' range (Lemma 10); intervals are
      exchanged and each party picks a SUGGESTION covered by n−t intervals
      (hence by t+1 honest ones).
    - {e Search}: t+1 king phases. Values outside ℕ — here: bitstrings not of
      the expected width — are ignored everywhere, the paper's defence
      against byzantine non-values.

    All honest parties must join with values of the same bit-width [bits];
    the output is a [bits]-wide value in the honest inputs' range. *)

open Net

let ( let* ) = Proto.( let* )

let encode_value v = Wire.encode (Wire.w_bits v)

(* Values outside ℕ (wrong width, malformed) are ignored. *)
let decode_value ~bits raw =
  match Wire.decode_full (Wire.r_bits ()) raw with
  | Some v when Bitstring.length v = bits -> Some v
  | Some _ | None -> None

let encode_opt v = Wire.encode (Wire.w_option Wire.w_bits v)

let decode_opt ~bits raw =
  match Wire.decode_full (Wire.r_option (Wire.r_bits ())) raw with
  | Some (Some v) when Bitstring.length v = bits -> Some v
  | Some _ | None -> None

let valid_values ~bits inbox =
  let out = ref [] in
  Array.iter
    (function
      | None -> ()
      | Some raw -> (
          match decode_value ~bits raw with Some v -> out := v :: !out | None -> ()))
    inbox;
  !out

(* Count, for each distinct value, how many distinct senders sent it. *)
let tally ~decode inbox =
  let counts = Hashtbl.create 16 in
  Array.iter
    (function
      | None -> ()
      | Some raw -> (
          match decode raw with
          | None -> ()
          | Some v ->
              let key = Bitstring.to_bytes v in
              let _, c = Option.value ~default:(v, 0) (Hashtbl.find_opt counts key) in
              Hashtbl.replace counts key (v, c + 1)))
    inbox;
  Hashtbl.fold (fun _ vc acc -> vc :: acc) counts []

let best_supported entries =
  List.fold_left
    (fun best (v, c) ->
      match best with
      | Some (bv, bc) when c < bc || (c = bc && Bitstring.compare bv v <= 0) ->
          Some (bv, bc)
      | _ -> Some (v, c))
    None entries

(* The trusted-interval rule is pluggable: the Appendix A.4 adjustment trims
   the k possibly-byzantine extremes (any interval inside the honest range
   suffices for CA), while the original Stolz–Wattenhofer rule (Median_ba)
   takes a ±t rank window around the received median. [sorted] is the
   ascending array of valid values received, non-empty; [k] bounds how many
   of them byzantine parties contributed. *)
let trim_extremes ~sorted ~k ~t:_ =
  let count = Array.length sorted in
  (sorted.(min k (count - 1)), sorted.(max 0 (count - 1 - k)))

let run_custom (ctx : Ctx.t) ~bits ~select_interval v_in =
  if Bitstring.length v_in <> bits then invalid_arg "High_cost_ca.run: input length";
  let t = ctx.Ctx.t in
  let quorum = Ctx.quorum ctx in
  Proto.with_label "high_cost_ca"
    ((* Setup: inputs. *)
     let* inbox = Proto.broadcast (encode_value v_in) in
     let received = List.sort Bitstring.compare (valid_values ~bits inbox) in
     let count = List.length received in
     (* k of the received values may be byzantine; with fewer than n−t values
        received (impossible against ≤ t corruptions) clamp k at 0. *)
     let k = max 0 (count - quorum) in
     let arr = Array.of_list received in
     let interval_min, interval_max =
       if count = 0 then (v_in, v_in) else select_interval ~sorted:arr ~k ~t
     in
     (* Setup: intervals. *)
     let* inbox =
       Proto.broadcast
         (Wire.encode (Wire.w_pair Wire.w_bits Wire.w_bits (interval_min, interval_max)))
     in
     let intervals =
       Array.to_list inbox
       |> List.filter_map (fun raw ->
              Option.bind raw (fun raw ->
                  match Wire.decode_full (Wire.r_pair (Wire.r_bits ()) (Wire.r_bits ())) raw with
                  | Some (lo, hi)
                    when Bitstring.length lo = bits
                         && Bitstring.length hi = bits
                         && Bitstring.compare lo hi <= 0 ->
                      Some (lo, hi)
                  | Some _ | None -> None))
     in
     (* SUGGESTION: a value inside n−t of the received intervals. Coverage is
        maximal at some left endpoint; the (t+1)-th lowest honest input lies
        in every honest interval, so max coverage >= n−t. *)
     let covered p =
       List.length
         (List.filter
            (fun (lo, hi) -> Bitstring.compare lo p <= 0 && Bitstring.compare p hi <= 0)
            intervals)
     in
     let suggestion =
       let candidates = List.sort Bitstring.compare (List.map fst intervals) in
       match List.find_opt (fun p -> covered p >= quorum) candidates with
       | Some p -> p
       | None -> v_in (* unreachable against <= t corruptions *)
     in
     let in_own_interval v =
       Bitstring.compare interval_min v <= 0 && Bitstring.compare v interval_max <= 0
     in
     (* Search: t+1 king phases of four rounds each. *)
     let rec phase i current =
       (* Convergence probe: the party's current estimate at each phase entry
          (and once more on exit). Every update keeps honest estimates inside
          the trusted intervals, so the honest hull width is monotone
          non-increasing over phases. *)
       let* () =
         Proto.probe "high_cost_ca.current" (fun () ->
             Bigint.to_hex (Bigint.of_bitstring current))
       in
       if i > t + 1 then Proto.return current
       else begin
         (* Round 1: exchange current values. *)
         let* inbox1 = Proto.broadcast (encode_value current) in
         let proposal =
           match
             List.find_opt (fun (_, c) -> c >= quorum) (tally ~decode:(decode_value ~bits) inbox1)
           with
           | Some (v, _) -> Some v
           | None -> None
         in
         (* Round 2: proposals. *)
         let* inbox2 = Proto.broadcast (encode_opt proposal) in
         let propose_tally = tally ~decode:(decode_opt ~bits) inbox2 in
         let strong = List.exists (fun (_, c) -> c >= quorum) propose_tally in
         let current =
           match List.find_opt (fun (_, c) -> c >= t + 1) propose_tally with
           | Some (v, _) -> v
           | None -> current
         in
         (* Round 3: the king circulates its value. *)
         let king = i - 1 in
         let king_value_of_mine =
           match List.find_opt (fun (_, c) -> c >= t + 1) propose_tally with
           | Some (v, _) -> v
           | None -> suggestion
         in
         let* inbox3 =
           if ctx.Ctx.me = king then Proto.broadcast (encode_value king_value_of_mine)
           else Proto.receive_only ()
         in
         let king_value =
           if ctx.Ctx.me = king then Some king_value_of_mine
           else Option.bind inbox3.(king) (decode_value ~bits)
         in
         (* Round 4: vote for an acceptable king value. *)
         let vote =
           match king_value with
           | Some kv when Bitstring.equal kv current || in_own_interval kv -> Some kv
           | Some _ | None -> None
         in
         let* inbox4 = Proto.broadcast (encode_opt vote) in
         let current =
           if strong then current
           else
             match
               best_supported
                 (List.filter (fun (_, c) -> c >= t + 1) (tally ~decode:(decode_opt ~bits) inbox4))
             with
             | Some (kv, _) -> kv
             | None -> current
         in
         phase (i + 1) current
       end
     in
     phase 1 suggestion)

let run ctx ~bits v_in = run_custom ctx ~bits ~select_interval:trim_extremes v_in
