(** Coordinate-wise Convex Agreement on integer vectors: Π_ℤ once per
    dimension, under {!Net.Proto.parallel} so the round count is one Π_ℤ's
    worth, not d of them.

    The guarantee is {b box validity}: every coordinate of the common output
    lies within the honest inputs' range in that coordinate — the output is
    inside the honest bounding box.  This is strictly weaker than the
    convex-hull validity of Vaidya–Garg [50] / Mendes–Herlihy [37] (the hull
    sits inside the box); the paper is explicitly uni-dimensional, and box
    validity is exactly what the coordinate-wise trimmed aggregation rules of
    the distributed-learning applications provide, at d × the 1-D cost.

    Communication: d × BITS(Π_ℤ); rounds: ROUNDS(Π_ℤ). *)

val agree : Net.Ctx.t -> Bigint.t array -> Bigint.t array Net.Proto.t
(** [agree ctx v]: all honest parties must join with vectors of the same
    publicly-known dimension; they obtain a common vector inside the honest
    bounding box.  Raises [Invalid_argument] on an empty vector (dimension
    is a protocol parameter; a mismatch across honest parties is a caller
    bug, not byzantine behaviour).  Telemetry label: ["vector_ca"]. *)

val in_box : inputs:Bigint.t array list -> Bigint.t array -> bool
(** Box-hull membership: every coordinate of the output within the honest
    per-coordinate range.  For tests and harnesses; [false] on dimension
    mismatches or an empty input list. *)
