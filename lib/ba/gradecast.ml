(** Gradecast (graded broadcast) — Feldman–Micali's relaxation of broadcast,
    the building block of the "simple gradecast based algorithms" of
    Ben-Or–Dolev–Hoch [6] cited in the paper's related work.

    A designated sender distributes a value; each party outputs a pair
    (value, grade) with grade ∈ {0, 1, 2} such that, for t < n/3:

    - if the sender is honest, every honest party outputs (v, 2);
    - if an honest party outputs grade 2, every honest party outputs the
      same value with grade ≥ 1 ({e graded agreement});
    - any two honest parties with grade ≥ 1 hold the same value.

    Three rounds, O(ℓn²) bits:
    1. the sender sends v to all;
    2. every party echoes what it received;
    3. every party forwards the value it saw echoed by ≥ n−t parties (if
       any); grade 2 on ≥ n−t round-3 votes, grade 1 on ≥ t+1. *)

open Net

let ( let* ) = Proto.( let* )

type 'v graded = { value : 'v option; grade : int }

let run (spec : 'v Phase_king.spec) (ctx : Ctx.t) ~sender v =
  if sender < 0 || sender >= ctx.Ctx.n then invalid_arg "Gradecast.run: bad sender";
  let quorum = Ctx.quorum ctx in
  let open Phase_king in
  Proto.with_label "gradecast"
    ((* Round 1: the sender distributes. *)
     let* inbox1 =
       if ctx.Ctx.me = sender then Proto.broadcast (spec.encode v)
       else Proto.receive_only ()
     in
     let received = Option.bind inbox1.(sender) spec.decode in
     (* Round 2: echo. An explicit "nothing" is encoded as option None. *)
     let encode_opt o = Wire.encode (Phase_king.w_opt_bytes (Option.map spec.encode o)) in
     let decode_opt raw =
       match Wire.decode_full Phase_king.r_opt_bytes raw with
       | Some (Some payload) -> spec.decode payload
       | Some None | None -> None
     in
     (* Same small-array counting as {!Phase_king.tally} (an inbox holds at
        most n values; a fresh Hashtbl per call costs more than the tally),
        composed with the option unwrapping above. First-seen order; the
        quorum consumer below is order-insensitive (only one value can reach
        n-t with counts from distinct senders), and the round-3 argmax keeps
        the first of equal counts either way. *)
     let echo_spec = { spec with decode = decode_opt } in
     let tally inbox = Phase_king.tally echo_spec inbox in
     let* inbox2 = Proto.broadcast (encode_opt received) in
     let echoed =
       match List.find_opt (fun (_, c) -> c >= quorum) (tally inbox2) with
       | Some (v, _) -> Some v
       | None -> None
     in
     (* Round 3: forward the quorum-echoed value and grade the support. *)
     let* inbox3 = Proto.broadcast (encode_opt echoed) in
     match
       List.fold_left
         (fun best (v, c) ->
           match best with Some (_, bc) when bc >= c -> best | _ -> Some (v, c))
         None (tally inbox3)
     with
     | Some (v, c) when c >= quorum -> Proto.return { value = Some v; grade = 2 }
     | Some (v, c) when c >= ctx.Ctx.t + 1 -> Proto.return { value = Some v; grade = 1 }
     | Some _ | None -> Proto.return { value = None; grade = 0 })

let run_bytes ctx ~sender v = run Phase_king.bytes_spec ctx ~sender v

(** {1 Gradecast-based Approximate Agreement [6]}

    Each iteration, every party gradecasts its value; values received with
    grade ≥ 1 (plus nothing from parties whose gradecast failed) form the
    multiset; parties whose gradecast graded 2 everywhere are honest-like.
    Trimming t from each side and taking the midpoint halves the honest
    diameter per iteration while staying in the honest range — the same
    interface as {!Baseline.Approx_agreement} but built on a broadcast
    primitive with per-sender accountability. *)

let approx_agree (ctx : Ctx.t) ~bits ~rounds v_in =
  if Bitstring.length v_in <> bits then invalid_arg "Gradecast.approx_agree: length";
  let t = ctx.Ctx.t in
  let bits_spec : Bitstring.t Phase_king.spec =
    {
      Phase_king.equal = Bitstring.equal;
      default = Bitstring.zero bits;
      encode = (fun b -> Wire.encode (Wire.w_bits b));
      decode =
        (fun raw ->
          match Wire.decode_full (Wire.r_bits ()) raw with
          | Some b when Bitstring.length b = bits -> Some b
          | Some _ | None -> None);
    }
  in
  let rec iterate k v =
    if k = 0 then Proto.return v
    else
      (* n sequential gradecasts, one per sender. *)
      let rec gather sender acc =
        if sender = ctx.Ctx.n then Proto.return (List.rev acc)
        else
          let* g = run bits_spec ctx ~sender v in
          gather (sender + 1) (g :: acc)
      in
      let* graded = gather 0 [] in
      let values =
        List.filter_map (fun g -> if g.grade >= 1 then g.value else None) graded
      in
      let sorted = List.sort Bitstring.compare values in
      let arr = Array.of_list sorted in
      let count = Array.length arr in
      let v =
        if count <= 2 * t then v
        else begin
          let lo = Bigint.of_bitstring arr.(t) in
          let hi = Bigint.of_bitstring arr.(count - 1 - t) in
          Bigint.to_bitstring_fixed ~bits (Bigint.shift_right (Bigint.add lo hi) 1)
        end
      in
      iterate (k - 1) v
  in
  Proto.with_label "gradecast_aa" (iterate rounds v_in)
