(* Phase-king agreement, t+1 phases of three rounds each.

   Phase invariants (n > 3t):
   - Persistence: if all honest parties enter a phase with the same value,
     they all lock it and ignore the king.
   - At most one value can be proposed by any honest party in a phase (two
     distinct proposals would each need n-2t honest holders; 2(n-2t) > n-t).
   - If any honest party locks w, every honest party ends the phase with w.
   - A phase with an honest king therefore ends with all honest parties
     agreeing, and persistence preserves that agreement; among t+1 kings one
     is honest. *)

open Net

type 'v spec = {
  equal : 'v -> 'v -> bool;
  default : 'v;
  encode : 'v -> string;
  decode : string -> 'v option;
}

let ( let* ) = Proto.( let* )

(* Tally distinct decoded values in an inbox (at most one per sender), in
   first-seen order. Counting runs over one small per-call array rather than
   a fresh Hashtbl: an inbox holds at most n values, and this is called once
   or twice per party per phase round — the table's bucket array and
   per-update boxes dominated the tally's own output. Grouping uses
   [spec.equal] directly — [spec.encode] is injective, so equality of
   canonical encodings and [spec.equal] induce the same partition, and
   skipping the encode drops n string allocations per tally (the encodings
   were only ever compared, never kept; [argmax] re-derives them lazily on
   the rare count tie). Every downstream consumer is insensitive to entry
   order: at most one value can reach any >= t+1 threshold with counts from
   distinct senders. *)
let tally spec inbox =
  let n = Array.length inbox in
  let vals = Array.make n None in
  for i = 0 to n - 1 do
    match inbox.(i) with
    | None -> ()
    | Some raw -> (
        match spec.decode raw with
        | None -> () (* undecodable byzantine bytes: ignore the sender *)
        | Some _ as v -> vals.(i) <- v)
  done;
  let acc = ref [] in
  for i = n - 1 downto 0 do
    match vals.(i) with
    | None -> ()
    | Some v ->
        let first = ref true in
        for j = 0 to i - 1 do
          match vals.(j) with
          | Some w when spec.equal w v -> first := false
          | Some _ | None -> ()
        done;
        if !first then begin
          let c = ref 0 in
          for j = i to n - 1 do
            match vals.(j) with
            | Some w when spec.equal w v -> incr c
            | Some _ | None -> ()
          done;
          acc := (v, !c) :: !acc
        end
  done;
  !acc

(* Value with the highest count; ties broken by canonical encoding so all
   honest parties make the same deterministic choice. The encodings are
   computed only when a tie actually has to be broken. *)
let argmax spec = function
  | [] -> None
  | entries ->
      Some
        (List.fold_left
           (fun (bv, bc) (v, c) ->
             if
               c > bc
               || (c = bc && String.compare (spec.encode v) (spec.encode bv) < 0)
             then (v, c)
             else (bv, bc))
           (List.hd entries) (List.tl entries))

(* Hoisted reader and writer: building [r_option (r_bytes ())] (or the
   writer-side partial application) at the codec site would allocate the
   combinator closures once per message. *)
let r_opt_bytes = Wire.r_option (Wire.r_bytes ())
let w_opt_bytes = Wire.w_option Wire.w_bytes

let run spec (ctx : Ctx.t) input =
  let quorum = Ctx.quorum ctx in
  (* Proposal codec and voting spec, built once per run — not once per phase
     (the closures and the record copy are loop-invariant). *)
  let encode_proposal p = Wire.encode (w_opt_bytes (Option.map spec.encode p)) in
  let decode_proposal raw =
    match Wire.decode_full r_opt_bytes raw with
    | None -> None (* malformed: drop sender *)
    | Some None -> None (* an explicit "no proposal" carries no vote *)
    | Some (Some payload) -> spec.decode payload
  in
  let vote_spec = { spec with decode = decode_proposal } in
  let rec phase k v =
    if k > ctx.Ctx.t + 1 then Proto.return v
    else
      (* Round 1: universal exchange of current values. *)
      let* inbox1 = Proto.broadcast (spec.encode v) in
      let proposal =
        match List.find_opt (fun (_, c) -> c >= quorum) (tally spec inbox1) with
        | Some (w, _) -> Some w
        | None -> None
      in
      (* Round 2: universal exchange of proposals. *)
      let* inbox2 = Proto.broadcast (encode_proposal proposal) in
      let votes = tally vote_spec inbox2 in
      let v, locked =
        match argmax spec votes with
        | Some (w, c) when c >= ctx.Ctx.t + 1 -> (w, c >= quorum)
        | _ -> (v, false)
      in
      (* Round 3: the phase king circulates its value. *)
      let king = k - 1 in
      let* inbox3 =
        if ctx.Ctx.me = king then Proto.broadcast (spec.encode v)
        else Proto.receive_only ()
      in
      let v =
        if locked then v
        else
          let king_value =
            if ctx.Ctx.me = king then Some v
            else Option.bind inbox3.(king) spec.decode
          in
          Option.value ~default:spec.default king_value
      in
      phase (k + 1) v
  in
  Proto.with_label "pi_ba" (phase 1 input)

let rounds (ctx : Ctx.t) = 3 * (ctx.Ctx.t + 1)

let bit_spec =
  {
    equal = Bool.equal;
    default = false;
    encode = (fun b -> if b then "\001" else "\000");
    decode =
      (fun s ->
        match s with "\000" -> Some false | "\001" -> Some true | _ -> None);
  }

let bytes_spec =
  {
    equal = String.equal;
    default = "";
    encode = Fun.id;
    decode = (fun s -> Some s);
  }

let option_spec =
  {
    equal = Option.equal String.equal;
    default = None;
    encode = (fun v -> Wire.encode (w_opt_bytes v));
    decode = Wire.decode_full r_opt_bytes;
  }

let run_bit ctx b = run bit_spec ctx b
let run_bytes ctx s = run bytes_spec ctx s
let run_option ctx o = run option_spec ctx o
