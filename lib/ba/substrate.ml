(* The Π_BA seam: the CA protocols consume Byzantine Agreement through this
   module type only, so the agreement substrate is a parameter of the stack
   rather than a hard-coded call into Phase_king.  See substrate.mli for the
   contract each backend must satisfy. *)

type 'v spec = 'v Phase_king.spec = {
  equal : 'v -> 'v -> bool;
  default : 'v;
  encode : 'v -> string;
  decode : string -> 'v option;
}

(* One sample of a backend's f-sensitive cost model: expected cost of an
   instance when only f of the t allowed corruptions are actually active.
   Worst-case substrates are flat in f; lib/adaptive's backend is not. *)
type cost = { c_f : int; c_bits : int; c_rounds : int }

module type S = sig
  val name : string
  val assumption : [ `Plain | `Authenticated ]
  val max_t : n:int -> int
  val rounds : Net.Ctx.t -> int
  val bits_estimate : Net.Ctx.t -> value_bits:int -> int
  val cost : Net.Ctx.t -> value_bits:int -> f:int -> cost
  val run : 'v Phase_king.spec -> Net.Ctx.t -> 'v -> 'v Net.Proto.t
  val run_bit : Net.Ctx.t -> bool -> bool Net.Proto.t
  val run_bytes : Net.Ctx.t -> string -> string Net.Proto.t
  val run_option : Net.Ctx.t -> string option -> string option Net.Proto.t
end

(* The default backend: the unauthenticated t < n/3 phase-king stack.  Every
   entry point delegates verbatim to Phase_king — same code path, same
   "pi_ba" telemetry label, same wire bytes — so the functorized CA protocols
   instantiated with this module are bit-identical to the pre-seam stack
   (pinned by test/test_substrate.ml). *)
module Unauthenticated : S = struct
  let name = "phase-king"
  let assumption = `Plain
  let max_t ~n = (n - 1) / 3
  let rounds = Phase_king.rounds

  (* 3(t+1) phases of all-to-all ℓ-bit traffic plus the per-phase king
     proposal: O(ℓ n²) bits per phase, O(ℓ n² t) per instance.  An
     order-of-magnitude model for planning, not an accounting identity —
     measured bits come from the simulator's ledger. *)
  let bits_estimate (ctx : Net.Ctx.t) ~value_bits =
    let n = ctx.Net.Ctx.n in
    Phase_king.rounds ctx * n * n * (value_bits + 16)

  (* Phase king always runs its full t+1 phases: the cost model is flat in
     the actual fault count f (only the echo back to ledgers changes). *)
  let cost ctx ~value_bits ~f =
    { c_f = f; c_bits = bits_estimate ctx ~value_bits; c_rounds = rounds ctx }

  let run = Phase_king.run
  let run_bit = Phase_king.run_bit
  let run_bytes = Phase_king.run_bytes
  let run_option = Phase_king.run_option
end
