(** The assumed BA protocol Π_BA: deterministic multivalued Byzantine
    Agreement for [t < n/3] in the plain model, in the phase-king style of
    Berman–Garay–Perry [7].

    Guarantees (Definition 2): Termination, Agreement, Validity. In addition,
    over a two-element domain the output is always some honest party's input
    (used by ADDLASTBIT / GETOUTPUT / Π_ℤ, cf. Lemma 2): if it were not, all
    honest parties would hold the other value and Validity would force that
    value.

    Complexity: [3(t+1)] rounds; [O(ℓ n³)] bits for ℓ-bit values (each of the
    [t+1] phases is all-to-all). The paper instantiates Π_BA with the
    quadratic-communication protocol of Coan–Welch [12]; DESIGN.md records
    this substitution — it affects only the additive [poly(n, κ)] term of the
    CA protocols, which experiment T5 measures separately. *)

type 'v spec = {
  equal : 'v -> 'v -> bool;
  default : 'v;  (** Fallback when a (byzantine) king's message is invalid. *)
  encode : 'v -> string;  (** Must be injective on the domain. *)
  decode : string -> 'v option;  (** Total on arbitrary bytes. *)
}

val run : 'v spec -> Net.Ctx.t -> 'v -> 'v Net.Proto.t
(** [run spec ctx v] joins Π_BA with input [v]. All honest parties obtain the
    same output, equal to [v] if they all joined with [v]. *)

val r_opt_bytes : string option Wire.reader
(** The [r_option (r_bytes ())] reader, hoisted: the combinator closures are
    built once instead of once per decoded message (this decode shape is the
    hottest in the BA layer — proposals, echoes and votes all use it). *)

val w_opt_bytes : string option -> Wire.writer
(** Writer-side counterpart of {!r_opt_bytes}, hoisted for the same reason. *)

val tally : 'v spec -> Net.Proto.inbox -> ('v * int) list
(** Count distinct decoded values in an inbox: [(value, occurrences)] in
    first-seen order, grouped by [spec.equal] (which agrees with equality of
    canonical encodings — [encode] is injective). Allocation-lean (one small
    array, no Hashtbl, no re-encoding) — shared by the gradecast echo
    counting. *)

val bit_spec : bool spec
val bytes_spec : string spec

val option_spec : string option spec
(** Domain [string option] — [⊥] is a first-class input value (needed by
    Π_BA+, where parties may join the inner agreement with [a = ⊥]). *)

val run_bit : Net.Ctx.t -> bool -> bool Net.Proto.t
val run_bytes : Net.Ctx.t -> string -> string Net.Proto.t
val run_option : Net.Ctx.t -> string option -> string option Net.Proto.t

val rounds : Net.Ctx.t -> int
(** Exact round count: [3 (t+1)]. *)
