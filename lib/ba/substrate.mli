(** The Π_BA seam: a first-class, swappable Byzantine Agreement substrate.

    The source paper treats Π_BA as a black box inside Π_ℤ; this module type
    makes that black box a parameter of the CA stack.  Every CA protocol that
    consumes agreement ([Ba_plus], [Ext_ba_plus], [Find_prefix],
    [Add_last_bit], [Get_output], [Fixed_length_ca], [Ca_nat], [Ca_int])
    exposes a [Make (B : Substrate.S)] functor over this signature, with the
    historical behavior recovered by [include Make (Substrate.Unauthenticated)].

    A conforming backend must provide deterministic multivalued BA with
    Termination, Agreement and Validity (Definition 2), plus the two-element
    domain strengthening used by ADDLASTBIT / GETOUTPUT / Π_ℤ (Lemma 2): over
    a two-value domain the output is always some honest party's input.

    Note the resilience split: [max_t] bounds the substrate itself, but the
    surrounding CA counting arguments (Π_BA+, FINDPREFIX) independently
    require [t < n/3] — plugging a [t < n/2] backend into Π_ℤ does not lift
    the composite bound.  The authenticated backend additionally provides a
    native [t < n/2] CA construction ([Auth.Auth_ba.agree]). *)

type 'v spec = 'v Phase_king.spec = {
  equal : 'v -> 'v -> bool;
  default : 'v;  (** Fallback when agreement lands on no decodable value. *)
  encode : 'v -> string;  (** Must be injective on the domain. *)
  decode : string -> 'v option;  (** Total on arbitrary bytes. *)
}

type cost = {
  c_f : int;  (** The assumed number of {e actual} corruptions the sample
                  was taken at (echoed back for ledgers). *)
  c_bits : int;  (** Modelled honest bits of one instance at [f] faults. *)
  c_rounds : int;  (** Modelled synchronous rounds at [f] faults. *)
}
(** One sample of a backend's f-sensitive cost model: what one agreement
    instance is expected to cost when only [f <= t] of the [t] allowed
    corruptions actually materialize.  Worst-case substrates are flat in
    [f]; the fault-adaptive backend ({!module:Adaptive} in [lib/adaptive])
    collapses to its O(1)-round fast path at [f = 0]. *)

module type S = sig
  val name : string
  (** Stable identifier, used in ledgers and CLI surfaces. *)

  val assumption : [ `Plain | `Authenticated ]
  (** Setup requirement: [`Plain] needs only pairwise authenticated channels;
      [`Authenticated] additionally assumes a PKI ({!Net.Ctx.make_authenticated}). *)

  val max_t : n:int -> int
  (** Largest corruption budget the substrate tolerates at [n] parties. *)

  val rounds : Net.Ctx.t -> int
  (** Exact synchronous round count of one instance. *)

  val bits_estimate : Net.Ctx.t -> value_bits:int -> int
  (** Order-of-magnitude honest-bit cost model for one instance over
      [value_bits]-bit values; for planning and ledgers, not accounting. *)

  val cost : Net.Ctx.t -> value_bits:int -> f:int -> cost
  (** The f-sensitive refinement of [bits_estimate]/[rounds]: modelled cost
      of one instance when [f] corruptions are actually active.  Worst-case
      backends must return a sample consistent with [bits_estimate] and
      [rounds] at every [f]; fault-adaptive backends may return strictly
      smaller figures for small [f].  Like [bits_estimate], a planning
      model — measured bits come from the simulator's ledger. *)

  val run : 'v spec -> Net.Ctx.t -> 'v -> 'v Net.Proto.t
  (** [run spec ctx v] joins one multivalued agreement instance with input
      [v].  All honest parties obtain the same output, equal to [v] if they
      all joined with [v]; the output always decodes under [spec]. *)

  val run_bit : Net.Ctx.t -> bool -> bool Net.Proto.t
  val run_bytes : Net.Ctx.t -> string -> string Net.Proto.t
  val run_option : Net.Ctx.t -> string option -> string option Net.Proto.t
end

module Unauthenticated : S
(** The existing unauthenticated [t < n/3] phase-king stack, delegating
    verbatim to {!Phase_king} — same code path, same ["pi_ba"] telemetry
    label, same wire bytes as the pre-seam protocols. *)
